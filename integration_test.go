// Integration tests spanning the full pipeline: service generation →
// mirror trace file → replay → analyses, and generation → fbflow
// sampling → dataset. These exercise the same multi-package paths the
// experiments use, with exact-equality checks that the storage and
// sampling layers are transparent.
package fbdcnet

import (
	"bytes"
	"math"
	"testing"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/mirror"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

func integrationTopo(t *testing.T) (*topology.Topology, *services.Picker) {
	t.Helper()
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	pk := services.NewPicker(topo)
	if err := pk.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo, pk
}

// TestMirrorRoundTripPreservesAnalyses writes a live cache-follower trace
// through the mirror format and verifies that analyses over the replayed
// trace match analyses over the live stream exactly.
func TestMirrorRoundTripPreservesAnalyses(t *testing.T) {
	topo, pk := integrationTopo(t)
	host := topo.HostsByRole(topology.RoleCacheFollower)[0]

	var buf bytes.Buffer
	w, err := mirror.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	liveMix := analysis.NewServiceMix(topo, host)
	liveSizes := analysis.NewPacketSizes()
	tr := services.NewTrace(pk, host, 404, services.DefaultParams(),
		workload.Fanout{w, liveMix, liveSizes})
	tr.Run(5 * netsim.Second)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != tr.Emitted() {
		t.Fatalf("writer recorded %d of %d packets", w.Count(), tr.Emitted())
	}

	r, err := mirror.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayMix := analysis.NewServiceMix(topo, host)
	replaySizes := analysis.NewPacketSizes()
	n := int64(0)
	err = r.ForEach(func(h packet.Header) {
		replayMix.Packet(h)
		replaySizes.Packet(h)
		n++
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.Emitted() {
		t.Fatalf("replayed %d of %d packets", n, tr.Emitted())
	}
	live, replay := liveMix.Share(), replayMix.Share()
	for role, v := range live {
		if replay[role] != v {
			t.Fatalf("service mix diverged after round trip: %v vs %v", live, replay)
		}
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if liveSizes.Sample().Quantile(q) != replaySizes.Sample().Quantile(q) {
			t.Fatalf("packet size q%.2f diverged after round trip", q)
		}
	}
}

// TestFbflowSamplingEstimatesTrueBytes runs a live trace through a
// sampling agent and checks the weighted byte estimate converges on the
// true volume.
func TestFbflowSamplingEstimatesTrueBytes(t *testing.T) {
	topo, pk := integrationTopo(t)
	host := topo.HostsByRole(topology.RoleWeb)[0]

	ds := fbflow.NewDataset()
	pipe := fbflow.NewPipeline(topo, 2, ds.Add)
	// A modest rate keeps the sampling estimate's variance testable.
	agent := fbflow.NewAgent(pipe, 100, 7, func() int64 { return 0 })

	trueBytes := int64(0)
	counter := workload.CollectorFunc(func(h packet.Header) { trueBytes += int64(h.Size) })
	tr := services.NewTrace(pk, host, 505, services.DefaultParams(),
		workload.Fanout{agent, counter})
	tr.Run(20 * netsim.Second)
	pipe.Close()

	est := ds.TotalBytes()
	if math.Abs(est-float64(trueBytes)) > 0.1*float64(trueBytes) {
		t.Fatalf("sampled estimate %.0f vs true %d (>10%% off)", est, trueBytes)
	}
}

// TestFabricCarriesTrace injects a full mirror trace into the simulated
// fabric and verifies byte conservation: everything injected is either
// delivered to the right sink or accounted as a drop.
func TestFabricCarriesTrace(t *testing.T) {
	topo, pk := integrationTopo(t)
	host := topo.HostsByRole(topology.RoleWeb)[0]

	eng := &netsim.Engine{}
	fabric := netsim.NewFabric(eng, topo, netsim.DefaultFabricConfig())
	var injected int64
	tr := services.NewTrace(pk, host, 606, services.DefaultParams(),
		workload.CollectorFunc(func(h packet.Header) {
			injected++
			hh := h
			eng.At(hh.Time, func() { fabric.Inject(hh) })
		}))
	tr.Run(2 * netsim.Second)
	eng.Run(3 * netsim.Second)

	delivered := int64(0)
	for i := 0; i < topo.NumHosts(); i++ {
		delivered += fabric.Sink(topology.HostID(i)).Packets
	}
	dropped := int64(0)
	for r := range topo.Racks {
		dropped += fabric.RSW(r).Drops()
	}
	if delivered+dropped != fabric.Injected() {
		t.Fatalf("conservation violated: %d delivered + %d dropped != %d injected",
			delivered, dropped, fabric.Injected())
	}
	if fabric.Injected() != injected {
		t.Fatalf("fabric injected %d of %d generated", fabric.Injected(), injected)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestECMPSpreadsAcrossPosts verifies the fabric's hash-based multipath:
// many flows between two fixed hosts in different racks should use all
// four cluster-switch posts.
func TestECMPSpreadsAcrossPosts(t *testing.T) {
	topo, _ := integrationTopo(t)
	eng := &netsim.Engine{}
	fabric := netsim.NewFabric(eng, topo, netsim.DefaultFabricConfig())

	// Find an intra-cluster, inter-rack pair.
	var src, dst topology.HostID
	found := false
	for i := 0; i < topo.NumHosts() && !found; i++ {
		for j := 0; j < topo.NumHosts(); j++ {
			if topo.Locality(topology.HostID(i), topology.HostID(j)) == topology.IntraCluster {
				src, dst, found = topology.HostID(i), topology.HostID(j), true
				break
			}
		}
	}
	if !found {
		t.Fatal("no intra-cluster pair")
	}

	rack := topo.HostRack(src)
	before := make([]int64, 4)
	for p := 0; p < 4; p++ {
		// Uplink byte counters start at zero; sample after injection.
		before[p] = 0
	}
	for port := 0; port < 1000; port++ {
		fabric.Inject(packet.Header{
			Key: packet.FlowKey{
				Src: topo.Addr(src), Dst: topo.Addr(dst),
				SrcPort: uint16(10000 + port), DstPort: 80, Proto: packet.TCP,
			},
			Size: 100,
		})
	}
	eng.Run(10 * netsim.Second)

	links := fabric.LinksByTier(netsim.TierRSWCSW)
	used := 0
	for p := 0; p < 4; p++ {
		if links[rack*4+p].BytesTx() > 0 {
			used++
		}
	}
	if used != 4 {
		t.Fatalf("ECMP used %d of 4 posts", used)
	}
}
