package fbdcnet

import (
	"testing"

	"fbdcnet/internal/obs"
)

// benchObsRegistry builds a registry shaped like an agent's steady
// state: the core fleet counters plus a few histograms, the set a real
// shard touches every (window, shard) cell.
func benchObsRegistry() (*obs.Registry, []obs.CounterID, []obs.HistID) {
	r := obs.NewRegistry()
	cids := []obs.CounterID{
		r.Counter("fbdcnet_fleet_flow_attempts_total", "offered flows"),
		r.Counter("fbdcnet_fleet_records_total", "sampled records"),
		r.Counter("fbdcnet_fleet_matrix_cells_total", "matrix cells"),
		r.Counter("fbdcnet_fleet_tasks_total", "cells computed"),
		r.Counter("fbdcnet_merge_ops_total", "merges"),
		r.Counter("fbdcnet_wire_frames_total", "frames"),
	}
	hids := []obs.HistID{
		r.Histogram("fbdcnet_fleet_shard_us", "per-shard wall micros"),
		r.Histogram("fbdcnet_merge_bytes", "merge sizes"),
	}
	return r, cids, hids
}

func benchFillShard(sh *obs.Shard, cids []obs.CounterID, hids []obs.HistID, i int) {
	for k, c := range cids {
		sh.Add(c, int64(100+i+k))
	}
	sh.Observe(hids[0], int64(10+i%1000))
	sh.Observe(hids[0], int64(1<<(i%20)))
	sh.Observe(hids[1], int64(60000+i))
}

// BenchmarkObsDeltaEncode measures the agent-side metrics side-channel:
// one per-cell delta snapshot (6 counters + 2 histograms) appended into
// a reusable buffer, then folded into the agent's own registry. This
// runs once per (window, shard) cell alongside the PARTIAL encode, so
// it must be allocation-free and a rounding error next to the ~16 µs
// partial encode. BENCH_PR9.json gates ns/op and bytes/frame.
func BenchmarkObsDeltaEncode(b *testing.B) {
	reg, cids, hids := benchObsRegistry()
	sh := reg.NewShard()
	// Warm the buffer and the shard's lazy slots.
	benchFillShard(sh, cids, hids, 0)
	buf := sh.AppendDelta(nil)
	sh.Fold()
	var bytesOut int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchFillShard(sh, cids, hids, i)
		buf = sh.AppendDelta(buf[:0])
		bytesOut += int64(len(buf))
		sh.Fold()
	}
	b.StopTimer()
	b.ReportMetric(float64(bytesOut)/float64(b.N), "bytes/frame")
}

// BenchmarkObsDeltaDecode measures the aggregator side: decode one
// parked delta payload into a reused Delta (names alias the payload)
// and fold it into the federated registry at the merge frontier.
// BENCH_PR9.json gates ns/op.
func BenchmarkObsDeltaDecode(b *testing.B) {
	src, cids, hids := benchObsRegistry()
	sh := src.NewShard()
	benchFillShard(sh, cids, hids, 0)
	wire := sh.AppendDelta(nil)

	dst, _, _ := benchObsRegistry()
	var d obs.Delta
	// Warm the Delta's entry capacity and the registry's name table.
	if err := d.Decode(wire); err != nil {
		b.Fatal(err)
	}
	dst.FoldDelta(&d)
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(wire); err != nil {
			b.Fatal(err)
		}
		dst.FoldDelta(&d)
	}
}
