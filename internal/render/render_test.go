package render

import (
	"strings"
	"testing"

	"fbdcnet/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"A", "Long header"}, [][]string{
		{"x", "1"},
		{"yyyy", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d", len(lines))
	}
	// All lines equal width (trailing spaces aside) implies alignment.
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[0], "Long header") {
		t.Fatal("header lost")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.123) != "12.3" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
}

func TestSI(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1, "1.0"}, {1500, "1.5k"}, {2_000_000, "2.0M"}, {3_100_000_000, "3.1G"},
		{-1500, "-1.5k"},
	}
	for _, c := range cases {
		if got := SI(c.v); got != c.want {
			t.Errorf("SI(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestQuantilesEmpty(t *testing.T) {
	if Quantiles(stats.NewSample(0)) != "(empty)" {
		t.Fatal("empty sample should render as (empty)")
	}
}

func TestCDFShape(t *testing.T) {
	s := stats.NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	out := CDF("test", s, 40, 6, false)
	if !strings.Contains(out, "1.0 |") || !strings.Contains(out, "0.0 |") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no curve points")
	}
	// Log-x variant must also render.
	outLog := CDF("test", s, 40, 6, true)
	if !strings.Contains(outLog, "*") {
		t.Fatal("log CDF has no curve")
	}
}

func TestCDFEmptySample(t *testing.T) {
	out := CDF("empty", stats.NewSample(0), 40, 6, false)
	if !strings.Contains(out, "(empty)") {
		t.Fatalf("unexpected: %q", out)
	}
}

func TestCDFDegenerate(t *testing.T) {
	s := stats.NewSample(0)
	s.Add(5)
	s.Add(5)
	// Must not panic on zero range, linear or log.
	_ = CDF("deg", s, 30, 5, false)
	_ = CDF("deg", s, 30, 5, true)
}

func TestHeatmap(t *testing.T) {
	m := [][]float64{
		{0, 1},
		{1000, 1_000_000},
	}
	out := Heatmap("hm", m)
	lines := strings.Split(out, "\n")
	if lines[0] != "hm" {
		t.Fatal("title lost")
	}
	if len(lines[1]) != 2 || len(lines[2]) != 2 {
		t.Fatalf("matrix rows wrong: %q %q", lines[1], lines[2])
	}
	if lines[1][0] != ' ' {
		t.Fatal("zero cell should be blank")
	}
	// Largest cell gets the densest shade.
	if lines[2][1] != shades[len(shades)-1] {
		t.Fatalf("max cell shade %q", string(lines[2][1]))
	}
}

func TestHeatmapEmpty(t *testing.T) {
	out := Heatmap("e", [][]float64{{0, 0}})
	if !strings.Contains(out, "empty matrix") {
		t.Fatal("empty matrix not flagged")
	}
}

func TestHeatmapUniform(t *testing.T) {
	// All positive cells equal: must not divide by zero span.
	out := Heatmap("u", [][]float64{{5, 5}, {5, 5}})
	if !strings.Contains(out, "scale:") {
		t.Fatal("missing scale line")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty series should be empty string")
	}
	out := Sparkline([]float64{0, 1, 2, 4})
	if len([]rune(out)) != 4 {
		t.Fatalf("length %d", len([]rune(out)))
	}
	runes := []rune(out)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("extremes wrong: %q", out)
	}
}

func TestSparklineAllZero(t *testing.T) {
	out := []rune(Sparkline([]float64{0, 0}))
	if out[0] != '▁' || out[1] != '▁' {
		t.Fatal("zero series should be flat")
	}
}
