// Package render produces the terminal renditions of the paper's tables
// and figures: aligned text tables, quantile summaries and ASCII CDF
// plots for the figure reproductions, log-scale heatmaps for the traffic
// matrices, and sparklines for time series.
package render

import (
	"fmt"
	"math"
	"strings"

	"fbdcnet/internal/stats"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

// SI formats a value with an SI suffix (k, M, G).
func SI(v float64) string {
	switch {
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Quantiles summarizes a sample at the standard reporting points.
func Quantiles(s *stats.Sample) string {
	if s.N() == 0 {
		return "(empty)"
	}
	return fmt.Sprintf("n=%d p10=%s p50=%s p90=%s p99=%s",
		s.N(), SI(s.Quantile(0.1)), SI(s.Quantile(0.5)), SI(s.Quantile(0.9)), SI(s.Quantile(0.99)))
}

// CDF draws an ASCII CDF of a sample: height rows by width columns, with
// the x axis log-scaled when logX is set (flow sizes and durations span
// many decades).
func CDF(title string, s *stats.Sample, width, height int, logX bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %s\n", title, Quantiles(s))
	if s.N() == 0 || width < 8 || height < 2 {
		return b.String()
	}
	lo, hi := s.Quantile(0), s.Quantile(1)
	if logX {
		if lo <= 0 {
			lo = math.Max(1e-3, lo)
		}
		if hi <= lo {
			hi = lo * 10
		}
	} else if hi <= lo {
		hi = lo + 1
	}
	xAt := func(col int) float64 {
		t := float64(col) / float64(width-1)
		if logX {
			return lo * math.Pow(hi/lo, t)
		}
		return lo + t*(hi-lo)
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		frac := s.FracBelow(xAt(col))
		row := int((1 - frac) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}
	for r, line := range grid {
		label := "    "
		if r == 0 {
			label = "1.0 "
		} else if r == height-1 {
			label = "0.0 "
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "    +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "     %-12s%*s\n", SI(lo), width-12, SI(hi))
	return b.String()
}

// shades orders heatmap intensity glyphs from empty to full.
const shades = " .:-=+*#%@"

// Heatmap renders a matrix with log-scaled cell intensity, normalized to
// the largest cell (the style of Fig. 5).
func Heatmap(title string, m [][]float64) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	maxV, minPos := 0.0, math.Inf(1)
	for _, row := range m {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
			if v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	if maxV == 0 {
		b.WriteString("(empty matrix)\n")
		return b.String()
	}
	span := math.Log(maxV / minPos)
	for _, row := range m {
		for _, v := range row {
			idx := 0
			if v > 0 {
				if span <= 0 {
					idx = len(shades) - 1
				} else {
					idx = 1 + int(math.Log(v/minPos)/span*float64(len(shades)-2))
					if idx >= len(shades) {
						idx = len(shades) - 1
					}
				}
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "scale: min>0 %s  max %s (log shading)\n", SI(minPos), SI(maxV))
	return b.String()
}

// Sparkline renders a numeric series as a compact bar string.
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	maxV := 0.0
	for _, v := range vs {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(bars)-1))
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}
