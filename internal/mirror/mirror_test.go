package mirror

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"fbdcnet/internal/packet"
)

func hdr(i int) packet.Header {
	return packet.Header{
		Time: int64(i) * 1000,
		Key: packet.FlowKey{
			Src: packet.Addr(i), Dst: packet.Addr(i + 1),
			SrcPort: uint16(i), DstPort: 80, Proto: packet.TCP,
		},
		Size:  uint32(100 + i),
		Flags: packet.FlagACK,
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		w.Packet(hdr(i))
	}
	if w.Count() != n {
		t.Fatalf("count %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	err = r.ForEach(func(h packet.Header) {
		if h != hdr(got) {
			t.Fatalf("record %d mismatch: %+v", got, h)
		}
		got++
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("read %d records", got)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestShortMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("FB"))); err == nil {
		t.Fatal("short file accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Packet(hdr(0))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3] // chop the last record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w, err := NewWriter(&failWriter{after: 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		w.Packet(hdr(i))
	}
	if err := w.Close(); err == nil {
		t.Fatal("write failure not surfaced by Close")
	}
}

func TestRingCapacityAndLoss(t *testing.T) {
	r := NewRing(10)
	for i := 0; i < 25; i++ {
		r.Packet(hdr(i))
	}
	if len(r.Headers()) != 10 {
		t.Fatalf("kept %d", len(r.Headers()))
	}
	if r.Lost() != 15 || r.Lossless() {
		t.Fatalf("lost %d", r.Lost())
	}
}

func TestRingLossless(t *testing.T) {
	r := NewRing(100)
	for i := 0; i < 50; i++ {
		r.Packet(hdr(i))
	}
	if !r.Lossless() {
		t.Fatal("unexpected loss")
	}
}

func TestRingPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewRing(0)
}

func BenchmarkWriterPacket(b *testing.B) {
	w, _ := NewWriter(io.Discard)
	h := hdr(1)
	for i := 0; i < b.N; i++ {
		w.Packet(h)
	}
}
