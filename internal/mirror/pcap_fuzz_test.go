package mirror

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"fbdcnet/internal/packet"
)

// fuzzGlobalHeader builds a little-endian pcap global header.
func fuzzGlobalHeader(magic, linkType uint32) []byte {
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:], magic)
	binary.LittleEndian.PutUint16(gh[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(gh[6:], pcapVersionMin)
	binary.LittleEndian.PutUint32(gh[16:], capturedBytes)
	binary.LittleEndian.PutUint32(gh[20:], linkType)
	return gh[:]
}

// fuzzRecord builds one pcap record with an arbitrary (incl, orig) pair
// and payload.
func fuzzRecord(sec, nsec, incl, orig uint32, payload []byte) []byte {
	var rh [16]byte
	binary.LittleEndian.PutUint32(rh[0:], sec)
	binary.LittleEndian.PutUint32(rh[4:], nsec)
	binary.LittleEndian.PutUint32(rh[8:], incl)
	binary.LittleEndian.PutUint32(rh[12:], orig)
	return append(rh[:], payload...)
}

// validCapture returns a well-formed two-record nanosecond capture.
func validCapture(tb testing.TB) []byte {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	w.Packet(packet.Header{
		Key:   packet.FlowKey{Src: 3, Dst: 9, SrcPort: 1234, DstPort: 80, Proto: packet.TCP},
		Time:  1_500_000_000,
		Size:  1460,
		Flags: packet.FlagSYN | packet.FlagACK,
	})
	w.Packet(packet.Header{
		Key:  packet.FlowKey{Src: 9, Dst: 3, SrcPort: 80, DstPort: 1234, Proto: packet.UDP},
		Time: 2_000_000_123,
		Size: 120,
	})
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzPcapReader throws arbitrary bytes at the pcap reader: it must never
// panic, never allocate unboundedly from a bogus caplen, and always
// terminate with io.EOF or a real error.
func FuzzPcapReader(f *testing.F) {
	f.Add(validCapture(f))
	// Truncated record header: a valid global header, then half a record
	// header.
	f.Add(append(fuzzGlobalHeader(pcapMagicNanos, linkTypeEth), 1, 2, 3, 4, 5, 6, 7))
	// Bogus caplen: incl claims 4 GiB with no payload behind it.
	f.Add(append(fuzzGlobalHeader(pcapMagicNanos, linkTypeEth),
		fuzzRecord(0, 0, 0xffffffff, 0xffffffff, nil)...))
	// Zero-length record followed by a valid-shaped record header.
	f.Add(append(fuzzGlobalHeader(0xa1b2c3d4, linkTypeEth),
		fuzzRecord(1, 999, 0, 0, nil)...))
	// Record whose frame is too short for Ethernet+IP.
	f.Add(append(fuzzGlobalHeader(pcapMagicNanos, linkTypeEth),
		fuzzRecord(1, 1, 10, 10, make([]byte, 10))...))
	// Wrong magic and wrong link type.
	f.Add(fuzzGlobalHeader(0xdeadbeef, linkTypeEth))
	f.Add(fuzzGlobalHeader(pcapMagicNanos, 101))
	// IPv4 frame with a malformed IHL (0 words).
	bad := make([]byte, capturedBytes)
	bad[12], bad[13] = 0x08, 0x00
	bad[ethHeaderLen] = 0x40 // version 4, IHL 0
	f.Add(append(fuzzGlobalHeader(pcapMagicNanos, linkTypeEth),
		fuzzRecord(1, 1, capturedBytes, capturedBytes, bad)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewPcapReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		records := 0
		for {
			h, err := r.Next()
			if err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				break
			}
			// A parsed record must carry a transport protocol we admit;
			// anything else should have been skipped, not returned.
			if h.Key.Proto != packet.TCP && h.Key.Proto != packet.UDP {
				t.Fatalf("reader returned non-TCP/UDP header: %+v", h)
			}
			records++
			if records > 1<<20 {
				t.Fatal("reader produced implausibly many records")
			}
		}
	})
}

// FuzzPcapRoundTrip fuzzes the writer's input space: any header written
// must read back with its flow key, flags, and timestamp intact.
func FuzzPcapRoundTrip(f *testing.F) {
	f.Add(uint32(3), uint32(9), uint16(1234), uint16(80), byte(packet.TCP), byte(packet.FlagSYN), int64(1_500_000_000), uint32(1460))
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0), byte(packet.UDP), byte(0), int64(0), uint32(0))
	f.Add(uint32(1<<24-1), uint32(1<<24-1), uint16(65535), uint16(65535), byte(packet.TCP), byte(0x1f), int64(1)<<40, uint32(0xffffffff))

	f.Fuzz(func(t *testing.T, src, dst uint32, sp, dp uint16, proto, flags byte, tm int64, size uint32) {
		if proto != byte(packet.TCP) && proto != byte(packet.UDP) {
			proto = byte(packet.TCP)
		}
		if tm < 0 {
			tm = -tm
		}
		in := packet.Header{
			Key: packet.FlowKey{
				// The synthesized IPv4 addresses keep 24 bits of host
				// address; mask the inputs the same way so equality holds.
				Src: packet.Addr(src & 0x00ffffff), Dst: packet.Addr(dst & 0x00ffffff),
				SrcPort: sp, DstPort: dp, Proto: packet.Proto(proto),
			},
			// The record header stores seconds as uint32: clamp into range.
			Time:  tm % (int64(1) << 32 * 1_000_000_000),
			Flags: packet.Flags(flags) & (packet.FlagFIN | packet.FlagSYN | packet.FlagRST | packet.FlagPSH | packet.FlagACK),
			Size:  size,
		}

		var buf bytes.Buffer
		w, err := NewPcapWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		w.Packet(in)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewPcapReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Next()
		if err != nil {
			t.Fatalf("reading back %+v: %v", in, err)
		}
		if out.Key != in.Key {
			t.Fatalf("flow key round-trip: wrote %+v read %+v", in.Key, out.Key)
		}
		if in.Key.Proto == packet.TCP && out.Flags != in.Flags {
			t.Fatalf("flags round-trip: wrote %v read %v", in.Flags, out.Flags)
		}
		// Sub-second precision is exact in the nanosecond format.
		if out.Time != in.Time {
			t.Fatalf("time round-trip: wrote %d read %d", in.Time, out.Time)
		}
		// orig_len is clamped up to the captured length, never down.
		want := in.Size
		if want < capturedBytes {
			want = capturedBytes
		}
		if out.Size != want {
			t.Fatalf("size round-trip: wrote %d read %d want %d", in.Size, out.Size, want)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("expected EOF after one record, got %v", err)
		}
	})
}
