// Package mirror implements the port-mirroring collection path of §3.3.2:
// lossless capture of one host's (or rack's) complete bidirectional
// packet-header stream over a bounded window, spooled to a compact binary
// trace format for offline analysis.
//
// The production system pinned free RAM to buffer line-rate captures; the
// equivalent here is an in-memory ring with an explicit capacity bound and
// a loss counter, so analyses can verify the capture was in fact lossless
// (the paper only mirrored hosts whose rate the RSW could mirror without
// loss).
package mirror

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"fbdcnet/internal/packet"
)

// magic identifies a trace file; the version byte allows format evolution.
var magic = [4]byte{'F', 'B', 'M', '1'}

// Writer streams packet headers to a binary trace. It implements
// workload.Collector; create with NewWriter and Close when done.
type Writer struct {
	w     *bufio.Writer
	buf   [packet.EncodedSize]byte
	count int64
	err   error
}

// NewWriter writes the trace header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("mirror: writing magic: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Packet records one header. Errors are sticky and surfaced by Close.
func (w *Writer) Packet(h packet.Header) {
	if w.err != nil {
		return
	}
	h.MarshalTo(w.buf[:])
	if _, err := w.w.Write(w.buf[:]); err != nil {
		w.err = err
		return
	}
	w.count++
}

// Packets implements the batch collector interface: one sticky-error
// check per batch instead of per header.
func (w *Writer) Packets(hs []packet.Header) {
	if w.err != nil {
		return
	}
	for i := range hs {
		hs[i].MarshalTo(w.buf[:])
		if _, err := w.w.Write(w.buf[:]); err != nil {
			w.err = err
			return
		}
		w.count++
	}
}

// Count returns the number of headers written.
func (w *Writer) Count() int64 { return w.count }

// Close flushes buffered records and returns any sticky error.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader iterates over a binary trace.
type Reader struct {
	r   *bufio.Reader
	buf [packet.EncodedSize]byte
}

// NewReader validates the trace header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("mirror: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("mirror: bad magic %q", got[:])
	}
	return &Reader{r: br}, nil
}

// Next returns the next header, or io.EOF at end of trace.
func (r *Reader) Next() (packet.Header, error) {
	var h packet.Header
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return h, fmt.Errorf("mirror: truncated record: %w", err)
		}
		return h, err
	}
	if err := h.UnmarshalBinary(r.buf[:]); err != nil {
		return h, err
	}
	return h, nil
}

// ForEach replays the whole trace into fn, stopping on the first error.
func (r *Reader) ForEach(fn func(packet.Header)) error {
	for {
		h, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(h)
	}
}

// Ring is a bounded in-memory capture buffer: the stand-in for the
// pinned-RAM kernel module. Once capacity is reached further packets are
// counted as lost rather than silently dropped.
type Ring struct {
	hdrs []packet.Header
	cap  int
	lost int64
}

// NewRing creates a capture buffer holding up to capacity headers.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("mirror: ring capacity must be positive")
	}
	return &Ring{hdrs: make([]packet.Header, 0, capacity), cap: capacity}
}

// Packet implements the collector interface.
func (r *Ring) Packet(h packet.Header) {
	if len(r.hdrs) >= r.cap {
		r.lost++
		return
	}
	r.hdrs = append(r.hdrs, h)
}

// Packets implements the batch collector interface: room is checked once
// and the in-capacity prefix is bulk-copied.
func (r *Ring) Packets(hs []packet.Header) {
	room := r.cap - len(r.hdrs)
	if room > len(hs) {
		room = len(hs)
	}
	if room > 0 {
		r.hdrs = append(r.hdrs, hs[:room]...)
	}
	r.lost += int64(len(hs) - room)
}

// Headers returns the captured headers in arrival order. The slice is
// owned by the Ring.
func (r *Ring) Headers() []packet.Header { return r.hdrs }

// Lost returns the number of packets that arrived after the buffer
// filled.
func (r *Ring) Lost() int64 { return r.lost }

// Lossless reports whether the capture completed without loss.
func (r *Ring) Lossless() bool { return r.lost == 0 }
