package mirror

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fbdcnet/internal/packet"
)

// Pcap interoperability: mirror traces can be exported to the classic
// libpcap file format (and read back), so standard tooling — tcpdump,
// Wireshark, gopacket programs — can inspect synthetic captures, and real
// captures can be fed to the analyses. Packets are synthesized as
// Ethernet/IPv4/TCP headers carrying no payload bytes: the on-wire length
// is preserved in the record header while the captured bytes stop after
// the TCP header, exactly like a `tcpdump -s 54` header-only capture.

const (
	pcapMagic      = 0xa1b2c3d9 // standard magic, nanosecond variant below
	pcapMagicNanos = 0xa1b23c4d
	pcapVersionMaj = 2
	pcapVersionMin = 4
	linkTypeEth    = 1

	ethHeaderLen  = 14
	ipHeaderLen   = 20
	tcpHeaderLen  = 20
	capturedBytes = ethHeaderLen + ipHeaderLen + tcpHeaderLen
)

// PcapWriter streams headers as a nanosecond-resolution pcap file.
type PcapWriter struct {
	w     *bufio.Writer
	buf   [16 + capturedBytes]byte
	count int64
	err   error
}

// NewPcapWriter writes the pcap global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:], pcapMagicNanos)
	binary.LittleEndian.PutUint16(gh[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(gh[6:], pcapVersionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(gh[16:], capturedBytes) // snaplen
	binary.LittleEndian.PutUint32(gh[20:], linkTypeEth)
	if _, err := bw.Write(gh[:]); err != nil {
		return nil, fmt.Errorf("mirror: writing pcap header: %w", err)
	}
	return &PcapWriter{w: bw}, nil
}

// Packet implements the collector interface.
func (p *PcapWriter) Packet(h packet.Header) {
	if p.err != nil {
		return
	}
	b := p.buf[:]
	sec := uint32(h.Time / 1_000_000_000)
	nsec := uint32(h.Time % 1_000_000_000)
	binary.LittleEndian.PutUint32(b[0:], sec)
	binary.LittleEndian.PutUint32(b[4:], nsec)
	binary.LittleEndian.PutUint32(b[8:], capturedBytes) // incl_len
	wire := h.Size
	if wire < capturedBytes {
		wire = capturedBytes
	}
	binary.LittleEndian.PutUint32(b[12:], wire) // orig_len

	pkt := b[16:]
	synthEthernet(pkt, h)
	if _, err := p.w.Write(b); err != nil {
		p.err = err
		return
	}
	p.count++
}

// Packets implements the batch collector interface.
func (p *PcapWriter) Packets(hs []packet.Header) {
	for _, h := range hs {
		p.Packet(h)
	}
}

// synthEthernet fills a header-only Ethernet/IPv4/TCP frame for h.
func synthEthernet(b []byte, h packet.Header) {
	// Ethernet: MACs derived from host addresses, EtherType IPv4.
	putMAC(b[0:6], h.Key.Dst)
	putMAC(b[6:12], h.Key.Src)
	b[12], b[13] = 0x08, 0x00

	ip := b[ethHeaderLen:]
	ip[0] = 0x45 // v4, 20-byte header
	ip[1] = 0
	ipLen := h.Size
	if ipLen > 0xffff {
		ipLen = 0xffff
	}
	if ipLen < ipHeaderLen+tcpHeaderLen {
		ipLen = ipHeaderLen + tcpHeaderLen
	}
	binary.BigEndian.PutUint16(ip[2:], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = byte(h.Key.Proto)
	binary.BigEndian.PutUint32(ip[12:], 0x0a000000|uint32(h.Key.Src)&0x00ffffff)
	binary.BigEndian.PutUint32(ip[16:], 0x0a000000|uint32(h.Key.Dst)&0x00ffffff)
	ip[10], ip[11] = 0, 0
	csum := ipChecksum(ip[:ipHeaderLen])
	binary.BigEndian.PutUint16(ip[10:], csum)

	tcp := ip[ipHeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:], h.Key.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], h.Key.DstPort)
	tcp[12] = 5 << 4 // data offset: 20 bytes
	tcp[13] = tcpFlagBits(h.Flags)
	binary.BigEndian.PutUint16(tcp[14:], 0xffff) // window
}

// tcpFlagBits converts our flag set to the TCP header bits.
func tcpFlagBits(f packet.Flags) byte {
	var b byte
	if f&packet.FlagFIN != 0 {
		b |= 0x01
	}
	if f&packet.FlagSYN != 0 {
		b |= 0x02
	}
	if f&packet.FlagRST != 0 {
		b |= 0x04
	}
	if f&packet.FlagPSH != 0 {
		b |= 0x08
	}
	if f&packet.FlagACK != 0 {
		b |= 0x10
	}
	return b
}

// tcpFlagsFrom converts TCP header bits back to our flag set.
func tcpFlagsFrom(b byte) packet.Flags {
	var f packet.Flags
	if b&0x01 != 0 {
		f |= packet.FlagFIN
	}
	if b&0x02 != 0 {
		f |= packet.FlagSYN
	}
	if b&0x04 != 0 {
		f |= packet.FlagRST
	}
	if b&0x08 != 0 {
		f |= packet.FlagPSH
	}
	if b&0x10 != 0 {
		f |= packet.FlagACK
	}
	return f
}

// putMAC derives a locally administered MAC from a host address.
func putMAC(b []byte, a packet.Addr) {
	b[0] = 0x02
	b[1] = 0xfb
	binary.BigEndian.PutUint32(b[2:], uint32(a))
}

// ipChecksum computes the IPv4 header checksum.
func ipChecksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(h[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// Count returns the number of records written.
func (p *PcapWriter) Count() int64 { return p.count }

// Close flushes the writer and reports any sticky error.
func (p *PcapWriter) Close() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// PcapReader reads Ethernet/IPv4/TCP packets from a pcap file back into
// packet headers. Non-TCP/UDP or truncated records are skipped and
// counted.
type PcapReader struct {
	r       *bufio.Reader
	nanos   bool
	Skipped int64
}

// NewPcapReader validates the global header.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var gh [24]byte
	if _, err := io.ReadFull(br, gh[:]); err != nil {
		return nil, fmt.Errorf("mirror: reading pcap header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(gh[0:])
	nanos := false
	switch magic {
	case pcapMagicNanos:
		nanos = true
	case 0xa1b2c3d4: // microsecond variant
	default:
		return nil, fmt.Errorf("mirror: not a little-endian pcap file (magic %#x)", magic)
	}
	if lt := binary.LittleEndian.Uint32(gh[20:]); lt != linkTypeEth {
		return nil, fmt.Errorf("mirror: unsupported link type %d", lt)
	}
	return &PcapReader{r: br, nanos: nanos}, nil
}

// Next returns the next TCP/UDP header, skipping other records; io.EOF at
// end.
func (p *PcapReader) Next() (packet.Header, error) {
	for {
		var rh [16]byte
		if _, err := io.ReadFull(p.r, rh[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return packet.Header{}, fmt.Errorf("mirror: truncated pcap record: %w", err)
			}
			return packet.Header{}, err
		}
		sec := binary.LittleEndian.Uint32(rh[0:])
		sub := binary.LittleEndian.Uint32(rh[4:])
		incl := binary.LittleEndian.Uint32(rh[8:])
		orig := binary.LittleEndian.Uint32(rh[12:])
		if incl > 1<<20 {
			return packet.Header{}, fmt.Errorf("mirror: implausible pcap record length %d", incl)
		}
		data := make([]byte, incl)
		if _, err := io.ReadFull(p.r, data); err != nil {
			return packet.Header{}, fmt.Errorf("mirror: truncated pcap payload: %w", err)
		}
		h, ok := parseEthernet(data)
		if !ok {
			p.Skipped++
			continue
		}
		ns := int64(sub)
		if !p.nanos {
			ns *= 1000
		}
		h.Time = int64(sec)*1_000_000_000 + ns
		h.Size = orig
		return h, nil
	}
}

// parseEthernet extracts the 5-tuple and flags from a header-only frame.
func parseEthernet(b []byte) (packet.Header, bool) {
	var h packet.Header
	if len(b) < ethHeaderLen+ipHeaderLen {
		return h, false
	}
	if b[12] != 0x08 || b[13] != 0x00 {
		return h, false // not IPv4
	}
	ip := b[ethHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	// IHL below 5 words is malformed IPv4: without this check the layer-4
	// slice would start inside the IP header and parse garbage ports.
	if ip[0]>>4 != 4 || ihl < ipHeaderLen || len(ip) < ihl {
		return h, false
	}
	proto := packet.Proto(ip[9])
	if proto != packet.TCP && proto != packet.UDP {
		return h, false
	}
	h.Key.Proto = proto
	h.Key.Src = packet.Addr(binary.BigEndian.Uint32(ip[12:]) & 0x00ffffff)
	h.Key.Dst = packet.Addr(binary.BigEndian.Uint32(ip[16:]) & 0x00ffffff)
	l4 := ip[ihl:]
	if len(l4) < 4 {
		return h, false
	}
	h.Key.SrcPort = binary.BigEndian.Uint16(l4[0:])
	h.Key.DstPort = binary.BigEndian.Uint16(l4[2:])
	if proto == packet.TCP && len(l4) >= 14 {
		h.Flags = tcpFlagsFrom(l4[13])
	}
	return h, true
}

// ForEach replays the whole pcap into fn.
func (p *PcapReader) ForEach(fn func(packet.Header)) error {
	for {
		h, err := p.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fn(h)
	}
}
