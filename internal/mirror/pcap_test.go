package mirror

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"fbdcnet/internal/packet"
)

func pcapHdr(i int, flags packet.Flags) packet.Header {
	return packet.Header{
		Time: int64(i)*1_000_000 + 42, // exercise sec+nsec split
		Key: packet.FlowKey{
			Src: packet.Addr(100 + i), Dst: packet.Addr(200 + i),
			SrcPort: uint16(3000 + i), DstPort: 80, Proto: packet.TCP,
		},
		Size:  uint32(66 + i*10),
		Flags: flags,
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		w.Packet(pcapHdr(i, packet.FlagACK|packet.FlagPSH))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Fatalf("count %d", w.Count())
	}

	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = r.ForEach(func(h packet.Header) {
		want := pcapHdr(i, packet.FlagACK|packet.FlagPSH)
		if h.Key != want.Key {
			t.Fatalf("record %d key %v, want %v", i, h.Key, want.Key)
		}
		if h.Time != want.Time {
			t.Fatalf("record %d time %d, want %d", i, h.Time, want.Time)
		}
		if h.Size != want.Size && !(want.Size < capturedBytes && h.Size == capturedBytes) {
			t.Fatalf("record %d size %d, want %d", i, h.Size, want.Size)
		}
		if h.Flags != want.Flags {
			t.Fatalf("record %d flags %v, want %v", i, h.Flags, want.Flags)
		}
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("read %d records", i)
	}
	if r.Skipped != 0 {
		t.Fatalf("skipped %d", r.Skipped)
	}
}

func TestPcapAllFlagBits(t *testing.T) {
	flags := []packet.Flags{
		packet.FlagSYN, packet.FlagACK, packet.FlagFIN | packet.FlagACK,
		packet.FlagRST, packet.FlagPSH | packet.FlagACK,
	}
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	for i, f := range flags {
		w.Packet(pcapHdr(i, f))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	if err := r.ForEach(func(h packet.Header) {
		if h.Flags != flags[i] {
			t.Fatalf("flags[%d] = %v, want %v", i, h.Flags, flags[i])
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPcapGlobalHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	gh := buf.Bytes()
	if len(gh) != 24 {
		t.Fatalf("global header %d bytes", len(gh))
	}
	if binary.LittleEndian.Uint32(gh[0:]) != pcapMagicNanos {
		t.Fatal("wrong magic")
	}
	if binary.LittleEndian.Uint16(gh[4:]) != 2 || binary.LittleEndian.Uint16(gh[6:]) != 4 {
		t.Fatal("wrong version")
	}
	if binary.LittleEndian.Uint32(gh[20:]) != 1 {
		t.Fatal("wrong link type")
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero magic accepted")
	}
	if _, err := NewPcapReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestPcapWrongLinkType(t *testing.T) {
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:], pcapMagicNanos)
	binary.LittleEndian.PutUint32(gh[20:], 101) // raw IP
	if _, err := NewPcapReader(bytes.NewReader(gh[:])); err == nil {
		t.Fatal("unsupported link type accepted")
	}
}

func TestPcapSkipsNonIPv4(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	w.Packet(pcapHdr(0, packet.FlagACK))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the EtherType of the first (only) record: global 24 +
	// record header 16 + MACs 12.
	data[24+16+12] = 0x86
	data[24+16+13] = 0xdd // IPv6

	r, err := NewPcapReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after skipping, got %v", err)
	}
	if r.Skipped != 1 {
		t.Fatalf("skipped %d", r.Skipped)
	}
}

func TestPcapTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	w.Packet(pcapHdr(0, 0))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5]
	r, err := NewPcapReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record accepted: %v", err)
	}
}

func TestPcapIPChecksumValid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	w.Packet(pcapHdr(3, packet.FlagSYN))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ip := buf.Bytes()[24+16+ethHeaderLen : 24+16+ethHeaderLen+ipHeaderLen]
	// Recomputing the checksum over the header including the stored
	// checksum must yield zero (ones-complement property).
	var sum uint32
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + sum>>16
	}
	if ^uint16(sum) != 0 {
		t.Fatalf("IP checksum invalid: %#x", ^uint16(sum))
	}
}

func BenchmarkPcapWrite(b *testing.B) {
	w, _ := NewPcapWriter(io.Discard)
	h := pcapHdr(1, packet.FlagACK)
	for i := 0; i < b.N; i++ {
		w.Packet(h)
	}
}
