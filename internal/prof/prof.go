// Package prof is the shared pprof plumbing of the command-line tools:
// both cmd/experiments and cmd/dcsim expose -cpuprofile/-memprofile so
// performance PRs can attach profiles gathered from the exact binary and
// configuration under discussion.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function is idempotent: only the
// first call has an effect, so deferring it and calling it explicitly on
// an error path cannot double-close the profile.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %v", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "prof: closing CPU profile:", err)
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
					return
				}
				runtime.GC() // materialize the final live-heap numbers
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "prof: writing heap profile:", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
				}
			}
		})
	}, nil
}
