package prof

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStartNoProfiles(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent even when nothing was profiled
}

func TestStartUnwritableCPUPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof")
	if _, err := Start(bad, ""); err == nil {
		t.Fatal("unwritable cpu path: want error")
	}
}

func TestStartCPUProfileAlreadyRunning(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "cpu1.prof"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// A second CPU profile cannot start while the first runs; Start must
	// surface pprof's error and close its own file.
	if _, err := Start(filepath.Join(dir, "cpu2.prof"), ""); err == nil {
		t.Fatal("second concurrent CPU profile: want error")
	}
}

func TestStopWritesProfilesOnce(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}

	// A second stop must not rewrite the heap profile (or re-stop the CPU
	// profile): remove the file and check it stays gone.
	if err := os.Remove(mem); err != nil {
		t.Fatal(err)
	}
	stop()
	if _, err := os.Stat(mem); !os.IsNotExist(err) {
		t.Errorf("double stop rewrote %s", mem)
	}
}

func TestStopUnwritableMemPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "mem.prof")
	stop, err := Start("", bad)
	if err != nil {
		t.Fatal(err) // mem path errors surface at stop, not Start
	}
	stop() // must not panic; the error goes to stderr
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Errorf("heap profile unexpectedly written to %s", bad)
	}
}

// TestStopConcurrent hammers the stop closure from many goroutines: the
// sync.Once must make exactly one of them write the profiles while the
// rest return cleanly. Run under -race this pins the teardown against
// the background callers serve mode adds (signal handler, OnWindow
// error path, deferred cleanup).
func TestStopConcurrent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop()
		}()
	}
	wg.Wait()
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
