package stats_test

import (
	"fmt"

	"fbdcnet/internal/stats"
)

// ExampleSample shows the percentile workflow used by every figure
// reproduction.
func ExampleSample() {
	s := stats.NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	fmt.Printf("p50=%.1f p90=%.1f\n", s.Quantile(0.5), s.Quantile(0.9))
	// Output: p50=50.5 p90=90.1
}

// ExampleCounter_HeavyHitterSet shows the paper's §5.3 heavy-hitter
// definition: the minimum set of keys covering half the bytes.
func ExampleCounter_HeavyHitterSet() {
	c := stats.NewCounter()
	c.Add("rack-7", 600)
	c.Add("rack-3", 250)
	c.Add("rack-9", 150)
	for _, kv := range c.HeavyHitterSet(0.5) {
		fmt.Println(kv.Key)
	}
	// Output: rack-7
}

// ExampleTimeSeries bins event volumes per second, the substrate of the
// Figure 4 locality series.
func ExampleTimeSeries() {
	ts := stats.NewTimeSeries(0, 1.0)
	ts.Add(0.2, 100)
	ts.Add(0.7, 50)
	ts.Add(1.5, 30)
	fmt.Println(ts.Bins())
	// Output: [150 30]
}
