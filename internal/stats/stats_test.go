package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fbdcnet/internal/rng"
)

func TestMomentsBasics(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", m.Mean())
	}
	if math.Abs(m.Std()-2) > 1e-12 {
		t.Fatalf("std = %v", m.Std())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v", m.Min(), m.Max())
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Var() != 0 || m.N() != 0 {
		t.Fatal("empty moments not zero")
	}
}

func TestMomentsMatchesNaive(t *testing.T) {
	r := rng.New(1)
	err := quick.Check(func(seed uint64) bool {
		n := int(seed%100) + 2
		var m Moments
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
			m.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(n)
		return math.Abs(m.Mean()-mean) < 1e-6 && math.Abs(m.Var()-variance) < 1e-4
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	if q := s.Median(); math.Abs(q-50.5) > 1e-9 {
		t.Errorf("median = %v", q)
	}
	ps := s.Percentiles(0.1, 0.5, 0.9)
	if len(ps) != 3 || ps[0] >= ps[1] || ps[1] >= ps[2] {
		t.Errorf("percentiles not increasing: %v", ps)
	}
}

func TestSampleEmptyQuantile(t *testing.T) {
	s := NewSample(0)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should return 0")
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	s := NewSample(0)
	s.Add(5)
	_ = s.Median()
	s.Add(1) // must re-sort on next query
	if s.Quantile(0) != 1 {
		t.Fatal("sample not re-sorted after Add")
	}
}

func TestSampleCDF(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{3, 1, 2} {
		s.Add(x)
	}
	vals, fracs := s.CDF()
	if !sort.Float64sAreSorted(vals) {
		t.Fatal("CDF values unsorted")
	}
	if fracs[len(fracs)-1] != 1 {
		t.Fatalf("CDF does not end at 1: %v", fracs)
	}
	if math.Abs(fracs[0]-1.0/3) > 1e-12 {
		t.Fatalf("first fraction %v", fracs[0])
	}
}

func TestSampleFracBelow(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	if f := s.FracBelow(5); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("FracBelow(5) = %v", f)
	}
	if f := s.FracBelow(0); f != 0 {
		t.Fatalf("FracBelow(0) = %v", f)
	}
	if f := s.FracBelow(100); f != 1 {
		t.Fatalf("FracBelow(100) = %v", f)
	}
}

func TestSampleQuantileProperty(t *testing.T) {
	r := rng.New(2)
	s := NewSample(0)
	for i := 0; i < 1000; i++ {
		s.Add(r.Float64() * 100)
	}
	err := quick.Check(func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Quantile(pa) <= s.Quantile(pb)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogramQuantiles(t *testing.T) {
	h := NewLogHistogram(1, 1.1)
	r := rng.New(3)
	exact := NewSample(0)
	for i := 0; i < 100000; i++ {
		v := math.Exp(r.Norm()*2 + 5) // wide-range lognormal
		h.Add(v)
		exact.Add(v)
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		approx := h.Quantile(p)
		want := exact.Quantile(p)
		if approx < want/1.25 || approx > want*1.25 {
			t.Errorf("p=%v: approx %v vs exact %v", p, approx, want)
		}
	}
}

func TestLogHistogramBelowMin(t *testing.T) {
	h := NewLogHistogram(10, 2)
	h.Add(1)
	h.Add(0)
	h.Add(100)
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0.1); q != 10 {
		t.Fatalf("low quantile %v, want min edge", q)
	}
}

func TestLogHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLogHistogram(0, 2)
}

func TestCounterHeavyHitters(t *testing.T) {
	c := NewCounter()
	c.Add("a", 50)
	c.Add("b", 30)
	c.Add("c", 10)
	c.Add("d", 10)
	hh := c.HeavyHitterSet(0.5)
	if len(hh) != 1 || hh[0].Key != "a" {
		t.Fatalf("HH(0.5) = %v", hh)
	}
	hh = c.HeavyHitterSet(0.8)
	if len(hh) != 2 || hh[1].Key != "b" {
		t.Fatalf("HH(0.8) = %v", hh)
	}
	if c.Total() != 100 {
		t.Fatalf("total %v", c.Total())
	}
}

func TestCounterHeavyHittersCoverInvariant(t *testing.T) {
	r := rng.New(4)
	err := quick.Check(func(seed uint64) bool {
		c := NewCounter()
		n := int(seed%30) + 1
		for i := 0; i < n; i++ {
			c.Add(string(rune('a'+i%26))+string(rune('0'+i/26)), r.Float64()*100+0.01)
		}
		hh := c.HeavyHitterSet(0.5)
		sum := 0.0
		for _, kv := range hh {
			sum += kv.Val
		}
		if sum < 0.5*c.Total()-1e-9 {
			return false // must cover half
		}
		// minimality: removing the smallest member must drop below half
		if len(hh) > 1 && sum-hh[len(hh)-1].Val >= 0.5*c.Total() {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounterSortedDeterministic(t *testing.T) {
	c := NewCounter()
	c.Add("x", 5)
	c.Add("y", 5)
	c.Add("z", 5)
	first := c.Sorted()
	for i := 0; i < 5; i++ {
		again := c.Sorted()
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("Sorted not deterministic under ties")
			}
		}
	}
}

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(0, 1.0)
	ts.Add(0.5, 10)
	ts.Add(0.9, 5)
	ts.Add(1.1, 7)
	ts.Add(3.0, 2)
	bins := ts.Bins()
	want := []float64{15, 7, 0, 2}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
		}
	}
}

func TestTimeSeriesBeforeStart(t *testing.T) {
	ts := NewTimeSeries(10, 1)
	ts.Add(5, 3) // before start folds into bin 0
	if ts.Bins()[0] != 3 {
		t.Fatal("pre-start value lost")
	}
}

func TestTimeSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bin width")
		}
	}()
	NewTimeSeries(0, 0)
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < b.N; i++ {
		c.Add(keys[i%len(keys)], 1)
	}
}

func BenchmarkSampleQuantile(b *testing.B) {
	s := NewSample(0)
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}
