// Package stats provides the streaming and batch statistics used by the
// analysis pipeline: moment accumulators, exact percentile sets, log-bucket
// histograms for wide-dynamic-range quantities (flow sizes span 9 orders
// of magnitude in the paper's figures), CDF extraction, time-binned
// series, and top-k byte counters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates count, mean and variance online (Welford's method).
// The zero value is ready to use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean (0 for an empty accumulator).
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance.
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation (0 if empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 if empty).
func (m *Moments) Max() float64 { return m.max }

// Sample collects raw observations for exact quantiles. Use for bounded
// datasets (per-experiment analyses); use Histogram for unbounded streams.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t
}

// Mean returns the sample mean, or 0 if empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the p-quantile (0 <= p <= 1) using linear interpolation
// between closest ranks. Returns 0 for an empty sample.
func (s *Sample) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := p * float64(len(s.xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[i]*(1-frac) + s.xs[i+1]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Percentiles evaluates Quantile at each of the given percentile points
// (expressed in [0,1]).
func (s *Sample) Percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = s.Quantile(p)
	}
	return out
}

// CDF returns (values, cumulative fractions) suitable for plotting: values
// are the sorted observations, fractions are (i+1)/n.
func (s *Sample) CDF() (values, fractions []float64) {
	s.sort()
	values = append([]float64(nil), s.xs...)
	fractions = make([]float64, len(values))
	n := float64(len(values))
	for i := range fractions {
		fractions[i] = float64(i+1) / n
	}
	return values, fractions
}

// FracBelow returns the fraction of observations strictly less than x.
func (s *Sample) FracBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, x)
	return float64(i) / float64(len(s.xs))
}

// Values returns the (sorted) raw observations. The returned slice is
// owned by the Sample; callers must not modify it.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

// LogHistogram buckets positive values into logarithmically spaced bins.
// It provides approximate quantiles over unbounded streams with bounded
// memory, with relative error bounded by the bucket growth factor.
type LogHistogram struct {
	base    float64 // bucket boundary growth factor, e.g. 1.2
	lnBase  float64
	min     float64 // left edge of bucket 0
	counts  []int64
	total   int64
	zeroCnt int64 // values <= 0 or < min land here
}

// NewLogHistogram creates a histogram covering [min, +inf) with bucket
// boundaries min*base^k. Typical: NewLogHistogram(1, 1.15) for byte sizes.
func NewLogHistogram(min, base float64) *LogHistogram {
	if min <= 0 || base <= 1 {
		panic("stats: LogHistogram needs min > 0 and base > 1")
	}
	return &LogHistogram{base: base, lnBase: math.Log(base), min: min}
}

func (h *LogHistogram) bucket(x float64) int {
	return int(math.Log(x/h.min) / h.lnBase)
}

// Add records one observation.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x < h.min {
		h.zeroCnt++
		return
	}
	b := h.bucket(x)
	if b >= len(h.counts) {
		grown := make([]int64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
}

// N returns the number of observations recorded.
func (h *LogHistogram) N() int64 { return h.total }

// Quantile returns an approximate p-quantile (bucket upper edge of the
// bucket containing the rank).
func (h *LogHistogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(p * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	if rank < h.zeroCnt {
		return h.min
	}
	acc := h.zeroCnt
	for b, c := range h.counts {
		acc += c
		if acc > rank {
			return h.min * math.Pow(h.base, float64(b+1))
		}
	}
	return h.min * math.Pow(h.base, float64(len(h.counts)))
}

// Counter tracks per-key byte (or packet) totals; keys are generic strings
// formatted by the caller (flow/host/rack identifiers).
type Counter struct {
	m map[string]float64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]float64)} }

// Add accumulates v against key.
func (c *Counter) Add(key string, v float64) { c.m[key] += v }

// Get returns the accumulated value for key.
func (c *Counter) Get(key string) float64 { return c.m[key] }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.m) }

// Total returns the sum over all keys.
func (c *Counter) Total() float64 {
	t := 0.0
	for _, v := range c.m {
		t += v
	}
	return t
}

// KV is one key with its accumulated value.
type KV struct {
	Key string
	Val float64
}

// Sorted returns all entries in descending value order, ties broken by key
// for determinism.
func (c *Counter) Sorted() []KV {
	out := make([]KV, 0, len(c.m))
	for k, v := range c.m {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return out[i].Val > out[j].Val
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// HeavyHitterSet returns the minimum prefix of descending-ordered keys
// whose values sum to at least frac of the total — the paper's §5.3
// heavy-hitter definition with frac = 0.5 — along with their values.
func (c *Counter) HeavyHitterSet(frac float64) []KV {
	sorted := c.Sorted()
	target := frac * c.Total()
	acc := 0.0
	for i, kv := range sorted {
		acc += kv.Val
		if acc >= target {
			return sorted[:i+1]
		}
	}
	return sorted
}

// TimeSeries bins (time, value) observations into fixed-width bins,
// summing values per bin. Times are float64 seconds.
type TimeSeries struct {
	binWidth float64
	start    float64
	bins     []float64
}

// NewTimeSeries creates a series starting at start with the given bin
// width in seconds.
func NewTimeSeries(start, binWidth float64) *TimeSeries {
	if binWidth <= 0 {
		panic("stats: TimeSeries bin width must be positive")
	}
	return &TimeSeries{binWidth: binWidth, start: start}
}

// Add accumulates v into the bin containing t. Times before start are
// folded into bin 0.
func (ts *TimeSeries) Add(t, v float64) {
	i := 0
	if t > ts.start {
		i = int((t - ts.start) / ts.binWidth)
	}
	if i >= len(ts.bins) {
		grown := make([]float64, i+1)
		copy(grown, ts.bins)
		ts.bins = grown
	}
	ts.bins[i] += v
}

// Bins returns the accumulated per-bin sums.
func (ts *TimeSeries) Bins() []float64 { return ts.bins }

// BinWidth returns the bin width in seconds.
func (ts *TimeSeries) BinWidth() float64 { return ts.binWidth }

// String renders a short summary, mainly for debugging.
func (ts *TimeSeries) String() string {
	return fmt.Sprintf("TimeSeries{bins=%d, width=%gs}", len(ts.bins), ts.binWidth)
}
