package fbflow

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"fbdcnet/internal/packet"
	"fbdcnet/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustBuild(topology.Preset(topology.ScaleTiny))
}

func TestAgentSamplingRate(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 2, ds.Add)
	a := NewAgent(p, 100, 42, func() int64 { return 0 })

	h := packet.Header{
		Key:  packet.FlowKey{Src: topo.Addr(0), Dst: topo.Addr(5), Proto: packet.TCP},
		Size: 200,
	}
	const n = 1_000_000
	for i := 0; i < n; i++ {
		a.Packet(h)
	}
	p.Close()

	if a.Seen() != n {
		t.Fatalf("seen %d", a.Seen())
	}
	want := float64(n) / 100
	if got := float64(a.Sampled()); math.Abs(got-want) > want*0.05 {
		t.Fatalf("sampled %v, want ≈%v", got, want)
	}
	// Weighted byte estimate must be unbiased.
	est := ds.TotalBytes()
	trueBytes := float64(n) * 200
	if math.Abs(est-trueBytes) > trueBytes*0.05 {
		t.Fatalf("byte estimate %v, want ≈%v", est, trueBytes)
	}
}

func TestTaggerAnnotation(t *testing.T) {
	topo := testTopo(t)
	var mu sync.Mutex
	var recs []Record
	p := NewPipeline(topo, 1, func(r Record) {
		mu.Lock()
		recs = append(recs, r)
		mu.Unlock()
	})
	src, dst := topo.Host(0), topo.Host(5)
	p.AddFlow(7, src.Addr, dst.Addr, 1234)
	p.Close()

	if len(recs) != 1 {
		t.Fatalf("records %d", len(recs))
	}
	r := recs[0]
	if r.SrcRack != src.Rack || r.DstRack != dst.Rack {
		t.Error("rack annotation wrong")
	}
	if r.SrcCluster != src.Cluster || r.SrcDC != src.Datacenter {
		t.Error("cluster/DC annotation wrong")
	}
	if r.SrcRole != src.Role || r.DstRole != dst.Role {
		t.Error("role annotation wrong")
	}
	if r.SrcClusterType != topo.Clusters[src.Cluster].Type {
		t.Error("cluster type annotation wrong")
	}
	if r.Locality != topo.Locality(src.ID, dst.ID) {
		t.Error("locality annotation wrong")
	}
	if r.Bytes != 1234 || r.Minute != 7 {
		t.Errorf("bytes/minute wrong: %+v", r)
	}
}

func TestUnknownAddressDropped(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 1, ds.Add)
	p.AddFlow(0, packet.Addr(1<<30), topo.Addr(0), 100)
	p.Close()
	if ds.TotalBytes() != 0 {
		t.Fatal("record with unknown address not dropped")
	}
}

func TestDatasetLocalityShares(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 4, ds.Add)

	// One intra-rack and one inter-DC flow from the same Hadoop host.
	hadoop := topo.HostsByRole(topology.RoleHadoop)[0]
	rack := topo.Racks[topo.HostRack(hadoop)]
	same := rack.Host(1)
	far := topo.Host(topology.HostID(topo.NumHosts() - 1)) // other site
	p.AddFlow(0, topo.Addr(hadoop), topo.Addr(same), 300)
	p.AddFlow(0, topo.Addr(hadoop), far.Addr, 700)
	p.Close()

	share := ds.LocalityShare(topology.ClusterHadoop)
	if math.Abs(share[topology.IntraRack]-0.3) > 1e-9 {
		t.Errorf("intra-rack share %v", share[topology.IntraRack])
	}
	if math.Abs(share[topology.InterDatacenter]-0.7) > 1e-9 {
		t.Errorf("inter-DC share %v", share[topology.InterDatacenter])
	}
	all := ds.LocalityShareAll()
	sum := 0.0
	for _, v := range all {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("all shares sum to %v", sum)
	}
	ts := ds.TrafficShare()
	if math.Abs(ts[topology.ClusterHadoop]-1) > 1e-9 {
		t.Errorf("traffic share %v", ts)
	}
}

func TestDatasetRackMatrix(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 1, ds.Add)

	cl := topo.ClustersOfType(topology.ClusterHadoop)[0]
	racks := topo.Clusters[cl].Racks
	src := topo.Racks[racks[0]].Host(0)
	dst := topo.Racks[racks[1]].Host(0)
	p.AddFlow(0, topo.Addr(src), topo.Addr(dst), 500)
	p.Close()

	m := ds.RackMatrix(topo, cl)
	if m[0][1] != 500 {
		t.Fatalf("matrix[0][1] = %v", m[0][1])
	}
	if m[1][0] != 0 {
		t.Fatal("matrix should be directional")
	}
}

func TestDatasetClusterMatrixAndCrossCounters(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 1, ds.Add)

	dc := topo.Datacenters[0]
	c0, c1 := dc.Clusters[0], dc.Clusters[1]
	src := topo.Racks[topo.Clusters[c0].Racks[0]].Host(0)
	dst := topo.Racks[topo.Clusters[c1].Racks[0]].Host(0)
	p.AddFlow(0, topo.Addr(src), topo.Addr(dst), 800)
	p.Close()

	m := ds.ClusterMatrix([]int{c0, c1})
	if m[0][1] != 800 {
		t.Fatalf("cluster matrix = %v", m)
	}
	if got := ds.HostOutBytes()[src]; got != 800 {
		t.Fatalf("host out = %v", got)
	}
	if got := ds.RackCrossBytes()[topo.HostRack(src)]; got != 800 {
		t.Fatalf("rack cross = %v", got)
	}
	if got := ds.ClusterCrossBytes()[c0]; got != 800 {
		t.Fatalf("cluster cross = %v", got)
	}
}

func TestIntraRackNotCountedAsCross(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 1, ds.Add)
	rack := topo.Racks[0]
	p.AddFlow(0, topo.Host(rack.Host(0)).Addr, topo.Host(rack.Host(1)).Addr, 100)
	p.Close()
	if len(ds.RackCrossBytes()) != 0 {
		t.Fatal("intra-rack traffic counted as rack-crossing")
	}
	if len(ds.ClusterCrossBytes()) != 0 {
		t.Fatal("intra-rack traffic counted as cluster-crossing")
	}
}

func TestPerMinuteSeries(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 2, ds.Add)
	for m := int64(0); m < 5; m++ {
		p.AddFlow(m, topo.Addr(0), topo.Addr(5), float64(100*(m+1)))
	}
	p.Close()
	series := ds.PerMinute()
	if len(series) != 5 {
		t.Fatalf("minutes %d", len(series))
	}
	if series[2] != 300 {
		t.Fatalf("minute 2 = %v", series[2])
	}
}

func TestPipelineConcurrentIngestion(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 4, ds.Add)
	var wg sync.WaitGroup
	const writers, per = 8, 1000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.AddFlow(0, topo.Addr(0), topo.Addr(9), 1)
			}
		}()
	}
	wg.Wait()
	p.Close()
	if got := ds.TotalBytes(); got != writers*per {
		t.Fatalf("total %v, want %d", got, writers*per)
	}
}

func TestEmptyDatasetQueries(t *testing.T) {
	ds := NewDataset()
	if len(ds.LocalityShareAll()) != 0 || len(ds.TrafficShare()) != 0 {
		t.Fatal("empty dataset returned shares")
	}
	if len(ds.LocalityShare(topology.ClusterHadoop)) != 0 {
		t.Fatal("empty dataset returned per-type shares")
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	topo := testTopo(t)
	ds := NewDataset()
	p := NewPipeline(topo, 2, ds.Add)
	// Build a dataset with every aggregate populated.
	hadoop := topo.HostsByRole(topology.RoleHadoop)[0]
	rackPeer := topo.Racks[topo.HostRack(hadoop)].Host(1)
	far := topo.Host(topology.HostID(topo.NumHosts() - 1))
	for m := int64(0); m < 3; m++ {
		p.AddFlow(m, topo.Addr(hadoop), topo.Addr(rackPeer), 100)
		p.AddFlow(m, topo.Addr(hadoop), far.Addr, 900)
	}
	p.Close()

	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBytes() != ds.TotalBytes() {
		t.Fatalf("total %v vs %v", got.TotalBytes(), ds.TotalBytes())
	}
	a, b := ds.LocalityShareAll(), got.LocalityShareAll()
	for l, v := range a {
		if math.Abs(b[l]-v) > 1e-12 {
			t.Fatalf("locality %v diverged: %v vs %v", l, b[l], v)
		}
	}
	am, bm := ds.PerMinute(), got.PerMinute()
	if len(am) != len(bm) {
		t.Fatalf("minutes %d vs %d", len(bm), len(am))
	}
	for k, v := range am {
		if bm[k] != v {
			t.Fatalf("minute %d: %v vs %v", k, bm[k], v)
		}
	}
	ra, rb := ds.RackMatrix(topo, topo.HostCluster(hadoop)), got.RackMatrix(topo, topo.HostCluster(hadoop))
	for i := range ra {
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				t.Fatalf("rack matrix [%d][%d] diverged", i, j)
			}
		}
	}
	if got.HostOutBytes()[hadoop] != ds.HostOutBytes()[hadoop] {
		t.Fatal("host out diverged")
	}
	if got.RackCrossBytes()[topo.HostRack(hadoop)] != ds.RackCrossBytes()[topo.HostRack(hadoop)] {
		t.Fatal("rack cross diverged")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version": 99}`))); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version":1,"rack_pair":{"bad":1}}`))); err == nil {
		t.Fatal("bad pair key accepted")
	}
}
