package fbflow

import (
	"testing"

	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// fillPartial accumulates a deterministic pseudo-random record stream
// into p (optionally with cardinality attached) and returns the count.
func fillPartial(t *testing.T, p *Partial, seed uint64, n int) {
	t.Helper()
	topo := testTopo(t)
	tagger := NewTagger(topo)
	r := rng.New(seed)
	hosts := topo.NumHosts()
	for i := 0; i < n; i++ {
		src := topology.HostID(r.Intn(hosts))
		dst := topology.HostID(r.Intn(hosts))
		rec, ok := tagger.Flow(int64(i%7), topo.Addr(src), topo.Addr(dst), 40+r.Float64()*1e6)
		if !ok {
			t.Fatalf("tagger rejected in-topology flow %d", i)
		}
		p.Add(rec)
	}
}

// mergeInto merges p into a fresh dataset and returns its archive form,
// the full per-key state in one comparable blob.
func mergeInto(t *testing.T, p *Partial) string {
	t.Helper()
	ds := NewDataset()
	ds.MergePartial(p)
	var b []byte
	buf := &sliceWriter{b: b}
	if err := ds.Save(buf); err != nil {
		t.Fatalf("saving dataset: %v", err)
	}
	return string(buf.b)
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func TestPartialWireRoundTrip(t *testing.T) {
	for _, card := range []bool{false, true} {
		p := NewPartial()
		if card {
			p.EnableCardinality()
		}
		fillPartial(t, p, 99, 4096)
		wire := p.AppendBinary(nil)

		got := NewPartial()
		if card {
			got.EnableCardinality()
			// Dirty the sketches to prove decode replaces, not merges.
			got.card.Add(Record{Src: 1, Dst: 2})
		}
		if err := got.DecodeBinary(wire); err != nil {
			t.Fatalf("decode (card=%v): %v", card, err)
		}
		if a, b := mergeInto(t, p), mergeInto(t, got); a != b {
			t.Fatalf("round-trip (card=%v) changed the merged dataset", card)
		}
		if card {
			if a, b := p.card.Flows(), got.card.Flows(); a != b {
				t.Fatalf("cardinality flows changed over the wire: %v != %v", a, b)
			}
		} else if got.card != nil {
			t.Fatalf("cardinality appeared from nowhere")
		}
		// Re-encoding the decoded partial must be byte-identical: insertion
		// order survived the wire.
		if string(got.AppendBinary(nil)) != string(wire) {
			t.Fatalf("re-encode (card=%v) not byte-identical", card)
		}
	}
}

func TestPartialWireDecodeIntoDirtyPartial(t *testing.T) {
	p := NewPartial()
	fillPartial(t, p, 7, 512)
	wire := p.AppendBinary(nil)

	dirty := NewPartial()
	fillPartial(t, dirty, 8, 2048)
	if err := dirty.DecodeBinary(wire); err != nil {
		t.Fatalf("decode into dirty partial: %v", err)
	}
	if a, b := mergeInto(t, p), mergeInto(t, dirty); a != b {
		t.Fatalf("decode into dirty partial left stale state behind")
	}
}

func TestPartialWireErrors(t *testing.T) {
	p := NewPartial()
	p.EnableCardinality()
	fillPartial(t, p, 3, 256)
	wire := p.AppendBinary(nil)
	into := NewPartial()

	// Every truncation point must error, never panic.
	for cut := 0; cut < len(wire); cut += 97 {
		if err := into.DecodeBinary(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if err := into.DecodeBinary(append(append([]byte{}, wire...), 0)); err == nil {
		t.Fatalf("trailing garbage decoded cleanly")
	}
	bad := append([]byte{}, wire...)
	bad[0] = 99 // version
	if err := into.DecodeBinary(bad); err == nil {
		t.Fatalf("bad version decoded cleanly")
	}
	bad = append([]byte{}, wire...)
	bad[1] = 0xff // flags
	if err := into.DecodeBinary(bad); err == nil {
		t.Fatalf("unknown flags decoded cleanly")
	}
}

func TestPartialWireSteadyStateAllocs(t *testing.T) {
	p := NewPartial()
	fillPartial(t, p, 11, 4096)
	buf := p.AppendBinary(nil)
	into := NewPartial()
	if err := into.DecodeBinary(buf); err != nil {
		t.Fatalf("warming decode: %v", err)
	}

	if n := testing.AllocsPerRun(50, func() {
		buf = p.AppendBinary(buf[:0])
	}); n != 0 {
		t.Fatalf("steady-state encode allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := into.DecodeBinary(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state decode allocates %v/op", n)
	}
}
