package fbflow

import (
	"encoding/binary"
	"fmt"
	"math"

	"fbdcnet/internal/openhash"
	"fbdcnet/internal/topology"
)

// Binary wire form of a Partial — the payload a distributed fleet agent
// ships to the aggregator for every (window, shard) cell. The encoding is
// a direct dump of the columnar layout: dense float64 arrays verbatim,
// each open-addressing table as a count followed by (key, value) pairs in
// insertion order. Decoding with Slot in that same order reproduces the
// table's insertion order exactly, so MergePartial on a decoded Partial
// performs the identical per-key addition sequence as on the original —
// the bit-identity contract survives the wire.
//
// All integers are little-endian; float64s travel as Float64bits, so
// every sum round-trips bit-exactly.

// partialWireVersion identifies the Partial payload layout.
const partialWireVersion = 1

// partialFlagCard marks a payload carrying HLL cardinality state.
const partialFlagCard = 1

// localityCells is the dense locality matrix size.
const localityCells = (int(topology.ClusterDB) + 1) * (int(topology.InterDatacenter) + 1)

// maxWireTableEntries caps the declared size of one table on the wire: a
// corrupt count must not drive a multi-gigabyte allocation before the
// per-entry bounds check catches the truncation.
const maxWireTableEntries = 1 << 27

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// appendTable appends count + insertion-ordered (key, value) pairs.
func appendTable(buf []byte, t *openhash.Table[float64]) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Len()))
	t.Range(func(k uint64, v *float64) {
		buf = binary.LittleEndian.AppendUint64(buf, k)
		buf = appendF64(buf, *v)
	})
	return buf
}

// decodeTable fills t (already Reset) from the front of data and returns
// the remainder.
func decodeTable(data []byte, t *openhash.Table[float64], name string) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("fbflow: partial wire: %s count truncated", name)
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n > maxWireTableEntries {
		return nil, fmt.Errorf("fbflow: partial wire: %s declares %d entries (cap %d)", name, n, maxWireTableEntries)
	}
	if len(data) < 16*n {
		return nil, fmt.Errorf("fbflow: partial wire: %s truncated: %d entries need %d bytes, have %d",
			name, n, 16*n, len(data))
	}
	for i := 0; i < n; i++ {
		k := binary.LittleEndian.Uint64(data)
		if k == ^uint64(0) {
			return nil, fmt.Errorf("fbflow: partial wire: %s entry %d uses the reserved sentinel key", name, i)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		before := t.Len()
		slot := t.Slot(k)
		if t.Len() == before {
			return nil, fmt.Errorf("fbflow: partial wire: %s repeats key %#x", name, k)
		}
		*slot = v
		data = data[16:]
	}
	return data, nil
}

// AppendBinary appends p's wire form to buf and returns the extended
// slice. The encoder allocates nothing beyond buf growth, so a pooled
// buffer makes steady-state encoding allocation-free.
func (p *Partial) AppendBinary(buf []byte) []byte {
	flags := byte(0)
	if p.card != nil {
		flags |= partialFlagCard
	}
	buf = append(buf, partialWireVersion, flags)
	buf = appendF64(buf, p.totalBytes)
	for ct := range p.locality {
		for l := range p.locality[ct] {
			buf = appendF64(buf, p.locality[ct][l])
		}
	}
	for _, b := range p.byClusterType {
		buf = appendF64(buf, b)
	}
	buf = appendTable(buf, &p.rackPair)
	buf = appendTable(buf, &p.clusterPair)
	buf = appendTable(buf, &p.perMinute)
	buf = appendTable(buf, &p.hostOut)
	buf = appendTable(buf, &p.rackCross)
	buf = appendTable(buf, &p.clusterCross)
	if p.card != nil {
		buf = p.card.AppendBinary(buf)
	}
	return buf
}

// DecodeBinary replaces p's contents with the wire form in data (the
// whole slice must be consumed — trailing garbage errors). The receiver
// is Reset first, so decoding into a pooled Partial reuses its table
// capacity and allocates nothing in the steady state.
func (p *Partial) DecodeBinary(data []byte) error {
	p.Reset()
	if len(data) < 2 {
		return fmt.Errorf("fbflow: partial wire: header truncated")
	}
	if data[0] != partialWireVersion {
		return fmt.Errorf("fbflow: partial wire: unsupported version %d", data[0])
	}
	flags := data[1]
	if flags&^partialFlagCard != 0 {
		return fmt.Errorf("fbflow: partial wire: unknown flags %#x", flags)
	}
	data = data[2:]
	dense := 1 + localityCells + len(p.byClusterType)
	if len(data) < 8*dense {
		return fmt.Errorf("fbflow: partial wire: dense block truncated: need %d bytes, have %d", 8*dense, len(data))
	}
	f64 := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		return v
	}
	p.totalBytes = f64()
	for ct := range p.locality {
		for l := range p.locality[ct] {
			p.locality[ct][l] = f64()
		}
	}
	for ct := range p.byClusterType {
		p.byClusterType[ct] = f64()
	}
	var err error
	for _, tb := range []struct {
		t    *openhash.Table[float64]
		name string
	}{
		{&p.rackPair, "rackPair"},
		{&p.clusterPair, "clusterPair"},
		{&p.perMinute, "perMinute"},
		{&p.hostOut, "hostOut"},
		{&p.rackCross, "rackCross"},
		{&p.clusterCross, "clusterCross"},
	} {
		if data, err = decodeTable(data, tb.t, tb.name); err != nil {
			return err
		}
	}
	if flags&partialFlagCard != 0 {
		p.EnableCardinality()
		if data, err = p.card.DecodeBinary(data); err != nil {
			return err
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("fbflow: partial wire: %d trailing bytes", len(data))
	}
	return nil
}

// AppendBinary appends the three HLL sketches' wire forms to buf.
func (c *Cardinality) AppendBinary(buf []byte) []byte {
	buf = c.flows.AppendBinary(buf)
	buf = c.hosts.AppendBinary(buf)
	return c.racks.AppendBinary(buf)
}

// DecodeBinary replaces c's sketches with the wire form at the front of
// data and returns the remainder.
func (c *Cardinality) DecodeBinary(data []byte) ([]byte, error) {
	var err error
	for _, h := range []struct {
		sk interface {
			DecodeBinary([]byte) ([]byte, error)
		}
		name string
	}{
		{c.flows, "flows"},
		{c.hosts, "hosts"},
		{c.racks, "racks"},
	} {
		if data, err = h.sk.DecodeBinary(data); err != nil {
			return nil, fmt.Errorf("fbflow: cardinality %s: %w", h.name, err)
		}
	}
	return data, nil
}
