package fbflow

import (
	"sync"

	"fbdcnet/internal/topology"
)

// Dataset is the analytics store at the end of the pipeline (the
// Scuba/Hive stage of Figure 3): thread-safe aggregation of tagged
// records along the dimensions the paper's fleet analyses query. Raw
// records are not retained; memory stays bounded at matrix-of-racks
// scale.
type Dataset struct {
	mu sync.Mutex

	totalBytes float64

	// locality[clusterType][locality] accumulates bytes for Table 3.
	locality map[topology.ClusterType]map[topology.Locality]float64
	// byClusterType accumulates bytes for Table 3's share row.
	byClusterType map[topology.ClusterType]float64
	// rackPair accumulates the Figure 5a/5b matrices.
	rackPair map[[2]int]float64
	// clusterPair accumulates the Figure 5c matrix.
	clusterPair map[[2]int]float64
	// perMinute accumulates fleet bytes per capture minute (diurnal).
	perMinute map[int64]float64
	// hostOut / rackCross / clusterCross feed §4.1 tier utilization:
	// bytes leaving each host, each rack, and each cluster.
	hostOut      map[topology.HostID]float64
	rackCross    map[int]float64
	clusterCross map[int]float64

	// card holds merged distinct-population sketches when the partials
	// that built this dataset had cardinality enabled; nil otherwise.
	card *Cardinality
}

// NewDataset returns an empty Dataset.
func NewDataset() *Dataset {
	return &Dataset{
		locality:      make(map[topology.ClusterType]map[topology.Locality]float64),
		byClusterType: make(map[topology.ClusterType]float64),
		rackPair:      make(map[[2]int]float64),
		clusterPair:   make(map[[2]int]float64),
		perMinute:     make(map[int64]float64),
		hostOut:       make(map[topology.HostID]float64),
		rackCross:     make(map[int]float64),
		clusterCross:  make(map[int]float64),
	}
}

// Add ingests one record; safe for concurrent use (it is the pipeline
// sink).
func (d *Dataset) Add(r Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.totalBytes += r.Bytes
	loc := d.locality[r.SrcClusterType]
	if loc == nil {
		loc = make(map[topology.Locality]float64)
		d.locality[r.SrcClusterType] = loc
	}
	loc[r.Locality] += r.Bytes
	d.byClusterType[r.SrcClusterType] += r.Bytes
	d.rackPair[[2]int{r.SrcRack, r.DstRack}] += r.Bytes
	d.clusterPair[[2]int{r.SrcCluster, r.DstCluster}] += r.Bytes
	d.perMinute[r.Minute] += r.Bytes
	d.hostOut[r.Src] += r.Bytes
	if r.Locality != topology.SameHost && r.Locality != topology.IntraRack {
		d.rackCross[r.SrcRack] += r.Bytes
		if r.Locality != topology.IntraCluster {
			d.clusterCross[r.SrcCluster] += r.Bytes
		}
	}
}

// Merge folds every aggregate of other into d. The parallel fleet engine
// gives each (window, shard) task its own partial Dataset and merges the
// partials in a fixed task order: per-key float additions then happen in
// the same sequence regardless of which worker produced which partial or
// when it finished, so the merged dataset is bit-identical across worker
// counts. other must be quiescent for the duration of the call.
func (d *Dataset) Merge(other *Dataset) {
	if other == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	d.totalBytes += other.totalBytes
	for ct, loc := range other.locality {
		dst := d.locality[ct]
		if dst == nil {
			dst = make(map[topology.Locality]float64, len(loc))
			d.locality[ct] = dst
		}
		for l, b := range loc {
			dst[l] += b
		}
	}
	for ct, b := range other.byClusterType {
		d.byClusterType[ct] += b
	}
	for pair, b := range other.rackPair {
		d.rackPair[pair] += b
	}
	for pair, b := range other.clusterPair {
		d.clusterPair[pair] += b
	}
	for m, b := range other.perMinute {
		d.perMinute[m] += b
	}
	for h, b := range other.hostOut {
		d.hostOut[h] += b
	}
	for r, b := range other.rackCross {
		d.rackCross[r] += b
	}
	for c, b := range other.clusterCross {
		d.clusterCross[c] += b
	}
	if other.card != nil {
		if d.card == nil {
			d.card = NewCardinality()
		}
		d.card.Merge(other.card)
	}
}

// Cardinality returns the merged distinct-population sketches, or nil
// when the collection ran without them (exact mode).
func (d *Dataset) Cardinality() *Cardinality {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.card
}

// TotalBytes returns the estimated fleet-wide bytes ingested.
func (d *Dataset) TotalBytes() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totalBytes
}

// LocalityShare returns, for one cluster type, the fraction of its
// traffic per locality tier — one column of Table 3.
func (d *Dataset) LocalityShare(ct topology.ClusterType) map[topology.Locality]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[topology.Locality]float64)
	total := d.byClusterType[ct]
	if total == 0 {
		return out
	}
	for l, b := range d.locality[ct] {
		out[l] = b / total
	}
	return out
}

// LocalityShareAll returns the fleet-wide locality fractions — Table 3's
// "All" column. Cluster types are folded in declaration order, not map
// order: per-locality sums must accumulate in a fixed sequence for the
// result to be bit-identical run-to-run (the determinism contract the
// parallel engine's regression test asserts).
func (d *Dataset) LocalityShareAll() map[topology.Locality]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[topology.Locality]float64)
	if d.totalBytes == 0 {
		return out
	}
	for _, ct := range topology.ClusterTypes {
		for l, b := range d.locality[ct] {
			out[l] += b / d.totalBytes
		}
	}
	return out
}

// TrafficShare returns each cluster type's share of total traffic —
// Table 3's last row.
func (d *Dataset) TrafficShare() map[topology.ClusterType]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[topology.ClusterType]float64)
	if d.totalBytes == 0 {
		return out
	}
	for ct, b := range d.byClusterType {
		out[ct] = b / d.totalBytes
	}
	return out
}

// RackMatrix returns the rack-to-rack byte matrix restricted to the racks
// of one cluster, indexed by rack position within the cluster (Fig 5a/b).
func (d *Dataset) RackMatrix(topo *topology.Topology, cluster int) [][]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	racks := topo.Clusters[cluster].Racks
	pos := make(map[int]int, len(racks))
	for i, r := range racks {
		pos[r] = i
	}
	m := make([][]float64, len(racks))
	for i := range m {
		m[i] = make([]float64, len(racks))
	}
	for pair, b := range d.rackPair {
		si, ok1 := pos[pair[0]]
		di, ok2 := pos[pair[1]]
		if ok1 && ok2 {
			m[si][di] += b
		}
	}
	return m
}

// ClusterMatrix returns the cluster-to-cluster byte matrix over the given
// clusters (Fig 5c).
func (d *Dataset) ClusterMatrix(clusters []int) [][]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	pos := make(map[int]int, len(clusters))
	for i, c := range clusters {
		pos[c] = i
	}
	m := make([][]float64, len(clusters))
	for i := range m {
		m[i] = make([]float64, len(clusters))
	}
	for pair, b := range d.clusterPair {
		si, ok1 := pos[pair[0]]
		di, ok2 := pos[pair[1]]
		if ok1 && ok2 {
			m[si][di] += b
		}
	}
	return m
}

// PerMinute returns the fleet byte series by capture minute.
func (d *Dataset) PerMinute() map[int64]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int64]float64, len(d.perMinute))
	for k, v := range d.perMinute {
		out[k] = v
	}
	return out
}

// HostOutBytes returns bytes sent per host (edge-link accounting).
func (d *Dataset) HostOutBytes() map[topology.HostID]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[topology.HostID]float64, len(d.hostOut))
	for k, v := range d.hostOut {
		out[k] = v
	}
	return out
}

// RackCrossBytes returns bytes leaving each rack (RSW uplink accounting).
func (d *Dataset) RackCrossBytes() map[int]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]float64, len(d.rackCross))
	for k, v := range d.rackCross {
		out[k] = v
	}
	return out
}

// ClusterCrossBytes returns bytes leaving each cluster (CSW uplink
// accounting).
func (d *Dataset) ClusterCrossBytes() map[int]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]float64, len(d.clusterCross))
	for k, v := range d.clusterCross {
		out[k] = v
	}
	return out
}
