package fbflow

import "fbdcnet/internal/sketch"

// Cardinality tracks distinct-population estimates over the tagged
// record stream with fixed-size HLL sketches: communicating host pairs
// ("flows" at fleet granularity), active hosts, and active racks.
// Exact distinct counts would need one table entry per key — the very
// growth sketch mode exists to avoid — while three HLLs cost ~24 KiB
// total regardless of fleet size.
//
// HLL merge is register-wise max (commutative, idempotent), so shard
// cardinalities merged at the fleet engine's task-order frontier are
// bit-identical to a single-stream sketch at any worker count.
type Cardinality struct {
	flows *sketch.HLL // packed (src, dst) host pair
	hosts *sketch.HLL // either endpoint
	racks *sketch.HLL // either endpoint's rack
}

// NewCardinality returns an empty tracker. Flow pairs get the highest
// precision (they dominate the key population); racks the lowest.
func NewCardinality() *Cardinality {
	return &Cardinality{
		flows: sketch.NewHLL(14),
		hosts: sketch.NewHLL(12),
		racks: sketch.NewHLL(10),
	}
}

// Add observes one record's endpoints.
func (c *Cardinality) Add(r Record) {
	c.flows.Add(uint64(uint32(r.Src))<<32 | uint64(uint32(r.Dst)))
	c.hosts.Add(uint64(r.Src))
	c.hosts.Add(uint64(r.Dst))
	c.racks.Add(uint64(r.SrcRack))
	c.racks.Add(uint64(r.DstRack))
}

// Merge folds other into c.
func (c *Cardinality) Merge(other *Cardinality) {
	if other == nil {
		return
	}
	c.flows.Merge(other.flows)
	c.hosts.Merge(other.hosts)
	c.racks.Merge(other.racks)
}

// Reset clears the sketches without releasing their registers.
func (c *Cardinality) Reset() {
	c.flows.Reset()
	c.hosts.Reset()
	c.racks.Reset()
}

// Flows estimates the number of distinct communicating host pairs.
func (c *Cardinality) Flows() float64 { return c.flows.Estimate() }

// Hosts estimates the number of distinct active hosts.
func (c *Cardinality) Hosts() float64 { return c.hosts.Estimate() }

// Racks estimates the number of distinct active racks.
func (c *Cardinality) Racks() float64 { return c.racks.Estimate() }

// Bytes returns the fixed register footprint.
func (c *Cardinality) Bytes() int {
	return c.flows.Bytes() + c.hosts.Bytes() + c.racks.Bytes()
}
