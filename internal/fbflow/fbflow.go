// Package fbflow reproduces the fleet-wide monitoring pipeline of §3.3.1:
// per-machine agents sample packet headers (production rate 1:30,000), a
// Scribe-like stream carries them to tagger processes that annotate each
// sample with topology metadata (rack, cluster, datacenter, role), and the
// annotated records land in an aggregation store queried at per-minute
// granularity — the source of Table 3, Figure 5, and the utilization
// numbers of §4.1.
//
// Two ingestion paths produce identical records:
//
//   - Agent: true packet sampling, used when packet streams exist (and to
//     validate the sampling math).
//   - Pipeline.AddFlow: flow-granularity ingestion for day-long fleet
//     experiments, where generating every packet only to discard 29,999
//     of every 30,000 would be waste.
package fbflow

import (
	"sync"

	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// DefaultSamplingRate is the production 1:30,000 packet sampling rate.
const DefaultSamplingRate = 30000

// sample is what an agent ships into the stream: a raw header plus
// capture metadata, before tagging.
type sample struct {
	minute int64
	hdr    packet.Header
	weight float64 // inverse sampling probability, in packets
}

// Record is one tagged sample: the unit stored for analysis.
type Record struct {
	Minute                 int64
	Src, Dst               topology.HostID
	SrcRack, DstRack       int
	SrcCluster, DstCluster int
	SrcDC, DstDC           int
	SrcRole, DstRole       topology.Role
	SrcClusterType         topology.ClusterType
	Locality               topology.Locality
	Bytes                  float64 // estimated on-wire bytes (weight applied)
	Packets                float64 // estimated packets
}

// FoldAudit folds the record's canonical content into a determinism
// checkpoint hash: the identifying coordinates plus the estimated
// volumes, enough that any divergence in sampling, tagging, or
// accumulation order flips the cell's sum. The derived topology fields
// (rack, cluster, DC, roles) are pure functions of Src/Dst and fold
// implicitly through them. No-op on a nil hash — the audit-off fast
// path of the fleet emit loop.
func (r Record) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	h.I64(r.Minute)
	h.U64(uint64(r.Src))
	h.U64(uint64(r.Dst))
	h.U64(uint64(r.Locality))
	h.F64(r.Bytes)
	h.F64(r.Packets)
}

// Tagger annotates observations with topology metadata — the tagger stage
// of Figure 3, factored out of Pipeline so callers can tag inline. The
// parallel fleet engine runs one logical tagger per shard worker and tags
// synchronously, which keeps record order (and hence float accumulation
// order) deterministic; the streaming Pipeline path wraps the same logic
// in goroutines. A Tagger is stateless and safe for concurrent use.
type Tagger struct {
	topo *topology.Topology
}

// NewTagger returns a tagger over topo.
func NewTagger(topo *topology.Topology) *Tagger { return &Tagger{topo: topo} }

// Header annotates one sampled packet header carrying the given inverse
// sampling weight. It reports false when either endpoint is unknown to
// the topology (the production pipeline drops such samples too).
func (t *Tagger) Header(minute int64, hdr packet.Header, weight float64) (Record, bool) {
	src, ok := t.topo.HostByAddr(hdr.Key.Src)
	if !ok {
		return Record{}, false
	}
	dst, ok := t.topo.HostByAddr(hdr.Key.Dst)
	if !ok {
		return Record{}, false
	}
	// Annotate straight from the columnar topology: two rack-column loads
	// and the rack/cluster element rows, no Host struct materialization.
	topo := t.topo
	srcRack, dstRack := topo.HostRack(src), topo.HostRack(dst)
	sr, dr := &topo.Racks[srcRack], &topo.Racks[dstRack]
	srcDC := topo.Clusters[sr.Cluster].Datacenter
	dstDC := topo.Clusters[dr.Cluster].Datacenter
	loc := topology.InterDatacenter
	switch {
	case src == dst:
		loc = topology.SameHost
	case srcRack == dstRack:
		loc = topology.IntraRack
	case sr.Cluster == dr.Cluster:
		loc = topology.IntraCluster
	case srcDC == dstDC:
		loc = topology.IntraDatacenter
	}
	return Record{
		Minute:         minute,
		Src:            src,
		Dst:            dst,
		SrcRack:        srcRack,
		DstRack:        dstRack,
		SrcCluster:     sr.Cluster,
		DstCluster:     dr.Cluster,
		SrcDC:          srcDC,
		DstDC:          dstDC,
		SrcRole:        sr.Role,
		DstRole:        dr.Role,
		SrcClusterType: topo.Clusters[sr.Cluster].Type,
		Locality:       loc,
		Bytes:          weight * float64(hdr.Size),
		Packets:        weight,
	}, true
}

// Flow annotates one flow-granularity observation: bytes from src to dst
// during the given capture minute.
func (t *Tagger) Flow(minute int64, src, dst packet.Addr, bytes float64) (Record, bool) {
	return t.Header(minute, packet.Header{Key: packet.FlowKey{Src: src, Dst: dst}, Size: 1}, bytes)
}

// Pipeline wires agents through the tagging stage into a sink. Taggers
// run concurrently, as in production; Close drains them.
type Pipeline struct {
	tagger *Tagger
	in     chan sample
	wg     sync.WaitGroup
}

// NewPipeline starts taggers goroutines annotating samples and delivering
// records to sink, which must be safe for concurrent use.
func NewPipeline(topo *topology.Topology, taggers int, sink func(Record)) *Pipeline {
	if taggers <= 0 {
		taggers = 1
	}
	p := &Pipeline{tagger: NewTagger(topo), in: make(chan sample, 4096)}
	for i := 0; i < taggers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for s := range p.in {
				if r, ok := p.tagger.Header(s.minute, s.hdr, s.weight); ok {
					sink(r)
				}
			}
		}()
	}
	return p
}

// AddFlow ingests one flow-granularity observation directly (the fast
// path): bytes from src to dst during the given capture minute.
func (p *Pipeline) AddFlow(minute int64, src, dst packet.Addr, bytes float64) {
	p.in <- sample{
		minute: minute,
		hdr:    packet.Header{Key: packet.FlowKey{Src: src, Dst: dst}, Size: 1},
		weight: bytes, // Size 1 × weight bytes = bytes; packets approximate
	}
}

// Close stops ingestion and waits for taggers to drain.
func (p *Pipeline) Close() {
	close(p.in)
	p.wg.Wait()
}

// Agent samples a host's packet stream at 1:rate and ships samples into
// the pipeline. It implements the workload Collector interface. Each
// agent has its own deterministic sampling source.
type Agent struct {
	p      *Pipeline
	rate   uint64
	left   uint64
	r      *rng.Source
	minute func() int64
	seen   int64
	taken  int64
}

// NewAgent creates an agent sampling at 1:rate; minute supplies the
// current capture minute (production tags with wall-clock capture time).
func NewAgent(p *Pipeline, rate uint64, seed uint64, minute func() int64) *Agent {
	if rate == 0 {
		rate = 1
	}
	a := &Agent{p: p, rate: rate, r: rng.New(seed), minute: minute}
	a.left = a.r.Uint64n(rate) + 1
	return a
}

// Packet implements the collector interface: count-based sampling with a
// random phase, statistically equivalent to per-packet Bernoulli at the
// same rate but cheaper — exactly the nflog configuration.
func (a *Agent) Packet(h packet.Header) {
	a.seen++
	a.left--
	if a.left > 0 {
		return
	}
	a.left = a.rate
	a.taken++
	a.p.in <- sample{minute: a.minute(), hdr: h, weight: float64(a.rate)}
}

// Packets implements the batch collector interface. At production-style
// rates (1:30,000) nearly every batch falls entirely inside the countdown
// gap and is skipped with two integer updates instead of a per-packet
// walk.
func (a *Agent) Packets(hs []packet.Header) {
	n := uint64(len(hs))
	if a.left > n {
		a.left -= n
		a.seen += int64(n)
		return
	}
	for _, h := range hs {
		a.Packet(h)
	}
}

// Seen returns the number of packets observed by the agent.
func (a *Agent) Seen() int64 { return a.seen }

// Sampled returns the number of packets shipped into the pipeline.
func (a *Agent) Sampled() int64 { return a.taken }
