package fbflow

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"fbdcnet/internal/topology"
)

// Long-term storage (the Hive stage of Figure 3): a Dataset's aggregates
// serialize to a versioned JSON document, so a day's collection can be
// archived and re-queried without regenerating traffic. The format keys
// composite map entries as "a,b" strings since JSON objects require
// string keys.

// storeVersion identifies the archive format.
const storeVersion = 1

type storeDoc struct {
	Version      int                `json:"version"`
	TotalBytes   float64            `json:"total_bytes"`
	Locality     map[string]float64 `json:"locality"`      // "ct,loc" → bytes
	ByCluster    map[string]float64 `json:"by_cluster"`    // ct → bytes
	RackPair     map[string]float64 `json:"rack_pair"`     // "src,dst" → bytes
	ClusterPair  map[string]float64 `json:"cluster_pair"`  // "src,dst" → bytes
	PerMinute    map[string]float64 `json:"per_minute"`    // minute → bytes
	HostOut      map[string]float64 `json:"host_out"`      // host → bytes
	RackCross    map[string]float64 `json:"rack_cross"`    // rack → bytes
	ClusterCross map[string]float64 `json:"cluster_cross"` // cluster → bytes
}

func pairKey(a, b int) string { return fmt.Sprintf("%d,%d", a, b) }

func parsePair(s string) (int, int, error) {
	var a, b int
	if _, err := fmt.Sscanf(s, "%d,%d", &a, &b); err != nil {
		return 0, 0, fmt.Errorf("fbflow: bad pair key %q: %w", s, err)
	}
	return a, b, nil
}

// Save archives the dataset to w.
func (d *Dataset) Save(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	doc := storeDoc{
		Version:      storeVersion,
		TotalBytes:   d.totalBytes,
		Locality:     map[string]float64{},
		ByCluster:    map[string]float64{},
		RackPair:     map[string]float64{},
		ClusterPair:  map[string]float64{},
		PerMinute:    map[string]float64{},
		HostOut:      map[string]float64{},
		RackCross:    map[string]float64{},
		ClusterCross: map[string]float64{},
	}
	for ct, locs := range d.locality {
		for l, v := range locs {
			doc.Locality[pairKey(int(ct), int(l))] = v
		}
	}
	for ct, v := range d.byClusterType {
		doc.ByCluster[fmt.Sprintf("%d", int(ct))] = v
	}
	for p, v := range d.rackPair {
		doc.RackPair[pairKey(p[0], p[1])] = v
	}
	for p, v := range d.clusterPair {
		doc.ClusterPair[pairKey(p[0], p[1])] = v
	}
	for m, v := range d.perMinute {
		doc.PerMinute[fmt.Sprintf("%d", m)] = v
	}
	for h, v := range d.hostOut {
		doc.HostOut[fmt.Sprintf("%d", h)] = v
	}
	for r, v := range d.rackCross {
		doc.RackCross[fmt.Sprintf("%d", r)] = v
	}
	for c, v := range d.clusterCross {
		doc.ClusterCross[fmt.Sprintf("%d", c)] = v
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("fbflow: encoding dataset: %w", err)
	}
	return bw.Flush()
}

// Load reads an archived dataset from r.
func Load(r io.Reader) (*Dataset, error) {
	var doc storeDoc
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("fbflow: decoding dataset: %w", err)
	}
	if doc.Version != storeVersion {
		return nil, fmt.Errorf("fbflow: unsupported dataset version %d", doc.Version)
	}
	d := NewDataset()
	d.totalBytes = doc.TotalBytes
	for k, v := range doc.Locality {
		ct, l, err := parsePair(k)
		if err != nil {
			return nil, err
		}
		m := d.locality[topology.ClusterType(ct)]
		if m == nil {
			m = map[topology.Locality]float64{}
			d.locality[topology.ClusterType(ct)] = m
		}
		m[topology.Locality(l)] = v
	}
	for k, v := range doc.ByCluster {
		var ct int
		if _, err := fmt.Sscanf(k, "%d", &ct); err != nil {
			return nil, fmt.Errorf("fbflow: bad cluster key %q", k)
		}
		d.byClusterType[topology.ClusterType(ct)] = v
	}
	for k, v := range doc.RackPair {
		a, b, err := parsePair(k)
		if err != nil {
			return nil, err
		}
		d.rackPair[[2]int{a, b}] = v
	}
	for k, v := range doc.ClusterPair {
		a, b, err := parsePair(k)
		if err != nil {
			return nil, err
		}
		d.clusterPair[[2]int{a, b}] = v
	}
	for k, v := range doc.PerMinute {
		var m int64
		if _, err := fmt.Sscanf(k, "%d", &m); err != nil {
			return nil, fmt.Errorf("fbflow: bad minute key %q", k)
		}
		d.perMinute[m] = v
	}
	for k, v := range doc.HostOut {
		var h int32
		if _, err := fmt.Sscanf(k, "%d", &h); err != nil {
			return nil, fmt.Errorf("fbflow: bad host key %q", k)
		}
		d.hostOut[topology.HostID(h)] = v
	}
	for k, v := range doc.RackCross {
		var rk int
		if _, err := fmt.Sscanf(k, "%d", &rk); err != nil {
			return nil, fmt.Errorf("fbflow: bad rack key %q", k)
		}
		d.rackCross[rk] = v
	}
	for k, v := range doc.ClusterCross {
		var c int
		if _, err := fmt.Sscanf(k, "%d", &c); err != nil {
			return nil, fmt.Errorf("fbflow: bad cluster key %q", k)
		}
		d.clusterCross[c] = v
	}
	return d, nil
}
