package fbflow

import (
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/topology"
)

// Partial is a shard-local columnar accumulator for the parallel fleet
// collector: the same aggregates a Dataset holds, stored in fixed arrays
// and open-addressing tables instead of one map entry per key per shard.
// A Partial is single-goroutine (no mutex — each collection task owns
// one), reusable via Reset, and folded into the shared Dataset with
// MergePartial.
//
// Bit-identity: within a shard, Add folds records in the same order
// Dataset.Add would, so every per-key partial sum is the float64 the old
// per-shard Dataset produced; MergePartial then adds those sums key by
// key, exactly like Dataset.Merge. Since no arithmetic ever crosses keys,
// the iteration order over keys is immaterial and the merged dataset is
// bit-identical to the map-based path.
type Partial struct {
	totalBytes float64

	// locality[clusterType][locality] and byClusterType are dense: both
	// dimensions are tiny closed enums.
	locality      [topology.ClusterDB + 1][topology.InterDatacenter + 1]float64
	byClusterType [topology.ClusterDB + 1]float64

	// Pair and sparse-key aggregates live in packed-key tables. Rack,
	// cluster, and minute indexes all fit in 32 bits by construction
	// (bounded by fleet size and windows), so two of them pack into one
	// uint64 without collision.
	rackPair     openhash.Table[float64] // src<<32 | dst
	clusterPair  openhash.Table[float64] // src<<32 | dst
	perMinute    openhash.Table[float64] // uint64(minute)
	hostOut      openhash.Table[float64] // uint64(HostID)
	rackCross    openhash.Table[float64] // uint64(rack)
	clusterCross openhash.Table[float64] // uint64(cluster)

	// card, when enabled, tracks distinct flow/host/rack populations
	// alongside the byte aggregates (sketch mode). Nil costs one
	// predicted branch per record.
	card *Cardinality
}

// NewPartial returns an empty Partial.
func NewPartial() *Partial { return &Partial{} }

// EnableCardinality attaches HLL distinct counters to the partial
// (idempotent). Call before the first Add; the fleet engine enables it
// on every pooled partial when Config.SketchMode is set.
func (p *Partial) EnableCardinality() {
	if p.card == nil {
		p.card = NewCardinality()
	}
}

// packPair packs an ordered (src, dst) index pair into one table key.
func packPair(src, dst int) uint64 { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }

// Add folds one record, mirroring Dataset.Add without locks or map
// assignments.
func (p *Partial) Add(r Record) {
	p.totalBytes += r.Bytes
	p.locality[r.SrcClusterType][r.Locality] += r.Bytes
	p.byClusterType[r.SrcClusterType] += r.Bytes
	*p.rackPair.Slot(packPair(r.SrcRack, r.DstRack)) += r.Bytes
	*p.clusterPair.Slot(packPair(r.SrcCluster, r.DstCluster)) += r.Bytes
	*p.perMinute.Slot(uint64(r.Minute)) += r.Bytes
	*p.hostOut.Slot(uint64(r.Src)) += r.Bytes
	if r.Locality != topology.SameHost && r.Locality != topology.IntraRack {
		*p.rackCross.Slot(uint64(r.SrcRack)) += r.Bytes
		if r.Locality != topology.IntraCluster {
			*p.clusterCross.Slot(uint64(r.SrcCluster)) += r.Bytes
		}
	}
	if p.card != nil {
		p.card.Add(r)
	}
}

// Reset clears every aggregate while keeping table capacity, so a pooled
// Partial's steady-state Add path allocates nothing.
func (p *Partial) Reset() {
	p.totalBytes = 0
	p.locality = [topology.ClusterDB + 1][topology.InterDatacenter + 1]float64{}
	p.byClusterType = [topology.ClusterDB + 1]float64{}
	p.rackPair.Reset()
	p.clusterPair.Reset()
	p.perMinute.Reset()
	p.hostOut.Reset()
	p.rackCross.Reset()
	p.clusterCross.Reset()
	if p.card != nil {
		p.card.Reset()
	}
}

// MergePartial folds a shard's Partial into d, the columnar counterpart
// of Merge. The caller serializes MergePartial calls in task order; the
// per-key addition sequence is then identical to merging the old
// per-shard Datasets in that order.
func (d *Dataset) MergePartial(p *Partial) {
	if p == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.totalBytes += p.totalBytes
	for ct := range p.locality {
		for l, b := range p.locality[ct] {
			if b == 0 {
				continue
			}
			loc := d.locality[topology.ClusterType(ct)]
			if loc == nil {
				loc = make(map[topology.Locality]float64)
				d.locality[topology.ClusterType(ct)] = loc
			}
			loc[topology.Locality(l)] += b
		}
	}
	for ct, b := range p.byClusterType {
		if b != 0 {
			d.byClusterType[topology.ClusterType(ct)] += b
		}
	}
	p.rackPair.Range(func(k uint64, v *float64) {
		d.rackPair[[2]int{int(int32(k >> 32)), int(int32(uint32(k)))}] += *v
	})
	p.clusterPair.Range(func(k uint64, v *float64) {
		d.clusterPair[[2]int{int(int32(k >> 32)), int(int32(uint32(k)))}] += *v
	})
	p.perMinute.Range(func(k uint64, v *float64) { d.perMinute[int64(k)] += *v })
	p.hostOut.Range(func(k uint64, v *float64) { d.hostOut[topology.HostID(k)] += *v })
	p.rackCross.Range(func(k uint64, v *float64) { d.rackCross[int(k)] += *v })
	p.clusterCross.Range(func(k uint64, v *float64) { d.clusterCross[int(k)] += *v })
	if p.card != nil {
		if d.card == nil {
			d.card = NewCardinality()
		}
		d.card.Merge(p.card)
	}
}
