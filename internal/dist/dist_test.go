package dist

import (
	"math"
	"testing"
	"testing/quick"

	"fbdcnet/internal/rng"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(d Dist, r *rng.Source, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestConstant(t *testing.T) {
	c := Constant{V: 42}
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if c.Sample(r) != 42 {
			t.Fatal("constant varied")
		}
	}
	if c.Mean() != 42 {
		t.Fatal("constant mean wrong")
	}
}

func TestUniformMoments(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 10}
	r := rng.New(2)
	m := sampleMean(u, r, 100000)
	if math.Abs(m-u.Mean()) > 0.05 {
		t.Fatalf("uniform mean %v, want %v", m, u.Mean())
	}
}

func TestUniformBounds(t *testing.T) {
	u := Uniform{Lo: -3, Hi: 7}
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < -3 || v >= 7 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{Rate: 4}
	r := rng.New(4)
	m := sampleMean(e, r, 200000)
	if math.Abs(m-0.25) > 0.005 {
		t.Fatalf("exp mean %v, want 0.25", m)
	}
}

func TestLogNormalMedian(t *testing.T) {
	l := LogNormalFromMedian(200, 1.0)
	r := rng.New(5)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = l.Sample(r)
	}
	// median of samples should be near 200
	cnt := 0
	for _, x := range xs {
		if x < 200 {
			cnt++
		}
	}
	frac := float64(cnt) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %v, want 0.5", frac)
	}
}

func TestLogNormalMean(t *testing.T) {
	l := LogNormal{Mu: 1, Sigma: 0.5}
	r := rng.New(6)
	m := sampleMean(l, r, 300000)
	if math.Abs(m-l.Mean())/l.Mean() > 0.02 {
		t.Fatalf("lognormal mean %v, want %v", m, l.Mean())
	}
}

func TestParetoTail(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 2}
	r := rng.New(7)
	for i := 0; i < 10000; i++ {
		if v := p.Sample(r); v < 1 {
			t.Fatalf("pareto sample %v below scale", v)
		}
	}
	m := sampleMean(p, r, 500000)
	if math.Abs(m-2) > 0.1 {
		t.Fatalf("pareto mean %v, want 2", m)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 0.9}
	if !math.IsInf(p.Mean(), 1) {
		t.Fatal("expected +Inf mean for alpha <= 1")
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	p := BoundedPareto{Lo: 64, Hi: 1500, Alpha: 1.2}
	r := rng.New(8)
	for i := 0; i < 50000; i++ {
		v := p.Sample(r)
		if v < 64-1e-9 || v > 1500+1e-9 {
			t.Fatalf("bounded pareto out of range: %v", v)
		}
	}
}

func TestBoundedParetoMean(t *testing.T) {
	p := BoundedPareto{Lo: 1, Hi: 100, Alpha: 1.5}
	r := rng.New(9)
	m := sampleMean(p, r, 500000)
	if math.Abs(m-p.Mean())/p.Mean() > 0.02 {
		t.Fatalf("bounded pareto mean %v, want %v", m, p.Mean())
	}
}

func TestMixtureBimodal(t *testing.T) {
	// 60% ACK-sized, 40% MTU-sized: the Hadoop packet model.
	m := NewMixture(
		[]float64{0.6, 0.4},
		[]Dist{Constant{V: 66}, Constant{V: 1500}},
	)
	r := rng.New(10)
	small, large := 0, 0
	const n = 100000
	for i := 0; i < n; i++ {
		switch m.Sample(r) {
		case 66:
			small++
		case 1500:
			large++
		default:
			t.Fatal("mixture produced a non-component value")
		}
	}
	if frac := float64(small) / n; math.Abs(frac-0.6) > 0.01 {
		t.Fatalf("small fraction %v, want 0.6", frac)
	}
	_ = large
	want := 0.6*66 + 0.4*1500
	if math.Abs(m.Mean()-want) > 1e-9 {
		t.Fatalf("mixture mean %v, want %v", m.Mean(), want)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]float64{1}, []Dist{Constant{}, Constant{}}) },
		func() { NewMixture([]float64{-1, 2}, []Dist{Constant{}, Constant{}}) },
		func() { NewMixture([]float64{0, 0}, []Dist{Constant{}, Constant{}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	e := MustEmpirical(
		[]float64{0, 0.5, 1},
		[]float64{0, 10, 100},
	)
	cases := []struct{ p, want float64 }{
		{0, 0}, {0.25, 5}, {0.5, 10}, {0.75, 55}, {1, 100},
		{-1, 0}, {2, 100},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEmpiricalMean(t *testing.T) {
	e := MustEmpirical([]float64{0, 1}, []float64{0, 10})
	if math.Abs(e.Mean()-5) > 1e-9 {
		t.Fatalf("mean %v, want 5", e.Mean())
	}
	r := rng.New(11)
	m := sampleMean(e, r, 200000)
	if math.Abs(m-5) > 0.05 {
		t.Fatalf("sample mean %v, want 5", m)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewEmpirical([]float64{0.1, 1}, []float64{1, 2}); err == nil {
		t.Error("quantiles not starting at 0 accepted")
	}
	if _, err := NewEmpirical([]float64{0, 0.9}, []float64{1, 2}); err == nil {
		t.Error("quantiles not ending at 1 accepted")
	}
	if _, err := NewEmpirical([]float64{0, 0.6, 0.5, 1}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("unsorted quantiles accepted")
	}
	if _, err := NewEmpirical([]float64{0, 1}, []float64{2, 1}); err == nil {
		t.Error("decreasing values accepted")
	}
}

func TestEmpiricalMonotone(t *testing.T) {
	e := MustEmpirical(
		[]float64{0, 0.1, 0.5, 0.9, 1},
		[]float64{1, 2, 50, 900, 10000},
	)
	err := quick.Check(func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return e.Quantile(pa) <= e.Quantile(pb)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{D: Constant{V: 3}, Factor: 2}
	r := rng.New(12)
	if s.Sample(r) != 6 || s.Mean() != 6 {
		t.Fatal("scaled distribution wrong")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := rng.New(13)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Rank(r)]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("rank 0 (%d) should dominate rank 10 (%d)", counts[0], counts[10])
	}
	// Analytic check: empirical frequency of rank 0 near Prob(0).
	frac := float64(counts[0]) / n
	if math.Abs(frac-z.Prob(0)) > 0.01 {
		t.Fatalf("rank-0 frequency %v, want %v", frac, z.Prob(0))
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(50, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func TestZipfRankBounds(t *testing.T) {
	z := NewZipf(7, 1.3)
	r := rng.New(14)
	for i := 0; i < 10000; i++ {
		if k := z.Rank(r); k < 0 || k >= 7 {
			t.Fatalf("rank out of bounds: %d", k)
		}
	}
}

func BenchmarkLogNormalSample(b *testing.B) {
	l := LogNormalFromMedian(200, 1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = l.Sample(r)
	}
}

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(100000, 1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = z.Rank(r)
	}
}
