package dist_test

import (
	"fmt"

	"fbdcnet/internal/dist"
	"fbdcnet/internal/rng"
)

// ExampleLogNormalFromMedian builds the message-size distributions the
// service models use: parameterized by the median read off the paper's
// CDFs.
func ExampleLogNormalFromMedian() {
	d := dist.LogNormalFromMedian(200, 1.0)
	r := rng.New(1)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(r) < 200 {
			below++
		}
	}
	fmt.Printf("fraction below the median parameter: %.2f\n", float64(below)/n)
	// Output: fraction below the median parameter: 0.50
}

// ExampleNewMixture builds the bimodal ACK-or-MTU packet size model of
// Hadoop traffic (Fig. 12).
func ExampleNewMixture() {
	bimodal := dist.NewMixture(
		[]float64{0.4, 0.6},
		[]dist.Dist{dist.Constant{V: 66}, dist.Constant{V: 1514}},
	)
	fmt.Printf("mean packet: %.0f bytes\n", bimodal.Mean())
	// Output: mean packet: 935 bytes
}

// ExampleEmpirical reproduces a distribution from published quantile
// knots — the tool for fitting models to a figure.
func ExampleEmpirical() {
	flowKB := dist.MustEmpirical(
		[]float64{0, 0.5, 0.7, 0.95, 1},
		[]float64{0.1, 1, 10, 1024, 1048576},
	)
	fmt.Printf("p70=%.0f KB\n", flowKB.Quantile(0.7))
	// Output: p70=10 KB
}
