package dist

import (
	"math"

	"fbdcnet/internal/rng"
)

// Zipf samples ranks in [0, N) with probability proportional to
// 1/(rank+1)^S. It models cache object popularity: a small number of hot
// objects receive most requests, the mechanism behind the paper's
// hot-object replication discussion (§5.2).
//
// Sampling uses a precomputed cumulative table, which is exact and fast
// for the catalog sizes the simulator uses (up to a few million entries).
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("dist: Zipf requires n > 0 and s > 0")
	}
	cum := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cum[i] = acc
	}
	for i := range cum {
		cum[i] /= acc
	}
	cum[n-1] = 1
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Rank draws a rank in [0, N) with Zipfian probability.
func (z *Zipf) Rank(r *rng.Source) int {
	u := r.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
