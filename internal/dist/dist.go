// Package dist provides samplable probability distributions used by the
// workload generators.
//
// Each distribution implements Dist: a Sample method drawing a variate from
// an explicit rng.Source. Distributions are immutable after construction,
// so a single value may be shared by many generators, each sampling with
// its own Source.
//
// The menagerie matches what datacenter traffic modeling needs: exponential
// interarrivals, log-normal sizes and on/off periods (Benson et al.),
// (bounded) Pareto heavy tails, Zipf object popularity, empirical
// piecewise-linear CDFs fitted to the paper's figures, and mixtures for
// bimodal packet sizes.
package dist

import (
	"fmt"
	"math"
	"sort"

	"fbdcnet/internal/rng"
)

// Dist is a samplable distribution over float64.
type Dist interface {
	// Sample draws one variate using r.
	Sample(r *rng.Source) float64
	// Mean returns the analytic mean of the distribution.
	Mean() float64
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*rng.Source) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rng.Source) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with the given Rate (λ).
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rng.Source) float64 { return r.Exp() / e.Rate }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma^2)).
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rng.Source) float64 {
	return math.Exp(l.Mu + l.Sigma*r.Norm())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// LogNormalFromMedian constructs a LogNormal with the given median and
// sigma; the median of a log-normal is exp(mu).
func LogNormalFromMedian(median, sigma float64) LogNormal {
	return LogNormal{Mu: math.Log(median), Sigma: sigma}
}

// Pareto is the (unbounded) Pareto distribution with scale Xm and shape
// Alpha. Heavy tailed: infinite variance for Alpha <= 2.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(r *rng.Source) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return p.Xm / math.Pow(u, 1/p.Alpha)
		}
	}
}

// Mean implements Dist. It returns +Inf for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// BoundedPareto is a Pareto distribution truncated to [Lo, Hi].
type BoundedPareto struct {
	Lo, Hi float64
	Alpha  float64
}

// Sample implements Dist using inverse-transform sampling of the truncated
// CDF.
func (p BoundedPareto) Sample(r *rng.Source) float64 {
	u := r.Float64()
	la := math.Pow(p.Lo, p.Alpha)
	ha := math.Pow(p.Hi, p.Alpha)
	x := -(u*ha - u*la - ha) / (ha * la)
	return math.Pow(1/x, 1/p.Alpha)
}

// Mean implements Dist.
func (p BoundedPareto) Mean() float64 {
	a := p.Alpha
	if a == 1 {
		return p.Lo * p.Hi / (p.Hi - p.Lo) * math.Log(p.Hi/p.Lo)
	}
	la := math.Pow(p.Lo, a)
	return la / (1 - math.Pow(p.Lo/p.Hi, a)) * a / (a - 1) *
		(1/math.Pow(p.Lo, a-1) - 1/math.Pow(p.Hi, a-1))
}

// Mixture is a weighted mixture of component distributions; used e.g. for
// the bimodal Hadoop packet size (ACK-or-MTU).
type Mixture struct {
	components []Dist
	cum        []float64 // cumulative normalized weights
}

// NewMixture builds a mixture from parallel slices of weights and
// components. It panics if the slices mismatch, are empty, or the total
// weight is not positive.
func NewMixture(weights []float64, components []Dist) *Mixture {
	if len(weights) != len(components) || len(weights) == 0 {
		panic("dist: mixture weights/components mismatch")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: mixture total weight must be positive")
	}
	m := &Mixture{components: components, cum: make([]float64, len(weights))}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // avoid FP shortfall
	return m
}

// Sample implements Dist.
func (m *Mixture) Sample(r *rng.Source) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Sample(r)
}

// Mean implements Dist.
func (m *Mixture) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i, c := range m.components {
		w := m.cum[i] - prev
		prev = m.cum[i]
		mean += w * c.Mean()
	}
	return mean
}

// Empirical is a piecewise-linear inverse CDF defined by (quantile, value)
// knots; it reproduces a distribution "read off" a published figure.
type Empirical struct {
	q []float64 // ascending quantiles in [0,1]
	v []float64 // non-decreasing values
}

// NewEmpirical builds an Empirical from knots. Quantiles must start at 0,
// end at 1, and both slices must be sorted ascending.
func NewEmpirical(quantiles, values []float64) (*Empirical, error) {
	if len(quantiles) != len(values) || len(quantiles) < 2 {
		return nil, fmt.Errorf("dist: need >= 2 matching knots, got %d/%d", len(quantiles), len(values))
	}
	if quantiles[0] != 0 || quantiles[len(quantiles)-1] != 1 {
		return nil, fmt.Errorf("dist: quantile knots must span [0,1]")
	}
	for i := 1; i < len(quantiles); i++ {
		if quantiles[i] < quantiles[i-1] {
			return nil, fmt.Errorf("dist: quantiles not sorted at %d", i)
		}
		if values[i] < values[i-1] {
			return nil, fmt.Errorf("dist: values not sorted at %d", i)
		}
	}
	e := &Empirical{q: append([]float64(nil), quantiles...), v: append([]float64(nil), values...)}
	return e, nil
}

// MustEmpirical is NewEmpirical that panics on error; for package-level
// fitted constants.
func MustEmpirical(quantiles, values []float64) *Empirical {
	e, err := NewEmpirical(quantiles, values)
	if err != nil {
		panic(err)
	}
	return e
}

// Quantile returns the value at quantile p in [0,1] by linear
// interpolation.
func (e *Empirical) Quantile(p float64) float64 {
	if p <= 0 {
		return e.v[0]
	}
	if p >= 1 {
		return e.v[len(e.v)-1]
	}
	i := sort.SearchFloat64s(e.q, p)
	if i == 0 {
		return e.v[0]
	}
	q0, q1 := e.q[i-1], e.q[i]
	v0, v1 := e.v[i-1], e.v[i]
	if q1 == q0 {
		return v1
	}
	t := (p - q0) / (q1 - q0)
	return v0 + t*(v1-v0)
}

// Sample implements Dist via inverse-transform sampling.
func (e *Empirical) Sample(r *rng.Source) float64 { return e.Quantile(r.Float64()) }

// Mean implements Dist; it integrates the piecewise-linear inverse CDF
// exactly.
func (e *Empirical) Mean() float64 {
	mean := 0.0
	for i := 1; i < len(e.q); i++ {
		w := e.q[i] - e.q[i-1]
		mean += w * (e.v[i] + e.v[i-1]) / 2
	}
	return mean
}

// Scaled wraps a distribution, multiplying every sample by Factor. Useful
// for diurnal modulation of a fitted base distribution.
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(r *rng.Source) float64 { return s.Factor * s.D.Sample(r) }

// Mean implements Dist.
func (s Scaled) Mean() float64 { return s.Factor * s.D.Mean() }
