package services

import (
	"testing"

	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

func matrixFixture(t testing.TB, sc topology.Scale) (*topology.Topology, *MatrixProgram) {
	t.Helper()
	topo, err := topology.Build(topology.Preset(sc))
	if err != nil {
		t.Fatal(err)
	}
	return topo, NewMatrixProgram(NewPicker(topo), DefaultParams())
}

// TestMatrixSynthDeterministic pins the determinism contract: the same
// (seed, rack block) stream produces an identical cell sequence — keys
// and values — on every run, including runs against a freshly built
// matrix versus a Reset-reused one.
func TestMatrixSynthDeterministic(t *testing.T) {
	topo, mp := matrixFixture(t, topology.ScaleSmall)
	type cell struct {
		k uint64
		v float64
	}
	collect := func(m *DemandMatrix) []cell {
		r := rng.NewKeyed(7, 0, 0)
		m.Reset()
		mp.Synth(r, 0, len(topo.Racks), 10, 1.0, m)
		var cs []cell
		var flows []cell
		mp.DrawFlows(r, m, func(src, dst topology.HostID, bytes float64) {
			flows = append(flows, cell{uint64(src)<<32 | uint64(dst), bytes})
		})
		m.cells.Range(func(k uint64, v *float64) { cs = append(cs, cell{k, *v}) })
		return append(cs, flows...)
	}
	fresh := collect(NewDemandMatrix())
	if len(fresh) == 0 {
		t.Fatal("synthesis produced no demand cells")
	}
	reused := NewDemandMatrix()
	collect(reused) // dirty it, then rely on Reset inside collect
	again := collect(reused)
	if len(again) != len(fresh) {
		t.Fatalf("cell count %d on reused matrix, want %d", len(again), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != again[i] {
			t.Fatalf("cell %d: %+v on reused matrix, want %+v", i, again[i], fresh[i])
		}
	}
}

// TestMatrixSelfFlowRedirect checks DrawFlows never emits a loopback
// flow from a multi-host rack.
func TestMatrixSelfFlowRedirect(t *testing.T) {
	topo, mp := matrixFixture(t, topology.ScaleTiny)
	r := rng.NewKeyed(3, 1, 0)
	m := NewDemandMatrix()
	mp.Synth(r, 0, len(topo.Racks), 10, 1.0, m)
	n := 0
	mp.DrawFlows(r, m, func(src, dst topology.HostID, bytes float64) {
		n++
		if src == dst {
			t.Fatalf("self flow emitted for host %d", src)
		}
		if bytes <= 0 {
			t.Fatalf("non-positive flow %v from %d to %d", bytes, src, dst)
		}
	})
	if n == 0 {
		t.Fatal("no flows drawn")
	}
}

// TestMatrixSteadyStateAllocs pins the buffer-reuse contract: once the
// demand matrix has grown to its steady-state capacity, a full
// Reset+Synth+DrawFlows cycle allocates nothing.
func TestMatrixSteadyStateAllocs(t *testing.T) {
	topo, mp := matrixFixture(t, topology.ScaleSmall)
	m := NewDemandMatrix()
	r := rng.NewKeyed(11, 0, 0)
	cycle := func() {
		m.Reset()
		mp.Synth(r, 0, len(topo.Racks), 10, 1.0, m)
		mp.DrawFlows(r, m, func(src, dst topology.HostID, bytes float64) {})
	}
	cycle() // warm-up growth
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Fatalf("steady-state matrix cycle allocates %v times per run, want 0", allocs)
	}
}
