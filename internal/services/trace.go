package services

import (
	"fmt"

	"fbdcnet/internal/dist"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// Well-known destination ports of the simulated services.
const (
	PortSLB      = 443
	PortWeb      = 8080
	PortCache    = 11211
	PortLeader   = 11213
	PortMF       = 8090
	PortHadoop   = 50010
	PortDB       = 3306
	PortMisc     = 9000
	PortEgress   = 9443
	PortHadoopIn = 50011
)

// Trace synthesizes a monitored host's port-mirror capture. Create with
// NewTrace and drive with Run.
type Trace struct {
	G  *workload.Gen
	P  Params
	pk *Picker

	// conns is the connection pool, keyed by packed
	// (peer, port, direction, lane) — see connPack.
	conns openhash.Table[*workload.Conn]
	// hotMul is the current read-rate multiplier on a cache follower due
	// to hot objects (§5.2).
	hotMul float64
}

// connPack packs a pool key into a uint64 for the open-addressing table:
// lane in bits 0..7, direction in bit 8, port in 9..24, peer from bit 25.
// Host IDs are dense indices (< 2^38 would already be absurd), so the key
// never approaches the table's sentinel.
func connPack(peer topology.HostID, port uint16, in bool, lane uint8) uint64 {
	k := uint64(uint32(peer))<<25 | uint64(port)<<9 | uint64(lane)
	if in {
		k |= 1 << 8
	}
	return k
}

// poolLanes is the number of pooled connections kept per (peer, port)
// pair: production connection pools multiplex requests over several
// transport connections, which is why 5-tuple flow sizes vary while
// per-host aggregates are tight (Fig. 6b vs Fig. 9).
const poolLanes = 3

// NewTrace builds a generator for the given monitored host. The host's
// role determines the behaviour installed. The picker may be shared
// across traces over the same topology.
func NewTrace(pk *Picker, host topology.HostID, seed uint64, p Params, sink workload.Collector) *Trace {
	t := &Trace{
		G:      workload.NewGen(pk.Topo, host, seed, sink),
		P:      p,
		pk:     pk,
		hotMul: 1,
	}
	switch pk.Topo.HostRole(host) {
	case topology.RoleWeb:
		t.installWeb()
	case topology.RoleCacheFollower:
		t.installCacheFollower()
	case topology.RoleCacheLeader:
		t.installCacheLeader()
	case topology.RoleHadoop:
		t.installHadoop()
	case topology.RoleMultifeed:
		t.installMultifeed()
	case topology.RoleSLB:
		t.installSLB()
	case topology.RoleDB:
		t.installDB()
	case topology.RoleMisc:
		t.installMisc()
	default:
		panic(fmt.Sprintf("services: no model for role %v", pk.Topo.HostRole(host)))
	}
	return t
}

// Run generates the trace for the given duration.
func (t *Trace) Run(dur netsim.Time) { t.G.Run(dur) }

// Emitted returns the number of packets generated so far.
func (t *Trace) Emitted() int64 { return t.G.Emitted() }

// conn returns a pooled connection to peer on port, creating it
// pre-established on first use. Each (peer, port) pair keeps poolLanes
// connections; a random lane is used per transaction. With connection
// pooling disabled (ablation) every call opens a fresh handshaked
// connection the caller must Close.
func (t *Trace) conn(peer topology.HostID, port uint16, inbound bool) *workload.Conn {
	if t.P.DisableConnectionPooling {
		if inbound {
			return t.G.NewInboundConn(peer, port, true)
		}
		return t.G.NewConn(peer, port, true)
	}
	// The pooled path creates connections pre-established (no handshake
	// emission), so nothing can touch the table between Slot and the
	// store below.
	slot := t.conns.Slot(connPack(peer, port, inbound, uint8(t.G.R.Intn(poolLanes))))
	if c := *slot; c != nil {
		return c
	}
	var c *workload.Conn
	if inbound {
		c = t.G.NewInboundConn(peer, port, false)
	} else {
		c = t.G.NewConn(peer, port, false)
	}
	*slot = c
	return c
}

// finish closes c if the pooling ablation made it ephemeral.
func (t *Trace) finish(c *workload.Conn, after netsim.Time) {
	if t.P.DisableConnectionPooling {
		t.G.Eng.After(after, c.Close)
	}
}

// rpcOut issues one outbound request/response exchange to peer.
func (t *Trace) rpcOut(peer topology.HostID, port uint16, req, resp dist.Dist) {
	c := t.conn(peer, port, false)
	c.SendMsg(int(req.Sample(t.G.R)))
	rtt := t.G.RTT(peer)
	svc := netsim.Time(50*netsim.Microsecond) + netsim.Time(t.G.R.Exp()*float64(100*netsim.Microsecond))
	t.G.Eng.After(rtt+svc, func() {
		c.RecvMsg(int(resp.Sample(t.G.R)))
	})
	t.finish(c, rtt+svc+netsim.Millisecond)
}

// rpcIn serves one inbound request/response exchange from peer.
func (t *Trace) rpcIn(peer topology.HostID, port uint16, req, resp dist.Dist) {
	c := t.conn(peer, port, true)
	c.RecvMsg(int(req.Sample(t.G.R)))
	svc := netsim.Time(40*netsim.Microsecond) + netsim.Time(t.G.R.Exp()*float64(80*netsim.Microsecond))
	t.G.Eng.After(svc, func() {
		c.SendMsg(int(resp.Sample(t.G.R)))
	})
	t.finish(c, svc+netsim.Millisecond)
}

// ephemeralRPC opens a short-lived connection to peer, exchanges one
// request/response, and closes — the non-pooled long tail visible in the
// SYN interarrival distribution (Fig. 14).
func (t *Trace) ephemeralRPC(peer topology.HostID, port uint16, req, resp dist.Dist) {
	c := t.G.NewConn(peer, port, true)
	rtt := t.G.RTT(peer)
	t.G.Eng.After(rtt, func() {
		c.SendMsg(int(req.Sample(t.G.R)))
		t.G.Eng.After(rtt, func() {
			c.RecvMsg(int(resp.Sample(t.G.R)))
			t.G.Eng.After(netsim.Time(t.G.R.Exp()*float64(5*netsim.Millisecond)), c.Close)
		})
	})
}

// Connection-pool lifetime model (§5.1): flows are "long-lived but not
// very heavy". Pool members idle at heartbeat cadence between requests
// and are replaced after poolLifetime on average, so SYNs keep arriving
// every few milliseconds (Fig. 14) while a large share of observed flows
// spans minutes and outlives the capture (Fig. 7).
const (
	poolLifetimeMean  = 45.0 // seconds a pool member lives
	heartbeatGapMean  = 12.0 // seconds between keepalive exchanges
	heartbeatMsgBytes = 120
)

// poolMember runs one pooled connection's life: periodic heartbeats until
// its exponential lifetime expires, then a FIN.
func (t *Trace) poolMember(c *workload.Conn, lifetimeSec float64) {
	g := t.G
	deadline := g.Eng.Now() + netsim.Time(lifetimeSec*float64(netsim.Second))
	var beat func()
	beat = func() {
		if g.Eng.Now() >= deadline {
			c.Close()
			return
		}
		c.SendMsg(heartbeatMsgBytes)
		g.Eng.After(g.RTT(c.Peer), func() { c.RecvMsg(heartbeatMsgBytes) })
		g.Eng.After(netsim.Time(g.R.Exp()*heartbeatGapMean*float64(netsim.Second)), beat)
	}
	g.Eng.After(netsim.Time(g.R.Exp()*heartbeatGapMean*float64(netsim.Second)), beat)
}

// churnRPC models connection-pool churn: with probability pStay the new
// connection joins the pool (heartbeats until its lifetime ends);
// otherwise it behaves like ephemeralRPC.
func (t *Trace) churnRPC(peer topology.HostID, port uint16, req, resp dist.Dist, pStay float64) {
	if !t.G.R.Bool(pStay) {
		t.ephemeralRPC(peer, port, req, resp)
		return
	}
	c := t.G.NewConn(peer, port, true)
	rtt := t.G.RTT(peer)
	t.G.Eng.After(rtt, func() {
		c.SendMsg(int(req.Sample(t.G.R)))
		t.G.Eng.After(rtt, func() { c.RecvMsg(int(resp.Sample(t.G.R))) })
	})
	t.poolMember(c, t.G.R.Exp()*poolLifetimeMean)
}

// prePool creates the steady-state standing pool a capture would find
// already open: ratePerSec×pStay×poolLifetime members, pre-established
// (no SYN), each with a residual exponential lifetime. This is what puts
// "100s to 1000s of concurrent connections" (§6.4) on Web and cache
// hosts and the large at-capture-start mass in Fig. 7.
func (t *Trace) prePool(pickPeer func() topology.HostID, port uint16, ratePerSec, pStay float64) {
	n := int(ratePerSec * pStay * poolLifetimeMean)
	const maxPool = 20000
	if n > maxPool {
		n = maxPool
	}
	for i := 0; i < n; i++ {
		c := t.G.NewConn(pickPeer(), port, false)
		// Residual lifetime of a stationary renewal process is again
		// exponential with the same mean.
		t.poolMember(c, t.G.R.Exp()*poolLifetimeMean)
	}
}

// ---------------------------------------------------------------------
// Web server (§3.2, Fig. 2): stateless request fan-out.

func (t *Trace) installWeb() {
	g, p := t.G, t.P
	self := g.Host
	caches := t.pk.InCluster(topology.RoleCacheFollower, g.Topo.HostCluster(self))
	if caches.Len() == 0 {
		caches = t.pk.Fleet(topology.RoleCacheFollower)
	}
	// PartitionUsers ablation: restrict 90% of cache ops to a small
	// deterministic shard of the cache tier (the §4.3 counterfactual).
	shard := caches
	if p.PartitionUsers && caches.Len() >= 4 {
		n := caches.Len() / 4
		start := int(self) % (caches.Len() - n + 1)
		shard = caches.Slice(start, start+n)
	}
	pickCache := func() topology.HostID {
		set := caches
		if p.PartitionUsers && g.R.Float64() < 0.9 {
			set = shard
		}
		return set.At(g.R.Intn(set.Len()))
	}

	// One user request: SLB in → cache/MF fan-out → reply toward the edge.
	userRequest := func() {
		slb := t.pk.ClusterPeer(g.R, self, topology.RoleSLB)
		slbConn := t.conn(slb, PortWeb, true)
		slbConn.RecvMsg(int(slbRequestBytes.Sample(g.R)))

		reads := poissonCount(g, p.WebCacheReadsPerReq)
		for i := 0; i < reads; i++ {
			d := netsim.Time(g.R.Exp() * float64(2*netsim.Millisecond))
			g.Eng.After(d, func() {
				t.rpcOut(pickCache(), PortCache, cacheReadReqBytes, cacheReadRespBytes)
			})
		}
		writes := poissonCount(g, p.WebCacheWritesPerReq)
		for i := 0; i < writes; i++ {
			d := netsim.Time(g.R.Exp() * float64(4*netsim.Millisecond))
			g.Eng.After(d, func() {
				t.rpcOut(pickCache(), PortCache, cacheWriteBytes, cacheWriteAckBytes)
			})
		}
		mfOps := poissonCount(g, p.WebMFOpsPerReq)
		for i := 0; i < mfOps; i++ {
			g.Eng.After(netsim.Time(g.R.Exp()*float64(2*netsim.Millisecond)), func() {
				t.rpcOut(t.pk.ClusterPeer(g.R, self, topology.RoleMultifeed), PortMF, mfReqBytes, mfRespBytes)
			})
		}
		// Assemble and reply: small control bytes to the SLB, the page
		// itself toward the edge (misc hosts standing in for egress
		// routers; half of egress leaves the datacenter).
		done := netsim.Time(8*netsim.Millisecond) + netsim.Time(g.R.Exp()*float64(8*netsim.Millisecond))
		g.Eng.After(done, func() {
			slbConn.SendMsg(int(slbControlBytes.Sample(g.R)))
			edge := t.pk.DCPeer(g.R, self, topology.RoleMisc)
			if g.R.Bool(0.7) {
				edge = t.pk.RemotePeer(g.R, self, topology.RoleMisc)
			}
			t.conn(edge, PortEgress, false).SendMsg(int(egressReplyBytes.Sample(g.R)))
		})
	}
	g.Poisson(p.WebUserReqPerSec, userRequest)

	// Service chatter drives the Web SYN arrival rate: a third of new
	// connections join pools and persist.
	t.prePool(func() topology.HostID { return t.pk.MiscPeer(g.R, self) },
		PortMisc, p.WebEphemeralPerSec, 0.35)
	g.Poisson(p.WebEphemeralPerSec, func() {
		t.churnRPC(t.pk.MiscPeer(g.R, self), PortMisc, miscReqBytes, miscRespBytes, 0.35)
	})
}

// ---------------------------------------------------------------------
// Cache follower: read-mostly responses to the cluster's Web tier.

func (t *Trace) installCacheFollower() {
	g, p := t.G, t.P
	self := g.Host
	webs := t.pk.InCluster(topology.RoleWeb, g.Topo.HostCluster(self))
	if webs.Len() == 0 {
		webs = t.pk.Fleet(topology.RoleWeb)
	}
	// Load balancing spreads user requests across all Web servers, so the
	// follower's per-web request stream is uniform (Fig. 8b/8c, Fig. 9).
	// The ablation routes requests by session affinity instead: a rotating
	// hot subset of Web servers concentrates most of the demand, and the
	// hot set drifts every couple of seconds as sessions come and go —
	// per-rack rates then swing far from their medians.
	pickWeb := func() topology.HostID {
		if p.DisableLoadBalancing && g.R.Bool(0.85) {
			// Hot block of adjacent Web servers (one rack's worth,
			// since peer lists are rack-ordered), drifting every 2 s.
			block := webs.Len() / 8
			if block < 1 {
				block = 1
			}
			epoch := uint64(g.Eng.Now() / (2 * netsim.Second))
			start := int((epoch*2654435761 + uint64(g.Host)) % uint64(webs.Len()-block+1))
			return webs.At(start + g.R.Intn(block))
		}
		return webs.At(g.R.Intn(webs.Len()))
	}

	// Read service loop; rate scaled by the hot-object multiplier.
	var readLoop func()
	readLoop = func() {
		t.rpcIn(pickWeb(), PortCache, cacheReadReqBytes, cacheReadRespBytes)
		mean := float64(netsim.Second) / (p.CacheReadPerSec * t.hotMul)
		g.Eng.After(netsim.Time(g.R.Exp()*mean), readLoop)
	}
	g.Eng.After(netsim.Time(g.R.Exp()*float64(netsim.Second)/p.CacheReadPerSec), readLoop)

	g.Poisson(p.CacheWritePerSec, func() {
		t.rpcIn(pickWeb(), PortCache, cacheWriteBytes, cacheWriteAckBytes)
	})

	// Coherency with leaders: miss fills out-of-cluster (§4.2: leaders
	// engage in intra- and inter-datacenter traffic).
	g.Poisson(p.CacheLeaderSyncPerSec, func() {
		leader := t.pk.FleetPeer(g.R, self, topology.RoleCacheLeader, 0.6)
		if g.R.Bool(0.7) {
			t.rpcOut(leader, PortLeader, leaderSyncReqBytes, leaderFillBytes)
		} else {
			// Invalidations arrive from the leader.
			t.rpcIn(leader, PortCache, leaderInvalBytes, cacheWriteAckBytes)
		}
	})

	// Hot objects: a burst of demand on this follower. Mitigation
	// (web-side caching, then replication) clips it within ~200 ms;
	// the ablation lets it run for tens of seconds (§5.2).
	g.Poisson(p.HotObjectPerSec, func() {
		if t.hotMul > 1 {
			return // already handling one
		}
		t.hotMul = p.HotObjectMultiplier
		hold := netsim.Time(200 * netsim.Millisecond)
		if p.DisableHotObjectMitigation {
			hold = netsim.Time((10 + g.R.Float64()*30) * float64(netsim.Second))
		}
		g.Eng.After(hold, func() { t.hotMul = 1 })
	})

	// Cache connection churn is dominated by pool replenishment: most new
	// connections persist (§5.1: >40% of cache flows outlive the capture).
	t.prePool(func() topology.HostID { return t.pk.MiscPeer(g.R, self) },
		PortMisc, p.CacheEphemeralPerSec, 0.7)
	g.Poisson(p.CacheEphemeralPerSec, func() {
		t.churnRPC(t.pk.MiscPeer(g.R, self), PortMisc, miscReqBytes, miscRespBytes, 0.7)
	})
}

// ---------------------------------------------------------------------
// Cache leader: the coherency plane of the "single geographically
// distributed instance" (§4.2) — datacenter- and fleet-wide traffic.

func (t *Trace) installCacheLeader() {
	g, p := t.G, t.P
	self := g.Host

	// Fills and invalidations toward followers in Frontend clusters
	// everywhere: ~60% same datacenter, the rest across the backbone.
	g.Poisson(p.LeaderFillPerSec, func() {
		f := t.pk.FleetPeer(g.R, self, topology.RoleCacheFollower, 0.6)
		if g.R.Bool(0.6) {
			c := t.conn(f, PortCache, false)
			c.SendMsg(int(leaderFillBytes.Sample(g.R)))
		} else {
			c := t.conn(f, PortCache, false)
			c.SendMsg(int(leaderInvalBytes.Sample(g.R)))
		}
	})

	// Misses arriving from followers; answered with fills.
	g.Poisson(p.LeaderMissInPerSec, func() {
		f := t.pk.FleetPeer(g.R, self, topology.RoleCacheFollower, 0.6)
		t.rpcIn(f, PortLeader, leaderSyncReqBytes, leaderFillBytes)
	})

	// Database reads and writes behind the misses.
	g.Poisson(p.LeaderDBOpsPerSec, func() {
		db := t.pk.FleetPeer(g.R, self, topology.RoleDB, 0.5)
		t.rpcOut(db, PortDB, dbQueryBytes, dbResultBytes)
	})

	// Pushes to Multifeed aggregators.
	g.Poisson(p.LeaderMFPerSec, func() {
		mf := t.pk.DCPeer(g.R, self, topology.RoleMultifeed)
		t.conn(mf, PortMF, false).SendMsg(int(leaderFillBytes.Sample(g.R)))
	})

	// Intra-cluster coordination with sibling leaders.
	g.Poisson(p.LeaderPeerSyncPerSec, func() {
		peer := t.pk.ClusterPeer(g.R, self, topology.RoleCacheLeader)
		t.rpcOut(peer, PortLeader, leaderPeerBytes, leaderPeerBytes)
	})

	t.prePool(func() topology.HostID { return t.pk.MiscPeer(g.R, self) },
		PortMisc, p.LeaderEphemeralPerSec, 0.65)
	g.Poisson(p.LeaderEphemeralPerSec, func() {
		t.churnRPC(t.pk.MiscPeer(g.R, self), PortMisc, miscReqBytes, miscRespBytes, 0.65)
	})
}

// poissonCount draws a Poisson-distributed count with the given mean
// (inversion by sequential search; means here are small).
func poissonCount(g *workload.Gen, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := -mean
	k, lp := 0, 0.0
	for {
		lp += logUniform(g)
		if lp < l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// logUniform returns ln(U) for U uniform in (0,1].
func logUniform(g *workload.Gen) float64 {
	return -g.R.Exp()
}
