// Package services implements the behavioural traffic models of the
// services §3.2 describes: software load balancers, the stateless Web
// tier, the cache tier (followers serving reads inside Frontend clusters,
// leaders keeping clusters coherent), Hadoop's offline analysis, Multifeed
// news-feed assembly, and the MySQL database tier.
//
// Each role gets two views of the same model:
//
//   - Trace mode (Generate): an event-driven synthesis of the complete
//     bidirectional packet-header stream a port mirror of one host would
//     capture — the input for every per-packet and sub-second analysis.
//   - Fleet mode (FleetFlows): a flow-granularity sample of a host's
//     outbound traffic over long windows — the input for the Fbflow-style
//     fleet analyses (locality tables, traffic matrices, utilization).
//
// Both views share the destination-selection logic in Picker, so the
// locality structure (the paper's central observation) has a single
// source of truth.
package services

// Params holds the tunable knobs of every service model plus the ablation
// switches called out in DESIGN.md. Zero value is not useful; start from
// DefaultParams.
type Params struct {
	// Web tier.
	WebUserReqPerSec     float64 // user HTTP requests hitting one Web server
	WebCacheReadsPerReq  float64 // mean cache reads in a request's fan-out
	WebCacheWritesPerReq float64
	WebMFOpsPerReq       float64 // mean Multifeed ops per request
	WebEphemeralPerSec   float64 // short-lived misc connections per second

	// Cache follower.
	CacheReadPerSec       float64 // read requests served per second
	CacheWritePerSec      float64
	CacheLeaderSyncPerSec float64 // coherency ops with leaders
	CacheEphemeralPerSec  float64
	HotObjectPerSec       float64 // rate at which objects go hot (§5.2)
	HotObjectMultiplier   float64 // read-rate multiplier while hot

	// Cache leader.
	LeaderFillPerSec      float64 // fills + invalidations toward followers
	LeaderMissInPerSec    float64 // miss requests arriving from followers
	LeaderDBOpsPerSec     float64
	LeaderMFPerSec        float64
	LeaderPeerSyncPerSec  float64 // intra-cluster leader coordination
	LeaderEphemeralPerSec float64

	// Hadoop.
	HadoopBusyFlowPerSec  float64 // flow arrivals during shuffle/output
	HadoopQuietFlowPerSec float64 // control traffic during compute
	HadoopBusyMeanSec     float64
	HadoopQuietMeanSec    float64
	HadoopRackLocalFrac   float64 // probability a transfer stays in rack
	HadoopChunkBytes      int     // application write size per burst
	HadoopChunkGapMs      float64 // mean pause between chunks of a flow

	// Background roles.
	MFReqPerSec    float64
	SLBReqPerSec   float64
	DBQueryPerSec  float64
	DBReplPerSec   float64
	MiscFlowPerSec float64
	// MiscBulkBytesPerSec is the long-tail services' bulk data-plane
	// volume per host (index/feature/log shipping), visible only in
	// fleet mode.
	MiscBulkBytesPerSec float64

	// Ablation switches (§4 of DESIGN.md). All default off: the paper's
	// production behaviour.
	DisableLoadBalancing       bool // skew request spread across peers
	DisableConnectionPooling   bool // open a fresh connection per transaction
	DisableHotObjectMitigation bool // let hot objects stay hot for tens of seconds
	PartitionUsers             bool // concentrate a web host's cache working set

	// CatalogObjects is the cache object catalog size used for popularity
	// draws.
	CatalogObjects int
}

// Scaled returns a copy of p with every per-second rate multiplied by f,
// used for diurnal load modulation and stress experiments. Structural
// knobs (fan-out degrees, fractions, ablations) are unchanged.
func (p Params) Scaled(f float64) Params {
	q := p
	q.WebUserReqPerSec *= f
	q.WebEphemeralPerSec *= f
	q.CacheReadPerSec *= f
	q.CacheWritePerSec *= f
	q.CacheLeaderSyncPerSec *= f
	q.CacheEphemeralPerSec *= f
	q.LeaderFillPerSec *= f
	q.LeaderMissInPerSec *= f
	q.LeaderDBOpsPerSec *= f
	q.LeaderMFPerSec *= f
	q.LeaderPeerSyncPerSec *= f
	q.LeaderEphemeralPerSec *= f
	q.HadoopBusyFlowPerSec *= f
	q.HadoopQuietFlowPerSec *= f
	q.MFReqPerSec *= f
	q.SLBReqPerSec *= f
	q.DBQueryPerSec *= f
	q.DBReplPerSec *= f
	q.MiscFlowPerSec *= f
	return q
}

// DefaultParams returns the calibrated baseline: rates scaled so that
// single-host traces run quickly at test scale while preserving every
// shape the paper reports (see EXPERIMENTS.md for the calibration table).
func DefaultParams() Params {
	return Params{
		WebUserReqPerSec:     100,
		WebCacheReadsPerReq:  17,
		WebCacheWritesPerReq: 2,
		WebMFOpsPerReq:       1.5,
		WebEphemeralPerSec:   350,

		CacheReadPerSec:       4000,
		CacheWritePerSec:      300,
		CacheLeaderSyncPerSec: 600,
		CacheEphemeralPerSec:  200,
		HotObjectPerSec:       0.25,
		HotObjectMultiplier:   3,

		LeaderFillPerSec:      1400,
		LeaderMissInPerSec:    950,
		LeaderDBOpsPerSec:     250,
		LeaderMFPerSec:        120,
		LeaderPeerSyncPerSec:  700,
		LeaderEphemeralPerSec: 220,

		HadoopBusyFlowPerSec:  300,
		HadoopQuietFlowPerSec: 15,
		HadoopBusyMeanSec:     15,
		HadoopQuietMeanSec:    25,
		HadoopRackLocalFrac:   0.72,
		HadoopChunkBytes:      64 << 10,
		HadoopChunkGapMs:      8,

		MFReqPerSec:         900,
		SLBReqPerSec:        800,
		DBQueryPerSec:       500,
		DBReplPerSec:        60,
		MiscFlowPerSec:      200,
		MiscBulkBytesPerSec: 2_200_000,

		CatalogObjects: 100_000,
	}
}
