package services

import (
	"fmt"

	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// Picker selects communication peers for a given source host following
// the placement and balancing rules of §3–§4: Web servers talk to the
// cache followers, Multifeed, and SLB machines of their own cluster; cache
// followers answer the cluster's Web servers and sync with leaders across
// datacenters; leaders spread coherency traffic over every cluster;
// Hadoop prefers its own rack, then its cluster.
//
// Peer sets are resolved eagerly for every (role, scope) pair at
// construction, so the accessor maps are read-only afterwards: the
// parallel experiment engine shares one Picker across trace-bundle and
// fleet-shard workers, and lazily filled caches would be a data race on
// the selection hot path. Selection is O(1) per packet/flow.
type Picker struct {
	Topo *topology.Topology

	clusterRole map[scopeKey][]topology.HostID
	dcRole      map[scopeKey][]topology.HostID
	fleetRole   map[topology.Role][]topology.HostID
}

type scopeKey struct {
	role  topology.Role
	scope int
}

// NewPicker builds a Picker over topo and precomputes every peer set.
func NewPicker(topo *topology.Topology) *Picker {
	p := &Picker{
		Topo:        topo,
		clusterRole: make(map[scopeKey][]topology.HostID, len(topo.Clusters)*len(topology.Roles)),
		dcRole:      make(map[scopeKey][]topology.HostID, len(topo.Datacenters)*len(topology.Roles)),
		fleetRole:   make(map[topology.Role][]topology.HostID, len(topology.Roles)),
	}
	for _, role := range topology.Roles {
		p.fleetRole[role] = topo.HostsByRole(role)
		for _, c := range topo.Clusters {
			p.clusterRole[scopeKey{role, c.ID}] = topo.HostsByRoleInCluster(role, c.ID)
		}
		for _, dc := range topo.Datacenters {
			p.dcRole[scopeKey{role, dc.ID}] = topo.HostsByRoleInDC(role, dc.ID)
		}
	}
	return p
}

// InCluster returns the hosts of the given role within cluster c.
func (p *Picker) InCluster(r topology.Role, c int) []topology.HostID {
	if v, ok := p.clusterRole[scopeKey{r, c}]; ok {
		return v
	}
	return p.Topo.HostsByRoleInCluster(r, c)
}

// InDC returns the hosts of the given role within datacenter dc.
func (p *Picker) InDC(r topology.Role, dc int) []topology.HostID {
	if v, ok := p.dcRole[scopeKey{r, dc}]; ok {
		return v
	}
	return p.Topo.HostsByRoleInDC(r, dc)
}

// Fleet returns all hosts of the given role.
func (p *Picker) Fleet(r topology.Role) []topology.HostID {
	if v, ok := p.fleetRole[r]; ok {
		return v
	}
	return p.Topo.HostsByRole(r)
}

// pick returns a uniform element of hosts other than self, falling back
// to self only if it is the sole member. It panics on an empty set — a
// topology too small for the requesting service model.
func pick(r *rng.Source, hosts []topology.HostID, self topology.HostID) topology.HostID {
	if len(hosts) == 0 {
		panic("services: empty peer set; topology lacks a required role")
	}
	for i := 0; i < 4; i++ {
		h := hosts[r.Intn(len(hosts))]
		if h != self {
			return h
		}
	}
	return hosts[r.Intn(len(hosts))]
}

// ClusterPeer picks a same-cluster host with the given role, falling back
// to datacenter scope then fleet scope when the cluster has none.
func (p *Picker) ClusterPeer(r *rng.Source, self topology.HostID, role topology.Role) topology.HostID {
	h := &p.Topo.Hosts[self]
	if set := p.InCluster(role, h.Cluster); len(set) > 0 {
		return pick(r, set, self)
	}
	if set := p.InDC(role, h.Datacenter); len(set) > 0 {
		return pick(r, set, self)
	}
	return pick(r, p.Fleet(role), self)
}

// DCPeer picks a host of the given role in the same datacenter (any
// cluster), falling back to fleet scope.
func (p *Picker) DCPeer(r *rng.Source, self topology.HostID, role topology.Role) topology.HostID {
	h := &p.Topo.Hosts[self]
	if set := p.InDC(role, h.Datacenter); len(set) > 0 {
		return pick(r, set, self)
	}
	return pick(r, p.Fleet(role), self)
}

// FleetPeer picks a host of the given role anywhere, preferring the local
// datacenter with probability localBias.
func (p *Picker) FleetPeer(r *rng.Source, self topology.HostID, role topology.Role, localBias float64) topology.HostID {
	if r.Bool(localBias) {
		return p.DCPeer(r, self, role)
	}
	return pick(r, p.Fleet(role), self)
}

// RemotePeer picks a host of the given role in a *different* datacenter
// when one exists, otherwise anywhere.
func (p *Picker) RemotePeer(r *rng.Source, self topology.HostID, role topology.Role) topology.HostID {
	set := p.Fleet(role)
	dc := p.Topo.Hosts[self].Datacenter
	for i := 0; i < 16; i++ {
		h := set[r.Intn(len(set))]
		if p.Topo.Hosts[h].Datacenter != dc {
			return h
		}
	}
	return pick(r, set, self)
}

// RackPeer picks a same-rack host, falling back to the cluster when the
// rack has a single machine.
func (p *Picker) RackPeer(r *rng.Source, self topology.HostID) topology.HostID {
	rack := p.Topo.Racks[p.Topo.Hosts[self].Rack]
	if len(rack.Hosts) > 1 {
		for {
			h := rack.Hosts[r.Intn(len(rack.Hosts))]
			if h != self {
				return h
			}
		}
	}
	return p.ClusterPeer(r, self, p.Topo.Hosts[self].Role)
}

// HadoopPeer picks a transfer peer for a Hadoop node: same rack with
// probability rackFrac, otherwise elsewhere in the cluster.
func (p *Picker) HadoopPeer(r *rng.Source, self topology.HostID, rackFrac float64) topology.HostID {
	if r.Bool(rackFrac) {
		return p.RackPeer(r, self)
	}
	return p.ClusterPeer(r, self, topology.RoleHadoop)
}

// MiscPeer picks a long-tail service peer with the Service-cluster
// locality mix of Table 3: mostly cluster-scoped with datacenter and
// cross-datacenter components.
func (p *Picker) MiscPeer(r *rng.Source, self topology.HostID) topology.HostID {
	u := r.Float64()
	switch {
	case u < 0.55:
		return p.ClusterPeer(r, self, topology.RoleMisc)
	case u < 0.80:
		return p.DCPeer(r, self, topology.RoleMisc)
	default:
		return p.FleetPeer(r, self, topology.RoleMisc, 0)
	}
}

// Validate checks that the topology can satisfy every role the service
// models need.
func (p *Picker) Validate() error {
	for _, role := range topology.Roles {
		if len(p.Fleet(role)) == 0 {
			return fmt.Errorf("services: topology has no %v hosts", role)
		}
	}
	return nil
}
