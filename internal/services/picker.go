package services

import (
	"fmt"

	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// Picker selects communication peers for a given source host following
// the placement and balancing rules of §3–§4: Web servers talk to the
// cache followers, Multifeed, and SLB machines of their own cluster; cache
// followers answer the cluster's Web servers and sync with leaders across
// datacenters; leaders spread coherency traffic over every cluster;
// Hadoop prefers its own rack, then its cluster.
//
// Peer sets are topology.HostSet views over the columnar role index —
// four words per set, resolved in O(1) from the topology's prefix sums —
// so the Picker holds no per-host state of its own and costs nothing to
// build at any fleet size. Sets are read-only and the Picker is safe to
// share across the parallel engine's trace-bundle and fleet-shard
// workers. Selection is O(log racks-of-role) per draw: each HostSet
// index is a binary search over the role's rack prefix sums.
//
// The selection logic and its rng consumption are identical to the
// pre-columnar picker: every draw happens in the same order against a set
// enumerating the same hosts in the same (ascending host ID) order, so
// collected datasets are bit-identical across the layout change.
type Picker struct {
	Topo *topology.Topology
}

// NewPicker builds a Picker over topo.
func NewPicker(topo *topology.Topology) *Picker {
	return &Picker{Topo: topo}
}

// InCluster returns the hosts of the given role within cluster c.
func (p *Picker) InCluster(r topology.Role, c int) topology.HostSet {
	return p.Topo.RoleSetInCluster(r, c)
}

// InDC returns the hosts of the given role within datacenter dc.
func (p *Picker) InDC(r topology.Role, dc int) topology.HostSet {
	return p.Topo.RoleSetInDC(r, dc)
}

// Fleet returns all hosts of the given role.
func (p *Picker) Fleet(r topology.Role) topology.HostSet {
	return p.Topo.RoleSet(r)
}

// pick returns a uniform element of hosts other than self, falling back
// to self only if it is the sole member. It panics on an empty set — a
// topology too small for the requesting service model.
func pick(r *rng.Source, hosts topology.HostSet, self topology.HostID) topology.HostID {
	n := hosts.Len()
	if n == 0 {
		panic("services: empty peer set; topology lacks a required role")
	}
	for i := 0; i < 4; i++ {
		h := hosts.At(r.Intn(n))
		if h != self {
			return h
		}
	}
	return hosts.At(r.Intn(n))
}

// ClusterPeer picks a same-cluster host with the given role, falling back
// to datacenter scope then fleet scope when the cluster has none.
func (p *Picker) ClusterPeer(r *rng.Source, self topology.HostID, role topology.Role) topology.HostID {
	if set := p.InCluster(role, p.Topo.HostCluster(self)); set.Len() > 0 {
		return pick(r, set, self)
	}
	if set := p.InDC(role, p.Topo.HostDC(self)); set.Len() > 0 {
		return pick(r, set, self)
	}
	return pick(r, p.Fleet(role), self)
}

// DCPeer picks a host of the given role in the same datacenter (any
// cluster), falling back to fleet scope.
func (p *Picker) DCPeer(r *rng.Source, self topology.HostID, role topology.Role) topology.HostID {
	if set := p.InDC(role, p.Topo.HostDC(self)); set.Len() > 0 {
		return pick(r, set, self)
	}
	return pick(r, p.Fleet(role), self)
}

// FleetPeer picks a host of the given role anywhere, preferring the local
// datacenter with probability localBias.
func (p *Picker) FleetPeer(r *rng.Source, self topology.HostID, role topology.Role, localBias float64) topology.HostID {
	if r.Bool(localBias) {
		return p.DCPeer(r, self, role)
	}
	return pick(r, p.Fleet(role), self)
}

// RemotePeer picks a host of the given role in a *different* datacenter
// when one exists, otherwise anywhere.
func (p *Picker) RemotePeer(r *rng.Source, self topology.HostID, role topology.Role) topology.HostID {
	set := p.Fleet(role)
	dc := p.Topo.HostDC(self)
	n := set.Len()
	for i := 0; i < 16; i++ {
		h := set.At(r.Intn(n))
		if p.Topo.HostDC(h) != dc {
			return h
		}
	}
	return pick(r, set, self)
}

// RackPeer picks a same-rack host, falling back to the cluster when the
// rack has a single machine.
func (p *Picker) RackPeer(r *rng.Source, self topology.HostID) topology.HostID {
	rack := &p.Topo.Racks[p.Topo.HostRack(self)]
	if rack.NumHosts > 1 {
		for {
			h := rack.Host(r.Intn(int(rack.NumHosts)))
			if h != self {
				return h
			}
		}
	}
	return p.ClusterPeer(r, self, p.Topo.HostRole(self))
}

// HadoopPeer picks a transfer peer for a Hadoop node: same rack with
// probability rackFrac, otherwise elsewhere in the cluster.
func (p *Picker) HadoopPeer(r *rng.Source, self topology.HostID, rackFrac float64) topology.HostID {
	if r.Bool(rackFrac) {
		return p.RackPeer(r, self)
	}
	return p.ClusterPeer(r, self, topology.RoleHadoop)
}

// MiscPeer picks a long-tail service peer with the Service-cluster
// locality mix of Table 3: mostly cluster-scoped with datacenter and
// cross-datacenter components.
func (p *Picker) MiscPeer(r *rng.Source, self topology.HostID) topology.HostID {
	u := r.Float64()
	switch {
	case u < 0.55:
		return p.ClusterPeer(r, self, topology.RoleMisc)
	case u < 0.80:
		return p.DCPeer(r, self, topology.RoleMisc)
	default:
		return p.FleetPeer(r, self, topology.RoleMisc, 0)
	}
}

// Validate checks that the topology can satisfy every role the service
// models need.
func (p *Picker) Validate() error {
	for _, role := range topology.Roles {
		if p.Fleet(role).Len() == 0 {
			return fmt.Errorf("services: topology has no %v hosts", role)
		}
	}
	return nil
}
