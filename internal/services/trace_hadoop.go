package services

import (
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/topology"
)

// installHadoop models a Hadoop node's distinct job phases (§4.2): quiet
// computation periods with only control traffic, and busy shuffle/output
// periods of many short-but-occasionally-huge transfers, mostly rack- and
// cluster-local. Every transfer is a fresh connection (no pooling in the
// data plane), producing the short flows of Fig. 6c/7c and the bimodal
// ACK/MTU packet sizes of Fig. 12.
func (t *Trace) installHadoop() {
	g, p := t.G, t.P
	self := g.Host
	busy := false

	// Phase alternation with log-normal-ish durations (exponential keeps
	// the tail simple; observed variability comes from job mix anyway).
	var enterBusy, enterQuiet func()
	enterBusy = func() {
		busy = true
		g.Eng.After(netsim.Time(g.R.Exp()*p.HadoopBusyMeanSec*float64(netsim.Second)), enterQuiet)
	}
	enterQuiet = func() {
		busy = false
		g.Eng.After(netsim.Time(g.R.Exp()*p.HadoopQuietMeanSec*float64(netsim.Second)), enterBusy)
	}
	// Start mid-phase, busy with the same duty-cycle probability the
	// steady state would give.
	duty := p.HadoopBusyMeanSec / (p.HadoopBusyMeanSec + p.HadoopQuietMeanSec)
	if g.R.Bool(duty) {
		enterBusy()
	} else {
		enterQuiet()
	}

	// Data transfers during busy phases.
	g.Poisson(p.HadoopBusyFlowPerSec, func() {
		if !busy {
			return
		}
		peer := t.pk.HadoopPeer(g.R, self, p.HadoopRackLocalFrac)
		t.hadoopTransfer(peer, int(hadoopFlowBytes.Sample(g.R)), g.R.Bool(0.5))
	})

	// Control/heartbeat traffic runs in every phase.
	g.Poisson(p.HadoopQuietFlowPerSec, func() {
		peer := t.pk.HadoopPeer(g.R, self, 0.2)
		t.hadoopTransfer(peer, int(hadoopControlBytes.Sample(g.R)), g.R.Bool(0.5))
	})
}

// hadoopTransfer moves size bytes over a fresh connection in chunked
// application writes with pauses between chunks, then closes. Outbound
// and inbound transfers are both synthesized so the mirror sees both
// shuffle directions.
func (t *Trace) hadoopTransfer(peer topology.HostID, size int, outbound bool) {
	g, p := t.G, t.P
	chunk := p.HadoopChunkBytes
	if chunk <= 0 {
		chunk = 64 << 10
	}
	gapMean := p.HadoopChunkGapMs * float64(netsim.Millisecond)

	var c = t.G.NewConn(peer, PortHadoop, true)
	if !outbound {
		c = t.G.NewInboundConn(peer, PortHadoopIn, true)
	}
	remaining := size
	var step func()
	step = func() {
		n := remaining
		if n > chunk {
			n = chunk
		}
		if outbound {
			c.SendMsg(n)
		} else {
			c.RecvMsg(n)
		}
		remaining -= n
		if remaining > 0 {
			g.Eng.After(netsim.Time(g.R.Exp()*gapMean), step)
			return
		}
		g.Eng.After(netsim.Time(g.R.Exp()*float64(2*netsim.Millisecond)), c.Close)
	}
	// Data begins one RTT after the handshake.
	g.Eng.After(t.G.RTT(peer), step)
}
