package services

import (
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// Traffic-matrix synthesis: the bulk alternative to per-host destination
// sampling. Instead of drawing samplesPerComponent destinations for every
// host of every rack (O(hosts × samples) rng draws and tagger calls), the
// matrix mode works at rack granularity, in the style of DCT²Gen-style
// traffic generators and the vectorised packing of Parsonson et al.
// (arXiv:2302.09970): for each (source rack, mix term) it computes the
// term's aggregate bytes for the window, packs them onto a bounded set of
// destination racks selected by residual capacity, and accumulates the
// result into a per-(src rack, dst rack) demand matrix keyed by packed
// uint64 pairs. Flows are then drawn from the matrix — one record per
// non-zero cell — so the record count scales with racks, not hosts.
//
// Determinism contract: synthesis for one (window, rack-block) task
// consumes a single rng stream in a fixed order (racks ascending, mix
// entries in declaration order, terms in declaration order), and the
// demand matrix is drained in insertion order, so the produced record
// sequence is a pure function of (seed, window, block) — bit-identical
// at any worker count, exactly like the sampling mode's shard streams.

// matrixFanout bounds the destination racks one (source rack, term) pair
// spreads onto. Residual-capacity rotation across consecutive source
// racks keeps long-run per-rack inbound shares proportional to capacity
// even though each source touches at most this many destinations.
const matrixFanout = 8

// matrixDrain is the multiplicative residual decay applied to a
// destination rack each time packing selects it. Selected racks sink to
// the bottom of the sort order until the renewal floor below restores
// them, rotating load across the candidate range.
const matrixDrain = 0.5

// matrixRenewFrac is the renewal floor: when a rack's residual falls
// under this fraction of its capacity it is restored to full capacity.
const matrixRenewFrac = 0.05

// packPair packs two non-negative 32-bit indices into one uint64 key.
// The high bit stays clear, so the openhash sentinel is unreachable.
func packPair(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// DemandMatrix accumulates one task's rack-to-rack demand plus the
// packing residuals. Both tables keep their backing arrays across Reset,
// so a matrix reused window after window performs zero steady-state
// allocations (the pooling contract of fbflow.Partial).
type DemandMatrix struct {
	// cells maps packPair(srcRack, dstRack) -> bytes.
	cells openhash.Table[float64]
	// residual maps packPair(role, dstRack) -> remaining capacity in
	// host units. Keyed by (role, rack) rather than rack alone so the
	// key layout matches the packed-pair convention of the analysis
	// tables even though a rack hosts exactly one role.
	residual openhash.Table[float64]
}

// NewDemandMatrix returns an empty matrix.
func NewDemandMatrix() *DemandMatrix { return &DemandMatrix{} }

// Reset empties the matrix and the packing residuals without releasing
// their backing arrays.
func (m *DemandMatrix) Reset() {
	m.cells.Reset()
	m.residual.Reset()
}

// Cells reports the number of non-zero (src rack, dst rack) entries.
func (m *DemandMatrix) Cells() int { return m.cells.Len() }

// EachCell visits every demand cell in insertion order — deterministic
// for a fixed rng stream, which is what lets the determinism flight
// recorder hash a synthesized matrix as canonical output.
func (m *DemandMatrix) EachCell(f func(srcRack, dstRack int32, bytes float64)) {
	m.cells.Range(func(k uint64, v *float64) {
		f(int32(k>>32), int32(uint32(k)), *v)
	})
}

// add accumulates bytes from srcRack to dstRack.
func (m *DemandMatrix) add(srcRack, dstRack int32, bytes float64) {
	*m.cells.Slot(packPair(srcRack, dstRack)) += bytes
}

// MatrixProgram is the matrix-mode counterpart of FleetProgram: the
// per-role mixes compiled once, read through their declarative dst terms
// instead of their sampling closures. Safe for concurrent use; all
// per-task mutable state lives in the DemandMatrix.
type MatrixProgram struct {
	pk    *Picker
	mixes [topology.RoleMisc + 1][]mixEntry
}

// NewMatrixProgram compiles the mixes of every role under params p.
func NewMatrixProgram(pk *Picker, p Params) *MatrixProgram {
	mp := &MatrixProgram{pk: pk}
	for role := topology.Role(0); role <= topology.RoleMisc; role++ {
		mp.mixes[role] = pk.fleetMix(p, role)
	}
	return mp
}

// rackRange is a candidate destination range: one or two contiguous
// subranges of a role's rack list (two for the remote scope, which
// excludes the local datacenter from the middle of the fleet range).
type rackRange struct {
	role           topology.Role
	lo1, hi1       int // first subrange of RoleRacks(role)
	lo2, hi2       int // second subrange, empty unless remote scope
	hosts1, hosts2 int32
}

func (rr *rackRange) totalHosts() int32 { return rr.hosts1 + rr.hosts2 }

// resolve maps (term scope, source rack) to the destination rack range,
// applying the same scope fallbacks as the Picker closures: cluster →
// datacenter → fleet, datacenter → fleet, remote → fleet when only one
// datacenter exists.
func (mp *MatrixProgram) resolve(term *dstTerm, srcRack *topology.Rack) rackRange {
	topo := mp.pk.Topo
	role := term.role
	cum := topo.RoleCum(role)
	span := func(lo, hi int) rackRange {
		return rackRange{role: role, lo1: lo, hi1: hi, hosts1: cum[hi] - cum[lo]}
	}
	fleet := span(0, len(cum)-1)
	switch term.scope {
	case scopeCluster:
		if lo, hi := topo.RoleRackRangeInCluster(role, srcRack.Cluster); lo < hi {
			return span(lo, hi)
		}
		fallthrough
	case scopeDC:
		dc := topo.Clusters[srcRack.Cluster].Datacenter
		if lo, hi := topo.RoleRackRangeInDC(role, dc); lo < hi {
			return span(lo, hi)
		}
		return fleet
	case scopeRemote:
		dc := topo.Clusters[srcRack.Cluster].Datacenter
		lo, hi := topo.RoleRackRangeInDC(role, dc)
		out := rackRange{
			role: role,
			lo1:  0, hi1: lo, hosts1: cum[lo] - cum[0],
			lo2: hi, hi2: len(cum) - 1, hosts2: cum[len(cum)-1] - cum[hi],
		}
		if out.totalHosts() == 0 {
			return fleet
		}
		return out
	default: // scopeFleet (scopeRack is handled by the caller)
		return fleet
	}
}

// drawRack picks one destination rack index (into RoleRacks) from the
// range, weighted by rack host counts via the role's prefix sums.
func (mp *MatrixProgram) drawRack(r *rng.Source, rr *rackRange) int {
	cum := mp.pk.Topo.RoleCum(rr.role)
	u := int32(r.Uint64n(uint64(rr.totalHosts())))
	var pos int32
	lo, hi := rr.lo1, rr.hi1
	if u < rr.hosts1 {
		pos = cum[rr.lo1] + u
	} else {
		pos = cum[rr.lo2] + (u - rr.hosts1)
		lo, hi = rr.lo2, rr.hi2
	}
	// Binary search: greatest j in [lo, hi) with cum[j] <= pos.
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] <= pos {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// packTerm distributes total bytes from srcRack across up to matrixFanout
// destination racks of the range: propose 2×fanout capacity-weighted
// candidates, sort the deduplicated set by residual capacity descending,
// keep the top fanout, fill proportionally to residual, then apply the
// residual decay in one batch — the propose/sort/fill/update steps of the
// vectorised packing algorithm, on fixed-size stacks.
func (mp *MatrixProgram) packTerm(r *rng.Source, srcRack int32, rr *rackRange, total float64, m *DemandMatrix) {
	topo := mp.pk.Topo
	racks := topo.RoleRacks(rr.role)

	var cand [2 * matrixFanout]int32
	var res [2 * matrixFanout]float64
	n := 0
	proposals := 2 * matrixFanout
	if int32(proposals) > rr.totalHosts() {
		proposals = int(rr.totalHosts())
	}
propose:
	for i := 0; i < proposals; i++ {
		rid := racks[mp.drawRack(r, rr)]
		for j := 0; j < n; j++ {
			if cand[j] == rid {
				continue propose
			}
		}
		capacity := float64(topo.Racks[rid].NumHosts)
		slot := m.residual.Slot(packPair(int32(rr.role), rid))
		if *slot == 0 || *slot < capacity*matrixRenewFrac {
			*slot = capacity
		}
		cand[n], res[n] = rid, *slot
		n++
	}
	if n == 0 {
		return
	}
	// Insertion sort by residual descending, ties to the lower rack ID:
	// a fixed total order keeps the packed output independent of proposal
	// arrival order beyond what the rng stream already fixes.
	for i := 1; i < n; i++ {
		ci, ri := cand[i], res[i]
		j := i - 1
		for j >= 0 && (res[j] < ri || (res[j] == ri && cand[j] > ci)) {
			cand[j+1], res[j+1] = cand[j], res[j]
			j--
		}
		cand[j+1], res[j+1] = ci, ri
	}
	if n > matrixFanout {
		n = matrixFanout
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += res[i]
	}
	for i := 0; i < n; i++ {
		m.add(srcRack, cand[i], total*res[i]/sum)
	}
	// Batched residual update: decay every selected rack once.
	for i := 0; i < n; i++ {
		*m.residual.Slot(packPair(int32(rr.role), cand[i])) = res[i] * matrixDrain
	}
}

// Synth fills m with the demand of source racks [rackLo, rackHi) for one
// window. The rng stream is consumed in a fixed order: one burst-noise
// draw per (rack, mix entry) — the rack-granularity analogue of runMix's
// per-host draw — then the packing proposals per term.
func (mp *MatrixProgram) Synth(r *rng.Source, rackLo, rackHi int,
	windowSec, loadFactor float64, m *DemandMatrix) {
	topo := mp.pk.Topo
	for rk := rackLo; rk < rackHi; rk++ {
		rack := &topo.Racks[rk]
		mix := mp.mixes[rack.Role]
		hosts := float64(rack.NumHosts)
		for i := range mix {
			e := &mix[i]
			total := e.bytesPerSec * wireOverhead * windowSec * loadFactor * hosts
			// Rack-level burst noise, consumed even for zero-rate
			// entries so the stream position is a pure function of the
			// entry count, as in runMix.
			total *= 0.8 + 0.4*r.Float64()
			if total <= 0 {
				continue
			}
			for ti := range e.dst {
				term := &e.dst[ti]
				bytes := total * term.frac
				if term.scope == scopeRack && rack.NumHosts > 1 {
					m.add(int32(rk), int32(rk), bytes)
					continue
				}
				rr := mp.resolve(term, rack)
				if rr.totalHosts() == 0 {
					continue
				}
				mp.packTerm(r, int32(rk), &rr, bytes, m)
			}
		}
	}
}

// DrawFlows drains the matrix in insertion order, emitting one flow per
// non-zero cell between concrete hosts of the cell's rack pair. Endpoint
// hosts are drawn uniformly within each rack; an intra-rack cell redirects
// a self-flow to the next host so loopback traffic is never emitted from
// racks with more than one machine.
func (mp *MatrixProgram) DrawFlows(r *rng.Source, m *DemandMatrix,
	emit func(src, dst topology.HostID, bytes float64)) {
	topo := mp.pk.Topo
	m.cells.Range(func(k uint64, v *float64) {
		srcRack := &topo.Racks[int32(k>>32)]
		dstRack := &topo.Racks[int32(uint32(k))]
		src := srcRack.Host(r.Intn(int(srcRack.NumHosts)))
		dst := dstRack.Host(r.Intn(int(dstRack.NumHosts)))
		if dst == src {
			if dstRack.NumHosts <= 1 {
				return
			}
			off := (int32(dst-dstRack.FirstHost) + 1) % dstRack.NumHosts
			dst = dstRack.FirstHost + topology.HostID(off)
		}
		emit(src, dst, *v)
	})
}
