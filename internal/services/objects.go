package services

import (
	"math"
	"sort"

	"fbdcnet/internal/dist"
	"fbdcnet/internal/rng"
)

// This file models the cache object economy behind §5.2's stability
// observations: "the request rate distribution for the top-50 most
// requested objects on a cache server is close across all cache servers,
// and the median lifespan for objects within this list is on the order of
// a few minutes."
//
// Popularity is Zipfian over popularity slots; objects occupy slots and
// are replaced over time (stories age, new ones trend), so top-50
// membership churns at minute scale while the *shape* of the rate
// distribution — which is what load provisioning sees — stays constant.

// ObjectChurnConfig sizes the popularity simulation.
type ObjectChurnConfig struct {
	Servers       int     // cache servers sampled
	Epochs        int     // observation epochs
	EpochSec      float64 // epoch length
	ReadsPerSec   float64 // per-server read rate
	Slots         int     // popularity slots (catalog truncated to the head)
	ZipfExponent  float64
	SlotChurnProb float64 // probability a slot's object is replaced per epoch
	TopK          int     // the "top-50"
}

// DefaultObjectChurnConfig matches the paper's setting: minutes-scale
// epochs, top-50 lists.
func DefaultObjectChurnConfig(p Params) ObjectChurnConfig {
	return ObjectChurnConfig{
		Servers:       8,
		Epochs:        10,
		EpochSec:      60,
		ReadsPerSec:   p.CacheReadPerSec,
		Slots:         4096,
		ZipfExponent:  0.99,
		SlotChurnProb: 0.25,
		TopK:          50,
	}
}

// ObjectChurnResult reports the §5.2 statistics.
type ObjectChurnResult struct {
	// MedianLifespanSec is the median time an object stays in a server's
	// top-K list.
	MedianLifespanSec float64
	// CrossServerSimilarity is the mean pairwise cosine similarity of
	// per-server top-K rate vectors within an epoch (≈1: "close across
	// all cache servers").
	CrossServerSimilarity float64
	// TopKShare is the fraction of requests absorbed by the top-K
	// objects, the skew that makes hot-object mitigation necessary.
	TopKShare float64
}

// SimulateObjectPopularity runs the popularity churn model and returns
// the §5.2 statistics. Deterministic in r.
func SimulateObjectPopularity(cfg ObjectChurnConfig, r *rng.Source) ObjectChurnResult {
	if cfg.Servers < 2 || cfg.Epochs < 2 || cfg.TopK < 1 || cfg.Slots < cfg.TopK {
		panic("services: degenerate object churn config")
	}
	zipf := dist.NewZipf(cfg.Slots, cfg.ZipfExponent)

	// slotObject[slot] identifies the object currently occupying the
	// popularity slot; replacement churns identity, not popularity shape.
	slotObject := make([]int, cfg.Slots)
	nextObject := 0
	for i := range slotObject {
		slotObject[i] = nextObject
		nextObject++
	}

	// enteredTop[server][object] is the epoch the object entered the
	// server's current top-K streak.
	entered := make([]map[int]int, cfg.Servers)
	inPrev := make([]map[int]bool, cfg.Servers)
	for s := range entered {
		entered[s] = make(map[int]int)
		inPrev[s] = make(map[int]bool)
	}
	var lifespans []float64
	var similarities []float64
	var topShare []float64

	reads := int(cfg.ReadsPerSec * cfg.EpochSec)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Object replacement at slot granularity.
		if epoch > 0 {
			for slot := range slotObject {
				if r.Bool(cfg.SlotChurnProb) {
					slotObject[slot] = nextObject
					nextObject++
				}
			}
		}

		// Each server independently samples the shared popularity.
		tops := make([][]float64, cfg.Servers)
		for srv := 0; srv < cfg.Servers; srv++ {
			counts := make(map[int]int)
			total := 0
			for i := 0; i < reads; i++ {
				obj := slotObject[zipf.Rank(r)]
				counts[obj]++
				total++
			}
			type kv struct {
				obj int
				n   int
			}
			items := make([]kv, 0, len(counts))
			for o, n := range counts {
				items = append(items, kv{o, n})
			}
			sort.Slice(items, func(i, j int) bool {
				if items[i].n != items[j].n {
					return items[i].n > items[j].n
				}
				return items[i].obj < items[j].obj
			})
			k := cfg.TopK
			if k > len(items) {
				k = len(items)
			}
			vec := make([]float64, k)
			set := make(map[int]bool, k)
			topN := 0
			for i := 0; i < k; i++ {
				vec[i] = float64(items[i].n) / float64(total)
				set[items[i].obj] = true
				topN += items[i].n
			}
			tops[srv] = vec
			topShare = append(topShare, float64(topN)/float64(total))

			// Lifespan bookkeeping: objects leaving the top-K end a streak.
			for o := range inPrev[srv] {
				if !set[o] {
					lifespans = append(lifespans,
						float64(epoch-entered[srv][o])*cfg.EpochSec)
					delete(entered[srv], o)
				}
			}
			for o := range set {
				if !inPrev[srv][o] {
					entered[srv][o] = epoch
				}
			}
			inPrev[srv] = set
		}

		// Cross-server similarity of the sorted top-K rate vectors.
		for a := 0; a < cfg.Servers; a++ {
			for b := a + 1; b < cfg.Servers; b++ {
				similarities = append(similarities, cosine(tops[a], tops[b]))
			}
		}
	}

	res := ObjectChurnResult{}
	if len(lifespans) > 0 {
		sort.Float64s(lifespans)
		res.MedianLifespanSec = lifespans[len(lifespans)/2]
	}
	res.CrossServerSimilarity = mean(similarities)
	res.TopKShare = mean(topShare)
	return res
}

func cosine(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
