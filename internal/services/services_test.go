package services

import (
	"testing"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

func testTopo(t *testing.T) (*topology.Topology, *Picker) {
	t.Helper()
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	pk := NewPicker(topo)
	if err := pk.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo, pk
}

// firstOfRole finds a monitored host of the given role.
func firstOfRole(t *testing.T, topo *topology.Topology, r topology.Role) topology.HostID {
	t.Helper()
	hs := topo.HostsByRole(r)
	if len(hs) == 0 {
		t.Fatalf("no hosts of role %v", r)
	}
	return hs[0]
}

type trace struct {
	hdrs []packet.Header
}

func (tr *trace) Packet(h packet.Header) { tr.hdrs = append(tr.hdrs, h) }

// runTrace generates dur seconds of traffic for one host of role r.
func runTrace(t *testing.T, r topology.Role, seconds int64, p Params) (*trace, *topology.Topology, topology.HostID) {
	t.Helper()
	topo, pk := testTopo(t)
	host := firstOfRole(t, topo, r)
	tr := &trace{}
	NewTrace(pk, host, 12345, p, tr).Run(seconds * netsim.Second)
	if len(tr.hdrs) == 0 {
		t.Fatalf("role %v generated no packets", r)
	}
	return tr, topo, host
}

type cachedTrace struct {
	tr   *trace
	topo *topology.Topology
	host topology.HostID
}

var defaultTraces = map[topology.Role]*cachedTrace{}

// defaultTrace memoizes one default-parameter trace per role so the many
// shape assertions share a single generation pass.
func defaultTrace(t *testing.T, r topology.Role, seconds int64) (*trace, *topology.Topology, topology.HostID) {
	t.Helper()
	if c, ok := defaultTraces[r]; ok {
		return c.tr, c.topo, c.host
	}
	tr, topo, host := runTrace(t, r, seconds, DefaultParams())
	defaultTraces[r] = &cachedTrace{tr, topo, host}
	return tr, topo, host
}

// outboundMix computes the fraction of outbound bytes per destination
// role (the Table 2 statistic).
func outboundMix(tr *trace, topo *topology.Topology, host topology.HostID) map[topology.Role]float64 {
	byRole := map[topology.Role]float64{}
	total := 0.0
	addr := topo.Addr(host)
	for _, h := range tr.hdrs {
		if h.Key.Src != addr {
			continue
		}
		dst, _ := topo.HostByAddr(h.Key.Dst)
		byRole[topo.HostRole(dst)] += float64(h.Size)
		total += float64(h.Size)
	}
	for k := range byRole {
		byRole[k] /= total
	}
	return byRole
}

// localityMix computes the outbound byte fraction per locality tier.
func localityMix(tr *trace, topo *topology.Topology, host topology.HostID) map[topology.Locality]float64 {
	byLoc := map[topology.Locality]float64{}
	total := 0.0
	addr := topo.Addr(host)
	for _, h := range tr.hdrs {
		if h.Key.Src != addr {
			continue
		}
		dst, _ := topo.HostByAddr(h.Key.Dst)
		loc := topo.Locality(host, dst)
		byLoc[loc] += float64(h.Size)
		total += float64(h.Size)
	}
	for k := range byLoc {
		byLoc[k] /= total
	}
	return byLoc
}

func TestWebOutboundMixMatchesTable2(t *testing.T) {
	tr, topo, host := defaultTrace(t, topology.RoleWeb, 20)
	mix := outboundMix(tr, topo, host)
	// Table 2 Web row: Cache 63.1, MF 15.2, SLB 5.6, Rest 16.1.
	if c := mix[topology.RoleCacheFollower]; c < 0.45 || c > 0.80 {
		t.Errorf("web→cache share %.2f, want ≈0.63", c)
	}
	if m := mix[topology.RoleMultifeed]; m < 0.05 || m > 0.30 {
		t.Errorf("web→MF share %.2f, want ≈0.15", m)
	}
	if s := mix[topology.RoleSLB]; s > 0.15 {
		t.Errorf("web→SLB share %.2f, want small ≈0.06", s)
	}
	if mix[topology.RoleCacheFollower] <= mix[topology.RoleMultifeed] {
		t.Error("cache share must dominate MF share")
	}
}

func TestCacheFollowerMixMatchesTable2(t *testing.T) {
	tr, topo, host := defaultTrace(t, topology.RoleCacheFollower, 10)
	mix := outboundMix(tr, topo, host)
	// Table 2 Cache-f row: Web 88.7, Cache 5.8, Rest 5.5.
	if w := mix[topology.RoleWeb]; w < 0.75 {
		t.Errorf("cache-f→web share %.2f, want ≈0.89", w)
	}
	lead := mix[topology.RoleCacheLeader]
	if lead > 0.20 {
		t.Errorf("cache-f→leader share %.2f, want ≈0.06", lead)
	}
}

func TestCacheLeaderMixMatchesTable2(t *testing.T) {
	tr, topo, host := defaultTrace(t, topology.RoleCacheLeader, 10)
	mix := outboundMix(tr, topo, host)
	// Table 2 Cache-l row: Cache 86.6, MF 5.9, Rest 7.5.
	cache := mix[topology.RoleCacheFollower] + mix[topology.RoleCacheLeader]
	if cache < 0.70 {
		t.Errorf("leader→cache share %.2f, want ≈0.87", cache)
	}
}

func TestHadoopMixMatchesTable2(t *testing.T) {
	tr, topo, host := defaultTrace(t, topology.RoleHadoop, 60)
	mix := outboundMix(tr, topo, host)
	// Table 2 Hadoop row: Hadoop 99.8, Rest 0.2.
	if h := mix[topology.RoleHadoop]; h < 0.99 {
		t.Errorf("hadoop→hadoop share %.3f, want ≈0.998", h)
	}
}

func TestWebLocalityClusterHeavy(t *testing.T) {
	tr, topo, host := defaultTrace(t, topology.RoleWeb, 20)
	loc := localityMix(tr, topo, host)
	// §4.2: 68% of web traffic stays in the cluster; rack-local minimal.
	if c := loc[topology.IntraCluster]; c < 0.5 {
		t.Errorf("web intra-cluster %.2f, want ≥0.5", c)
	}
	if r := loc[topology.IntraRack]; r > 0.10 {
		t.Errorf("web intra-rack %.2f, want ≈0", r)
	}
	if loc[topology.InterDatacenter] <= 0 {
		t.Error("web should have some inter-datacenter traffic")
	}
}

func TestHadoopLocalityRackHeavy(t *testing.T) {
	tr, topo, host := defaultTrace(t, topology.RoleHadoop, 60)
	loc := localityMix(tr, topo, host)
	// Fig 4a / §4.2: busy-node traffic is mostly rack+cluster local.
	if rc := loc[topology.IntraRack] + loc[topology.IntraCluster]; rc < 0.95 {
		t.Errorf("hadoop rack+cluster %.2f, want ≈1", rc)
	}
	if loc[topology.IntraRack] < 0.3 {
		t.Errorf("hadoop intra-rack %.2f, want substantial", loc[topology.IntraRack])
	}
}

func TestCacheLeaderLocalityDCHeavy(t *testing.T) {
	tr, topo, host := defaultTrace(t, topology.RoleCacheLeader, 10)
	loc := localityMix(tr, topo, host)
	// Fig 4d / Table 3 Cache column: intra- and inter-DC dominate,
	// rack-local ≈ 0.
	if dc := loc[topology.IntraDatacenter] + loc[topology.InterDatacenter]; dc < 0.4 {
		t.Errorf("leader DC+interDC %.2f, want dominant", dc)
	}
	if loc[topology.IntraRack] > 0.05 {
		t.Errorf("leader intra-rack %.2f, want ≈0", loc[topology.IntraRack])
	}
}

func TestPacketSizesMedian(t *testing.T) {
	// Fig 12: non-Hadoop median < 200 B (driven by ACKs and small
	// requests); Hadoop bimodal with most bytes in MTU packets.
	for _, r := range []topology.Role{topology.RoleWeb, topology.RoleCacheFollower} {
		tr, _, _ := defaultTrace(t, r, 10)
		sizes := make([]int, 0, len(tr.hdrs))
		for _, h := range tr.hdrs {
			sizes = append(sizes, int(h.Size))
		}
		med := medianInt(sizes)
		if med >= 400 {
			t.Errorf("%v median packet %d, want small (<400)", r, med)
		}
	}
	tr, _, _ := defaultTrace(t, topology.RoleHadoop, 60)
	var ack, mtu, other int
	for _, h := range tr.hdrs {
		switch {
		case h.Size <= 80:
			ack++
		case h.Size >= 1400:
			mtu++
		default:
			other++
		}
	}
	total := ack + mtu + other
	if frac := float64(ack+mtu) / float64(total); frac < 0.75 {
		t.Errorf("hadoop bimodal fraction %.2f, want ≥0.75", frac)
	}
}

func TestSYNRatesOrdering(t *testing.T) {
	p := DefaultParams()
	rate := func(r topology.Role, sec int64) float64 {
		tr, _, _ := runTrace(t, r, sec, p)
		syn := 0
		for _, h := range tr.hdrs {
			if h.SYN() && h.Flags&packet.FlagACK == 0 {
				syn++
			}
		}
		return float64(syn) / float64(sec)
	}
	web := rate(topology.RoleWeb, 10)
	cacheF := rate(topology.RoleCacheFollower, 10)
	if web <= cacheF {
		t.Errorf("web SYN rate (%.0f/s) should exceed cache follower's (%.0f/s)", web, cacheF)
	}
}

func TestConnectionPoolingAblation(t *testing.T) {
	p := DefaultParams()
	pooled, _, _ := runTrace(t, topology.RoleCacheFollower, 5, p)
	p.DisableConnectionPooling = true
	unpooled, _, _ := runTrace(t, topology.RoleCacheFollower, 5, p)
	count := func(tr *trace) int {
		n := 0
		for _, h := range tr.hdrs {
			if h.SYN() && h.Flags&packet.FlagACK == 0 {
				n++
			}
		}
		return n
	}
	if count(unpooled) < 5*count(pooled) {
		t.Errorf("disabling pooling should multiply SYNs: pooled=%d unpooled=%d",
			count(pooled), count(unpooled))
	}
}

func TestHotObjectMitigationAblation(t *testing.T) {
	p := DefaultParams()
	p.HotObjectPerSec = 0.1
	// Fraction of seconds whose outbound rate exceeds 1.5× the median:
	// mitigation clips hot objects within ~200 ms, so elevated seconds
	// should be rare; without it, multi-second hot periods appear (§5.2).
	elevated := func(mitigated bool) float64 {
		p.DisableHotObjectMitigation = !mitigated
		const seconds = 40
		tr, topo, host := runTrace(t, topology.RoleCacheFollower, seconds, p)
		addr := topo.Addr(host)
		perSec := make([]float64, seconds)
		for _, h := range tr.hdrs {
			if h.Key.Src != addr {
				continue
			}
			s := int(h.Time / netsim.Second)
			if s < len(perSec) {
				perSec[s] += float64(h.Size)
			}
		}
		med := medianFloat(perSec)
		n := 0
		for _, v := range perSec {
			if v > 1.5*med {
				n++
			}
		}
		return float64(n) / seconds
	}
	m := elevated(true)
	u := elevated(false)
	if u <= m {
		t.Errorf("unmitigated elevated-second fraction (%.2f) should exceed mitigated (%.2f)", u, m)
	}
}

func medianFloat(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func TestAllRolesGenerate(t *testing.T) {
	topo, pk := testTopo(t)
	for _, r := range topology.Roles {
		host := firstOfRole(t, topo, r)
		tr := &trace{}
		NewTrace(pk, host, 7, DefaultParams(), tr).Run(2 * netsim.Second)
		if len(tr.hdrs) == 0 {
			t.Errorf("role %v generated no packets", r)
		}
		for i := 1; i < len(tr.hdrs); i++ {
			if tr.hdrs[i].Time < tr.hdrs[i-1].Time {
				t.Errorf("role %v: non-monotone trace", r)
				break
			}
		}
		// Every packet involves the monitored host.
		addr := topo.Addr(host)
		for _, h := range tr.hdrs {
			if h.Key.Src != addr && h.Key.Dst != addr {
				t.Errorf("role %v: packet not involving monitored host: %v", r, h.Key)
				break
			}
		}
	}
}

func TestFleetRatesPositive(t *testing.T) {
	_, pk := testTopo(t)
	p := DefaultParams()
	for _, r := range topology.Roles {
		if rate := pk.FleetRate(p, r); rate <= 0 {
			t.Errorf("role %v fleet rate %.0f", r, rate)
		}
	}
	// Hadoop should be the heaviest per-host source (§4.1: Hadoop
	// clusters ≈5× Frontend edge load).
	if pk.FleetRate(p, topology.RoleHadoop) <= pk.FleetRate(p, topology.RoleWeb) {
		t.Error("hadoop per-host rate should exceed web's")
	}
}

func TestFleetFlowsConserveBytes(t *testing.T) {
	topo, pk := testTopo(t)
	p := DefaultParams()
	r := rng.New(5)
	src := firstOfRole(t, topo, topology.RoleWeb)
	total := 0.0
	n := 0
	pk.FleetFlows(p, r, src, 60, 1.0, 8, func(dst topology.HostID, bytes float64) {
		if dst == src {
			t.Fatal("fleet flow to self")
		}
		if bytes <= 0 {
			t.Fatal("non-positive flow bytes")
		}
		total += bytes
		n++
	})
	want := pk.FleetRate(p, topology.RoleWeb) * 60
	if total < want*0.5 || total > want*1.5 {
		t.Errorf("fleet flow bytes %.0f, want ≈%.0f", total, want)
	}
	if n == 0 {
		t.Fatal("no fleet flows emitted")
	}
}

func TestFleetLocalityWebClusterHeavy(t *testing.T) {
	topo, pk := testTopo(t)
	p := DefaultParams()
	r := rng.New(6)
	src := firstOfRole(t, topo, topology.RoleWeb)
	byLoc := map[topology.Locality]float64{}
	total := 0.0
	for i := 0; i < 50; i++ {
		pk.FleetFlows(p, r, src, 60, 1.0, 8, func(dst topology.HostID, bytes float64) {
			byLoc[topo.Locality(src, dst)] += bytes
			total += bytes
		})
	}
	if frac := byLoc[topology.IntraCluster] / total; frac < 0.5 {
		t.Errorf("fleet web intra-cluster %.2f, want ≥0.5", frac)
	}
}

func TestPickerScopes(t *testing.T) {
	topo, pk := testTopo(t)
	r := rng.New(9)
	web := firstOfRole(t, topo, topology.RoleWeb)
	for i := 0; i < 100; i++ {
		c := pk.ClusterPeer(r, web, topology.RoleCacheFollower)
		if topo.HostCluster(c) != topo.HostCluster(web) {
			t.Fatal("ClusterPeer left the cluster")
		}
		if topo.HostRole(c) != topology.RoleCacheFollower {
			t.Fatal("ClusterPeer wrong role")
		}
		d := pk.DCPeer(r, web, topology.RoleDB)
		if topo.HostDC(d) != topo.HostDC(web) {
			t.Fatal("DCPeer left the datacenter")
		}
		rem := pk.RemotePeer(r, web, topology.RoleMisc)
		if topo.HostDC(rem) == topo.HostDC(web) {
			t.Fatal("RemotePeer stayed in the datacenter")
		}
		rp := pk.RackPeer(r, web)
		if rp == web || topo.HostRack(rp) != topo.HostRack(web) {
			t.Fatal("RackPeer wrong")
		}
	}
}

func TestHadoopPeerRackFraction(t *testing.T) {
	topo, pk := testTopo(t)
	r := rng.New(10)
	h := firstOfRole(t, topo, topology.RoleHadoop)
	rackLocal := 0
	const n = 5000
	for i := 0; i < n; i++ {
		peer := pk.HadoopPeer(r, h, 0.7)
		if topo.HostRack(peer) == topo.HostRack(h) {
			rackLocal++
		}
	}
	frac := float64(rackLocal) / n
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("hadoop rack-local fraction %.2f, want ≈0.7", frac)
	}
}

func TestPoissonCount(t *testing.T) {
	topo, _ := testTopo(t)
	g := workload.NewGen(topo, 0, 3, workload.CollectorFunc(func(packet.Header) {}))
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poissonCount(g, 3.5)
	}
	mean := float64(sum) / n
	if mean < 3.3 || mean > 3.7 {
		t.Errorf("poisson mean %.2f, want 3.5", mean)
	}
	if poissonCount(g, 0) != 0 {
		t.Error("zero-mean poisson should be 0")
	}
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	c := append([]int(nil), xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func TestCacheFlowsLongLived(t *testing.T) {
	// §5.1: many cache flows are long-lived; a large share of observed
	// flows should persist to the end of the capture while Hadoop's
	// transfers finish in milliseconds.
	tr, topo, host := defaultTrace(t, topology.RoleCacheFollower, 10)
	const capNs = 10 * int64(netsim.Second)
	type span struct{ first, last int64 }
	flows := map[packet.FlowKey]*span{}
	addr := topo.Addr(host)
	for _, h := range tr.hdrs {
		k := h.Key
		if k.Src != addr {
			k = k.Reverse()
		}
		sp, ok := flows[k]
		if !ok {
			flows[k] = &span{h.Time, h.Time}
			continue
		}
		sp.last = h.Time
	}
	longLived := 0
	for _, sp := range flows {
		if sp.last > capNs*8/10 { // active in the final fifth of capture
			longLived++
		}
	}
	frac := float64(longLived) / float64(len(flows))
	if frac < 0.3 {
		t.Fatalf("long-lived cache flow fraction %.2f, want ≥0.3", frac)
	}
}

func TestChurnKeepsSYNRate(t *testing.T) {
	// The churn model must not change the SYN arrival rate: pool
	// replenishment connections still open with a handshake.
	tr, _, _ := defaultTrace(t, topology.RoleCacheFollower, 10)
	syn := 0
	for _, h := range tr.hdrs {
		if h.SYN() && h.Flags&packet.FlagACK == 0 {
			syn++
		}
	}
	rate := float64(syn) / 10
	p := DefaultParams()
	if rate < p.CacheEphemeralPerSec*0.6 || rate > p.CacheEphemeralPerSec*1.6 {
		t.Fatalf("SYN rate %.0f/s, want ≈%.0f/s", rate, p.CacheEphemeralPerSec)
	}
}

func TestScaledParams(t *testing.T) {
	p := DefaultParams()
	q := p.Scaled(2)
	if q.WebUserReqPerSec != 2*p.WebUserReqPerSec ||
		q.CacheReadPerSec != 2*p.CacheReadPerSec ||
		q.HadoopBusyFlowPerSec != 2*p.HadoopBusyFlowPerSec {
		t.Fatal("rates not scaled")
	}
	if q.HadoopRackLocalFrac != p.HadoopRackLocalFrac || q.CatalogObjects != p.CatalogObjects {
		t.Fatal("structural knobs must not scale")
	}
}

func TestLoadBalancingAblationDestabilizes(t *testing.T) {
	p := DefaultParams()
	measure := func(disable bool) float64 {
		p.DisableLoadBalancing = disable
		tr, topo, host := runTrace(t, topology.RoleCacheFollower, 12, p)
		perRackSec := map[int]map[int]float64{}
		addr := topo.Addr(host)
		for _, h := range tr.hdrs {
			if h.Key.Src != addr {
				continue
			}
			dst, dok := topo.HostByAddr(h.Key.Dst)
			if !dok || topo.HostRole(dst) != topology.RoleWeb {
				continue
			}
			sec := int(h.Time / int64(netsim.Second))
			m, ok := perRackSec[topo.HostRack(dst)]
			if !ok {
				m = map[int]float64{}
				perRackSec[topo.HostRack(dst)] = m
			}
			m[sec] += float64(h.Size)
		}
		// Coefficient of variation of per-second rates, averaged over racks.
		total, n := 0.0, 0
		for _, secs := range perRackSec {
			var mean, m2 float64
			cnt := 0.0
			for _, v := range secs {
				cnt++
				d := v - mean
				mean += d / cnt
				m2 += d * (v - mean)
			}
			if cnt > 1 && mean > 0 {
				variance := m2 / cnt
				total += sqrtf(variance) / mean
				n++
			}
		}
		return total / float64(n)
	}
	balanced := measure(false)
	skewed := measure(true)
	if skewed <= balanced {
		t.Fatalf("skewed CV (%.2f) should exceed balanced CV (%.2f)", skewed, balanced)
	}
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestObjectPopularityDeterministic(t *testing.T) {
	cfg := DefaultObjectChurnConfig(DefaultParams())
	cfg.Servers, cfg.Epochs = 3, 4
	cfg.ReadsPerSec = 500
	a := SimulateObjectPopularity(cfg, rng.New(1))
	b := SimulateObjectPopularity(cfg, rng.New(1))
	if a != b {
		t.Fatal("object popularity simulation not deterministic")
	}
}

func TestObjectPopularityChurnScales(t *testing.T) {
	cfg := DefaultObjectChurnConfig(DefaultParams())
	cfg.Servers, cfg.Epochs = 3, 8
	cfg.ReadsPerSec = 1000
	cfg.SlotChurnProb = 0.1
	slow := SimulateObjectPopularity(cfg, rng.New(2))
	cfg.SlotChurnProb = 0.7
	fast := SimulateObjectPopularity(cfg, rng.New(2))
	if fast.MedianLifespanSec >= slow.MedianLifespanSec {
		t.Fatalf("higher churn should shorten lifespans: %.0f vs %.0f",
			fast.MedianLifespanSec, slow.MedianLifespanSec)
	}
}

func TestObjectPopularityPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate config accepted")
		}
	}()
	SimulateObjectPopularity(ObjectChurnConfig{Servers: 1}, rng.New(1))
}
