package services

import "fbdcnet/internal/dist"

// Application message size models, calibrated so the emergent per-packet
// distributions reproduce Figure 12 (median non-Hadoop packet < 200 B,
// Hadoop bimodal ACK/MTU) and the outbound byte mixes of Table 2. Sizes
// are application payload bytes; the workload layer segments them into
// wire packets.
var (
	// Web ↔ SLB: user HTTP requests in, small control/ack bytes back
	// (responses return to users directly, not through the L4 SLB).
	slbRequestBytes = dist.LogNormalFromMedian(500, 0.5)
	slbControlBytes = dist.LogNormalFromMedian(600, 0.4)

	// Web → edge: the compressed page/JSON payload leaving the cluster.
	egressReplyBytes = dist.LogNormalFromMedian(650, 0.9)

	// Web ↔ cache: small keyed reads with small-but-variable values, and
	// larger writes carrying serialized objects.
	cacheReadReqBytes  = dist.LogNormalFromMedian(230, 0.35)
	cacheReadRespBytes = dist.LogNormalFromMedian(580, 1.05)
	cacheWriteBytes    = dist.LogNormalFromMedian(1400, 0.8)
	cacheWriteAckBytes = dist.Constant{V: 110}

	// Web ↔ Multifeed: aggregation requests with story payload replies.
	mfReqBytes  = dist.LogNormalFromMedian(1100, 0.6)
	mfRespBytes = dist.LogNormalFromMedian(1900, 0.9)

	// Cache coherency plane.
	leaderSyncReqBytes = dist.LogNormalFromMedian(280, 0.5)
	leaderFillBytes    = dist.LogNormalFromMedian(950, 1.0)
	leaderInvalBytes   = dist.Constant{V: 150}
	leaderPeerBytes    = dist.LogNormalFromMedian(480, 0.7)
	dbQueryBytes       = dist.LogNormalFromMedian(420, 0.5)
	dbResultBytes      = dist.LogNormalFromMedian(1500, 1.0)
	dbReplBytes        = dist.LogNormalFromMedian(5000, 1.0)

	// Ephemeral RPC traffic to long-tail services.
	miscReqBytes  = dist.LogNormalFromMedian(150, 0.8)
	miscRespBytes = dist.LogNormalFromMedian(650, 1.0)

	// Hadoop transfer sizes: a light-tailed body of control/metadata
	// flows with a heavy-tailed minority of shuffle/HDFS transfers.
	// Shape targets (Fig. 6c): median < 1 KB, ≈70% under 10 KB, < 5%
	// above 1 MB.
	hadoopFlowBytes = dist.NewMixture(
		[]float64{0.68, 0.32},
		[]dist.Dist{
			dist.LogNormalFromMedian(420, 1.3),
			dist.BoundedPareto{Lo: 2 << 10, Hi: 1 << 28, Alpha: 0.3},
		},
	)
	hadoopControlBytes = dist.LogNormalFromMedian(300, 0.8)
)
