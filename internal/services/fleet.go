package services

import (
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// Fleet mode produces flow-granularity outbound traffic for every host in
// the fleet over long windows — hours to a day — which is what the
// Fbflow-based analyses (Table 3, Figure 5, §4.1 utilization) consume.
// Every packet in the network is outbound from exactly one host, so
// generating each host's outbound flows covers total traffic exactly once.
//
// The destination logic is shared with trace mode through Picker; the
// byte volumes are derived from the same Params and message-size models,
// so the two modes describe one workload at two resolutions.

// wireOverhead inflates application bytes to on-wire bytes (headers and
// ACK traffic).
const wireOverhead = 1.18

// dstScope names the locality tier a traffic component targets. It is the
// declarative counterpart of the Picker's *Peer methods, consumed by the
// traffic-matrix synthesis mode, which needs the destination distribution
// as data (rack ranges and weights) rather than as a sampling closure.
type dstScope uint8

const (
	scopeRack dstScope = iota
	scopeCluster
	scopeDC
	scopeFleet
	scopeRemote
)

// dstTerm is one declarative component of a mix entry's destination
// distribution: a fraction of the entry's bytes addressed to hosts of one
// role at one locality scope. The terms of an entry sum to 1 and mirror
// the branch probabilities inside the corresponding pickDst closure
// (FleetPeer's localBias, MiscPeer's 0.55/0.25/0.20 split, Web egress's
// 0.7 remote preference), so matrix-mode marginals match sampling-mode
// expectations.
type dstTerm struct {
	frac  float64
	scope dstScope
	role  topology.Role
}

// miscDst is the declarative form of Picker.MiscPeer.
var miscDst = []dstTerm{
	{0.55, scopeCluster, topology.RoleMisc},
	{0.25, scopeDC, topology.RoleMisc},
	{0.20, scopeFleet, topology.RoleMisc},
}

// fleetDst is the declarative form of Picker.FleetPeer(role, localBias).
func fleetDst(role topology.Role, localBias float64) []dstTerm {
	if localBias <= 0 {
		return []dstTerm{{1, scopeFleet, role}}
	}
	return []dstTerm{
		{localBias, scopeDC, role},
		{1 - localBias, scopeFleet, role},
	}
}

// mixEntry is one component of a role's outbound traffic: a mean byte
// rate, a destination sampler (sampling mode), and the equivalent
// declarative destination distribution (matrix mode).
type mixEntry struct {
	bytesPerSec float64
	pickDst     func(r *rng.Source, src topology.HostID) topology.HostID
	dst         []dstTerm
}

// fleetMix returns the outbound traffic composition of one role,
// mirroring the trace-mode loops (and hence Table 2).
func (pk *Picker) fleetMix(p Params, role topology.Role) []mixEntry {
	switch role {
	case topology.RoleWeb:
		return []mixEntry{
			{p.WebUserReqPerSec * (p.WebCacheReadsPerReq*cacheReadReqBytes.Mean() + p.WebCacheWritesPerReq*cacheWriteBytes.Mean()),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleCacheFollower)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleCacheFollower}}},
			{p.WebUserReqPerSec * p.WebMFOpsPerReq * mfReqBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleMultifeed)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleMultifeed}}},
			{p.WebUserReqPerSec * slbControlBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleSLB)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleSLB}}},
			{p.WebUserReqPerSec * egressReplyBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					if r.Bool(0.7) {
						return pk.RemotePeer(r, src, topology.RoleMisc)
					}
					return pk.DCPeer(r, src, topology.RoleMisc)
				},
				[]dstTerm{{0.7, scopeRemote, topology.RoleMisc}, {0.3, scopeDC, topology.RoleMisc}}},
			{p.WebEphemeralPerSec * miscReqBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.MiscPeer(r, src)
				},
				miscDst},
		}
	case topology.RoleCacheFollower:
		return []mixEntry{
			{p.CacheReadPerSec*cacheReadRespBytes.Mean() + p.CacheWritePerSec*cacheWriteAckBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleWeb)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleWeb}}},
			{p.CacheLeaderSyncPerSec * leaderSyncReqBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.FleetPeer(r, src, topology.RoleCacheLeader, 0.6)
				},
				fleetDst(topology.RoleCacheLeader, 0.6)},
			{p.CacheEphemeralPerSec * miscReqBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.MiscPeer(r, src)
				},
				miscDst},
		}
	case topology.RoleCacheLeader:
		fillOut := p.LeaderFillPerSec * (0.6*leaderFillBytes.Mean() + 0.4*leaderInvalBytes.Mean())
		missOut := p.LeaderMissInPerSec * leaderFillBytes.Mean()
		return []mixEntry{
			{fillOut + missOut,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.FleetPeer(r, src, topology.RoleCacheFollower, 0.6)
				},
				fleetDst(topology.RoleCacheFollower, 0.6)},
			{p.LeaderPeerSyncPerSec * leaderPeerBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleCacheLeader)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleCacheLeader}}},
			{p.LeaderDBOpsPerSec * dbQueryBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.FleetPeer(r, src, topology.RoleDB, 0.5)
				},
				fleetDst(topology.RoleDB, 0.5)},
			{p.LeaderMFPerSec * leaderFillBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.DCPeer(r, src, topology.RoleMultifeed)
				},
				[]dstTerm{{1, scopeDC, topology.RoleMultifeed}}},
			{p.LeaderEphemeralPerSec * miscReqBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.MiscPeer(r, src)
				},
				miscDst},
		}
	case topology.RoleHadoop:
		duty := p.HadoopBusyMeanSec / (p.HadoopBusyMeanSec + p.HadoopQuietMeanSec)
		// hadoopFleetDamp converts the busy monitored node of trace mode
		// into a day-long fleet average: across a production Hadoop
		// cluster most nodes at any instant are in map/compute phases or
		// waiting for task assignment, so the fleet mean sits well below
		// a busy node's rate while still ≈5x a Frontend host's (§4.1).
		const hadoopFleetDamp = 0.24
		dataOut := hadoopFleetDamp * duty * p.HadoopBusyFlowPerSec * 0.5 * hadoopFlowBytes.Mean()
		// Fleet-average rack fraction (Table 3: 13.3% rack, 80.9%
		// cluster): day-long averages include cross-job HDFS reads with
		// far less read locality than the busy shuffle a short trace
		// catches (§4.3).
		return []mixEntry{
			{dataOut * 0.14,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.RackPeer(r, src)
				},
				[]dstTerm{{1, scopeRack, topology.RoleHadoop}}},
			{dataOut * 0.835,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleHadoop)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleHadoop}}},
			{dataOut * 0.017,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.FleetPeer(r, src, topology.RoleMisc, 0.55)
				},
				fleetDst(topology.RoleMisc, 0.55)},
			{p.HadoopQuietFlowPerSec * hadoopControlBytes.Mean() * 0.5,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleHadoop)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleHadoop}}},
		}
	case topology.RoleMultifeed:
		return []mixEntry{
			{p.MFReqPerSec * mfRespBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleWeb)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleWeb}}},
			{p.MiscFlowPerSec / 4 * miscReqBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.MiscPeer(r, src)
				},
				miscDst},
		}
	case topology.RoleSLB:
		return []mixEntry{
			{p.SLBReqPerSec * slbRequestBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleWeb)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleWeb}}},
			{p.SLBReqPerSec / 2 * slbControlBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.FleetPeer(r, src, topology.RoleMisc, 0.5)
				},
				fleetDst(topology.RoleMisc, 0.5)},
		}
	case topology.RoleDB:
		return []mixEntry{
			{p.DBQueryPerSec * dbResultBytes.Mean(),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.FleetPeer(r, src, topology.RoleCacheLeader, 0.5)
				},
				fleetDst(topology.RoleCacheLeader, 0.5)},
			{p.DBReplPerSec * dbReplBytes.Mean() / 3,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.ClusterPeer(r, src, topology.RoleDB)
				},
				[]dstTerm{{1, scopeCluster, topology.RoleDB}}},
			{p.DBReplPerSec * dbReplBytes.Mean() / 3,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.DCPeer(r, src, topology.RoleDB)
				},
				[]dstTerm{{1, scopeDC, topology.RoleDB}}},
			{p.DBReplPerSec * dbReplBytes.Mean() / 3,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.RemotePeer(r, src, topology.RoleDB)
				},
				[]dstTerm{{1, scopeRemote, topology.RoleDB}}},
		}
	case topology.RoleMisc:
		return []mixEntry{
			{p.MiscFlowPerSec * 0.5 * (miscReqBytes.Mean() + miscRespBytes.Mean()),
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.MiscPeer(r, src)
				},
				miscDst},
			// Bulk service-to-service synchronization (index shards,
			// feature stores, log shipping): the reason Service clusters
			// carry the third-largest traffic share in Table 3.
			{p.MiscBulkBytesPerSec,
				func(r *rng.Source, src topology.HostID) topology.HostID {
					return pk.MiscPeer(r, src)
				},
				miscDst},
		}
	default:
		return nil
	}
}

// FleetRate returns the mean outbound on-wire bytes per second for one
// host of the given role.
func (pk *Picker) FleetRate(p Params, role topology.Role) float64 {
	total := 0.0
	for _, m := range pk.fleetMix(p, role) {
		total += m.bytesPerSec
	}
	return total * wireOverhead
}

// FleetFlows synthesizes flow-granularity outbound traffic of host src
// over a window of windowSec seconds with an overall load multiplier
// (diurnal modulation), invoking emit for each (dst, bytes) flow record.
// samplesPerComponent controls the dispersion resolution per mix entry.
func (pk *Picker) FleetFlows(p Params, r *rng.Source, src topology.HostID,
	windowSec, loadFactor float64, samplesPerComponent int, emit func(dst topology.HostID, bytes float64)) {
	runMix(pk.fleetMix(p, pk.Topo.HostRole(src)), r, src, windowSec, loadFactor, samplesPerComponent, emit)
}

// runMix is the shared sampling loop of FleetFlows and FleetProgram.Flows:
// one rng draw of burst noise per mix entry (consumed even for zero-rate
// entries, so the stream position is a pure function of the entry count),
// then samplesPerComponent destination draws.
func runMix(mix []mixEntry, r *rng.Source, src topology.HostID,
	windowSec, loadFactor float64, samplesPerComponent int, emit func(dst topology.HostID, bytes float64)) {
	if samplesPerComponent <= 0 {
		samplesPerComponent = 8
	}
	for i := range mix {
		m := &mix[i]
		total := m.bytesPerSec * wireOverhead * windowSec * loadFactor
		// Host-level burst noise: windows are not identical.
		total *= 0.8 + 0.4*r.Float64()
		if total <= 0 {
			continue
		}
		per := total / float64(samplesPerComponent)
		for i := 0; i < samplesPerComponent; i++ {
			dst := m.pickDst(r, src)
			if dst == src {
				continue
			}
			emit(dst, per)
		}
	}
}

// FleetProgram is the compiled form of the fleet workload: the per-role
// mixes built once instead of once per (host, window) call. fleetMix
// allocates a slice and a closure per entry on every invocation, which
// dominated the allocation profile of the sharded fleet collector; the
// program hoists that work to configuration time. The closures only
// capture the Picker, never the source host, so a precompiled mix is
// behavior-identical — same rates, same destination samplers, same rng
// consumption — to one built fresh per call. Safe for concurrent use.
type FleetProgram struct {
	pk    *Picker
	mixes [topology.RoleMisc + 1][]mixEntry
}

// NewFleetProgram compiles the mixes of every role under params p.
func NewFleetProgram(pk *Picker, p Params) *FleetProgram {
	fp := &FleetProgram{pk: pk}
	for role := topology.Role(0); role <= topology.RoleMisc; role++ {
		fp.mixes[role] = pk.fleetMix(p, role)
	}
	return fp
}

// Flows is FleetFlows over the precompiled mix: identical emit sequence
// and rng stream position, zero allocations.
func (fp *FleetProgram) Flows(r *rng.Source, src topology.HostID,
	windowSec, loadFactor float64, samplesPerComponent int, emit func(dst topology.HostID, bytes float64)) {
	runMix(fp.mixes[fp.pk.Topo.HostRole(src)], r, src, windowSec, loadFactor, samplesPerComponent, emit)
}
