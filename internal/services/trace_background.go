package services

import (
	"fbdcnet/internal/topology"
)

// The background roles below are not monitored in any of the paper's
// figures, but they must exist and behave plausibly: they are the far
// ends of monitored hosts' conversations, the constituents of the Service
// and DB columns of Table 3, and the request sources of the examples.

// installMultifeed serves aggregation requests from the cluster's Web
// tier and receives pushes from cache leaders (news-feed assembly, §3.1).
func (t *Trace) installMultifeed() {
	g, p := t.G, t.P
	self := g.Host
	g.Poisson(p.MFReqPerSec, func() {
		web := t.pk.ClusterPeer(g.R, self, topology.RoleWeb)
		t.rpcIn(web, PortMF, mfReqBytes, mfRespBytes)
	})
	g.Poisson(p.LeaderMFPerSec, func() {
		leader := t.pk.FleetPeer(g.R, self, topology.RoleCacheLeader, 0.7)
		c := t.conn(leader, PortMF, true)
		c.RecvMsg(int(leaderFillBytes.Sample(g.R)))
	})
	g.Poisson(p.MiscFlowPerSec/4, func() {
		t.ephemeralRPC(t.pk.MiscPeer(g.R, self), PortMisc, miscReqBytes, miscRespBytes)
	})
}

// installSLB forwards user requests to the cluster's Web servers and
// exchanges health/control traffic; page payloads return to users
// directly, so the SLB's own byte volume is modest (Table 2's small SLB
// share).
func (t *Trace) installSLB() {
	g, p := t.G, t.P
	self := g.Host
	g.Poisson(p.SLBReqPerSec, func() {
		web := t.pk.ClusterPeer(g.R, self, topology.RoleWeb)
		t.rpcOut(web, PortWeb, slbRequestBytes, slbControlBytes)
	})
	// Ingress from the edge (misc hosts stand in for routers).
	g.Poisson(p.SLBReqPerSec/2, func() {
		edge := t.pk.FleetPeer(g.R, self, topology.RoleMisc, 0.5)
		c := t.conn(edge, PortSLB, true)
		c.RecvMsg(int(slbRequestBytes.Sample(g.R)))
	})
}

// installDB serves queries from cache leaders and replicates writes to
// sibling databases in the same cluster, the same datacenter, and across
// the backbone in roughly equal parts (the most uniform locality row of
// Table 3).
func (t *Trace) installDB() {
	g, p := t.G, t.P
	self := g.Host
	g.Poisson(p.DBQueryPerSec, func() {
		leader := t.pk.FleetPeer(g.R, self, topology.RoleCacheLeader, 0.5)
		t.rpcIn(leader, PortDB, dbQueryBytes, dbResultBytes)
	})
	g.Poisson(p.DBReplPerSec, func() {
		var peer topology.HostID
		switch g.R.Intn(3) {
		case 0:
			peer = t.pk.ClusterPeer(g.R, self, topology.RoleDB)
		case 1:
			peer = t.pk.DCPeer(g.R, self, topology.RoleDB)
		default:
			peer = t.pk.RemotePeer(g.R, self, topology.RoleDB)
		}
		t.conn(peer, PortDB, false).SendMsg(int(dbReplBytes.Sample(g.R)))
	})
}

// installMisc models the long tail of supporting services: RPC chatter
// with the Service-cluster locality mix.
func (t *Trace) installMisc() {
	g, p := t.G, t.P
	self := g.Host
	g.Poisson(p.MiscFlowPerSec, func() {
		peer := t.pk.MiscPeer(g.R, self)
		if g.R.Bool(0.5) {
			t.rpcOut(peer, PortMisc, miscReqBytes, miscRespBytes)
		} else {
			t.rpcIn(peer, PortMisc, miscReqBytes, miscRespBytes)
		}
	})
}
