// Package baseline implements the previously published datacenter
// workload models the paper contrasts against (Table 1): Benson et al.'s
// on/off packet arrivals with log-normal period lengths and bimodal
// ACK/MTU packet sizes [12, 13], Kandula et al.'s rack-heavy MapReduce
// locality [26], and Alizadeh et al.'s handful of concurrent large flows
// [8]. Running the same analyses over these generators makes every "our
// data differs from the literature" claim an executable A/B.
package baseline

import (
	"fbdcnet/internal/dist"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// OnOffParams configures the literature host model.
type OnOffParams struct {
	// OnPeriod and OffPeriod are the burst and silence lengths; the
	// literature reports log-normal fits at millisecond scale.
	OnPeriod  dist.Dist
	OffPeriod dist.Dist
	// PacketsPerSecOn is the arrival rate inside a burst.
	PacketsPerSecOn float64
	// MTUFrac is the fraction of full-size packets; the remainder are
	// ACK-size — the bimodal distribution of [12].
	MTUFrac float64
	// RackLocalFrac is the probability a packet stays in the rack
	// (50–80% in [12, 17]).
	RackLocalFrac float64
	// ConcurrentPeers bounds the destination set per burst (<5 large
	// flows in [8]).
	ConcurrentPeers int
}

// DefaultOnOffParams returns the literature-calibrated defaults.
func DefaultOnOffParams() OnOffParams {
	return OnOffParams{
		OnPeriod:        dist.LogNormalFromMedian(2.5, 1.0),  // ms
		OffPeriod:       dist.LogNormalFromMedian(12.0, 1.0), // ms
		PacketsPerSecOn: 40000,
		MTUFrac:         0.55,
		RackLocalFrac:   0.65,
		ConcurrentPeers: 4,
	}
}

// Generate synthesizes dur of literature-style traffic for host and
// feeds it to sink. The trace has the three signature properties the
// paper refutes for Facebook traffic: on/off arrivals, a bimodal packet
// size distribution, and rack-heavy locality with few concurrent peers.
func Generate(topo *topology.Topology, host topology.HostID, seed uint64, p OnOffParams, dur netsim.Time, sink workload.Collector) int64 {
	g := workload.NewGen(topo, host, seed, sink)
	self := topo.Host(host)
	rack := topo.Racks[self.Rack]
	cluster := topo.Clusters[self.Cluster]

	// A fixed, small peer set: a few rack mates plus a couple of
	// cluster-remote hosts.
	var peers []topology.HostID
	for i := 0; i < int(rack.NumHosts); i++ {
		if h := rack.Host(i); h != host && len(peers) < p.ConcurrentPeers {
			peers = append(peers, h)
		}
	}
	for _, r := range cluster.Racks {
		if r == rack.ID {
			continue
		}
		peers = append(peers, topo.Racks[r].FirstHost)
		if len(peers) >= 2*p.ConcurrentPeers {
			break
		}
	}
	conns := make([]*workload.Conn, len(peers))
	rackLocal := make([]bool, len(peers))
	for i, peer := range peers {
		conns[i] = g.NewConn(peer, 50010, false)
		rackLocal[i] = topo.HostRack(peer) == self.Rack
	}

	gap := netsim.Time(float64(netsim.Second) / p.PacketsPerSecOn)
	// pickIdx selects a destination honoring the rack-local fraction.
	pickIdx := func() int {
		idx := g.R.Intn(len(conns))
		wantRack := g.R.Bool(p.RackLocalFrac)
		for tries := 0; tries < 8 && rackLocal[idx] != wantRack; tries++ {
			idx = g.R.Intn(len(conns))
		}
		return idx
	}
	// The literature's elephants are sticky: one dominant flow persists
	// for seconds (the regime Hedera-style traffic engineering targets),
	// rotating only occasionally.
	hotIdx := pickIdx()
	var rotate func()
	rotate = func() {
		hotIdx = pickIdx()
		g.Eng.After(2*netsim.Second, rotate)
	}
	g.Eng.After(2*netsim.Second, rotate)

	var onPhase func()
	var offPhase func()
	onPhase = func() {
		onLen := netsim.Time(p.OnPeriod.Sample(g.R) * float64(netsim.Millisecond))
		n := int(onLen / gap)
		if n < 1 {
			n = 1
		}
		idx := hotIdx
		if !g.R.Bool(0.7) {
			idx = pickIdx()
		}
		c := conns[idx]
		for i := 0; i < n; i++ {
			size := packet.ACKSize
			if g.R.Bool(p.MTUFrac) {
				size = packet.MTUSize
			}
			at := netsim.Time(i) * gap
			hdr := packet.Header{Key: c.Key, Size: uint32(size), Flags: packet.FlagACK}
			g.Eng.After(at, func() { g.Emit(hdr) })
		}
		g.Eng.After(onLen, offPhase)
	}
	offPhase = func() {
		offLen := netsim.Time(p.OffPeriod.Sample(g.R) * float64(netsim.Millisecond))
		g.Eng.After(offLen, onPhase)
	}
	onPhase()
	g.Run(dur)
	return g.Emitted()
}

// AllToAllParams configures the uniform worst-case traffic assumption the
// paper's introduction criticizes: every host exchanges traffic with
// every other host "with equal frequency and intensity" [4], the model
// that motivates full-bisection fabrics.
type AllToAllParams struct {
	// PacketsPerSec is the host's outbound packet rate.
	PacketsPerSec float64
	// PacketBytes is the fixed packet size.
	PacketBytes uint32
}

// DefaultAllToAllParams returns a per-host load comparable to a busy
// Hadoop node's, so oversubscription sweeps compare workload *structure*
// rather than offered volume.
func DefaultAllToAllParams() AllToAllParams {
	return AllToAllParams{PacketsPerSec: 45000, PacketBytes: 1000}
}

// GenerateAllToAll synthesizes dur of uniform all-to-all traffic from
// host: every packet targets a uniformly random other host anywhere in
// the fleet. Contrast its locality (none) and oversubscription tolerance
// (none) with the measured workloads.
func GenerateAllToAll(topo *topology.Topology, host topology.HostID, seed uint64, p AllToAllParams, dur netsim.Time, sink workload.Collector) int64 {
	g := workload.NewGen(topo, host, seed, sink)
	n := topo.NumHosts()
	srcAddr := topo.Addr(host)
	g.Poisson(p.PacketsPerSec, func() {
		dst := topology.HostID(g.R.Intn(n))
		for dst == host {
			dst = topology.HostID(g.R.Intn(n))
		}
		g.Emit(packet.Header{
			Key: packet.FlowKey{
				Src: srcAddr, Dst: topo.Addr(dst),
				SrcPort: g.AllocPort(), DstPort: 50010, Proto: packet.UDP,
			},
			Size: p.PacketBytes,
		})
	})
	g.Run(dur)
	return g.Emitted()
}
