package baseline

import (
	"testing"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/topology"
)

func run(t *testing.T, seconds int64) (*topology.Topology, topology.HostID, []packet.Header) {
	t.Helper()
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	host := topo.HostsByRole(topology.RoleHadoop)[0]
	var hdrs []packet.Header
	n := Generate(topo, host, 99, DefaultOnOffParams(),
		netsim.Time(seconds)*netsim.Second,
		collector(func(h packet.Header) { hdrs = append(hdrs, h) }))
	if n == 0 || len(hdrs) == 0 {
		t.Fatal("baseline generated no packets")
	}
	return topo, host, hdrs
}

type collector func(packet.Header)

func (c collector) Packet(h packet.Header) { c(h) }

func TestBimodalSizes(t *testing.T) {
	_, _, hdrs := run(t, 2)
	var ack, mtu, other int
	for _, h := range hdrs {
		switch h.Size {
		case packet.ACKSize:
			ack++
		case packet.MTUSize:
			mtu++
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("non-bimodal packets: %d", other)
	}
	frac := float64(mtu) / float64(ack+mtu)
	if frac < 0.45 || frac > 0.65 {
		t.Fatalf("MTU fraction %.2f, want ≈0.55", frac)
	}
}

func TestRackHeavyLocality(t *testing.T) {
	// Sticky elephants make short-window locality high-variance; ten
	// seconds spans several hot epochs.
	topo, host, hdrs := run(t, 10)
	rackBytes, total := 0.0, 0.0
	addr := topo.Addr(host)
	for _, h := range hdrs {
		if h.Key.Src != addr {
			continue
		}
		dst, ok := topo.HostByAddr(h.Key.Dst)
		total += float64(h.Size)
		if ok && topo.HostRack(dst) == topo.HostRack(host) {
			rackBytes += float64(h.Size)
		}
	}
	frac := rackBytes / total
	if frac < 0.35 || frac > 0.95 {
		t.Fatalf("rack-local fraction %.2f, want rack-heavy ≈0.65 (literature range)", frac)
	}
}

func TestOnOffBehaviour(t *testing.T) {
	topo, host, hdrs := run(t, 2)
	a := analysis.NewArrivals(topo.Addr(host), 5*netsim.Millisecond)
	for _, h := range hdrs {
		a.Packet(h)
	}
	// Literature traffic must show silent gaps at small bin widths —
	// the opposite of the paper's Fig. 13 finding for Facebook hosts.
	if score := a.OnOffScore(5 * netsim.Millisecond); score < 0.2 {
		t.Fatalf("on/off score %.2f, want clearly on/off (≥0.2)", score)
	}
}

func TestFewConcurrentPeers(t *testing.T) {
	topo, host, hdrs := run(t, 2)
	c := analysis.NewConcurrency(topo, host, analysis.ConcurrencyWindow)
	for _, h := range hdrs {
		c.Packet(h)
	}
	c.Finish()
	if med := c.Hosts().Quantile(0.5); med > 5 {
		t.Fatalf("median concurrent hosts %.0f, literature reports <5", med)
	}
}

func TestDeterministic(t *testing.T) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	host := topo.HostsByRole(topology.RoleHadoop)[0]
	gen := func() []packet.Header {
		var hdrs []packet.Header
		Generate(topo, host, 7, DefaultOnOffParams(), netsim.Second,
			collector(func(h packet.Header) { hdrs = append(hdrs, h) }))
		return hdrs
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestAllToAllUniformity(t *testing.T) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	host := topo.HostsByRole(topology.RoleWeb)[0]
	counts := map[packet.Addr]int{}
	var total int
	n := GenerateAllToAll(topo, host, 3, DefaultAllToAllParams(), netsim.Second,
		collector(func(h packet.Header) {
			counts[h.Key.Dst]++
			total++
		}))
	if n == 0 || total == 0 {
		t.Fatal("no packets")
	}
	// Coverage: a second of uniform traffic should touch most of the fleet.
	if len(counts) < topo.NumHosts()/2 {
		t.Fatalf("touched %d of %d hosts", len(counts), topo.NumHosts())
	}
	// No destination should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) > mean*4 {
		t.Fatalf("max per-host count %d vs mean %.1f: not uniform", max, mean)
	}
}

func TestAllToAllNoSelfTraffic(t *testing.T) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	host := topo.HostsByRole(topology.RoleWeb)[0]
	self := topo.Addr(host)
	GenerateAllToAll(topo, host, 5, DefaultAllToAllParams(), netsim.Second/4,
		collector(func(h packet.Header) {
			if h.Key.Dst == self {
				t.Fatal("packet to self")
			}
		}))
}
