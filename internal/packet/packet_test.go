package packet

import (
	"testing"
	"testing/quick"
)

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 80, DstPort: 12345, Proto: TCP}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 12345 || r.DstPort != 80 || r.Proto != TCP {
		t.Fatalf("reverse wrong: %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestFastHashSymmetric(t *testing.T) {
	err := quick.Check(func(src, dst uint32, sp, dp uint16) bool {
		k := FlowKey{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Proto: TCP}
		return k.FastHash() == k.Reverse().FastHash()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFastHashDisperses(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		k := FlowKey{Src: Addr(i), Dst: Addr(i * 7), SrcPort: uint16(i), DstPort: 80, Proto: TCP}
		seen[k.FastHash()] = true
	}
	if len(seen) < 9990 {
		t.Fatalf("too many hash collisions: %d unique of 10000", len(seen))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(tm int64, src, dst uint32, sp, dp uint16, size uint32, flags uint8) bool {
		h := Header{
			Time: tm,
			Key: FlowKey{
				Src: Addr(src), Dst: Addr(dst),
				SrcPort: sp, DstPort: dp, Proto: TCP,
			},
			Size:  size,
			Flags: Flags(flags) & (FlagSYN | FlagACK | FlagFIN | FlagRST | FlagPSH),
		}
		var got Header
		if err := got.UnmarshalBinary(h.MarshalBinary()); err != nil {
			return false
		}
		return got == h
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeaderEncodedSize(t *testing.T) {
	var h Header
	if got := len(h.MarshalBinary()); got != EncodedSize {
		t.Fatalf("encoded size %d != %d", got, EncodedSize)
	}
}

func TestUnmarshalShortBuffer(t *testing.T) {
	var h Header
	if err := h.UnmarshalBinary(make([]byte, EncodedSize-1)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestFlagHelpers(t *testing.T) {
	h := Header{Flags: FlagSYN | FlagACK}
	if !h.SYN() || h.FIN() {
		t.Fatal("flag helpers wrong")
	}
}

func TestAddrString(t *testing.T) {
	if s := Addr(0x00010203).String(); s != "10.1.2.3" {
		t.Fatalf("addr string %q", s)
	}
}

func TestProtoString(t *testing.T) {
	if TCP.String() != "TCP" || UDP.String() != "UDP" {
		t.Fatal("proto strings wrong")
	}
	if Proto(99).String() != "Proto(99)" {
		t.Fatal("unknown proto string wrong")
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 443, DstPort: 999, Proto: TCP}
	want := "10.0.0.1:443>10.0.0.2:999/TCP"
	if k.String() != want {
		t.Fatalf("got %q want %q", k.String(), want)
	}
}

func TestClampSize(t *testing.T) {
	cases := []struct {
		in   float64
		want uint32
	}{
		{0, MinSize}, {63, MinSize}, {64, 64}, {200, 200}, {1514, 1514}, {9000, MTUSize},
	}
	for _, c := range cases {
		if got := ClampSize(c.in); got != c.want {
			t.Errorf("ClampSize(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	h := Header{Time: 123456789, Key: FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: TCP}, Size: 200}
	buf := make([]byte, EncodedSize)
	for i := 0; i < b.N; i++ {
		h.MarshalTo(buf)
	}
}

func BenchmarkFastHash(b *testing.B) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: TCP}
	for i := 0; i < b.N; i++ {
		_ = k.FastHash()
	}
}
