package packet_test

import (
	"fmt"

	"fbdcnet/internal/packet"
)

// ExampleFlowKey_FastHash shows the symmetric flow hash used for ECMP
// path selection and load-balanced sharding: both directions of a
// connection hash identically.
func ExampleFlowKey_FastHash() {
	k := packet.FlowKey{Src: 1, Dst: 2, SrcPort: 443, DstPort: 33000, Proto: packet.TCP}
	fmt.Println(k.FastHash() == k.Reverse().FastHash())
	// Output: true
}

// ExampleHeader_MarshalBinary round-trips a header through the fixed-size
// wire record the mirror trace format stores.
func ExampleHeader_MarshalBinary() {
	h := packet.Header{
		Time: 1_000_000,
		Key:  packet.FlowKey{Src: 10, Dst: 20, SrcPort: 80, DstPort: 5000, Proto: packet.TCP},
		Size: 1514,
	}
	var got packet.Header
	if err := got.UnmarshalBinary(h.MarshalBinary()); err != nil {
		panic(err)
	}
	fmt.Println(got == h, packet.EncodedSize, "bytes per record")
	// Output: true 26 bytes per record
}
