// Package packet defines the packet-header and flow abstractions shared by
// the traffic generators, collection systems, and analyses.
//
// The design follows the gopacket idiom of hashable endpoint/flow values:
// a FlowKey is a 5-tuple usable directly as a map key, with a FastHash for
// load-balanced sharding and a Reverse for matching the two directions of
// a connection. Headers carry only what the paper's methodology captured —
// addresses, ports, protocol, length, TCP flags, and a timestamp — and
// marshal to a fixed-size binary record so port-mirror traces can be
// written and re-read compactly.
package packet

import (
	"encoding/binary"
	"fmt"
)

// Proto identifies the transport protocol of a packet.
type Proto uint8

// Transport protocols used by the simulated services.
const (
	TCP Proto = 6
	UDP Proto = 17
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	default:
		return fmt.Sprintf("Proto(%d)", uint8(p))
	}
}

// Addr is a host network address. The simulator assigns each machine one
// address; rendering uses the familiar 10.0.0.0/8 dotted form.
type Addr uint32

// String renders the address in dotted-quad form within 10/8.
func (a Addr) String() string {
	return fmt.Sprintf("10.%d.%d.%d", byte(a>>16), byte(a>>8), byte(a))
}

// FlowKey is the 5-tuple identifying a flow. It is comparable and hence
// usable as a map key.
type FlowKey struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// FastHash returns a non-cryptographic 64-bit hash of the key. It is
// symmetric — a flow and its reverse hash identically — so both directions
// of a connection shard to the same bucket (the gopacket Flow contract).
func (k FlowKey) FastHash() uint64 {
	a := uint64(k.Src)<<16 | uint64(k.SrcPort)
	b := uint64(k.Dst)<<16 | uint64(k.DstPort)
	if a > b {
		a, b = b, a
	}
	h := a*0x9e3779b97f4a7c15 ^ b
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h ^ uint64(k.Proto)
}

// String implements fmt.Stringer.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Flags is the TCP flag byte subset the analyses care about.
type Flags uint8

// Flag bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// Header is one captured packet header. Time is in nanoseconds from the
// start of the capture; Size is the on-wire length in bytes.
type Header struct {
	Time  int64
	Key   FlowKey
	Size  uint32
	Flags Flags
}

// SYN reports whether the SYN flag is set (a new-connection marker used by
// the flow-interarrival analysis, Fig. 14).
func (h Header) SYN() bool { return h.Flags&FlagSYN != 0 }

// FIN reports whether the FIN flag is set.
func (h Header) FIN() bool { return h.Flags&FlagFIN != 0 }

// EncodedSize is the fixed length in bytes of a marshaled Header.
const EncodedSize = 8 + 4 + 4 + 2 + 2 + 1 + 1 + 4 // 26

// MarshalBinary encodes the header into the fixed-size wire record.
func (h Header) MarshalBinary() []byte {
	buf := make([]byte, EncodedSize)
	h.MarshalTo(buf)
	return buf
}

// MarshalTo encodes the header into buf, which must be at least
// EncodedSize bytes long.
func (h Header) MarshalTo(buf []byte) {
	_ = buf[EncodedSize-1]
	binary.LittleEndian.PutUint64(buf[0:], uint64(h.Time))
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.Key.Src))
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.Key.Dst))
	binary.LittleEndian.PutUint16(buf[16:], h.Key.SrcPort)
	binary.LittleEndian.PutUint16(buf[18:], h.Key.DstPort)
	buf[20] = byte(h.Key.Proto)
	buf[21] = byte(h.Flags)
	binary.LittleEndian.PutUint32(buf[22:], h.Size)
}

// UnmarshalBinary decodes a header from the wire record.
func (h *Header) UnmarshalBinary(buf []byte) error {
	if len(buf) < EncodedSize {
		return fmt.Errorf("packet: short header record: %d bytes", len(buf))
	}
	h.Time = int64(binary.LittleEndian.Uint64(buf[0:]))
	h.Key.Src = Addr(binary.LittleEndian.Uint32(buf[8:]))
	h.Key.Dst = Addr(binary.LittleEndian.Uint32(buf[12:]))
	h.Key.SrcPort = binary.LittleEndian.Uint16(buf[16:])
	h.Key.DstPort = binary.LittleEndian.Uint16(buf[18:])
	h.Key.Proto = Proto(buf[20])
	h.Flags = Flags(buf[21])
	h.Size = binary.LittleEndian.Uint32(buf[22:])
	return nil
}

// Common on-wire sizes (Ethernet framing included) used by the generators.
const (
	// MinSize is the minimum Ethernet frame size.
	MinSize = 64
	// ACKSize is a bare TCP ACK segment on the wire.
	ACKSize = 66
	// MTUSize is a full-MTU TCP segment on the wire (1500B IP + 14B Ethernet).
	MTUSize = 1514
)

// ClampSize bounds a generated packet size to the valid on-wire range.
func ClampSize(s float64) uint32 {
	if s < MinSize {
		return MinSize
	}
	if s > MTUSize {
		return MTUSize
	}
	return uint32(s)
}
