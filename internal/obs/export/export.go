// Package export renders a run's span-event ledgers as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. For a distributed run the aggregator's own ledger
// and every agent's federated report land on one timeline: all
// processes run on one host, so their unix-nanosecond clocks agree to
// well under a frame width, and each process becomes one Perfetto
// process track (pid 0 = aggregator, pid 1+N = agent N). Frontier-stall
// spans recorded by the aggregator (`frontier-stall:agent-N`) annotate
// which agent the merge frontier was waiting on and for how long.
package export

import (
	"encoding/json"
	"fmt"
	"os"

	"fbdcnet/internal/obs"
)

// Proc is one process track on the exported timeline.
type Proc struct {
	PID    int
	Name   string
	Events []obs.SpanEvent
}

// FromRun assembles the process tracks of a distributed run: the
// aggregator's own registry ledger plus every federated agent report.
// Nil reports (an agent that never delivered one) are skipped; a nil
// registry contributes no aggregator track.
func FromRun(agg *obs.Registry, reports []*obs.AgentReport) []Proc {
	var procs []Proc
	if agg.Enabled() {
		evs, _ := agg.SpanEvents()
		procs = append(procs, Proc{PID: 0, Name: "aggregator", Events: evs})
	}
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		procs = append(procs, Proc{
			PID:    1 + int(rep.AgentID),
			Name:   fmt.Sprintf("agent-%d", rep.AgentID),
			Events: rep.Events,
		})
	}
	return procs
}

// traceEvent is one Chrome trace-event object. Ts and Dur are in
// microseconds per the trace-event format.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of a trace (the array format is
// also legal but cannot carry displayTimeUnit).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// ChromeTrace renders the process tracks as Chrome trace-event JSON.
// Timestamps are normalized to the earliest event so the trace opens at
// t=0 regardless of wall-clock epoch.
func ChromeTrace(procs []Proc) ([]byte, error) {
	base := int64(0)
	first := true
	for _, p := range procs {
		for _, e := range p.Events {
			if first || e.StartNs < base {
				base, first = e.StartNs, false
			}
		}
	}
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if len(procs) == 0 {
		// A run with no agents and no spans still produces a loadable
		// trace: one metadata event naming an empty process track, so
		// Perfetto opens it instead of rejecting an empty array (and
		// Validate holds for every trace this package emits).
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", PID: 0,
			Args: map[string]any{"name": "empty-run"},
		})
	}
	for _, p := range procs {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", PID: p.PID,
			Args: map[string]any{"name": p.Name},
		})
		for _, e := range p.Events {
			if e.EndNs < e.StartNs {
				return nil, fmt.Errorf("export: event %q in %s ends before it starts", e.Name, p.Name)
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: e.Name, Ph: "X",
				Ts:  float64(e.StartNs-base) / 1e3,
				Dur: float64(e.EndNs-e.StartNs) / 1e3,
				PID: p.PID,
			})
		}
	}
	return json.MarshalIndent(tf, "", " ")
}

// WriteFile renders the tracks and writes the trace JSON to path.
func WriteFile(path string, procs []Proc) error {
	data, err := ChromeTrace(procs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate structurally checks Chrome trace-event JSON: a non-empty
// traceEvents array whose entries carry the required fields with sane
// values — the same check CI applies to exported traces.
func Validate(data []byte) error {
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("export: trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("export: trace has no events")
	}
	for i, ev := range tf.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return fmt.Errorf("export: event %d has no name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("export: event %d (%s) has no phase", i, name)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("export: event %d (%s) has no pid", i, name)
		}
		switch ph {
		case "M":
		case "X":
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("export: event %d (%s) has a bad ts", i, name)
			}
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				return fmt.Errorf("export: event %d (%s) has a negative dur", i, name)
			}
		default:
			return fmt.Errorf("export: event %d (%s) has unsupported phase %q", i, name, ph)
		}
	}
	return nil
}
