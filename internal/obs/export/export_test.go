package export

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fbdcnet/internal/obs"
)

func sampleProcs() []Proc {
	base := time.Now().UnixNano()
	return []Proc{
		{PID: 0, Name: "aggregator", Events: []obs.SpanEvent{
			{Name: "fleet-aggregate", StartNs: base, EndNs: base + 5e6},
			{Name: "frontier-stall:agent-1", StartNs: base + 1e6, EndNs: base + 2e6},
		}},
		{PID: 1, Name: "agent-0", Events: []obs.SpanEvent{
			{Name: "fleet-agent-0", StartNs: base + 1e5, EndNs: base + 4e6},
		}},
	}
}

func TestChromeTraceShape(t *testing.T) {
	data, err := ChromeTrace(sampleProcs())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("generated trace fails own validation: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	// 2 metadata + 3 duration events.
	var meta, dur int
	minTs := -1.0
	for _, ev := range tf.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			if ev["name"] != "process_name" {
				t.Errorf("metadata event name = %v", ev["name"])
			}
		case "X":
			dur++
			ts := ev["ts"].(float64)
			if minTs < 0 || ts < minTs {
				minTs = ts
			}
		}
	}
	if meta != 2 || dur != 3 {
		t.Errorf("got %d metadata + %d duration events, want 2 + 3", meta, dur)
	}
	// Timestamps are normalized to the earliest span.
	if minTs != 0 {
		t.Errorf("earliest ts = %v, want 0 (normalized)", minTs)
	}
}

func TestFromRunAssignsPIDs(t *testing.T) {
	reg := obs.NewRegistry()
	reg.RecordSpanAt("fleet-aggregate", time.Now().Add(-time.Second), time.Now())
	reports := []*obs.AgentReport{
		{AgentID: 0, Events: []obs.SpanEvent{{Name: "a", StartNs: 1, EndNs: 2}}},
		nil, // dead agent never reported
		{AgentID: 2, Events: []obs.SpanEvent{{Name: "c", StartNs: 3, EndNs: 4}}},
	}
	procs := FromRun(reg, reports)
	pids := map[int]string{}
	for _, p := range procs {
		pids[p.PID] = p.Name
	}
	if pids[0] != "aggregator" {
		t.Errorf("pid 0 = %q, want aggregator", pids[0])
	}
	if pids[1] != "agent-0" || pids[3] != "agent-2" {
		t.Errorf("agent pids wrong: %v", pids)
	}
	if _, ok := pids[2]; ok {
		t.Errorf("nil report produced a proc: %v", pids)
	}
	// Disabled registry: no aggregator proc.
	procs = FromRun(nil, reports)
	for _, p := range procs {
		if p.PID == 0 {
			t.Errorf("disabled registry still produced aggregator proc")
		}
	}
}

func TestWriteFileAndValidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, sampleProcs()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no events":       `{"traceEvents": []}`,
		"missing ph":      `{"traceEvents": [{"name": "x", "pid": 0}]}`,
		"bad ph":          `{"traceEvents": [{"name": "x", "ph": "Q", "pid": 0}]}`,
		"missing pid":     `{"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]}`,
		"negative ts":     `{"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "ts": -5}]}`,
		"negative dur":    `{"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "ts": 0, "dur": -1}]}`,
		"non-string name": `{"traceEvents": [{"name": 7, "ph": "X", "pid": 0, "ts": 0}]}`,
	}
	for name, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestChromeTraceEmptyRunStillValidates(t *testing.T) {
	// A zero-agent, zero-span run (nil registry, no reports) must still
	// produce a loadable trace, not an empty traceEvents array.
	procs := FromRun(nil, nil)
	if len(procs) != 0 {
		t.Fatalf("FromRun(nil, nil) = %d procs, want 0", len(procs))
	}
	data, err := ChromeTrace(procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("empty-run trace rejected: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 1 {
		t.Fatalf("empty-run trace has %d events, want 1 placeholder", len(tf.TraceEvents))
	}
	if ph := tf.TraceEvents[0]["ph"]; ph != "M" {
		t.Fatalf("placeholder phase = %v, want M", ph)
	}
}

func TestChromeTraceZeroSpanProcValidates(t *testing.T) {
	// An agent that restarted before recording any span contributes a
	// track with zero events; the trace must still validate.
	procs := []Proc{{PID: 3, Name: "agent-2"}}
	data, err := ChromeTrace(procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("zero-span proc trace rejected: %v", err)
	}
}
