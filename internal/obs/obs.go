// Package obs is the deterministic-safe observability layer of the
// reproduction: sharded counters and histograms for the parallel hot
// paths, span timing around pipeline stages, progress trackers for the
// live endpoint, and the run manifest written next to the experiment
// transcript.
//
// The design rule throughout is that instrumentation may observe the
// computation but never participate in it. Hot paths increment plain
// int64 slots in a worker-local Shard — no atomics, no locks, no
// allocation — and shards fold into the registry only at deterministic
// frontiers (the same task-order frontier where fbflow.Partial merges, or
// a fixed worker order after a parallel stage drains). Folded state is
// guarded by one mutex and read by the HTTP endpoint, so live scraping
// races with nothing. A nil *Registry disables everything: every method
// on a nil receiver is a no-op, which is what keeps the instrumented
// paths at near-zero cost when no sink is registered.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// CounterID indexes a registered counter in shards and the registry.
type CounterID int

// HistID indexes a registered histogram.
type HistID int

// histBuckets is the number of power-of-two buckets per histogram:
// bucket i counts observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). int64 observations never need more than 64.
const histBuckets = 64

// histData is one folded histogram: bucket counts plus sum and count for
// the Prometheus exposition.
type histData struct {
	buckets [histBuckets]int64
	sum     int64
	count   int64
}

// spanStats accumulates every completed execution of one named stage.
type spanStats struct {
	count   int64
	running int64
	wallNs  int64
	cpuNs   int64
	allocs  uint64
	bytes   uint64
}

// progressState is one task's completion tracker.
type progressState struct {
	done  int64
	total int64
}

// Registry is the folded metric state of one run. Create with
// NewRegistry; a nil *Registry is a valid, fully disabled instance.
//
// Registration (Counter, Histogram) must happen before shards are
// created; folding, gauges, series, spans, and progress updates may
// happen at any time from any goroutine.
type Registry struct {
	mu    sync.Mutex
	start time.Time

	counterNames []string
	counterHelp  []string
	counterIDs   map[string]CounterID
	counters     []int64

	histNames []string
	histHelp  []string
	histIDs   map[string]HistID
	hists     []histData

	gaugeOrder []string
	gauges     map[string]float64

	// series are labeled counters registered lazily at fold time (never
	// on a hot path), keyed by the full Prometheus series name, e.g.
	// `fbdcnet_workload_headers_total{role="Web"}`.
	seriesOrder []string
	series      map[string]float64

	spanOrder []string
	spans     map[string]*spanStats

	// events is the bounded span-event ledger behind the unified run
	// timeline: every completed span's [start, end] on the wall clock, in
	// completion order. Past maxSpanEvents new events are dropped and
	// counted, so a pathological run degrades the trace, not the process.
	events        []SpanEvent
	eventsDropped int64

	progOrder []string
	progress  map[string]*progressState

	// panels are preformatted text blocks rendered on the live progress
	// page (e.g. the aggregator's agent-liveness table).
	panelOrder []string
	panels     map[string]string
}

// SpanEvent is one completed span occurrence on the wall clock, in unix
// nanoseconds. Events from different processes on the same host share
// the clock, which is what lets obs/export lay a whole distributed run
// on one timeline.
type SpanEvent struct {
	Name    string
	StartNs int64
	EndNs   int64
}

// maxSpanEvents bounds the per-registry event ledger.
const maxSpanEvents = 8192

// NewRegistry returns an empty registry with its start time stamped.
func NewRegistry() *Registry {
	return &Registry{
		start:      time.Now(),
		counterIDs: map[string]CounterID{},
		histIDs:    map[string]HistID{},
		gauges:     map[string]float64{},
		series:     map[string]float64{},
		spans:      map[string]*spanStats{},
		progress:   map[string]*progressState{},
		panels:     map[string]string{},
	}
}

// Enabled reports whether the registry collects anything.
func (r *Registry) Enabled() bool { return r != nil }

// Start returns the registry's creation time (zero when disabled).
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Counter registers (or finds) a counter by name and returns its ID.
// Register every counter before creating shards.
func (r *Registry) Counter(name, help string) CounterID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.counterIDs[name]; ok {
		return id
	}
	return r.counterLocked(name, help)
}

// counterLocked registers a counter. Caller holds r.mu and has checked
// the name is new.
func (r *Registry) counterLocked(name, help string) CounterID {
	id := CounterID(len(r.counterNames))
	r.counterIDs[name] = id
	r.counterNames = append(r.counterNames, name)
	r.counterHelp = append(r.counterHelp, help)
	r.counters = append(r.counters, 0)
	return id
}

// Histogram registers (or finds) a power-of-two histogram by name.
func (r *Registry) Histogram(name, help string) HistID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.histIDs[name]; ok {
		return id
	}
	return r.histogramLocked(name, help)
}

// histogramLocked registers a histogram. Caller holds r.mu and has
// checked the name is new.
func (r *Registry) histogramLocked(name, help string) HistID {
	id := HistID(len(r.histNames))
	r.histIDs[name] = id
	r.histNames = append(r.histNames, name)
	r.histHelp = append(r.histHelp, help)
	r.hists = append(r.hists, histData{})
	return id
}

// AddCounter folds v directly into a registered counter under the
// registry lock. For coarse, stage-granularity accounting only; hot
// paths go through shards.
func (r *Registry) AddCounter(id CounterID, v int64) {
	if r == nil || v == 0 {
		return
	}
	r.mu.Lock()
	r.counters[id] += v
	r.mu.Unlock()
}

// Observe folds one observation directly into a registered histogram.
// Coarse-granularity use only; hot paths observe into shards.
func (r *Registry) Observe(id HistID, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := &r.hists[id]
	h.buckets[bucketOf(v)]++
	h.sum += v
	h.count++
	r.mu.Unlock()
}

// bucketOf maps an observation to its power-of-two bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// SetGauge sets a named gauge. Gauges are registered lazily; they are
// set at stage granularity (utilization, coverage), never on hot paths.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.gauges[name]; !ok {
		r.gaugeOrder = append(r.gaugeOrder, name)
	}
	r.gauges[name] = v
	r.mu.Unlock()
}

// AddGauge adjusts a named gauge by a delta, registering it lazily at
// zero. The delta form serves connection-style gauges (agents up, links
// live) written from several goroutines, where last-write-wins SetGauge
// would lose updates.
func (r *Registry) AddGauge(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.gauges[name]; !ok {
		r.gaugeOrder = append(r.gaugeOrder, name)
	}
	r.gauges[name] += delta
	r.mu.Unlock()
}

// GaugeValue reads a named gauge back (0 when unset or disabled) —
// a test and digest hook, not a hot path.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Count accumulates v into a labeled series (full series name, labels
// included). Series are registered lazily at fold time.
func (r *Registry) Count(series string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.series[series]; !ok {
		r.seriesOrder = append(r.seriesOrder, series)
	}
	r.series[series] += v
	r.mu.Unlock()
}

// Series builds a Prometheus series name from a metric name and
// label key/value pairs: Series("x_total", "role", "Web") returns
// `x_total{role="Web"}`. Label order follows the argument order, so one
// call site always produces one series.
func Series(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	out := name + "{"
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			out += ","
		}
		out += kv[i] + `="` + kv[i+1] + `"`
	}
	return out + "}"
}

// NewProgress registers a named progress tracker with the given total
// and returns it. Calling again with the same name returns the existing
// tracker (total updated when larger).
func (r *Registry) NewProgress(name string, total int64) *Progress {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.progress[name]
	if !ok {
		st = &progressState{}
		r.progress[name] = st
		r.progOrder = append(r.progOrder, name)
	}
	if total > st.total {
		st.total = total
	}
	return &Progress{r: r, st: st}
}

// Progress is one task's completion tracker; a nil *Progress is a no-op.
type Progress struct {
	r  *Registry
	st *progressState
}

// Set records absolute completion.
func (p *Progress) Set(done int64) {
	if p == nil {
		return
	}
	p.r.mu.Lock()
	if done > p.st.done {
		p.st.done = done
	}
	p.r.mu.Unlock()
}

// Add advances completion by n.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.r.mu.Lock()
	p.st.done += n
	p.r.mu.Unlock()
}

// Shard is a worker-local block of counter and histogram slots. It is
// not safe for concurrent use — that is the point: one worker owns it,
// increments are plain int64 stores, and the owner folds it into the
// registry at a deterministic frontier. A nil *Shard is a no-op.
type Shard struct {
	reg    *Registry
	counts []int64
	hists  []histData
}

// NewShard returns a shard sized to the currently registered metrics.
func (r *Registry) NewShard() *Shard {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Shard{
		reg:    r,
		counts: make([]int64, len(r.counterNames)),
		hists:  make([]histData, len(r.histNames)),
	}
}

// Inc increments a counter slot by one.
func (s *Shard) Inc(id CounterID) {
	if s != nil {
		s.counts[id]++
	}
}

// Add increments a counter slot by n.
func (s *Shard) Add(id CounterID, n int64) {
	if s != nil {
		s.counts[id] += n
	}
}

// Observe records one histogram observation.
func (s *Shard) Observe(id HistID, v int64) {
	if s == nil {
		return
	}
	h := &s.hists[id]
	h.buckets[bucketOf(v)]++
	h.sum += v
	h.count++
}

// Fold merges the shard into the registry and resets it for reuse.
// Counter folding is commutative, but callers fold at a deterministic
// frontier anyway so the metric values themselves are reproducible
// run-to-run at any worker count.
func (s *Shard) Fold() {
	if s == nil {
		return
	}
	r := s.reg
	r.mu.Lock()
	for i, v := range s.counts {
		if v != 0 {
			r.counters[i] += v
			s.counts[i] = 0
		}
	}
	for i := range s.hists {
		sh := &s.hists[i]
		if sh.count == 0 {
			continue
		}
		h := &r.hists[i]
		for b, c := range sh.buckets {
			h.buckets[b] += c
		}
		h.sum += sh.sum
		h.count += sh.count
		*sh = histData{}
	}
	r.mu.Unlock()
}

// CounterValue reads a folded counter (test and manifest helper).
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.counterIDs[name]
	if !ok {
		return 0
	}
	return r.counters[id]
}

// HistogramCount reads a folded histogram's observation count (test and
// federation-equality helper; the count — unlike the wall-time sum — is
// comparable across runs and modes).
func (r *Registry) HistogramCount(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.histIDs[name]
	if !ok {
		return 0
	}
	return r.hists[id].count
}

// SpanEvents returns a copy of the span-event ledger and the number of
// events dropped past the ledger cap.
func (r *Registry) SpanEvents() ([]SpanEvent, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, len(r.events))
	copy(out, r.events)
	return out, r.eventsDropped
}

// addEventLocked appends one completed span to the ledger. Caller holds
// r.mu.
func (r *Registry) addEventLocked(name string, startNs, endNs int64) {
	if len(r.events) >= maxSpanEvents {
		r.eventsDropped++
		return
	}
	r.events = append(r.events, SpanEvent{Name: name, StartNs: startNs, EndNs: endNs})
}

// SetPanel installs (or replaces) a named preformatted text block on the
// live progress page. Panels are rendered verbatim after the progress
// bars, in first-registration order.
func (r *Registry) SetPanel(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.panels[name]; !ok {
		r.panelOrder = append(r.panelOrder, name)
	}
	r.panels[name] = text
	r.mu.Unlock()
}

// SeriesValue reads a labeled series value (test helper).
func (r *Registry) SeriesValue(series string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[series]
}

// sortedKeys returns m's keys sorted (snapshot helper).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
