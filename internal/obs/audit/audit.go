// Package audit is the determinism flight recorder: cheap rolling
// content hashes threaded through every pipeline stage, folded into a
// per-cell checkpoint ledger that localizes a digest divergence to the
// first differing (window, shard, stage) cell instead of a binary
// "digest differs".
//
// The layer holds the same house rules as internal/obs: every method on
// a nil *Recorder, *Hash, or *BlackBox is a no-op (one predicted branch
// on the hot path), recording perturbs no experiment output, and the
// ledger is a pure function of the computed cell set — identical at any
// worker or agent count, with gapped cells recorded as explicit holes
// rather than hashed.
//
// Checkpoints are appended in whatever order the schedule completes
// them (trace bundles and fleet cells overlap under Prewarm) and
// canonicalized at read time: Checkpoints and Section sort by pipeline
// rank, then (window, shard, stage). Within the fleet-collect stage
// that order IS the task-order merge frontier, so "first divergent
// checkpoint" means "first cell the frontier would have merged
// differently".
package audit

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// Canonical stage names. Per-role trace stages use the "trace:" prefix
// (mirroring the span names), per-analysis checkpoints "analysis:", and
// suite sections "suite:".
const (
	StageFleetCollect = "fleet-collect"
	StageMatrixSynth  = "matrix-synth"
	StageTelemetry    = "telemetry"
)

// NonCell marks the window/shard coordinates of stages that are not
// (window, shard) grid cells: traces, analyses, suite sections,
// telemetry.
const NonCell = -1

// Hash is a zero-alloc 64-bit streaming content hash: each folded item
// avalanches into the running state (splitmix64 finalizer), and Sum
// seals the item count in, so two streams of equal XOR but different
// length or order cannot collide trivially. The zero value is ready to
// use; methods on a nil *Hash are no-ops, which is what lets the fleet
// emit path pass a nil hash when auditing is off.
type Hash struct {
	h uint64
	n int64
}

// hashSeed is the FNV-1a 64-bit offset basis — an arbitrary non-zero
// starting state so an empty stream doesn't sum to mix64(length) alone.
const hashSeed = 0xcbf29ce484222325

// mix64 is the splitmix64 finalizer: full avalanche in three rounds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Enabled reports whether the hash is live (non-nil).
func (h *Hash) Enabled() bool { return h != nil }

// Reset returns the hash to its zero state for reuse.
func (h *Hash) Reset() {
	if h == nil {
		return
	}
	h.h, h.n = 0, 0
}

// U64 folds one word.
func (h *Hash) U64(v uint64) {
	if h == nil {
		return
	}
	h.h = mix64(h.h ^ hashSeed ^ v)
	h.n++
}

// I64 folds one signed word.
func (h *Hash) I64(v int64) { h.U64(uint64(v)) }

// F64 folds one float by bit pattern (so -0.0 and 0.0 stay distinct
// inputs, exactly as they would differ in a canonical encoding).
func (h *Hash) F64(v float64) { h.U64(math.Float64bits(v)) }

// Str folds a string as one item: FNV-1a over the bytes, then the
// length, collapsed into a single fold so Count stays item-granular.
func (h *Hash) Str(s string) {
	if h == nil {
		return
	}
	f := uint64(hashSeed)
	for i := 0; i < len(s); i++ {
		f ^= uint64(s[i])
		f *= 1099511628211
	}
	h.U64(f ^ uint64(len(s))<<1)
}

// Count returns the number of items folded so far.
func (h *Hash) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum seals the stream: the running state mixed with the item count.
// The hash remains usable (Sum does not reset).
func (h *Hash) Sum() uint64 {
	if h == nil {
		return 0
	}
	return mix64(h.h ^ hashSeed ^ uint64(h.n)*0x9e3779b97f4a7c15)
}

// Checkpoint is one stage's sealed content hash: the canonical output
// of (stage, window, shard) reduced to a 64-bit sum plus the folded
// item count. Hole marks a cell that was never computed (an agent died
// and the cell gapped out): holes carry no hash and never fold.
type Checkpoint struct {
	Stage  string
	Window int
	Shard  int
	Sum    uint64
	Count  int64
	Hole   bool
}

// stageRank orders stages by pipeline position so the canonical ledger
// reads like the run: traces, their analyses, matrix synthesis, the
// fleet-collect frontier, suite sections, telemetry.
func stageRank(stage string) int {
	switch {
	case strings.HasPrefix(stage, "trace:"):
		return 0
	case strings.HasPrefix(stage, "analysis:"):
		return 1
	case stage == StageMatrixSynth:
		return 2
	case stage == StageFleetCollect:
		return 3
	case strings.HasPrefix(stage, "suite:"):
		return 4
	case stage == StageTelemetry:
		return 5
	}
	return 6
}

// Less is the canonical checkpoint order: pipeline rank, then window,
// shard, stage name. Within fleet-collect this is exactly the
// task-order merge frontier.
func Less(a, b Checkpoint) bool {
	ra, rb := stageRank(a.Stage), stageRank(b.Stage)
	if ra != rb {
		return ra < rb
	}
	if a.Window != b.Window {
		return a.Window < b.Window
	}
	if a.Shard != b.Shard {
		return a.Shard < b.Shard
	}
	return a.Stage < b.Stage
}

// Sort sorts checkpoints into the canonical order in place.
func Sort(cps []Checkpoint) {
	sort.Slice(cps, func(i, j int) bool { return Less(cps[i], cps[j]) })
}

// Recorder accumulates the run's checkpoint ledger. Appends are
// mutex-guarded (stages complete on parallel workers in schedule
// order); reads canonicalize. All methods no-op on a nil receiver, so
// core threads one field through every stage unconditionally.
type Recorder struct {
	mu  sync.Mutex
	cps []Checkpoint
	bb  *BlackBox

	// Planted perturbation (a testing aid for cmd/digestdiff and the CI
	// audit-smoke job): the named fleet-collect cell's recorded sum is
	// XOR-flipped, leaving the experiment outputs untouched — the ledger
	// localizes a divergence that exists only in the ledger.
	perturb            bool
	perturbW, perturbS int
}

// perturbMask is the XOR applied to a planted-divergence cell's sum.
const perturbMask = 0xdeadbeefcafef00d

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder is live (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetBlackBox attaches a crash black box; events recorded through BB
// land in its ring.
func (r *Recorder) SetBlackBox(bb *BlackBox) {
	if r == nil {
		return
	}
	r.bb = bb
}

// BB returns the attached black box (nil-safe; a nil result is itself a
// valid no-op recorder).
func (r *Recorder) BB() *BlackBox {
	if r == nil {
		return nil
	}
	return r.bb
}

// Perturb plants a ledger-only divergence at fleet-collect cell
// (window, shard). See perturbMask.
func (r *Recorder) Perturb(window, shard int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.perturb, r.perturbW, r.perturbS = true, window, shard
	r.mu.Unlock()
}

// Append records one checkpoint, applying any planted perturbation.
// This is the single write path: Record, Cell, and Hole all land here,
// as do the aggregator's park-and-fold appends in distributed runs.
func (r *Recorder) Append(cp Checkpoint) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.perturb && !cp.Hole && cp.Stage == StageFleetCollect &&
		cp.Window == r.perturbW && cp.Shard == r.perturbS {
		cp.Sum ^= perturbMask
	}
	r.cps = append(r.cps, cp)
	r.mu.Unlock()
}

// Record seals h into a checkpoint for (stage, window, shard) and
// appends it.
func (r *Recorder) Record(stage string, window, shard int, h *Hash) {
	if r == nil {
		return
	}
	r.Append(Checkpoint{Stage: stage, Window: window, Shard: shard, Sum: h.Sum(), Count: h.Count()})
}

// Cell is Record for distributed agents: it returns the checkpoint as
// appended (perturbation applied) so the agent forwards on the wire
// exactly what it logged. ok is false on a nil recorder.
func (r *Recorder) Cell(stage string, window, shard int, h *Hash) (cp Checkpoint, ok bool) {
	if r == nil {
		return Checkpoint{}, false
	}
	cp = Checkpoint{Stage: stage, Window: window, Shard: shard, Sum: h.Sum(), Count: h.Count()}
	r.mu.Lock()
	if r.perturb && cp.Stage == StageFleetCollect &&
		cp.Window == r.perturbW && cp.Shard == r.perturbS {
		cp.Sum ^= perturbMask
	}
	r.cps = append(r.cps, cp)
	r.mu.Unlock()
	return cp, true
}

// RecordOutput hashes a stage's rendered canonical output (one string
// item) under a non-cell checkpoint.
func (r *Recorder) RecordOutput(stage, out string) {
	if r == nil {
		return
	}
	var h Hash
	h.Str(out)
	r.Record(stage, NonCell, NonCell, &h)
}

// Hole records that (stage, window, shard) was never computed — a
// gapped cell in a crashed distributed run. Holes carry no hash.
func (r *Recorder) Hole(stage string, window, shard int) {
	if r == nil {
		return
	}
	r.Append(Checkpoint{Stage: stage, Window: window, Shard: shard, Hole: true})
}

// Len returns the number of recorded checkpoints.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cps)
}

// Reset empties the ledger, keeping capacity (the Reset-reuse contract
// of the serve loop and the benches).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cps = r.cps[:0]
	r.mu.Unlock()
}

// Checkpoints returns a canonically sorted copy of the ledger.
func (r *Recorder) Checkpoints() []Checkpoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Checkpoint(nil), r.cps...)
	r.mu.Unlock()
	Sort(out)
	return out
}
