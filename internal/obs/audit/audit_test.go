package audit

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHashDeterminism(t *testing.T) {
	fold := func() uint64 {
		var h Hash
		h.U64(42)
		h.I64(-7)
		h.F64(3.25)
		h.Str("fleet-collect")
		return h.Sum()
	}
	a, b := fold(), fold()
	if a != b {
		t.Fatalf("same stream, different sums: %016x != %016x", a, b)
	}
	var h Hash
	h.U64(42)
	h.I64(-7)
	h.F64(3.25)
	h.Str("fleet-collect!")
	if h.Sum() == a {
		t.Fatalf("different stream collided with %016x", a)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4 (Str folds as one item)", h.Count())
	}
}

func TestHashOrderAndLengthSensitive(t *testing.T) {
	var a, b, c Hash
	a.U64(1)
	a.U64(2)
	b.U64(2)
	b.U64(1)
	if a.Sum() == b.Sum() {
		t.Fatalf("order-insensitive hash: %016x", a.Sum())
	}
	c.U64(1)
	if c.Sum() == a.Sum() {
		t.Fatalf("length-insensitive hash")
	}
	var empty Hash
	if empty.Sum() == 0 {
		t.Fatalf("empty stream sums to zero")
	}
}

func TestHashFloatBitPattern(t *testing.T) {
	var pos, neg Hash
	pos.F64(0.0)
	neg.F64(math.Copysign(0, -1))
	if pos.Sum() == neg.Sum() {
		t.Fatalf("+0.0 and -0.0 fold identically")
	}
}

func TestNilSafety(t *testing.T) {
	var h *Hash
	if h.Enabled() {
		t.Fatalf("nil hash reports enabled")
	}
	h.U64(1)
	h.I64(1)
	h.F64(1)
	h.Str("x")
	h.Reset()
	if h.Sum() != 0 || h.Count() != 0 {
		t.Fatalf("nil hash has state")
	}

	var r *Recorder
	if r.Enabled() {
		t.Fatalf("nil recorder reports enabled")
	}
	r.Append(Checkpoint{Stage: "x"})
	r.Record("x", 0, 0, nil)
	r.RecordOutput("x", "y")
	r.Hole("x", 0, 0)
	r.Perturb(0, 0)
	r.SetBlackBox(nil)
	r.Reset()
	if _, ok := r.Cell("x", 0, 0, nil); ok {
		t.Fatalf("nil recorder Cell ok")
	}
	if r.Len() != 0 || r.Checkpoints() != nil || r.Section() != nil || r.BB() != nil {
		t.Fatalf("nil recorder has state")
	}

	var bb *BlackBox
	bb.Record(EvCrash, "x", 0, 0)
	bb.Dump("", "x")
	bb.DumpText(os.Stderr, "x")
	bb.InstallSignalDump("")
	if bb.Total() != 0 || bb.Events() != nil {
		t.Fatalf("nil black box has state")
	}
}

func TestRecorderCanonicalOrder(t *testing.T) {
	r := New()
	// Append in deliberately scrambled schedule order.
	r.Record(StageTelemetry, NonCell, NonCell, &Hash{})
	r.Record(StageFleetCollect, 1, 0, &Hash{})
	r.Record(StageFleetCollect, 0, 2, &Hash{})
	r.Record(StageFleetCollect, 0, 1, &Hash{})
	r.RecordOutput("suite:heavy-hitters", "x")
	r.Record(StageMatrixSynth, 0, 0, &Hash{})
	r.RecordOutput("trace:web:60s", "y")
	r.RecordOutput("analysis:web:60s:flows", "z")

	cps := r.Checkpoints()
	want := []string{
		"trace:web:60s", "analysis:web:60s:flows", StageMatrixSynth,
		StageFleetCollect, StageFleetCollect, StageFleetCollect,
		"suite:heavy-hitters", StageTelemetry,
	}
	if len(cps) != len(want) {
		t.Fatalf("got %d checkpoints, want %d", len(cps), len(want))
	}
	for i, stage := range want {
		if cps[i].Stage != stage {
			t.Fatalf("checkpoint %d stage = %s, want %s", i, cps[i].Stage, stage)
		}
	}
	// Fleet cells in frontier order: (0,1) < (0,2) < (1,0).
	if cps[3].Window != 0 || cps[3].Shard != 1 || cps[4].Shard != 2 || cps[5].Window != 1 {
		t.Fatalf("fleet cells not in frontier order: %+v", cps[3:6])
	}
}

func TestPerturbFlipsOnlyNamedCell(t *testing.T) {
	build := func(perturb bool) []Checkpoint {
		r := New()
		if perturb {
			r.Perturb(1, 2)
		}
		for w := 0; w < 2; w++ {
			for s := 0; s < 3; s++ {
				var h Hash
				h.I64(int64(w*10 + s))
				r.Record(StageFleetCollect, w, s, &h)
			}
		}
		return r.Checkpoints()
	}
	clean, dirty := build(false), build(true)
	d, ok := Diff(clean, dirty)
	if !ok {
		t.Fatalf("perturbation produced identical ledgers")
	}
	if d.Kind != "hash" || d.A.Window != 1 || d.A.Shard != 2 || d.A.Stage != StageFleetCollect {
		t.Fatalf("divergence = %+v, want hash at fleet-collect (1,2)", d)
	}
	if d.Tainted != 1 {
		t.Fatalf("tainted = %d, want 1 (single planted cell)", d.Tainted)
	}
	if d.A.Sum^perturbMask != d.B.Sum {
		t.Fatalf("perturbation is not the documented XOR mask")
	}
}

func TestPerturbDoesNotTouchHoles(t *testing.T) {
	r := New()
	r.Perturb(0, 0)
	r.Hole(StageFleetCollect, 0, 0)
	cps := r.Checkpoints()
	if len(cps) != 1 || !cps[0].Hole || cps[0].Sum != 0 {
		t.Fatalf("perturbed hole: %+v", cps)
	}
}

func TestDiffFirstDivergenceInFrontierOrder(t *testing.T) {
	mk := func() []Checkpoint {
		var cps []Checkpoint
		for w := 0; w < 3; w++ {
			for s := 0; s < 2; s++ {
				var h Hash
				h.I64(int64(w*100 + s))
				cps = append(cps, Checkpoint{Stage: StageFleetCollect, Window: w, Shard: s, Sum: h.Sum(), Count: h.Count()})
			}
		}
		return cps
	}
	a, b := mk(), mk()
	// Perturb two cells; Diff must name the frontier-earlier one first.
	b[5].Sum ^= 1 // (2,1)
	b[2].Sum ^= 1 // (1,0)
	d, ok := Diff(a, b)
	if !ok {
		t.Fatalf("no divergence found")
	}
	if d.A.Window != 1 || d.A.Shard != 0 {
		t.Fatalf("first divergence at (%d,%d), want (1,0)", d.A.Window, d.A.Shard)
	}
	if d.Tainted != 2 || d.Total != 6 {
		t.Fatalf("tainted/total = %d/%d, want 2/6", d.Tainted, d.Total)
	}
	if !strings.Contains(d.String(), "window 1, shard 0") {
		t.Fatalf("String() does not name the cell: %s", d.String())
	}
}

func TestDiffKinds(t *testing.T) {
	base := Checkpoint{Stage: StageFleetCollect, Window: 0, Shard: 0, Sum: 7, Count: 3}
	cases := []struct {
		name string
		a, b []Checkpoint
		kind string
	}{
		{"count", []Checkpoint{base}, []Checkpoint{{Stage: base.Stage, Sum: 7, Count: 4}}, "count"},
		{"hole", []Checkpoint{base}, []Checkpoint{{Stage: base.Stage, Hole: true}}, "hole"},
		{"missing-in-b", []Checkpoint{base, {Stage: base.Stage, Shard: 1, Sum: 9}}, []Checkpoint{base}, "missing-in-b"},
		{"missing-in-a", []Checkpoint{base}, []Checkpoint{base, {Stage: base.Stage, Shard: 1, Sum: 9}}, "missing-in-a"},
	}
	for _, tc := range cases {
		d, ok := Diff(tc.a, tc.b)
		if !ok {
			t.Fatalf("%s: no divergence", tc.name)
		}
		if d.Kind != tc.kind {
			t.Fatalf("%s: kind = %s", tc.name, d.Kind)
		}
		if d.String() == "" {
			t.Fatalf("%s: empty rendering", tc.name)
		}
	}
	if _, ok := Diff([]Checkpoint{base}, []Checkpoint{base}); ok {
		t.Fatalf("identical ledgers diverged")
	}
	ha := []Checkpoint{{Stage: StageFleetCollect, Hole: true}}
	if _, ok := Diff(ha, ha); ok {
		t.Fatalf("matching holes diverged")
	}
}

func TestSectionRoundTrip(t *testing.T) {
	r := New()
	var h Hash
	h.I64(1)
	r.Record(StageFleetCollect, 0, 0, &h)
	r.Hole(StageFleetCollect, 0, 1)
	r.RecordOutput("suite:x", "out")

	sec := r.Section()
	if sec.Version != SectionVersion || sec.Cells != 3 || sec.Holes != 1 {
		t.Fatalf("section header: %+v", sec)
	}
	data, err := json.Marshal(sec)
	if err != nil {
		t.Fatal(err)
	}
	var back Section
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	cps, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := Diff(r.Checkpoints(), cps); ok {
		t.Fatalf("round trip diverged: %s", d)
	}
	// Determinism of the encoded bytes themselves.
	data2, _ := json.Marshal(r.Section())
	if !bytes.Equal(data, data2) {
		t.Fatalf("section encoding not byte-stable")
	}
}

func TestSectionDecodeRejectsMalformed(t *testing.T) {
	bad := []Section{
		{Version: 99},
		{Version: SectionVersion, Checkpoints: []SectionCheckpoint{{Stage: "", Hash: "0000000000000000"}}},
		{Version: SectionVersion, Checkpoints: []SectionCheckpoint{{Stage: "x", Hash: "xyz"}}},
		{Version: SectionVersion, Checkpoints: []SectionCheckpoint{{Stage: "x", Hole: true, Hash: "0000000000000000"}}},
		{Version: SectionVersion, Checkpoints: []SectionCheckpoint{{Stage: "x", Hash: "zzzzzzzzzzzzzzzz"}}},
	}
	for i, s := range bad {
		if _, err := s.Decode(); err == nil {
			t.Fatalf("case %d decoded", i)
		}
	}
	var nilSec *Section
	if _, err := nilSec.Decode(); err == nil {
		t.Fatalf("nil section decoded")
	}
}

func TestBlackBoxRingWrap(t *testing.T) {
	bb := NewBlackBox(4)
	for i := int64(0); i < 10; i++ {
		bb.Record(EvCellMerge, "cell", i, i*2)
	}
	if bb.Total() != 10 {
		t.Fatalf("total = %d", bb.Total())
	}
	evs := bb.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.A != int64(6+i) {
			t.Fatalf("event %d A = %d, want %d (oldest-first after wrap)", i, e.A, 6+i)
		}
	}
}

func TestBlackBoxDump(t *testing.T) {
	bb := NewBlackBox(8)
	bb.Record(EvStageEnter, "fleet-collect", 0, 0)
	bb.Record(EvFrameTx, "partial", 2, 7)

	var buf bytes.Buffer
	bb.DumpText(&buf, "test")
	for _, want := range []string{"stage-enter", "frame-tx", "fleet-collect"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("text dump missing %q:\n%s", want, buf.String())
		}
	}

	path := filepath.Join(t.TempDir(), "bb.json")
	if err := bb.DumpJSON(path, "test"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Reason string `json:"reason"`
		Total  uint64 `json:"total_events"`
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "test" || d.Total != 2 || len(d.Events) != 2 || d.Events[1].Kind != "frame-tx" {
		t.Fatalf("dump: %+v", d)
	}
}

func TestZeroAllocHashAndRecord(t *testing.T) {
	var h Hash
	allocs := testing.AllocsPerRun(100, func() {
		h.U64(1)
		h.I64(-1)
		h.F64(2.5)
		_ = h.Sum()
	})
	if allocs != 0 {
		t.Fatalf("hash fold allocates %.1f/op", allocs)
	}

	bb := NewBlackBox(64)
	allocs = testing.AllocsPerRun(200, func() {
		bb.Record(EvCellMerge, "cell", 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("black-box record allocates %.1f/op", allocs)
	}

	r := New()
	// Steady state: the ledger slice reaches capacity, then appends reuse it.
	for i := 0; i < 64; i++ {
		r.Record(StageFleetCollect, 0, i, &h)
	}
	allocs = testing.AllocsPerRun(100, func() {
		r.Reset()
		for i := 0; i < 64; i++ {
			r.Record(StageFleetCollect, 0, i, &h)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ledger append allocates %.1f/op", allocs)
	}
}
