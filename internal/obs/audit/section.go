package audit

import (
	"fmt"
	"strconv"
)

// SectionVersion is bumped whenever the audit section layout changes
// incompatibly; the manifest schema pins it.
const SectionVersion = 1

// SectionCheckpoint is one checkpoint's manifest form. Hash is the
// sealed sum as 16 lowercase hex digits ("" for holes), so the section
// is byte-comparable across runs without float round-tripping.
type SectionCheckpoint struct {
	Stage  string `json:"stage"`
	Window int    `json:"window"`
	Shard  int    `json:"shard"`
	Hash   string `json:"hash"`
	Count  int64  `json:"count"`
	Hole   bool   `json:"hole,omitempty"`
}

// Section is the manifest's `audit` object: the canonically sorted
// checkpoint ledger plus its cell and hole counts.
type Section struct {
	Version     int                 `json:"version"`
	Cells       int                 `json:"cells"`
	Holes       int                 `json:"holes"`
	Checkpoints []SectionCheckpoint `json:"checkpoints"`
}

// Section renders the ledger in manifest form (nil on a nil recorder,
// so manifests of audit-off runs omit the section entirely).
func (r *Recorder) Section() *Section {
	if r == nil {
		return nil
	}
	cps := r.Checkpoints()
	sec := &Section{Version: SectionVersion, Cells: len(cps), Checkpoints: make([]SectionCheckpoint, 0, len(cps))}
	for _, cp := range cps {
		sc := SectionCheckpoint{Stage: cp.Stage, Window: cp.Window, Shard: cp.Shard, Count: cp.Count, Hole: cp.Hole}
		if !cp.Hole {
			sc.Hash = fmt.Sprintf("%016x", cp.Sum)
		} else {
			sec.Holes++
		}
		sec.Checkpoints = append(sec.Checkpoints, sc)
	}
	return sec
}

// Decode converts a parsed manifest section back into checkpoints,
// validating hex hashes and hole invariants. The result is re-sorted
// canonically, so a hand-edited section still diffs in frontier order.
func (s *Section) Decode() ([]Checkpoint, error) {
	if s == nil {
		return nil, fmt.Errorf("audit: manifest has no audit section")
	}
	if s.Version != SectionVersion {
		return nil, fmt.Errorf("audit: section version %d, want %d", s.Version, SectionVersion)
	}
	cps := make([]Checkpoint, 0, len(s.Checkpoints))
	for i, sc := range s.Checkpoints {
		cp := Checkpoint{Stage: sc.Stage, Window: sc.Window, Shard: sc.Shard, Count: sc.Count, Hole: sc.Hole}
		if sc.Stage == "" {
			return nil, fmt.Errorf("audit: checkpoint %d has no stage", i)
		}
		switch {
		case sc.Hole:
			if sc.Hash != "" {
				return nil, fmt.Errorf("audit: hole checkpoint %d (%s w%d s%d) carries a hash", i, sc.Stage, sc.Window, sc.Shard)
			}
		default:
			if len(sc.Hash) != 16 {
				return nil, fmt.Errorf("audit: checkpoint %d (%s w%d s%d) hash %q is not 16 hex digits", i, sc.Stage, sc.Window, sc.Shard, sc.Hash)
			}
			sum, err := strconv.ParseUint(sc.Hash, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("audit: checkpoint %d (%s w%d s%d) hash %q: %v", i, sc.Stage, sc.Window, sc.Shard, sc.Hash, err)
			}
			cp.Sum = sum
		}
		cps = append(cps, cp)
	}
	Sort(cps)
	return cps, nil
}

// Divergence describes the first canonical-order disagreement between
// two ledgers plus its blast radius.
type Divergence struct {
	Index   int        // position in canonical order
	Kind    string     // "hash", "count", "hole", "missing-in-a", "missing-in-b"
	A, B    Checkpoint // the entries at the divergence (zero value on the missing side)
	Tainted int        // total disagreeing checkpoints, the first included
	Total   int        // checkpoints in the longer ledger
}

// String renders the divergence the way a human debugs it.
func (d Divergence) String() string {
	cp := d.A
	if d.Kind == "missing-in-a" {
		cp = d.B
	}
	at := fmt.Sprintf("stage %s", cp.Stage)
	if cp.Window != NonCell {
		at = fmt.Sprintf("window %d, shard %d, stage %s", cp.Window, cp.Shard, cp.Stage)
	}
	switch d.Kind {
	case "hash":
		return fmt.Sprintf("%s: hash %016x != %016x (counts %d/%d); %d of %d downstream checkpoints tainted",
			at, d.A.Sum, d.B.Sum, d.A.Count, d.B.Count, d.Tainted, d.Total)
	case "count":
		return fmt.Sprintf("%s: count %d != %d (hash %016x agrees); %d of %d checkpoints tainted",
			at, d.A.Count, d.B.Count, d.A.Sum, d.Tainted, d.Total)
	case "hole":
		holeIn := "A"
		if d.B.Hole {
			holeIn = "B"
		}
		return fmt.Sprintf("%s: hole in run %s only (coverage gap vs computed cell); %d of %d checkpoints tainted",
			at, holeIn, d.Tainted, d.Total)
	case "missing-in-a", "missing-in-b":
		run := "A"
		if d.Kind == "missing-in-a" {
			run = "B"
		}
		return fmt.Sprintf("%s: checkpoint present only in run %s; %d of %d checkpoints tainted",
			at, run, d.Tainted, d.Total)
	}
	return fmt.Sprintf("%s: %s", at, d.Kind)
}

// entryKind classifies one pairwise comparison at an aligned key.
func entryKind(a, b Checkpoint) string {
	switch {
	case a.Hole != b.Hole:
		return "hole"
	case a.Hole:
		return "" // two holes agree by definition
	case a.Sum != b.Sum:
		return "hash"
	case a.Count != b.Count:
		return "count"
	}
	return ""
}

// Diff compares two ledgers in canonical (frontier) order and returns
// the first divergence, or ok=false when they are identical. Inputs
// may be unsorted; they are copied and canonicalized.
func Diff(a, b []Checkpoint) (Divergence, bool) {
	as := append([]Checkpoint(nil), a...)
	bs := append([]Checkpoint(nil), b...)
	Sort(as)
	Sort(bs)
	var first *Divergence
	tainted := 0
	i, j := 0, 0
	note := func(d Divergence) {
		tainted++
		if first == nil {
			d.Index = i + j - 1 // position at which the walk noted it
			first = &d
		}
	}
	for i < len(as) || j < len(bs) {
		switch {
		case j >= len(bs) || (i < len(as) && Less(as[i], bs[j])):
			i++
			note(Divergence{Kind: "missing-in-b", A: as[i-1]})
		case i >= len(as) || Less(bs[j], as[i]):
			j++
			note(Divergence{Kind: "missing-in-a", B: bs[j-1]})
		default:
			i, j = i+1, j+1
			if k := entryKind(as[i-1], bs[j-1]); k != "" {
				note(Divergence{Kind: k, A: as[i-1], B: bs[j-1]})
			}
		}
	}
	if first == nil {
		return Divergence{}, false
	}
	first.Tainted = tainted
	first.Total = max(len(as), len(bs))
	return *first, true
}
