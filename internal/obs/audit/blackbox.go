package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// EventKind classifies one black-box event.
type EventKind uint8

// Black-box event kinds: the structured breadcrumbs a crashed process
// leaves behind.
const (
	EvStageEnter EventKind = iota + 1
	EvStageExit
	EvCellMerge // A=window, B=shard
	EvCellHole  // A=window, B=shard
	EvFault     // A=fault transition count
	EvFrameRx   // A=frame type, B=seq/cell
	EvFrameTx   // A=frame type, B=seq/cell
	EvCrash     // A=signal number or 0 for panic
)

var kindNames = [...]string{
	EvStageEnter: "stage-enter",
	EvStageExit:  "stage-exit",
	EvCellMerge:  "cell-merge",
	EvCellHole:   "cell-hole",
	EvFault:      "fault",
	EvFrameRx:    "frame-rx",
	EvFrameTx:    "frame-tx",
	EvCrash:      "crash",
}

// String names the kind for dumps.
func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// Event is one ring entry. Name must be a constant or pre-formatted
// string on hot paths — Record never formats.
type Event struct {
	Ns   int64
	Kind EventKind
	Name string
	A, B int64
}

// DefaultBlackBoxEvents is the ring size processes use unless
// configured otherwise: large enough to cover the last few windows of
// cell traffic, small enough to dump in full on a crash.
const DefaultBlackBoxEvents = 1024

// BlackBox is a fixed-size, allocation-free ring of recent structured
// events, dumped on panic, SIGQUIT, or a planned agent kill. All
// methods are safe on a nil receiver and safe for concurrent use (one
// short mutex hold per record — the ring exists for post-mortems, not
// throughput, and the race detector must stay quiet).
type BlackBox struct {
	mu    sync.Mutex
	ring  []Event
	total uint64
}

// NewBlackBox returns a ring holding the last `size` events
// (DefaultBlackBoxEvents when size <= 0).
func NewBlackBox(size int) *BlackBox {
	if size <= 0 {
		size = DefaultBlackBoxEvents
	}
	return &BlackBox{ring: make([]Event, 0, size)}
}

// Record appends one event, evicting the oldest when the ring is full.
func (b *BlackBox) Record(k EventKind, name string, a, v int64) {
	if b == nil {
		return
	}
	e := Event{Ns: time.Now().UnixNano(), Kind: k, Name: name, A: a, B: v}
	b.mu.Lock()
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
	} else {
		b.ring[b.total%uint64(cap(b.ring))] = e
	}
	b.total++
	b.mu.Unlock()
}

// Total returns the number of events recorded over the process
// lifetime (not just those still in the ring).
func (b *BlackBox) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Events returns the retained events oldest-first.
func (b *BlackBox) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.ring)
	out := make([]Event, 0, n)
	if b.total > uint64(n) {
		// Ring has wrapped: oldest entry sits at the write cursor.
		at := int(b.total % uint64(n))
		out = append(out, b.ring[at:]...)
		out = append(out, b.ring[:at]...)
	} else {
		out = append(out, b.ring...)
	}
	return out
}

// blackBoxDump is the JSON crash-dump layout.
type blackBoxDump struct {
	PID     int     `json:"pid"`
	Reason  string  `json:"reason"`
	Total   uint64  `json:"total_events"`
	Dumped  int     `json:"dumped_events"`
	Events  []Event `json:"events"`
	WhenUTC string  `json:"when_utc"`
}

// eventJSON is the per-event JSON form (kind by name, not number).
type eventJSON struct {
	Ns   int64  `json:"ns"`
	Kind string `json:"kind"`
	Name string `json:"name"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// MarshalJSON renders the event with its kind named.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{Ns: e.Ns, Kind: e.Kind.String(), Name: e.Name, A: e.A, B: e.B})
}

// DumpText writes a human-readable tail of the ring to w (the stderr
// leg of a crash dump).
func (b *BlackBox) DumpText(w io.Writer, reason string) {
	if b == nil {
		return
	}
	evs := b.Events()
	fmt.Fprintf(w, "audit black box: %s (pid %d, %d of %d events retained)\n", reason, os.Getpid(), len(evs), b.Total())
	for _, e := range evs {
		fmt.Fprintf(w, "  %d %-12s %-24s a=%d b=%d\n", e.Ns, e.Kind.String(), e.Name, e.A, e.B)
	}
}

// DumpJSON writes the full dump as JSON to path. An empty path skips
// the file leg.
func (b *BlackBox) DumpJSON(path, reason string) error {
	if b == nil || path == "" {
		return nil
	}
	evs := b.Events()
	d := blackBoxDump{
		PID:     os.Getpid(),
		Reason:  reason,
		Total:   b.Total(),
		Dumped:  len(evs),
		Events:  evs,
		WhenUTC: time.Now().UTC().Format(time.RFC3339Nano),
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Dump writes both legs of a crash dump: human-readable to stderr,
// JSON to path (skipped when empty).
func (b *BlackBox) Dump(path, reason string) {
	if b == nil {
		return
	}
	b.DumpText(os.Stderr, reason)
	if err := b.DumpJSON(path, reason); err != nil {
		fmt.Fprintf(os.Stderr, "audit black box: writing %s: %v\n", path, err)
	}
}

// HandlePanic is the deferred panic leg of the black box: on a panic it
// records an EvCrash event, dumps the ring, and re-panics so the
// runtime still prints the stack and exits non-zero. Use as
// `defer bb.HandlePanic(path)` at the top of main.
func (b *BlackBox) HandlePanic(path string) {
	if r := recover(); r != nil {
		b.Record(EvCrash, "panic", 0, 0)
		b.Dump(path, fmt.Sprintf("panic: %v", r))
		panic(r)
	}
}

// InstallSignalDump dumps the ring on SIGQUIT without exiting (the
// classic "what is this process doing" probe, matching the Go runtime's
// own SIGQUIT stack dump which follows from the default handler being
// replaced here only for the dump; the process keeps running).
func (b *BlackBox) InstallSignalDump(path string) {
	if b == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for sig := range ch {
			b.Record(EvCrash, "signal", int64(syscall.SIGQUIT), 0)
			b.Dump(path, fmt.Sprintf("signal %v", sig))
		}
	}()
}
