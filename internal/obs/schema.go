package obs

import (
	"encoding/json"
	"fmt"
	"math"
)

// A minimal JSON-Schema validator covering the subset the manifest
// schema uses: type, required, properties, additionalProperties (bool or
// schema), items, minimum, and enum. Implemented here so the CI smoke
// job can validate emitted manifests without pulling a dependency.

// schemaNode is the decoded form of one (sub)schema.
type schemaNode struct {
	Type                 any                    `json:"type"` // string or []string
	Required             []string               `json:"required"`
	Properties           map[string]*schemaNode `json:"properties"`
	AdditionalProperties json.RawMessage        `json:"additionalProperties"`
	Items                *schemaNode            `json:"items"`
	Minimum              *float64               `json:"minimum"`
	Enum                 []any                  `json:"enum"`
}

// ValidateSchema checks doc (a JSON document) against schema (a JSON
// schema in the supported subset). It returns the first violation found,
// with a JSON-pointer-style path.
func ValidateSchema(schema, doc []byte) error {
	var node schemaNode
	if err := json.Unmarshal(schema, &node); err != nil {
		return fmt.Errorf("obs: parsing schema: %v", err)
	}
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		return fmt.Errorf("obs: parsing document: %v", err)
	}
	return validateNode(&node, v, "$")
}

// typeNames normalizes the schema's type field to a list.
func (n *schemaNode) typeNames() []string {
	switch t := n.Type.(type) {
	case string:
		return []string{t}
	case []any:
		out := make([]string, 0, len(t))
		for _, e := range t {
			if s, ok := e.(string); ok {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}

// typeOf names v's JSON type, distinguishing integer-valued numbers.
func matchesType(v any, want string) bool {
	switch want {
	case "object":
		_, ok := v.(map[string]any)
		return ok
	case "array":
		_, ok := v.([]any)
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "null":
		return v == nil
	case "number":
		_, ok := v.(float64)
		return ok
	case "integer":
		f, ok := v.(float64)
		return ok && f == math.Trunc(f)
	}
	return false
}

func validateNode(n *schemaNode, v any, path string) error {
	if n == nil {
		return nil
	}
	if types := n.typeNames(); len(types) > 0 {
		ok := false
		for _, t := range types {
			if matchesType(v, t) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s: value %v does not match type %v", path, compact(v), types)
		}
	}
	if len(n.Enum) > 0 {
		ok := false
		for _, e := range n.Enum {
			if fmt.Sprint(e) == fmt.Sprint(v) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s: value %v not in enum %v", path, compact(v), n.Enum)
		}
	}
	if n.Minimum != nil {
		if f, ok := v.(float64); ok && f < *n.Minimum {
			return fmt.Errorf("%s: %v below minimum %v", path, f, *n.Minimum)
		}
	}
	if obj, ok := v.(map[string]any); ok {
		for _, req := range n.Required {
			if _, present := obj[req]; !present {
				return fmt.Errorf("%s: missing required property %q", path, req)
			}
		}
		var addl *schemaNode
		addlForbidden := false
		if len(n.AdditionalProperties) > 0 {
			var b bool
			if err := json.Unmarshal(n.AdditionalProperties, &b); err == nil {
				addlForbidden = !b
			} else {
				addl = &schemaNode{}
				if err := json.Unmarshal(n.AdditionalProperties, addl); err != nil {
					return fmt.Errorf("%s: bad additionalProperties schema: %v", path, err)
				}
			}
		}
		for k, sub := range obj {
			p := path + "." + k
			if ps, ok := n.Properties[k]; ok {
				if err := validateNode(ps, sub, p); err != nil {
					return err
				}
				continue
			}
			if addlForbidden {
				return fmt.Errorf("%s: unexpected property %q", path, k)
			}
			if addl != nil {
				if err := validateNode(addl, sub, p); err != nil {
					return err
				}
			}
		}
	}
	if arr, ok := v.([]any); ok && n.Items != nil {
		for i, sub := range arr {
			if err := validateNode(n.Items, sub, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// compact renders a value tersely for error messages.
func compact(v any) string {
	data, err := json.Marshal(v)
	if err != nil || len(data) > 60 {
		return fmt.Sprintf("%.60v", v)
	}
	return string(data)
}
