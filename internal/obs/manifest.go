package obs

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"fbdcnet/internal/obs/audit"
)

// ManifestSchemaVersion is bumped whenever the manifest layout changes
// incompatibly; the schema in testdata pins it.
const ManifestSchemaVersion = 1

// ManifestSchema is the JSON schema every emitted manifest must satisfy
// (cmd/manifestcheck and the obs tests validate against it).
//
//go:embed testdata/manifest.schema.json
var ManifestSchema []byte

// RunMeta identifies the run a manifest describes. Config carries the
// flattened experiment configuration (scale preset, seed, trace
// durations, fault scenario, parallelism) as reported by the caller.
type RunMeta struct {
	Tool   string
	Config map[string]any
}

// StageRecord is one pipeline stage's accumulated timing in the
// manifest. CPUSeconds and allocation deltas are process-wide: exact for
// stages that run alone, an upper bound for stages overlapping on the
// parallel engine.
type StageRecord struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

// HistRecord is one histogram's digest in the manifest: power-of-two
// bucket counts keyed by their upper bound, plus sum and count.
type HistRecord struct {
	Name    string           `json:"name"`
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
}

// AgentRecord is one fleet agent's section in a federated (distributed
// run) manifest: its restart history, coverage gaps, final gauges, and
// the stage timings its last incarnation reported over the wire.
type AgentRecord struct {
	Agent        int                `json:"agent"`
	Incarnations int64              `json:"incarnations"`
	Restarts     int64              `json:"restarts"`
	GapCells     int                `json:"gap_cells"`
	SpanEvents   int                `json:"span_events"`
	Stages       []StageRecord      `json:"stages"`
	Gauges       map[string]float64 `json:"gauges"`
}

// ProgressRecord is one task's final completion state.
type ProgressRecord struct {
	Task  string `json:"task"`
	Done  int64  `json:"done"`
	Total int64  `json:"total"`
}

// Manifest is the machine-readable record of one run, written alongside
// the experiment transcript: what was configured, where the time and
// packets went, and how completely the samplers covered the fleet.
type Manifest struct {
	SchemaVersion int                `json:"schema_version"`
	Tool          string             `json:"tool"`
	GoVersion     string             `json:"go_version"`
	GitRev        string             `json:"git_rev"`
	StartedAt     string             `json:"started_at"`
	WallSeconds   float64            `json:"wall_seconds"`
	Config        map[string]any     `json:"config"`
	Stages        []StageRecord      `json:"stages"`
	Counters      map[string]int64   `json:"counters"`
	Series        map[string]float64 `json:"series"`
	Gauges        map[string]float64 `json:"gauges"`
	Histograms    []HistRecord       `json:"histograms"`
	Progress      []ProgressRecord   `json:"progress"`

	// Agents is present only on distributed-run manifests written by the
	// aggregator: one record per fleet agent, built from the AgentReports
	// federated over fbwire.
	Agents []AgentRecord `json:"agents,omitempty"`

	// Audit is the determinism flight recorder's checkpoint ledger,
	// present only when the run enabled -audit. cmd/digestdiff compares
	// two of these to name the first divergent cell.
	Audit *audit.Section `json:"audit,omitempty"`
}

// GitRev returns the VCS revision stamped into the binary, or "" when
// built without VCS metadata (e.g. go test binaries).
func GitRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// Manifest snapshots the registry into a manifest for meta. Safe to call
// on a nil registry (stages and counters come out empty).
func (r *Registry) Manifest(meta RunMeta) *Manifest {
	m := &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Tool:          meta.Tool,
		GoVersion:     runtime.Version(),
		GitRev:        GitRev(),
		Config:        meta.Config,
		Counters:      map[string]int64{},
		Series:        map[string]float64{},
		Gauges:        map[string]float64{},
		Stages:        []StageRecord{},
		Histograms:    []HistRecord{},
		Progress:      []ProgressRecord{},
	}
	if m.Config == nil {
		m.Config = map[string]any{}
	}
	if r == nil {
		m.StartedAt = time.Now().UTC().Format(time.RFC3339)
		return m
	}
	m.StartedAt = r.start.UTC().Format(time.RFC3339)
	m.WallSeconds = time.Since(r.start).Seconds()

	r.mu.Lock()
	defer r.mu.Unlock()
	for i, name := range r.counterNames {
		m.Counters[name] = r.counters[i]
	}
	for s, v := range r.series {
		m.Series[s] = v
	}
	for g, v := range r.gauges {
		m.Gauges[g] = v
	}
	for _, name := range r.spanOrder {
		st := r.spans[name]
		m.Stages = append(m.Stages, StageRecord{
			Name:        name,
			Runs:        st.count,
			WallSeconds: float64(st.wallNs) / 1e9,
			CPUSeconds:  float64(st.cpuNs) / 1e9,
			Allocs:      st.allocs,
			AllocBytes:  st.bytes,
		})
	}
	for i, name := range r.histNames {
		h := &r.hists[i]
		rec := HistRecord{Name: name, Count: h.count, Sum: h.sum, Buckets: map[string]int64{}}
		for b, c := range h.buckets {
			if c != 0 {
				rec.Buckets[fmt.Sprint(bucketBound(b))] = c
			}
		}
		m.Histograms = append(m.Histograms, rec)
	}
	for _, name := range r.progOrder {
		st := r.progress[name]
		m.Progress = append(m.Progress, ProgressRecord{Task: name, Done: st.done, Total: st.total})
	}
	return m
}

// bucketBound returns the inclusive upper bound of bucket b: values v
// with bucketOf(v) == b satisfy v <= 2^b - 1 (bucket 0 holds v <= 0).
func bucketBound(b int) int64 {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<b - 1
}

// WriteFile writes the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate checks the manifest's JSON encoding against the embedded
// schema — the same check cmd/manifestcheck applies to emitted files.
func (m *Manifest) Validate() error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return ValidateSchema(ManifestSchema, data)
}
