package obs

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Wire form of the observability layer — the payload carried in
// fbwire.TypeObs frames between distributed fleet agents and the
// aggregator. Two payload shapes exist:
//
//   - Delta: the counter and histogram increments of exactly one
//     (window, shard) cell, encoded straight out of the agent's
//     worker-local Shard before it folds. The aggregator parks the delta
//     next to the cell's fbflow.Partial and folds it into its own
//     registry only when the task-order merge frontier consumes the
//     cell, so federated counters are a pure function of the merged cell
//     set: reproducible at any agent count, and a cell whose partial
//     never merged (a coverage gap) contributes no metrics either.
//
//   - AgentReport: the per-process ephemera an agent ships once, right
//     before FIN — gauges, labeled series, stage timing totals, and the
//     span event ledger that the unified run timeline (obs/export) lays
//     onto the shared clock. Reports describe processes, not cells; they
//     are never folded into federated counters.
//
// Both directions follow the fbwire codec rules: little-endian, every
// length and count bounds-checked against hard caps, corrupt input
// errors — it never panics and never drives an unbounded allocation.
// Delta encode and decode are allocation-free in the steady state:
// encode appends into a caller-reused buffer, decode aliases names into
// the frame payload and reuses the Delta's entry capacity.

// obsWireVersion identifies the obs payload layout.
const obsWireVersion = 1

// Wire caps: a corrupt count must fail fast, not allocate.
const (
	maxWireEntries = 4096
	maxWireName    = 256
	maxWireEvents  = 1 << 16
)

// DeltaCounter is one counter increment in a decoded Delta. Name aliases
// the decode buffer and is valid only until the next Decode.
type DeltaCounter struct {
	Name []byte
	V    int64
}

// DeltaHist is one histogram increment in a decoded Delta.
type DeltaHist struct {
	Name    []byte
	Buckets [histBuckets]int64
	Sum     int64
	Count   int64
}

// Delta is one cell's decoded metric increments. Reuse one Delta across
// frames: Decode resets it and retains entry capacity.
type Delta struct {
	Counters []DeltaCounter
	Hists    []DeltaHist
}

// appendWireStr appends a length-prefixed string.
func appendWireStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// readWireStr reads a length-prefixed string, returning the remainder.
func readWireStr(data []byte, what string) ([]byte, []byte, error) {
	if len(data) < 2 {
		return nil, nil, fmt.Errorf("obs: wire: %s name length truncated", what)
	}
	n := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if n == 0 || n > maxWireName {
		return nil, nil, fmt.Errorf("obs: wire: %s name length %d outside [1, %d]", what, n, maxWireName)
	}
	if len(data) < n {
		return nil, nil, fmt.Errorf("obs: wire: %s name truncated: need %d bytes, have %d", what, n, len(data))
	}
	return data[:n], data[n:], nil
}

// AppendDelta appends the shard's non-zero counter and histogram slots to
// buf as one Delta payload and returns the extended slice. It does not
// reset the shard — callers Fold (or Reset via Fold) afterwards, so the
// same increments also land in the agent's local registry. A nil shard
// appends nothing and returns buf unchanged, which is how a metrics-off
// agent sends no obs frames at all.
func (s *Shard) AppendDelta(buf []byte) []byte {
	if s == nil {
		return buf
	}
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	buf = append(buf, obsWireVersion)
	nc := 0
	for _, v := range s.counts {
		if v != 0 {
			nc++
		}
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(nc))
	for i, v := range s.counts {
		if v == 0 {
			continue
		}
		buf = appendWireStr(buf, r.counterNames[i])
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	nh := 0
	for i := range s.hists {
		if s.hists[i].count != 0 {
			nh++
		}
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(nh))
	for i := range s.hists {
		h := &s.hists[i]
		if h.count == 0 {
			continue
		}
		buf = appendWireStr(buf, r.histNames[i])
		var bm uint64
		for b, c := range h.buckets {
			if c != 0 {
				bm |= 1 << uint(b)
			}
		}
		buf = binary.LittleEndian.AppendUint64(buf, bm)
		for _, c := range h.buckets {
			if c != 0 {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
			}
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(h.sum))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(h.count))
	}
	return buf
}

// Decode replaces d's contents with the Delta payload in data. The whole
// slice must be consumed; names alias data. Malformed payloads error
// without partial effects beyond d's reset.
func (d *Delta) Decode(data []byte) error {
	d.Counters = d.Counters[:0]
	d.Hists = d.Hists[:0]
	if len(data) < 1 {
		return fmt.Errorf("obs: wire: delta header truncated")
	}
	if data[0] != obsWireVersion {
		return fmt.Errorf("obs: wire: unsupported delta version %d", data[0])
	}
	data = data[1:]
	if len(data) < 2 {
		return fmt.Errorf("obs: wire: delta counter count truncated")
	}
	nc := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if nc > maxWireEntries {
		return fmt.Errorf("obs: wire: delta declares %d counters (cap %d)", nc, maxWireEntries)
	}
	var name []byte
	var err error
	for i := 0; i < nc; i++ {
		if name, data, err = readWireStr(data, "counter"); err != nil {
			return err
		}
		if len(data) < 8 {
			return fmt.Errorf("obs: wire: counter %q value truncated", name)
		}
		d.Counters = append(d.Counters, DeltaCounter{Name: name, V: int64(binary.LittleEndian.Uint64(data))})
		data = data[8:]
	}
	if len(data) < 2 {
		return fmt.Errorf("obs: wire: delta histogram count truncated")
	}
	nh := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if nh > maxWireEntries {
		return fmt.Errorf("obs: wire: delta declares %d histograms (cap %d)", nh, maxWireEntries)
	}
	for i := 0; i < nh; i++ {
		if name, data, err = readWireStr(data, "histogram"); err != nil {
			return err
		}
		if len(data) < 8 {
			return fmt.Errorf("obs: wire: histogram %q bitmap truncated", name)
		}
		bm := binary.LittleEndian.Uint64(data)
		data = data[8:]
		need := 8*bits.OnesCount64(bm) + 16
		if len(data) < need {
			return fmt.Errorf("obs: wire: histogram %q truncated: need %d bytes, have %d", name, need, len(data))
		}
		d.Hists = append(d.Hists, DeltaHist{Name: name})
		h := &d.Hists[len(d.Hists)-1]
		for b := 0; b < histBuckets; b++ {
			if bm&(1<<uint(b)) == 0 {
				continue
			}
			c := int64(binary.LittleEndian.Uint64(data))
			data = data[8:]
			if c < 0 {
				return fmt.Errorf("obs: wire: histogram %q bucket %d count is negative", name, b)
			}
			h.Buckets[b] = c
		}
		h.Sum = int64(binary.LittleEndian.Uint64(data))
		h.Count = int64(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
		if h.Count < 0 {
			return fmt.Errorf("obs: wire: histogram %q count is negative", name)
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("obs: wire: delta has %d trailing bytes", len(data))
	}
	return nil
}

// FoldDelta folds a decoded cell delta into the registry, registering
// unknown names lazily. Counter addition is commutative, but the
// aggregator folds at the task-order merge frontier anyway so the
// registry's state at any frontier is reproducible at any agent count.
// A nil registry discards the delta.
func (r *Registry) FoldDelta(d *Delta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range d.Counters {
		c := &d.Counters[i]
		id, ok := r.counterIDs[string(c.Name)]
		if !ok {
			id = r.counterLocked(string(c.Name), "federated from a fleet agent")
		}
		r.counters[id] += c.V
	}
	for i := range d.Hists {
		dh := &d.Hists[i]
		id, ok := r.histIDs[string(dh.Name)]
		if !ok {
			id = r.histogramLocked(string(dh.Name), "federated from a fleet agent")
		}
		h := &r.hists[id]
		for b, c := range dh.Buckets {
			h.buckets[b] += c
		}
		h.sum += dh.Sum
		h.count += dh.Count
	}
}

// NamedValue is one gauge or series sample in an AgentReport.
type NamedValue struct {
	Name string
	V    float64
}

// AgentReport is the once-per-incarnation snapshot a fleet agent sends
// right before FIN: its per-process gauges and series, stage timing
// totals, and the span events the unified timeline renders.
type AgentReport struct {
	AgentID       uint32
	Incarnation   uint32
	StartUnixNs   int64
	Gauges        []NamedValue
	Series        []NamedValue
	Stages        []StageRecord
	Events        []SpanEvent
	EventsDropped int64
}

// AppendReport appends the registry's report payload to buf: every
// gauge, series, span-stat total, and span event recorded so far. This
// runs once per agent incarnation, so it is not on the zero-alloc path.
func (r *Registry) AppendReport(buf []byte, agentID, incarnation uint32) []byte {
	buf = append(buf, obsWireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, agentID)
	buf = binary.LittleEndian.AppendUint32(buf, incarnation)
	if r == nil {
		buf = binary.LittleEndian.AppendUint64(buf, 0)
		for i := 0; i < 4; i++ { // empty gauge/series/stage/event sections
			buf = binary.LittleEndian.AppendUint32(buf, 0)
		}
		return binary.LittleEndian.AppendUint64(buf, 0)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.start.UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.gaugeOrder)))
	for _, g := range r.gaugeOrder {
		buf = appendWireStr(buf, g)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.gauges[g]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.seriesOrder)))
	for _, s := range r.seriesOrder {
		buf = appendWireStr(buf, s)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.series[s]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.spanOrder)))
	for _, name := range r.spanOrder {
		st := r.spans[name]
		buf = appendWireStr(buf, name)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.count))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.wallNs))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.cpuNs))
		buf = binary.LittleEndian.AppendUint64(buf, st.allocs)
		buf = binary.LittleEndian.AppendUint64(buf, st.bytes)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.events)))
	for _, e := range r.events {
		buf = appendWireStr(buf, e.Name)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.StartNs))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.EndNs))
	}
	return binary.LittleEndian.AppendUint64(buf, uint64(r.eventsDropped))
}

// DecodeReport decodes a report payload into rep. Names are copied (a
// report outlives its frame); malformed payloads error without panics.
func DecodeReport(data []byte, rep *AgentReport) error {
	*rep = AgentReport{}
	if len(data) < 1+4+4+8 {
		return fmt.Errorf("obs: wire: report header truncated")
	}
	if data[0] != obsWireVersion {
		return fmt.Errorf("obs: wire: unsupported report version %d", data[0])
	}
	rep.AgentID = binary.LittleEndian.Uint32(data[1:])
	rep.Incarnation = binary.LittleEndian.Uint32(data[5:])
	rep.StartUnixNs = int64(binary.LittleEndian.Uint64(data[9:]))
	data = data[17:]

	section := func(what string, cap int) (int, error) {
		if len(data) < 4 {
			return 0, fmt.Errorf("obs: wire: report %s count truncated", what)
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if n > cap {
			return 0, fmt.Errorf("obs: wire: report declares %d %s (cap %d)", n, what, cap)
		}
		return n, nil
	}
	named := func(what string) ([]NamedValue, error) {
		n, err := section(what, maxWireEntries)
		if err != nil {
			return nil, err
		}
		out := make([]NamedValue, 0, n)
		for i := 0; i < n; i++ {
			var name []byte
			if name, data, err = readWireStr(data, what); err != nil {
				return nil, err
			}
			if len(data) < 8 {
				return nil, fmt.Errorf("obs: wire: %s %q value truncated", what, name)
			}
			out = append(out, NamedValue{Name: string(name), V: math.Float64frombits(binary.LittleEndian.Uint64(data))})
			data = data[8:]
		}
		return out, nil
	}
	var err error
	if rep.Gauges, err = named("gauge"); err != nil {
		return err
	}
	if rep.Series, err = named("series"); err != nil {
		return err
	}
	ns, err := section("stages", maxWireEntries)
	if err != nil {
		return err
	}
	rep.Stages = make([]StageRecord, 0, ns)
	for i := 0; i < ns; i++ {
		var name []byte
		if name, data, err = readWireStr(data, "stage"); err != nil {
			return err
		}
		if len(data) < 40 {
			return fmt.Errorf("obs: wire: stage %q truncated", name)
		}
		runs := int64(binary.LittleEndian.Uint64(data))
		wallNs := int64(binary.LittleEndian.Uint64(data[8:]))
		cpuNs := int64(binary.LittleEndian.Uint64(data[16:]))
		if runs < 0 || wallNs < 0 || cpuNs < 0 {
			return fmt.Errorf("obs: wire: stage %q carries negative totals", name)
		}
		rep.Stages = append(rep.Stages, StageRecord{
			Name:        string(name),
			Runs:        runs,
			WallSeconds: float64(wallNs) / 1e9,
			CPUSeconds:  float64(cpuNs) / 1e9,
			Allocs:      binary.LittleEndian.Uint64(data[24:]),
			AllocBytes:  binary.LittleEndian.Uint64(data[32:]),
		})
		data = data[40:]
	}
	ne, err := section("events", maxWireEvents)
	if err != nil {
		return err
	}
	rep.Events = make([]SpanEvent, 0, ne)
	for i := 0; i < ne; i++ {
		var name []byte
		if name, data, err = readWireStr(data, "event"); err != nil {
			return err
		}
		if len(data) < 16 {
			return fmt.Errorf("obs: wire: event %q truncated", name)
		}
		ev := SpanEvent{
			Name:    string(name),
			StartNs: int64(binary.LittleEndian.Uint64(data)),
			EndNs:   int64(binary.LittleEndian.Uint64(data[8:])),
		}
		data = data[16:]
		if ev.EndNs < ev.StartNs {
			return fmt.Errorf("obs: wire: event %q ends before it starts", name)
		}
		rep.Events = append(rep.Events, ev)
	}
	if len(data) != 8 {
		return fmt.Errorf("obs: wire: report tail is %d bytes, want 8", len(data))
	}
	rep.EventsDropped = int64(binary.LittleEndian.Uint64(data))
	if rep.EventsDropped < 0 {
		return fmt.Errorf("obs: wire: report dropped-event count is negative")
	}
	return nil
}
