package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := populated()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, ctype, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type %q", ctype)
	}
	if !strings.Contains(body, "fbdcnet_test_pkts_total 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, _, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars struct {
		Fbdcnet *Manifest `json:"fbdcnet"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Fbdcnet == nil || vars.Fbdcnet.Counters["fbdcnet_test_pkts_total"] != 42 {
		t.Errorf("/debug/vars fbdcnet var = %+v", vars.Fbdcnet)
	}

	for _, path := range []string{"/", "/progress"} {
		code, _, body = get(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("%s status %d", path, code)
		}
		if !strings.Contains(body, "windows") || !strings.Contains(body, "stage-a") {
			t.Errorf("%s missing progress/stage lines:\n%s", path, body)
		}
	}

	code, _, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("/nope status %d, want 404", code)
	}
}

// TestServeTwice pins that a second Serve (same process, new registry)
// works and repoints the process-wide expvar publication instead of
// panicking on a duplicate expvar.Publish.
func TestServeTwice(t *testing.T) {
	r1 := NewRegistry()
	r1.AddCounter(r1.Counter("first_total", ""), 1)
	s1, err := Serve("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	r2 := NewRegistry()
	r2.AddCounter(r2.Counter("second_total", ""), 2)
	s2, err := Serve("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, _, body := get(t, "http://"+s2.Addr()+"/debug/vars")
	if !strings.Contains(body, "second_total") {
		t.Errorf("expvar not repointed to the live registry:\n%s", body)
	}
}

// TestServeCloseDrainsScrapes pins the teardown contract: Close must not
// return while a handler can still be reading the registry. Scrapers
// hammer the endpoint while the server shuts down mid-flight; run under
// -race this catches any handler outliving Close.
func TestServeCloseDrainsScrapes(t *testing.T) {
	r := populated()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					return // listener closed: scraping is over
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	// Let the scrapers land a few requests, then tear down under load.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	// After Close returns no handler may touch the registry: mutate it
	// freely and join the scrapers.
	r.AddCounter(r.Counter("post_close_total", ""), 1)
	wg.Wait()

	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("endpoint still serving after Close")
	}
}

// TestServeCloseIdempotent allows double-Close, the path a defer plus an
// explicit shutdown takes.
func TestServeCloseIdempotent(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("second Close: %v", err)
	}
}
