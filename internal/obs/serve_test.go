package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := populated()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, ctype, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type %q", ctype)
	}
	if !strings.Contains(body, "fbdcnet_test_pkts_total 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, _, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars struct {
		Fbdcnet *Manifest `json:"fbdcnet"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Fbdcnet == nil || vars.Fbdcnet.Counters["fbdcnet_test_pkts_total"] != 42 {
		t.Errorf("/debug/vars fbdcnet var = %+v", vars.Fbdcnet)
	}

	for _, path := range []string{"/", "/progress"} {
		code, _, body = get(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("%s status %d", path, code)
		}
		if !strings.Contains(body, "windows") || !strings.Contains(body, "stage-a") {
			t.Errorf("%s missing progress/stage lines:\n%s", path, body)
		}
	}

	code, _, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("/nope status %d, want 404", code)
	}
}

// TestServeTwice pins that a second Serve (same process, new registry)
// works and repoints the process-wide expvar publication instead of
// panicking on a duplicate expvar.Publish.
func TestServeTwice(t *testing.T) {
	r1 := NewRegistry()
	r1.AddCounter(r1.Counter("first_total", ""), 1)
	s1, err := Serve("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	r2 := NewRegistry()
	r2.AddCounter(r2.Counter("second_total", ""), 2)
	s2, err := Serve("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, _, body := get(t, "http://"+s2.Addr()+"/debug/vars")
	if !strings.Contains(body, "second_total") {
		t.Errorf("expvar not repointed to the live registry:\n%s", body)
	}
}
