package obs

import (
	"runtime"
	"time"
)

// Spans time pipeline stages: trace generation, the netsim event loop,
// fleet collection, each analysis extraction, merges. A span records
// wall time always, plus process-wide CPU time and allocation deltas.
// The process-wide deltas are exact for stages that run alone (the
// sequential suite sections) and an upper bound for stages that overlap
// on the parallel engine; the manifest labels them accordingly.

// Span is one in-flight stage timing. The zero Span (from a nil
// registry) is a no-op.
type Span struct {
	r       *Registry
	name    string
	t0      time.Time
	cpu0    int64
	allocs0 uint64
	bytes0  uint64
}

// StartSpan begins timing a named stage. Repeated stages accumulate
// under one name (count, total wall, total CPU, total allocs).
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Span{
		r:       r,
		name:    name,
		t0:      time.Now(),
		cpu0:    processCPUNs(),
		allocs0: ms.Mallocs,
		bytes0:  ms.TotalAlloc,
	}
	r.mu.Lock()
	r.spanStats(name).running++
	r.mu.Unlock()
	return s
}

// End completes the span and folds its measurements into the registry.
func (s Span) End() {
	if s.r == nil {
		return
	}
	end := time.Now()
	wall := end.Sub(s.t0)
	cpu := processCPUNs() - s.cpu0
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r := s.r
	r.mu.Lock()
	st := r.spanStats(s.name)
	st.running--
	st.count++
	st.wallNs += wall.Nanoseconds()
	if cpu > 0 {
		st.cpuNs += cpu
	}
	st.allocs += ms.Mallocs - s.allocs0
	st.bytes += ms.TotalAlloc - s.bytes0
	r.addEventLocked(s.name, s.t0.UnixNano(), end.UnixNano())
	r.mu.Unlock()
}

// RecordSpan folds one completed execution of a named stage measured by
// the caller — used where the stage body is too fine-grained to carry a
// full Span (e.g. each frontier merge of a fleet partial).
func (r *Registry) RecordSpan(name string, wall time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	st := r.spanStats(name)
	st.count++
	st.wallNs += wall.Nanoseconds()
	r.mu.Unlock()
}

// RecordSpanAt folds one completed execution measured by the caller with
// known wall-clock endpoints, placing it on the timeline ledger as well
// as in the stage totals — used for spans whose lifetime outlives any
// one stack frame (an agent connection, a frontier stall).
func (r *Registry) RecordSpanAt(name string, start, end time.Time) {
	if r == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	r.mu.Lock()
	st := r.spanStats(name)
	st.count++
	st.wallNs += end.Sub(start).Nanoseconds()
	r.addEventLocked(name, start.UnixNano(), end.UnixNano())
	r.mu.Unlock()
}

// spanStats returns (creating if needed) the stats cell for name.
// Caller holds r.mu.
func (r *Registry) spanStats(name string) *spanStats {
	st, ok := r.spans[name]
	if !ok {
		st = &spanStats{}
		r.spans[name] = st
		r.spanOrder = append(r.spanOrder, name)
	}
	return st
}
