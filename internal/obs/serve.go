package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Live exposition: Serve binds an HTTP listener and exports the registry
// three ways — Prometheus text at /metrics, expvar JSON at /debug/vars,
// and a plain-text progress page at / — all reading only folded state
// under the registry mutex, so scraping a live run races with nothing
// and perturbs nothing.

// Server is a running metrics endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the accept loop goroutine returns
}

// liveRegistry backs the process-wide expvar publication: expvar
// variables are global and cannot be unpublished, so the handler reads
// whichever registry was most recently served.
var (
	liveRegistry atomic.Pointer[Registry]
	expvarOnce   sync.Once
)

// Serve starts the metrics endpoint on addr (host:port; port 0 picks a
// free one). The returned server reports the bound address via Addr.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %v", addr, err)
	}
	liveRegistry.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("fbdcnet", expvar.Func(func() any {
			return liveRegistry.Load().Manifest(RunMeta{Tool: "live"})
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.PrometheusText())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" && req.URL.Path != "/progress" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, r.ProgressText())
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close/Shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint and waits until no handler can still be
// reading the registry: Shutdown drains in-flight scrapes (bounded by a
// short deadline, after which stragglers are cut), and the accept-loop
// goroutine is joined before returning. Without the drain a scrape
// racing a test's teardown could touch the registry after the test
// freed it — the race the serve-mode lifecycle tests pin.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	<-s.done
	return err
}

// PrometheusText renders the registry in the Prometheus text exposition
// format: registered counters, labeled series, gauges, power-of-two
// histograms, span timings, and progress gauges.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	for i, name := range r.counterNames {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, r.counterHelp[i], name, name, r.counters[i])
	}

	// Labeled series, grouped by family so # TYPE appears once each.
	byFamily := map[string][]string{}
	var famOrder []string
	for _, s := range r.seriesOrder {
		fam := s
		if i := strings.IndexByte(s, '{'); i >= 0 {
			fam = s[:i]
		}
		if _, ok := byFamily[fam]; !ok {
			famOrder = append(famOrder, fam)
		}
		byFamily[fam] = append(byFamily[fam], s)
	}
	for _, fam := range famOrder {
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
		series := byFamily[fam]
		sort.Strings(series)
		for _, s := range series {
			fmt.Fprintf(&b, "%s %g\n", s, r.series[s])
		}
	}

	for _, g := range r.gaugeOrder {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", g, g, r.gauges[g])
	}

	for i, name := range r.histNames {
		h := &r.hists[i]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, r.histHelp[i], name)
		cum := int64(0)
		top := 0
		for bkt := histBuckets - 1; bkt > 0; bkt-- {
			if h.buckets[bkt] != 0 {
				top = bkt
				break
			}
		}
		for bkt := 0; bkt <= top; bkt++ {
			cum += h.buckets[bkt]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, bucketBound(bkt), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.count, name, h.sum, name, h.count)
	}

	for _, name := range r.spanOrder {
		st := r.spans[name]
		fmt.Fprintf(&b, "fbdcnet_stage_wall_seconds_total{stage=%q} %g\n", name, float64(st.wallNs)/1e9)
		fmt.Fprintf(&b, "fbdcnet_stage_runs_total{stage=%q} %d\n", name, st.count)
	}

	for _, name := range r.progOrder {
		st := r.progress[name]
		fmt.Fprintf(&b, "fbdcnet_progress_done{task=%q} %d\nfbdcnet_progress_total{task=%q} %d\n",
			name, st.done, name, st.total)
	}
	return b.String()
}

// ProgressText renders the plain-text live progress page: per-task
// completion (fleet windows, prewarm bundles, suite sections) and the
// span ledger with running counts.
func (r *Registry) ProgressText() string {
	if r == nil {
		return "observability disabled\n"
	}
	var b strings.Builder
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(&b, "fbdcnet live run — up %.1fs\n\nprogress:\n", time.Since(r.start).Seconds())
	if len(r.progOrder) == 0 {
		b.WriteString("  (none yet)\n")
	}
	for _, name := range r.progOrder {
		st := r.progress[name]
		bar := renderBar(st.done, st.total, 24)
		fmt.Fprintf(&b, "  %-20s %6d/%-6d %s\n", name, st.done, st.total, bar)
	}
	b.WriteString("\nstages:\n")
	if len(r.spanOrder) == 0 {
		b.WriteString("  (none yet)\n")
	}
	for _, name := range r.spanOrder {
		st := r.spans[name]
		state := "done"
		if st.running > 0 {
			state = "running"
		}
		fmt.Fprintf(&b, "  %-28s %-7s runs=%-5d wall=%8.2fs cpu=%8.2fs\n",
			name, state, st.count, float64(st.wallNs)/1e9, float64(st.cpuNs)/1e9)
	}
	for _, name := range r.panelOrder {
		fmt.Fprintf(&b, "\n%s:\n%s", name, r.panels[name])
	}
	return b.String()
}

// renderBar draws an ASCII completion bar.
func renderBar(done, total int64, width int) string {
	if total <= 0 {
		return ""
	}
	fill := int(done * int64(width) / total)
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}
