package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestNilRegistryNoOps pins the disable contract: every operation on a
// nil registry (and the shards, progress trackers, and spans it hands
// out) must be a safe no-op — this is what lets instrumented code run
// un-gated when no sink is registered.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	cid := r.Counter("x_total", "help")
	hid := r.Histogram("x_us", "help")
	r.AddCounter(cid, 5)
	r.Observe(hid, 7)
	r.SetGauge("g", 1.5)
	r.Count(`s{a="b"}`, 2)
	sh := r.NewShard()
	sh.Inc(cid)
	sh.Add(cid, 3)
	sh.Observe(hid, 9)
	sh.Fold()
	p := r.NewProgress("task", 10)
	p.Set(4)
	p.Add(1)
	sp := r.StartSpan("stage")
	sp.End()
	r.RecordSpan("stage", time.Millisecond)
	if got := r.CounterValue("x_total"); got != 0 {
		t.Errorf("nil CounterValue = %d", got)
	}
	if got := r.PrometheusText(); got != "" {
		t.Errorf("nil PrometheusText = %q", got)
	}
	if !strings.Contains(r.ProgressText(), "disabled") {
		t.Errorf("nil ProgressText = %q", r.ProgressText())
	}
	m := r.Manifest(RunMeta{Tool: "test"})
	if m == nil || m.Tool != "test" {
		t.Fatalf("nil Manifest = %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("nil-registry manifest fails schema: %v", err)
	}
}

// TestShardFold checks that per-worker shards fold into the same folded
// totals regardless of fold order, and that folding resets the shard.
func TestShardFold(t *testing.T) {
	run := func(foldOrder []int) (int64, int64) {
		r := NewRegistry()
		c := r.Counter("pkts_total", "packets")
		h := r.Histogram("lat_us", "latency")
		shards := []*Shard{r.NewShard(), r.NewShard(), r.NewShard()}
		for i, sh := range shards {
			for j := 0; j <= i; j++ {
				sh.Inc(c)
				sh.Observe(h, int64(100*(i+1)))
			}
		}
		for _, i := range foldOrder {
			shards[i].Fold()
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.counters[c], r.hists[h].count
	}
	c1, h1 := run([]int{0, 1, 2})
	c2, h2 := run([]int{2, 0, 1})
	if c1 != 6 || h1 != 6 {
		t.Errorf("folded counter=%d hist count=%d, want 6, 6", c1, h1)
	}
	if c1 != c2 || h1 != h2 {
		t.Errorf("fold order changed totals: (%d,%d) vs (%d,%d)", c1, h1, c2, h2)
	}

	// Fold resets: a second fold of an untouched shard adds nothing.
	r := NewRegistry()
	c := r.Counter("x_total", "")
	sh := r.NewShard()
	sh.Add(c, 5)
	sh.Fold()
	sh.Fold()
	if got := r.CounterValue("x_total"); got != 5 {
		t.Errorf("double fold: counter = %d, want 5", got)
	}
}

func TestSeriesFormatting(t *testing.T) {
	if got := Series("x_total"); got != "x_total" {
		t.Errorf("no labels: %q", got)
	}
	if got := Series("x_total", "role", "Web"); got != `x_total{role="Web"}` {
		t.Errorf("one label: %q", got)
	}
	if got := Series("x_total", "a", "1", "b", "2"); got != `x_total{a="1",b="2"}` {
		t.Errorf("two labels: %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
		bound  int64
	}{
		{-3, 0, 0},
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 3, 7},
		{1023, 10, 1023},
		{1024, 11, 2047},
		{math.MaxInt64, 63, math.MaxInt64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if got := bucketBound(c.bucket); got != c.bound {
			t.Errorf("bucketBound(%d) = %d, want %d", c.bucket, got, c.bound)
		}
		// The defining invariant: v always lands in a bucket whose bound
		// covers it, and (for v > 0) the previous bucket's doesn't.
		if c.v > bucketBound(bucketOf(c.v)) {
			t.Errorf("v=%d above its bucket bound %d", c.v, bucketBound(bucketOf(c.v)))
		}
		if c.v > 0 && c.v <= bucketBound(bucketOf(c.v)-1) {
			t.Errorf("v=%d fits the previous bucket too", c.v)
		}
	}
}

func TestProgressMonotoneSet(t *testing.T) {
	r := NewRegistry()
	p := r.NewProgress("windows", 10)
	p.Set(4)
	p.Set(2) // stale frontier report: must not move backwards
	p.Add(1)
	m := r.Manifest(RunMeta{})
	if len(m.Progress) != 1 || m.Progress[0].Done != 5 || m.Progress[0].Total != 10 {
		t.Fatalf("progress = %+v, want done=5 total=10", m.Progress)
	}
	// Re-registering keeps the tracker and only grows the total.
	p2 := r.NewProgress("windows", 8)
	p2.Set(6)
	m = r.Manifest(RunMeta{})
	if m.Progress[0].Done != 6 || m.Progress[0].Total != 10 {
		t.Fatalf("re-registered progress = %+v, want done=6 total=10", m.Progress)
	}
}

// populated builds a registry exercising every metric kind.
func populated() *Registry {
	r := NewRegistry()
	c := r.Counter("fbdcnet_test_pkts_total", "packets seen")
	h := r.Histogram("fbdcnet_test_lat_us", "latency")
	sh := r.NewShard()
	sh.Add(c, 41)
	sh.Inc(c)
	sh.Observe(h, 100)
	sh.Observe(h, 3000)
	sh.Fold()
	r.Count(Series("fbdcnet_test_role_total", "role", "Web"), 7)
	r.Count(Series("fbdcnet_test_role_total", "role", "Hadoop"), 9)
	r.SetGauge("fbdcnet_test_util", 0.75)
	sp := r.StartSpan("stage-a")
	sp.End()
	r.RecordSpan("stage-b", 1500*time.Millisecond)
	r.NewProgress("windows", 4).Set(3)
	return r
}

func TestPrometheusText(t *testing.T) {
	text := populated().PrometheusText()
	want := []string{
		"# TYPE fbdcnet_test_pkts_total counter",
		"fbdcnet_test_pkts_total 42",
		"# TYPE fbdcnet_test_role_total counter",
		`fbdcnet_test_role_total{role="Web"} 7`,
		`fbdcnet_test_role_total{role="Hadoop"} 9`,
		"# TYPE fbdcnet_test_util gauge",
		"fbdcnet_test_util 0.75",
		"# TYPE fbdcnet_test_lat_us histogram",
		`fbdcnet_test_lat_us_bucket{le="127"} 1`, // 100 lands in (64,127]
		`fbdcnet_test_lat_us_bucket{le="+Inf"} 2`,
		"fbdcnet_test_lat_us_sum 3100",
		"fbdcnet_test_lat_us_count 2",
		`fbdcnet_stage_wall_seconds_total{stage="stage-a"}`,
		`fbdcnet_stage_runs_total{stage="stage-b"} 1`,
		`fbdcnet_progress_done{task="windows"} 3`,
		`fbdcnet_progress_total{task="windows"} 4`,
	}
	for _, w := range want {
		if !strings.Contains(text, w) {
			t.Errorf("PrometheusText missing %q\n%s", w, text)
		}
	}
	// Histogram buckets must be cumulative: the 3000 observation (bucket
	// le=4095) includes the earlier 100.
	if !strings.Contains(text, `fbdcnet_test_lat_us_bucket{le="4095"} 2`) {
		t.Errorf("histogram not cumulative:\n%s", text)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	r := populated()
	meta := RunMeta{Tool: "test", Config: map[string]any{"seed": 42, "scale": "tiny"}}
	m := r.Manifest(meta)
	if err := m.Validate(); err != nil {
		t.Fatalf("populated manifest fails schema: %v", err)
	}
	if m.Counters["fbdcnet_test_pkts_total"] != 42 {
		t.Errorf("counter = %d", m.Counters["fbdcnet_test_pkts_total"])
	}
	if m.Series[`fbdcnet_test_role_total{role="Web"}`] != 7 {
		t.Errorf("series = %v", m.Series)
	}
	var stageA bool
	for _, st := range m.Stages {
		if st.Name == "stage-a" && st.Runs == 1 {
			stageA = true
		}
	}
	if !stageA {
		t.Errorf("stages missing stage-a: %+v", m.Stages)
	}
	if len(m.Histograms) != 1 || m.Histograms[0].Count != 2 {
		t.Fatalf("histograms = %+v", m.Histograms)
	}
	if m.Histograms[0].Buckets["127"] != 1 {
		t.Errorf("bucket digest = %v", m.Histograms[0].Buckets)
	}

	// The file on disk must satisfy the same schema cmd/manifestcheck
	// applies.
	path := filepath.Join(t.TempDir(), "run_manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchema(ManifestSchema, data); err != nil {
		t.Errorf("written manifest fails schema: %v", err)
	}
}

func TestValidateSchemaRejects(t *testing.T) {
	schema := []byte(`{
		"type": "object",
		"required": ["n", "tags"],
		"additionalProperties": false,
		"properties": {
			"n": {"type": "integer", "minimum": 1},
			"tags": {"type": "array", "items": {"type": "string"}},
			"kind": {"enum": ["a", "b"]}
		}
	}`)
	ok := func(doc string) error { return ValidateSchema(schema, []byte(doc)) }
	if err := ok(`{"n": 3, "tags": ["x"], "kind": "a"}`); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	for name, doc := range map[string]string{
		"missing required":      `{"n": 3}`,
		"wrong type":            `{"n": "three", "tags": []}`,
		"non-integer":           `{"n": 3.5, "tags": []}`,
		"below minimum":         `{"n": 0, "tags": []}`,
		"bad item type":         `{"n": 1, "tags": [4]}`,
		"additional property":   `{"n": 1, "tags": [], "extra": true}`,
		"enum violation":        `{"n": 1, "tags": [], "kind": "c"}`,
		"not json":              `{`,
		"wrong top-level shape": `[1, 2]`,
	} {
		if err := ok(doc); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}
