//go:build !unix

package obs

// processCPUNs is unavailable off unix; spans record wall time only.
func processCPUNs() int64 { return 0 }
