package obs

import (
	"bytes"
	"testing"
	"time"
)

// wireTestRegistry builds a registry shaped like the core fleet metrics:
// a few counters and histograms with registered IDs.
func wireTestRegistry() (*Registry, []CounterID, []HistID) {
	r := NewRegistry()
	cids := []CounterID{
		r.Counter("fbdcnet_fleet_flow_attempts_total", "offered flows"),
		r.Counter("fbdcnet_fleet_records_total", "sampled records"),
		r.Counter("fbdcnet_fleet_matrix_cells_total", "matrix cells"),
	}
	hids := []HistID{
		r.Histogram("fbdcnet_fleet_shard_us", "per-shard wall micros"),
		r.Histogram("fbdcnet_merge_bytes", "merge sizes"),
	}
	return r, cids, hids
}

func fillShard(sh *Shard, cids []CounterID, hids []HistID, salt int64) {
	sh.Add(cids[0], 100+salt)
	sh.Add(cids[1], 40+salt)
	// cids[2] stays zero: zero slots must not appear on the wire.
	sh.Observe(hids[0], 17+salt)
	sh.Observe(hids[0], 1200+salt)
	sh.Observe(hids[1], 1<<20)
}

func TestDeltaRoundTrip(t *testing.T) {
	src, cids, hids := wireTestRegistry()
	sh := src.NewShard()
	fillShard(sh, cids, hids, 3)

	buf := sh.AppendDelta(nil)
	sh.Fold()

	dst, _, _ := wireTestRegistry()
	var d Delta
	if err := d.Decode(buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(d.Counters) != 2 {
		t.Fatalf("decoded %d counters, want 2 (zero slots must be skipped)", len(d.Counters))
	}
	dst.FoldDelta(&d)

	for _, name := range []string{"fbdcnet_fleet_flow_attempts_total", "fbdcnet_fleet_records_total", "fbdcnet_fleet_matrix_cells_total"} {
		if got, want := dst.CounterValue(name), src.CounterValue(name); got != want {
			t.Errorf("counter %s: folded %d, source %d", name, got, want)
		}
	}
	for _, name := range []string{"fbdcnet_fleet_shard_us", "fbdcnet_merge_bytes"} {
		if got, want := dst.HistogramCount(name), src.HistogramCount(name); got != want {
			t.Errorf("histogram %s: folded count %d, source %d", name, got, want)
		}
	}
	// The exposition must agree too — buckets and sums fold exactly.
	if got, want := dst.PrometheusText(), src.PrometheusText(); got != want {
		t.Errorf("federated exposition differs from source:\n--- got\n%s\n--- want\n%s", got, want)
	}
}

func TestDeltaFoldRegistersUnknownNames(t *testing.T) {
	src, cids, hids := wireTestRegistry()
	sh := src.NewShard()
	fillShard(sh, cids, hids, 0)
	buf := sh.AppendDelta(nil)

	dst := NewRegistry() // empty: every folded name is new
	var d Delta
	if err := d.Decode(buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	dst.FoldDelta(&d)
	if got := dst.CounterValue("fbdcnet_fleet_flow_attempts_total"); got != 100 {
		t.Errorf("lazily registered counter = %d, want 100", got)
	}
	if got := dst.HistogramCount("fbdcnet_fleet_shard_us"); got != 2 {
		t.Errorf("lazily registered histogram count = %d, want 2", got)
	}
}

func TestDeltaDecodeRejectsMalformed(t *testing.T) {
	src, cids, hids := wireTestRegistry()
	sh := src.NewShard()
	fillShard(sh, cids, hids, 0)
	valid := sh.AppendDelta(nil)

	var d Delta
	cases := map[string][]byte{
		"empty":          {},
		"bad version":    {99},
		"truncated":      valid[:len(valid)-3],
		"trailing bytes": append(append([]byte{}, valid...), 0xFF),
		"huge count":     {obsWireVersion, 0xFF, 0xFF},
	}
	for name, data := range cases {
		if err := d.Decode(data); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
	// Every truncation point must error, never panic.
	for i := 0; i < len(valid); i++ {
		if err := d.Decode(valid[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if err := d.Decode(valid); err != nil {
		t.Fatalf("valid payload rejected after malformed runs: %v", err)
	}
}

func TestAgentReportRoundTrip(t *testing.T) {
	r, cids, hids := wireTestRegistry()
	sh := r.NewShard()
	fillShard(sh, cids, hids, 0)
	sh.Fold()
	r.SetGauge("fbdcnet_agent_0_tx_bytes", 12345)
	r.Count(Series("fbdcnet_x_total", "arm", "a"), 7)
	sp := r.StartSpan("fleet-agent-0")
	time.Sleep(time.Millisecond)
	sp.End()
	r.RecordSpanAt("conn", time.Now().Add(-time.Second), time.Now())

	buf := r.AppendReport(nil, 4, 2)
	var rep AgentReport
	if err := DecodeReport(buf, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.AgentID != 4 || rep.Incarnation != 2 {
		t.Errorf("identity = (%d, %d), want (4, 2)", rep.AgentID, rep.Incarnation)
	}
	if rep.StartUnixNs != r.Start().UnixNano() {
		t.Errorf("start = %d, want %d", rep.StartUnixNs, r.Start().UnixNano())
	}
	gauges := map[string]float64{}
	for _, g := range rep.Gauges {
		gauges[g.Name] = g.V
	}
	if gauges["fbdcnet_agent_0_tx_bytes"] != 12345 {
		t.Errorf("gauge not carried: %v", gauges)
	}
	series := map[string]float64{}
	for _, s := range rep.Series {
		series[s.Name] = s.V
	}
	if series[Series("fbdcnet_x_total", "arm", "a")] != 7 {
		t.Errorf("series not carried: %v", series)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(rep.Stages))
	}
	if len(rep.Events) != 2 {
		t.Fatalf("events = %d, want 2 (span End + RecordSpanAt)", len(rep.Events))
	}
	for _, ev := range rep.Events {
		if ev.EndNs < ev.StartNs {
			t.Errorf("event %s ends before start", ev.Name)
		}
	}
	// Malformed report payloads error, never panic.
	for i := 0; i < len(buf); i += 3 {
		if err := DecodeReport(buf[:i], &rep); err == nil {
			t.Errorf("report truncation at %d accepted", i)
		}
	}
}

func TestSpanEventLedgerBounded(t *testing.T) {
	r := NewRegistry()
	now := time.Now()
	for i := 0; i < maxSpanEvents+100; i++ {
		r.RecordSpanAt("x", now, now)
	}
	evs, dropped := r.SpanEvents()
	if len(evs) != maxSpanEvents {
		t.Errorf("ledger holds %d events, cap %d", len(evs), maxSpanEvents)
	}
	if dropped != 100 {
		t.Errorf("dropped = %d, want 100", dropped)
	}
}

// TestObsWireSteadyStateAllocs pins the snapshot-and-send path at zero
// allocations per cell: encode from a warm shard into a reused buffer,
// decode into a reused Delta, fold into a warm registry.
func TestObsWireSteadyStateAllocs(t *testing.T) {
	src, cids, hids := wireTestRegistry()
	sh := src.NewShard()
	dst, _, _ := wireTestRegistry()
	var d Delta
	var buf []byte
	// Warm every lazy capacity before measuring.
	fillShard(sh, cids, hids, 1)
	buf = sh.AppendDelta(buf[:0])
	sh.Fold()
	if err := d.Decode(buf); err != nil {
		t.Fatal(err)
	}
	dst.FoldDelta(&d)

	if n := testing.AllocsPerRun(200, func() {
		fillShard(sh, cids, hids, 1)
		buf = sh.AppendDelta(buf[:0])
		sh.Fold()
	}); n != 0 {
		t.Errorf("encode path allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := d.Decode(buf); err != nil {
			t.Fatal(err)
		}
		dst.FoldDelta(&d)
	}); n != 0 {
		t.Errorf("decode+fold path allocates %.1f/op, want 0", n)
	}
}

func TestNilShardAppendsNothing(t *testing.T) {
	var sh *Shard
	buf := []byte("seed")[:0]
	out := sh.AppendDelta(buf)
	if len(out) != 0 {
		t.Errorf("nil shard appended %d bytes", len(out))
	}
	var r *Registry
	rep := r.AppendReport(nil, 1, 0)
	var decoded AgentReport
	if err := DecodeReport(rep, &decoded); err != nil {
		t.Fatalf("nil-registry report must still decode: %v", err)
	}
	if len(decoded.Gauges)+len(decoded.Series)+len(decoded.Stages)+len(decoded.Events) != 0 {
		t.Errorf("nil-registry report not empty: %+v", decoded)
	}
	if !bytes.Equal(out, []byte{}) && out != nil {
		t.Errorf("unexpected buffer state")
	}
}
