// Package openhash is a small open-addressing hash table keyed by packed
// uint64 keys, built for the hot packet-analysis loops. Compared to a Go
// map[struct]V it avoids per-operation hashing of composite keys, never
// allocates on the lookup path, and — crucially for windowed analyses —
// can be Reset and refilled without releasing its backing arrays, so a
// steady-state bin roll performs zero allocations.
//
// Tables remember insertion order: Range visits entries in the order their
// keys were first seen, which keeps replay-order-dependent consumers
// deterministic without a sort.
//
// The key value ^uint64(0) is reserved as the empty-slot sentinel; every
// packed-key layout in this repo leaves at least one high bit clear, so
// the sentinel is unreachable.
package openhash

// sentinel marks an empty slot. No packed key produced by this repo can
// equal it (all layouts keep the top bits below 2^63).
const sentinel = ^uint64(0)

// Table is an open-addressing map from packed uint64 keys to V.
// The zero value is ready to use.
type Table[V any] struct {
	keys  []uint64 // slot -> key, or sentinel
	vals  []V      // slot -> value, parallel to keys
	used  []int32  // slots in insertion order
	mask  uint64   // len(keys)-1
	grows int32    // cumulative grow() calls, for observability
}

// hash finalizes a packed key (splitmix64 finalizer): packed keys are
// bit-fields whose low bits barely vary, so identity hashing would cluster.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Len reports the number of live entries.
func (t *Table[V]) Len() int { return len(t.used) }

// Get returns a pointer to the value stored under k, or nil when absent.
// The pointer is invalidated by the next Slot that grows the table.
func (t *Table[V]) Get(k uint64) *V {
	if len(t.keys) == 0 {
		return nil
	}
	for i := hash(k) & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return &t.vals[i]
		case sentinel:
			return nil
		}
	}
}

// Slot returns a pointer to the value stored under k, inserting a zero
// value first when absent. The pointer is invalidated by the next Slot
// that grows the table; callers must not retain it across insertions.
func (t *Table[V]) Slot(k uint64) *V {
	if len(t.used) >= len(t.keys)-len(t.keys)>>2 { // load factor 3/4
		t.grow()
	}
	for i := hash(k) & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return &t.vals[i]
		case sentinel:
			t.keys[i] = k
			t.used = append(t.used, int32(i))
			return &t.vals[i]
		}
	}
}

// grow doubles the slot arrays and rehashes, preserving insertion order.
func (t *Table[V]) grow() {
	t.grows++
	n := 2 * len(t.keys)
	if n < 16 {
		n = 16
	}
	ok, ov, ou := t.keys, t.vals, t.used
	t.keys = make([]uint64, n)
	t.vals = make([]V, n)
	t.used = make([]int32, 0, n-n>>2)
	t.mask = uint64(n - 1)
	for i := range t.keys {
		t.keys[i] = sentinel
	}
	for _, s := range ou {
		k := ok[s]
		for i := hash(k) & t.mask; ; i = (i + 1) & t.mask {
			if t.keys[i] == sentinel {
				t.keys[i] = k
				t.vals[i] = ov[s]
				t.used = append(t.used, int32(i))
				break
			}
		}
	}
}

// Reset empties the table without releasing its backing arrays: only the
// slots actually used are cleared, so resetting a sparsely filled large
// table is proportional to its entry count, not its capacity.
func (t *Table[V]) Reset() {
	var zero V
	for _, s := range t.used {
		t.keys[s] = sentinel
		t.vals[s] = zero
	}
	t.used = t.used[:0]
}

// Range calls f for every entry in insertion order. f must not insert.
func (t *Table[V]) Range(f func(k uint64, v *V)) {
	for _, s := range t.used {
		f(t.keys[s], &t.vals[s])
	}
}

// Cap returns the current slot-array capacity (0 before first insert).
func (t *Table[V]) Cap() int { return len(t.keys) }

// Grows returns how many times the table has rehashed since creation —
// Reset keeps the count, so it reflects lifetime churn, the number the
// observability layer reports to spot under-sized steady-state tables.
func (t *Table[V]) Grows() int { return int(t.grows) }

// Key returns the i'th inserted key, 0 <= i < Len().
func (t *Table[V]) Key(i int) uint64 { return t.keys[t.used[i]] }

// Val returns a pointer to the i'th inserted value, 0 <= i < Len().
func (t *Table[V]) Val(i int) *V { return &t.vals[t.used[i]] }
