package openhash

import (
	"math/rand"
	"testing"
)

func TestTableBasics(t *testing.T) {
	var tb Table[int]
	if tb.Len() != 0 || tb.Get(7) != nil {
		t.Fatal("zero table should be empty")
	}
	*tb.Slot(7) = 70
	*tb.Slot(9) = 90
	*tb.Slot(7) += 1
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if v := tb.Get(7); v == nil || *v != 71 {
		t.Fatalf("Get(7) = %v, want 71", v)
	}
	if v := tb.Get(9); v == nil || *v != 90 {
		t.Fatalf("Get(9) = %v, want 90", v)
	}
	if tb.Get(8) != nil {
		t.Fatal("Get(8) should miss")
	}
}

func TestTableAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var tb Table[uint64]
	ref := map[uint64]uint64{}
	var order []uint64
	for i := 0; i < 20000; i++ {
		k := uint64(r.Intn(4096)) // force plenty of collisions and hits
		if _, ok := ref[k]; !ok {
			order = append(order, k)
		}
		ref[k] += k + 1
		*tb.Slot(k) += k + 1
	}
	if tb.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(ref))
	}
	for k, want := range ref {
		if v := tb.Get(k); v == nil || *v != want {
			t.Fatalf("Get(%d) = %v, want %d", k, v, want)
		}
	}
	// Insertion order must survive growth.
	i := 0
	tb.Range(func(k uint64, v *uint64) {
		if k != order[i] {
			t.Fatalf("Range[%d] key = %d, want %d", i, k, order[i])
		}
		if *v != ref[k] {
			t.Fatalf("Range[%d] val = %d, want %d", i, *v, ref[k])
		}
		if tb.Key(i) != k || tb.Val(i) != v {
			t.Fatalf("Key/Val(%d) disagree with Range", i)
		}
		i++
	})
	if i != len(order) {
		t.Fatalf("Range visited %d entries, want %d", i, len(order))
	}
}

func TestTableReset(t *testing.T) {
	var tb Table[float64]
	for k := uint64(0); k < 1000; k++ {
		*tb.Slot(k) = float64(k)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tb.Len())
	}
	for k := uint64(0); k < 1000; k++ {
		if tb.Get(k) != nil {
			t.Fatalf("Get(%d) should miss after Reset", k)
		}
	}
	// Refill must not allocate: capacity is retained.
	allocs := testing.AllocsPerRun(10, func() {
		tb.Reset()
		for k := uint64(0); k < 1000; k++ {
			*tb.Slot(k) = 1
		}
	})
	if allocs != 0 {
		t.Fatalf("refill after Reset allocated %.1f times", allocs)
	}
	if v := tb.Get(999); v == nil || *v != 1 {
		t.Fatal("refilled value missing")
	}
}

func TestTableHighBitKeys(t *testing.T) {
	var tb Table[int]
	keys := []uint64{0, 1, 1 << 62, (1 << 63) - 1, 0x7ffffffffffffffe}
	for i, k := range keys {
		*tb.Slot(k) = i + 1
	}
	for i, k := range keys {
		if v := tb.Get(k); v == nil || *v != i+1 {
			t.Fatalf("Get(%#x) = %v, want %d", k, v, i+1)
		}
	}
}
