package sketcherr

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"fbdcnet/internal/topology"
)

// testConfig returns the harness config, honoring SKETCHERR_SCALE so the
// CI sketch-accuracy job can re-run the same assertions at -scale large
// without a separate test body.
func testConfig(t *testing.T) Config {
	cfg := DefaultConfig()
	if s := os.Getenv("SKETCHERR_SCALE"); s != "" {
		sc, ok := topology.ParseScale(s)
		if !ok {
			t.Fatalf("SKETCHERR_SCALE=%q is not a known scale", s)
		}
		cfg.Scale = sc
	}
	return cfg
}

// TestSketchErrBounds is the acceptance gate: the dual run must stay
// inside the Default error bounds on every window. The memory-ratio
// clause only binds at large scale (the CI sketch-accuracy job) — at
// small and medium scale the exact tables have not outgrown the fixed
// sketch state, so the ratio is not yet meaningful.
func TestSketchErrBounds(t *testing.T) {
	cfg := testConfig(t)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets == 0 {
		t.Fatal("dual run saw no packets")
	}
	if len(rep.Windows) == 0 {
		t.Fatal("dual run produced no windows")
	}
	bounds := Default()
	if cfg.Scale < topology.ScaleLarge {
		bounds.MemRatioMin = 0
	}
	t.Logf("windows=%d packets=%d maxRankErr=%.4f maxHLLErr=%.4f maxDrift=%.4f memRatio=%.2f (exact %d B, sketch %d B)",
		len(rep.Windows), rep.Packets, rep.MaxHHRankErr(), rep.MaxHLLRelErr(),
		rep.MaxQuantileDrift(), rep.MemRatio, rep.ExactBytes, rep.SketchBytes)
	if err := rep.Check(bounds); err != nil {
		t.Fatal(err)
	}
}

// TestSketchErrDeterministic pins the harness itself: the same config
// must reproduce the identical report, windows and all — both pipelines
// are pure functions of the rng stream.
func TestSketchErrDeterministic(t *testing.T) {
	cfg := testConfig(t)
	cfg.Seconds = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Packets != b.Packets {
		t.Fatalf("packet counts differ: %d vs %d", a.Packets, b.Packets)
	}
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Fatalf("window reports differ:\n%+v\n%+v", a.Windows, b.Windows)
	}
}

// TestCheckReportsEveryViolation exercises the bound checker on a
// synthetic report breaking all four clauses at once.
func TestCheckReportsEveryViolation(t *testing.T) {
	rep := &Report{
		Windows: []WindowErr{{
			Window:        0,
			HHRankErr:     0.5,
			HLLRelErr:     0.5,
			QuantileDrift: 0.5,
		}},
		ExactBytes:  100,
		SketchBytes: 100,
		MemRatio:    1,
	}
	err := rep.Check(Default())
	if err == nil {
		t.Fatal("expected violations")
	}
	for _, want := range []string{"HH rank error", "HLL relative error", "quantile drift", "memory ratio"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing clause %q", err, want)
		}
	}
	if ok := rep.Check(Bounds{HHRankErr: 1, HLLRelErr: 1, QuantileDrift: 1}); ok != nil {
		t.Errorf("permissive bounds should pass, got %v", ok)
	}
}

// BenchmarkSketchErr publishes the accuracy and memory metrics to the
// benchdiff gate: each is reported so that an increase is a regression,
// letting BENCH_PR7.json pin accuracy the way other baselines pin speed.
func BenchmarkSketchErr(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Seconds = 5
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The rank error is offset by one: benchdiff skips zero baselines, and
	// the current error is exactly zero — 1+pct keeps it gated (any future
	// nonzero error is an immediate >25% increase).
	b.ReportMetric(1+rep.MaxHHRankErr()*100, "one-plus-rank-err-pct")
	b.ReportMetric(rep.MaxHLLRelErr()*100, "hll-err-pct")
	b.ReportMetric(rep.MaxQuantileDrift()*100, "drift-pct")
	// Inverted so that growth of the sketch footprint (or shrinkage of the
	// advantage) reads as an increase.
	if rep.MemRatio > 0 {
		b.ReportMetric(1/rep.MemRatio, "sketch-mem-frac")
	}
}
