// Package sketcherr is the conformance harness of sketch mode: it runs
// the exact and sketch analysis pipelines over the identical packet
// stream (same rng seeds, same generator) and scores the sketch side
// against declared per-window error bounds — heavy-hitter rank error,
// HLL distinct-count relative error, and t-digest quantile drift — plus
// the memory contract (fixed sketch footprint vs the exact tables'
// population-proportional one).
//
// It is both a go test suite (sketcherr_test.go asserts Default bounds
// at small scale; CI's sketch-accuracy job re-runs it at -scale large)
// and a benchdiff-gated report (BenchmarkSketchErr reports each error
// metric, baselined in BENCH_PR7.json, so accuracy regressions fail the
// bench gate like performance regressions do).
package sketcherr

import (
	"fmt"
	"math"
	"slices"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/core"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/services"
	"fbdcnet/internal/sketch"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// Bounds are the per-window error ceilings the harness enforces.
type Bounds struct {
	// HHRankErr is the maximum fraction of a bin's exact heavy-hitter set
	// missing from the sketch heavy-hitter set, averaged per window.
	HHRankErr float64
	// HLLRelErr is the maximum relative error of the per-window distinct
	// flow count estimate.
	HLLRelErr float64
	// QuantileDrift is the maximum |sketch − exact| quantile difference as
	// a fraction of the window's observed value range, over the probe
	// quantiles.
	QuantileDrift float64
	// MemRatioMin, when positive, requires exact/sketch tracker memory of
	// at least this ratio (asserted at scales where the exact tables have
	// grown; meaningless at tiny scale, where fixed sketch state dominates).
	MemRatioMin float64
}

// Default returns the bounds the acceptance criteria pin: ≤1% heavy-
// hitter rank error, HLL within 3 standard errors of its precision, 5%
// t-digest drift, and ≥2× memory advantage where MemRatioMin is applied.
func Default() Bounds {
	return Bounds{
		HHRankErr:     0.01,
		HLLRelErr:     3 * 1.04 / math.Sqrt(1<<12),
		QuantileDrift: 0.05,
		MemRatioMin:   2,
	}
}

// Config selects the dual run's workload.
type Config struct {
	Scale   topology.Scale
	Seed    uint64
	Seconds int         // trace duration; one report window per second
	Bin     netsim.Time // heavy-hitter bin width
	Role    topology.Role
}

// DefaultConfig returns a small-scale dual run: 10 seconds of a web
// host's mirror trace, 10-ms heavy-hitter bins.
func DefaultConfig() Config {
	return Config{
		Scale:   topology.ScaleSmall,
		Seed:    42,
		Seconds: 10,
		Bin:     10 * netsim.Millisecond,
		Role:    topology.RoleWeb,
	}
}

// WindowErr scores one window (one second) of the dual run.
type WindowErr struct {
	Window        int
	Bins          int     // non-empty heavy-hitter bins in the window
	HHRankErr     float64 // mean per-bin rank error
	ExactDistinct int     // exact distinct flows
	HLLDistinct   float64 // HLL estimate
	HLLRelErr     float64
	QuantileDrift float64 // max over probe quantiles, fraction of range
}

// Report is the outcome of one dual run.
type Report struct {
	Cfg     Config
	Windows []WindowErr
	// Packets processed (sanity: both pipelines saw the same stream).
	Packets int64
	// Analysis-table memory after the run, summed over the real
	// analysis.HeavyTracker pair at every aggregation level: the exact
	// trackers' tables grow with the key population, the sketch trackers'
	// state is fixed at construction.
	ExactBytes  int
	SketchBytes int
	MemRatio    float64
}

// MaxHHRankErr returns the worst per-window rank error.
func (r *Report) MaxHHRankErr() float64 {
	m := 0.0
	for _, w := range r.Windows {
		m = math.Max(m, w.HHRankErr)
	}
	return m
}

// MaxHLLRelErr returns the worst per-window distinct-count error.
func (r *Report) MaxHLLRelErr() float64 {
	m := 0.0
	for _, w := range r.Windows {
		m = math.Max(m, w.HLLRelErr)
	}
	return m
}

// MaxQuantileDrift returns the worst per-window quantile drift.
func (r *Report) MaxQuantileDrift() float64 {
	m := 0.0
	for _, w := range r.Windows {
		m = math.Max(m, w.QuantileDrift)
	}
	return m
}

// Check asserts every window against b and the memory contract; the
// returned error lists every violation.
func (r *Report) Check(b Bounds) error {
	var errs []string
	for _, w := range r.Windows {
		if w.HHRankErr > b.HHRankErr {
			errs = append(errs, fmt.Sprintf(
				"window %d: HH rank error %.4f exceeds bound %.4f", w.Window, w.HHRankErr, b.HHRankErr))
		}
		if w.HLLRelErr > b.HLLRelErr {
			errs = append(errs, fmt.Sprintf(
				"window %d: HLL relative error %.4f exceeds bound %.4f", w.Window, w.HLLRelErr, b.HLLRelErr))
		}
		if w.QuantileDrift > b.QuantileDrift {
			errs = append(errs, fmt.Sprintf(
				"window %d: quantile drift %.4f exceeds bound %.4f", w.Window, w.QuantileDrift, b.QuantileDrift))
		}
	}
	if b.MemRatioMin > 0 && r.MemRatio < b.MemRatioMin {
		errs = append(errs, fmt.Sprintf(
			"memory ratio exact/sketch %.2f below required %.2f (exact %d B, sketch %d B)",
			r.MemRatio, b.MemRatioMin, r.ExactBytes, r.SketchBytes))
	}
	if len(errs) == 0 {
		return nil
	}
	msg := errs[0]
	for _, e := range errs[1:] {
		msg += "; " + e
	}
	return fmt.Errorf("sketcherr: %s", msg)
}

// Run executes the dual pipeline and scores it: the error duals see the
// stream through the harness's own accumulators, while a full exact and
// sketch tracker pair at every aggregation level measures the memory
// contract on the real analysis implementations.
func Run(cfg Config) (*Report, error) {
	sys, err := core.NewSystem(core.Config{
		Scale:  cfg.Scale,
		Seed:   cfg.Seed,
		Params: services.DefaultParams(),
	})
	if err != nil {
		return nil, err
	}
	host := sys.Monitored(cfg.Role)
	d := newDual(sys.Topo.Addr(host), cfg.Bin)
	sinks := workload.Fanout{d}
	var exacts, sketches []analysis.HeavyTracker
	for _, lvl := range []analysis.Level{analysis.LevelFlow, analysis.LevelHost, analysis.LevelRack} {
		e := analysis.NewHeavyTracker(sys.Topo, host, lvl, cfg.Bin, false)
		sk := analysis.NewHeavyTracker(sys.Topo, host, lvl, cfg.Bin, true)
		exacts, sketches = append(exacts, e), append(sketches, sk)
		sinks = append(sinks, e, sk)
	}
	tr := services.NewTrace(sys.Pick, host, cfg.Seed^uint64(cfg.Role)<<8^uint64(cfg.Seconds),
		sys.Cfg.Params, sinks)
	tr.Run(netsim.Time(cfg.Seconds) * netsim.Second)
	d.finish()
	rep := &Report{
		Cfg:     cfg,
		Windows: d.windows,
		Packets: d.packets,
	}
	for i := range exacts {
		exacts[i].Finish()
		sketches[i].Finish()
		rep.ExactBytes += exacts[i].MemoryBytes()
		rep.SketchBytes += sketches[i].MemoryBytes()
	}
	if rep.SketchBytes > 0 {
		rep.MemRatio = float64(rep.ExactBytes) / float64(rep.SketchBytes)
	}
	return rep, nil
}

// probeQuantiles are where the size digest is compared to the exact
// sample.
var probeQuantiles = [...]float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}

// dual feeds each outbound packet of the monitored host into the exact
// accumulators and their sketch counterparts, scoring them against each
// other at bin and second rolls. Keys are packed flow identities (same
// fields the analysis layer packs).
type dual struct {
	addr packet.Addr
	bin  netsim.Time

	packets int64

	// Per-bin heavy-hitter dual: exact table vs space-saving + count-min.
	exact  openhash.Table[int64]
	ss     *sketch.SpaceSaving
	cm     *sketch.CountMin
	curBin int64

	// Per-window (second) duals: distinct flows and size quantiles.
	seen  openhash.Table[int64] // exact distinct flow keys this window
	hll   *sketch.HLL
	sizes *stats.Sample
	td    *sketch.TDigest
	secNo int64

	// Window accumulation.
	bins       int
	rankErrSum float64
	windows    []WindowErr

	scratch []hhItem
	top     []sketch.Entry
	sketchS map[uint64]struct{}
}

type hhItem struct {
	k uint64
	v int64
}

func newDual(addr packet.Addr, bin netsim.Time) *dual {
	// The error dual runs at exactly the dimensions the analysis layer
	// deploys, so the bounds proven here transfer to sketch mode proper.
	ssCap, cmWidth := analysis.SketchDims(analysis.LevelFlow)
	return &dual{
		addr:    addr,
		bin:     bin,
		ss:      sketch.NewSpaceSaving(ssCap),
		cm:      sketch.NewCountMin(4, cmWidth),
		hll:     sketch.NewHLL(12),
		sizes:   stats.NewSample(0),
		td:      sketch.NewTDigest(100),
		sketchS: make(map[uint64]struct{}, ssCap),
	}
}

// packKey packs the flow identity the way analysis does (dst, ports,
// proto — src is fixed to the monitored host).
func packKey(k packet.FlowKey) uint64 {
	proto := uint64(0)
	if k.Proto != packet.TCP {
		proto = 1
	}
	return uint64(k.Dst)<<33 | uint64(k.SrcPort)<<17 | uint64(k.DstPort)<<1 | proto
}

// Packet implements the collector interface.
func (d *dual) Packet(h packet.Header) {
	if h.Key.Src != d.addr {
		return
	}
	binNo := h.Time / int64(d.bin)
	if binNo != d.curBin {
		d.rollBin(binNo)
	}
	secNo := h.Time / int64(netsim.Second)
	if secNo != d.secNo {
		d.rollWindow(secNo)
	}
	d.packets++
	k := packKey(h.Key)
	size := int64(h.Size)
	*d.exact.Slot(k) += size
	d.ss.Update(k, size)
	d.cm.Add(k, size)
	*d.seen.Slot(k) = 1
	d.hll.Add(k)
	d.sizes.Add(float64(h.Size))
	d.td.Add(float64(h.Size), 1)
}

// Packets implements the batch collector interface.
func (d *dual) Packets(hs []packet.Header) {
	for _, h := range hs {
		d.Packet(h)
	}
}

// heavySet extracts the exact heavy prefix (bytes desc, key asc, minimum
// prefix covering HeavyFrac of total) into d.scratch and returns its
// length.
func (d *dual) heavySet() int {
	items := d.scratch[:0]
	var total int64
	for i, n := 0, d.exact.Len(); i < n; i++ {
		v := *d.exact.Val(i)
		items = append(items, hhItem{d.exact.Key(i), v})
		total += v
	}
	d.scratch = items
	slices.SortFunc(items, func(a, b hhItem) int {
		if a.v != b.v {
			if a.v > b.v {
				return -1
			}
			return 1
		}
		if a.k < b.k {
			return -1
		}
		return 1
	})
	var acc int64
	m := 0
	for _, it := range items {
		m++
		acc += it.v
		if float64(acc) >= analysis.HeavyFrac*float64(total) {
			break
		}
	}
	return m
}

// rollBin scores the finished bin: the fraction of the exact heavy set
// absent from the sketch heavy set (rank/membership error).
func (d *dual) rollBin(next int64) {
	if d.exact.Len() > 0 {
		m := d.heavySet()

		// Sketch heavy set from the space-saving candidates with count-min
		// refinement — the same extraction analysis.SketchHeavyHitters runs.
		d.top = d.ss.Top(d.top[:0])
		type se struct {
			k   uint64
			est int64
		}
		ests := make([]se, 0, len(d.top))
		for _, e := range d.top {
			est := e.Count
			if c := d.cm.Estimate(e.Key); c < est {
				est = c
			}
			ests = append(ests, se{e.Key, est})
		}
		slices.SortFunc(ests, func(a, b se) int {
			if a.est != b.est {
				if a.est > b.est {
					return -1
				}
				return 1
			}
			if a.k < b.k {
				return -1
			}
			return 1
		})
		total := float64(d.ss.Total())
		clear(d.sketchS)
		acc := 0.0
		for _, e := range ests {
			d.sketchS[e.k] = struct{}{}
			acc += float64(e.est)
			if acc >= analysis.HeavyFrac*total {
				break
			}
		}
		missing := 0
		for i := 0; i < m; i++ {
			if _, ok := d.sketchS[d.scratch[i].k]; !ok {
				missing++
			}
		}
		d.rankErrSum += float64(missing) / float64(m)
		d.bins++

		d.exact.Reset()
		d.ss.Reset()
		d.cm.Reset()
	}
	d.curBin = next
}

// rollWindow closes one report window: distinct-count error and size
// quantile drift, plus the window's accumulated rank error.
func (d *dual) rollWindow(next int64) {
	if d.seen.Len() > 0 {
		w := WindowErr{
			Window:        int(d.secNo),
			Bins:          d.bins,
			ExactDistinct: d.seen.Len(),
			HLLDistinct:   d.hll.Estimate(),
		}
		if d.bins > 0 {
			w.HHRankErr = d.rankErrSum / float64(d.bins)
		}
		w.HLLRelErr = math.Abs(w.HLLDistinct-float64(w.ExactDistinct)) / float64(w.ExactDistinct)
		lo, hi := d.sizes.Quantile(0), d.sizes.Quantile(1)
		if span := hi - lo; span > 0 {
			for _, q := range probeQuantiles {
				drift := math.Abs(d.td.Quantile(q)-d.sizes.Quantile(q)) / span
				w.QuantileDrift = math.Max(w.QuantileDrift, drift)
			}
		}
		d.windows = append(d.windows, w)
	}
	d.seen.Reset()
	d.hll.Reset()
	d.sizes = stats.NewSample(0)
	d.td.Reset()
	d.bins = 0
	d.rankErrSum = 0
	d.secNo = next
}

// finish flushes the last open bin and window.
func (d *dual) finish() {
	d.rollBin(d.curBin + 1)
	d.rollWindow(d.secNo + 1)
}
