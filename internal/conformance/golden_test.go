package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fbdcnet/internal/core"
)

// goldenPath is the checked-in transcript of the full experiment suite,
// the exact output of `go run ./cmd/experiments` at the reference
// configuration.
var goldenPath = filepath.Join("..", "..", "experiments_output.txt")

var (
	// Section timings and the prewarm summary depend on the machine, not
	// the model; scrub them before comparing.
	timingRe  = regexp.MustCompile(`\([0-9]+\.[0-9]+s\)`)
	prewarmRe = regexp.MustCompile(`^prewarmed datasets on [0-9]+ workers in [0-9]+\.[0-9]+s$`)
)

// normalizeSuite strips machine-dependent timing from a suite transcript.
func normalizeSuite(s string) []string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, line := range lines {
		if prewarmRe.MatchString(line) {
			lines[i] = "prewarmed datasets on N workers in Xs"
			continue
		}
		lines[i] = timingRe.ReplaceAllString(line, "(Xs)")
	}
	return lines
}

// TestGoldenSuite regenerates the full experiment suite through the same
// code path cmd/experiments uses and diffs it line by line against the
// checked-in transcript. Any numeric drift in any table or figure fails
// with the exact lines that moved.
func TestGoldenSuite(t *testing.T) {
	skipIfHeavyDisallowed(t)
	var buf bytes.Buffer
	if ran := core.WriteSuite(&buf, System(), ""); ran == 0 {
		t.Fatal("suite ran no sections")
	}

	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d bytes", goldenPath, buf.Len())
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/conformance -update` to record)", err)
	}
	got := normalizeSuite(buf.String())
	exp := normalizeSuite(string(want))

	// Per-line diff: report every divergence with context, capped so a
	// wholesale format change doesn't flood the log.
	const maxReported = 40
	reported := 0
	n := len(got)
	if len(exp) > n {
		n = len(exp)
	}
	for i := 0; i < n && reported < maxReported; i++ {
		g, e := "", ""
		if i < len(got) {
			g = got[i]
		}
		if i < len(exp) {
			e = exp[i]
		}
		if g != e {
			t.Errorf("line %d:\n  golden: %s\n  got:    %s", i+1, e, g)
			reported++
		}
	}
	if reported == maxReported {
		t.Errorf("... more differences suppressed after %d lines", maxReported)
	}
	if len(got) != len(exp) {
		t.Errorf("suite output is %d lines, golden is %d", len(got), len(exp))
	}
	if t.Failed() {
		t.Log("if the change is intentional, re-record with `go test ./internal/conformance -update` and review the diff")
	}
}

// TestNormalizeSuite pins the timing scrubber itself so a format change
// in WriteSuite can't silently turn the golden diff into a no-op.
func TestNormalizeSuite(t *testing.T) {
	in := "header line\n\nprewarmed datasets on 4 workers in 12.3s\n\n=== table2 (1.4s) ===\nbody (not a timing)\n"
	got := normalizeSuite(in)
	want := []string{
		"header line",
		"",
		"prewarmed datasets on N workers in Xs",
		"",
		"=== table2 (Xs) ===",
		"body (not a timing)",
	}
	if len(got) != len(want) {
		t.Fatalf("normalized to %d lines, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i+1, got[i], want[i])
		}
	}
}
