// Package conformance is the paper-conformance harness: it regenerates
// the reproduction's tables and headline figure statistics at a fixed
// reference configuration and asserts each one stays inside a checked-in
// tolerance band (conformance.json), and that the rendered experiment
// suite matches the checked-in golden transcript (experiments_output.txt)
// line for line.
//
// Tolerance methodology: every metric records the reference value of the
// conformance run plus an allowed deviation — absolute for shares and
// fractions (which live in [0,1] and where relative error explodes near
// zero), relative for scale-ful statistics (byte counts, microsecond
// gaps, medians). Bands are wide enough to admit deliberate,
// distribution-preserving model changes (e.g. re-keying an rng stream)
// and tight enough to catch a broken analysis or a workload model drift.
// Regenerate the bands with `go test ./internal/conformance -update`
// after an intentional change, and review the diff like any other golden.
package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"fbdcnet/internal/core"
	"fbdcnet/internal/topology"
)

// Band is one metric's tolerance: the recorded reference value and the
// allowed deviation, absolute and/or relative. A measurement g conforms
// when |g - Value| <= Abs + Rel*|Value|.
type Band struct {
	Value float64 `json:"value"`
	Abs   float64 `json:"abs,omitempty"`
	Rel   float64 `json:"rel,omitempty"`
}

// Within reports whether got conforms to the band.
func (b Band) Within(got float64) bool {
	d := got - b.Value
	if d < 0 {
		d = -d
	}
	v := b.Value
	if v < 0 {
		v = -v
	}
	return d <= b.Abs+b.Rel*v
}

// File is the schema of conformance.json.
type File struct {
	// Config documents the run the bands were recorded at; the harness
	// refuses to compare against bands from a different configuration.
	Config struct {
		Scale string `json:"scale"`
		Seed  uint64 `json:"seed"`
		Short int    `json:"short_trace_sec"`
		Long  int    `json:"long_trace_sec"`
	} `json:"config"`
	Metrics map[string]Band `json:"metrics"`
}

// ReferenceConfig returns the fixed conformance configuration — the
// cmd/experiments defaults (tiny fleet, seed 42, 30 s short / 60 s long
// traces), the same run the golden transcript was recorded from.
func ReferenceConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Scale = topology.ScaleTiny
	cfg.Seed = 42
	cfg.ShortTraceSec = 30
	cfg.LongTraceSec = 60
	return cfg
}

var (
	sysOnce sync.Once
	sysRef  *core.System
)

// System returns the shared reference System: the conformance and golden
// tests reuse one instance so the expensive trace bundles and the fleet
// dataset are generated once per test binary.
func System() *core.System {
	sysOnce.Do(func() { sysRef = core.MustNewSystem(ReferenceConfig()) })
	return sysRef
}

// Flatten converts a Summary into dotted scalar paths
// ("locality_all.Intra-Rack" → 0.204...), covering every numeric leaf of
// the digest — each regenerated table cell and headline figure statistic.
func Flatten(sum *core.Summary) (map[string]float64, error) {
	data, err := json.Marshal(sum)
	if err != nil {
		return nil, err
	}
	var tree map[string]any
	if err := json.Unmarshal(data, &tree); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, sub := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, sub)
			}
		case []any:
			for i, sub := range x {
				walk(fmt.Sprintf("%s.%d", prefix, i), sub)
			}
		case float64:
			out[prefix] = x
		}
	}
	walk("", tree)
	// Identity fields are configuration, not conformance metrics.
	delete(out, "hosts")
	delete(out, "seed")
	return out, nil
}

// DefaultBand assigns the recording-time tolerance for a metric by its
// unit: fractions in [0,1] get a tight absolute band (relative error is
// meaningless near zero), percent-scale stability metrics a ±15-point
// one, small quantized counts one whole step of slack plus 30%, and
// scale-ful statistics a relative band.
func DefaultBand(path string, value float64) Band {
	switch {
	case isFractional(path):
		return Band{Value: value, Abs: 0.08}
	case isPercent(path):
		return Band{Value: value, Abs: 15}
	case isSmallCount(path):
		return Band{Value: value, Abs: 1, Rel: 0.30}
	}
	return Band{Value: value, Rel: 0.30}
}

// isFractional classifies metrics that are shares/fractions in [0,1].
func isFractional(path string) bool {
	for _, p := range []string{
		"service_mix.", "locality_all.", "locality_by_cluster_type.",
		"traffic_share.", "cache_within_2x",
		"edge_util_mean", "hadoop_matrix_diag", "frontend_matrix_diag",
		"fault_injection.delivered_frac", "fault_injection.baseline_delivered_frac",
		"fault_injection.locality_delivered.",
		"telemetry.delivered_frac", "telemetry.buffer_drop_frac",
		"telemetry.web_occ", "telemetry.hadoop_occ",
	} {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// isPercent classifies heavy-hitter stability metrics reported on a
// 0–100 scale, quantized to coarse steps by the small HH sets.
func isPercent(path string) bool {
	return strings.HasPrefix(path, "hh_persist_") || strings.HasPrefix(path, "hh_intersect_")
}

// isSmallCount classifies small integer metrics (median HH counts,
// concurrent racks) whose quantization step is 1.
func isSmallCount(path string) bool {
	return strings.HasPrefix(path, "hh_count_p50.") || strings.HasPrefix(path, "concurrent_racks_p50.")
}

// Record builds the File for the current flattened metrics.
func Record(cfg core.Config, flat map[string]float64) *File {
	f := &File{Metrics: make(map[string]Band, len(flat))}
	f.Config.Scale = scaleName(cfg.Scale)
	f.Config.Seed = cfg.Seed
	f.Config.Short = cfg.ShortTraceSec
	f.Config.Long = cfg.LongTraceSec
	for path, v := range flat {
		f.Metrics[path] = DefaultBand(path, v)
	}
	return f
}

// Load reads conformance.json.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("conformance: parsing %s: %v", path, err)
	}
	return &f, nil
}

// Save writes the file with sorted keys (encoding/json sorts map keys),
// one metric per line, so diffs review cleanly.
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// SortedKeys returns the metric paths in stable order.
func (f *File) SortedKeys() []string {
	keys := make([]string, 0, len(f.Metrics))
	for k := range f.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// scaleName names a topology scale for the config stamp.
func scaleName(s topology.Scale) string {
	switch s {
	case topology.ScaleTiny:
		return "tiny"
	case topology.ScaleSmall:
		return "small"
	case topology.ScaleMedium:
		return "medium"
	case topology.ScaleLarge:
		return "large"
	case topology.ScaleXLarge:
		return "xlarge"
	}
	return fmt.Sprintf("scale(%d)", s)
}
