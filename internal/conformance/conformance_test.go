package conformance

import (
	"flag"
	"testing"
)

// update regenerates conformance.json and experiments_output.txt from the
// current code instead of asserting against them:
//
//	go test ./internal/conformance -update
var update = flag.Bool("update", false, "rewrite conformance.json and the golden suite transcript")

const bandsPath = "conformance.json"

// TestConformance regenerates every numeric leaf of the Summary digest —
// the reproduction's table cells and headline figure statistics — and
// asserts each one against its checked-in tolerance band.
func TestConformance(t *testing.T) {
	skipIfHeavyDisallowed(t)
	cfg := ReferenceConfig()
	flat, err := Flatten(System().Summarize())
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) == 0 {
		t.Fatal("flattened summary has no metrics")
	}

	if *update {
		f := Record(cfg, flat)
		if err := f.Save(bandsPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d metrics", bandsPath, len(f.Metrics))
		return
	}

	f, err := Load(bandsPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/conformance -update` to record)", err)
	}
	if f.Config.Seed != cfg.Seed || f.Config.Short != cfg.ShortTraceSec ||
		f.Config.Long != cfg.LongTraceSec || f.Config.Scale != "tiny" {
		t.Fatalf("%s was recorded at config %+v; the harness runs at seed=%d short=%d long=%d scale=tiny — re-record with -update",
			bandsPath, f.Config, cfg.Seed, cfg.ShortTraceSec, cfg.LongTraceSec)
	}

	// Key-set equality both ways: a metric that vanished means an analysis
	// silently stopped reporting; a new one must be banded.
	for _, path := range f.SortedKeys() {
		band := f.Metrics[path]
		got, ok := flat[path]
		if !ok {
			t.Errorf("metric %s is banded in %s but missing from the regenerated summary", path, bandsPath)
			continue
		}
		if !band.Within(got) {
			t.Errorf("metric %s = %v outside band {value %v, abs %v, rel %v}",
				path, got, band.Value, band.Abs, band.Rel)
		}
	}
	for path := range flat {
		if _, ok := f.Metrics[path]; !ok {
			t.Errorf("metric %s is new — re-record %s with -update and review the diff", path, bandsPath)
		}
	}
}

// TestPaperHeadlines pins the paper's qualitative claims directly, with
// hand-set thresholds independent of the recorded bands: these must hold
// for any faithful reproduction at any seed, not just near the reference
// values.
func TestPaperHeadlines(t *testing.T) {
	skipIfHeavyDisallowed(t)
	flat, err := Flatten(System().Summarize())
	if err != nil {
		t.Fatal(err)
	}
	metric := func(path string) float64 {
		v, ok := flat[path]
		if !ok {
			t.Fatalf("summary has no metric %s", path)
		}
		return v
	}

	// Table 2 / §4: Hadoop talks almost exclusively to Hadoop; Web's top
	// partner is the caching tier; cache followers serve Web.
	if v := metric("service_mix.Hadoop.Hadoop"); v < 0.95 {
		t.Errorf("Hadoop→Hadoop share = %.3f, want ≥0.95", v)
	}
	if v := metric("service_mix.Web.Cache-f"); v < 0.40 {
		t.Errorf("Web→Cache-f share = %.3f, want ≥0.40 (dominant partner)", v)
	}
	if v := metric("service_mix.Cache-f.Web"); v < 0.60 {
		t.Errorf("Cache-f→Web share = %.3f, want ≥0.60", v)
	}
	if v := metric("service_mix.Cache-l.Cache-f"); v < 0.50 {
		t.Errorf("Cache-l→Cache-f share = %.3f, want ≥0.50", v)
	}

	// Figure 2 / §4.1: traffic is not rack-local — intra-rack is a
	// minority share and the cluster level dominates, contra conventional
	// wisdom of 50–80% rack-locality.
	intraRack := metric("locality_all.Intra-Rack")
	intraCluster := metric("locality_all.Intra-Cluster")
	if intraRack >= 0.40 {
		t.Errorf("fleet intra-rack share = %.3f, want <0.40 (paper: 12.9%%)", intraRack)
	}
	if intraCluster <= intraRack {
		t.Errorf("intra-cluster share %.3f should exceed intra-rack %.3f", intraCluster, intraRack)
	}

	// §4.1 by cluster type: Frontend clusters are strongly cluster-local;
	// Hadoop is the most rack-local tier yet barely crosses datacenters.
	if v := metric("locality_by_cluster_type.FE.Intra-Cluster"); v < 0.60 {
		t.Errorf("FE intra-cluster share = %.3f, want ≥0.60 (paper: 68%%)", v)
	}
	hadoopRack := metric("locality_by_cluster_type.Hadoop.Intra-Rack")
	if hadoopRack <= intraRack {
		t.Errorf("Hadoop intra-rack %.3f should exceed the fleet-wide %.3f", hadoopRack, intraRack)
	}
	if v := metric("locality_by_cluster_type.Hadoop.Inter-Datacenter"); v > 0.05 {
		t.Errorf("Hadoop inter-DC share = %.3f, want ≤0.05", v)
	}
}

// TestBandWithin covers the tolerance arithmetic on its own — cheap
// enough to run everywhere, race included.
func TestBandWithin(t *testing.T) {
	cases := []struct {
		band Band
		got  float64
		ok   bool
	}{
		{Band{Value: 0.5, Abs: 0.08}, 0.57, true},
		{Band{Value: 0.5, Abs: 0.08}, 0.59, false},
		{Band{Value: 1000, Rel: 0.30}, 1299, true},
		{Band{Value: 1000, Rel: 0.30}, 1301, false},
		{Band{Value: -200, Rel: 0.30}, -250, true},
		{Band{Value: 0, Abs: 0.08}, 0.05, true},
		{Band{Value: 0, Rel: 0.30}, 0.001, false},
	}
	for _, c := range cases {
		if got := c.band.Within(c.got); got != c.ok {
			t.Errorf("Band%+v.Within(%v) = %v, want %v", c.band, c.got, got, c.ok)
		}
	}
}

// TestDefaultBandClassification pins the share-vs-scale split so a
// renamed summary field doesn't silently fall into the wrong band kind.
func TestDefaultBandClassification(t *testing.T) {
	if b := DefaultBand("locality_all.Intra-Rack", 0.2); b.Abs == 0 || b.Rel != 0 {
		t.Errorf("locality share should get an absolute band, got %+v", b)
	}
	if b := DefaultBand("syn_gap_p50_us.Web", 1992.6); b.Rel == 0 || b.Abs != 0 {
		t.Errorf("scale-ful metric should get a relative band, got %+v", b)
	}
	if b := DefaultBand("hh_persist_rack_100ms.Web", 100); b.Abs != 15 {
		t.Errorf("percent-scale metric should get a 15-point band, got %+v", b)
	}
	if b := DefaultBand("hh_count_p50.Web", 1); b.Abs != 1 || b.Rel == 0 {
		t.Errorf("small count should get one step of slack plus 30%%, got %+v", b)
	}
}

// skipIfHeavyDisallowed gates the multi-minute reference run: it is
// skipped under -short and under the race detector (CI runs it in the
// non-race coverage job; the race job covers the cheap unit tests).
func skipIfHeavyDisallowed(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("conformance reference run skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("conformance reference run skipped under the race detector")
	}
}
