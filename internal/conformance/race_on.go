//go:build race

package conformance

// raceEnabled gates the multi-minute reference run out of race-detector
// jobs; see race_off.go for the default.
const raceEnabled = true
