//go:build !race

package conformance

// raceEnabled reports whether the binary was built with -race. The heavy
// conformance and golden tests skip themselves under the race detector —
// the ~5-minute reference suite would multiply past CI's timeout — and
// run in the non-race coverage job instead.
const raceEnabled = false
