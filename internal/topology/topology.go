// Package topology models the physical organization of Facebook's
// datacenters as described in §3.1 of the paper: machines in racks behind
// top-of-rack switches (RSWs), racks grouped into clusters behind four
// cluster switches (CSWs, the "4-post" design), clusters aggregated by
// Fat Cat switches (FCs) within a datacenter, and datacenters grouped
// into sites joined by a backbone.
//
// Two properties of the real deployment matter to every analysis and are
// encoded here: machines have exactly one role (§3.1), and racks contain
// only servers of the same role — the placement decision behind the
// bipartite Web↔cache traffic pattern of Figure 5b.
package topology

import (
	"fmt"

	"fbdcnet/internal/packet"
)

// Role is the single function a machine performs (§3.1).
type Role uint8

// Machine roles. Misc stands in for the long tail of smaller services
// ("Rest" in Table 2).
const (
	RoleWeb Role = iota
	RoleCacheFollower
	RoleCacheLeader
	RoleHadoop
	RoleMultifeed
	RoleSLB
	RoleDB
	RoleMisc
	numRoles
)

// Roles lists every role once, in declaration order.
var Roles = []Role{
	RoleWeb, RoleCacheFollower, RoleCacheLeader, RoleHadoop,
	RoleMultifeed, RoleSLB, RoleDB, RoleMisc,
}

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleWeb:
		return "Web"
	case RoleCacheFollower:
		return "Cache-f"
	case RoleCacheLeader:
		return "Cache-l"
	case RoleHadoop:
		return "Hadoop"
	case RoleMultifeed:
		return "MF"
	case RoleSLB:
		return "SLB"
	case RoleDB:
		return "DB"
	case RoleMisc:
		return "Rest"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// ClusterType identifies the deployment unit's purpose (Table 3's five
// top cluster types).
type ClusterType uint8

// Cluster types, matching Table 3's taxonomy.
const (
	ClusterHadoop ClusterType = iota
	ClusterFrontend
	ClusterService
	ClusterCache
	ClusterDB
	numClusterTypes
)

// ClusterTypes lists every cluster type once, in Table 3's column order.
var ClusterTypes = []ClusterType{
	ClusterHadoop, ClusterFrontend, ClusterService, ClusterCache, ClusterDB,
}

// String implements fmt.Stringer.
func (c ClusterType) String() string {
	switch c {
	case ClusterHadoop:
		return "Hadoop"
	case ClusterFrontend:
		return "FE"
	case ClusterService:
		return "Svc."
	case ClusterCache:
		return "Cache"
	case ClusterDB:
		return "DB"
	default:
		return fmt.Sprintf("ClusterType(%d)", uint8(c))
	}
}

// Locality classifies where a packet's destination lies relative to its
// source — the unit of every locality analysis in the paper.
type Locality uint8

// Locality tiers, innermost first.
const (
	SameHost Locality = iota
	IntraRack
	IntraCluster
	IntraDatacenter
	InterDatacenter
	numLocalities
)

// Localities lists the four inter-host tiers in the order the paper's
// tables and figure legends use (SameHost excluded: loopback traffic is
// not network traffic).
var Localities = []Locality{IntraRack, IntraCluster, IntraDatacenter, InterDatacenter}

// String implements fmt.Stringer.
func (l Locality) String() string {
	switch l {
	case SameHost:
		return "Same-Host"
	case IntraRack:
		return "Intra-Rack"
	case IntraCluster:
		return "Intra-Cluster"
	case IntraDatacenter:
		return "Intra-Datacenter"
	case InterDatacenter:
		return "Inter-Datacenter"
	default:
		return fmt.Sprintf("Locality(%d)", uint8(l))
	}
}

// HostID indexes a machine within a Topology.
type HostID int32

// Host is a materialized view of one machine: exactly one role, one rack.
// The topology does not store Host structs — per-host state lives in
// columnar form (see Topology) — so Host is assembled on demand by
// Topology.Host for cold paths that want every attribute at once.
type Host struct {
	ID         HostID
	Addr       packet.Addr
	Role       Role
	Rack       int
	Cluster    int
	Datacenter int
	Site       int
}

// Rack is a set of same-role machines behind one RSW. Host IDs are
// assigned densely rack by rack, so a rack's members are the contiguous
// span [FirstHost, FirstHost+NumHosts) — a 8-byte description instead of
// a per-host slice.
type Rack struct {
	ID        int
	Cluster   int
	Role      Role
	FirstHost HostID
	NumHosts  int32
}

// Host returns the i-th member of the rack.
func (r *Rack) Host(i int) HostID { return r.FirstHost + HostID(i) }

// Cluster is the deployment unit: racks behind four CSWs (or a Fabric pod).
type Cluster struct {
	ID         int
	Type       ClusterType
	Datacenter int
	Fabric     bool // next-generation Fabric pod rather than 4-post
	Racks      []int
}

// Datacenter is one building containing multiple clusters.
type Datacenter struct {
	ID       int
	Site     int
	Clusters []int
}

// Site is a datacenter site: one or more buildings on a campus.
type Site struct {
	ID          int
	Datacenters []int
}

// Topology is the fully wired datacenter model in struct-of-arrays form.
// Rack/cluster/datacenter/site element structs are O(racks) and stay as
// slices of structs; per-host state — the part that must scale to million-
// host fleets — is a single int32 column mapping host → rack, from which
// every other host attribute (role, cluster, datacenter, site, address)
// derives in O(1). Role membership is stored at rack granularity: for each
// role, the sorted list of racks hosting it plus a prefix-sum of member
// counts, so any (role × cluster/datacenter/fleet) peer set is a HostSet
// view over a contiguous position range rather than a materialized slice.
// The whole structure costs ≈5 bytes/host versus ≈69 for the old
// array-of-structs layout. It is immutable after Build.
type Topology struct {
	Racks       []Rack
	Clusters    []Cluster
	Datacenters []Datacenter
	Sites       []Site

	// hostRack is the only per-host column: host → rack index.
	hostRack []int32

	// Role membership at rack granularity. roleRacks[r] lists the racks
	// hosting role r in ascending rack order; roleCum[r] is the exclusive
	// prefix sum of their host counts (len = len(roleRacks[r])+1), so
	// position p in role order lives in rack roleRacks[r][j] where j is
	// the greatest index with roleCum[r][j] <= p. Because racks of one
	// cluster are contiguous in rack order and clusters of one datacenter
	// likewise, roleClusterOff[r][c] / roleDCOff[r][d] delimit the
	// subranges of roleRacks[r] belonging to cluster c / datacenter d.
	roleRacks      [numRoles][]int32
	roleCum        [numRoles][]int32
	roleClusterOff [numRoles][]int32
	roleDCOff      [numRoles][]int32
}

// NumHosts returns the fleet size.
func (t *Topology) NumHosts() int { return len(t.hostRack) }

// HostRack returns the rack of host h.
func (t *Topology) HostRack(h HostID) int { return int(t.hostRack[h]) }

// HostCluster returns the cluster of host h.
func (t *Topology) HostCluster(h HostID) int { return t.Racks[t.hostRack[h]].Cluster }

// HostDC returns the datacenter of host h.
func (t *Topology) HostDC(h HostID) int {
	return t.Clusters[t.Racks[t.hostRack[h]].Cluster].Datacenter
}

// HostSite returns the site of host h.
func (t *Topology) HostSite(h HostID) int { return t.Datacenters[t.HostDC(h)].Site }

// HostRole returns the role of host h.
func (t *Topology) HostRole(h HostID) Role { return t.Racks[t.hostRack[h]].Role }

// Addr returns the network address of host h. Addresses are assigned
// densely: Addr(h) == packet.Addr(h).
func (t *Topology) Addr(h HostID) packet.Addr { return packet.Addr(h) }

// Host materializes the full attribute view of host h, for cold paths.
func (t *Topology) Host(h HostID) Host {
	rk := &t.Racks[t.hostRack[h]]
	dc := t.Clusters[rk.Cluster].Datacenter
	return Host{
		ID:         h,
		Addr:       packet.Addr(h),
		Role:       rk.Role,
		Rack:       rk.ID,
		Cluster:    rk.Cluster,
		Datacenter: dc,
		Site:       t.Datacenters[dc].Site,
	}
}

// HostByAddr resolves an address to its host ID. Addresses are assigned
// densely: Addr(h) belongs to host h.
func (t *Topology) HostByAddr(a packet.Addr) (HostID, bool) {
	if int(a) >= len(t.hostRack) {
		return 0, false
	}
	return HostID(a), true
}

// Locality classifies dst relative to src.
func (t *Topology) Locality(src, dst HostID) Locality {
	if src == dst {
		return SameHost
	}
	ra, rb := t.hostRack[src], t.hostRack[dst]
	if ra == rb {
		return IntraRack
	}
	ca, cb := t.Racks[ra].Cluster, t.Racks[rb].Cluster
	if ca == cb {
		return IntraCluster
	}
	if t.Clusters[ca].Datacenter == t.Clusters[cb].Datacenter {
		return IntraDatacenter
	}
	return InterDatacenter
}

// HostSet is a read-only view of a contiguous range of one role's host
// order — the columnar replacement for materialized []HostID peer sets.
// Indexing costs a binary search over the role's rack prefix sums
// (O(log racks-of-role)); the set itself is four words regardless of
// member count.
type HostSet struct {
	t     *Topology
	role  Role
	start int32 // absolute position offset within the role's host order
	n     int32
}

// Len returns the number of hosts in the set.
func (s HostSet) Len() int { return int(s.n) }

// At returns the i-th host of the set.
func (s HostSet) At(i int) HostID {
	pos := s.start + int32(i)
	cum := s.t.roleCum[s.role]
	lo, hi := 0, len(cum)-1 // invariant: cum[lo] <= pos < cum[hi]
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] <= pos {
			lo = mid
		} else {
			hi = mid
		}
	}
	return s.t.Racks[s.t.roleRacks[s.role][lo]].FirstHost + HostID(pos-cum[lo])
}

// Slice returns the subset covering positions [lo, hi) of the set.
func (s HostSet) Slice(lo, hi int) HostSet {
	return HostSet{t: s.t, role: s.role, start: s.start + int32(lo), n: int32(hi - lo)}
}

// AppendTo materializes the set into dst, in position order.
func (s HostSet) AppendTo(dst []HostID) []HostID {
	for i := 0; i < int(s.n); i++ {
		dst = append(dst, s.At(i))
	}
	return dst
}

// RoleSet returns the fleet-wide set of hosts with the given role.
func (t *Topology) RoleSet(r Role) HostSet {
	cum := t.roleCum[r]
	return HostSet{t: t, role: r, start: 0, n: cum[len(cum)-1]}
}

// RoleSetInCluster returns the set of hosts with role r inside cluster c.
func (t *Topology) RoleSetInCluster(r Role, c int) HostSet {
	off, cum := t.roleClusterOff[r], t.roleCum[r]
	lo, hi := cum[off[c]], cum[off[c+1]]
	return HostSet{t: t, role: r, start: lo, n: hi - lo}
}

// RoleSetInDC returns the set of hosts with role r inside datacenter dc.
func (t *Topology) RoleSetInDC(r Role, dc int) HostSet {
	off, cum := t.roleDCOff[r], t.roleCum[r]
	lo, hi := cum[off[dc]], cum[off[dc+1]]
	return HostSet{t: t, role: r, start: lo, n: hi - lo}
}

// RoleRacks returns the racks hosting role r, in ascending rack order.
// The slice is owned by the topology; callers must not mutate it.
func (t *Topology) RoleRacks(r Role) []int32 { return t.roleRacks[r] }

// RoleCum returns the exclusive prefix sum of host counts over
// RoleRacks(r): RoleCum(r)[j] hosts of role r live in racks before the
// j-th. Its length is len(RoleRacks(r))+1; the final entry is the role's
// fleet-wide host count. The slice is owned by the topology.
func (t *Topology) RoleCum(r Role) []int32 { return t.roleCum[r] }

// RoleRackRangeInCluster returns the subrange [lo, hi) of RoleRacks(r)
// whose racks belong to cluster c.
func (t *Topology) RoleRackRangeInCluster(r Role, c int) (lo, hi int) {
	off := t.roleClusterOff[r]
	return int(off[c]), int(off[c+1])
}

// RoleRackRangeInDC returns the subrange [lo, hi) of RoleRacks(r) whose
// racks belong to datacenter dc.
func (t *Topology) RoleRackRangeInDC(r Role, dc int) (lo, hi int) {
	off := t.roleDCOff[r]
	return int(off[dc]), int(off[dc+1])
}

// HostsByRole materializes all hosts with the given role, fleet-wide, in
// ascending host order. Cold-path convenience; hot paths use RoleSet.
func (t *Topology) HostsByRole(r Role) []HostID {
	return t.RoleSet(r).AppendTo(nil)
}

// HostsByRoleInCluster materializes hosts with role r inside cluster c.
func (t *Topology) HostsByRoleInCluster(r Role, c int) []HostID {
	return t.RoleSetInCluster(r, c).AppendTo(nil)
}

// HostsByRoleInDC materializes hosts with role r inside datacenter dc.
func (t *Topology) HostsByRoleInDC(r Role, dc int) []HostID {
	return t.RoleSetInDC(r, dc).AppendTo(nil)
}

// ClustersOfType returns the IDs of all clusters with the given type.
func (t *Topology) ClustersOfType(ct ClusterType) []int {
	var out []int
	for _, c := range t.Clusters {
		if c.Type == ct {
			out = append(out, c.ID)
		}
	}
	return out
}

// ClusterSpec describes one cluster to build.
type ClusterSpec struct {
	Type         ClusterType
	Racks        int
	HostsPerRack int
	Fabric       bool
}

// DatacenterSpec describes one building.
type DatacenterSpec struct {
	Clusters []ClusterSpec
}

// SiteSpec describes one site.
type SiteSpec struct {
	Datacenters []DatacenterSpec
}

// Config is the whole-network build specification.
type Config struct {
	Sites []SiteSpec
}

// frontendRackRoles reproduces the Frontend cluster composition of
// Figure 5b: roughly 75% Web server racks, 20% cache-follower racks, and a
// few Multifeed and SLB racks. Assignment is deterministic in rack index.
func frontendRackRoles(n int) []Role {
	roles := make([]Role, n)
	nCache := n * 20 / 100
	nMF := n * 3 / 100
	nSLB := n * 2 / 100
	if n >= 4 {
		if nCache == 0 {
			nCache = 1
		}
		if nMF == 0 {
			nMF = 1
		}
		if nSLB == 0 {
			nSLB = 1
		}
	}
	i := 0
	for ; i < n-nCache-nMF-nSLB; i++ {
		roles[i] = RoleWeb
	}
	for j := 0; j < nCache && i < n; j++ {
		roles[i] = RoleCacheFollower
		i++
	}
	for j := 0; j < nMF && i < n; j++ {
		roles[i] = RoleMultifeed
		i++
	}
	for ; i < n; i++ {
		roles[i] = RoleSLB
	}
	return roles
}

// serviceRackRoles cycles the long-tail roles through a Service cluster.
func serviceRackRoles(n int) []Role {
	roles := make([]Role, n)
	cycle := []Role{RoleMisc, RoleMisc, RoleMultifeed, RoleMisc}
	for i := range roles {
		roles[i] = cycle[i%len(cycle)]
	}
	return roles
}

// rackRoles returns the role of each rack in a cluster of the given type.
func rackRoles(ct ClusterType, n int) []Role {
	switch ct {
	case ClusterHadoop:
		roles := make([]Role, n)
		for i := range roles {
			roles[i] = RoleHadoop
		}
		return roles
	case ClusterFrontend:
		return frontendRackRoles(n)
	case ClusterCache:
		roles := make([]Role, n)
		for i := range roles {
			roles[i] = RoleCacheLeader
		}
		return roles
	case ClusterDB:
		roles := make([]Role, n)
		for i := range roles {
			roles[i] = RoleDB
		}
		return roles
	case ClusterService:
		return serviceRackRoles(n)
	default:
		panic(fmt.Sprintf("topology: unknown cluster type %v", ct))
	}
}

// Build wires a Topology from cfg. It validates that every cluster has at
// least one rack and every rack at least one host.
func Build(cfg Config) (*Topology, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("topology: config has no sites")
	}
	t := &Topology{}
	for si, ss := range cfg.Sites {
		if len(ss.Datacenters) == 0 {
			return nil, fmt.Errorf("topology: site %d has no datacenters", si)
		}
		site := Site{ID: len(t.Sites)}
		for _, ds := range ss.Datacenters {
			if len(ds.Clusters) == 0 {
				return nil, fmt.Errorf("topology: datacenter in site %d has no clusters", si)
			}
			dc := Datacenter{ID: len(t.Datacenters), Site: site.ID}
			for _, cs := range ds.Clusters {
				if cs.Racks <= 0 || cs.HostsPerRack <= 0 {
					return nil, fmt.Errorf("topology: cluster spec needs positive racks and hosts, got %+v", cs)
				}
				cl := Cluster{ID: len(t.Clusters), Type: cs.Type, Datacenter: dc.ID, Fabric: cs.Fabric}
				roles := rackRoles(cs.Type, cs.Racks)
				for ri := 0; ri < cs.Racks; ri++ {
					rack := Rack{
						ID:        len(t.Racks),
						Cluster:   cl.ID,
						Role:      roles[ri],
						FirstHost: HostID(len(t.hostRack)),
						NumHosts:  int32(cs.HostsPerRack),
					}
					for hi := 0; hi < cs.HostsPerRack; hi++ {
						t.hostRack = append(t.hostRack, int32(rack.ID))
					}
					t.roleRacks[rack.Role] = append(t.roleRacks[rack.Role], int32(rack.ID))
					cl.Racks = append(cl.Racks, rack.ID)
					t.Racks = append(t.Racks, rack)
				}
				dc.Clusters = append(dc.Clusters, cl.ID)
				t.Clusters = append(t.Clusters, cl)
			}
			site.Datacenters = append(site.Datacenters, dc.ID)
			t.Datacenters = append(t.Datacenters, dc)
		}
		t.Sites = append(t.Sites, site)
	}
	t.buildRoleIndex()
	return t, nil
}

// buildRoleIndex derives the role prefix sums and cluster/datacenter
// subrange offsets from roleRacks. It relies on two Build invariants:
// rack IDs are assigned in cluster order (so each role's rack list is
// partitioned into contiguous per-cluster runs) and cluster IDs in
// datacenter order (likewise per-datacenter runs).
func (t *Topology) buildRoleIndex() {
	for role := Role(0); role < numRoles; role++ {
		rr := t.roleRacks[role]
		cum := make([]int32, len(rr)+1)
		for j, rid := range rr {
			cum[j+1] = cum[j] + t.Racks[rid].NumHosts
		}
		t.roleCum[role] = cum

		cOff := make([]int32, len(t.Clusters)+1)
		j := 0
		for c := range t.Clusters {
			cOff[c] = int32(j)
			for j < len(rr) && t.Racks[rr[j]].Cluster == c {
				j++
			}
		}
		cOff[len(t.Clusters)] = int32(len(rr))
		t.roleClusterOff[role] = cOff

		dOff := make([]int32, len(t.Datacenters)+1)
		j = 0
		for d := range t.Datacenters {
			dOff[d] = int32(j)
			for j < len(rr) && t.Clusters[t.Racks[rr[j]].Cluster].Datacenter == d {
				j++
			}
		}
		dOff[len(t.Datacenters)] = int32(len(rr))
		t.roleDCOff[role] = dOff
	}
}

// MustBuild is Build that panics on error, for fixed internal configs.
func MustBuild(cfg Config) *Topology {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
