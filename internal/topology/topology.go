// Package topology models the physical organization of Facebook's
// datacenters as described in §3.1 of the paper: machines in racks behind
// top-of-rack switches (RSWs), racks grouped into clusters behind four
// cluster switches (CSWs, the "4-post" design), clusters aggregated by
// Fat Cat switches (FCs) within a datacenter, and datacenters grouped
// into sites joined by a backbone.
//
// Two properties of the real deployment matter to every analysis and are
// encoded here: machines have exactly one role (§3.1), and racks contain
// only servers of the same role — the placement decision behind the
// bipartite Web↔cache traffic pattern of Figure 5b.
package topology

import (
	"fmt"

	"fbdcnet/internal/packet"
)

// Role is the single function a machine performs (§3.1).
type Role uint8

// Machine roles. Misc stands in for the long tail of smaller services
// ("Rest" in Table 2).
const (
	RoleWeb Role = iota
	RoleCacheFollower
	RoleCacheLeader
	RoleHadoop
	RoleMultifeed
	RoleSLB
	RoleDB
	RoleMisc
	numRoles
)

// Roles lists every role once, in declaration order.
var Roles = []Role{
	RoleWeb, RoleCacheFollower, RoleCacheLeader, RoleHadoop,
	RoleMultifeed, RoleSLB, RoleDB, RoleMisc,
}

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleWeb:
		return "Web"
	case RoleCacheFollower:
		return "Cache-f"
	case RoleCacheLeader:
		return "Cache-l"
	case RoleHadoop:
		return "Hadoop"
	case RoleMultifeed:
		return "MF"
	case RoleSLB:
		return "SLB"
	case RoleDB:
		return "DB"
	case RoleMisc:
		return "Rest"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// ClusterType identifies the deployment unit's purpose (Table 3's five
// top cluster types).
type ClusterType uint8

// Cluster types, matching Table 3's taxonomy.
const (
	ClusterHadoop ClusterType = iota
	ClusterFrontend
	ClusterService
	ClusterCache
	ClusterDB
	numClusterTypes
)

// ClusterTypes lists every cluster type once, in Table 3's column order.
var ClusterTypes = []ClusterType{
	ClusterHadoop, ClusterFrontend, ClusterService, ClusterCache, ClusterDB,
}

// String implements fmt.Stringer.
func (c ClusterType) String() string {
	switch c {
	case ClusterHadoop:
		return "Hadoop"
	case ClusterFrontend:
		return "FE"
	case ClusterService:
		return "Svc."
	case ClusterCache:
		return "Cache"
	case ClusterDB:
		return "DB"
	default:
		return fmt.Sprintf("ClusterType(%d)", uint8(c))
	}
}

// Locality classifies where a packet's destination lies relative to its
// source — the unit of every locality analysis in the paper.
type Locality uint8

// Locality tiers, innermost first.
const (
	SameHost Locality = iota
	IntraRack
	IntraCluster
	IntraDatacenter
	InterDatacenter
	numLocalities
)

// Localities lists the four inter-host tiers in the order the paper's
// tables and figure legends use (SameHost excluded: loopback traffic is
// not network traffic).
var Localities = []Locality{IntraRack, IntraCluster, IntraDatacenter, InterDatacenter}

// String implements fmt.Stringer.
func (l Locality) String() string {
	switch l {
	case SameHost:
		return "Same-Host"
	case IntraRack:
		return "Intra-Rack"
	case IntraCluster:
		return "Intra-Cluster"
	case IntraDatacenter:
		return "Intra-Datacenter"
	case InterDatacenter:
		return "Inter-Datacenter"
	default:
		return fmt.Sprintf("Locality(%d)", uint8(l))
	}
}

// HostID indexes a machine within a Topology.
type HostID int32

// Host is one machine: exactly one role, one rack.
type Host struct {
	ID         HostID
	Addr       packet.Addr
	Role       Role
	Rack       int
	Cluster    int
	Datacenter int
	Site       int
}

// Rack is a set of same-role machines behind one RSW.
type Rack struct {
	ID      int
	Cluster int
	Role    Role
	Hosts   []HostID
}

// Cluster is the deployment unit: racks behind four CSWs (or a Fabric pod).
type Cluster struct {
	ID         int
	Type       ClusterType
	Datacenter int
	Fabric     bool // next-generation Fabric pod rather than 4-post
	Racks      []int
}

// Datacenter is one building containing multiple clusters.
type Datacenter struct {
	ID       int
	Site     int
	Clusters []int
}

// Site is a datacenter site: one or more buildings on a campus.
type Site struct {
	ID          int
	Datacenters []int
}

// Topology is the fully wired datacenter model. All cross-references are
// indices into the exported slices; it is immutable after Build.
type Topology struct {
	Hosts       []Host
	Racks       []Rack
	Clusters    []Cluster
	Datacenters []Datacenter
	Sites       []Site

	byRole [numRoles][]HostID
}

// HostByAddr resolves an address to its host, or nil if out of range.
// Addresses are assigned densely: Addr(i) belongs to Hosts[i].
func (t *Topology) HostByAddr(a packet.Addr) *Host {
	i := int(a)
	if i < 0 || i >= len(t.Hosts) {
		return nil
	}
	return &t.Hosts[i]
}

// Locality classifies dst relative to src.
func (t *Topology) Locality(src, dst HostID) Locality {
	if src == dst {
		return SameHost
	}
	a, b := &t.Hosts[src], &t.Hosts[dst]
	switch {
	case a.Rack == b.Rack:
		return IntraRack
	case a.Cluster == b.Cluster:
		return IntraCluster
	case a.Datacenter == b.Datacenter:
		return IntraDatacenter
	default:
		return InterDatacenter
	}
}

// HostsByRole returns all hosts with the given role, fleet-wide.
func (t *Topology) HostsByRole(r Role) []HostID { return t.byRole[r] }

// HostsByRoleInCluster returns hosts with role r inside cluster c.
func (t *Topology) HostsByRoleInCluster(r Role, c int) []HostID {
	var out []HostID
	for _, h := range t.byRole[r] {
		if t.Hosts[h].Cluster == c {
			out = append(out, h)
		}
	}
	return out
}

// HostsByRoleInDC returns hosts with role r inside datacenter dc.
func (t *Topology) HostsByRoleInDC(r Role, dc int) []HostID {
	var out []HostID
	for _, h := range t.byRole[r] {
		if t.Hosts[h].Datacenter == dc {
			out = append(out, h)
		}
	}
	return out
}

// ClustersOfType returns the IDs of all clusters with the given type.
func (t *Topology) ClustersOfType(ct ClusterType) []int {
	var out []int
	for _, c := range t.Clusters {
		if c.Type == ct {
			out = append(out, c.ID)
		}
	}
	return out
}

// NumHosts returns the fleet size.
func (t *Topology) NumHosts() int { return len(t.Hosts) }

// ClusterSpec describes one cluster to build.
type ClusterSpec struct {
	Type         ClusterType
	Racks        int
	HostsPerRack int
	Fabric       bool
}

// DatacenterSpec describes one building.
type DatacenterSpec struct {
	Clusters []ClusterSpec
}

// SiteSpec describes one site.
type SiteSpec struct {
	Datacenters []DatacenterSpec
}

// Config is the whole-network build specification.
type Config struct {
	Sites []SiteSpec
}

// frontendRackRoles reproduces the Frontend cluster composition of
// Figure 5b: roughly 75% Web server racks, 20% cache-follower racks, and a
// few Multifeed and SLB racks. Assignment is deterministic in rack index.
func frontendRackRoles(n int) []Role {
	roles := make([]Role, n)
	nCache := n * 20 / 100
	nMF := n * 3 / 100
	nSLB := n * 2 / 100
	if n >= 4 {
		if nCache == 0 {
			nCache = 1
		}
		if nMF == 0 {
			nMF = 1
		}
		if nSLB == 0 {
			nSLB = 1
		}
	}
	i := 0
	for ; i < n-nCache-nMF-nSLB; i++ {
		roles[i] = RoleWeb
	}
	for j := 0; j < nCache && i < n; j++ {
		roles[i] = RoleCacheFollower
		i++
	}
	for j := 0; j < nMF && i < n; j++ {
		roles[i] = RoleMultifeed
		i++
	}
	for ; i < n; i++ {
		roles[i] = RoleSLB
	}
	return roles
}

// serviceRackRoles cycles the long-tail roles through a Service cluster.
func serviceRackRoles(n int) []Role {
	roles := make([]Role, n)
	cycle := []Role{RoleMisc, RoleMisc, RoleMultifeed, RoleMisc}
	for i := range roles {
		roles[i] = cycle[i%len(cycle)]
	}
	return roles
}

// rackRoles returns the role of each rack in a cluster of the given type.
func rackRoles(ct ClusterType, n int) []Role {
	switch ct {
	case ClusterHadoop:
		roles := make([]Role, n)
		for i := range roles {
			roles[i] = RoleHadoop
		}
		return roles
	case ClusterFrontend:
		return frontendRackRoles(n)
	case ClusterCache:
		roles := make([]Role, n)
		for i := range roles {
			roles[i] = RoleCacheLeader
		}
		return roles
	case ClusterDB:
		roles := make([]Role, n)
		for i := range roles {
			roles[i] = RoleDB
		}
		return roles
	case ClusterService:
		return serviceRackRoles(n)
	default:
		panic(fmt.Sprintf("topology: unknown cluster type %v", ct))
	}
}

// Build wires a Topology from cfg. It validates that every cluster has at
// least one rack and every rack at least one host.
func Build(cfg Config) (*Topology, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("topology: config has no sites")
	}
	t := &Topology{}
	for si, ss := range cfg.Sites {
		if len(ss.Datacenters) == 0 {
			return nil, fmt.Errorf("topology: site %d has no datacenters", si)
		}
		site := Site{ID: len(t.Sites)}
		for _, ds := range ss.Datacenters {
			if len(ds.Clusters) == 0 {
				return nil, fmt.Errorf("topology: datacenter in site %d has no clusters", si)
			}
			dc := Datacenter{ID: len(t.Datacenters), Site: site.ID}
			for _, cs := range ds.Clusters {
				if cs.Racks <= 0 || cs.HostsPerRack <= 0 {
					return nil, fmt.Errorf("topology: cluster spec needs positive racks and hosts, got %+v", cs)
				}
				cl := Cluster{ID: len(t.Clusters), Type: cs.Type, Datacenter: dc.ID, Fabric: cs.Fabric}
				roles := rackRoles(cs.Type, cs.Racks)
				for ri := 0; ri < cs.Racks; ri++ {
					rack := Rack{ID: len(t.Racks), Cluster: cl.ID, Role: roles[ri]}
					for hi := 0; hi < cs.HostsPerRack; hi++ {
						id := HostID(len(t.Hosts))
						h := Host{
							ID:         id,
							Addr:       packet.Addr(id),
							Role:       roles[ri],
							Rack:       rack.ID,
							Cluster:    cl.ID,
							Datacenter: dc.ID,
							Site:       site.ID,
						}
						t.Hosts = append(t.Hosts, h)
						rack.Hosts = append(rack.Hosts, id)
						t.byRole[h.Role] = append(t.byRole[h.Role], id)
					}
					cl.Racks = append(cl.Racks, rack.ID)
					t.Racks = append(t.Racks, rack)
				}
				dc.Clusters = append(dc.Clusters, cl.ID)
				t.Clusters = append(t.Clusters, cl)
			}
			site.Datacenters = append(site.Datacenters, dc.ID)
			t.Datacenters = append(t.Datacenters, dc)
		}
		t.Sites = append(t.Sites, site)
	}
	return t, nil
}

// MustBuild is Build that panics on error, for fixed internal configs.
func MustBuild(cfg Config) *Topology {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
