package topology

import (
	"testing"
	"testing/quick"

	"fbdcnet/internal/packet"
)

func tiny(t *testing.T) *Topology {
	t.Helper()
	top, err := Build(Preset(ScaleTiny))
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Build(Config{Sites: []SiteSpec{{}}}); err == nil {
		t.Error("site without datacenters accepted")
	}
	if _, err := Build(Config{Sites: []SiteSpec{{Datacenters: []DatacenterSpec{{}}}}}); err == nil {
		t.Error("datacenter without clusters accepted")
	}
	bad := Config{Sites: []SiteSpec{{Datacenters: []DatacenterSpec{{
		Clusters: []ClusterSpec{{Type: ClusterHadoop, Racks: 0, HostsPerRack: 4}},
	}}}}}
	if _, err := Build(bad); err == nil {
		t.Error("zero-rack cluster accepted")
	}
}

func TestCrossReferencesConsistent(t *testing.T) {
	top := tiny(t)
	for _, h := range top.Hosts {
		rack := top.Racks[h.Rack]
		if rack.Cluster != h.Cluster {
			t.Fatalf("host %d: rack cluster %d != host cluster %d", h.ID, rack.Cluster, h.Cluster)
		}
		cl := top.Clusters[h.Cluster]
		if cl.Datacenter != h.Datacenter {
			t.Fatalf("host %d: cluster dc mismatch", h.ID)
		}
		dc := top.Datacenters[h.Datacenter]
		if dc.Site != h.Site {
			t.Fatalf("host %d: dc site mismatch", h.ID)
		}
		found := false
		for _, id := range rack.Hosts {
			if id == h.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("host %d missing from its rack's host list", h.ID)
		}
	}
}

func TestRacksAreRoleHomogeneous(t *testing.T) {
	top := tiny(t)
	for _, rack := range top.Racks {
		for _, id := range rack.Hosts {
			if top.Hosts[id].Role != rack.Role {
				t.Fatalf("rack %d declared %v but host %d has %v",
					rack.ID, rack.Role, id, top.Hosts[id].Role)
			}
		}
	}
}

func TestHostsHaveExactlyOneRoleEntry(t *testing.T) {
	top := tiny(t)
	count := 0
	for _, r := range Roles {
		count += len(top.HostsByRole(r))
	}
	if count != top.NumHosts() {
		t.Fatalf("role index covers %d hosts, fleet has %d", count, top.NumHosts())
	}
}

func TestAddrAssignmentDense(t *testing.T) {
	top := tiny(t)
	for i, h := range top.Hosts {
		if h.Addr != packet.Addr(i) {
			t.Fatalf("host %d has addr %d", i, h.Addr)
		}
		if got := top.HostByAddr(h.Addr); got == nil || got.ID != h.ID {
			t.Fatalf("HostByAddr round trip failed for %d", i)
		}
	}
	if top.HostByAddr(packet.Addr(top.NumHosts())) != nil {
		t.Fatal("out-of-range addr resolved")
	}
}

func TestLocalityTiers(t *testing.T) {
	top := tiny(t)
	// pick a host and known relatives
	h := top.Hosts[0]
	if top.Locality(h.ID, h.ID) != SameHost {
		t.Error("self locality wrong")
	}
	// same rack
	rack := top.Racks[h.Rack]
	if len(rack.Hosts) > 1 {
		other := rack.Hosts[1]
		if top.Locality(h.ID, other) != IntraRack {
			t.Error("intra-rack locality wrong")
		}
	}
	// same cluster different rack
	cl := top.Clusters[h.Cluster]
	otherRack := top.Racks[cl.Racks[1]]
	if got := top.Locality(h.ID, otherRack.Hosts[0]); got != IntraCluster {
		t.Errorf("intra-cluster locality = %v", got)
	}
	// same DC different cluster
	dc := top.Datacenters[h.Datacenter]
	otherCl := top.Clusters[dc.Clusters[1]]
	dst := top.Racks[otherCl.Racks[0]].Hosts[0]
	if got := top.Locality(h.ID, dst); got != IntraDatacenter {
		t.Errorf("intra-dc locality = %v", got)
	}
	// different site
	lastHost := top.Hosts[len(top.Hosts)-1]
	if lastHost.Site == h.Site {
		t.Fatal("preset should span sites")
	}
	if got := top.Locality(h.ID, lastHost.ID); got != InterDatacenter {
		t.Errorf("inter-dc locality = %v", got)
	}
}

func TestLocalitySymmetricProperty(t *testing.T) {
	top := tiny(t)
	n := top.NumHosts()
	err := quick.Check(func(a, b uint32) bool {
		x, y := HostID(int(a)%n), HostID(int(b)%n)
		return top.Locality(x, y) == top.Locality(y, x)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrontendComposition(t *testing.T) {
	top := tiny(t)
	fes := top.ClustersOfType(ClusterFrontend)
	if len(fes) == 0 {
		t.Fatal("no frontend clusters in preset")
	}
	for _, c := range fes {
		var web, cache, mf, slb int
		for _, rid := range top.Clusters[c].Racks {
			switch top.Racks[rid].Role {
			case RoleWeb:
				web++
			case RoleCacheFollower:
				cache++
			case RoleMultifeed:
				mf++
			case RoleSLB:
				slb++
			default:
				t.Fatalf("unexpected role %v in frontend cluster", top.Racks[rid].Role)
			}
		}
		if web == 0 || cache == 0 || mf == 0 || slb == 0 {
			t.Fatalf("frontend cluster %d missing a role: web=%d cache=%d mf=%d slb=%d", c, web, cache, mf, slb)
		}
		if web <= cache {
			t.Fatalf("web racks (%d) should dominate cache racks (%d)", web, cache)
		}
	}
}

func TestFrontendRackRoleFractions(t *testing.T) {
	roles := frontendRackRoles(100)
	counts := map[Role]int{}
	for _, r := range roles {
		counts[r]++
	}
	if counts[RoleWeb] != 75 || counts[RoleCacheFollower] != 20 {
		t.Fatalf("100-rack frontend: web=%d cache=%d", counts[RoleWeb], counts[RoleCacheFollower])
	}
}

func TestHostsByRoleInClusterAndDC(t *testing.T) {
	top := tiny(t)
	fe := top.ClustersOfType(ClusterFrontend)[0]
	webs := top.HostsByRoleInCluster(RoleWeb, fe)
	if len(webs) == 0 {
		t.Fatal("no web hosts in frontend cluster")
	}
	for _, h := range webs {
		if top.Hosts[h].Cluster != fe || top.Hosts[h].Role != RoleWeb {
			t.Fatal("HostsByRoleInCluster returned a wrong host")
		}
	}
	dc := top.Clusters[fe].Datacenter
	webDC := top.HostsByRoleInDC(RoleWeb, dc)
	if len(webDC) < len(webs) {
		t.Fatal("DC-wide web hosts fewer than cluster's")
	}
}

func TestPresetScalesMonotone(t *testing.T) {
	a := MustBuild(Preset(ScaleTiny)).NumHosts()
	b := MustBuild(Preset(ScaleSmall)).NumHosts()
	c := MustBuild(Preset(ScaleMedium)).NumHosts()
	if !(a < b && b < c) {
		t.Fatalf("scales not monotone: %d %d %d", a, b, c)
	}
}

func TestPresetHasFabricPod(t *testing.T) {
	top := MustBuild(Preset(ScaleSmall))
	fabric := false
	for _, c := range top.Clusters {
		if c.Fabric {
			fabric = true
		}
	}
	if !fabric {
		t.Fatal("preset should include at least one Fabric pod (§4.3)")
	}
}

func TestStringers(t *testing.T) {
	for _, r := range Roles {
		if r.String() == "" {
			t.Errorf("role %d has empty string", r)
		}
	}
	for _, c := range ClusterTypes {
		if c.String() == "" {
			t.Errorf("cluster type %d has empty string", c)
		}
	}
	for _, l := range Localities {
		if l.String() == "" {
			t.Errorf("locality %d has empty string", l)
		}
	}
	if Role(200).String() == "" || ClusterType(200).String() == "" || Locality(200).String() == "" {
		t.Error("unknown enum values should still render")
	}
}
