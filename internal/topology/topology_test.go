package topology

import (
	"testing"
	"testing/quick"

	"fbdcnet/internal/packet"
)

func tiny(t *testing.T) *Topology {
	t.Helper()
	top, err := Build(Preset(ScaleTiny))
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Build(Config{Sites: []SiteSpec{{}}}); err == nil {
		t.Error("site without datacenters accepted")
	}
	if _, err := Build(Config{Sites: []SiteSpec{{Datacenters: []DatacenterSpec{{}}}}}); err == nil {
		t.Error("datacenter without clusters accepted")
	}
	bad := Config{Sites: []SiteSpec{{Datacenters: []DatacenterSpec{{
		Clusters: []ClusterSpec{{Type: ClusterHadoop, Racks: 0, HostsPerRack: 4}},
	}}}}}
	if _, err := Build(bad); err == nil {
		t.Error("zero-rack cluster accepted")
	}
}

func TestCrossReferencesConsistent(t *testing.T) {
	top := tiny(t)
	for i := 0; i < top.NumHosts(); i++ {
		h := top.Host(HostID(i))
		rack := top.Racks[h.Rack]
		if rack.Cluster != h.Cluster {
			t.Fatalf("host %d: rack cluster %d != host cluster %d", h.ID, rack.Cluster, h.Cluster)
		}
		cl := top.Clusters[h.Cluster]
		if cl.Datacenter != h.Datacenter {
			t.Fatalf("host %d: cluster dc mismatch", h.ID)
		}
		dc := top.Datacenters[h.Datacenter]
		if dc.Site != h.Site {
			t.Fatalf("host %d: dc site mismatch", h.ID)
		}
		if h.ID < rack.FirstHost || h.ID >= rack.FirstHost+HostID(rack.NumHosts) {
			t.Fatalf("host %d outside its rack's span [%d, %d)", h.ID, rack.FirstHost, rack.FirstHost+HostID(rack.NumHosts))
		}
	}
}

func TestRacksAreRoleHomogeneous(t *testing.T) {
	top := tiny(t)
	for _, rack := range top.Racks {
		for i := 0; i < int(rack.NumHosts); i++ {
			id := rack.Host(i)
			if top.HostRole(id) != rack.Role {
				t.Fatalf("rack %d declared %v but host %d has %v",
					rack.ID, rack.Role, id, top.HostRole(id))
			}
		}
	}
}

func TestHostsHaveExactlyOneRoleEntry(t *testing.T) {
	top := tiny(t)
	count := 0
	for _, r := range Roles {
		count += len(top.HostsByRole(r))
	}
	if count != top.NumHosts() {
		t.Fatalf("role index covers %d hosts, fleet has %d", count, top.NumHosts())
	}
}

func TestAddrAssignmentDense(t *testing.T) {
	top := tiny(t)
	for i := 0; i < top.NumHosts(); i++ {
		h := HostID(i)
		if top.Addr(h) != packet.Addr(i) {
			t.Fatalf("host %d has addr %d", i, top.Addr(h))
		}
		got, ok := top.HostByAddr(top.Addr(h))
		if !ok || got != h {
			t.Fatalf("HostByAddr round trip failed for %d", i)
		}
	}
	if _, ok := top.HostByAddr(packet.Addr(top.NumHosts())); ok {
		t.Fatal("out-of-range addr resolved")
	}
}

func TestLocalityTiers(t *testing.T) {
	top := tiny(t)
	// pick a host and known relatives
	h := top.Host(0)
	if top.Locality(h.ID, h.ID) != SameHost {
		t.Error("self locality wrong")
	}
	// same rack
	rack := top.Racks[h.Rack]
	if int(rack.NumHosts) > 1 {
		other := rack.Host(1)
		if top.Locality(h.ID, other) != IntraRack {
			t.Error("intra-rack locality wrong")
		}
	}
	// same cluster different rack
	cl := top.Clusters[h.Cluster]
	otherRack := top.Racks[cl.Racks[1]]
	if got := top.Locality(h.ID, otherRack.Host(0)); got != IntraCluster {
		t.Errorf("intra-cluster locality = %v", got)
	}
	// same DC different cluster
	dc := top.Datacenters[h.Datacenter]
	otherCl := top.Clusters[dc.Clusters[1]]
	dst := top.Racks[otherCl.Racks[0]].Host(0)
	if got := top.Locality(h.ID, dst); got != IntraDatacenter {
		t.Errorf("intra-dc locality = %v", got)
	}
	// different site
	lastHost := top.Host(HostID(top.NumHosts() - 1))
	if lastHost.Site == h.Site {
		t.Fatal("preset should span sites")
	}
	if got := top.Locality(h.ID, lastHost.ID); got != InterDatacenter {
		t.Errorf("inter-dc locality = %v", got)
	}
}

func TestLocalitySymmetricProperty(t *testing.T) {
	top := tiny(t)
	n := top.NumHosts()
	err := quick.Check(func(a, b uint32) bool {
		x, y := HostID(int(a)%n), HostID(int(b)%n)
		return top.Locality(x, y) == top.Locality(y, x)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrontendComposition(t *testing.T) {
	top := tiny(t)
	fes := top.ClustersOfType(ClusterFrontend)
	if len(fes) == 0 {
		t.Fatal("no frontend clusters in preset")
	}
	for _, c := range fes {
		var web, cache, mf, slb int
		for _, rid := range top.Clusters[c].Racks {
			switch top.Racks[rid].Role {
			case RoleWeb:
				web++
			case RoleCacheFollower:
				cache++
			case RoleMultifeed:
				mf++
			case RoleSLB:
				slb++
			default:
				t.Fatalf("unexpected role %v in frontend cluster", top.Racks[rid].Role)
			}
		}
		if web == 0 || cache == 0 || mf == 0 || slb == 0 {
			t.Fatalf("frontend cluster %d missing a role: web=%d cache=%d mf=%d slb=%d", c, web, cache, mf, slb)
		}
		if web <= cache {
			t.Fatalf("web racks (%d) should dominate cache racks (%d)", web, cache)
		}
	}
}

func TestFrontendRackRoleFractions(t *testing.T) {
	roles := frontendRackRoles(100)
	counts := map[Role]int{}
	for _, r := range roles {
		counts[r]++
	}
	if counts[RoleWeb] != 75 || counts[RoleCacheFollower] != 20 {
		t.Fatalf("100-rack frontend: web=%d cache=%d", counts[RoleWeb], counts[RoleCacheFollower])
	}
}

func TestHostsByRoleInClusterAndDC(t *testing.T) {
	top := tiny(t)
	fe := top.ClustersOfType(ClusterFrontend)[0]
	webs := top.HostsByRoleInCluster(RoleWeb, fe)
	if len(webs) == 0 {
		t.Fatal("no web hosts in frontend cluster")
	}
	for _, h := range webs {
		if top.HostCluster(h) != fe || top.HostRole(h) != RoleWeb {
			t.Fatal("HostsByRoleInCluster returned a wrong host")
		}
	}
	dc := top.Clusters[fe].Datacenter
	webDC := top.HostsByRoleInDC(RoleWeb, dc)
	if len(webDC) < len(webs) {
		t.Fatal("DC-wide web hosts fewer than cluster's")
	}
}

func TestPresetScalesMonotone(t *testing.T) {
	a := MustBuild(Preset(ScaleTiny)).NumHosts()
	b := MustBuild(Preset(ScaleSmall)).NumHosts()
	c := MustBuild(Preset(ScaleMedium)).NumHosts()
	if !(a < b && b < c) {
		t.Fatalf("scales not monotone: %d %d %d", a, b, c)
	}
}

func TestPresetHasFabricPod(t *testing.T) {
	top := MustBuild(Preset(ScaleSmall))
	fabric := false
	for _, c := range top.Clusters {
		if c.Fabric {
			fabric = true
		}
	}
	if !fabric {
		t.Fatal("preset should include at least one Fabric pod (§4.3)")
	}
}

func TestStringers(t *testing.T) {
	for _, r := range Roles {
		if r.String() == "" {
			t.Errorf("role %d has empty string", r)
		}
	}
	for _, c := range ClusterTypes {
		if c.String() == "" {
			t.Errorf("cluster type %d has empty string", c)
		}
	}
	for _, l := range Localities {
		if l.String() == "" {
			t.Errorf("locality %d has empty string", l)
		}
	}
	if Role(200).String() == "" || ClusterType(200).String() == "" || Locality(200).String() == "" {
		t.Error("unknown enum values should still render")
	}
}

// refHost is the old array-of-structs host row, rebuilt independently
// from the rack table for the columnar-equivalence property test.
type refHost struct {
	rack, cluster, dc, site int
	role                    Role
}

// refBuild reconstructs the pre-columnar AoS host slice by walking racks
// in ID order — the exact construction the old Build used — without
// touching any of the SoA accessors under test.
func refBuild(top *Topology) []refHost {
	var hosts []refHost
	for ri := range top.Racks {
		rack := &top.Racks[ri]
		cl := &top.Clusters[rack.Cluster]
		dc := &top.Datacenters[cl.Datacenter]
		for i := 0; i < int(rack.NumHosts); i++ {
			hosts = append(hosts, refHost{
				rack: rack.ID, cluster: rack.Cluster,
				dc: cl.Datacenter, site: dc.Site, role: rack.Role,
			})
		}
	}
	return hosts
}

// TestColumnarMatchesReferenceAoS is the property test of the columnar
// refactor: every SoA accessor and role set must agree host-for-host
// with a reference array-of-structs build on the tiny and small presets.
func TestColumnarMatchesReferenceAoS(t *testing.T) {
	for _, sc := range []Scale{ScaleTiny, ScaleSmall} {
		top := MustBuild(Preset(sc))
		ref := refBuild(top)
		if len(ref) != top.NumHosts() {
			t.Fatalf("%v: reference has %d hosts, topology %d", sc, len(ref), top.NumHosts())
		}
		for i, rh := range ref {
			h := HostID(i)
			if got := top.HostRack(h); got != rh.rack {
				t.Fatalf("%v host %d: rack %d, want %d", sc, i, got, rh.rack)
			}
			if got := top.HostCluster(h); got != rh.cluster {
				t.Fatalf("%v host %d: cluster %d, want %d", sc, i, got, rh.cluster)
			}
			if got := top.HostDC(h); got != rh.dc {
				t.Fatalf("%v host %d: dc %d, want %d", sc, i, got, rh.dc)
			}
			if got := top.HostSite(h); got != rh.site {
				t.Fatalf("%v host %d: site %d, want %d", sc, i, got, rh.site)
			}
			if got := top.HostRole(h); got != rh.role {
				t.Fatalf("%v host %d: role %v, want %v", sc, i, got, rh.role)
			}
			v := top.Host(h)
			if v.ID != h || v.Rack != rh.rack || v.Cluster != rh.cluster ||
				v.Datacenter != rh.dc || v.Site != rh.site || v.Role != rh.role {
				t.Fatalf("%v host %d: materialized view %+v disagrees with reference %+v", sc, i, v, rh)
			}
		}
		// Role sets — fleet-wide, per cluster, per DC — must enumerate the
		// same ascending host IDs a brute-force scan of the reference does.
		for _, role := range Roles {
			var brute []HostID
			for i, rh := range ref {
				if rh.role == role {
					brute = append(brute, HostID(i))
				}
			}
			checkSet(t, sc, role, "fleet", top.RoleSet(role), brute)
			for c := range top.Clusters {
				var want []HostID
				for _, h := range brute {
					if ref[h].cluster == c {
						want = append(want, h)
					}
				}
				checkSet(t, sc, role, "cluster", top.RoleSetInCluster(role, c), want)
			}
			for d := range top.Datacenters {
				var want []HostID
				for _, h := range brute {
					if ref[h].dc == d {
						want = append(want, h)
					}
				}
				checkSet(t, sc, role, "dc", top.RoleSetInDC(role, d), want)
			}
		}
	}
}

func checkSet(t *testing.T, sc Scale, role Role, scope string, set HostSet, want []HostID) {
	t.Helper()
	if set.Len() != len(want) {
		t.Fatalf("%v %v %s set: %d hosts, want %d", sc, role, scope, set.Len(), len(want))
	}
	for i := range want {
		if got := set.At(i); got != want[i] {
			t.Fatalf("%v %v %s set at %d: host %d, want %d", sc, role, scope, i, got, want[i])
		}
	}
	if got := set.AppendTo(nil); len(got) != len(want) {
		t.Fatalf("%v %v %s AppendTo: %d hosts, want %d", sc, role, scope, len(got), len(want))
	}
}
