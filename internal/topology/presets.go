package topology

// Scale selects a preset fleet size. All reported statistics in the paper
// are per-host or per-rack distributions, so the shape of every
// reproduction is stable across scales; larger scales only sharpen the
// tails.
type Scale int

// Preset scales.
const (
	// ScaleTiny is for unit tests: 2 sites, minutes-long packet traces in
	// milliseconds of CPU.
	ScaleTiny Scale = iota
	// ScaleSmall is the default for examples and benches.
	ScaleSmall
	// ScaleMedium is for the full experiment harness.
	ScaleMedium
	// ScaleLarge is 10× ScaleMedium — 138,240 hosts, the ballpark of the
	// paper's 100k+ machine fleet. The per-host trace analyses cost the
	// same at any scale; fleet collection and topology-wide passes are
	// what the batched pipeline must sustain here.
	ScaleLarge
	// ScaleXLarge is 8× ScaleLarge — 1,105,920 hosts across 34,560 racks,
	// an order of magnitude past the paper's fleet. Only the columnar
	// fleet state and the traffic-matrix collection mode make this preset
	// practical; per-host sampling at this scale is possible but slow.
	ScaleXLarge
)

// String returns the flag-spelling of the scale ("tiny", "small", ...).
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleLarge:
		return "large"
	case ScaleXLarge:
		return "xlarge"
	default:
		return "unknown"
	}
}

// ScaleNames lists every preset scale's flag-spelling, smallest first.
func ScaleNames() []string {
	return []string{"tiny", "small", "medium", "large", "xlarge"}
}

// ParseScale resolves a flag-spelling to its Scale.
func ParseScale(name string) (Scale, bool) {
	switch name {
	case "tiny":
		return ScaleTiny, true
	case "small":
		return ScaleSmall, true
	case "medium":
		return ScaleMedium, true
	case "large":
		return ScaleLarge, true
	case "xlarge":
		return ScaleXLarge, true
	default:
		return ScaleTiny, false
	}
}

// Preset returns a Config resembling Facebook's layout at the given scale:
// two sites; the first site has two datacenter buildings. Each datacenter
// hosts the five Table-3 cluster types. Frontend clusters dominate host
// count, Hadoop clusters dominate traffic — matching Table 3's last row.
func Preset(s Scale) Config {
	var racks, hpr int
	switch s {
	case ScaleTiny:
		racks, hpr = 6, 6
	case ScaleSmall:
		racks, hpr = 16, 8
	case ScaleMedium:
		racks, hpr = 64, 16
	case ScaleLarge:
		racks, hpr = 320, 32
	case ScaleXLarge:
		racks, hpr = 2560, 32
	default:
		racks, hpr = 16, 8
	}
	// Frontend hosts outnumber Hadoop hosts roughly 4:1, mirroring the
	// production fleet where Frontend clusters dominate host count while
	// Hadoop clusters dominate per-host load (§4.1, Table 3): that ratio
	// is what lets Hadoop run ≈5× hotter per edge link yet contribute a
	// similar share of total traffic.
	dc := func(fabric bool) DatacenterSpec {
		return DatacenterSpec{Clusters: []ClusterSpec{
			{Type: ClusterFrontend, Racks: 2 * racks, HostsPerRack: hpr, Fabric: fabric},
			{Type: ClusterHadoop, Racks: (racks + 1) / 2, HostsPerRack: hpr},
			{Type: ClusterService, Racks: racks, HostsPerRack: hpr},
			{Type: ClusterCache, Racks: (racks + 1) / 2, HostsPerRack: hpr},
			{Type: ClusterDB, Racks: (racks + 1) / 2, HostsPerRack: hpr},
		}}
	}
	return Config{Sites: []SiteSpec{
		{Datacenters: []DatacenterSpec{dc(false), dc(true)}},
		{Datacenters: []DatacenterSpec{dc(false)}},
	}}
}
