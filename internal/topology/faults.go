package topology

import "fmt"

// Fault-domain naming. The fault-injection layer (internal/netsim) fails
// and recovers concrete fabric elements; this file gives those elements
// stable, topology-level names so a fault schedule can be built, logged,
// and validated without reaching into the simulator's wiring. An Element
// identifies one failable unit of the 4-post Clos described in §3.1.

// ElementKind classifies a failable fabric element.
type ElementKind uint8

// Failable element kinds. The A and B fields of Element are interpreted
// per kind as documented on each constant.
const (
	// ElemHostLink is host A's access link (host NIC ↔ RSW port).
	ElemHostLink ElementKind = iota
	// ElemRSW is the top-of-rack switch of rack A.
	ElemRSW
	// ElemRSWUplink is the bidirectional uplink pair between rack A's RSW
	// and post B's CSW of its cluster.
	ElemRSWUplink
	// ElemCSW is cluster A's post-B cluster switch.
	ElemCSW
	// ElemFC is datacenter A's post-B Fat Cat aggregation switch.
	ElemFC
	numElementKinds
)

// String implements fmt.Stringer.
func (k ElementKind) String() string {
	switch k {
	case ElemHostLink:
		return "host-link"
	case ElemRSW:
		return "rsw"
	case ElemRSWUplink:
		return "rsw-uplink"
	case ElemCSW:
		return "csw"
	case ElemFC:
		return "fc"
	default:
		return fmt.Sprintf("ElementKind(%d)", uint8(k))
	}
}

// Element names one failable fabric element. The meaning of A and B
// depends on Kind (see the ElementKind constants).
type Element struct {
	Kind ElementKind
	A, B int
}

// String renders the element in the dotted form the fault log uses.
func (e Element) String() string {
	switch e.Kind {
	case ElemHostLink:
		return fmt.Sprintf("host-link:%d", e.A)
	case ElemRSW:
		return fmt.Sprintf("rsw:%d", e.A)
	case ElemRSWUplink:
		return fmt.Sprintf("rsw-uplink:%d.%d", e.A, e.B)
	case ElemCSW:
		return fmt.Sprintf("csw:%d.%d", e.A, e.B)
	case ElemFC:
		return fmt.Sprintf("fc:%d.%d", e.A, e.B)
	default:
		return fmt.Sprintf("element(%d):%d.%d", uint8(e.Kind), e.A, e.B)
	}
}

// PostsPerCluster is the post count of the 4-post cluster design; post
// indices in Element.B range over [0, PostsPerCluster).
const PostsPerCluster = 4

// ValidElement reports whether e names an element that exists in t.
func (t *Topology) ValidElement(e Element) bool {
	switch e.Kind {
	case ElemHostLink:
		return e.A >= 0 && e.A < t.NumHosts()
	case ElemRSW:
		return e.A >= 0 && e.A < len(t.Racks)
	case ElemRSWUplink:
		return e.A >= 0 && e.A < len(t.Racks) && e.B >= 0 && e.B < PostsPerCluster
	case ElemCSW:
		return e.A >= 0 && e.A < len(t.Clusters) && e.B >= 0 && e.B < PostsPerCluster
	case ElemFC:
		return e.A >= 0 && e.A < len(t.Datacenters) && e.B >= 0 && e.B < PostsPerCluster
	default:
		return false
	}
}
