package telemetry

import (
	"math/bits"
	"sort"
)

// TierStats accumulates per-hop queuing behaviour for one switch tier.
// Queuing-delay quantiles come from a power-of-two histogram (the same
// bucketing the obs layer uses), which merges exactly and keeps the
// aggregate deterministic under any fold order of equal-keyed partials.
type TierStats struct {
	Hops      int64
	QDelaySum int64 // ns
	QDelayMax int64
	QDepthSum int64 // bytes
	QDepthMax int64

	delayHist [65]int64 // bucket i counts delays with bit-length i
}

// addHop folds one hop.
func (t *TierStats) addHop(h *Hop) {
	t.Hops++
	t.QDelaySum += h.QDelay
	if h.QDelay > t.QDelayMax {
		t.QDelayMax = h.QDelay
	}
	t.QDepthSum += h.QDepth
	if h.QDepth > t.QDepthMax {
		t.QDepthMax = h.QDepth
	}
	t.delayHist[bits.Len64(uint64(h.QDelay))]++
}

// Merge folds another tier's stats into t.
func (t *TierStats) Merge(o *TierStats) {
	t.Hops += o.Hops
	t.QDelaySum += o.QDelaySum
	if o.QDelayMax > t.QDelayMax {
		t.QDelayMax = o.QDelayMax
	}
	t.QDepthSum += o.QDepthSum
	if o.QDepthMax > t.QDepthMax {
		t.QDepthMax = o.QDepthMax
	}
	for i, c := range o.delayHist {
		t.delayHist[i] += c
	}
}

// MeanQDelay returns the mean queuing delay in ns (0 when empty).
func (t *TierStats) MeanQDelay() float64 {
	if t.Hops == 0 {
		return 0
	}
	return float64(t.QDelaySum) / float64(t.Hops)
}

// MeanQDepth returns the mean enqueue-time buffer depth in bytes.
func (t *TierStats) MeanQDepth() float64 {
	if t.Hops == 0 {
		return 0
	}
	return float64(t.QDepthSum) / float64(t.Hops)
}

// QDelayQuantile returns an upper bound on the p-quantile of queuing
// delay (ns): the top of the histogram bucket where the cumulative count
// crosses p. Resolution is a factor of two — coarse, but exact to merge
// and stable to compare.
func (t *TierStats) QDelayQuantile(p float64) float64 {
	if t.Hops == 0 {
		return 0
	}
	target := int64(p * float64(t.Hops))
	if target >= t.Hops {
		target = t.Hops - 1
	}
	var cum int64
	for i, c := range t.delayHist {
		cum += c
		if cum > target {
			if i == 0 {
				return 0
			}
			// Bucket upper bound, clamped to the observed maximum so the
			// quantile never reports above the recorded extreme.
			ub := float64(int64(1) << uint(i))
			if ub > float64(t.QDelayMax) {
				return float64(t.QDelayMax)
			}
			return ub
		}
	}
	return float64(t.QDelayMax)
}

// Agg is the mergeable digest of every record a sink finished: the
// per-task partial that folds at the task-order frontier, exactly like an
// fbflow.Partial or obs.Shard.
type Agg struct {
	Sampled    int64 // records opened (delivery attempts of sampled flows)
	Delivered  int64
	Dropped    int64 // terminal drops of any cause
	Rerouted   int64 // attempts ECMP re-hashed off their hash post
	Retransmit int64 // attempts with Tries > 0
	HopsTotal  int64

	// DropsByReason counts terminal drops per cause; DropMatrix attributes
	// them to the tier of the hop that lost the packet (no-live-path drops
	// never reach a hop and appear only in DropsByReason).
	DropsByReason [NumReasons]int64
	DropMatrix    [NumReasons][NumTiers]int64

	Tiers [NumTiers]TierStats

	// End-to-end delivery latency of sampled packets, ns.
	DeliverNsSum int64
	DeliverNsMax int64
}

// fold accumulates one finished record.
func (a *Agg) fold(r *PathRecord) {
	a.HopsTotal += int64(len(r.Hops))
	for i := range r.Hops {
		h := &r.Hops[i]
		if h.Tier < NumTiers {
			a.Tiers[h.Tier].addHop(h)
		}
	}
	switch r.Status {
	case ReasonDelivered:
		a.Delivered++
		d := r.Done - r.Injected
		a.DeliverNsSum += d
		if d > a.DeliverNsMax {
			a.DeliverNsMax = d
		}
	default:
		a.Dropped++
		if r.Status < NumReasons {
			a.DropsByReason[r.Status]++
			if n := len(r.Hops); n > 0 && r.Hops[n-1].Tier < NumTiers {
				a.DropMatrix[r.Status][r.Hops[n-1].Tier]++
			}
		}
	}
}

// Merge folds another aggregate into a. Merging in task order reproduces
// the sequential fold bit for bit.
func (a *Agg) Merge(o *Agg) {
	a.Sampled += o.Sampled
	a.Delivered += o.Delivered
	a.Dropped += o.Dropped
	a.Rerouted += o.Rerouted
	a.Retransmit += o.Retransmit
	a.HopsTotal += o.HopsTotal
	for i := range o.DropsByReason {
		a.DropsByReason[i] += o.DropsByReason[i]
	}
	for i := range o.DropMatrix {
		for j := range o.DropMatrix[i] {
			a.DropMatrix[i][j] += o.DropMatrix[i][j]
		}
	}
	for i := range o.Tiers {
		a.Tiers[i].Merge(&o.Tiers[i])
	}
	a.DeliverNsSum += o.DeliverNsSum
	if o.DeliverNsMax > a.DeliverNsMax {
		a.DeliverNsMax = o.DeliverNsMax
	}
}

// DeliveredFrac returns delivered attempts over sampled attempts.
func (a *Agg) DeliveredFrac() float64 {
	if a.Sampled == 0 {
		return 0
	}
	return float64(a.Delivered) / float64(a.Sampled)
}

// MeanDeliverNs returns the mean end-to-end latency of delivered sampled
// packets, ns.
func (a *Agg) MeanDeliverNs() float64 {
	if a.Delivered == 0 {
		return 0
	}
	return float64(a.DeliverNsSum) / float64(a.Delivered)
}

// PortHotspot ranks one switch egress port by its peak sampled queue
// occupancy across a run.
type PortHotspot struct {
	Switch    uint32
	Port      int
	PeakBytes int64
	Drops     int64 // reserved for callers that join drop counters in
}

// Hotspots scans a sink's occupancy series and merges per-port peaks into
// the byPort map keyed switch<<16|port. Call once per sink at the fold
// frontier, then rank the merged map with RankHotspots.
func Hotspots(s *Sink, byPort map[uint64]int64) {
	for _, os := range s.Occ {
		for i := 0; i < os.Samples(); i++ {
			row := os.Row(i)
			for p, v := range row {
				k := uint64(os.Switch)<<16 | uint64(p)
				if v > byPort[k] {
					byPort[k] = v
				}
			}
		}
	}
}

// RankHotspots converts a merged peak map into the top-n ranking, ordered
// by peak bytes descending with (switch, port) as the deterministic tie
// break.
func RankHotspots(byPort map[uint64]int64, n int) []PortHotspot {
	out := make([]PortHotspot, 0, len(byPort))
	for k, v := range byPort {
		if v <= 0 {
			continue
		}
		out = append(out, PortHotspot{Switch: uint32(k >> 16), Port: int(k & 0xffff), PeakBytes: v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PeakBytes != b.PeakBytes {
			return a.PeakBytes > b.PeakBytes
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		return a.Port < b.Port
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// OccQuantiles computes the (p50, p99, max) of a switch's shared-buffer
// occupancy over one series, as fractions of bufBytes. The quantiles are
// taken over the fixed-interval samples by sorting a scratch slice the
// caller provides (grown as needed and returned for reuse).
func OccQuantiles(os *OccSeries, bufBytes int64, scratch []int64) (p50, p99, max float64, outScratch []int64) {
	n := os.Samples()
	if n == 0 || bufBytes <= 0 {
		return 0, 0, 0, scratch
	}
	if cap(scratch) < n {
		scratch = make([]int64, n)
	}
	scratch = scratch[:n]
	var m int64
	for i := 0; i < n; i++ {
		t := os.Total(i)
		scratch[i] = t
		if t > m {
			m = t
		}
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	q := func(p float64) float64 {
		idx := int(p * float64(n-1))
		return float64(scratch[idx]) / float64(bufBytes)
	}
	return q(0.5), q(0.99), float64(m) / float64(bufBytes), scratch
}
