package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"fbdcnet/internal/packet"
)

func testKey(i int) packet.FlowKey {
	return packet.FlowKey{
		Src: packet.Addr(i), Dst: packet.Addr(i + 1000),
		SrcPort: uint16(10000 + i), DstPort: 80, Proto: packet.TCP,
	}
}

// TestSamplingDeterministic pins the tentpole sampling contract: the
// selected flow set is a pure function of (seed, flow key) — identical
// across sinks, call orders, and hence worker counts — and tracks the
// configured rate.
func TestSamplingDeterministic(t *testing.T) {
	a := NewSink(42, 0.1)
	b := NewSink(42, 0.1)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		k := testKey(i)
		va := a.Sampled(k)
		// Query b in reverse arrival order: decisions must not depend on
		// observation order.
		vb := b.Sampled(testKey(n - 1 - i))
		_ = vb
		if va {
			hits++
		}
	}
	for i := 0; i < n; i++ {
		k := testKey(i)
		if a.Sampled(k) != b.Sampled(k) {
			t.Fatalf("flow %d: sampling decision differs between sinks", i)
		}
	}
	frac := float64(hits) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("sample rate 0.1 selected %.4f of flows", frac)
	}
	// A different seed must select a different set.
	c := NewSink(43, 0.1)
	same := 0
	for i := 0; i < n; i++ {
		if a.Sampled(testKey(i)) == c.Sampled(testKey(i)) {
			same++
		}
	}
	if same == n {
		t.Fatal("seed 42 and 43 selected identical flow sets")
	}
	if s := NewSink(42, 0); s.Sampled(testKey(1)) {
		t.Fatal("rate 0 sampled a flow")
	}
	if s := NewSink(42, 1); !s.Sampled(testKey(1)) {
		t.Fatal("rate 1 skipped a flow")
	}
}

// TestAllocFreeFastPath pins the zero-alloc contract of the per-packet
// and per-hop hot paths: a memoized sampling probe and an in-capacity hop
// append may not allocate.
func TestAllocFreeFastPath(t *testing.T) {
	s := NewSink(42, 0.1)
	k := testKey(7)
	s.Sampled(k) // memoize
	if n := testing.AllocsPerRun(1000, func() { s.Sampled(k) }); n != 0 {
		t.Fatalf("memoized Sampled allocates %.2f/op", n)
	}
	r := &PathRecord{Hops: make([]Hop, 0, MaxHops)}
	if n := testing.AllocsPerRun(1000, func() {
		r.Hops = r.Hops[:0]
		for i := 0; i < MaxHops; i++ {
			r.AddHop(uint32(i), TierRSW, 1, ReasonForwarded, 100, 10, 1000)
		}
	}); n != 0 {
		t.Fatalf("AddHop within MaxHops allocates %.2f/op", n)
	}
	// Finishing into a warm pool (records beyond MaxRecords) reuses
	// records without allocating.
	s.MaxRecords = 0
	rec := s.Start(k, 100, 0, 1, false, 0)
	s.Finish(rec, ReasonDelivered, 50)
	if n := testing.AllocsPerRun(1000, func() {
		r := s.Start(k, 100, 0, 1, false, 0)
		r.AddHop(1, TierRSW, 2, ReasonForwarded, 64, 5, 10)
		s.Finish(r, ReasonDelivered, 50)
	}); n != 0 {
		t.Fatalf("pooled Start/Finish allocates %.2f/op", n)
	}
}

// TestAggFold checks record folding and task-order merging.
func TestAggFold(t *testing.T) {
	s := NewSink(1, 1)
	r := s.Start(testKey(1), 1500, 0, 2, false, 100)
	r.AddHop(0, TierRSW, 3, ReasonForwarded, 4096, 2000, 100)
	r.AddHop(5, TierCSW, 1, ReasonForwarded, 0, 0, 4000)
	s.Finish(r, ReasonDelivered, 9100)

	r = s.Start(testKey(2), 900, 1, 0, true, 200)
	r.AddHop(0, TierRSW, 3, ReasonBufferDrop, 1<<15, 0, 200)
	s.Finish(r, ReasonBufferDrop, 200)

	s.Drop(testKey(3), 64, 0, ReasonNoLivePath, 300)

	a := s.Agg
	if a.Sampled != 3 || a.Delivered != 1 || a.Dropped != 2 {
		t.Fatalf("counts: %+v", a)
	}
	if a.Rerouted != 1 || a.Retransmit != 1 || a.HopsTotal != 3 {
		t.Fatalf("flags: %+v", a)
	}
	if a.DropsByReason[ReasonBufferDrop] != 1 || a.DropsByReason[ReasonNoLivePath] != 1 {
		t.Fatalf("drop reasons: %v", a.DropsByReason)
	}
	if a.DropMatrix[ReasonBufferDrop][TierRSW] != 1 {
		t.Fatalf("drop matrix: %v", a.DropMatrix)
	}
	if a.Tiers[TierRSW].Hops != 2 || a.Tiers[TierCSW].Hops != 1 {
		t.Fatalf("tier hops: rsw=%d csw=%d", a.Tiers[TierRSW].Hops, a.Tiers[TierCSW].Hops)
	}
	if got := a.Tiers[TierRSW].MeanQDelay(); got != 1000 {
		t.Fatalf("rsw mean qdelay = %v", got)
	}
	if got := a.MeanDeliverNs(); got != 9000 {
		t.Fatalf("mean deliver = %v", got)
	}

	// Merging two copies doubles every count.
	var m Agg
	m.Merge(&a)
	m.Merge(&a)
	if m.Sampled != 2*a.Sampled || m.HopsTotal != 2*a.HopsTotal ||
		m.Tiers[TierRSW].Hops != 2*a.Tiers[TierRSW].Hops ||
		m.DropMatrix[ReasonBufferDrop][TierRSW] != 2 {
		t.Fatalf("merge mismatch: %+v", m)
	}
	if m.Tiers[TierRSW].QDelayQuantile(0.99) < m.Tiers[TierRSW].MeanQDelay() {
		t.Fatalf("p99 below mean: p99=%v mean=%v",
			m.Tiers[TierRSW].QDelayQuantile(0.99), m.Tiers[TierRSW].MeanQDelay())
	}
}

// TestOccSeries exercises the columnar buffer, pooling, quantiles, and
// hotspot ranking.
func TestOccSeries(t *testing.T) {
	pool := NewBufferPool()
	s := NewSink(1, 0)
	s.Buffers = pool
	os := s.NewOccSeries(3, 2)
	for i := 0; i < 100; i++ {
		row := os.Extend(int64(i) * 1000)
		row[0] = int64(i)
		row[1] = int64(2 * i)
	}
	if os.Samples() != 100 {
		t.Fatalf("samples = %d", os.Samples())
	}
	if got := os.Total(10); got != 30 {
		t.Fatalf("total(10) = %d", got)
	}
	p50, p99, max, _ := OccQuantiles(os, 300, nil)
	if max != float64(99+198)/300 {
		t.Fatalf("max = %v", max)
	}
	if p50 <= 0 || p99 < p50 || max < p99 {
		t.Fatalf("quantiles disordered: p50=%v p99=%v max=%v", p50, p99, max)
	}

	byPort := map[uint64]int64{}
	Hotspots(s, byPort)
	ranked := RankHotspots(byPort, 10)
	if len(ranked) != 2 {
		t.Fatalf("hotspots = %d", len(ranked))
	}
	if ranked[0].Switch != 3 || ranked[0].Port != 1 || ranked[0].PeakBytes != 198 {
		t.Fatalf("top hotspot = %+v", ranked[0])
	}

	// Release returns buffers to the pool; the next series reuses the
	// arrays with cleared state.
	s.Release()
	os2 := pool.Get()
	if os2.Samples() != 0 || len(os2.Vals) != 0 {
		t.Fatalf("pooled series not reset: %d samples", os2.Samples())
	}
}

// TestRecordFileRoundTrip pins the JSONL record format traceview reads.
func TestRecordFileRoundTrip(t *testing.T) {
	s := NewSink(42, 1)
	s.RegisterSwitch("rsw0", TierRSW, 8)
	s.RegisterSwitch("csw0.1", TierCSW, 4)
	r := s.Start(testKey(9), 1500, 0, 1, true, 10)
	r.AddHop(0, TierRSW, 2, ReasonForwarded, 512, 1200, 10)
	r.AddHop(1, TierCSW, 0, ReasonForwarded, 0, 0, 2210)
	s.Finish(r, ReasonDelivered, 4400)

	var buf bytes.Buffer
	if err := WriteRecords(&buf, s.Records, s.Switches()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"switch":"csw0.1"`) {
		t.Fatalf("switch name not resolved:\n%s", buf.String())
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("records = %d", len(got))
	}
	fr := got[0]
	if fr.Status != "delivered" || len(fr.Hops) != 2 || fr.Hops[0].Switch != "rsw0" ||
		fr.Hops[0].QDelayNs != 1200 || fr.Hops[1].Tier != "CSW" || !fr.Rerouted {
		t.Fatalf("round trip mismatch: %+v", fr)
	}
	if _, err := ReadRecords(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("bad line accepted")
	}
}

// TestRecordRetention checks the MaxRecords cap and pooling.
func TestRecordRetention(t *testing.T) {
	s := NewSink(1, 1)
	s.MaxRecords = 2
	for i := 0; i < 5; i++ {
		r := s.Start(testKey(i), 100, 0, 0, false, int64(i))
		s.Finish(r, ReasonDelivered, int64(i)+10)
	}
	if len(s.Records) != 2 {
		t.Fatalf("retained %d records, want 2", len(s.Records))
	}
	if s.Agg.Sampled != 5 || s.Agg.Delivered != 5 {
		t.Fatalf("aggregate missed pooled records: %+v", s.Agg)
	}
	if s.Records[0].Injected != 0 || s.Records[1].Injected != 1 {
		t.Fatal("retention is not completion-ordered")
	}
}

// TestStreamKey pins the FNV-1a fold rng keying depends on.
func TestStreamKey(t *testing.T) {
	if StreamKey("telemetry") == StreamKey("") || StreamKey("a") == StreamKey("b") {
		t.Fatal("stream keys collide")
	}
	// FNV-1a of the empty string is the offset basis.
	if StreamKey("") != 14695981039346656037 {
		t.Fatalf("empty key = %d", StreamKey(""))
	}
}
