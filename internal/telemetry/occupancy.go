package telemetry

import "sync"

// OccSeries is the columnar queue-occupancy time series of one switch:
// one row per fixed-interval sample, one column per egress port. Rows are
// stored port-major in a single flat slice so a whole run reuses two
// backing arrays regardless of sample count.
type OccSeries struct {
	Switch uint32
	Ports  int
	Times  []int64 // sample instants, ns
	Vals   []int64 // len(Times)*Ports; Vals[i*Ports+p] = queued bytes on port p
}

// Extend appends one sample row at time t and returns the row's value
// slice for the caller to fill (one queued-bytes entry per port).
func (o *OccSeries) Extend(t int64) []int64 {
	o.Times = append(o.Times, t)
	n := len(o.Vals)
	if n+o.Ports <= cap(o.Vals) {
		o.Vals = o.Vals[:n+o.Ports]
	} else {
		o.Vals = append(o.Vals, make([]int64, o.Ports)...)
	}
	row := o.Vals[n : n+o.Ports]
	for i := range row {
		row[i] = 0
	}
	return row
}

// Samples returns the number of sample rows.
func (o *OccSeries) Samples() int { return len(o.Times) }

// Row returns the per-port values of sample i (shared, do not retain).
func (o *OccSeries) Row(i int) []int64 { return o.Vals[i*o.Ports : (i+1)*o.Ports] }

// Total returns the summed occupancy across ports at sample i — the
// switch's shared-buffer usage at that instant.
func (o *OccSeries) Total(i int) int64 {
	var t int64
	for _, v := range o.Row(i) {
		t += v
	}
	return t
}

// reset clears the series for reuse, keeping capacity.
func (o *OccSeries) reset() {
	o.Switch, o.Ports = 0, 0
	o.Times = o.Times[:0]
	o.Vals = o.Vals[:0]
}

// BufferPool recycles OccSeries backing arrays across the per-task sinks
// of a parallel experiment. It is safe for concurrent use; determinism is
// unaffected because every row is fully overwritten before it is read.
type BufferPool struct {
	p sync.Pool
}

// NewBufferPool creates an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

// Get returns a cleared series, reusing pooled capacity when available.
func (bp *BufferPool) Get() *OccSeries {
	if v := bp.p.Get(); v != nil {
		return v.(*OccSeries)
	}
	return new(OccSeries)
}

// Put returns a series to the pool.
func (bp *BufferPool) Put(o *OccSeries) {
	o.reset()
	bp.p.Put(o)
}
