// Package telemetry implements in-band network telemetry for the
// simulated fabric: deterministically sampled packets carry a per-hop
// path record appended at each switch (queue depth at enqueue, queuing
// delay, ECMP choice, and a drop/reroute/fault reason code), while every
// switch port emits a fixed-interval queue-occupancy time series into
// pooled columnar buffers.
//
// Sampling is a pure function of (seed, flow key): a flow is selected via
// rng.NewKeyed(seed, StreamKey("telemetry"), key.FastHash()), so the set
// of traced packets is identical at any worker count — the same contract
// every other subsystem honors. The package is a leaf: it imports only
// packet and rng, and netsim attaches to it, never the reverse.
package telemetry

import (
	"fbdcnet/internal/packet"
	"fbdcnet/internal/rng"
)

// Tier classifies a switch by its layer in the Clos fabric, edge outward.
// (netsim.Tier names link layers; this type names switch layers, which is
// what per-hop attribution needs.)
type Tier uint8

// Switch tiers, edge outward.
const (
	TierRSW Tier = iota // top-of-rack
	TierCSW             // cluster switch
	TierFC              // Fat Cat (datacenter aggregation)
	TierDCR             // datacenter router
	TierAGG             // site aggregator
	TierBB              // backbone
	NumTiers
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierRSW:
		return "RSW"
	case TierCSW:
		return "CSW"
	case TierFC:
		return "FC"
	case TierDCR:
		return "DCR"
	case TierAGG:
		return "AGG"
	case TierBB:
		return "BB"
	default:
		return "?"
	}
}

// Reason codes how a hop (or the packet as a whole) was disposed of. The
// same code space serves per-hop records and terminal packet status, so
// drop attribution can join the two directly.
type Reason uint8

// Disposal reason codes.
const (
	ReasonForwarded  Reason = iota // hop accepted the packet and transmitted it
	ReasonDelivered                // terminal: reached the destination host
	ReasonBufferDrop               // shared buffer pool exhausted at enqueue
	ReasonSwitchDown               // switch fault, at receive or at departure
	ReasonLinkDown                 // link fault, at receive or at departure
	ReasonNoLivePath               // no viable ECMP post at injection (fault dead end)
	NumReasons
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonForwarded:
		return "forwarded"
	case ReasonDelivered:
		return "delivered"
	case ReasonBufferDrop:
		return "buffer-drop"
	case ReasonSwitchDown:
		return "switch-down"
	case ReasonLinkDown:
		return "link-down"
	case ReasonNoLivePath:
		return "no-live-path"
	default:
		return "?"
	}
}

// StreamKey folds a name into a key for rng.NewKeyed, so named telemetry
// streams stay decorrelated from every other keyed stream (FNV-1a, the
// same fold the fault scheduler uses for scenario names).
func StreamKey(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// telemetryKey tags the sampling stream: the "telemetry" in
// rng.NewKeyed(seed, "telemetry", flowKey).
var telemetryKey = StreamKey("telemetry")

// MaxHops is the longest possible path through the fabric: an inter-site
// route touches eleven switches. Records preallocate this capacity so
// AddHop never allocates on a Clos path.
const MaxHops = 11

// Hop is one switch traversal of a sampled packet.
type Hop struct {
	Switch uint32 // dense switch ID assigned by RegisterSwitch
	Tier   Tier
	Reason Reason
	Port   uint16 // egress port the hop queued the packet on
	QDepth int64  // shared-buffer bytes already held at enqueue
	QDelay int64  // ns spent waiting behind earlier departures
	At     int64  // engine time of the hop, ns
}

// PathRecord is the full trace of one sampled delivery attempt. Each
// retransmission attempt gets its own record, so Tries distinguishes
// first transmissions from fault-layer retries.
type PathRecord struct {
	Key      packet.FlowKey
	Size     uint32
	Tries    uint8
	Post     uint8 // ECMP post the flow hash (possibly rerouted) selected
	Rerouted bool  // true when a fault moved the packet off its hash post
	Status   Reason
	Injected int64 // ns
	Done     int64 // ns: delivery or drop instant
	Hops     []Hop
}

// AddHop appends one switch traversal. Within MaxHops capacity — every
// Clos path — it does not allocate.
func (r *PathRecord) AddHop(sw uint32, tier Tier, port uint16, reason Reason, qdepth, qdelay, at int64) {
	r.Hops = append(r.Hops, Hop{
		Switch: sw, Tier: tier, Port: port, Reason: reason,
		QDepth: qdepth, QDelay: qdelay, At: at,
	})
}

// FailLastHop rewrites the final hop's reason code: a packet that queued
// successfully but was lost at its departure instant (a fault firing
// mid-queue) is attributed to the hop that held it.
func (r *PathRecord) FailLastHop(reason Reason) {
	if n := len(r.Hops); n > 0 {
		r.Hops[n-1].Reason = reason
	}
}

// reset clears a record for reuse, keeping the Hops capacity.
func (r *PathRecord) reset() {
	*r = PathRecord{Hops: r.Hops[:0]}
}

// SwitchInfo describes one registered switch of the traced fabric.
type SwitchInfo struct {
	Name  string
	Tier  Tier
	Ports int
}

// Sink collects path records and occupancy series for one fabric run. It
// is single-goroutine, like the Engine driving it; parallel experiments
// give each task its own Sink and fold them at the task-order frontier.
type Sink struct {
	seed uint64
	rate float64

	switches []SwitchInfo
	byName   map[string]uint32

	// sampled memoizes the per-flow keyed-rng decision so the per-packet
	// check is one map probe (and allocation-free after the flow's first
	// packet).
	sampled map[uint64]bool

	// MaxRecords caps how many finished records are retained verbatim for
	// export and rendering; aggregates in Agg always cover every record.
	MaxRecords int
	Records    []*PathRecord
	free       []*PathRecord

	// Buffers, when non-nil, supplies pooled occupancy series; otherwise
	// NewOccSeries allocates fresh ones.
	Buffers *BufferPool
	Occ     []*OccSeries

	Agg Agg
}

// DefaultMaxRecords bounds per-sink verbatim record retention.
const DefaultMaxRecords = 64

// NewSink creates a sink sampling the given fraction of flows. The seed
// must be the experiment seed: sampling decisions are a pure function of
// (seed, flow key) and nothing else.
func NewSink(seed uint64, rate float64) *Sink {
	return &Sink{
		seed:       seed,
		rate:       rate,
		byName:     make(map[string]uint32),
		sampled:    make(map[uint64]bool),
		MaxRecords: DefaultMaxRecords,
	}
}

// Rate returns the configured flow sampling fraction.
func (s *Sink) Rate() float64 { return s.rate }

// RegisterSwitch assigns the next dense switch ID. Fabrics register their
// switches in a fixed order, so IDs are stable across runs and across the
// per-window fabrics of one experiment.
func (s *Sink) RegisterSwitch(name string, tier Tier, ports int) uint32 {
	id := uint32(len(s.switches))
	s.switches = append(s.switches, SwitchInfo{Name: name, Tier: tier, Ports: ports})
	s.byName[name] = id
	return id
}

// Switches returns the registration table (shared, do not mutate).
func (s *Sink) Switches() []SwitchInfo { return s.switches }

// SwitchByName resolves a switch name to its registered ID.
func (s *Sink) SwitchByName(name string) (uint32, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// Sampled reports whether the flow carries path records. The decision is
// drawn once per flow from rng.NewKeyed(seed, "telemetry", flowHash) and
// memoized; repeat calls are a single map probe.
func (s *Sink) Sampled(key packet.FlowKey) bool {
	h := key.FastHash()
	if v, ok := s.sampled[h]; ok {
		return v
	}
	v := rng.NewKeyed(s.seed, telemetryKey, h).Float64() < s.rate
	s.sampled[h] = v
	return v
}

// Start opens a path record for one sampled delivery attempt, reusing a
// pooled record when one is free.
func (s *Sink) Start(key packet.FlowKey, size uint32, tries, post uint8, rerouted bool, now int64) *PathRecord {
	var r *PathRecord
	if n := len(s.free); n > 0 {
		r = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		r = &PathRecord{Hops: make([]Hop, 0, MaxHops)}
	}
	r.Key, r.Size, r.Tries, r.Post, r.Rerouted = key, size, tries, post, rerouted
	r.Injected = now
	s.Agg.Sampled++
	if tries > 0 {
		s.Agg.Retransmit++
	}
	if rerouted {
		s.Agg.Rerouted++
	}
	return r
}

// Finish closes a record with its terminal status, folds it into the
// aggregate, and either retains it (up to MaxRecords) or returns it to
// the pool.
func (s *Sink) Finish(r *PathRecord, status Reason, now int64) {
	r.Status, r.Done = status, now
	s.Agg.fold(r)
	if len(s.Records) < s.MaxRecords {
		s.Records = append(s.Records, r)
		return
	}
	r.reset()
	s.free = append(s.free, r)
}

// Drop records a sampled packet lost before entering the fabric — the
// no-live-path dead end of the fault layer, where no hop ever sees it.
func (s *Sink) Drop(key packet.FlowKey, size uint32, tries uint8, reason Reason, now int64) {
	r := s.Start(key, size, tries, 0, false, now)
	s.Finish(r, reason, now)
}

// NewOccSeries opens a columnar occupancy series for one switch, drawing
// from the buffer pool when attached, and tracks it on the sink.
func (s *Sink) NewOccSeries(sw uint32, ports int) *OccSeries {
	var os *OccSeries
	if s.Buffers != nil {
		os = s.Buffers.Get()
	} else {
		os = new(OccSeries)
	}
	os.Switch, os.Ports = sw, ports
	s.Occ = append(s.Occ, os)
	return os
}

// Release returns every pooled resource — occupancy buffers and retained
// records' free list — after a fold. Call at the task-order frontier once
// the sink's data has been merged.
func (s *Sink) Release() {
	if s.Buffers != nil {
		for _, os := range s.Occ {
			s.Buffers.Put(os)
		}
	}
	s.Occ = nil
	s.free = nil
}
