package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// FileHop is the on-disk form of one hop, with the switch resolved to its
// name so record files stand alone.
type FileHop struct {
	Switch   string `json:"switch"`
	Tier     string `json:"tier"`
	Port     uint16 `json:"port"`
	Reason   string `json:"reason"`
	QDepth   int64  `json:"qdepth_bytes"`
	QDelayNs int64  `json:"qdelay_ns"`
	AtNs     int64  `json:"at_ns"`
}

// FileRecord is the on-disk form of one path record: one JSON object per
// line (JSONL), human-greppable and streamable.
type FileRecord struct {
	Src      string    `json:"src"`
	Dst      string    `json:"dst"`
	SrcPort  uint16    `json:"sport"`
	DstPort  uint16    `json:"dport"`
	Proto    uint8     `json:"proto"`
	Size     uint32    `json:"size"`
	Tries    uint8     `json:"tries"`
	Post     uint8     `json:"post"`
	Rerouted bool      `json:"rerouted,omitempty"`
	Status   string    `json:"status"`
	Injected int64     `json:"injected_ns"`
	Done     int64     `json:"done_ns"`
	Hops     []FileHop `json:"hops"`
}

// ToFileRecord resolves a record against the switch table.
func ToFileRecord(r *PathRecord, switches []SwitchInfo) FileRecord {
	fr := FileRecord{
		Src:     r.Key.Src.String(),
		Dst:     r.Key.Dst.String(),
		SrcPort: r.Key.SrcPort, DstPort: r.Key.DstPort,
		Proto: uint8(r.Key.Proto),
		Size:  r.Size, Tries: r.Tries, Post: r.Post, Rerouted: r.Rerouted,
		Status:   r.Status.String(),
		Injected: r.Injected, Done: r.Done,
		Hops: make([]FileHop, 0, len(r.Hops)),
	}
	for i := range r.Hops {
		h := &r.Hops[i]
		name := fmt.Sprintf("sw%d", h.Switch)
		if int(h.Switch) < len(switches) {
			name = switches[h.Switch].Name
		}
		fr.Hops = append(fr.Hops, FileHop{
			Switch: name, Tier: h.Tier.String(), Port: h.Port,
			Reason: h.Reason.String(),
			QDepth: h.QDepth, QDelayNs: h.QDelay, AtNs: h.At,
		})
	}
	return fr
}

// WriteRecords streams records to w as JSONL, resolving switch IDs
// against the registration table.
func WriteRecords(w io.Writer, recs []*PathRecord, switches []SwitchInfo) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(ToFileRecord(r, switches)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRecords parses a JSONL record file.
func ReadRecords(r io.Reader) ([]FileRecord, error) {
	var out []FileRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var fr FileRecord
		if err := json.Unmarshal(b, &fr); err != nil {
			return nil, fmt.Errorf("telemetry: record file line %d: %v", line, err)
		}
		out = append(out, fr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
