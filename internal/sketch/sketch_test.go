package sketch

import (
	"bytes"
	"math"
	"reflect"
	"slices"
	"testing"

	"fbdcnet/internal/rng"
)

// skItem is one (key, weight) element of a synthetic stream.
type skItem struct {
	key uint64
	v   int64
}

// stream generates a deterministic heavy-tailed stream the way the
// engine seeds shard work: rng.NewKeyed over (seed, stream id). A few
// keys are hot (zipf-ish via modular clustering), most are cold.
func stream(seed uint64, n int) []skItem {
	r := rng.NewKeyed(seed, 0xbeef)
	out := make([]skItem, n)
	for i := range out {
		var k uint64
		if r.Bool(0.5) {
			k = r.Uint64n(16) // hot set
		} else {
			k = 16 + r.Uint64n(4096)
		}
		out[i] = skItem{key: k, v: int64(40 + r.Uint64n(1460))}
	}
	return out
}

// shardSplit partitions items into w contiguous shards, the same
// geometry the fleet collector uses for host ranges.
func shardSplit(items []skItem, w int) [][]skItem {
	shards := make([][]skItem, w)
	per := (len(items) + w - 1) / w
	for i := range shards {
		lo := min(i*per, len(items))
		hi := min(lo+per, len(items))
		shards[i] = items[lo:hi]
	}
	return shards
}

// TestCountMinMergeMatchesConcat is the metamorphic merge property:
// the sketch of the concatenated stream is bit-identical to the merge of
// per-shard sketches, at 1, 2, and 8 shards — int64 counters make
// addition associative, so this is exact, not approximate.
func TestCountMinMergeMatchesConcat(t *testing.T) {
	items := stream(42, 20000)
	whole := NewCountMin(4, 2048)
	for _, it := range items {
		whole.Add(it.key, it.v)
	}
	for _, w := range []int{1, 2, 8} {
		merged := NewCountMin(4, 2048)
		for _, shard := range shardSplit(items, w) {
			part := NewCountMin(4, 2048)
			for _, it := range shard {
				part.Add(it.key, it.v)
			}
			merged.Merge(part)
		}
		if !reflect.DeepEqual(whole.rows, merged.rows) || whole.count != merged.count {
			t.Fatalf("%d-shard merge differs from concatenated sketch", w)
		}
	}
}

// TestCountMinBounds pins the estimator guarantees: never undercounts,
// and overcounts by at most the declared additive bound.
func TestCountMinBounds(t *testing.T) {
	items := stream(7, 50000)
	cm := NewCountMin(4, 2048)
	truth := map[uint64]int64{}
	for _, it := range items {
		cm.Add(it.key, it.v)
		truth[it.key] += it.v
	}
	bound := cm.ErrorBound()
	for k, want := range truth {
		got := cm.Estimate(k)
		if got < want {
			t.Fatalf("key %d: estimate %d under truth %d", k, got, want)
		}
		if got > want+bound {
			t.Fatalf("key %d: estimate %d exceeds truth %d + bound %d", k, got, want, bound)
		}
	}
}

// TestHLLMergeMatchesConcat: register max is commutative and idempotent,
// so shard merges reproduce the concatenated sketch exactly.
func TestHLLMergeMatchesConcat(t *testing.T) {
	items := stream(43, 30000)
	whole := NewHLL(12)
	for _, it := range items {
		whole.Add(it.key)
	}
	for _, w := range []int{1, 2, 8} {
		merged := NewHLL(12)
		for _, shard := range shardSplit(items, w) {
			part := NewHLL(12)
			for _, it := range shard {
				part.Add(it.key)
			}
			merged.Merge(part)
		}
		if !bytes.Equal(whole.regs, merged.regs) {
			t.Fatalf("%d-shard HLL merge differs from concatenated sketch", w)
		}
	}
}

// TestHLLAccuracy checks the estimate stays within 3 standard errors of
// a known distinct count across a range of cardinalities.
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 5000, 200000} {
		h := NewHLL(12)
		r := rng.NewKeyed(9, uint64(n))
		seen := map[uint64]bool{}
		for len(seen) < n {
			k := r.Uint64()
			seen[k] = true
			h.Add(k)
			h.Add(k) // duplicates must not inflate
		}
		est := h.Estimate()
		rel := math.Abs(est-float64(n)) / float64(n)
		if tol := 3 * h.RelativeErrorBound(); rel > tol {
			t.Fatalf("n=%d: estimate %.0f off by %.2f%%, tolerance %.2f%%", n, est, 100*rel, 100*tol)
		}
	}
}

// TestSpaceSavingGuarantees pins the classic summary invariants on the
// single-stream sketch and on every shard-merge of it: estimates bracket
// truth, and every key heavier than Total/k is tracked.
func TestSpaceSavingGuarantees(t *testing.T) {
	items := stream(44, 30000)
	truth := map[uint64]int64{}
	var total int64
	for _, it := range items {
		truth[it.key] += it.v
		total += it.v
	}
	const k = 64
	check := func(name string, s *SpaceSaving) {
		t.Helper()
		if s.Total() != total {
			t.Fatalf("%s: total %d, want %d", name, s.Total(), total)
		}
		for key, want := range truth {
			count, err, ok := s.Estimate(key)
			if !ok {
				if want > total/int64(k) {
					t.Fatalf("%s: heavy key %d (weight %d > N/k=%d) not tracked", name, key, want, total/int64(k))
				}
				continue
			}
			if count < want {
				t.Fatalf("%s: key %d count %d under truth %d", name, key, count, want)
			}
			if count-err > want {
				t.Fatalf("%s: key %d lower bound %d over truth %d", name, key, count-err, want)
			}
		}
		if s.Len() > k {
			t.Fatalf("%s: %d entries exceed capacity %d", name, s.Len(), k)
		}
	}
	whole := NewSpaceSaving(k)
	for _, it := range items {
		whole.Update(it.key, it.v)
	}
	check("whole", whole)
	for _, w := range []int{2, 8} {
		merged := NewSpaceSaving(k)
		for _, shard := range shardSplit(items, w) {
			part := NewSpaceSaving(k)
			for _, it := range shard {
				part.Update(it.key, it.v)
			}
			merged.Merge(part)
		}
		check("merged", merged)
	}
}

// TestSpaceSavingDeterministicMerge: merging the same shard sketches in
// the same order twice yields identical Top sequences — the property the
// task-order frontier relies on for worker-count invariance.
func TestSpaceSavingDeterministicMerge(t *testing.T) {
	items := stream(45, 20000)
	build := func() []Entry {
		merged := NewSpaceSaving(48)
		for _, shard := range shardSplit(items, 8) {
			part := NewSpaceSaving(48)
			for _, it := range shard {
				part.Update(it.key, it.v)
			}
			merged.Merge(part)
		}
		return merged.Top(nil)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical merge sequences produced different summaries")
	}
}

// TestTDigestQuantiles pins accuracy against exact order statistics and
// the merge-vs-concatenated drift at 1/2/8 shards.
func TestTDigestQuantiles(t *testing.T) {
	items := stream(46, 40000)
	exact := make([]float64, len(items))
	for i, it := range items {
		exact[i] = float64(it.v)
	}
	// Exact quantiles via full sort.
	sorted := append([]float64(nil), exact...)
	slices.Sort(sorted)
	exactQ := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	build := func(w int) *TDigest {
		merged := NewTDigest(100)
		for _, shard := range shardSplit(items, w) {
			part := NewTDigest(100)
			for _, it := range shard {
				part.Add(float64(it.v), 1)
			}
			merged.Merge(part)
		}
		return merged
	}
	for _, w := range []int{1, 2, 8} {
		td := build(w)
		if got, want := td.Count(), float64(len(items)); got != want {
			t.Fatalf("%d shards: count %v, want %v", w, got, want)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			got := td.Quantile(q)
			if got < prev {
				t.Fatalf("%d shards: quantiles not monotone at q=%v", w, q)
			}
			prev = got
			want := exactQ(q)
			span := sorted[len(sorted)-1] - sorted[0]
			if math.Abs(got-want) > 0.05*span {
				t.Fatalf("%d shards: q=%v estimate %.1f vs exact %.1f drifts past 5%% of range", w, q, got, want)
			}
		}
		if td.Quantile(0) != sorted[0] || td.Quantile(1) != sorted[len(sorted)-1] {
			t.Fatalf("%d shards: extreme quantiles lost min/max", w)
		}
	}
}

// TestResetReuse: every sketch must be empty after Reset and produce
// identical results on a second identical fill — the serve loop rolls
// windows this way forever.
func TestResetReuse(t *testing.T) {
	items := stream(47, 10000)
	cm, ss, hll, td := NewCountMin(4, 1024), NewSpaceSaving(32), NewHLL(12), NewTDigest(100)
	fill := func() (int64, []Entry, float64, float64) {
		for _, it := range items {
			cm.Add(it.key, it.v)
			ss.Update(it.key, it.v)
			hll.Add(it.key)
			td.Add(float64(it.v), 1)
		}
		return cm.Estimate(3), ss.Top(nil), hll.Estimate(), td.Quantile(0.5)
	}
	e1, t1, h1, q1 := fill()
	cm.Reset()
	ss.Reset()
	hll.Reset()
	td.Reset()
	if cm.Count() != 0 || ss.Len() != 0 || hll.Estimate() != 0 || td.Count() != 0 {
		t.Fatal("Reset left residual state")
	}
	e2, t2, h2, q2 := fill()
	if e1 != e2 || h1 != h2 || q1 != q2 || !reflect.DeepEqual(t1, t2) {
		t.Fatal("second fill after Reset differs from first")
	}
}

// TestSteadyStateAllocs pins the zero-allocation contract of every
// sketch's update path once warm — the serve loop updates sketches per
// packet batch and must not churn the heap.
func TestSteadyStateAllocs(t *testing.T) {
	cm, ss, hll, td := NewCountMin(4, 2048), NewSpaceSaving(64), NewHLL(12), NewTDigest(100)
	r := rng.NewKeyed(48, 1)
	// Warm up: fill capacities and trigger first compactions.
	for i := 0; i < 50000; i++ {
		k := r.Uint64n(4096)
		cm.Add(k, 100)
		ss.Update(k, 100)
		hll.Add(k)
		td.Add(float64(k), 1)
	}
	var i uint64
	if n := testing.AllocsPerRun(5000, func() {
		i++
		k := (i * 2654435761) % 4096
		cm.Add(k, 100)
		ss.Update(k, 100)
		hll.Add(k)
		td.Add(float64(k), 1)
	}); n != 0 {
		t.Fatalf("steady-state sketch updates allocate %.2f per op, want 0", n)
	}
}

// TestBytesFixed: memory must be a function of construction parameters,
// not of how many distinct keys were fed.
func TestBytesFixed(t *testing.T) {
	cm, ss, hll, td := NewCountMin(4, 2048), NewSpaceSaving(64), NewHLL(12), NewTDigest(100)
	b0 := cm.Bytes() + ss.Bytes() + hll.Bytes() + td.Bytes()
	r := rng.NewKeyed(49, 1)
	for i := 0; i < 200000; i++ {
		k := r.Uint64()
		cm.Add(k, 1)
		ss.Update(k, 1)
		hll.Add(k)
		td.Add(float64(k%100000), 1)
	}
	if b1 := cm.Bytes() + ss.Bytes() + hll.Bytes() + td.Bytes(); b1 != b0 {
		t.Fatalf("footprint moved from %d to %d bytes under 200k distinct keys", b0, b1)
	}
}
