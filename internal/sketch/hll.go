package sketch

import (
	"fmt"
	"math"
)

// hllSeed decorrelates the HLL hash from the count-min rows and the
// openhash finalizer, which see the same packed keys.
const hllSeed = 0x2545f4914f6cdd1d

// HLL is a HyperLogLog distinct counter over packed uint64 keys.
// Registers take the max under Merge, so — like count-min — the merge of
// shard sketches is bit-identical to the sketch of the concatenated
// stream, at any shard count and in any merge order.
type HLL struct {
	p    uint8  // precision: 2^p registers
	regs []byte // 6 significant bits each, stored one per byte
}

// NewHLL returns an HLL with 2^p registers (4 <= p <= 16). p=12 (4 KiB,
// ~1.6% standard error) is the default precision used by the analysis
// layer.
func NewHLL(p int) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &HLL{p: uint8(p), regs: make([]byte, 1<<p)}
}

// Add observes key k.
func (h *HLL) Add(k uint64) {
	x := mix(k ^ hllSeed)
	idx := x >> (64 - h.p)
	// Rank: position of the leftmost 1-bit in the remaining 64-p bits.
	rest := x<<h.p | 1<<(h.p-1) // guard bit bounds the rank
	rank := byte(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Estimate returns the estimated number of distinct keys observed,
// with the standard small-range (linear counting) correction.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// Merge folds o into h (register-wise max). Precisions must match.
func (h *HLL) Merge(o *HLL) {
	if o == nil {
		return
	}
	if h.p != o.p {
		panic("sketch: merging HLLs of different precision")
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// Reset zeroes the registers without releasing them.
func (h *HLL) Reset() {
	for i := range h.regs {
		h.regs[i] = 0
	}
}

// Bytes returns the fixed register-array footprint.
func (h *HLL) Bytes() int { return len(h.regs) }

// AppendBinary appends the sketch's wire form — one precision byte
// followed by the raw register array — to buf and returns the extended
// slice. Registers are already one byte each, so the wire form is the
// in-memory form and the append is a straight copy.
func (h *HLL) AppendBinary(buf []byte) []byte {
	buf = append(buf, h.p)
	return append(buf, h.regs...)
}

// DecodeBinary replaces h's registers with the wire form at the front of
// data (as produced by AppendBinary) and returns the remainder. The
// encoded precision must match h's, and every register must be a
// representable rank — corrupt input errors rather than poisoning later
// estimates.
func (h *HLL) DecodeBinary(data []byte) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("sketch: HLL wire form truncated")
	}
	if data[0] != h.p {
		return nil, fmt.Errorf("sketch: HLL precision mismatch: wire %d, sketch %d", data[0], h.p)
	}
	n := len(h.regs)
	if len(data) < 1+n {
		return nil, fmt.Errorf("sketch: HLL registers truncated: need %d bytes, have %d", n, len(data)-1)
	}
	// Add's guard bit bounds the rank at 65-p; anything larger cannot have
	// been produced by a real sketch.
	maxRank := byte(65 - h.p)
	for i, r := range data[1 : 1+n] {
		if r > maxRank {
			return nil, fmt.Errorf("sketch: HLL register %d holds impossible rank %d (max %d)", i, r, maxRank)
		}
	}
	copy(h.regs, data[1:1+n])
	return data[1+n:], nil
}

// RelativeErrorBound returns the standard error 1.04/sqrt(m) of the
// estimator — the declared bound the sketcherr harness scales into its
// per-window assertion.
func (h *HLL) RelativeErrorBound() float64 {
	return 1.04 / math.Sqrt(float64(len(h.regs)))
}
