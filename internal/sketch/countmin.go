package sketch

import "fmt"

// CountMin is a count-min sketch over packed uint64 keys with int64
// counters. Integer counters make Merge exact: addition is associative,
// so merging shard sketches in any grouping reproduces the sketch of the
// concatenated stream bit for bit — the metamorphic property the sketch
// test suite pins at 1/2/8 shards.
//
// Estimates never undercount: Estimate(k) >= the true total added under
// k, with overcount bounded by count/width per row (standard CM bound,
// taken as the min over depth independent rows).
type CountMin struct {
	depth int
	width int // power of two
	mask  uint64
	rows  []int64 // depth × width, row-major
	count int64   // total weight added, for error bounds
}

// cmRowSeeds are fixed per-row hash seeds. Constants — not derived from
// any runtime state — so independently constructed sketches of equal
// shape are always merge-compatible.
var cmRowSeeds = [...]uint64{
	0x9ae16a3b2f90404f, 0xc3a5c85c97cb3127, 0xb492b66fbe98f273,
	0x9ddfea08eb382d69, 0x8f14e45fceea1e7b, 0xa54ff53a5f1d36f1,
	0x510e527fade682d1, 0x9b05688c2b3e6c1f,
}

// NewCountMin returns a depth × width sketch; width is rounded up to a
// power of two, depth is capped at the fixed seed set.
func NewCountMin(depth, width int) *CountMin {
	if depth <= 0 {
		depth = 4
	}
	if depth > len(cmRowSeeds) {
		depth = len(cmRowSeeds)
	}
	w := 16
	for w < width {
		w <<= 1
	}
	return &CountMin{
		depth: depth,
		width: w,
		mask:  uint64(w - 1),
		rows:  make([]int64, depth*w),
	}
}

// Add folds v into the counters for key k. v may be any non-negative
// weight (bytes, packets).
func (c *CountMin) Add(k uint64, v int64) {
	c.count += v
	base := 0
	for d := 0; d < c.depth; d++ {
		slot := mix(k^cmRowSeeds[d]) & c.mask
		c.rows[base+int(slot)] += v
		base += c.width
	}
}

// Estimate returns the count-min estimate for k: the minimum counter
// across rows, an upper bound on the true total.
func (c *CountMin) Estimate(k uint64) int64 {
	est := int64(-1)
	base := 0
	for d := 0; d < c.depth; d++ {
		slot := mix(k^cmRowSeeds[d]) & c.mask
		if v := c.rows[base+int(slot)]; est < 0 || v < est {
			est = v
		}
		base += c.width
	}
	if est < 0 {
		return 0
	}
	return est
}

// Count returns the total weight added since the last Reset.
func (c *CountMin) Count() int64 { return c.count }

// ErrorBound returns the additive overcount ceiling e·N/width that each
// row guarantees with high probability — the declared bound the
// sketcherr harness checks estimates against.
func (c *CountMin) ErrorBound() int64 {
	if c.width == 0 {
		return 0
	}
	// e/width ≈ 2.718/width; integer math keeps the bound deterministic.
	return (c.count*2718 + 999) / (1000 * int64(c.width))
}

// Merge folds o into c. Both sketches must have identical shape; since
// row seeds are package constants, equal shape implies equal hash
// functions and the merge is exact.
func (c *CountMin) Merge(o *CountMin) {
	if o == nil {
		return
	}
	if c.depth != o.depth || c.width != o.width {
		panic(fmt.Sprintf("sketch: merging count-min %dx%d into %dx%d", o.depth, o.width, c.depth, c.width))
	}
	for i, v := range o.rows {
		c.rows[i] += v
	}
	c.count += o.count
}

// Reset zeroes the sketch without releasing its backing array.
func (c *CountMin) Reset() {
	for i := range c.rows {
		c.rows[i] = 0
	}
	c.count = 0
}

// Bytes returns the fixed memory footprint of the counter array.
func (c *CountMin) Bytes() int { return 8 * len(c.rows) }
