package sketch

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCountMin drives a count-min sketch with an arbitrary operation
// tape and cross-checks the hard estimator invariants against an exact
// map: estimates never undercount, a half/half split merged back equals
// the whole sketch, and Reset leaves no residue. (The additive error
// ceiling is probabilistic — an adversarial tape can collide all rows —
// so it is pinned statistically in TestCountMinBounds, not here.)
func FuzzCountMin(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	seed := make([]byte, 0, 96)
	for i := 0; i < 8; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(i)*0x9e3779b97f4a7c15)
		seed = binary.LittleEndian.AppendUint32(seed, uint32(1500*i+40))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		type op struct {
			key uint64
			v   int64
		}
		var ops []op
		for len(data) >= 12 {
			k := binary.LittleEndian.Uint64(data)
			v := int64(binary.LittleEndian.Uint32(data[8:]))%100000 + 1
			ops = append(ops, op{key: k &^ (1 << 63), v: v})
			data = data[12:]
		}
		whole := NewCountMin(4, 256)
		lo, hi := NewCountMin(4, 256), NewCountMin(4, 256)
		truth := map[uint64]int64{}
		for i, o := range ops {
			whole.Add(o.key, o.v)
			if i < len(ops)/2 {
				lo.Add(o.key, o.v)
			} else {
				hi.Add(o.key, o.v)
			}
			truth[o.key] += o.v
		}
		for k, want := range truth {
			if got := whole.Estimate(k); got < want {
				t.Fatalf("estimate %d under truth %d for key %d", got, want, k)
			}
		}
		lo.Merge(hi)
		for k := range truth {
			if lo.Estimate(k) != whole.Estimate(k) {
				t.Fatalf("split-merge estimate differs from whole for key %d", k)
			}
		}
		if lo.Count() != whole.Count() {
			t.Fatalf("split-merge count %d, whole %d", lo.Count(), whole.Count())
		}
		whole.Reset()
		if whole.Count() != 0 {
			t.Fatal("Reset left a nonzero count")
		}
		for k := range truth {
			if whole.Estimate(k) != 0 {
				t.Fatalf("Reset left a nonzero estimate for key %d", k)
			}
		}
	})
}

// FuzzTDigestMerge splits an arbitrary float tape between two digests at
// an arbitrary point, merges them, and checks structural invariants:
// total weight is preserved exactly, quantiles are monotone in q, stay
// within [min, max], and the extreme quantiles recover min and max.
func FuzzTDigestMerge(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64, 0, 0, 64, 64}, uint8(1))
	seed := make([]byte, 0, 128)
	for i := 0; i < 32; i++ {
		seed = binary.LittleEndian.AppendUint32(seed, math.Float32bits(float32(i*i)+0.5))
	}
	f.Add(seed, uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, splitAt uint8) {
		var vals []float64
		for len(data) >= 4 {
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(data)))
			data = data[4:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return
		}
		split := int(splitAt) % len(vals)
		a, b := NewTDigest(50), NewTDigest(50)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			if i < split {
				a.Add(v, 1)
			} else {
				b.Add(v, 1)
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		a.Merge(b)
		if got, want := a.Count(), float64(len(vals)); got != want {
			t.Fatalf("merged count %v, want %v", got, want)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := a.Quantile(q)
			if v < prev {
				t.Fatalf("quantiles not monotone: q=%v gives %v after %v", q, v, prev)
			}
			if v < lo || v > hi {
				t.Fatalf("q=%v estimate %v escapes data range [%v, %v]", q, v, lo, hi)
			}
			prev = v
		}
		if a.Quantile(0) != lo || a.Quantile(1) != hi {
			t.Fatalf("extremes: got [%v, %v], want [%v, %v]", a.Quantile(0), a.Quantile(1), lo, hi)
		}
	})
}
