package sketch

import (
	"math"
	"slices"
)

// centroid is one (mean, weight) cluster of a t-digest.
type centroid struct {
	mean   float64
	weight float64
}

// TDigest is Dunning's merging t-digest: a fixed-size quantile summary
// whose accuracy concentrates at the tails (the k1 arcsin scale
// function), replacing the exact all-values stats.Sample retention for
// size/duration/rate quantiles in sketch mode.
//
// Determinism: Add and Quantile are pure functions of the insertion
// sequence (buffered points sort with a total (mean, weight) order
// before every compaction), and Merge is a pure function of the two
// operand states — so the parallel engine's fixed merge order yields
// worker-count-invariant digests.
type TDigest struct {
	compression float64
	centroids   []centroid // compacted, sorted by mean
	buf         []centroid // uncompacted recent additions
	merged      []centroid // compaction scratch, swapped with centroids
	total       float64    // total weight across centroids + buf
	min, max    float64
}

// NewTDigest returns a digest with the given compression δ (≤0 selects
// the default 100: ~1% mid-quantile error, far tighter at the tails).
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = 100
	}
	capC := 4 * int(compression)
	return &TDigest{
		compression: compression,
		centroids:   make([]centroid, 0, capC),
		buf:         make([]centroid, 0, 8*int(compression)),
		merged:      make([]centroid, 0, capC),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add observes value x with weight w (w <= 0 is ignored).
func (t *TDigest) Add(x, w float64) {
	if w <= 0 || math.IsNaN(x) {
		return
	}
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.total += w
	t.buf = append(t.buf, centroid{mean: x, weight: w})
	if len(t.buf) == cap(t.buf) {
		t.compress()
	}
}

// Count returns the total weight observed since the last Reset.
func (t *TDigest) Count() float64 { return t.total }

// k1 is the arcsin scale function, normalized so one k-unit is the
// maximum span of a merged centroid.
func (t *TDigest) k1(q float64) float64 {
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// compress folds the buffer into the centroid list via the standard
// merge pass: walk both sorted sequences, merging neighbours while the
// combined cluster spans at most one k-unit.
func (t *TDigest) compress() {
	if len(t.buf) == 0 {
		return
	}
	slices.SortFunc(t.buf, func(a, b centroid) int {
		if a.mean != b.mean {
			if a.mean < b.mean {
				return -1
			}
			return 1
		}
		if a.weight != b.weight {
			if a.weight < b.weight {
				return -1
			}
			return 1
		}
		return 0
	})
	t.merged = t.merged[:0]
	i, j := 0, 0 // cursors into centroids, buf
	next := func() (centroid, bool) {
		switch {
		case i < len(t.centroids) && (j >= len(t.buf) || t.centroids[i].mean <= t.buf[j].mean):
			c := t.centroids[i]
			i++
			return c, true
		case j < len(t.buf):
			c := t.buf[j]
			j++
			return c, true
		}
		return centroid{}, false
	}
	cur, ok := next()
	if !ok {
		return
	}
	wSoFar := 0.0
	qLimit := t.total * kInv(t.k1(0)+1, t)
	for {
		c, ok := next()
		if !ok {
			break
		}
		if wSoFar+cur.weight+c.weight <= qLimit {
			// Merge c into cur: weighted-mean update, deterministic order.
			cur.weight += c.weight
			cur.mean += c.weight * (c.mean - cur.mean) / cur.weight
			continue
		}
		t.merged = append(t.merged, cur)
		wSoFar += cur.weight
		qLimit = t.total * kInv(t.k1(wSoFar/t.total)+1, t)
		cur = c
	}
	t.merged = append(t.merged, cur)
	t.centroids, t.merged = t.merged, t.centroids
	t.buf = t.buf[:0]
}

// kInv inverts k1, clamped to [0, 1].
func kInv(k float64, t *TDigest) float64 {
	x := k * 2 * math.Pi / t.compression
	if x <= -math.Pi/2 {
		return 0
	}
	if x >= math.Pi/2 {
		return 1
	}
	return (math.Sin(x) + 1) / 2
}

// Quantile returns the estimated q-quantile (q clamped to [0, 1]).
// It compacts pending additions first.
func (t *TDigest) Quantile(q float64) float64 {
	t.compress()
	cs := t.centroids
	if len(cs) == 0 {
		return 0
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	target := q * t.total
	// Centroid i is centered at cumulative weight cum_i - w_i/2.
	cum := 0.0
	prevMean, prevCenter := t.min, 0.0
	for i := range cs {
		center := cum + cs[i].weight/2
		if target <= center {
			span := center - prevCenter
			if span <= 0 {
				return cs[i].mean
			}
			frac := (target - prevCenter) / span
			return lerp(prevMean, cs[i].mean, frac)
		}
		cum += cs[i].weight
		prevMean, prevCenter = cs[i].mean, center
	}
	span := t.total - prevCenter
	if span <= 0 {
		return t.max
	}
	frac := (target - prevCenter) / span
	return lerp(prevMean, t.max, frac)
}

// lerp interpolates between segment endpoints a and b, f in [0, 1].
// The two-product form is exact at both endpoints (the one-product form
// a+f*(b-a) cancels catastrophically when |a| >> |b|, e.g. rounding to 0
// between a huge and a denormal value), and the segment clamp keeps
// rounding from escaping [a, b] — which is what keeps quantiles monotone
// in q and inside the observed data range.
func lerp(a, b, f float64) float64 {
	v := (1-f)*a + f*b
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Merge folds o into t. Both digests are compacted first (a
// deterministic operation), so the result depends only on the operands'
// logical contents.
func (t *TDigest) Merge(o *TDigest) {
	if o == nil || o.total == 0 {
		return
	}
	o.compress()
	if o.min < t.min {
		t.min = o.min
	}
	if o.max > t.max {
		t.max = o.max
	}
	for _, c := range o.centroids {
		t.total += c.weight
		t.buf = append(t.buf, c)
		if len(t.buf) == cap(t.buf) {
			t.compress()
		}
	}
}

// Centroids returns the number of compacted centroids (diagnostics).
func (t *TDigest) Centroids() int {
	t.compress()
	return len(t.centroids)
}

// Reset clears the digest without releasing its backing arrays.
func (t *TDigest) Reset() {
	t.centroids = t.centroids[:0]
	t.buf = t.buf[:0]
	t.total = 0
	t.min = math.Inf(1)
	t.max = math.Inf(-1)
}

// Bytes returns the fixed memory footprint of the centroid arrays.
func (t *TDigest) Bytes() int {
	return 16 * (cap(t.centroids) + cap(t.buf) + cap(t.merged))
}
