package sketch

import "slices"

// SpaceSaving is the Metwally et al. stream-summary: a fixed set of k
// counters tracking the heaviest keys of a weighted stream. Every key
// whose true weight exceeds N/k is guaranteed present, and each tracked
// key carries an interval [Count-Err, Count] bracketing its true weight.
//
// The structure is fully deterministic: ties in the eviction order break
// on ascending key, and Merge walks its operand in a canonical order, so
// a fixed merge sequence (the parallel engine's task-order frontier)
// yields worker-count-invariant results.
//
// Memory is fixed at construction: a k-entry slab, a k-entry min-heap,
// and a 2k-slot open-addressing index, reused across Reset.
type SpaceSaving struct {
	cap   int
	slab  []Entry // live entries, unordered; heap orders them
	heap  []int32 // heap of slab indices, min (count, key) at root
	pos   []int32 // slab index -> heap position
	total int64   // total stream weight since Reset
	// Open-addressing index: key -> slab index. Sized 2·cap (≥50% free),
	// linear probing with backward-shift deletion, no insertion-order
	// tracking — evictions must delete, which openhash.Table cannot.
	idxKeys []uint64
	idxVals []int32
	idxMask uint64
	scratch []Entry // Top/Merge sort buffer
}

// Entry is one tracked key: Count over-approximates the true weight,
// Count-Err under-approximates it.
type Entry struct {
	Key   uint64
	Count int64
	Err   int64
}

// ssEmpty marks an empty index slot; no packed key in this repo is all
// ones (every layout keeps high bits clear).
const ssEmpty = ^uint64(0)

// NewSpaceSaving returns a summary tracking up to k keys.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	n := 16
	for n < 2*k {
		n <<= 1
	}
	s := &SpaceSaving{
		cap:     k,
		slab:    make([]Entry, 0, k),
		heap:    make([]int32, 0, k),
		pos:     make([]int32, k),
		idxKeys: make([]uint64, n),
		idxVals: make([]int32, n),
		idxMask: uint64(n - 1),
		scratch: make([]Entry, 0, 2*k),
	}
	for i := range s.idxKeys {
		s.idxKeys[i] = ssEmpty
	}
	return s
}

// Cap returns the fixed counter capacity k.
func (s *SpaceSaving) Cap() int { return s.cap }

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.slab) }

// Total returns the total weight observed since the last Reset.
func (s *SpaceSaving) Total() int64 { return s.total }

// Update folds weight v of key k into the summary.
func (s *SpaceSaving) Update(k uint64, v int64) {
	s.total += v
	s.add(k, v, 0)
}

// add inserts or increments (k, v) with an extra error term err carried
// in from a merge operand.
func (s *SpaceSaving) add(k uint64, v, err int64) {
	if si, ok := s.lookup(k); ok {
		s.slab[si].Count += v
		s.slab[si].Err += err
		s.siftDown(int(s.pos[si]))
		return
	}
	if len(s.slab) < s.cap {
		s.slab = append(s.slab, Entry{Key: k, Count: v, Err: err})
		si := int32(len(s.slab) - 1)
		s.heap = append(s.heap, si)
		s.pos[si] = int32(len(s.heap) - 1)
		s.insert(k, si)
		s.siftUp(len(s.heap) - 1)
		return
	}
	// Evict the minimum-count entry (ties break on ascending key): the
	// newcomer inherits its count as error floor — the classic
	// space-saving step that keeps Count an upper bound on truth.
	si := s.heap[0]
	old := &s.slab[si]
	s.delete(old.Key)
	floor := old.Count
	*old = Entry{Key: k, Count: floor + v, Err: floor + err}
	s.insert(k, si)
	s.siftDown(0)
}

// Estimate returns the tracked count interval for k. ok is false when k
// is not among the tracked keys (its true weight is then at most the
// current minimum tracked count).
func (s *SpaceSaving) Estimate(k uint64) (count, err int64, ok bool) {
	si, found := s.lookup(k)
	if !found {
		return 0, 0, false
	}
	return s.slab[si].Count, s.slab[si].Err, true
}

// Top appends the tracked entries ordered by count descending (key
// ascending on ties) to dst and returns it. The order matches the exact
// heavy-prefix sort of analysis.HeavyHitters, so rank comparisons
// between the two are apples to apples.
func (s *SpaceSaving) Top(dst []Entry) []Entry {
	dst = append(dst, s.slab...)
	slices.SortFunc(dst, func(a, b Entry) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		if a.Key < b.Key {
			return -1
		}
		if a.Key > b.Key {
			return 1
		}
		return 0
	})
	return dst
}

// Merge folds o into s. Entries are drained from o in canonical
// (count desc, key asc) order, so the result is a pure function of the
// two summaries' contents — merge order across shards is fixed by the
// caller (task order), making results worker-count invariant.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil || len(o.slab) == 0 {
		return
	}
	s.scratch = o.Top(s.scratch[:0])
	for i := range s.scratch {
		e := &s.scratch[i]
		s.add(e.Key, e.Count, e.Err)
	}
	s.total += o.total
}

// Reset clears the summary without releasing backing arrays. Clearing
// the whole index is O(index size) — fine at window-roll frequency.
func (s *SpaceSaving) Reset() {
	for i := range s.idxKeys {
		s.idxKeys[i] = ssEmpty
	}
	s.slab = s.slab[:0]
	s.heap = s.heap[:0]
	s.total = 0
}

// Bytes returns the fixed memory footprint.
func (s *SpaceSaving) Bytes() int {
	return 24*cap(s.slab) + 4*cap(s.heap) + 4*len(s.pos) +
		12*len(s.idxKeys) + 24*cap(s.scratch)
}

// --- open-addressing index -------------------------------------------------

func (s *SpaceSaving) lookup(k uint64) (int32, bool) {
	for i := mix(k) & s.idxMask; ; i = (i + 1) & s.idxMask {
		switch s.idxKeys[i] {
		case k:
			return s.idxVals[i], true
		case ssEmpty:
			return 0, false
		}
	}
}

func (s *SpaceSaving) insert(k uint64, v int32) {
	for i := mix(k) & s.idxMask; ; i = (i + 1) & s.idxMask {
		if s.idxKeys[i] == ssEmpty {
			s.idxKeys[i], s.idxVals[i] = k, v
			return
		}
	}
}

// delete removes k using backward-shift deletion, which keeps probe
// chains intact without tombstones (the index never degrades under the
// eviction churn of a long-lived serve window).
func (s *SpaceSaving) delete(k uint64) {
	i := mix(k) & s.idxMask
	for s.idxKeys[i] != k {
		if s.idxKeys[i] == ssEmpty {
			return
		}
		i = (i + 1) & s.idxMask
	}
	for {
		s.idxKeys[i] = ssEmpty
		j := i
		for {
			j = (j + 1) & s.idxMask
			if s.idxKeys[j] == ssEmpty {
				return
			}
			home := mix(s.idxKeys[j]) & s.idxMask
			// Move j back to i when its home slot does not lie in (i, j].
			if (i <= j && (home <= i || home > j)) || (i > j && home <= i && home > j) {
				break
			}
		}
		s.idxKeys[i], s.idxVals[i] = s.idxKeys[j], s.idxVals[j]
		i = j
	}
}

// --- min-heap on (count, key) ----------------------------------------------

func (s *SpaceSaving) less(a, b int32) bool {
	ea, eb := &s.slab[a], &s.slab[b]
	if ea.Count != eb.Count {
		return ea.Count < eb.Count
	}
	return ea.Key < eb.Key
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = int32(i)
	s.pos[s.heap[j]] = int32(j)
}

func (s *SpaceSaving) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[p]) {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *SpaceSaving) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.less(s.heap[l], s.heap[m]) {
			m = l
		}
		if r < n && s.less(s.heap[r], s.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}
