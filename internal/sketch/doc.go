// Package sketch provides the bounded-memory streaming summaries behind
// Config.SketchMode: count-min (byte counts per aggregate), space-saving
// (heavy-hitter candidates), HyperLogLog (distinct flows/hosts/racks),
// and a merging t-digest (size/duration/rate quantiles).
//
// All four follow the same contract as the exact openhash tables they
// replace:
//
//   - Deterministic: every structure is a pure function of its input
//     sequence. Hashing is seeded by fixed constants, never by runtime
//     state, so two sketches fed the same stream are bit-identical.
//   - Reset-reusable: Reset clears contents without releasing backing
//     arrays; a steady-state window roll performs zero allocations.
//   - Mergeable: shard-local sketches fold into a global one at the same
//     task-order frontier as fbflow.Partial and obs shards. Count-min
//     (int64 addition) and HLL (register max) merge exactly — the merge
//     of shard sketches is bit-identical to the sketch of the
//     concatenated stream, at any shard count. Space-saving and t-digest
//     merges are deterministic functions of the operand states, so a
//     fixed merge order yields worker-count-invariant results.
//
// Memory is fixed at construction time — independent of the number of
// distinct keys — which is the whole point: the exact analysis tables
// grow with distinct flows, the wrong trade at million-host scale. The
// internal/sketcherr harness proves the accuracy side of that trade
// stays inside declared bounds against the exact tables every window.
package sketch

// mix is the shared 64-bit finalizer (splitmix64): packed keys are
// bit-fields whose low bits barely vary, so identity hashing would
// cluster. Seeded variants fold the seed in before finalizing.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}
