package fbwire

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// fillPartial accumulates a deterministic record stream into p so frames
// under test carry realistic columnar payloads.
func fillPartial(tb testing.TB, p *fbflow.Partial, seed uint64, n int) {
	tb.Helper()
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	tagger := fbflow.NewTagger(topo)
	r := rng.New(seed)
	hosts := topo.NumHosts()
	for i := 0; i < n; i++ {
		src := topology.HostID(r.Intn(hosts))
		dst := topology.HostID(r.Intn(hosts))
		rec, ok := tagger.Flow(int64(i%7), topo.Addr(src), topo.Addr(dst), 40+r.Float64()*1e6)
		if !ok {
			tb.Fatalf("tagger rejected in-topology flow %d", i)
		}
		p.Add(rec)
	}
}

// sessionBytes encodes a full agent session: HELLO, n PARTIAL frames, FIN.
func sessionBytes(tb testing.TB, n int, card bool) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHello(Hello{Version: Version, AgentID: 2, Incarnation: 0, ShardLo: 4, ShardHi: 8, Windows: 6, Check: 0xfeedface}); err != nil {
		tb.Fatal(err)
	}
	p := fbflow.NewPartial()
	if card {
		p.EnableCardinality()
	}
	for i := 0; i < n; i++ {
		p.Reset()
		fillPartial(tb, p, uint64(100+i), 512)
		h := PartialHeader{Seq: uint64(i), Window: uint32(i / 4), Shard: uint32(4 + i%4)}
		if err := w.WritePartial(h, p); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.WriteFin(uint64(n)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestSessionRoundTrip(t *testing.T) {
	wire := sessionBytes(t, 6, true)
	r := NewReader(bytes.NewReader(wire))

	f, err := r.Next()
	if err != nil || f.Type != TypeHello {
		t.Fatalf("first frame: type %#x err %v", f.Type, err)
	}
	h, err := ParseHello(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.AgentID != 2 || h.ShardLo != 4 || h.ShardHi != 8 || h.Windows != 6 || h.Check != 0xfeedface {
		t.Fatalf("hello round-trip: %+v", h)
	}

	into := fbflow.NewPartial()
	want := fbflow.NewPartial()
	want.EnableCardinality()
	for i := 0; i < 6; i++ {
		f, err := r.Next()
		if err != nil || f.Type != TypePartial {
			t.Fatalf("partial %d: type %#x err %v", i, f.Type, err)
		}
		ph, err := DecodePartial(f.Payload, into)
		if err != nil {
			t.Fatal(err)
		}
		if ph.Seq != uint64(i) || ph.Window != uint32(i/4) || ph.Shard != uint32(4+i%4) {
			t.Fatalf("partial header %d round-trip: %+v", i, ph)
		}
		want.Reset()
		fillPartial(t, want, uint64(100+i), 512)
		// Byte-identical re-encode proves the payload (and its insertion
		// order) survived framing intact.
		if !bytes.Equal(into.AppendBinary(nil), want.AppendBinary(nil)) {
			t.Fatalf("partial %d payload changed across the wire", i)
		}
	}

	f, err = r.Next()
	if err != nil || f.Type != TypeFin {
		t.Fatalf("fin frame: type %#x err %v", f.Type, err)
	}
	sent, err := ParseFin(f.Payload)
	if err != nil || sent != 6 {
		t.Fatalf("fin: sent %d err %v", sent, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
	if r.BytesRead() != int64(len(wire)) {
		t.Fatalf("BytesRead %d, wire %d", r.BytesRead(), len(wire))
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteWelcome(17); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d, buffer %d", w.BytesWritten(), buf.Len())
	}
	r := NewReader(&buf)
	f, err := r.Next()
	if err != nil || f.Type != TypeWelcome {
		t.Fatalf("welcome frame: type %#x err %v", f.Type, err)
	}
	resume, err := ParseWelcome(f.Payload)
	if err != nil || resume != 17 {
		t.Fatalf("welcome: resume %d err %v", resume, err)
	}
}

func TestReaderRejectsDuplicateSeq(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := fbflow.NewPartial()
	fillPartial(t, p, 5, 64)
	if err := w.WritePartial(PartialHeader{Seq: 3, Window: 0, Shard: 0}, p); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte{}, buf.Bytes()...)

	// The same frame twice: the replay must error at the reader.
	r := NewReader(bytes.NewReader(append(append([]byte{}, frame...), frame...)))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "duplicates") {
		t.Fatalf("replayed frame got %v, want duplicate-seq error", err)
	}

	// A lower seq after a higher one must also error.
	if err := w.WritePartial(PartialHeader{Seq: 1, Window: 0, Shard: 1}, p); err != nil {
		t.Fatal(err)
	}
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("reordered seq decoded cleanly")
	}
}

func TestReaderErrors(t *testing.T) {
	wire := sessionBytes(t, 2, false)

	// Every truncation point must end in io.ErrUnexpectedEOF or a real
	// error, never a panic or a clean EOF mid-frame.
	for cut := 1; cut < len(wire); cut += 211 {
		r := NewReader(bytes.NewReader(wire[:cut]))
		var err error
		for err == nil {
			_, err = r.Next()
		}
		if err == io.EOF && cut != len(wire) {
			// A cut at a frame boundary legitimately reads as clean EOF.
			ok := false
			probe := NewReader(bytes.NewReader(wire[:cut]))
			for {
				if _, perr := probe.Next(); perr != nil {
					ok = perr == io.EOF
					break
				}
			}
			if !ok {
				t.Fatalf("cut at %d: clean EOF mid-frame", cut)
			}
		}
	}

	// A corrupt length prefix beyond the cap must error before allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff, TypeFin}
	if _, err := NewReader(bytes.NewReader(huge)).Next(); err == nil {
		t.Fatal("oversized frame length decoded cleanly")
	}
	// A zero-length frame is invalid: every frame has a type byte.
	if _, err := NewReader(bytes.NewReader([]byte{0, 0, 0, 0})).Next(); err == nil {
		t.Fatal("empty frame decoded cleanly")
	}
	// Unknown frame type.
	if _, err := NewReader(bytes.NewReader([]byte{1, 0, 0, 0, 0x7f})).Next(); err == nil {
		t.Fatal("unknown frame type decoded cleanly")
	}

	// Fixed-size payload parsers must reject wrong lengths.
	if _, err := ParseHello(make([]byte, 5)); err == nil {
		t.Fatal("short hello parsed cleanly")
	}
	if _, err := ParseWelcome(make([]byte, 4)); err == nil {
		t.Fatal("short welcome parsed cleanly")
	}
	if _, err := ParseFin(make([]byte, 9)); err == nil {
		t.Fatal("long fin parsed cleanly")
	}
	// Version and shard-range validation in HELLO.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHello(Hello{Version: 99}); err != nil {
		t.Fatal(err)
	}
	f, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseHello(f.Payload); err == nil {
		t.Fatal("wrong protocol version parsed cleanly")
	}
	buf.Reset()
	if err := w.WriteHello(Hello{Version: Version, ShardLo: 8, ShardHi: 4}); err != nil {
		t.Fatal(err)
	}
	if f, err = NewReader(&buf).Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseHello(f.Payload); err == nil {
		t.Fatal("inverted shard range parsed cleanly")
	}
}

// TestSteadyStateAllocs pins the full agent→aggregator wire path —
// encode+frame on one side, read+decode on the other — at zero
// steady-state allocations per frame.
func TestSteadyStateAllocs(t *testing.T) {
	p := fbflow.NewPartial()
	fillPartial(t, p, 11, 4096)
	sink := &countWriter{}
	w := NewWriter(sink)
	seq := uint64(0)
	write := func() {
		if err := w.WritePartial(PartialHeader{Seq: seq, Window: 0, Shard: 0}, p); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	write() // warm the encode buffer
	if n := testing.AllocsPerRun(50, write); n != 0 {
		t.Fatalf("steady-state frame encode allocates %v/op", n)
	}

	// Decode side: one frame's bytes replayed through a resettable reader.
	var one bytes.Buffer
	w2 := NewWriter(&one)
	if err := w2.WritePartial(PartialHeader{Seq: 0, Window: 0, Shard: 0}, p); err != nil {
		t.Fatal(err)
	}
	frame := one.Bytes()
	src := bytes.NewReader(frame)
	r := NewReader(src)
	into := fbflow.NewPartial()
	read := func() {
		src.Reset(frame)
		r.seenSeq = false // replaying the same seq on purpose
		f, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodePartial(f.Payload, into); err != nil {
			t.Fatal(err)
		}
	}
	read() // warm the frame buffer and into's tables
	if n := testing.AllocsPerRun(50, read); n != 0 {
		t.Fatalf("steady-state frame decode allocates %v/op", n)
	}
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func TestAuditRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cells := []AuditCell{
		{Stage: AuditMatrixSynth, Seq: 0, Window: 0, Shard: 3, Sum: 0xfeedfacecafebeef, Count: 64},
		{Stage: AuditFleetCell, Seq: 0, Window: 0, Shard: 3, Sum: 0x0123456789abcdef, Count: 6 * 1200},
		{Stage: AuditFleetCell, Seq: 1, Window: 1, Shard: 0, Sum: 0, Count: 0},
	}
	for _, c := range cells {
		if err := w.WriteAudit(c); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range cells {
		f, err := r.Next()
		if err != nil || f.Type != TypeAudit {
			t.Fatalf("audit frame %d: type %#x err %v", i, f.Type, err)
		}
		got, err := ParseAudit(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("audit %d round-trip: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}

	// Malformed payloads must fail closed.
	if _, err := ParseAudit(make([]byte, auditWireLen-1)); err == nil {
		t.Fatal("short audit payload parsed cleanly")
	}
	bad := make([]byte, auditWireLen)
	bad[0] = 0x7f
	if _, err := ParseAudit(bad); err == nil {
		t.Fatal("unknown audit stage parsed cleanly")
	}
	neg := make([]byte, auditWireLen)
	neg[0] = AuditFleetCell
	for i := 25; i < 33; i++ {
		neg[i] = 0xff
	}
	if _, err := ParseAudit(neg); err == nil {
		t.Fatal("negative audit count parsed cleanly")
	}
}

// TestAuditSteadyStateAllocs pins the audit frame encode at zero
// steady-state allocations — the checkpoint side-channel must not tax
// the dataset path it rides beside.
func TestAuditSteadyStateAllocs(t *testing.T) {
	w := NewWriter(&countWriter{})
	c := AuditCell{Stage: AuditFleetCell, Seq: 7, Window: 1, Shard: 2, Sum: 42, Count: 6}
	write := func() {
		if err := w.WriteAudit(c); err != nil {
			t.Fatal(err)
		}
		c.Seq++
	}
	write() // warm the encode buffer
	if n := testing.AllocsPerRun(50, write); n != 0 {
		t.Fatalf("steady-state audit encode allocates %v/op", n)
	}
}
