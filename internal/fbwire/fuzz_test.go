package fbwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"fbdcnet/internal/fbflow"
)

// FuzzFrameDecode drives the full aggregator-side decode path — framing,
// header parsers, and the fbflow partial payload codec — with arbitrary
// bytes. The invariants: never panic, never over-read (every frame's
// declared length is capped and bounds-checked), terminate with io.EOF
// only at a clean frame boundary, and reject duplicate or reordered
// PARTIAL sequence numbers.
func FuzzFrameDecode(f *testing.F) {
	// A full valid session (hello, partials with cardinality, fin).
	f.Add(sessionBytes(f, 3, true))
	f.Add(sessionBytes(f, 1, false))
	// The same partial frame twice: a replay the reader must reject.
	one := sessionBytes(f, 1, false)
	f.Add(append(append([]byte{}, one...), one...))
	// Truncated mid-frame.
	f.Add(one[:len(one)/2])
	// Corrupt length prefix claiming 4 GiB.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, TypePartial})
	// Empty frame and unknown type.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0x7f})
	// A partial frame whose payload is garbage after a valid header.
	bad := make([]byte, 0, 64)
	bad = binary.LittleEndian.AppendUint32(bad, 1+partialHeaderLen+8)
	bad = append(bad, TypePartial)
	bad = binary.LittleEndian.AppendUint64(bad, 0) // seq
	bad = binary.LittleEndian.AppendUint32(bad, 0) // window
	bad = binary.LittleEndian.AppendUint32(bad, 0) // shard
	bad = append(bad, 99, 0xff, 1, 2, 3, 4, 5, 6)  // bogus partial payload
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		into := fbflow.NewPartial()
		frames := 0
		var lastSeq uint64
		seenSeq := false
		for {
			fr, err := r.Next()
			if err != nil {
				if err == io.EOF && r.BytesRead() != int64(len(data)) {
					t.Fatalf("clean EOF after %d of %d bytes", r.BytesRead(), len(data))
				}
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
			switch fr.Type {
			case TypeHello:
				if h, err := ParseHello(fr.Payload); err == nil && h.ShardHi < h.ShardLo {
					t.Fatalf("parser admitted inverted shard range: %+v", h)
				}
			case TypeWelcome:
				_, _ = ParseWelcome(fr.Payload)
			case TypeFin:
				_, _ = ParseFin(fr.Payload)
			case TypePartial:
				h, err := DecodePartial(fr.Payload, into)
				if err == nil {
					if seenSeq && h.Seq <= lastSeq {
						t.Fatalf("decoder admitted non-increasing seq %d after %d", h.Seq, lastSeq)
					}
					seenSeq, lastSeq = true, h.Seq
				}
			default:
				t.Fatalf("reader returned unknown frame type %#x", fr.Type)
			}
			frames++
			if frames > 1<<20 {
				t.Fatal("reader produced implausibly many frames")
			}
		}
	})
}
