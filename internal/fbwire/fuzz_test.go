package fbwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/obs"
)

// FuzzFrameDecode drives the full aggregator-side decode path — framing,
// header parsers, and the fbflow partial payload codec — with arbitrary
// bytes. The invariants: never panic, never over-read (every frame's
// declared length is capped and bounds-checked), terminate with io.EOF
// only at a clean frame boundary, and reject duplicate or reordered
// PARTIAL sequence numbers.
func FuzzFrameDecode(f *testing.F) {
	// A full valid session (hello, partials with cardinality, fin).
	f.Add(sessionBytes(f, 3, true))
	f.Add(sessionBytes(f, 1, false))
	// The same partial frame twice: a replay the reader must reject.
	one := sessionBytes(f, 1, false)
	f.Add(append(append([]byte{}, one...), one...))
	// Truncated mid-frame.
	f.Add(one[:len(one)/2])
	// Corrupt length prefix claiming 4 GiB.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, TypePartial})
	// Empty frame and unknown type.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0x7f})
	// A partial frame whose payload is garbage after a valid header.
	bad := make([]byte, 0, 64)
	bad = binary.LittleEndian.AppendUint32(bad, 1+partialHeaderLen+8)
	bad = append(bad, TypePartial)
	bad = binary.LittleEndian.AppendUint64(bad, 0) // seq
	bad = binary.LittleEndian.AppendUint32(bad, 0) // window
	bad = binary.LittleEndian.AppendUint32(bad, 0) // shard
	bad = append(bad, 99, 0xff, 1, 2, 3, 4, 5, 6)  // bogus partial payload
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		into := fbflow.NewPartial()
		frames := 0
		var lastSeq uint64
		seenSeq := false
		for {
			fr, err := r.Next()
			if err != nil {
				if err == io.EOF && r.BytesRead() != int64(len(data)) {
					t.Fatalf("clean EOF after %d of %d bytes", r.BytesRead(), len(data))
				}
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
			switch fr.Type {
			case TypeHello:
				if h, err := ParseHello(fr.Payload); err == nil && h.ShardHi < h.ShardLo {
					t.Fatalf("parser admitted inverted shard range: %+v", h)
				}
			case TypeWelcome:
				_, _ = ParseWelcome(fr.Payload)
			case TypeFin:
				_, _ = ParseFin(fr.Payload)
			case TypePartial:
				h, err := DecodePartial(fr.Payload, into)
				if err == nil {
					if seenSeq && h.Seq <= lastSeq {
						t.Fatalf("decoder admitted non-increasing seq %d after %d", h.Seq, lastSeq)
					}
					seenSeq, lastSeq = true, h.Seq
				}
			default:
				t.Fatalf("reader returned unknown frame type %#x", fr.Type)
			}
			frames++
			if frames > 1<<20 {
				t.Fatal("reader produced implausibly many frames")
			}
		}
	})
}

// obsFrameBytes frames one OBS frame (kind, seq, body) as the agent's
// Writer would emit it.
func obsFrameBytes(tb testing.TB, kind byte, seq uint64, body []byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteObs(kind, seq, body); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzObsFrame drives the metrics side-channel decode path — OBS frame
// parsing plus the obs delta and agent-report payload codecs — with
// arbitrary bytes. The invariants: never panic, malformed payloads
// error out, and OBS frames never perturb the PARTIAL sequence check
// (metrics are best-effort; the dataset protocol stays strict).
func FuzzObsFrame(f *testing.F) {
	// A real cell delta: encode from a live shard.
	reg := obs.NewRegistry()
	c := reg.Counter("fbdcnet_fleet_flow_attempts_total", "t")
	h := reg.Histogram("fbdcnet_fleet_shard_us", "t")
	sh := reg.NewShard()
	sh.Add(c, 41)
	sh.Observe(h, 1300)
	f.Add(obsFrameBytes(f, ObsCell, 0, sh.AppendDelta(nil)))
	// A real final report.
	f.Add(obsFrameBytes(f, ObsFinal, 0, reg.AppendReport(nil, 2, 1)))
	// An OBS frame interleaved before its PARTIAL, as on the real wire.
	mixed := append(obsFrameBytes(f, ObsCell, 0, sh.AppendDelta(nil)), sessionBytes(f, 1, false)...)
	f.Add(mixed)
	// Truncated, bad kind, garbage body.
	whole := obsFrameBytes(f, ObsCell, 3, sh.AppendDelta(nil))
	f.Add(whole[:len(whole)-4])
	f.Add(obsFrameBytes(f, 0x7e, 9, []byte{1, 2, 3}))
	f.Add(obsFrameBytes(f, ObsCell, 1, []byte{0xde, 0xad, 0xbe, 0xef}))
	f.Add(obsFrameBytes(f, ObsFinal, 0, []byte{1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var d obs.Delta
		var rep obs.AgentReport
		fold := obs.NewRegistry()
		frames := 0
		var lastSeq uint64
		seenSeq := false
		for {
			fr, err := r.Next()
			if err != nil {
				return
			}
			switch fr.Type {
			case TypeObs:
				oh, body, err := ParseObs(fr.Payload)
				if err != nil {
					break
				}
				if oh.Kind != ObsCell && oh.Kind != ObsFinal {
					t.Fatalf("ParseObs admitted kind %#x", oh.Kind)
				}
				// Both payload decoders must fail closed on garbage; a
				// successful delta decode must fold without panicking.
				if oh.Kind == ObsCell {
					if err := d.Decode(body); err == nil {
						fold.FoldDelta(&d)
					}
				} else {
					_ = obs.DecodeReport(body, &rep)
				}
			case TypePartial:
				if h, err := DecodePartial(fr.Payload, fbflow.NewPartial()); err == nil {
					// OBS frames between partials must not reset or advance
					// the strict seq ordering of the dataset stream.
					if seenSeq && h.Seq <= lastSeq {
						t.Fatalf("obs frames perturbed partial seq: %d after %d", h.Seq, lastSeq)
					}
					seenSeq, lastSeq = true, h.Seq
				}
			case TypeHello, TypeWelcome, TypeFin:
			default:
				t.Fatalf("reader returned unknown frame type %#x", fr.Type)
			}
			frames++
			if frames > 1<<20 {
				t.Fatal("reader produced implausibly many frames")
			}
		}
	})
}

// auditFrameBytes frames one AUDIT frame as the agent's Writer emits it.
func auditFrameBytes(tb testing.TB, c AuditCell) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAudit(c); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzAuditFrame drives the checkpoint side-channel decode path with
// arbitrary bytes. The invariants: never panic, malformed payloads error
// out (best-effort semantics — a dropped frame becomes a ledger hole,
// never a dataset error), parsed cells echo valid stage ids and
// non-negative counts, and AUDIT frames never perturb the strict PARTIAL
// sequence check.
func FuzzAuditFrame(f *testing.F) {
	// A realistic cell pair: matrix synth then fleet cell under one seq.
	f.Add(append(
		auditFrameBytes(f, AuditCell{Stage: AuditMatrixSynth, Seq: 0, Window: 0, Shard: 1, Sum: 0xabcdef, Count: 128}),
		auditFrameBytes(f, AuditCell{Stage: AuditFleetCell, Seq: 0, Window: 0, Shard: 1, Sum: 0x123456, Count: 7200})...))
	// AUDIT interleaved before its PARTIAL, as on the real wire.
	f.Add(append(
		auditFrameBytes(f, AuditCell{Stage: AuditFleetCell, Seq: 0, Window: 0, Shard: 0, Sum: 1, Count: 6}),
		sessionBytes(f, 1, false)...))
	// Truncated, bogus stage, negative count.
	whole := auditFrameBytes(f, AuditCell{Stage: AuditFleetCell, Seq: 3, Window: 1, Shard: 2, Sum: 9, Count: 12})
	f.Add(whole[:len(whole)-5])
	bogus := append([]byte{}, whole...)
	bogus[5] = 0x7f // stage byte inside the frame
	f.Add(bogus)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		frames := 0
		var lastSeq uint64
		seenSeq := false
		for {
			fr, err := r.Next()
			if err != nil {
				return
			}
			switch fr.Type {
			case TypeAudit:
				c, err := ParseAudit(fr.Payload)
				if err != nil {
					break
				}
				if c.Stage != AuditFleetCell && c.Stage != AuditMatrixSynth {
					t.Fatalf("ParseAudit admitted stage %#x", c.Stage)
				}
				if c.Count < 0 {
					t.Fatalf("ParseAudit admitted negative count %d", c.Count)
				}
			case TypePartial:
				if h, err := DecodePartial(fr.Payload, fbflow.NewPartial()); err == nil {
					// AUDIT frames between partials must not reset or advance
					// the strict seq ordering of the dataset stream.
					if seenSeq && h.Seq <= lastSeq {
						t.Fatalf("audit frames perturbed partial seq: %d after %d", h.Seq, lastSeq)
					}
					seenSeq, lastSeq = true, h.Seq
				}
			case TypeHello, TypeWelcome, TypeFin, TypeObs:
			default:
				t.Fatalf("reader returned unknown frame type %#x", fr.Type)
			}
			frames++
			if frames > 1<<20 {
				t.Fatal("reader produced implausibly many frames")
			}
		}
	})
}
