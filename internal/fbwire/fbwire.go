// Package fbwire is the binary stream protocol between distributed fleet
// agents and the fbflowd aggregator — the Scribe leg of the paper's
// Fbflow pipeline (§3.3.1), reduced to what the reproduction needs: a
// handshake, then length-prefixed partial frames in task order.
//
// A session over one connection looks like:
//
//	agent → HELLO   (agent identity, shard range, incarnation, config check)
//	agent ← WELCOME (resume task index — 0 for a fresh run, later after a
//	                 crash: the aggregator skips the died window's tail)
//	agent → PARTIAL × n  (seq, window, shard, fbflow.Partial payload)
//	agent → FIN     (frames sent, for accounting)
//
// When observability is on, each PARTIAL is preceded by an OBS frame
// carrying that cell's metric delta (bound to the same seq), and one
// final OBS frame with the agent's report precedes FIN. OBS frames are
// optional and opaque at this layer — an aggregator that cannot decode
// one drops it without touching the dataset protocol. With the
// determinism flight recorder on, one AUDIT frame per checkpoint stage
// (two in matrix mode) precedes each PARTIAL under the same seq and the
// same best-effort rules: a dropped AUDIT frame becomes an explicit
// ledger hole, never a dataset error.
//
// PARTIAL frames carry the agent-local task sequence number and the
// Reader enforces strict monotonicity, so a duplicated or replayed frame
// fails in the decoder itself rather than corrupting aggregation state.
// Every length and count is bounds-checked against hard caps: corrupt
// input errors, it never panics and never drives an unbounded read.
//
// The codec is allocation-free in the steady state: Writer encodes into
// one reusable buffer, Reader decodes frames into another, and the
// Partial payload codec (fbflow.AppendBinary/DecodeBinary) reuses table
// capacity across frames.
package fbwire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fbdcnet/internal/fbflow"
)

// Version identifies the protocol revision carried in HELLO.
const Version = 1

// Frame types.
const (
	TypeHello   = 0x01
	TypeWelcome = 0x02
	TypePartial = 0x03
	TypeFin     = 0x04
	TypeObs     = 0x05
	TypeAudit   = 0x06
)

// Obs payload kinds. ObsCell carries one cell's metric delta and
// precedes the PARTIAL frame with the same seq on the wire, so the delta
// is always parked by the time the merge frontier consumes the cell.
// ObsFinal carries the agent's once-per-incarnation report, sent right
// before FIN (its seq is 0).
const (
	ObsCell  = 0x01
	ObsFinal = 0x02
)

// obsHeaderLen is the OBS payload prefix before the opaque obs body.
const obsHeaderLen = 1 + 8

// MaxFrameBytes caps one frame's payload: larger than any real window
// partial (a full large-preset window encodes to a few MiB) but small
// enough that a corrupt length prefix cannot drive an OOM allocation.
const MaxFrameBytes = 1 << 28

// helloWireLen is the fixed HELLO payload size after the type byte.
const helloWireLen = 2 + 4*5 + 8

// partialHeaderLen is the PARTIAL payload prefix before the fbflow bytes.
const partialHeaderLen = 8 + 4 + 4

// Hello is the agent's opening announcement.
type Hello struct {
	Version     uint16
	AgentID     uint32
	Incarnation uint32 // 0 for the first process, +1 per restart
	ShardLo     uint32 // owned shard range [ShardLo, ShardHi)
	ShardHi     uint32
	Windows     uint32
	Check       uint64 // config fingerprint; both sides must agree
}

// PartialHeader addresses one PARTIAL frame's cell.
type PartialHeader struct {
	Seq    uint64 // agent-local task index, strictly increasing
	Window uint32
	Shard  uint32
}

// Writer frames and writes the agent side of the protocol. Not safe for
// concurrent use.
type Writer struct {
	w       *bufio.Writer
	buf     []byte // reusable frame assembly buffer
	written int64  // frame bytes written, for the comms-volume gauges
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// BytesWritten returns the total frame bytes flushed so far.
func (w *Writer) BytesWritten() int64 { return w.written }

// begin starts a frame in the reusable buffer: a 4-byte length
// placeholder, then the type byte.
func (w *Writer) begin(frameType byte) []byte {
	return append(w.buf[:0], 0, 0, 0, 0, frameType)
}

// flushFrame back-fills the length prefix and writes w.buf as one call.
func (w *Writer) flushFrame() error {
	n := len(w.buf) - 4 // type byte + payload
	if n > MaxFrameBytes {
		return fmt.Errorf("fbwire: frame of %d bytes exceeds cap %d", n, MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(w.buf, uint32(n))
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.written += int64(len(w.buf))
	return w.w.Flush()
}

// WriteHello sends the opening HELLO frame.
func (w *Writer) WriteHello(h Hello) error {
	b := w.begin(TypeHello)
	b = binary.LittleEndian.AppendUint16(b, h.Version)
	b = binary.LittleEndian.AppendUint32(b, h.AgentID)
	b = binary.LittleEndian.AppendUint32(b, h.Incarnation)
	b = binary.LittleEndian.AppendUint32(b, h.ShardLo)
	b = binary.LittleEndian.AppendUint32(b, h.ShardHi)
	b = binary.LittleEndian.AppendUint32(b, h.Windows)
	b = binary.LittleEndian.AppendUint64(b, h.Check)
	w.buf = b
	return w.flushFrame()
}

// WriteWelcome sends the aggregator's WELCOME reply: the task index the
// agent must resume from.
func (w *Writer) WriteWelcome(resume uint64) error {
	w.buf = binary.LittleEndian.AppendUint64(w.begin(TypeWelcome), resume)
	return w.flushFrame()
}

// WritePartial sends one cell's partial. The encode reuses the writer's
// buffer, so the steady state allocates nothing.
func (w *Writer) WritePartial(h PartialHeader, p *fbflow.Partial) error {
	b := w.begin(TypePartial)
	b = binary.LittleEndian.AppendUint64(b, h.Seq)
	b = binary.LittleEndian.AppendUint32(b, h.Window)
	b = binary.LittleEndian.AppendUint32(b, h.Shard)
	w.buf = p.AppendBinary(b)
	return w.flushFrame()
}

// WriteObs sends one observability frame: an ObsCell delta bound to the
// PARTIAL seq it precedes, or an ObsFinal agent report. The body is the
// internal/obs wire payload, opaque to this layer; the encode reuses the
// writer's buffer, so the steady state allocates nothing.
func (w *Writer) WriteObs(kind byte, seq uint64, body []byte) error {
	b := w.begin(TypeObs)
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint64(b, seq)
	w.buf = append(b, body...)
	return w.flushFrame()
}

// ObsHeader addresses one OBS frame's body.
type ObsHeader struct {
	Kind byte
	Seq  uint64 // for ObsCell: the seq of the PARTIAL this delta belongs to
}

// ParseObs splits an OBS payload into its header and opaque body. The
// body aliases the payload (and therefore the Reader's buffer).
func ParseObs(payload []byte) (ObsHeader, []byte, error) {
	if len(payload) < obsHeaderLen {
		return ObsHeader{}, nil, fmt.Errorf("fbwire: obs frame header truncated (%d bytes)", len(payload))
	}
	h := ObsHeader{Kind: payload[0], Seq: binary.LittleEndian.Uint64(payload[1:])}
	if h.Kind != ObsCell && h.Kind != ObsFinal {
		return ObsHeader{}, nil, fmt.Errorf("fbwire: unknown obs kind %#x", h.Kind)
	}
	return h, payload[obsHeaderLen:], nil
}

// Audit stage ids on the wire. AuditFleetCell is the cell's collected
// record stream; AuditMatrixSynth is the synthesized demand matrix that
// preceded the draw (matrix mode only).
const (
	AuditFleetCell   = 0x01
	AuditMatrixSynth = 0x02
)

// auditWireLen is the fixed AUDIT payload size after the type byte.
const auditWireLen = 1 + 8 + 4 + 4 + 8 + 8

// AuditCell is one cell's determinism checkpoint: the sealed content
// hash and folded item count of (stage, window, shard), bound to the
// PARTIAL seq it precedes. Like OBS frames, AUDIT frames are
// best-effort: an aggregator that cannot decode one drops it (the cell
// becomes an explicit ledger hole) without touching the dataset
// protocol.
type AuditCell struct {
	Stage  byte
	Seq    uint64
	Window uint32
	Shard  uint32
	Sum    uint64
	Count  int64
}

// WriteAudit sends one cell checkpoint. The encode reuses the writer's
// buffer, so the steady state allocates nothing.
func (w *Writer) WriteAudit(c AuditCell) error {
	b := w.begin(TypeAudit)
	b = append(b, c.Stage)
	b = binary.LittleEndian.AppendUint64(b, c.Seq)
	b = binary.LittleEndian.AppendUint32(b, c.Window)
	b = binary.LittleEndian.AppendUint32(b, c.Shard)
	b = binary.LittleEndian.AppendUint64(b, c.Sum)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.Count))
	w.buf = b
	return w.flushFrame()
}

// ParseAudit decodes an AUDIT payload.
func ParseAudit(payload []byte) (AuditCell, error) {
	if len(payload) != auditWireLen {
		return AuditCell{}, fmt.Errorf("fbwire: audit payload is %d bytes, want %d", len(payload), auditWireLen)
	}
	c := AuditCell{
		Stage:  payload[0],
		Seq:    binary.LittleEndian.Uint64(payload[1:]),
		Window: binary.LittleEndian.Uint32(payload[9:]),
		Shard:  binary.LittleEndian.Uint32(payload[13:]),
		Sum:    binary.LittleEndian.Uint64(payload[17:]),
		Count:  int64(binary.LittleEndian.Uint64(payload[25:])),
	}
	if c.Stage != AuditFleetCell && c.Stage != AuditMatrixSynth {
		return AuditCell{}, fmt.Errorf("fbwire: unknown audit stage %#x", c.Stage)
	}
	if c.Count < 0 {
		return AuditCell{}, fmt.Errorf("fbwire: audit count %d is negative", c.Count)
	}
	return c, nil
}

// WriteFin sends the closing FIN frame carrying the number of PARTIAL
// frames this incarnation sent.
func (w *Writer) WriteFin(sent uint64) error {
	w.buf = binary.LittleEndian.AppendUint64(w.begin(TypeFin), sent)
	return w.flushFrame()
}

// Frame is one decoded frame. Payload aliases the Reader's internal
// buffer and is valid only until the next call to Next.
type Frame struct {
	Type    byte
	Payload []byte
}

// Reader reads and validates frames from one connection. Not safe for
// concurrent use.
type Reader struct {
	r       *bufio.Reader
	buf     []byte
	pfx     [4]byte // length-prefix scratch; a field so ReadFull doesn't heap-escape it
	read    int64
	seenSeq bool
	lastSeq uint64 // last PARTIAL seq, valid when seenSeq
}

// NewReader returns a Reader framing off r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// BytesRead returns the total frame bytes consumed so far.
func (r *Reader) BytesRead() int64 { return r.read }

// Next reads one frame. io.EOF is returned only at a clean frame
// boundary; a partial frame yields io.ErrUnexpectedEOF.
func (r *Reader) Next() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.pfx[:1]); err != nil {
		return Frame{}, err // clean EOF possible here only
	}
	if _, err := io.ReadFull(r.r, r.pfx[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	n := int(binary.LittleEndian.Uint32(r.pfx[:]))
	if n < 1 {
		return Frame{}, fmt.Errorf("fbwire: empty frame")
	}
	if n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("fbwire: frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n, n+n/2)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	r.read += int64(4 + n)
	f := Frame{Type: r.buf[0], Payload: r.buf[1:]}
	switch f.Type {
	case TypeHello, TypeWelcome, TypePartial, TypeFin, TypeObs, TypeAudit:
	default:
		return Frame{}, fmt.Errorf("fbwire: unknown frame type %#x", f.Type)
	}
	if f.Type == TypePartial {
		if len(f.Payload) < partialHeaderLen {
			return Frame{}, fmt.Errorf("fbwire: partial frame header truncated (%d bytes)", len(f.Payload))
		}
		seq := binary.LittleEndian.Uint64(f.Payload)
		if r.seenSeq && seq <= r.lastSeq {
			return Frame{}, fmt.Errorf("fbwire: partial frame seq %d duplicates or reorders (last %d)", seq, r.lastSeq)
		}
		r.seenSeq, r.lastSeq = true, seq
	}
	return f, nil
}

// ParseHello decodes a HELLO payload.
func ParseHello(payload []byte) (Hello, error) {
	if len(payload) != helloWireLen {
		return Hello{}, fmt.Errorf("fbwire: hello payload is %d bytes, want %d", len(payload), helloWireLen)
	}
	h := Hello{
		Version:     binary.LittleEndian.Uint16(payload),
		AgentID:     binary.LittleEndian.Uint32(payload[2:]),
		Incarnation: binary.LittleEndian.Uint32(payload[6:]),
		ShardLo:     binary.LittleEndian.Uint32(payload[10:]),
		ShardHi:     binary.LittleEndian.Uint32(payload[14:]),
		Windows:     binary.LittleEndian.Uint32(payload[18:]),
		Check:       binary.LittleEndian.Uint64(payload[22:]),
	}
	if h.Version != Version {
		return Hello{}, fmt.Errorf("fbwire: protocol version %d, want %d", h.Version, Version)
	}
	if h.ShardHi < h.ShardLo {
		return Hello{}, fmt.Errorf("fbwire: hello shard range [%d, %d) is inverted", h.ShardLo, h.ShardHi)
	}
	return h, nil
}

// ParseWelcome decodes a WELCOME payload.
func ParseWelcome(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("fbwire: welcome payload is %d bytes, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// ParseFin decodes a FIN payload.
func ParseFin(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("fbwire: fin payload is %d bytes, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// DecodePartial decodes a PARTIAL payload's header and body into a
// reusable Partial. The payload must come from a Frame of TypePartial.
func DecodePartial(payload []byte, into *fbflow.Partial) (PartialHeader, error) {
	if len(payload) < partialHeaderLen {
		return PartialHeader{}, fmt.Errorf("fbwire: partial frame header truncated (%d bytes)", len(payload))
	}
	h := PartialHeader{
		Seq:    binary.LittleEndian.Uint64(payload),
		Window: binary.LittleEndian.Uint32(payload[8:]),
		Shard:  binary.LittleEndian.Uint32(payload[12:]),
	}
	if err := into.DecodeBinary(payload[partialHeaderLen:]); err != nil {
		return PartialHeader{}, err
	}
	return h, nil
}
