package netsim

import (
	"testing"

	"fbdcnet/internal/packet"
	"fbdcnet/internal/topology"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineRunUntilStops(t *testing.T) {
	var e Engine
	ran := false
	e.At(100, func() { ran = true })
	if n := e.Run(50); n != 0 || ran {
		t.Fatal("event past `until` executed")
	}
	if e.Pending() != 1 {
		t.Fatal("pending event lost")
	}
	e.Run(100)
	if !ran {
		t.Fatal("event not executed on second Run")
	}
}

func TestEnginePastScheduling(t *testing.T) {
	var e Engine
	var at Time
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past: clamp to now
	})
	e.Run(200)
	if at != 100 {
		t.Fatalf("past-scheduled event ran at %d", at)
	}
}

func TestLinkTxTime(t *testing.T) {
	l := &Link{RateBps: 10_000_000_000}
	// 1250 bytes at 10 Gbps = 1 µs
	if got := l.TxTime(1250); got != Microsecond {
		t.Fatalf("TxTime = %d", got)
	}
}

func TestLinkUtilization(t *testing.T) {
	l := &Link{RateBps: 1_000_000_000}
	l.bytesTx = 125_000_000 // 1 Gbit
	if u := l.Utilization(Second); u < 0.999 || u > 1.001 {
		t.Fatalf("utilization %v", u)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("zero-window utilization should be 0")
	}
	l.ResetCounters()
	if l.BytesTx() != 0 {
		t.Fatal("reset failed")
	}
}

// buildPair wires a single switch with one sink behind a slow link.
func buildPair(bufBytes int64, rate int64) (*Engine, *Switch, *Sink) {
	eng := &Engine{}
	sw := NewSwitch(eng, "sw", bufBytes)
	sink := NewSink("sink")
	sw.AddPort(&Link{RateBps: rate, Delay: 0}, sink)
	return eng, sw, sink
}

func mkPkt(size uint32) *Packet {
	return &Packet{Hdr: packet.Header{
		Key:  packet.FlowKey{Src: 0, Dst: 1, SrcPort: 1, DstPort: 2, Proto: packet.TCP},
		Size: size,
	}}
}

func TestSwitchForwards(t *testing.T) {
	eng, sw, sink := buildPair(1<<20, 10_000_000_000)
	sw.Receive(mkPkt(1000), 0)
	eng.Run(Second)
	if sink.Packets != 1 || sink.Bytes != 1000 {
		t.Fatalf("sink got %d pkts %d bytes", sink.Packets, sink.Bytes)
	}
	if sw.Occupancy() != 0 {
		t.Fatalf("buffer not drained: %d", sw.Occupancy())
	}
	if sw.Port(0).Forwarded() != 1 {
		t.Fatal("port forward counter wrong")
	}
}

func TestSwitchDropsWhenBufferFull(t *testing.T) {
	// Buffer of 1500 bytes, slow link: second packet must drop.
	eng, sw, sink := buildPair(1500, 1_000_000)
	dropped := 0
	sw.OnDrop = func(*Packet) { dropped++ }
	sw.Receive(mkPkt(1000), 0)
	sw.Receive(mkPkt(1000), 0)
	eng.Run(10 * Second)
	if sink.Packets != 1 {
		t.Fatalf("sink packets = %d, want 1", sink.Packets)
	}
	if sw.Drops() != 1 || dropped != 1 || sw.Port(0).Drops() != 1 {
		t.Fatalf("drops = %d (cb %d)", sw.Drops(), dropped)
	}
}

func TestSwitchSerializesFIFO(t *testing.T) {
	// Two packets at t=0 on a 8 Mbps link: 1000B takes 1ms each, so the
	// second arrives at 2ms.
	eng, sw, sink := buildPair(1<<20, 8_000_000)
	var arrivals []Time
	sink.OnPacket = func(*Packet) { arrivals = append(arrivals, eng.Now()) }
	sw.Receive(mkPkt(1000), 0)
	sw.Receive(mkPkt(1000), 0)
	eng.Run(Second)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[0] != Millisecond || arrivals[1] != 2*Millisecond {
		t.Fatalf("arrival times %v", arrivals)
	}
}

func TestSwitchSharedBufferAcrossPorts(t *testing.T) {
	eng := &Engine{}
	sw := NewSwitch(eng, "sw", 1500)
	s1, s2 := NewSink("a"), NewSink("b")
	sw.AddPort(&Link{RateBps: 1_000_000}, s1)
	sw.AddPort(&Link{RateBps: 1_000_000}, s2)
	sw.Receive(mkPkt(1000), 0)
	sw.Receive(mkPkt(1000), 1) // different port, same shared pool: drop
	eng.Run(10 * Second)
	if s1.Packets+s2.Packets != 1 || sw.Drops() != 1 {
		t.Fatalf("shared pool not enforced: delivered %d drops %d", s1.Packets+s2.Packets, sw.Drops())
	}
}

func TestSwitchBadPortPanics(t *testing.T) {
	eng, sw, _ := buildPair(1<<20, 1_000_000)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("bad port accepted")
		}
	}()
	sw.Receive(mkPkt(100), 7)
}

func newTestFabric(t *testing.T) (*Engine, *Fabric, *topology.Topology) {
	t.Helper()
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	eng := &Engine{}
	return eng, NewFabric(eng, topo, DefaultFabricConfig()), topo
}

func inject(f *Fabric, src, dst topology.HostID, size uint32) {
	f.Inject(packet.Header{
		Key: packet.FlowKey{
			Src: f.Topo.Addr(src), Dst: f.Topo.Addr(dst),
			SrcPort: 1000, DstPort: 80, Proto: packet.TCP,
		},
		Size: size,
	})
}

// pickPair finds a (src, dst) pair with the given locality.
func pickPair(t *testing.T, topo *topology.Topology, want topology.Locality) (topology.HostID, topology.HostID) {
	t.Helper()
	for i := 0; i < topo.NumHosts(); i++ {
		for j := 0; j < topo.NumHosts(); j++ {
			if topo.Locality(topology.HostID(i), topology.HostID(j)) == want {
				return topology.HostID(i), topology.HostID(j)
			}
		}
	}
	t.Fatalf("no pair with locality %v", want)
	return 0, 0
}

func TestFabricDeliversAllLocalities(t *testing.T) {
	for _, loc := range topology.Localities {
		eng, f, topo := newTestFabric(t)
		src, dst := pickPair(t, topo, loc)
		inject(f, src, dst, 1000)
		eng.Run(Second)
		if got := f.Sink(dst).Packets; got != 1 {
			t.Errorf("%v: delivered %d packets, want 1", loc, got)
		}
		if f.Sink(src).Packets != 0 {
			t.Errorf("%v: source received its own packet", loc)
		}
	}
}

func TestFabricLoopbackIgnored(t *testing.T) {
	eng, f, _ := newTestFabric(t)
	inject(f, 3, 3, 500)
	eng.Run(Second)
	if f.Injected() != 0 || f.Sink(3).Packets != 0 {
		t.Fatal("loopback packet entered the fabric")
	}
}

func TestFabricLatencyOrdering(t *testing.T) {
	// Farther destinations must take longer.
	var times [5]Time
	for i, loc := range topology.Localities {
		eng, f, topo := newTestFabric(t)
		src, dst := pickPair(t, topo, loc)
		inject(f, src, dst, 1000)
		var at Time
		f.Sink(dst).OnPacket = func(*Packet) { at = eng.Now() }
		eng.Run(10 * Second)
		times[i] = at
	}
	for i := 1; i < len(topology.Localities); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("latency not increasing with distance: %v", times)
		}
	}
}

func TestFabricEdgeAccounting(t *testing.T) {
	eng, f, topo := newTestFabric(t)
	src, dst := pickPair(t, topo, topology.IntraCluster)
	for i := 0; i < 10; i++ {
		inject(f, src, dst, 1000)
	}
	eng.Run(Second)
	edge := f.LinksByTier(TierHostRSW)
	if got := edge[src].BytesTx(); got != 10000 {
		t.Fatalf("edge bytes = %d", got)
	}
	// RSW→CSW tier must have carried the traffic too.
	total := int64(0)
	for _, l := range f.LinksByTier(TierRSWCSW) {
		total += l.BytesTx()
	}
	if total != 10000 {
		t.Fatalf("rack uplink bytes = %d", total)
	}
	f.ResetLinkCounters()
	if edge[src].BytesTx() != 0 {
		t.Fatal("ResetLinkCounters failed")
	}
}

func TestFabricIntraRackStaysLocal(t *testing.T) {
	eng, f, topo := newTestFabric(t)
	src, dst := pickPair(t, topo, topology.IntraRack)
	inject(f, src, dst, 1000)
	eng.Run(Second)
	for _, l := range f.LinksByTier(TierRSWCSW) {
		if l.BytesTx() != 0 {
			t.Fatal("intra-rack packet left the rack")
		}
	}
	if f.Sink(dst).Packets != 1 {
		t.Fatal("intra-rack packet lost")
	}
}

func TestSampleOccupancy(t *testing.T) {
	eng, sw, _ := buildPair(1<<20, 1_000_000) // slow link keeps queue busy
	var samples int
	var maxOcc int64
	SampleOccupancy(eng, sw, 10*Microsecond, 10*Millisecond, func(_ Time, occ int64) {
		samples++
		if occ > maxOcc {
			maxOcc = occ
		}
	})
	for i := 0; i < 20; i++ {
		sw.Receive(mkPkt(1000), 0)
	}
	eng.Run(10 * Millisecond)
	if samples != 1000 {
		t.Fatalf("samples = %d, want 1000", samples)
	}
	if maxOcc == 0 {
		t.Fatal("sampler never saw queued bytes")
	}
}

func BenchmarkFabricInject(b *testing.B) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	eng := &Engine{}
	f := NewFabric(eng, topo, DefaultFabricConfig())
	hdr := packet.Header{
		Key: packet.FlowKey{
			Src: topo.Addr(0), Dst: topo.Addr(topology.HostID(topo.NumHosts() - 1)),
			SrcPort: 1, DstPort: 2, Proto: packet.TCP,
		},
		Size: 200,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Inject(hdr)
		if i%1024 == 0 {
			eng.Run(eng.Now() + Second)
		}
	}
	eng.Run(eng.Now() + 10*Second)
}

func TestSinkDelayAccounting(t *testing.T) {
	eng, f, topo := newTestFabric(t)
	src, dst := pickPair(t, topo, topology.IntraCluster)
	inject(f, src, dst, 1000)
	eng.Run(Second)
	d := &f.Sink(dst).Delay
	if d.N != 1 {
		t.Fatalf("delay samples %d", d.N)
	}
	// Intra-cluster path: several hops of wire delay + serialization.
	if d.Mean() < float64(2*Microsecond) || d.Mean() > float64(Millisecond) {
		t.Fatalf("delay %v ns implausible", d.Mean())
	}
	if d.Max < d.Mean() {
		t.Fatal("max below mean")
	}
}
