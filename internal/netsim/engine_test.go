package netsim

import (
	"sort"
	"testing"
)

// TestEngineHeapStress drives the typed heap with an adversarial
// insertion pattern — descending times, heavy same-time ties, interleaved
// scheduling from inside handlers — and checks the dispatch order against
// a stable-sorted reference.
func TestEngineHeapStress(t *testing.T) {
	var e Engine
	type stamp struct {
		at  Time
		id  int
		ins int // insertion order, the FIFO tie-break contract
	}
	var want []stamp
	var got []stamp

	id := 0
	schedule := func(at Time) {
		s := stamp{at: at, id: id, ins: id}
		id++
		want = append(want, s)
		e.At(at, func() {
			got = append(got, stamp{at: e.Now(), id: s.id, ins: s.ins})
		})
	}

	// Descending times with ties every third insert.
	for i := 0; i < 300; i++ {
		schedule(Time((300 - i) % 37))
	}
	// Events scheduled from inside a handler land after already-queued
	// same-time events.
	e.At(5, func() {
		e.After(0, func() { got = append(got, stamp{at: e.Now(), id: -1, ins: 1 << 30}) })
	})
	want = append(want, stamp{at: 5, id: -1, ins: 1 << 30})

	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })

	if n := e.Run(1000); n != len(want)+1 { // +1 for the wrapper at t=5
		t.Fatalf("ran %d events, want %d", n, len(want)+1)
	}
	if len(got) != len(want) {
		t.Fatalf("recorded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].id != want[i].id || got[i].at != want[i].at {
			t.Fatalf("event %d: got (t=%d id=%d), want (t=%d id=%d)",
				i, got[i].at, got[i].id, want[i].at, want[i].id)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
}
