package netsim

import (
	"reflect"
	"testing"

	"fbdcnet/internal/packet"
	"fbdcnet/internal/topology"
)

// faultTestTopo builds a small two-cluster, two-datacenter topology for
// path-level fault tests.
func faultTestTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cl := func() topology.ClusterSpec {
		return topology.ClusterSpec{Type: topology.ClusterFrontend, Racks: 3, HostsPerRack: 2}
	}
	topo, err := topology.Build(topology.Config{Sites: []topology.SiteSpec{{
		Datacenters: []topology.DatacenterSpec{
			{Clusters: []topology.ClusterSpec{cl(), cl()}},
			{Clusters: []topology.ClusterSpec{cl()}},
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// hdrBetween builds a header from host a to host b; port varies the ECMP
// hash so tests can cover all posts.
func hdrBetween(topo *topology.Topology, a, b topology.HostID, port uint16) packet.Header {
	return packet.Header{
		Key: packet.FlowKey{
			Src: topo.Addr(a), Dst: topo.Addr(b),
			SrcPort: port, DstPort: 80, Proto: packet.TCP,
		},
		Size: 1500,
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	topo := faultTestTopo(t)
	for _, sc := range FaultScenarios() {
		a, err := NewFaultSchedule(sc, topo, 0, 42, 10*Second)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if len(a.Events) == 0 {
			t.Fatalf("%s: empty schedule", sc)
		}
		b, _ := NewFaultSchedule(sc, topo, 0, 42, 10*Second)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: schedule is not a pure function of its inputs", sc)
		}
		for _, ev := range a.Events {
			if ev.RecoverAt <= ev.At {
				t.Fatalf("%s: event %v never recovers", sc, ev.Elem)
			}
		}
	}
	if _, err := NewFaultSchedule("no-such-scenario", topo, 0, 42, Second); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestCSWDownReroutes pins the headline 4-post property: with one CSW
// dead, inter-rack intra-cluster traffic re-hashes onto the surviving
// three posts and nothing is lost; intra-rack traffic is untouched.
func TestCSWDownReroutes(t *testing.T) {
	topo := faultTestTopo(t)
	eng := &Engine{}
	f := NewFabric(eng, topo, DefaultFabricConfig())
	f.SetElementDown(topology.Element{Kind: topology.ElemCSW, A: 0, B: 1}, true)

	src := topo.Racks[0].Host(0)
	dstOther := topo.Racks[1].Host(0) // same cluster, different rack
	dstSame := topo.Racks[0].Host(1)  // same rack
	const n = 64
	for i := 0; i < n; i++ {
		eng.At(Time(i)*Microsecond, func(i int) func() {
			return func() {
				f.Inject(hdrBetween(topo, src, dstOther, uint16(1000+i)))
				f.Inject(hdrBetween(topo, src, dstSame, uint16(1000+i)))
			}
		}(i))
	}
	eng.Run(Second)

	if got := f.Sink(dstOther).Packets; got != n {
		t.Fatalf("inter-rack delivered %d of %d", got, n)
	}
	if got := f.Sink(dstSame).Packets; got != n {
		t.Fatalf("intra-rack delivered %d of %d", got, n)
	}
	st := f.Faults()
	if st.ReroutedPkts == 0 {
		t.Fatal("no packets rerouted around the dead CSW")
	}
	if st.LostPkts != 0 || st.FaultDrops != 0 {
		t.Fatalf("lost %d / fault-dropped %d packets despite three live posts", st.LostPkts, st.FaultDrops)
	}
}

// TestDisableRerouteLosesFlows is the ablation arm: without ECMP
// re-hashing, flows hashed onto the dead post retransmit into it until
// the attempt budget runs out and are lost forever.
func TestDisableRerouteLosesFlows(t *testing.T) {
	topo := faultTestTopo(t)
	eng := &Engine{}
	f := NewFabric(eng, topo, DefaultFabricConfig())
	f.DisableReroute = true
	f.SetElementDown(topology.Element{Kind: topology.ElemCSW, A: 0, B: 1}, true)

	src := topo.Racks[0].Host(0)
	dst := topo.Racks[1].Host(0)
	const n = 64
	for i := 0; i < n; i++ {
		f.Inject(hdrBetween(topo, src, dst, uint16(1000+i)))
	}
	eng.Run(Second)

	st := f.Faults()
	delivered := f.Sink(dst).Packets
	if delivered+st.LostPkts != n {
		t.Fatalf("delivered %d + lost %d != injected %d", delivered, st.LostPkts, n)
	}
	if st.LostPkts == 0 {
		t.Fatal("expected flows pinned to the dead post to be lost")
	}
	if st.Retransmits == 0 {
		t.Fatal("expected retransmission attempts before giving up")
	}
	if got := st.LostByLocality[topology.IntraCluster]; got != st.LostPkts {
		t.Fatalf("lost packets misclassified: intra-cluster %d of %d", got, st.LostPkts)
	}
}

// TestRSWRecoveryRedelivers drains a rack and recovers it within the
// retransmission budget: the packet must arrive after the RSW comes back.
func TestRSWRecoveryRedelivers(t *testing.T) {
	topo := faultTestTopo(t)
	eng := &Engine{}
	f := NewFabric(eng, topo, DefaultFabricConfig())
	sched := &FaultSchedule{Scenario: "manual", Events: []FaultEvent{{
		At: 0, RecoverAt: 5 * Millisecond,
		Elem: topology.Element{Kind: topology.ElemRSW, A: 0},
	}}}
	f.ApplyFaults(sched)

	src := topo.Racks[0].Host(0)
	dst := topo.Racks[0].Host(1)
	eng.At(Microsecond, func() { f.Inject(hdrBetween(topo, src, dst, 9)) })
	eng.Run(Second)

	if got := f.Sink(dst).Packets; got != 1 {
		t.Fatalf("delivered %d packets after recovery, want 1", got)
	}
	st := f.Faults()
	if st.Retransmits == 0 {
		t.Fatal("delivery should have required retransmission")
	}
	if st.FaultEvents != 1 || st.Recoveries != 1 {
		t.Fatalf("fault transitions %d/%d, want 1/1", st.FaultEvents, st.Recoveries)
	}
	if st.LostPkts != 0 {
		t.Fatalf("lost %d packets", st.LostPkts)
	}
}

// TestPermanentRSWDownLosesIntraRack pins the lost-forever accounting and
// its locality split.
func TestPermanentRSWDownLosesIntraRack(t *testing.T) {
	topo := faultTestTopo(t)
	eng := &Engine{}
	f := NewFabric(eng, topo, DefaultFabricConfig())
	f.SetElementDown(topology.Element{Kind: topology.ElemRSW, A: 0}, true)

	src := topo.Racks[0].Host(0)
	dst := topo.Racks[0].Host(1)
	f.Inject(hdrBetween(topo, src, dst, 9))
	eng.Run(Second)

	st := f.Faults()
	if st.LostPkts != 1 {
		t.Fatalf("lost %d packets, want 1", st.LostPkts)
	}
	if st.LostByLocality[topology.IntraRack] != 1 {
		t.Fatalf("loss not classified intra-rack: %v", st.LostByLocality)
	}
	if f.Sink(dst).Packets != 0 {
		t.Fatal("packet delivered through a dead RSW")
	}
}

// TestUplinkFlapDropsQueuedPackets fails a link while packets sit in its
// egress queue: the queued packets are lost at their departure instants
// and retransmitted once the link recovers.
func TestUplinkFlapDropsQueuedPackets(t *testing.T) {
	topo := faultTestTopo(t)
	eng := &Engine{}
	f := NewFabric(eng, topo, DefaultFabricConfig())

	src := topo.Racks[0].Host(0)
	dst := topo.Racks[1].Host(0)
	// Find a port whose ECMP hash the first flow uses, then flap exactly
	// that uplink just after injection so the queued packet dies in place.
	hdr := hdrBetween(topo, src, dst, 1234)
	post := int(hdr.Key.FastHash() % 4)
	elem := topology.Element{Kind: topology.ElemRSWUplink, A: 0, B: post}
	f.Inject(hdr)
	f.SetElementDown(elem, true)
	eng.At(4*Millisecond, func() { f.SetElementDown(elem, false) })
	eng.Run(Second)

	st := f.Faults()
	if st.FaultDrops == 0 {
		t.Fatal("queued packet should have been fault-dropped on the dead link")
	}
	if got := f.Sink(dst).Packets; got != 1 {
		t.Fatalf("delivered %d packets after link recovery, want 1", got)
	}
	if st.LostPkts != 0 {
		t.Fatalf("lost %d packets", st.LostPkts)
	}
}

// TestFaultRunDeterminism runs an identical faulted workload twice and
// requires identical counters and sink totals.
func TestFaultRunDeterminism(t *testing.T) {
	topo := faultTestTopo(t)
	run := func() (FaultStats, int64) {
		eng := &Engine{}
		f := NewFabric(eng, topo, DefaultFabricConfig())
		sched, err := NewFaultSchedule(ScenarioLinkFlap, topo, 0, 7, 100*Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		f.ApplyFaults(sched)
		src := topo.Racks[0].Host(0)
		dst := topo.Racks[1].Host(0)
		for i := 0; i < 512; i++ {
			i := i
			eng.At(Time(i)*200*Microsecond, func() {
				f.Inject(hdrBetween(topo, src, dst, uint16(i)))
			})
		}
		eng.Run(Second)
		return f.Faults(), f.Sink(dst).Packets
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("faulted run not deterministic:\n%+v delivered %d\nvs\n%+v delivered %d", s1, d1, s2, d2)
	}
	if s1.FaultEvents == 0 || d1 == 0 {
		t.Fatalf("degenerate run: %+v delivered %d", s1, d1)
	}
}
