package netsim

import (
	"fmt"

	"fbdcnet/internal/packet"
	"fbdcnet/internal/telemetry"
)

// Packet is a unit of traffic moving through the simulated network.
type Packet struct {
	Hdr packet.Header
	// Tries counts delivery attempts: 0 for the first transmission,
	// incremented by the fault layer on each retransmission.
	Tries uint8
	// Rec, when non-nil, is the in-band telemetry path record this
	// sampled packet carries: each switch appends a hop, and whichever
	// element disposes of the packet (sink delivery, buffer drop, fault)
	// finalizes it with the terminal reason code. Nil for unsampled
	// packets — every telemetry touch is a nil check on this field.
	Rec *telemetry.PathRecord
	// hops is the remaining sequence of (node, egress port) steps.
	hops []hop
}

type hop struct {
	node Node
	port int
}

// Node receives packets. Implementations: Switch, Sink.
type Node interface {
	// Receive delivers p to the node; port is the node-local egress port
	// the packet should leave through next (ignored by sinks).
	Receive(p *Packet, port int)
	// Name identifies the node in counters and errors.
	Name() string
}

// Link is a unidirectional wire with a fixed rate and propagation delay.
type Link struct {
	RateBps int64 // bits per second
	Delay   Time  // propagation delay

	bytesTx int64
}

// TxTime returns the serialization time of size bytes on this link.
func (l *Link) TxTime(size uint32) Time {
	return Time(int64(size) * 8 * Second / l.RateBps)
}

// BytesTx returns cumulative bytes transmitted over the link.
func (l *Link) BytesTx() int64 { return l.bytesTx }

// Utilization returns the average utilization over a window of length d.
func (l *Link) Utilization(d Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(l.bytesTx*8) / (float64(l.RateBps) * float64(d) / float64(Second))
}

// ResetCounters zeroes the transmit counter (e.g. between measurement
// windows).
func (l *Link) ResetCounters() { l.bytesTx = 0 }

// Port is one switch egress: a FIFO queue served at the attached link's
// rate, drawing buffer space from the switch's shared pool.
type Port struct {
	Link      *Link
	Peer      Node // node at the far end
	PeerPort  int  // egress port the packet uses at the peer (pre-routed)
	busyUntil Time
	queued    int64 // bytes currently queued on this port
	drops     int64
	forwarded int64
	down      bool // link fault: packets entering or departing are lost
}

// SetDown marks the port's link as failed (true) or recovered (false).
// While down, packets routed to the port — including ones already queued
// — are handed to the switch's fault-drop path instead of transmitted.
func (p *Port) SetDown(down bool) { p.down = down }

// Down reports whether the port's link is currently failed.
func (p *Port) Down() bool { return p.down }

// Drops returns the number of packets dropped at this egress.
func (p *Port) Drops() int64 { return p.drops }

// Forwarded returns the number of packets transmitted from this egress.
func (p *Port) Forwarded() int64 { return p.forwarded }

// Switch is an output-queued switch with a shared egress buffer pool:
// a packet is dropped if the pool cannot hold it, regardless of which
// port it is queued on. This is the shallow-shared-buffer commodity
// design whose occupancy §6.3 measures.
type Switch struct {
	eng        *Engine
	name       string
	BufBytes   int64 // shared pool capacity
	used       int64 // bytes currently buffered across all ports
	ports      []*Port
	enqueues   int64 // packets accepted into the shared buffer
	dropTotal  int64
	down       bool  // switch fault: every received or queued packet is lost
	faultDrops int64 // packets lost to a down switch or port

	// OnDrop, if set, is invoked for each dropped packet.
	OnDrop func(p *Packet)
	// OnFaultDrop, if set, is invoked for each packet lost to a fault
	// (down switch or down link) — the hook the fabric's retransmission
	// accounting attaches to.
	OnFaultDrop func(p *Packet)

	// In-band telemetry registration (Fabric.AttachTelemetry). telem is
	// nil on untraced fabrics; sampled packets cannot then exist, so the
	// recording paths below stay behind p.Rec nil checks.
	telem     *telemetry.Sink
	telemID   uint32
	telemTier telemetry.Tier
}

// setTelemetry registers the switch's identity with an attached sink.
func (s *Switch) setTelemetry(ts *telemetry.Sink, tier telemetry.Tier) {
	s.telem = ts
	s.telemTier = tier
	s.telemID = ts.RegisterSwitch(s.name, tier, len(s.ports))
}

// TelemetryID returns the dense switch ID assigned by an attached
// telemetry sink (0 when untraced).
func (s *Switch) TelemetryID() uint32 { return s.telemID }

// faultReason maps the down flags to the telemetry reason code at a
// fault drop: a down switch wins over a down link.
func (s *Switch) faultReason() telemetry.Reason {
	if s.down {
		return telemetry.ReasonSwitchDown
	}
	return telemetry.ReasonLinkDown
}

// NewSwitch creates a switch with the given shared buffer capacity.
func NewSwitch(eng *Engine, name string, bufBytes int64) *Switch {
	return &Switch{eng: eng, name: name, BufBytes: bufBytes}
}

// Name implements Node.
func (s *Switch) Name() string { return s.name }

// AddPort attaches an egress port and returns its index.
func (s *Switch) AddPort(link *Link, peer Node) int {
	s.ports = append(s.ports, &Port{Link: link, Peer: peer})
	return len(s.ports) - 1
}

// Port returns the port at index i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// NumPorts returns the number of egress ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Occupancy returns the bytes currently held in the shared buffer.
func (s *Switch) Occupancy() int64 { return s.used }

// Drops returns the total packets dropped across all ports.
func (s *Switch) Drops() int64 { return s.dropTotal }

// Enqueues returns the packets accepted into the shared buffer (the
// complement of Drops and FaultDrops on the receive path).
func (s *Switch) Enqueues() int64 { return s.enqueues }

// Forwarded returns the packets transmitted across all egress ports.
func (s *Switch) Forwarded() int64 {
	var n int64
	for _, p := range s.ports {
		n += p.forwarded
	}
	return n
}

// FaultDrops returns the packets lost to switch or link faults here.
func (s *Switch) FaultDrops() int64 { return s.faultDrops }

// SetDown fails (true) or recovers (false) the whole switch. While down,
// every packet received — and every packet already queued when the fault
// fires, at its departure instant — is lost through the fault-drop path.
func (s *Switch) SetDown(down bool) { s.down = down }

// Down reports whether the switch is currently failed.
func (s *Switch) Down() bool { return s.down }

// faultDrop loses p to a fault and notifies the fault hook.
func (s *Switch) faultDrop(p *Packet) {
	s.faultDrops++
	if s.OnFaultDrop != nil {
		s.OnFaultDrop(p)
	}
}

// Receive implements Node: queue the packet on egress port, or drop it if
// the shared buffer is exhausted.
func (s *Switch) Receive(p *Packet, port int) {
	if port < 0 || port >= len(s.ports) {
		panic(fmt.Sprintf("netsim: %s: bad egress port %d", s.name, port))
	}
	pt := s.ports[port]
	if s.down || pt.down {
		if p.Rec != nil {
			reason := s.faultReason()
			now := int64(s.eng.Now())
			p.Rec.AddHop(s.telemID, s.telemTier, uint16(port), reason, s.used, 0, now)
			s.telem.Finish(p.Rec, reason, now)
			p.Rec = nil
		}
		s.faultDrop(p)
		return
	}
	size := int64(p.Hdr.Size)
	if s.used+size > s.BufBytes {
		pt.drops++
		s.dropTotal++
		if p.Rec != nil {
			now := int64(s.eng.Now())
			p.Rec.AddHop(s.telemID, s.telemTier, uint16(port), telemetry.ReasonBufferDrop, s.used, 0, now)
			s.telem.Finish(p.Rec, telemetry.ReasonBufferDrop, now)
			p.Rec = nil
		}
		if s.OnDrop != nil {
			s.OnDrop(p)
		}
		return
	}
	start := s.eng.Now()
	if pt.busyUntil > start {
		start = pt.busyUntil
	}
	if p.Rec != nil {
		// Queue depth is the shared-pool usage ahead of this packet;
		// queuing delay is the wait behind earlier departures on the port.
		p.Rec.AddHop(s.telemID, s.telemTier, uint16(port), telemetry.ReasonForwarded,
			s.used, int64(start-s.eng.Now()), int64(s.eng.Now()))
	}
	s.used += size
	pt.queued += size
	s.enqueues++
	depart := start + pt.Link.TxTime(p.Hdr.Size)
	pt.busyUntil = depart
	s.eng.At(depart, func() {
		s.used -= size
		pt.queued -= size
		// A fault that fired while the packet sat in the queue loses it
		// at its departure instant: the buffer is released but nothing
		// goes on the wire.
		if s.down || pt.down {
			if p.Rec != nil {
				reason := s.faultReason()
				p.Rec.FailLastHop(reason)
				s.telem.Finish(p.Rec, reason, int64(s.eng.Now()))
				p.Rec = nil
			}
			s.faultDrop(p)
			return
		}
		pt.forwarded++
		pt.Link.bytesTx += size
		peer, nextPort := pt.Peer, pt.PeerPort
		arrive := depart + pt.Link.Delay
		s.eng.At(arrive, func() { deliver(peer, p, nextPort) })
	})
}

// deliver advances a packet along its precomputed hop list if it has one,
// otherwise uses the port argument.
func deliver(n Node, p *Packet, port int) {
	if len(p.hops) > 0 {
		next := p.hops[0]
		p.hops = p.hops[1:]
		next.node.Receive(p, next.port)
		return
	}
	n.Receive(p, port)
}

// Sink absorbs packets at the edge of the simulated network and counts
// them; it stands in for the receiving host's NIC.
type Sink struct {
	name    string
	eng     *Engine
	Packets int64
	Bytes   int64
	// Delay accumulates per-packet network delay (delivery time minus
	// the header's injection timestamp) when an engine is attached.
	Delay Moments
	// OnPacket, if set, is invoked for each delivered packet.
	OnPacket func(p *Packet)
	// Telem, if set, finalizes the path records of sampled packets at
	// delivery (set by Fabric.AttachTelemetry).
	Telem *telemetry.Sink
	// OnBatch, if set, receives delivered headers batched at
	// departure-time boundaries: the slab is handed over whenever a
	// delivery arrives at a later engine time than the buffered ones, so
	// concatenated batches preserve exact delivery-time order. Call Flush
	// after the run to hand over the final batch. The slab is reused;
	// consumers must not retain it.
	OnBatch func(hs []packet.Header)

	batch   []packet.Header
	batchAt Time // delivery time of the buffered headers
}

// NewSink creates a named sink.
func NewSink(name string) *Sink { return &Sink{name: name} }

// AttachEngine enables delay accounting against the engine's clock.
func (s *Sink) AttachEngine(e *Engine) { s.eng = e }

// Name implements Node.
func (s *Sink) Name() string { return s.name }

// Receive implements Node.
func (s *Sink) Receive(p *Packet, _ int) {
	s.Packets++
	s.Bytes += int64(p.Hdr.Size)
	if s.eng != nil {
		s.Delay.Add(float64(s.eng.Now() - p.Hdr.Time))
	}
	if p.Rec != nil && s.Telem != nil {
		now := int64(0)
		if s.eng != nil {
			now = int64(s.eng.Now())
		}
		s.Telem.Finish(p.Rec, telemetry.ReasonDelivered, now)
		p.Rec = nil
	}
	if s.OnPacket != nil {
		s.OnPacket(p)
	}
	if s.OnBatch != nil {
		now := Time(0)
		if s.eng != nil {
			now = s.eng.Now()
		}
		if len(s.batch) > 0 && now != s.batchAt {
			s.OnBatch(s.batch)
			s.batch = s.batch[:0]
		}
		s.batchAt = now
		s.batch = append(s.batch, p.Hdr)
	}
}

// Flush hands any buffered OnBatch headers over; call once after the
// engine run completes.
func (s *Sink) Flush() {
	if s.OnBatch != nil && len(s.batch) > 0 {
		s.OnBatch(s.batch)
		s.batch = s.batch[:0]
	}
}

// Moments is a minimal online mean/max accumulator for delays (a local
// copy avoids importing the stats package into the simulator core).
type Moments struct {
	N   int64
	Sum float64
	Max float64
}

// Add folds one observation.
func (m *Moments) Add(x float64) {
	m.N++
	m.Sum += x
	if x > m.Max {
		m.Max = x
	}
}

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}
