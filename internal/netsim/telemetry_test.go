package netsim

import (
	"testing"

	"fbdcnet/internal/packet"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
)

// attachAllSampled wires a rate-1 telemetry sink so every flow records.
func attachAllSampled(f *Fabric) *telemetry.Sink {
	ts := telemetry.NewSink(42, 1)
	f.AttachTelemetry(ts)
	return ts
}

// TestPathRecordHops checks that a sampled inter-cluster packet records
// every switch traversal with the expected tiers, ECMP post, and
// monotone hop times, and finalizes as delivered.
func TestPathRecordHops(t *testing.T) {
	eng, f, topo := newTestFabric(t)
	ts := attachAllSampled(f)
	src, dst := pickPair(t, topo, topology.IntraDatacenter)
	inject(f, src, dst, 1000)
	eng.Run(Second)

	if len(ts.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(ts.Records))
	}
	r := ts.Records[0]
	if r.Status != telemetry.ReasonDelivered {
		t.Fatalf("status = %v", r.Status)
	}
	wantTiers := []telemetry.Tier{
		telemetry.TierRSW, telemetry.TierCSW, telemetry.TierFC,
		telemetry.TierCSW, telemetry.TierRSW,
	}
	if len(r.Hops) != len(wantTiers) {
		t.Fatalf("hops = %d, want %d", len(r.Hops), len(wantTiers))
	}
	hdr := packet.Header{Key: packet.FlowKey{
		Src: topo.Addr(src), Dst: topo.Addr(dst),
		SrcPort: 1000, DstPort: 80, Proto: packet.TCP,
	}}
	if want := uint8(hdr.Key.FastHash() % 4); r.Post != want {
		t.Errorf("post = %d, want hash choice %d", r.Post, want)
	}
	sw := ts.Switches()
	for i, h := range r.Hops {
		if h.Tier != wantTiers[i] {
			t.Errorf("hop %d tier = %v, want %v", i, h.Tier, wantTiers[i])
		}
		if h.Reason != telemetry.ReasonForwarded {
			t.Errorf("hop %d reason = %v", i, h.Reason)
		}
		if i > 0 && h.At < r.Hops[i-1].At {
			t.Errorf("hop %d time regresses: %d < %d", i, h.At, r.Hops[i-1].At)
		}
		if int(h.Switch) >= len(sw) {
			t.Fatalf("hop %d switch id %d unregistered", i, h.Switch)
		}
	}
	if sw[r.Hops[0].Switch].Tier != telemetry.TierRSW {
		t.Errorf("first hop registered as %v", sw[r.Hops[0].Switch].Tier)
	}
	if r.Done <= r.Injected {
		t.Errorf("done %d not after injected %d", r.Done, r.Injected)
	}
	if ts.Agg.Delivered != 1 || ts.Agg.HopsTotal != int64(len(wantTiers)) {
		t.Errorf("agg: %+v", ts.Agg)
	}
}

// TestPathRecordBufferDrop forces shared-buffer exhaustion and checks the
// drop is attributed to the RSW tier with the buffer-drop reason.
func TestPathRecordBufferDrop(t *testing.T) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	eng := &Engine{}
	cfg := DefaultFabricConfig()
	cfg.RSWBufBytes = 1500 // one packet fills the ToR
	f := NewFabric(eng, topo, cfg)
	ts := attachAllSampled(f)
	src, dst := pickPair(t, topo, topology.IntraRack)
	for i := 0; i < 4; i++ {
		f.Inject(packet.Header{
			Key: packet.FlowKey{
				Src: topo.Addr(src), Dst: topo.Addr(dst),
				SrcPort: uint16(2000 + i), DstPort: 80, Proto: packet.TCP,
			},
			Size: 1500,
		})
	}
	eng.Run(Second)
	if ts.Agg.DropsByReason[telemetry.ReasonBufferDrop] == 0 {
		t.Fatalf("no buffer drops recorded: %+v", ts.Agg)
	}
	if ts.Agg.DropMatrix[telemetry.ReasonBufferDrop][telemetry.TierRSW] !=
		ts.Agg.DropsByReason[telemetry.ReasonBufferDrop] {
		t.Fatalf("buffer drops not attributed to RSW: %v", ts.Agg.DropMatrix)
	}
	if ts.Agg.Delivered+ts.Agg.Dropped != ts.Agg.Sampled {
		t.Fatalf("attempts unaccounted: %+v", ts.Agg)
	}
}

// TestPathRecordFaultReasons covers the fault reason codes: a down switch
// mid-path, and the no-live-path dead end when the destination rack dies.
func TestPathRecordFaultReasons(t *testing.T) {
	topo := faultTestTopo(t)
	eng := &Engine{}
	f := NewFabric(eng, topo, DefaultFabricConfig())
	ts := attachAllSampled(f)
	f.DisableReroute = true // keep the hash post so the dead CSW is hit
	f.SetElementDown(topology.Element{Kind: topology.ElemCSW, A: 0, B: 0}, true)
	var delivered, switchDown int
	for port := uint16(1); port <= 40; port++ {
		f.Inject(hdrBetween(topo, 0, 5, port)) // intra-cluster, crosses a CSW
	}
	eng.Run(Second)
	for _, r := range ts.Records {
		switch r.Status {
		case telemetry.ReasonDelivered:
			delivered++
		case telemetry.ReasonSwitchDown:
			switchDown++
			last := r.Hops[len(r.Hops)-1]
			if last.Tier != telemetry.TierCSW {
				t.Errorf("switch-down drop at tier %v, want CSW", last.Tier)
			}
		}
	}
	if delivered == 0 || switchDown == 0 {
		t.Fatalf("want both delivered and switch-down records, got %d/%d (agg %+v)",
			delivered, switchDown, ts.Agg)
	}
	if ts.Agg.DropMatrix[telemetry.ReasonSwitchDown][telemetry.TierCSW] == 0 {
		t.Errorf("switch-down not attributed to CSW tier: %v", ts.Agg.DropMatrix)
	}

	// Destination RSW down with reroute on: post-independent dead end.
	eng2 := &Engine{}
	f2 := NewFabric(eng2, topo, DefaultFabricConfig())
	ts2 := attachAllSampled(f2)
	f2.SetElementDown(topology.Element{Kind: topology.ElemRSW, A: topo.HostRack(5)}, true)
	f2.Inject(hdrBetween(topo, 0, 5, 7))
	eng2.Run(Second)
	if ts2.Agg.DropsByReason[telemetry.ReasonNoLivePath] == 0 {
		t.Fatalf("no no-live-path record: %+v", ts2.Agg)
	}

	// Reroute around a single dead CSW must mark records rerouted.
	eng3 := &Engine{}
	f3 := NewFabric(eng3, topo, DefaultFabricConfig())
	ts3 := attachAllSampled(f3)
	f3.SetElementDown(topology.Element{Kind: topology.ElemCSW, A: 0, B: 0}, true)
	for port := uint16(1); port <= 40; port++ {
		f3.Inject(hdrBetween(topo, 0, 5, port))
	}
	eng3.Run(Second)
	if ts3.Agg.Rerouted == 0 {
		t.Fatalf("no rerouted records around dead CSW: %+v", ts3.Agg)
	}
	if ts3.Agg.Rerouted == ts3.Agg.Sampled {
		t.Fatalf("every flow marked rerouted: %+v", ts3.Agg)
	}
}

// TestQueueSampling checks the fixed-interval occupancy series: every
// switch emits one series, rows land at exact interval multiples, and a
// busy RSW shows nonzero queued bytes.
func TestQueueSampling(t *testing.T) {
	eng, f, topo := newTestFabric(t)
	ts := attachAllSampled(f)
	f.StartQueueSampling(10*Microsecond, 5*Millisecond)
	src, dst := pickPair(t, topo, topology.IntraRack)
	for i := 0; i < 50; i++ {
		f.Inject(packet.Header{
			Key: packet.FlowKey{
				Src: topo.Addr(src), Dst: topo.Addr(dst),
				SrcPort: uint16(3000 + i), DstPort: 80, Proto: packet.TCP,
			},
			Size: 1500,
		})
	}
	eng.Run(5 * Millisecond)

	nSwitches := len(f.allSwitches())
	if len(ts.Occ) != nSwitches {
		t.Fatalf("series = %d, want one per switch (%d)", len(ts.Occ), nSwitches)
	}
	var sawQueued bool
	for _, os := range ts.Occ {
		if os.Samples() == 0 {
			t.Fatalf("switch %d emitted no samples", os.Switch)
		}
		for i := 0; i < os.Samples(); i++ {
			if os.Times[i]%int64(10*Microsecond) != 0 {
				t.Fatalf("sample at %d ns off the interval grid", os.Times[i])
			}
			if os.Total(i) > 0 {
				sawQueued = true
			}
		}
	}
	if !sawQueued {
		t.Fatal("no sample caught queued bytes on a loaded fabric")
	}
	rswID, ok := ts.SwitchByName(f.RSWOfHost(src).Name())
	if !ok {
		t.Fatal("source RSW not registered")
	}
	var found bool
	for _, os := range ts.Occ {
		if os.Switch == rswID {
			found = true
		}
	}
	if !found {
		t.Fatal("no occupancy series for the source RSW")
	}
}

// TestUnsampledFastPathAllocParity pins the nil-record fast path: with a
// telemetry sink attached but the flow unsampled, injecting and draining
// a packet allocates exactly as much as on an untraced fabric.
func TestUnsampledFastPathAllocParity(t *testing.T) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	src, dst := pickPair(t, topo, topology.IntraCluster)
	hdr := packet.Header{
		Key: packet.FlowKey{
			Src: topo.Addr(src), Dst: topo.Addr(dst),
			SrcPort: 4000, DstPort: 80, Proto: packet.TCP,
		},
		Size: 1500,
	}
	measure := func(traced bool) float64 {
		eng := &Engine{}
		f := NewFabric(eng, topo, DefaultFabricConfig())
		if traced {
			ts := telemetry.NewSink(42, 0) // rate 0: nothing samples
			f.AttachTelemetry(ts)
			ts.Sampled(hdr.Key) // memoize the per-flow decision
		}
		// Warm the engine heap so its growth doesn't count.
		f.Inject(hdr)
		eng.Run(Second)
		return testing.AllocsPerRun(200, func() {
			f.Inject(hdr)
			eng.Run(eng.Now() + Second)
		})
	}
	plain := measure(false)
	traced := measure(true)
	if traced > plain {
		t.Fatalf("unsampled fast path allocates more with telemetry attached: %.2f vs %.2f/op",
			traced, plain)
	}
}
