// Package netsim is a discrete-event, packet-level network simulator: an
// event engine, rate-limited links, and output-queued switches with a
// shared egress buffer pool.
//
// The simulator exists to reproduce the switching-layer observations in
// §6 of the paper — buffer occupancy sampled at 10 µs granularity,
// egress drops, and tiered link utilization (§4.1) — which cannot be
// derived from packet-header traces alone. Traffic enters via Fabric's
// Inject, is routed host→RSW→CSW→FC along ECMP paths chosen by flow hash,
// and exits into host sinks.
package netsim

// Time is simulation time in nanoseconds.
type Time = int64

// Common durations in simulation time units.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

type event struct {
	at  Time
	seq uint64 // tie-break so same-time events run FIFO, deterministically
	fn  func()
}

// before reports whether e should run before o: earlier time first,
// FIFO by sequence number on ties.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use.
//
// The event queue is a typed binary min-heap with inlined sift-up and
// sift-down: scheduling and dispatch are the simulator's hottest path,
// and the container/heap API would box every event through interface{}
// (two heap allocations per event, one on Push and one on Pop).
type Engine struct {
	now  Time
	seq  uint64
	heap []event
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t. Scheduling in the past runs fn at the
// current time (immediately in event order).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.heap = append(e.heap, event{at: t, seq: e.seq, fn: fn})
	e.siftUp(len(e.heap) - 1)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !ev.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// pop removes and returns the earliest event. The queue must be
// non-empty.
func (e *Engine) pop() event {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // drop the fn reference so the closure can be collected
	e.heap = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && h[r].before(h[c]) {
				c = r
			}
			if !h[c].before(last) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	return root
}

// Run executes events in time order until the queue is empty or the next
// event is later than until. It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	n := 0
	for len(e.heap) > 0 && e.heap[0].at <= until {
		ev := e.pop()
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }
