// Package netsim is a discrete-event, packet-level network simulator: an
// event engine, rate-limited links, and output-queued switches with a
// shared egress buffer pool.
//
// The simulator exists to reproduce the switching-layer observations in
// §6 of the paper — buffer occupancy sampled at 10 µs granularity,
// egress drops, and tiered link utilization (§4.1) — which cannot be
// derived from packet-header traces alone. Traffic enters via Fabric's
// Inject, is routed host→RSW→CSW→FC along ECMP paths chosen by flow hash,
// and exits into host sinks.
package netsim

import "container/heap"

// Time is simulation time in nanoseconds.
type Time = int64

// Common durations in simulation time units.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

type event struct {
	at  Time
	seq uint64 // tie-break so same-time events run FIFO, deterministically
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	now  Time
	seq  uint64
	heap eventHeap
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t. Scheduling in the past runs fn at the
// current time (immediately in event order).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Run executes events in time order until the queue is empty or the next
// event is later than until. It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	n := 0
	for len(e.heap) > 0 && e.heap[0].at <= until {
		ev := heap.Pop(&e.heap).(event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }
