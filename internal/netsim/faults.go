package netsim

import (
	"fmt"
	"sort"

	"fbdcnet/internal/packet"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// Fault injection for the simulated fabric. The 4-post Clos of §3.1
// exists to survive link and switch failures; this file makes those
// failures happen deterministically so the locality and heavy-hitter
// analyses can be exercised under degraded topology.
//
// Determinism contract: a FaultSchedule is a pure function of
// (scenario, topology, focus host, seed, horizon) — element choices and
// fault times come from rng.NewKeyed streams, never from wall clock or
// scheduling order — and fault/recovery transitions run as ordinary
// engine events. Fault runs therefore compose with the parallel
// experiment engine: worker count cannot move a single fault.

// FaultEvent fails one fabric element at At and recovers it at RecoverAt
// (no recovery within the run if RecoverAt <= At).
type FaultEvent struct {
	At        Time
	RecoverAt Time
	Elem      topology.Element
}

// FaultSchedule is a deterministic list of fault events, sorted by onset
// time.
type FaultSchedule struct {
	Scenario string
	Seed     uint64
	Events   []FaultEvent
}

// FaultScenarios lists the built-in named scenarios, in the order the
// -faults flag documents them.
func FaultScenarios() []string {
	return []string{ScenarioLinkFlap, ScenarioCSWDown, ScenarioRackDrain, ScenarioFCDown}
}

// Built-in fault scenario names.
const (
	// ScenarioLinkFlap repeatedly fails and recovers one RSW uplink of
	// the focus rack — the flapping-optic failure mode.
	ScenarioLinkFlap = "link-flap"
	// ScenarioCSWDown takes one of the focus cluster's four CSWs down for
	// most of the run: the headline 4-post survivability case.
	ScenarioCSWDown = "csw-down"
	// ScenarioRackDrain fails the focus rack's RSW outright, draining the
	// rack: its hosts lose all connectivity until recovery.
	ScenarioRackDrain = "rack-drain"
	// ScenarioFCDown fails one Fat Cat post of the focus datacenter,
	// degrading inter-cluster and inter-datacenter paths.
	ScenarioFCDown = "fc-down"
)

// scenarioKey folds a scenario name into a key for rng.NewKeyed so each
// scenario draws from its own decorrelated stream (FNV-1a).
func scenarioKey(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// NewFaultSchedule builds the deterministic fault schedule for a named
// scenario over a run of the given horizon. The focus host anchors the
// scenario to the topology region carrying the monitored traffic (its
// rack, cluster, and datacenter). Unknown scenario names are an error;
// the empty name yields an empty schedule.
func NewFaultSchedule(scenario string, topo *topology.Topology, focus topology.HostID, seed uint64, horizon Time) (*FaultSchedule, error) {
	s := &FaultSchedule{Scenario: scenario, Seed: seed}
	if scenario == "" {
		return s, nil
	}
	h := topo.Host(focus)
	r := rng.NewKeyed(seed, scenarioKey(scenario), uint64(focus))
	switch scenario {
	case ScenarioLinkFlap:
		post := r.Intn(topology.PostsPerCluster)
		elem := topology.Element{Kind: topology.ElemRSWUplink, A: h.Rack, B: post}
		// Six flaps, each confined to its own eighth of the horizon so
		// down periods never overlap: jittered onset, short outage.
		const flaps = 6
		slot := horizon / (flaps + 2)
		for i := 0; i < flaps; i++ {
			start := Time(i+1)*slot + Time(r.Intn(int(slot/2)))
			s.Events = append(s.Events, FaultEvent{
				At: start, RecoverAt: start + slot/4, Elem: elem,
			})
		}
	case ScenarioCSWDown:
		post := r.Intn(topology.PostsPerCluster)
		s.Events = append(s.Events, FaultEvent{
			At:        horizon / 10,
			RecoverAt: horizon * 7 / 10,
			Elem:      topology.Element{Kind: topology.ElemCSW, A: h.Cluster, B: post},
		})
	case ScenarioRackDrain:
		s.Events = append(s.Events, FaultEvent{
			At:        horizon / 5,
			RecoverAt: horizon / 2,
			Elem:      topology.Element{Kind: topology.ElemRSW, A: h.Rack},
		})
	case ScenarioFCDown:
		post := r.Intn(topology.PostsPerCluster)
		s.Events = append(s.Events, FaultEvent{
			At:        horizon / 10,
			RecoverAt: horizon * 7 / 10,
			Elem:      topology.Element{Kind: topology.ElemFC, A: h.Datacenter, B: post},
		})
	default:
		return nil, fmt.Errorf("netsim: unknown fault scenario %q (have %v)", scenario, FaultScenarios())
	}
	for _, ev := range s.Events {
		if !topo.ValidElement(ev.Elem) {
			return nil, fmt.Errorf("netsim: scenario %q produced invalid element %v", scenario, ev.Elem)
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}

// FaultStats aggregates the fault layer's packet accounting for one run.
type FaultStats struct {
	// FaultEvents and Recoveries count executed down/up transitions.
	FaultEvents int64 `json:"fault_events"`
	Recoveries  int64 `json:"recoveries"`
	// ReroutedPkts/Bytes count packets whose ECMP hash preferred a dead
	// path and that were re-hashed onto a surviving post at injection.
	ReroutedPkts  int64 `json:"rerouted_pkts"`
	ReroutedBytes int64 `json:"rerouted_bytes"`
	// FaultDrops counts packets lost mid-flight to a down switch or link
	// (each may be retransmitted); Retransmits counts re-injections.
	FaultDrops  int64 `json:"fault_drops"`
	Retransmits int64 `json:"retransmits"`
	// LostPkts/Bytes count packets abandoned after MaxTries attempts —
	// lost forever. LostByLocality splits them by src→dst locality tier.
	LostPkts       int64                               `json:"lost_pkts"`
	LostBytes      int64                               `json:"lost_bytes"`
	LostByLocality [topology.InterDatacenter + 1]int64 `json:"lost_by_locality"`
}

// Retransmission model: a dropped packet is re-injected RetransmitRTO
// after the drop (doubling per attempt, a simplified TCP RTO backoff) up
// to MaxTries total attempts, after which it is lost forever.
const (
	RetransmitRTO = 2 * Millisecond
	MaxTries      = 5
)

// ApplyFaults schedules every transition of sched as engine events. Call
// once per run, before Engine.Run; counters reset with the fabric.
func (f *Fabric) ApplyFaults(sched *FaultSchedule) {
	if sched == nil {
		return
	}
	for _, ev := range sched.Events {
		elem := ev.Elem
		f.Eng.At(ev.At, func() {
			f.faults.FaultEvents++
			f.SetElementDown(elem, true)
		})
		if ev.RecoverAt > ev.At {
			f.Eng.At(ev.RecoverAt, func() {
				f.faults.Recoveries++
				f.SetElementDown(elem, false)
			})
		}
	}
}

// Faults returns a snapshot of the fault-layer counters.
func (f *Fabric) Faults() FaultStats { return f.faults }

// FaultsActive reports how many elements are currently down.
func (f *Fabric) FaultsActive() int { return f.faultsActive }

// SetElementDown fails or recovers one named element immediately. It is
// idempotent: setting an element to its current state is a no-op.
func (f *Fabric) SetElementDown(e topology.Element, down bool) {
	if !f.Topo.ValidElement(e) {
		panic(fmt.Sprintf("netsim: fault on invalid element %v", e))
	}
	switch e.Kind {
	case topology.ElemRSW:
		if f.rswDown[e.A] == down {
			return
		}
		f.rswDown[e.A] = down
		f.rsws[e.A].SetDown(down)
	case topology.ElemCSW:
		if f.cswDown[e.A][e.B] == down {
			return
		}
		f.cswDown[e.A][e.B] = down
		f.csws[e.A][e.B].SetDown(down)
	case topology.ElemFC:
		if f.fcDown[e.A][e.B] == down {
			return
		}
		f.fcDown[e.A][e.B] = down
		f.fcs[e.A][e.B].SetDown(down)
	case topology.ElemRSWUplink:
		if f.uplinkDown[e.A][e.B] == down {
			return
		}
		f.uplinkDown[e.A][e.B] = down
		// Both directions of the pair: RSW→CSW and CSW→RSW.
		cl := f.Topo.Racks[e.A].Cluster
		f.rsws[e.A].Port(f.rswUpPort[e.A][e.B]).SetDown(down)
		f.csws[cl][e.B].Port(f.cswDownPort[cl][e.B][f.rackPosInCl[e.A]]).SetDown(down)
	case topology.ElemHostLink:
		if f.hostLinkDown[e.A] == down {
			return
		}
		f.hostLinkDown[e.A] = down
		rack := f.Topo.HostRack(topology.HostID(e.A))
		f.rsws[rack].Port(f.hostPort[e.A]).SetDown(down)
	}
	if down {
		f.faultsActive++
	} else {
		f.faultsActive--
	}
}

// handleFaultDrop is installed as every switch's OnFaultDrop hook: it
// accounts the loss and schedules a retransmission (or gives the packet
// up for lost after MaxTries attempts).
func (f *Fabric) handleFaultDrop(p *Packet) {
	f.faults.FaultDrops++
	f.scheduleRetry(p.Hdr, p.Tries)
}

// scheduleRetry re-injects hdr after an exponentially backed-off RTO, or
// declares it lost forever once the attempt budget is spent.
func (f *Fabric) scheduleRetry(hdr packet.Header, tries uint8) {
	if tries+1 >= MaxTries {
		f.lose(hdr)
		return
	}
	rto := RetransmitRTO << tries
	f.Eng.After(rto, func() {
		f.faults.Retransmits++
		f.inject(hdr, tries+1)
	})
}

// lose records a packet abandoned by the retransmission budget.
func (f *Fabric) lose(hdr packet.Header) {
	f.faults.LostPkts++
	f.faults.LostBytes += int64(hdr.Size)
	src, srcOK := f.Topo.HostByAddr(hdr.Key.Src)
	dst, dstOK := f.Topo.HostByAddr(hdr.Key.Dst)
	if srcOK && dstOK {
		f.faults.LostByLocality[f.Topo.Locality(src, dst)]++
	}
}
