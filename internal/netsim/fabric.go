package netsim

import (
	"fmt"

	"fbdcnet/internal/packet"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
)

// Tier names a layer of links in the fabric for utilization reporting
// (§4.1 reports per-tier utilization distributions).
type Tier int

// Fabric link tiers, edge outward.
const (
	TierHostRSW Tier = iota // access links: host NIC → top-of-rack switch
	TierRSWCSW              // rack uplinks: RSW → cluster switch
	TierCSWFC               // cluster uplinks: CSW → Fat Cat
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierHostRSW:
		return "Host-RSW"
	case TierRSWCSW:
		return "RSW-CSW"
	case TierCSWFC:
		return "CSW-FC"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// FabricConfig sets link rates, buffer sizes, and propagation delays for
// a built fabric. Defaults follow §3.1: 10-Gbps edge and rack uplinks,
// 40-Gbps aggregation.
type FabricConfig struct {
	HostLinkBps int64 // host NIC and RSW-to-host ports
	RSWUpBps    int64 // RSW ↔ CSW
	CSWUpBps    int64 // CSW ↔ FC
	CoreBps     int64 // FC ↔ DC router ↔ site agg ↔ backbone

	RSWBufBytes  int64 // shared buffer in each top-of-rack switch
	CSWBufBytes  int64
	CoreBufBytes int64

	WireDelay      Time // per-hop delay within a datacenter
	InterDCDelay   Time // DC router ↔ site aggregator
	InterSiteDelay Time // site aggregator ↔ backbone
}

// DefaultFabricConfig returns production-flavored defaults: 10G edge,
// shallow (a few MB) shared ToR buffers — the combination behind §6.3's
// high occupancy at ~1% utilization.
func DefaultFabricConfig() FabricConfig {
	return FabricConfig{
		HostLinkBps:    10_000_000_000,
		RSWUpBps:       10_000_000_000,
		CSWUpBps:       40_000_000_000,
		CoreBps:        100_000_000_000,
		RSWBufBytes:    4 << 20,
		CSWBufBytes:    16 << 20,
		CoreBufBytes:   64 << 20,
		WireDelay:      2 * Microsecond,
		InterDCDelay:   50 * Microsecond,
		InterSiteDelay: 5 * Millisecond,
	}
}

const postsPerCluster = 4 // the "4-post" in the cluster design

// Fabric is a fully wired 4-post Clos instance over a Topology. Create
// with NewFabric, drive with Inject, advance with the Engine.
type Fabric struct {
	Eng  *Engine
	Topo *topology.Topology
	Cfg  FabricConfig

	rsws  []*Switch   // per rack
	csws  [][]*Switch // per cluster, postsPerCluster each
	fcs   [][]*Switch // per datacenter, postsPerCluster each
	dcrs  []*Switch   // per datacenter
	aggs  []*Switch   // per site
	bb    *Switch     // global backbone
	sinks []*Sink     // per host

	hostUp       []*Link // per host access link (edge accounting)
	hostPort     []int   // port index on the host's RSW leading to it
	rswUpPort    [][]int // [rack][post] port on RSW toward CSW
	cswDownPort  [][][]int
	cswUpPort    [][]int // [cluster][post] port toward FC
	fcDownPort   [][][]int
	fcUpPort     [][]int // [dc][post] port toward DC router
	dcrDownPort  [][]int // [dc][post] port toward FC
	dcrUpPort    []int   // [dc] port toward site agg
	aggDownPort  [][]int // [site][dcPos] toward DCR
	aggUpPort    []int   // [site] toward backbone
	bbDownPort   []int   // [site] toward agg
	rackPosInCl  []int   // rack ID → position within its cluster
	clPosInDC    []int   // cluster ID → position within its datacenter
	dcPosInSite  []int   // dc ID → position within its site
	injectedPkts int64

	// Fault-injection state (see faults.go). The *Down arrays mirror the
	// switches' and ports' down flags so ECMP viability checks are O(1)
	// array reads on the injection hot path.
	rswDown      []bool
	cswDown      [][]bool // [cluster][post]
	fcDown       [][]bool // [dc][post]
	uplinkDown   [][]bool // [rack][post]
	hostLinkDown []bool   // per host access link
	faultsActive int
	faults       FaultStats
	// telem, when attached, samples flows for in-band path records and
	// receives the per-port occupancy series (see AttachTelemetry).
	telem *telemetry.Sink
	// DisableReroute turns off ECMP re-hashing around dead paths: packets
	// keep their hash-preferred post even when it is down, so they drop
	// and retransmit into the same dead path. This is the ablation arm
	// that shows what the 4-post redundancy buys.
	DisableReroute bool
}

// NewFabric builds and wires the full switch graph for topo.
func NewFabric(eng *Engine, topo *topology.Topology, cfg FabricConfig) *Fabric {
	f := &Fabric{Eng: eng, Topo: topo, Cfg: cfg}
	nRacks, nClusters, nDCs, nSites := len(topo.Racks), len(topo.Clusters), len(topo.Datacenters), len(topo.Sites)

	f.sinks = make([]*Sink, topo.NumHosts())
	f.hostUp = make([]*Link, topo.NumHosts())
	f.hostPort = make([]int, topo.NumHosts())
	for i := range f.sinks {
		f.sinks[i] = NewSink(fmt.Sprintf("host%d", i))
		f.sinks[i].AttachEngine(eng)
		f.hostUp[i] = &Link{RateBps: cfg.HostLinkBps, Delay: cfg.WireDelay}
	}

	f.rackPosInCl = make([]int, nRacks)
	f.clPosInDC = make([]int, nClusters)
	f.dcPosInSite = make([]int, nDCs)
	for _, cl := range topo.Clusters {
		for pos, r := range cl.Racks {
			f.rackPosInCl[r] = pos
		}
	}
	for _, dc := range topo.Datacenters {
		for pos, c := range dc.Clusters {
			f.clPosInDC[c] = pos
		}
	}
	for _, s := range topo.Sites {
		for pos, d := range s.Datacenters {
			f.dcPosInSite[d] = pos
		}
	}

	// Rack switches with host-facing ports.
	f.rsws = make([]*Switch, nRacks)
	f.rswUpPort = make([][]int, nRacks)
	for ri, rack := range topo.Racks {
		sw := NewSwitch(eng, fmt.Sprintf("rsw%d", ri), cfg.RSWBufBytes)
		for i := 0; i < int(rack.NumHosts); i++ {
			h := rack.Host(i)
			f.hostPort[h] = sw.AddPort(&Link{RateBps: cfg.HostLinkBps, Delay: cfg.WireDelay}, f.sinks[h])
		}
		f.rsws[ri] = sw
		f.rswUpPort[ri] = make([]int, postsPerCluster)
	}

	// Cluster switches; wire RSW ↔ CSW.
	f.csws = make([][]*Switch, nClusters)
	f.cswDownPort = make([][][]int, nClusters)
	f.cswUpPort = make([][]int, nClusters)
	for ci, cl := range topo.Clusters {
		f.csws[ci] = make([]*Switch, postsPerCluster)
		f.cswDownPort[ci] = make([][]int, postsPerCluster)
		f.cswUpPort[ci] = make([]int, postsPerCluster)
		for p := 0; p < postsPerCluster; p++ {
			sw := NewSwitch(eng, fmt.Sprintf("csw%d.%d", ci, p), cfg.CSWBufBytes)
			f.csws[ci][p] = sw
			f.cswDownPort[ci][p] = make([]int, len(cl.Racks))
			for pos, r := range cl.Racks {
				f.rswUpPort[r][p] = f.rsws[r].AddPort(&Link{RateBps: cfg.RSWUpBps, Delay: cfg.WireDelay}, sw)
				f.cswDownPort[ci][p][pos] = sw.AddPort(&Link{RateBps: cfg.RSWUpBps, Delay: cfg.WireDelay}, f.rsws[r])
			}
		}
	}

	// Fat Cats per datacenter; wire CSW ↔ FC, FC ↔ DCR.
	f.fcs = make([][]*Switch, nDCs)
	f.fcDownPort = make([][][]int, nDCs)
	f.fcUpPort = make([][]int, nDCs)
	f.dcrs = make([]*Switch, nDCs)
	f.dcrDownPort = make([][]int, nDCs)
	f.dcrUpPort = make([]int, nDCs)
	for di, dc := range topo.Datacenters {
		f.dcrs[di] = NewSwitch(eng, fmt.Sprintf("dcr%d", di), cfg.CoreBufBytes)
		f.fcs[di] = make([]*Switch, postsPerCluster)
		f.fcDownPort[di] = make([][]int, postsPerCluster)
		f.fcUpPort[di] = make([]int, postsPerCluster)
		f.dcrDownPort[di] = make([]int, postsPerCluster)
		for p := 0; p < postsPerCluster; p++ {
			sw := NewSwitch(eng, fmt.Sprintf("fc%d.%d", di, p), cfg.CSWBufBytes)
			f.fcs[di][p] = sw
			f.fcDownPort[di][p] = make([]int, len(dc.Clusters))
			for pos, c := range dc.Clusters {
				f.cswUpPort[c][p] = f.csws[c][p].AddPort(&Link{RateBps: cfg.CSWUpBps, Delay: cfg.WireDelay}, sw)
				f.fcDownPort[di][p][pos] = sw.AddPort(&Link{RateBps: cfg.CSWUpBps, Delay: cfg.WireDelay}, f.csws[c][p])
			}
			f.fcUpPort[di][p] = sw.AddPort(&Link{RateBps: cfg.CoreBps, Delay: cfg.WireDelay}, f.dcrs[di])
			f.dcrDownPort[di][p] = f.dcrs[di].AddPort(&Link{RateBps: cfg.CoreBps, Delay: cfg.WireDelay}, sw)
		}
	}

	// Site aggregators and the backbone.
	f.aggs = make([]*Switch, nSites)
	f.aggDownPort = make([][]int, nSites)
	f.aggUpPort = make([]int, nSites)
	f.bb = NewSwitch(eng, "backbone", cfg.CoreBufBytes)
	f.bbDownPort = make([]int, nSites)
	for si, site := range topo.Sites {
		agg := NewSwitch(eng, fmt.Sprintf("agg%d", si), cfg.CoreBufBytes)
		f.aggs[si] = agg
		f.aggDownPort[si] = make([]int, len(site.Datacenters))
		for pos, d := range site.Datacenters {
			f.dcrUpPort[d] = f.dcrs[d].AddPort(&Link{RateBps: cfg.CoreBps, Delay: cfg.InterDCDelay}, agg)
			f.aggDownPort[si][pos] = agg.AddPort(&Link{RateBps: cfg.CoreBps, Delay: cfg.InterDCDelay}, f.dcrs[d])
		}
		f.aggUpPort[si] = agg.AddPort(&Link{RateBps: cfg.CoreBps, Delay: cfg.InterSiteDelay}, f.bb)
		f.bbDownPort[si] = f.bb.AddPort(&Link{RateBps: cfg.CoreBps, Delay: cfg.InterSiteDelay}, agg)
	}

	// Fault state and the retransmission hook on every switch.
	f.rswDown = make([]bool, nRacks)
	f.uplinkDown = make([][]bool, nRacks)
	for i := range f.uplinkDown {
		f.uplinkDown[i] = make([]bool, postsPerCluster)
	}
	f.cswDown = make([][]bool, nClusters)
	for i := range f.cswDown {
		f.cswDown[i] = make([]bool, postsPerCluster)
	}
	f.fcDown = make([][]bool, nDCs)
	for i := range f.fcDown {
		f.fcDown[i] = make([]bool, postsPerCluster)
	}
	f.hostLinkDown = make([]bool, topo.NumHosts())
	for _, sw := range f.allSwitches() {
		sw.OnFaultDrop = f.handleFaultDrop
	}
	return f
}

// allSwitches iterates every switch in the fabric, edge outward.
func (f *Fabric) allSwitches() []*Switch {
	out := append([]*Switch(nil), f.rsws...)
	for _, post := range f.csws {
		out = append(out, post...)
	}
	for _, post := range f.fcs {
		out = append(out, post...)
	}
	out = append(out, f.dcrs...)
	out = append(out, f.aggs...)
	out = append(out, f.bb)
	return out
}

// AttachTelemetry wires an in-band telemetry sink into the fabric:
// every switch registers its identity (in a fixed edge-outward order, so
// IDs are stable across runs and across the per-window fabrics of one
// experiment), host sinks finalize records at delivery, and Inject opens
// a record for each sampled flow's packets. Attach before injecting any
// traffic; a fabric without telemetry pays only nil checks.
func (f *Fabric) AttachTelemetry(ts *telemetry.Sink) {
	f.telem = ts
	for _, sw := range f.rsws {
		sw.setTelemetry(ts, telemetry.TierRSW)
	}
	for _, post := range f.csws {
		for _, sw := range post {
			sw.setTelemetry(ts, telemetry.TierCSW)
		}
	}
	for _, post := range f.fcs {
		for _, sw := range post {
			sw.setTelemetry(ts, telemetry.TierFC)
		}
	}
	for _, sw := range f.dcrs {
		sw.setTelemetry(ts, telemetry.TierDCR)
	}
	for _, sw := range f.aggs {
		sw.setTelemetry(ts, telemetry.TierAGG)
	}
	f.bb.setTelemetry(ts, telemetry.TierBB)
	for _, sk := range f.sinks {
		sk.Telem = ts
	}
}

// Telemetry returns the attached telemetry sink (nil when untraced).
func (f *Fabric) Telemetry() *telemetry.Sink { return f.telem }

// StartQueueSampling schedules fixed-interval reads of every switch
// port's queued bytes into the attached telemetry sink's pooled columnar
// buffers, from one interval after the current time until the given
// horizon. No-op without an attached sink or with a non-positive
// interval.
func (f *Fabric) StartQueueSampling(interval, until Time) {
	if f.telem == nil || interval <= 0 {
		return
	}
	for _, sw := range f.allSwitches() {
		sw := sw
		os := f.telem.NewOccSeries(sw.telemID, len(sw.ports))
		var tick func()
		tick = func() {
			row := os.Extend(int64(f.Eng.Now()))
			for pi, pt := range sw.ports {
				row[pi] = pt.queued
			}
			if f.Eng.Now()+interval <= until {
				f.Eng.After(interval, tick)
			}
		}
		f.Eng.After(interval, tick)
	}
}

// Sink returns the receiving endpoint for host h.
func (f *Fabric) Sink(h topology.HostID) *Sink { return f.sinks[h] }

// RSW returns the top-of-rack switch of rack r.
func (f *Fabric) RSW(r int) *Switch { return f.rsws[r] }

// RSWOfHost returns the top-of-rack switch serving host h.
func (f *Fabric) RSWOfHost(h topology.HostID) *Switch {
	return f.rsws[f.Topo.HostRack(h)]
}

// Injected returns the number of packets injected so far.
func (f *Fabric) Injected() int64 { return f.injectedPkts }

// FabricStats is a point-in-time aggregate of the fabric's switch
// counters, taken for observability. Collecting it walks every switch,
// so it is meant for end-of-run folding, not per-packet paths.
type FabricStats struct {
	Injected   int64 // packets injected at hosts
	Enqueues   int64 // packets accepted into switch buffers (all hops)
	Forwarded  int64 // packets transmitted from switch egresses
	Drops      int64 // packets lost to buffer exhaustion
	FaultDrops int64 // packets lost to down switches or links
}

// Stats aggregates counters across every switch in the fabric.
func (f *Fabric) Stats() FabricStats {
	st := FabricStats{Injected: f.injectedPkts}
	for _, sw := range f.allSwitches() {
		st.Enqueues += sw.Enqueues()
		st.Forwarded += sw.Forwarded()
		st.Drops += sw.Drops()
		st.FaultDrops += sw.FaultDrops()
	}
	return st
}

// Inject routes one packet from its source host into the fabric at the
// current engine time, following the ECMP path selected by the flow hash.
// Packets addressed to the sending host itself are ignored (loopback).
// When faults are active the hash is re-applied over the surviving posts
// (unless DisableReroute); a packet with no live path is held back and
// retransmitted on the fault layer's RTO schedule.
func (f *Fabric) Inject(hdr packet.Header) { f.inject(hdr, 0) }

// inject is Inject plus the delivery-attempt count used by the
// retransmission budget.
func (f *Fabric) inject(hdr packet.Header, tries uint8) {
	srcID, srcOK := f.Topo.HostByAddr(hdr.Key.Src)
	dstID, dstOK := f.Topo.HostByAddr(hdr.Key.Dst)
	if !srcOK || !dstOK {
		panic(fmt.Sprintf("netsim: inject with unknown host: %v", hdr.Key))
	}
	if srcID == dstID {
		return
	}
	src, dst := f.Topo.Host(srcID), f.Topo.Host(dstID)
	if tries == 0 {
		f.injectedPkts++
	}

	hash := hdr.Key.FastHash()
	post := int(hash % postsPerCluster)
	rs, rd := src.Rack, dst.Rack
	cs, cd := src.Cluster, dst.Cluster
	ds, dd := src.Datacenter, dst.Datacenter
	ss, sd := src.Site, dst.Site
	rerouted := false

	if f.faultsActive > 0 {
		// A dead source access link or source RSW blocks transmission
		// outright — there is no alternate first hop to re-hash onto.
		if f.hostLinkDown[src.ID] || f.rswDown[rs] {
			f.faults.FaultDrops++
			f.telemDeadEnd(hdr, tries)
			f.scheduleRetry(hdr, tries)
			return
		}
		if !f.DisableReroute {
			// Destination-side dead ends are equally post-independent.
			if f.rswDown[rd] || f.hostLinkDown[dst.ID] {
				f.faults.FaultDrops++
				f.telemDeadEnd(hdr, tries)
				f.scheduleRetry(hdr, tries)
				return
			}
			if rs != rd {
				chosen := f.pickPost(hash, rs, rd, cs, cd, ds, dd)
				if chosen < 0 {
					f.faults.FaultDrops++
					f.telemDeadEnd(hdr, tries)
					f.scheduleRetry(hdr, tries)
					return
				}
				if chosen != post {
					f.faults.ReroutedPkts++
					f.faults.ReroutedBytes += int64(hdr.Size)
					rerouted = true
				}
				post = chosen
			}
		}
	}

	f.hostUp[src.ID].bytesTx += int64(hdr.Size)
	p := &Packet{Hdr: hdr, Tries: tries}
	if f.telem != nil && f.telem.Sampled(hdr.Key) {
		p.Rec = f.telem.Start(hdr.Key, hdr.Size, tries, uint8(post), rerouted, int64(f.Eng.Now()))
	}

	var hops []hop
	push := func(n Node, port int) { hops = append(hops, hop{n, port}) }

	switch {
	case rs == rd:
		push(f.rsws[rs], f.hostPort[dst.ID])
	case cs == cd:
		push(f.rsws[rs], f.rswUpPort[rs][post])
		push(f.csws[cs][post], f.cswDownPort[cs][post][f.rackPosInCl[rd]])
		push(f.rsws[rd], f.hostPort[dst.ID])
	case ds == dd:
		push(f.rsws[rs], f.rswUpPort[rs][post])
		push(f.csws[cs][post], f.cswUpPort[cs][post])
		push(f.fcs[ds][post], f.fcDownPort[ds][post][f.clPosInDC[cd]])
		push(f.csws[cd][post], f.cswDownPort[cd][post][f.rackPosInCl[rd]])
		push(f.rsws[rd], f.hostPort[dst.ID])
	default:
		push(f.rsws[rs], f.rswUpPort[rs][post])
		push(f.csws[cs][post], f.cswUpPort[cs][post])
		push(f.fcs[ds][post], f.fcUpPort[ds][post])
		push(f.dcrs[ds], f.dcrUpPort[ds])
		if ss != sd {
			push(f.aggs[ss], f.aggUpPort[ss])
			push(f.bb, f.bbDownPort[sd])
		}
		push(f.aggs[sd], f.aggDownPort[sd][f.dcPosInSite[dd]])
		push(f.dcrs[dd], f.dcrDownPort[dd][post])
		push(f.fcs[dd][post], f.fcDownPort[dd][post][f.clPosInDC[cd]])
		push(f.csws[cd][post], f.cswDownPort[cd][post][f.rackPosInCl[rd]])
		push(f.rsws[rd], f.hostPort[dst.ID])
	}

	first := hops[0]
	p.hops = hops[1:]
	first.node.Receive(p, first.port)
}

// telemDeadEnd records a sampled packet lost to a fault dead end at
// injection: no live ECMP path exists, so no hop ever sees the packet.
func (f *Fabric) telemDeadEnd(hdr packet.Header, tries uint8) {
	if f.telem != nil && f.telem.Sampled(hdr.Key) {
		f.telem.Drop(hdr.Key, hdr.Size, tries, telemetry.ReasonNoLivePath, int64(f.Eng.Now()))
	}
}

// pickPost returns the ECMP post for a non-intra-rack path under faults:
// the flow hash applied over the posts whose full path (uplinks, CSWs,
// FCs on both sides as the locality requires) is alive, or -1 when no
// post survives. With all four posts alive it returns hash % 4, i.e. the
// fault-free choice — rerouting only ever moves traffic off dead paths.
func (f *Fabric) pickPost(hash uint64, rs, rd, cs, cd, ds, dd int) int {
	var viable [postsPerCluster]int
	n := 0
	for p := 0; p < postsPerCluster; p++ {
		ok := !f.uplinkDown[rs][p] && !f.cswDown[cs][p]
		if ok && cs != cd {
			ok = !f.fcDown[ds][p] && !f.cswDown[cd][p]
			if ok && ds != dd {
				ok = !f.fcDown[dd][p]
			}
		}
		if ok {
			ok = !f.uplinkDown[rd][p]
		}
		if ok {
			viable[n] = p
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return viable[hash%uint64(n)]
}

// LinksByTier returns all links in the given tier for utilization
// reporting. TierHostRSW returns host uplinks (outbound edge traffic);
// TierRSWCSW and TierCSWFC return the uplink direction of those layers.
func (f *Fabric) LinksByTier(t Tier) []*Link {
	var out []*Link
	switch t {
	case TierHostRSW:
		out = append(out, f.hostUp...)
	case TierRSWCSW:
		for ri := range f.rsws {
			for p := 0; p < postsPerCluster; p++ {
				out = append(out, f.rsws[ri].Port(f.rswUpPort[ri][p]).Link)
			}
		}
	case TierCSWFC:
		for ci := range f.csws {
			for p := 0; p < postsPerCluster; p++ {
				out = append(out, f.csws[ci][p].Port(f.cswUpPort[ci][p]).Link)
			}
		}
	}
	return out
}

// ResetLinkCounters zeroes transmit counters on every tiered link,
// starting a fresh measurement window.
func (f *Fabric) ResetLinkCounters() {
	for _, t := range []Tier{TierHostRSW, TierRSWCSW, TierCSWFC} {
		for _, l := range f.LinksByTier(t) {
			l.ResetCounters()
		}
	}
}

// SampleOccupancy schedules periodic reads of sw's shared-buffer
// occupancy every interval until the given time, invoking fn with each
// (time, occupiedBytes) sample — the §6.3 collection at 10 µs
// granularity.
func SampleOccupancy(eng *Engine, sw *Switch, interval, until Time, fn func(t Time, occ int64)) {
	var tick func()
	tick = func() {
		fn(eng.Now(), sw.Occupancy())
		if eng.Now()+interval <= until {
			eng.After(interval, tick)
		}
	}
	eng.After(interval, tick)
}
