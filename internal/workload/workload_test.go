package workload

import (
	"testing"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/topology"
)

type capture struct {
	hdrs []packet.Header
}

func (c *capture) Packet(h packet.Header) { c.hdrs = append(c.hdrs, h) }

func newTestGen(t *testing.T) (*Gen, *capture, *topology.Topology) {
	t.Helper()
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	cap := &capture{}
	g := NewGen(topo, 0, 42, cap)
	return g, cap, topo
}

func TestEmitMonotone(t *testing.T) {
	g, cap, _ := newTestGen(t)
	c := g.NewConn(5, 11211, false)
	g.Poisson(1000, func() { c.SendMsg(4000) })
	g.Run(2 * netsim.Second)
	if len(cap.hdrs) == 0 {
		t.Fatal("no packets generated")
	}
	for i := 1; i < len(cap.hdrs); i++ {
		if cap.hdrs[i].Time < cap.hdrs[i-1].Time {
			t.Fatalf("time went backwards at %d: %d < %d", i, cap.hdrs[i].Time, cap.hdrs[i-1].Time)
		}
	}
	if g.Emitted() != int64(len(cap.hdrs)) {
		t.Fatal("Emitted() mismatch")
	}
}

func TestHandshakeEmitsSYN(t *testing.T) {
	g, cap, _ := newTestGen(t)
	g.Eng.At(netsim.Second, func() {
		c := g.NewConn(3, 80, true)
		g.Eng.After(10*netsim.Millisecond, func() { c.SendMsg(100) })
		g.Eng.After(20*netsim.Millisecond, c.Close)
	})
	g.Run(2 * netsim.Second)

	var syn, synack, fin int
	for _, h := range cap.hdrs {
		if h.Flags&packet.FlagSYN != 0 {
			if h.Flags&packet.FlagACK != 0 {
				synack++
			} else {
				syn++
			}
		}
		if h.Flags&packet.FlagFIN != 0 {
			fin++
		}
	}
	if syn != 1 || synack != 1 {
		t.Fatalf("syn=%d synack=%d", syn, synack)
	}
	if fin != 2 {
		t.Fatalf("fin=%d, want 2", fin)
	}
}

func TestPooledConnNoSYN(t *testing.T) {
	g, cap, _ := newTestGen(t)
	c := g.NewConn(3, 11211, false)
	c.SendMsg(500)
	g.Run(netsim.Second)
	for _, h := range cap.hdrs {
		if h.SYN() {
			t.Fatal("pooled connection emitted a SYN")
		}
	}
}

func TestInboundConnDirection(t *testing.T) {
	g, cap, topo := newTestGen(t)
	c := g.NewInboundConn(3, 80, true)
	_ = c
	g.Run(netsim.Second)
	if len(cap.hdrs) < 2 {
		t.Fatal("no handshake emitted")
	}
	first := cap.hdrs[0]
	if !first.SYN() {
		t.Fatal("first packet should be the peer's SYN")
	}
	if first.Key.Src != topo.Addr(3) {
		t.Fatalf("inbound SYN has src %v, want peer addr", first.Key.Src)
	}
}

func TestSendMsgSegmentation(t *testing.T) {
	g, cap, topo := newTestGen(t)
	c := g.NewConn(3, 50010, false)
	c.SendMsg(3 * 1448) // exactly 3 full segments
	g.Run(netsim.Second)

	hostAddr := topo.Addr(0)
	var data, acks int
	var dataBytes int
	for _, h := range cap.hdrs {
		if h.Key.Src == hostAddr {
			data++
			dataBytes += int(h.Size) - segOverhead
		} else {
			acks++
			if h.Size != packet.ACKSize {
				t.Fatalf("ack size %d", h.Size)
			}
		}
	}
	if data != 3 {
		t.Fatalf("data packets = %d, want 3", data)
	}
	if dataBytes != 3*1448 {
		t.Fatalf("payload bytes = %d", dataBytes)
	}
	if acks != 2 { // one per two segments + tail, dedup: segs 2 and 3
		t.Fatalf("acks = %d, want 2", acks)
	}
}

func TestRecvMsgDirection(t *testing.T) {
	g, cap, topo := newTestGen(t)
	c := g.NewConn(3, 50010, false)
	c.RecvMsg(1448)
	g.Run(netsim.Second)
	hostAddr := topo.Addr(0)
	var inData, outAcks int
	for _, h := range cap.hdrs {
		if h.Key.Dst == hostAddr && h.Size > packet.ACKSize {
			inData++
		}
		if h.Key.Src == hostAddr && h.Size == packet.ACKSize {
			outAcks++
		}
	}
	if inData != 1 || outAcks != 1 {
		t.Fatalf("inData=%d outAcks=%d", inData, outAcks)
	}
}

func TestMsgNonPositiveBytes(t *testing.T) {
	g, cap, _ := newTestGen(t)
	c := g.NewConn(3, 50010, false)
	c.SendMsg(0)
	g.Run(netsim.Second)
	if len(cap.hdrs) == 0 {
		t.Fatal("zero-byte message emitted nothing")
	}
}

func TestRTTIncreasesWithDistance(t *testing.T) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	g := NewGen(topo, 0, 7, &capture{})
	// average over jitter
	avg := func(peer topology.HostID) float64 {
		total := 0.0
		for i := 0; i < 200; i++ {
			total += float64(g.RTT(peer))
		}
		return total / 200
	}
	// host 1 same rack; last host other site
	near := avg(1)
	far := avg(topology.HostID(topo.NumHosts() - 1))
	if near >= far {
		t.Fatalf("rtt near %v >= far %v", near, far)
	}
}

func TestPoissonRate(t *testing.T) {
	g, _, _ := newTestGen(t)
	n := 0
	g.Poisson(1000, func() { n++ })
	g.Run(10 * netsim.Second)
	if n < 9000 || n > 11000 {
		t.Fatalf("poisson fired %d times, want ~10000", n)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	g, _, _ := newTestGen(t)
	g.Poisson(0, func() { t.Fatal("zero-rate poisson fired") })
	g.Run(netsim.Second)
}

func TestAllocPortAdvances(t *testing.T) {
	g, _, _ := newTestGen(t)
	a, b := g.AllocPort(), g.AllocPort()
	if a == b {
		t.Fatal("duplicate ports")
	}
	if a < 32768 || b < 32768 {
		t.Fatal("ephemeral ports below 32768")
	}
}

func TestFanout(t *testing.T) {
	a, b := &capture{}, &capture{}
	f := Fanout{a, b}
	f.Packet(packet.Header{Size: 100})
	if len(a.hdrs) != 1 || len(b.hdrs) != 1 {
		t.Fatal("fanout did not duplicate")
	}
}

func TestCollectorFunc(t *testing.T) {
	n := 0
	CollectorFunc(func(packet.Header) { n++ }).Packet(packet.Header{})
	if n != 1 {
		t.Fatal("CollectorFunc not invoked")
	}
}

func TestDeterministicTrace(t *testing.T) {
	gen := func() []packet.Header {
		topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
		cap := &capture{}
		g := NewGen(topo, 2, 99, cap)
		c := g.NewConn(5, 11211, false)
		g.Poisson(500, func() { c.SendMsg(g.R.Intn(5000) + 1) })
		g.Run(netsim.Second)
		return cap.hdrs
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at packet %d", i)
		}
	}
}
