// Package workload provides the machinery shared by all service traffic
// generators: the packet collector interface, connection bookkeeping, and
// message-to-packet translation (segmentation, delayed ACKs, microsecond
// burst pacing).
//
// Generators synthesize what a port mirror of one monitored host would
// capture (§3.3.2): the complete bidirectional packet-header stream of
// that host. Remote peers are not simulated end-to-end — their packets
// toward the monitored host are synthesized locally with realistic
// timing. This mirrors the paper's methodology, where all per-packet
// analyses are computed from single-host traces.
package workload

import (
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// Collector consumes a time-ordered stream of packet headers. Analyses,
// trace writers, and sampling agents all implement Collector.
type Collector interface {
	Packet(h packet.Header)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(h packet.Header)

// Packet implements Collector.
func (f CollectorFunc) Packet(h packet.Header) { f(h) }

// BatchCollector consumes packet headers a batch at a time. Batches
// preserve stream order: concatenating them yields exactly the sequence
// the per-packet Collector interface would have seen. Consumers must not
// retain the slice — it is a reused slab overwritten after the call.
type BatchCollector interface {
	Packets(hs []packet.Header)
}

// Batch is a reusable, capacity-stable header slab. The zero value is
// ready to use; the first Grow sets its capacity, and Reset keeps the
// backing array so steady-state refills never allocate.
type Batch []packet.Header

// Reset empties the batch, retaining capacity.
func (b *Batch) Reset() { *b = (*b)[:0] }

// Append adds one header.
func (b *Batch) Append(h packet.Header) { *b = append(*b, h) }

// Full reports whether the batch has reached capacity n.
func (b Batch) Full(n int) bool { return len(b) >= n }

// Fanout duplicates the stream to several collectors.
type Fanout []Collector

// Packet implements Collector.
func (f Fanout) Packet(h packet.Header) {
	for _, c := range f {
		c.Packet(h)
	}
}

// Packets implements BatchCollector: collectors that understand batches
// get the whole slab in one call; legacy collectors get a per-header loop.
func (f Fanout) Packets(hs []packet.Header) {
	for _, c := range f {
		if bc, ok := c.(BatchCollector); ok {
			bc.Packets(hs)
		} else {
			for _, h := range hs {
				c.Packet(h)
			}
		}
	}
}

// Batched adapts a Collector to the BatchCollector interface. Collectors
// that already implement BatchCollector are returned as-is; others get a
// per-header loop shim, so external per-packet collectors keep working on
// the batched path.
func Batched(c Collector) BatchCollector {
	if bc, ok := c.(BatchCollector); ok {
		return bc
	}
	return batchShim{c}
}

type batchShim struct{ c Collector }

func (s batchShim) Packets(hs []packet.Header) {
	for _, h := range hs {
		s.c.Packet(h)
	}
}

// Gen is the per-host trace generation context: a discrete-event engine,
// a deterministic random source, and an ordered emission path to the
// collector. Service models schedule application behaviour on it.
type Gen struct {
	Eng  *netsim.Engine
	R    *rng.Source
	Topo *topology.Topology
	Host topology.HostID

	sink      BatchCollector
	batch     Batch
	nextPort  uint16
	emitted   int64
	batches   int64
	lastEmit  netsim.Time
	reordered int64
}

// genBatchSize is the emission slab capacity: large enough to amortize
// fanout dispatch over hundreds of headers, small enough that the slab
// stays L1/L2-resident (512 × 26-byte headers ≈ 16 KiB of payload).
const genBatchSize = 512

// NewGen creates a generation context for monitored host h.
func NewGen(topo *topology.Topology, h topology.HostID, seed uint64, sink Collector) *Gen {
	return &Gen{
		Eng:      &netsim.Engine{},
		R:        rng.New(seed),
		Topo:     topo,
		Host:     h,
		sink:     Batched(sink),
		batch:    make(Batch, 0, genBatchSize),
		nextPort: 32768,
	}
}

// Run executes the scheduled behaviour until dur, then flushes the
// emission batch so collectors have seen every header when Run returns.
func (g *Gen) Run(dur netsim.Time) {
	g.Eng.Run(dur)
	g.Flush()
}

// Flush hands any buffered headers to the collector. Run calls it
// automatically; custom drivers that inspect collectors mid-run must
// flush first.
func (g *Gen) Flush() {
	if len(g.batch) > 0 {
		g.batches++
		g.sink.Packets(g.batch)
		g.batch.Reset()
	}
}

// Emitted returns the number of packets delivered to the collector.
func (g *Gen) Emitted() int64 { return g.emitted }

// Batches returns the number of slabs handed to the collector — the
// batched-dispatch amortization the observability layer reports.
func (g *Gen) Batches() int64 { return g.batches }

// emit stamps one header at the current engine time and buffers it for
// batched delivery. Emission is monotone because the engine executes
// events in time order; the guard clamps any same-cause microsecond
// jitter that would run backwards. Buffering never changes what the
// collector observes — headers arrive in the same order, already
// timestamped — it only defers the handoff by up to one batch.
func (g *Gen) emit(h packet.Header) {
	h.Time = g.Eng.Now()
	if h.Time < g.lastEmit {
		h.Time = g.lastEmit
		g.reordered++
	}
	g.lastEmit = h.Time
	g.emitted++
	g.batch.Append(h)
	if g.batch.Full(genBatchSize) {
		g.batches++
		g.sink.Packets(g.batch)
		g.batch.Reset()
	}
}

// Emit delivers one raw header at the current engine time, stamping its
// Time field. Service models normally use Conn helpers; Emit is the
// low-level path for custom generators (e.g. literature baselines).
func (g *Gen) Emit(h packet.Header) { g.emit(h) }

// AllocPort returns a fresh ephemeral source port.
func (g *Gen) AllocPort() uint16 {
	p := g.nextPort
	g.nextPort++
	if g.nextPort < 32768 {
		g.nextPort = 32768
	}
	return p
}

// Conn is one transport connection between the monitored host and a peer,
// viewed from the monitored host: Key.Src is always the monitored host.
type Conn struct {
	Key    packet.FlowKey
	Peer   topology.HostID
	g      *Gen
	opened bool
	closed bool
}

// NewConn creates a connection to peer on the given destination port.
// If handshake is true a SYN/SYN-ACK exchange is emitted at the current
// time (an ephemeral flow); otherwise the connection is considered
// pre-established (a pooled connection from before the capture began).
func (g *Gen) NewConn(peer topology.HostID, dstPort uint16, handshake bool) *Conn {
	c := &Conn{
		Key: packet.FlowKey{
			Src:     g.Topo.Addr(g.Host),
			Dst:     g.Topo.Addr(peer),
			SrcPort: g.AllocPort(),
			DstPort: dstPort,
			Proto:   packet.TCP,
		},
		Peer:   peer,
		g:      g,
		opened: !handshake,
	}
	if handshake {
		g.emit(packet.Header{Key: c.Key, Size: 74, Flags: packet.FlagSYN})
		g.Eng.After(g.rtt(peer), func() {
			g.emit(packet.Header{Key: c.Key.Reverse(), Size: 74, Flags: packet.FlagSYN | packet.FlagACK})
			g.emit(packet.Header{Key: c.Key, Size: packet.ACKSize, Flags: packet.FlagACK})
			c.opened = true
		})
	}
	return c
}

// NewInboundConn creates a connection initiated by the peer (the SYN
// arrives from the peer). Key.Src remains the monitored host for
// bookkeeping; emitted packets are direction-correct.
func (g *Gen) NewInboundConn(peer topology.HostID, dstPort uint16, handshake bool) *Conn {
	c := &Conn{
		Key: packet.FlowKey{
			Src:     g.Topo.Addr(g.Host),
			Dst:     g.Topo.Addr(peer),
			SrcPort: dstPort,
			DstPort: g.AllocPort(),
			Proto:   packet.TCP,
		},
		Peer:   peer,
		g:      g,
		opened: !handshake,
	}
	if handshake {
		g.emit(packet.Header{Key: c.Key.Reverse(), Size: 74, Flags: packet.FlagSYN})
		g.emit(packet.Header{Key: c.Key, Size: 74, Flags: packet.FlagSYN | packet.FlagACK})
		g.Eng.After(g.rtt(peer), func() {
			g.emit(packet.Header{Key: c.Key.Reverse(), Size: packet.ACKSize, Flags: packet.FlagACK})
			c.opened = true
		})
	}
	return c
}

// Close emits a FIN exchange at the current time.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	g := c.g
	g.emit(packet.Header{Key: c.Key, Size: packet.ACKSize, Flags: packet.FlagFIN | packet.FlagACK})
	g.Eng.After(g.rtt(c.Peer), func() {
		g.emit(packet.Header{Key: c.Key.Reverse(), Size: packet.ACKSize, Flags: packet.FlagFIN | packet.FlagACK})
		g.emit(packet.Header{Key: c.Key, Size: packet.ACKSize, Flags: packet.FlagACK})
	})
}

// rtt returns a plausible round-trip time to peer based on locality, with
// jitter.
func (g *Gen) rtt(peer topology.HostID) netsim.Time {
	var base netsim.Time
	switch g.Topo.Locality(g.Host, peer) {
	case topology.SameHost, topology.IntraRack:
		base = 40 * netsim.Microsecond
	case topology.IntraCluster:
		base = 80 * netsim.Microsecond
	case topology.IntraDatacenter:
		base = 150 * netsim.Microsecond
	default:
		base = 2 * netsim.Millisecond
	}
	jitter := netsim.Time(g.R.Float64() * float64(base) * 0.5)
	return base + jitter
}

// RTT exposes the locality-derived round-trip estimate for service models
// that schedule responses.
func (g *Gen) RTT(peer topology.HostID) netsim.Time { return g.rtt(peer) }

const (
	mss         = 1448 // TCP payload per full segment
	segOverhead = 66   // Ethernet+IP+TCP header bytes on the wire
)

// SendMsg transmits an application message of size bytes from the
// monitored host on c, segmenting into MTU-sized packets paced at
// line-rate-like microsecond gaps, with delayed ACKs synthesized from the
// peer. Flows are therefore internally bursty: a message is a
// millisecond-scale packet train followed by silence (§5.1).
func (c *Conn) SendMsg(bytes int) {
	c.g.message(c, bytes, false)
}

// RecvMsg is SendMsg in the opposite direction: the peer transmits,
// the monitored host ACKs.
func (c *Conn) RecvMsg(bytes int) {
	c.g.message(c, bytes, true)
}

// message emits the packet train for one application message.
// If inbound, data flows peer→host and ACKs host→peer.
func (g *Gen) message(c *Conn, bytes int, inbound bool) {
	if bytes <= 0 {
		bytes = 1
	}
	dataKey, ackKey := c.Key, c.Key.Reverse()
	if inbound {
		dataKey, ackKey = ackKey, dataKey
	}
	t := netsim.Time(0)
	seg := 0
	for remaining := bytes; remaining > 0; remaining -= mss {
		pl := remaining
		if pl > mss {
			pl = mss
		}
		size := uint32(pl + segOverhead)
		flags := packet.FlagACK
		if remaining <= mss {
			flags |= packet.FlagPSH
		}
		hdr := packet.Header{Key: dataKey, Size: size, Flags: flags}
		g.Eng.After(t, func() { g.emit(hdr) })
		seg++
		// Delayed ACK: one per two segments, and one for the tail.
		if seg%2 == 0 || remaining <= mss {
			ackAt := t + g.rtt(c.Peer)/2
			g.Eng.After(ackAt, func() {
				g.emit(packet.Header{Key: ackKey, Size: packet.ACKSize, Flags: packet.FlagACK})
			})
		}
		// Microsecond pacing between segments of a burst, with a small
		// random component so packet trains are not perfectly regular.
		t += netsim.Time(1200 + g.R.Intn(800))
	}
}

// Poisson schedules fn repeatedly with exponential gaps of the given mean
// until the engine stops. ratePerSec <= 0 schedules nothing.
func (g *Gen) Poisson(ratePerSec float64, fn func()) {
	if ratePerSec <= 0 {
		return
	}
	mean := float64(netsim.Second) / ratePerSec
	var tick func()
	tick = func() {
		fn()
		g.Eng.After(netsim.Time(g.R.Exp()*mean), tick)
	}
	g.Eng.After(netsim.Time(g.R.Exp()*mean), tick)
}

// Choose returns a uniformly random element of hosts.
func (g *Gen) Choose(hosts []topology.HostID) topology.HostID {
	return hosts[g.R.Intn(len(hosts))]
}
