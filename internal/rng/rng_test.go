package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork()
	c2 := parent.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling forks produced identical first outputs")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const trials = 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance %v too far from 1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %v too far from 1", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	err := quick.Check(func(seed uint64) bool {
		n := int(seed%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func TestNewKeyedDeterministic(t *testing.T) {
	a := NewKeyed(42, 3, 7)
	b := NewKeyed(42, 3, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same key tuple diverged at step %d", i)
		}
	}
}

func TestNewKeyedDistinctTuples(t *testing.T) {
	// Streams from nearby and permuted tuples must not collide: collect
	// the first output of a grid of (window, shard) keys plus swapped
	// orderings and check uniqueness.
	seen := make(map[uint64][2]uint64)
	for w := uint64(0); w < 64; w++ {
		for s := uint64(0); s < 16; s++ {
			v := NewKeyed(42, w, s).Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("keyed streams collide: (%d,%d) and (%d,%d)", w, s, prev[0], prev[1])
			}
			seen[v] = [2]uint64{w, s}
		}
	}
	if NewKeyed(42, 1, 2).Uint64() == NewKeyed(42, 2, 1).Uint64() {
		t.Fatal("key order must matter")
	}
	if NewKeyed(42, 1, 2).Uint64() == NewKeyed(43, 1, 2).Uint64() {
		t.Fatal("seed must matter")
	}
}
