// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Experiments in this repository must be exactly reproducible from a seed:
// every subsystem receives an explicit *rng.Source (usually forked from a
// parent via Fork) rather than sharing global state. The generator is
// xoshiro256** seeded through splitmix64, which has good statistical
// quality for simulation workloads and is trivially portable.
package rng

import "math"

// Source is a deterministic random number generator. It is not safe for
// concurrent use; fork one per goroutine with Fork.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the seed expansion state and returns the next value.
// It is used only to initialize xoshiro state so that nearby seeds yield
// uncorrelated streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Fork derives an independent child generator from r. The child's stream
// is decorrelated from both the parent's subsequent output and from other
// children.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// NewKeyed returns a Source whose stream is a pure function of the
// (seed, keys...) tuple: the same tuple always yields the same stream and
// distinct tuples yield decorrelated streams. It is the parallel engine's
// replacement for a sequentially Fork-chained generator — a worker
// handling shard (window, shard) seeds NewKeyed(seed, window, shard) and
// gets a stream independent of which worker runs it and in what order,
// which is what makes sharded collection worker-count-invariant.
func NewKeyed(seed uint64, keys ...uint64) *Source {
	x := seed
	for _, k := range keys {
		// Fold each key through an independent splitmix64 expansion so the
		// combination is order-sensitive ((a,b) differs from (b,a)) and
		// adjacent key values land far apart in seed space.
		x = splitmix64(&x) ^ splitmix64(&k)
	}
	return New(x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniformly random integer in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method with rejection to remove bias.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Norm returns a standard normal variate using the polar Marsaglia method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential variate with rate 1.
func (r *Source) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
