package analysis

import "fbdcnet/internal/packet"

// packHostFlowKey packs a host-outbound-oriented flow key into a uint64
// for the open-addressing tables: Dst in bits 33..63, SrcPort in 17..32,
// DstPort in 1..16, and a protocol bit (TCP=0, otherwise 1) in bit 0.
// Src is omitted — every key packed by one analysis instance shares the
// monitored host's address, so it carries no information.
//
// The layout is order-preserving: for keys with equal Src, numeric uint64
// order equals the keyLess field order (Dst, SrcPort, DstPort, Proto with
// TCP before UDP), so sorts over packed keys reproduce the exact
// deterministic tie-breaks of the struct-keyed implementation.
//
// Preconditions: Dst < 2^31 (topology addresses are dense host indices,
// far below this even at -scale large) and Proto ∈ {TCP, UDP} (the only
// protocols the packet layer produces). Callers with foreign addresses
// must check canPackAddr and take a spill path.
func packHostFlowKey(k packet.FlowKey) uint64 {
	proto := uint64(0)
	if k.Proto != packet.TCP {
		proto = 1
	}
	return uint64(k.Dst)<<33 | uint64(k.SrcPort)<<17 | uint64(k.DstPort)<<1 | proto
}

// canPackAddr reports whether an address fits the packed-key Dst field.
func canPackAddr(a packet.Addr) bool { return a < 1<<31 }
