package analysis

import (
	"slices"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// HeavyFrac is the paper's heavy-hitter definition (§5.3): the minimum
// set of flows (or hosts, or racks) responsible for this fraction of
// observed bytes in an interval.
const HeavyFrac = 0.5

// HeavyHitters computes windowed heavy-hitter statistics for one
// monitored host at one (aggregation level, bin width) pair: per-bin set
// sizes and rates (Table 4), persistence into the following bin
// (Fig. 10), and the intersection of subinterval heavy hitters with the
// enclosing second's (Fig. 11). Only outbound traffic is considered.
//
// Packets must arrive in non-decreasing time order.
//
// Aggregate identities are packed uint64 keys (see packHostFlowKey) in
// open-addressing tables, and heavy sets are sorted key slices carved out
// of reusable arenas, so a steady-state bin roll performs no allocation
// and no composite-struct hashing. Numeric order over packed keys equals
// the struct-field tie-break order of the original implementation, so
// every reported statistic is bit-identical.
type HeavyHitters struct {
	topo  *topology.Topology
	addr  packet.Addr
	level Level
	bin   netsim.Time

	cur    openhash.Table[float64] // packed key -> bytes in current bin
	curBin int64
	prev   []uint64 // previous bin's heavy set, sorted ascending
	prevOK bool
	prevNo int64 // bin index of prev

	// Enclosing-second tracking for the intersection metric.
	sec      openhash.Table[float64]
	secNo    int64
	subArena []uint64 // concatenated per-bin heavy sets of this second
	subEnds  []int    // prefix end offsets into subArena, one per bin

	counts    *stats.Sample // |HH| per bin
	rates     *stats.Sample // per-member rate, Mbps
	persist   *stats.Sample // |HH_t ∩ HH_t+1| / |HH_t| per consecutive pair
	intersect *stats.Sample // |HH_sub ∩ HH_sec| / |HH_sub| per subinterval

	// Reusable scratch: the (key, bytes) sort buffer of heavyPrefix and
	// the sorted-set buffers. With millisecond bins a trace rolls
	// thousands of bins per second of capture; none of these reallocate
	// in steady state.
	scratch []hhItem
	setBuf  []uint64
	secBuf  []uint64
}

// NewHeavyHitters creates a tracker at the given level and bin width.
func NewHeavyHitters(topo *topology.Topology, host topology.HostID, level Level, bin netsim.Time) *HeavyHitters {
	if bin <= 0 {
		panic("analysis: heavy-hitter bin width must be positive")
	}
	return &HeavyHitters{
		topo:      topo,
		addr:      topo.Addr(host),
		level:     level,
		bin:       bin,
		counts:    stats.NewSample(0),
		rates:     stats.NewSample(0),
		persist:   stats.NewSample(0),
		intersect: stats.NewSample(0),
	}
}

// keyFor maps a header to its packed aggregate identity at the tracker's
// level: the full packed flow key, the destination address, or the
// destination rack ID.
func (hh *HeavyHitters) keyFor(h packet.Header) uint64 {
	switch hh.level {
	case LevelFlow:
		return packHostFlowKey(h.Key)
	case LevelHost:
		return uint64(h.Key.Dst)
	default:
		rack := 0
		if d, ok := hh.topo.HostByAddr(h.Key.Dst); ok {
			rack = hh.topo.HostRack(d)
		}
		return uint64(rack)
	}
}

// Packet implements the collector interface.
func (hh *HeavyHitters) Packet(h packet.Header) {
	if h.Key.Src != hh.addr {
		return
	}
	binNo := h.Time / int64(hh.bin)
	if binNo != hh.curBin {
		hh.rollBin(binNo)
	}
	secNo := h.Time / int64(netsim.Second)
	if secNo != hh.secNo {
		hh.rollSecond(secNo)
	}
	k := hh.keyFor(h)
	size := float64(h.Size)
	*hh.cur.Slot(k) += size
	*hh.sec.Slot(k) += size
}

// Packets implements the batch collector interface.
func (hh *HeavyHitters) Packets(hs []packet.Header) {
	for _, h := range hs {
		hh.Packet(h)
	}
}

// hhItem is one (aggregate, bytes) pair during heavy-set extraction.
type hhItem struct {
	k uint64
	v float64
}

// heavyPrefix sorts the table's entries into hh.scratch by bytes
// descending (packed-key ascending as the deterministic tie-break, which
// reproduces the struct-field order of the unpacked keys) and returns the
// length m of the minimum prefix covering HeavyFrac of the total bytes.
// The heavy set is hh.scratch[:m].
func (hh *HeavyHitters) heavyPrefix(t *openhash.Table[float64]) int {
	items := hh.scratch[:0]
	total := 0.0
	for i, n := 0, t.Len(); i < n; i++ {
		v := *t.Val(i)
		items = append(items, hhItem{t.Key(i), v})
		total += v
	}
	hh.scratch = items
	slices.SortFunc(items, func(a, b hhItem) int {
		if a.v != b.v {
			if a.v > b.v {
				return -1
			}
			return 1
		}
		if a.k < b.k {
			return -1
		}
		return 1
	})
	acc, m := 0.0, 0
	for _, it := range items {
		m++
		acc += it.v
		if acc >= HeavyFrac*total {
			break
		}
	}
	return m
}

// sortedSet copies the first m scratch keys into buf and sorts them
// ascending, for merge-walk intersections.
func (hh *HeavyHitters) sortedSet(m int, buf []uint64) []uint64 {
	buf = buf[:0]
	for i := 0; i < m; i++ {
		buf = append(buf, hh.scratch[i].k)
	}
	slices.Sort(buf)
	return buf
}

// rollBin finalizes the current bin: record Table 4 statistics, the
// persistence fraction versus the previous bin, and stash the set for the
// enclosing-second intersection.
func (hh *HeavyHitters) rollBin(next int64) {
	if hh.cur.Len() > 0 {
		m := hh.heavyPrefix(&hh.cur)
		hh.counts.Add(float64(m))
		binSec := float64(hh.bin) / float64(netsim.Second)
		for i := 0; i < m; i++ {
			hh.rates.Add(hh.scratch[i].v * 8 / binSec / 1e6) // Mbps
		}
		hh.setBuf = hh.sortedSet(m, hh.setBuf)
		if hh.prevOK && hh.prevNo == hh.curBin-1 {
			hh.persist.Add(overlapSorted(hh.prev, hh.setBuf))
		}
		hh.prev = append(hh.prev[:0], hh.setBuf...)
		hh.prevOK, hh.prevNo = true, hh.curBin
		hh.subArena = append(hh.subArena, hh.setBuf...)
		hh.subEnds = append(hh.subEnds, len(hh.subArena))
		// Reuse the per-bin accumulator: Reset keeps the slot arrays, so
		// steady state rolls bins without reallocating.
		hh.cur.Reset()
	}
	hh.curBin = next
}

// rollSecond finalizes the enclosing second: intersect each stored
// subinterval set with the second-level heavy hitters.
func (hh *HeavyHitters) rollSecond(next int64) {
	if hh.sec.Len() > 0 && len(hh.subEnds) > 0 {
		m := hh.heavyPrefix(&hh.sec)
		hh.secBuf = hh.sortedSet(m, hh.secBuf)
		start := 0
		for _, end := range hh.subEnds {
			sub := hh.subArena[start:end]
			start = end
			if len(sub) > 0 {
				hh.intersect.Add(overlapSorted(sub, hh.secBuf))
			}
		}
	}
	hh.sec.Reset()
	hh.subArena = hh.subArena[:0]
	hh.subEnds = hh.subEnds[:0]
	hh.secNo = next
}

// overlapSorted returns |a ∩ b| / |a| as a percentage; a and b must be
// sorted ascending.
func overlapSorted(a, b []uint64) float64 {
	if len(a) == 0 {
		return 0
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return 100 * float64(n) / float64(len(a))
}

// Finish flushes the last open bin and second. Call once, after the trace
// ends.
func (hh *HeavyHitters) Finish() {
	hh.rollBin(hh.curBin + 1)
	hh.rollSecond(hh.secNo + 1)
}

// Counts returns the per-bin heavy-hitter set sizes (Table 4 "Number").
func (hh *HeavyHitters) Counts() *stats.Sample { return hh.counts }

// Rates returns the per-member rates in Mbps (Table 4 "Size").
func (hh *HeavyHitters) Rates() *stats.Sample { return hh.rates }

// Persistence returns the distribution of the fraction (in percent) of a
// bin's heavy hitters that remain heavy in the next bin (Fig. 10).
func (hh *HeavyHitters) Persistence() *stats.Sample { return hh.persist }

// Intersection returns the distribution of the fraction (in percent) of a
// subinterval's heavy hitters that are also heavy over the enclosing
// second (Fig. 11).
func (hh *HeavyHitters) Intersection() *stats.Sample { return hh.intersect }
