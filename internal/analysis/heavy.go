package analysis

import (
	"slices"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// HeavyFrac is the paper's heavy-hitter definition (§5.3): the minimum
// set of flows (or hosts, or racks) responsible for this fraction of
// observed bytes in an interval.
const HeavyFrac = 0.5

// hhKey identifies a traffic aggregate at some level. For LevelFlow the
// full 5-tuple is set; for LevelHost only Dst; for LevelRack, Dst holds
// the destination rack ID.
type hhKey struct {
	k packet.FlowKey
}

// HeavyHitters computes windowed heavy-hitter statistics for one
// monitored host at one (aggregation level, bin width) pair: per-bin set
// sizes and rates (Table 4), persistence into the following bin
// (Fig. 10), and the intersection of subinterval heavy hitters with the
// enclosing second's (Fig. 11). Only outbound traffic is considered.
//
// Packets must arrive in non-decreasing time order.
type HeavyHitters struct {
	topo  *topology.Topology
	addr  packet.Addr
	level Level
	bin   netsim.Time

	cur    map[hhKey]float64
	curBin int64
	prevHH map[hhKey]struct{}
	prevNo int64 // bin index of prevHH

	// Enclosing-second tracking for the intersection metric.
	sec    map[hhKey]float64
	secNo  int64
	subHHs []map[hhKey]struct{}

	counts    *stats.Sample // |HH| per bin
	rates     *stats.Sample // per-member rate, Mbps
	persist   *stats.Sample // |HH_t ∩ HH_t+1| / |HH_t| per consecutive pair
	intersect *stats.Sample // |HH_sub ∩ HH_sec| / |HH_sub| per subinterval

	// scratch is the reusable sort buffer of heavySet: with millisecond
	// bins a trace rolls thousands of bins per second of capture, and
	// allocating the sort slice per roll dominated the profile.
	scratch []hhItem
}

// NewHeavyHitters creates a tracker at the given level and bin width.
func NewHeavyHitters(topo *topology.Topology, host topology.HostID, level Level, bin netsim.Time) *HeavyHitters {
	if bin <= 0 {
		panic("analysis: heavy-hitter bin width must be positive")
	}
	return &HeavyHitters{
		topo:      topo,
		addr:      topo.Hosts[host].Addr,
		level:     level,
		bin:       bin,
		cur:       make(map[hhKey]float64),
		sec:       make(map[hhKey]float64),
		counts:    stats.NewSample(0),
		rates:     stats.NewSample(0),
		persist:   stats.NewSample(0),
		intersect: stats.NewSample(0),
	}
}

// keyFor maps a header to its aggregate identity at the tracker's level.
func (hh *HeavyHitters) keyFor(h packet.Header) hhKey {
	switch hh.level {
	case LevelFlow:
		return hhKey{h.Key}
	case LevelHost:
		return hhKey{packet.FlowKey{Dst: h.Key.Dst}}
	default:
		rack := 0
		if d := hh.topo.HostByAddr(h.Key.Dst); d != nil {
			rack = d.Rack
		}
		return hhKey{packet.FlowKey{Dst: packet.Addr(rack)}}
	}
}

// Packet implements the collector interface.
func (hh *HeavyHitters) Packet(h packet.Header) {
	if h.Key.Src != hh.addr {
		return
	}
	binNo := h.Time / int64(hh.bin)
	if binNo != hh.curBin {
		hh.rollBin(binNo)
	}
	secNo := h.Time / int64(netsim.Second)
	if secNo != hh.secNo {
		hh.rollSecond(secNo)
	}
	k := hh.keyFor(h)
	hh.cur[k] += float64(h.Size)
	hh.sec[k] += float64(h.Size)
}

// hhItem is one (aggregate, bytes) pair during heavy-set extraction.
type hhItem struct {
	k hhKey
	v float64
}

// keyLess is a total order over aggregate keys, the deterministic
// tie-break for equal byte counts. Comparing fields directly avoids the
// per-comparison String() allocations the previous lexicographic
// tie-break paid.
func keyLess(a, b packet.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// heavySet extracts the minimum covering set from a byte-count map. The
// returned map is freshly allocated (callers retain it across bins);
// scratch is the reusable sort buffer, returned for the caller to store
// back.
func heavySet(counts map[hhKey]float64, frac float64, scratch []hhItem) (map[hhKey]struct{}, []hhItem) {
	if len(counts) == 0 {
		return nil, scratch
	}
	items := scratch[:0]
	total := 0.0
	for k, v := range counts {
		items = append(items, hhItem{k, v})
		total += v
	}
	slices.SortFunc(items, func(a, b hhItem) int {
		if a.v != b.v {
			if a.v > b.v {
				return -1
			}
			return 1
		}
		if keyLess(a.k.k, b.k.k) {
			return -1
		}
		return 1
	})
	set := make(map[hhKey]struct{}, len(items)/2+1)
	acc := 0.0
	for _, it := range items {
		set[it.k] = struct{}{}
		acc += it.v
		if acc >= frac*total {
			break
		}
	}
	return set, items
}

// rollBin finalizes the current bin: record Table 4 statistics, the
// persistence fraction versus the previous bin, and stash the set for the
// enclosing-second intersection.
func (hh *HeavyHitters) rollBin(next int64) {
	if len(hh.cur) > 0 {
		var set map[hhKey]struct{}
		set, hh.scratch = heavySet(hh.cur, HeavyFrac, hh.scratch)
		hh.counts.Add(float64(len(set)))
		binSec := float64(hh.bin) / float64(netsim.Second)
		for k := range set {
			hh.rates.Add(hh.cur[k] * 8 / binSec / 1e6) // Mbps
		}
		if hh.prevHH != nil && hh.prevNo == hh.curBin-1 {
			hh.persist.Add(overlap(hh.prevHH, set))
		}
		hh.prevHH, hh.prevNo = set, hh.curBin
		hh.subHHs = append(hh.subHHs, set)
		// Reuse the per-bin accumulator: clear keeps the bucket array, so
		// steady state rolls bins without reallocating the map.
		clear(hh.cur)
	}
	hh.curBin = next
}

// rollSecond finalizes the enclosing second: intersect each stored
// subinterval set with the second-level heavy hitters.
func (hh *HeavyHitters) rollSecond(next int64) {
	if len(hh.sec) > 0 && len(hh.subHHs) > 0 {
		var secSet map[hhKey]struct{}
		secSet, hh.scratch = heavySet(hh.sec, HeavyFrac, hh.scratch)
		for _, sub := range hh.subHHs {
			if len(sub) > 0 {
				hh.intersect.Add(overlap(sub, secSet))
			}
		}
	}
	clear(hh.sec)
	hh.subHHs = hh.subHHs[:0]
	hh.secNo = next
}

// overlap returns |a ∩ b| / |a| as a percentage.
func overlap(a, b map[hhKey]struct{}) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return 100 * float64(n) / float64(len(a))
}

// Finish flushes the last open bin and second. Call once, after the trace
// ends.
func (hh *HeavyHitters) Finish() {
	hh.rollBin(hh.curBin + 1)
	hh.rollSecond(hh.secNo + 1)
}

// Counts returns the per-bin heavy-hitter set sizes (Table 4 "Number").
func (hh *HeavyHitters) Counts() *stats.Sample { return hh.counts }

// Rates returns the per-member rates in Mbps (Table 4 "Size").
func (hh *HeavyHitters) Rates() *stats.Sample { return hh.rates }

// Persistence returns the distribution of the fraction (in percent) of a
// bin's heavy hitters that remain heavy in the next bin (Fig. 10).
func (hh *HeavyHitters) Persistence() *stats.Sample { return hh.persist }

// Intersection returns the distribution of the fraction (in percent) of a
// subinterval's heavy hitters that are also heavy over the enclosing
// second (Fig. 11).
func (hh *HeavyHitters) Intersection() *stats.Sample { return hh.intersect }
