package analysis

// TableStats describes one open-addressing table inside an analysis for
// the observability layer: how many entries it holds, its slot capacity,
// and how often it has rehashed over its lifetime. A table whose Grows
// keeps climbing in steady state is under-sized for the workload.
type TableStats struct {
	Name  string // table identifier, e.g. "flows.idx"
	Rows  int    // live entries at snapshot time
	Cap   int    // slot-array capacity
	Grows int    // cumulative rehash count (survives Reset)
}

// LoadPct returns the table's load factor as a percentage (0 when the
// table has never been grown).
func (s TableStats) LoadPct() float64 {
	if s.Cap == 0 {
		return 0
	}
	return 100 * float64(s.Rows) / float64(s.Cap)
}

// TableStats reports the flow assembler's index table.
func (fl *Flows) TableStats() []TableStats {
	return []TableStats{
		{Name: "flows.idx", Rows: fl.idx.Len(), Cap: fl.idx.Cap(), Grows: fl.idx.Grows()},
	}
}

// TableStats reports the per-bin and per-second accumulators. Rows are a
// point-in-time residue (both tables Reset on every roll); Cap and Grows
// carry the steady-state sizing signal.
func (hh *HeavyHitters) TableStats() []TableStats {
	return []TableStats{
		{Name: "heavy.cur", Rows: hh.cur.Len(), Cap: hh.cur.Cap(), Grows: hh.cur.Grows()},
		{Name: "heavy.sec", Rows: hh.sec.Len(), Cap: hh.sec.Cap(), Grows: hh.sec.Grows()},
	}
}

// TableStats reports the per-window accumulators.
func (c *Concurrency) TableStats() []TableStats {
	return []TableStats{
		{Name: "concurrency.racks", Rows: c.racks.Len(), Cap: c.racks.Cap(), Grows: c.racks.Grows()},
		{Name: "concurrency.flows", Rows: c.flows.Len(), Cap: c.flows.Cap(), Grows: c.flows.Grows()},
		{Name: "concurrency.hosts", Rows: c.hosts.Len(), Cap: c.hosts.Cap(), Grows: c.hosts.Grows()},
	}
}
