package analysis

import (
	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// Utilization derives per-tier link utilization distributions (§4.1) from
// an Fbflow dataset: every host's access link, every rack's four RSW→CSW
// uplinks, and every cluster's four CSW→FC uplinks, assuming ECMP spreads
// tier-crossing bytes evenly over a tier's uplinks. Links that carried no
// traffic are included at zero — the paper's "99% of links under 10%"
// counts idle links too.
func Utilization(ds *fbflow.Dataset, topo *topology.Topology, durSec float64, cfg netsim.FabricConfig) map[netsim.Tier]*stats.Sample {
	out := map[netsim.Tier]*stats.Sample{
		netsim.TierHostRSW: stats.NewSample(topo.NumHosts()),
		netsim.TierRSWCSW:  stats.NewSample(len(topo.Racks) * 4),
		netsim.TierCSWFC:   stats.NewSample(len(topo.Clusters) * 4),
	}
	util := func(bytes float64, rate int64) float64 {
		return bytes * 8 / (float64(rate) * durSec)
	}

	hostOut := ds.HostOutBytes()
	for i := 0; i < topo.NumHosts(); i++ {
		out[netsim.TierHostRSW].Add(util(hostOut[topology.HostID(i)], cfg.HostLinkBps))
	}
	rackCross := ds.RackCrossBytes()
	for r := range topo.Racks {
		per := rackCross[r] / 4
		for i := 0; i < 4; i++ {
			out[netsim.TierRSWCSW].Add(util(per, cfg.RSWUpBps))
		}
	}
	clusterCross := ds.ClusterCrossBytes()
	for c := range topo.Clusters {
		per := clusterCross[c] / 4
		for i := 0; i < 4; i++ {
			out[netsim.TierCSWFC].Add(util(per, cfg.CSWUpBps))
		}
	}
	return out
}

// ClusterEdgeLoad returns the mean edge-link (host→RSW) utilization per
// cluster type, the §4.1 "heaviest clusters (Hadoop) ≈5× light ones
// (Frontend)" comparison.
func ClusterEdgeLoad(ds *fbflow.Dataset, topo *topology.Topology, durSec float64, cfg netsim.FabricConfig) map[topology.ClusterType]float64 {
	hostOut := ds.HostOutBytes()
	sum := make(map[topology.ClusterType]float64)
	n := make(map[topology.ClusterType]int)
	for i := 0; i < topo.NumHosts(); i++ {
		ct := topo.Clusters[topo.HostCluster(topology.HostID(i))].Type
		sum[ct] += hostOut[topology.HostID(i)] * 8 / (float64(cfg.HostLinkBps) * durSec)
		n[ct]++
	}
	out := make(map[topology.ClusterType]float64, len(sum))
	for ct, s := range sum {
		if n[ct] > 0 {
			out[ct] = s / float64(n[ct])
		}
	}
	return out
}

// BufferStats turns a stream of shared-buffer occupancy samples into the
// per-second median and maximum series of Figure 15a, normalized to the
// buffer capacity. Feed it from netsim.SampleOccupancy and call Finish.
type BufferStats struct {
	capBytes float64
	secNo    int64
	cur      *stats.Sample
	med, max []float64
}

// NewBufferStats creates a tracker for a switch with the given shared
// buffer capacity in bytes.
func NewBufferStats(capBytes int64) *BufferStats {
	return &BufferStats{capBytes: float64(capBytes), cur: stats.NewSample(0)}
}

// Sample ingests one occupancy reading at simulation time t.
func (b *BufferStats) Sample(t netsim.Time, occ int64) {
	sec := t / int64(netsim.Second)
	if sec != b.secNo {
		b.roll(sec)
	}
	b.cur.Add(float64(occ) / b.capBytes)
}

func (b *BufferStats) roll(next int64) {
	if b.cur.N() > 0 {
		b.med = append(b.med, b.cur.Median())
		b.max = append(b.max, b.cur.Quantile(1))
		b.cur = stats.NewSample(0)
	}
	b.secNo = next
}

// Finish flushes the last second.
func (b *BufferStats) Finish() { b.roll(b.secNo + 1) }

// Median returns the per-second median normalized occupancy series.
func (b *BufferStats) Median() []float64 { return b.med }

// Max returns the per-second maximum normalized occupancy series.
func (b *BufferStats) Max() []float64 { return b.max }
