package analysis

import (
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
)

// Trains measures packet trains: maximal runs of consecutive outbound
// packets to the same destination host with inter-packet gaps below a
// threshold. Kapoor et al. [27] reported that datacenter packets to a
// given destination often arrive in long trains; Facebook's request
// multiplexing interleaves hundreds of destinations, so its trains are
// short — another Table 1 contrast this tracker makes measurable on both
// workloads.
type Trains struct {
	addr    packet.Addr
	gap     netsim.Time
	lastDst packet.Addr
	lastAt  netsim.Time
	runLen  int64
	runPkts *stats.Sample // train lengths in packets
}

// NewTrains creates a tracker counting runs broken by a destination
// change or a gap above maxGap.
func NewTrains(addr packet.Addr, maxGap netsim.Time) *Trains {
	if maxGap <= 0 {
		panic("analysis: train gap must be positive")
	}
	return &Trains{addr: addr, gap: maxGap, runPkts: stats.NewSample(0)}
}

// Packet implements the collector interface.
func (t *Trains) Packet(h packet.Header) {
	if h.Key.Src != t.addr {
		return
	}
	if t.runLen > 0 && h.Key.Dst == t.lastDst && h.Time-t.lastAt <= int64(t.gap) {
		t.runLen++
	} else {
		if t.runLen > 0 {
			t.runPkts.Add(float64(t.runLen))
		}
		t.runLen = 1
		t.lastDst = h.Key.Dst
	}
	t.lastAt = h.Time
}

// Packets implements the batch collector interface.
func (t *Trains) Packets(hs []packet.Header) {
	for _, h := range hs {
		t.Packet(h)
	}
}

// Finish flushes the open run. Call at end of trace.
func (t *Trains) Finish() {
	if t.runLen > 0 {
		t.runPkts.Add(float64(t.runLen))
		t.runLen = 0
	}
}

// Lengths returns the distribution of train lengths in packets.
func (t *Trains) Lengths() *stats.Sample { return t.runPkts }
