package analysis

import (
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// ConcurrencyWindow is the paper's definition of "concurrent": within the
// same 5-ms interval (§6.4).
const ConcurrencyWindow = 5 * netsim.Millisecond

// Concurrency counts, per window, the distinct destination racks a
// monitored host sends to (Fig. 16) and the subset that are heavy-hitter
// racks covering half the window's bytes (Fig. 17), split by locality.
//
// Packets must arrive in non-decreasing time order; call Finish at end of
// trace.
type Concurrency struct {
	topo *topology.Topology
	host topology.HostID
	addr packet.Addr
	win  netsim.Time

	curWin int64
	// Per-window accumulators, all Reset (not reallocated) on roll:
	// bytes per destination rack, and the distinct 5-tuple and host sets.
	racks openhash.Table[float64]
	flows openhash.Table[struct{}]
	hosts openhash.Table[struct{}]

	counts   map[topology.Locality]*stats.Sample
	countAll *stats.Sample
	hh       map[topology.Locality]*stats.Sample
	hhAll    *stats.Sample
	flowCnt  *stats.Sample
	hostCnt  *stats.Sample

	// scratch is the reusable heavy-rack sort buffer of roll.
	scratch []rackBytes
}

// rackBytes is one (rack, bytes) pair during heavy-rack extraction.
type rackBytes struct {
	rack int
	b    float64
}

// NewConcurrency creates a tracker with the given window (use
// ConcurrencyWindow for the paper's setting).
func NewConcurrency(topo *topology.Topology, host topology.HostID, win netsim.Time) *Concurrency {
	if win <= 0 {
		panic("analysis: concurrency window must be positive")
	}
	c := &Concurrency{
		topo:     topo,
		host:     host,
		addr:     topo.Addr(host),
		win:      win,
		counts:   make(map[topology.Locality]*stats.Sample),
		countAll: stats.NewSample(0),
		hh:       make(map[topology.Locality]*stats.Sample),
		hhAll:    stats.NewSample(0),
		flowCnt:  stats.NewSample(0),
		hostCnt:  stats.NewSample(0),
	}
	for _, l := range topology.Localities {
		c.counts[l] = stats.NewSample(0)
		c.hh[l] = stats.NewSample(0)
	}
	return c
}

// Packet implements the collector interface.
func (c *Concurrency) Packet(h packet.Header) {
	if h.Key.Src != c.addr {
		return
	}
	w := h.Time / int64(c.win)
	if w != c.curWin {
		c.roll(w)
	}
	dst, ok := c.topo.HostByAddr(h.Key.Dst)
	if !ok {
		return
	}
	*c.racks.Slot(uint64(c.topo.HostRack(dst))) += float64(h.Size)
	c.flows.Slot(packHostFlowKey(h.Key))
	c.hosts.Slot(uint64(h.Key.Dst))
}

// Packets implements the batch collector interface.
func (c *Concurrency) Packets(hs []packet.Header) {
	for _, h := range hs {
		c.Packet(h)
	}
}

// rackLocality classifies a destination rack relative to the monitored
// host.
func (c *Concurrency) rackLocality(rack int) topology.Locality {
	self := c.topo.Host(c.host)
	r := &c.topo.Racks[rack]
	switch {
	case r.ID == self.Rack:
		return topology.IntraRack
	case r.Cluster == self.Cluster:
		return topology.IntraCluster
	case c.topo.Clusters[r.Cluster].Datacenter == self.Datacenter:
		return topology.IntraDatacenter
	default:
		return topology.InterDatacenter
	}
}

// roll finalizes the current window.
func (c *Concurrency) roll(next int64) {
	if c.racks.Len() > 0 {
		var perLoc [topology.InterDatacenter + 1]int
		total := 0.0
		items := c.scratch[:0]
		for i, n := 0, c.racks.Len(); i < n; i++ {
			rack, b := int(c.racks.Key(i)), *c.racks.Val(i)
			perLoc[c.rackLocality(rack)]++
			total += b
			items = append(items, rackBytes{rack, b})
		}
		c.scratch = items
		c.countAll.Add(float64(c.racks.Len()))
		for _, l := range topology.Localities {
			c.counts[l].Add(float64(perLoc[l]))
		}

		// Heavy-hitter racks of the window: minimum set covering half
		// the bytes. Insertion sort by bytes desc, rack asc (windows are
		// small).
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && (items[j].b > items[j-1].b ||
				(items[j].b == items[j-1].b && items[j].rack < items[j-1].rack)); j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		acc := 0.0
		var hhPerLoc [topology.InterDatacenter + 1]int
		hhN := 0
		for _, it := range items {
			acc += it.b
			hhN++
			hhPerLoc[c.rackLocality(it.rack)]++
			if acc >= HeavyFrac*total {
				break
			}
		}
		c.hhAll.Add(float64(hhN))
		for _, l := range topology.Localities {
			c.hh[l].Add(float64(hhPerLoc[l]))
		}
		c.flowCnt.Add(float64(c.flows.Len()))
		c.hostCnt.Add(float64(c.hosts.Len()))

		c.racks.Reset()
		c.flows.Reset()
		c.hosts.Reset()
	}
	c.curWin = next
}

// Finish flushes the last open window.
func (c *Concurrency) Finish() { c.roll(c.curWin + 1) }

// Racks returns the distribution of distinct destination racks per window
// for one locality tier (Fig. 16 series).
func (c *Concurrency) Racks(l topology.Locality) *stats.Sample { return c.counts[l] }

// RacksAll returns the distribution of total distinct destination racks
// per window.
func (c *Concurrency) RacksAll() *stats.Sample { return c.countAll }

// HHRacks returns the per-window heavy-hitter rack count for one tier
// (Fig. 17 series).
func (c *Concurrency) HHRacks(l topology.Locality) *stats.Sample { return c.hh[l] }

// HHRacksAll returns the per-window total heavy-hitter rack count.
func (c *Concurrency) HHRacksAll() *stats.Sample { return c.hhAll }

// Flows returns the distribution of distinct concurrent 5-tuples per
// window (§6.4).
func (c *Concurrency) Flows() *stats.Sample { return c.flowCnt }

// Hosts returns the distribution of distinct concurrent destination
// hosts per window (§6.4).
func (c *Concurrency) Hosts() *stats.Sample { return c.hostCnt }
