package analysis

import (
	"testing"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/topology"
)

// allocBatch builds nPkts headers cycling over nFlows distinct outbound
// flows of host 0, one per microsecond starting at t0.
func allocBatch(t *testing.T, topo *topology.Topology, nFlows, nPkts int, t0 netsim.Time) []packet.Header {
	t.Helper()
	batch := make([]packet.Header, 0, nPkts)
	for i := 0; i < nPkts; i++ {
		f := i % nFlows
		batch = append(batch, mk(topo, 0, topology.HostID(1+f%(topo.NumHosts()-1)),
			t0+netsim.Time(i)*netsim.Microsecond, 1000, uint16(1000+f), 80, 0))
	}
	return batch
}

// TestFlowsBatchZeroAlloc pins the steady-state Flows batch path at zero
// allocations per packet: once the packed table and flow slab have grown
// to cover the working set, feeding further batches must not allocate.
func TestFlowsBatchZeroAlloc(t *testing.T) {
	topo := tinyTopo(t)
	fl := NewFlows(topo, 0)
	batch := allocBatch(t, topo, 64, 4096, 0)
	fl.Packets(batch) // warm: create flows, grow table and slab
	if got := testing.AllocsPerRun(50, func() { fl.Packets(batch) }); got != 0 {
		t.Fatalf("Flows.Packets allocated %.2f allocs/run over %d packets, want 0", got, len(batch))
	}
}

// TestHeavyHittersBinRollZeroAlloc pins the heavy-hitter batch path —
// including the per-bin roll with its covering-set sort and persistence
// intersection — at (amortized) zero allocations per packet. The only
// permitted residue is the geometric growth of the output Samples, which
// amortizes to well under one allocation per thousand packets.
func TestHeavyHittersBinRollZeroAlloc(t *testing.T) {
	topo := tinyTopo(t)
	hh := NewHeavyHitters(topo, 0, LevelFlow, netsim.Millisecond)
	const nPkts = 8192 // 1 pkt/µs → a bin roll every 1000 packets
	// Warm through several full seconds so every scratch buffer, set
	// buffer, and sub-second arena reaches steady-state capacity.
	var at netsim.Time
	for s := 0; s < 3; s++ {
		hh.Packets(allocBatch(t, topo, 64, nPkts, at))
		at += netsim.Second
	}
	run := 0
	got := testing.AllocsPerRun(50, func() {
		hh.Packets(allocBatch(t, topo, 64, nPkts, at+netsim.Time(run)*netsim.Second))
		run++
	})
	// allocBatch allocates the batch slice itself (1 alloc); everything
	// else must amortize to ~0 per packet (Sample growth residue only).
	const perPacketBudget = 0.01
	if perPkt := (got - 1) / nPkts; perPkt > perPacketBudget {
		t.Fatalf("HeavyHitters.Packets allocated %.2f allocs/run (%.5f/packet) over %d packets, want ≤%.2f/packet",
			got, perPkt, nPkts, perPacketBudget)
	}
}
