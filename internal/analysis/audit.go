package analysis

import (
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// Determinism-checkpoint hash points: each analysis folds a canonical
// summary of its finished state into an audit.Hash, so a trace bundle's
// ledger localizes which analysis diverged rather than just which
// bundle. Canonicalization rules (DESIGN.md §16):
//
//   - Insertion-ordered structures (slabs, openhash tables, series
//     bins) fold in their deterministic iteration order.
//   - Unordered structures (the Flows spill map) fold as an XOR of
//     per-entry sub-hashes — a commutative combine, so map iteration
//     order cannot leak into the sum.
//   - Enumerations (roles, localities) fold in their numeric order.
//
// Every method is a no-op on a nil hash.

// foldSample folds a stats.Sample as (N, Sum): cheap, and any change to
// the underlying values moves the float sum bit-for-bit because the
// accumulation order of Sum is the recorded order.
func foldSample(h *audit.Hash, s *stats.Sample) {
	if s == nil {
		h.I64(-1)
		return
	}
	h.I64(int64(s.N()))
	h.F64(s.Sum())
}

// foldSeries folds a time series' bins in order.
func foldSeries(h *audit.Hash, ts *stats.TimeSeries) {
	if ts == nil {
		h.I64(-1)
		return
	}
	bins := ts.Bins()
	h.I64(int64(len(bins)))
	for _, v := range bins {
		h.F64(v)
	}
}

// FoldAudit folds the size distribution.
func (ps *PacketSizes) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	foldSample(h, ps.sample)
}

// FoldAudit folds the per-role byte mix in role order.
func (sm *ServiceMix) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	h.F64(sm.total)
	for role := topology.Role(0); role <= topology.RoleMisc; role++ {
		h.F64(sm.bytes[role])
	}
}

// FoldAudit folds every locality tier's per-second series.
func (ls *LocalitySeries) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	for _, l := range topology.Localities {
		foldSeries(h, ls.bins[l])
	}
}

// FoldAudit folds the assembled flow set: the slab in insertion order,
// the spill map as an XOR of per-flow sub-hashes.
func (fl *Flows) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	h.I64(int64(fl.Count()))
	for i := range fl.slab {
		f := &fl.slab[i]
		h.I64(int64(f.Start))
		h.I64(int64(f.End))
		h.I64(f.Bytes)
		h.I64(f.Packets)
		h.U64(uint64(f.Locality))
	}
	var x uint64
	for _, f := range fl.spill {
		var sub audit.Hash
		sub.I64(int64(f.Start))
		sub.I64(int64(f.End))
		sub.I64(f.Bytes)
		sub.I64(f.Packets)
		x ^= sub.Sum()
	}
	h.U64(x)
}

// FoldAudit folds the per-destination-rack rate series in insertion
// order.
func (rs *RateSeries) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	h.I64(int64(rs.perRack.Len()))
	rs.perRack.Range(func(k uint64, v **stats.TimeSeries) {
		h.U64(k)
		foldSeries(h, *v)
	})
}

// FoldAudit folds the SYN arrival record: gap distribution, SYN count,
// and each bin-width series.
func (a *Arrivals) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	foldSample(h, a.synGaps)
	h.I64(int64(len(a.synTimes)))
	for _, b := range a.binned {
		h.I64(int64(b.w))
		foldSeries(h, b.ts)
	}
}

// FoldAudit folds the finished concurrency windows: the aggregate and
// per-locality samples in locality order. Call after Finish.
func (c *Concurrency) FoldAudit(h *audit.Hash) {
	if !h.Enabled() {
		return
	}
	foldSample(h, c.countAll)
	foldSample(h, c.hhAll)
	foldSample(h, c.flowCnt)
	foldSample(h, c.hostCnt)
	for _, l := range topology.Localities {
		foldSample(h, c.counts[l])
		foldSample(h, c.hh[l])
	}
}
