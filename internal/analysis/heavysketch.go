package analysis

import (
	"slices"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/sketch"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// HeavyTracker is the interface the engine consumes for windowed
// heavy-hitter statistics: the exact openhash-backed HeavyHitters and the
// bounded-memory SketchHeavyHitters both implement it, so core selects
// one per Config.SketchMode without the tables, figures, or obs folding
// caring which.
type HeavyTracker interface {
	Packet(packet.Header)
	Packets([]packet.Header)
	Finish()
	Counts() *stats.Sample
	Rates() *stats.Sample
	Persistence() *stats.Sample
	Intersection() *stats.Sample
	TableStats() []TableStats
	// MemoryBytes estimates the tracker's table-state footprint — the
	// state sketch mode replaces: for the exact tracker it grows with the
	// key population, for the sketch tracker it is fixed at construction.
	// The sketcherr harness compares the two.
	MemoryBytes() int
}

// NewHeavyTracker returns the heavy-hitter tracker for one (level, bin)
// pair: the exact openhash implementation by default, the fixed-memory
// sketch implementation when sketchMode is set.
func NewHeavyTracker(topo *topology.Topology, host topology.HostID, level Level, bin netsim.Time, sketchMode bool) HeavyTracker {
	if sketchMode {
		return NewSketchHeavyHitters(topo, host, level, bin)
	}
	return NewHeavyHitters(topo, host, level, bin)
}

// SketchDims sizes the per-bin summaries by aggregation level: the flow
// key space is unbounded (sketches are why sketch mode exists), the host
// and rack spaces are progressively smaller, so their candidate sets and
// count-min rows shrink with them. The widths are deliberately tight —
// the memory contract (sketcherr asserts ≥2× below the exact tables at
// large scale) matters as much as the error bound, and the harness shows
// heavy-hitter rank error stays well under 1% at these sizes.
func SketchDims(level Level) (ssCap, cmWidth int) {
	switch level {
	case LevelFlow:
		return 192, 512
	case LevelHost:
		return 96, 256
	default:
		return 32, 128
	}
}

// SketchHeavyHitters is the bounded-memory implementation of
// HeavyTracker: per-bin and per-second space-saving summaries nominate
// heavy-hitter candidates while paired count-min sketches refine their
// byte estimates (both structures over-approximate, so the pointwise
// minimum is the tighter upper bound). The exact stream total comes for
// free (space-saving tracks it as a scalar), so the HeavyFrac prefix cut
// is made against true total bytes — only membership and per-member
// bytes are approximate.
//
// Memory is fixed at construction regardless of how many distinct
// aggregates the stream carries; every accumulator is Reset-reused at
// bin/second rolls, so the steady-state packet path allocates nothing —
// the contract the endless serve mode depends on.
//
// Determinism: every structure is a pure function of the packet
// sequence, so results are bit-identical across runs and worker counts
// (bundle generation is single-goroutine; the parallel engine only
// schedules whole bundles).
type SketchHeavyHitters struct {
	topo  *topology.Topology
	addr  packet.Addr
	level Level
	bin   netsim.Time

	cur    *sketch.SpaceSaving
	curCM  *sketch.CountMin
	curBin int64
	prev   []uint64 // previous bin's heavy set, sorted ascending
	prevOK bool
	prevNo int64

	// Enclosing-second tracking for the intersection metric.
	sec      *sketch.SpaceSaving
	secCM    *sketch.CountMin
	secNo    int64
	subArena []uint64
	subEnds  []int

	counts    *stats.Sample
	rates     *stats.Sample
	persist   *stats.Sample
	intersect *stats.Sample

	top     []sketch.Entry // Top() drain buffer
	scratch []hhItem       // refined-estimate sort buffer
	setBuf  []uint64
	secBuf  []uint64
}

// NewSketchHeavyHitters creates a sketch-backed tracker at the given
// level and bin width.
func NewSketchHeavyHitters(topo *topology.Topology, host topology.HostID, level Level, bin netsim.Time) *SketchHeavyHitters {
	if bin <= 0 {
		panic("analysis: heavy-hitter bin width must be positive")
	}
	ssCap, cmWidth := SketchDims(level)
	return &SketchHeavyHitters{
		topo:      topo,
		addr:      topo.Addr(host),
		level:     level,
		bin:       bin,
		cur:       sketch.NewSpaceSaving(ssCap),
		curCM:     sketch.NewCountMin(4, cmWidth),
		sec:       sketch.NewSpaceSaving(ssCap),
		secCM:     sketch.NewCountMin(4, cmWidth),
		counts:    stats.NewSample(0),
		rates:     stats.NewSample(0),
		persist:   stats.NewSample(0),
		intersect: stats.NewSample(0),
		top:       make([]sketch.Entry, 0, ssCap),
		scratch:   make([]hhItem, 0, ssCap),
	}
}

// keyFor mirrors HeavyHitters.keyFor: the packed aggregate identity at
// the tracker's level.
func (hh *SketchHeavyHitters) keyFor(h packet.Header) uint64 {
	switch hh.level {
	case LevelFlow:
		return packHostFlowKey(h.Key)
	case LevelHost:
		return uint64(h.Key.Dst)
	default:
		rack := 0
		if d, ok := hh.topo.HostByAddr(h.Key.Dst); ok {
			rack = hh.topo.HostRack(d)
		}
		return uint64(rack)
	}
}

// Packet implements the collector interface.
func (hh *SketchHeavyHitters) Packet(h packet.Header) {
	if h.Key.Src != hh.addr {
		return
	}
	binNo := h.Time / int64(hh.bin)
	if binNo != hh.curBin {
		hh.rollBin(binNo)
	}
	secNo := h.Time / int64(netsim.Second)
	if secNo != hh.secNo {
		hh.rollSecond(secNo)
	}
	k := hh.keyFor(h)
	size := int64(h.Size)
	hh.cur.Update(k, size)
	hh.curCM.Add(k, size)
	hh.sec.Update(k, size)
	hh.secCM.Add(k, size)
}

// Packets implements the batch collector interface.
func (hh *SketchHeavyHitters) Packets(hs []packet.Header) {
	for _, h := range hs {
		hh.Packet(h)
	}
}

// heavyPrefix drains the summary's candidates, refines each count to
// min(space-saving count, count-min estimate), sorts by refined bytes
// descending (key ascending on ties, the same deterministic order as the
// exact tracker), and returns the length m of the minimum prefix
// covering HeavyFrac of the exact total. The heavy set is
// hh.scratch[:m].
func (hh *SketchHeavyHitters) heavyPrefix(ss *sketch.SpaceSaving, cm *sketch.CountMin) int {
	hh.top = ss.Top(hh.top[:0])
	items := hh.scratch[:0]
	for _, e := range hh.top {
		est := e.Count
		if c := cm.Estimate(e.Key); c < est {
			est = c
		}
		items = append(items, hhItem{e.Key, float64(est)})
	}
	hh.scratch = items
	slices.SortFunc(items, func(a, b hhItem) int {
		if a.v != b.v {
			if a.v > b.v {
				return -1
			}
			return 1
		}
		if a.k < b.k {
			return -1
		}
		return 1
	})
	total := float64(ss.Total())
	acc, m := 0.0, 0
	for _, it := range items {
		m++
		acc += it.v
		if acc >= HeavyFrac*total {
			break
		}
	}
	return m
}

// sortedSet copies the first m scratch keys into buf, sorted ascending.
func (hh *SketchHeavyHitters) sortedSet(m int, buf []uint64) []uint64 {
	buf = buf[:0]
	for i := 0; i < m; i++ {
		buf = append(buf, hh.scratch[i].k)
	}
	slices.Sort(buf)
	return buf
}

// rollBin finalizes the current bin, mirroring the exact tracker's roll:
// Table 4 statistics, persistence versus the previous bin, and the
// stashed set for the enclosing-second intersection.
func (hh *SketchHeavyHitters) rollBin(next int64) {
	if hh.cur.Len() > 0 {
		m := hh.heavyPrefix(hh.cur, hh.curCM)
		hh.counts.Add(float64(m))
		binSec := float64(hh.bin) / float64(netsim.Second)
		for i := 0; i < m; i++ {
			hh.rates.Add(hh.scratch[i].v * 8 / binSec / 1e6) // Mbps
		}
		hh.setBuf = hh.sortedSet(m, hh.setBuf)
		if hh.prevOK && hh.prevNo == hh.curBin-1 {
			hh.persist.Add(overlapSorted(hh.prev, hh.setBuf))
		}
		hh.prev = append(hh.prev[:0], hh.setBuf...)
		hh.prevOK, hh.prevNo = true, hh.curBin
		hh.subArena = append(hh.subArena, hh.setBuf...)
		hh.subEnds = append(hh.subEnds, len(hh.subArena))
		hh.cur.Reset()
		hh.curCM.Reset()
	}
	hh.curBin = next
}

// rollSecond finalizes the enclosing second.
func (hh *SketchHeavyHitters) rollSecond(next int64) {
	if hh.sec.Len() > 0 && len(hh.subEnds) > 0 {
		m := hh.heavyPrefix(hh.sec, hh.secCM)
		hh.secBuf = hh.sortedSet(m, hh.secBuf)
		start := 0
		for _, end := range hh.subEnds {
			sub := hh.subArena[start:end]
			start = end
			if len(sub) > 0 {
				hh.intersect.Add(overlapSorted(sub, hh.secBuf))
			}
		}
	}
	hh.sec.Reset()
	hh.secCM.Reset()
	hh.subArena = hh.subArena[:0]
	hh.subEnds = hh.subEnds[:0]
	hh.secNo = next
}

// Finish flushes the last open bin and second.
func (hh *SketchHeavyHitters) Finish() {
	hh.rollBin(hh.curBin + 1)
	hh.rollSecond(hh.secNo + 1)
}

// Counts returns the per-bin heavy-hitter set sizes (Table 4 "Number").
func (hh *SketchHeavyHitters) Counts() *stats.Sample { return hh.counts }

// Rates returns the per-member rates in Mbps (Table 4 "Size").
func (hh *SketchHeavyHitters) Rates() *stats.Sample { return hh.rates }

// Persistence returns the next-bin heavy-set overlap distribution
// (Fig. 10).
func (hh *SketchHeavyHitters) Persistence() *stats.Sample { return hh.persist }

// Intersection returns the subinterval-versus-second overlap
// distribution (Fig. 11).
func (hh *SketchHeavyHitters) Intersection() *stats.Sample { return hh.intersect }

// TableStats reports the candidate summaries in the same shape as the
// exact tables so the obs folding stays uniform. Grows is always zero:
// the structures never rehash.
func (hh *SketchHeavyHitters) TableStats() []TableStats {
	return []TableStats{
		{Name: "heavy.cur.sketch", Rows: hh.cur.Len(), Cap: hh.cur.Cap()},
		{Name: "heavy.sec.sketch", Rows: hh.sec.Len(), Cap: hh.sec.Cap()},
	}
}

// MemoryBytes returns the fixed table-state footprint: the sketches and
// their extraction buffers. The persistence bookkeeping (previous heavy
// set, per-second subset arena) is excluded from both implementations —
// it is byte-for-byte the same structure in either mode, and the memory
// contract is about the state sketch mode replaces.
func (hh *SketchHeavyHitters) MemoryBytes() int {
	return hh.cur.Bytes() + hh.curCM.Bytes() + hh.sec.Bytes() + hh.secCM.Bytes() +
		24*cap(hh.top) + 16*cap(hh.scratch)
}

// MemoryBytes estimates the exact tracker's table-state footprint: 16
// bytes per open-addressing slot (packed key + float64) across both
// tables plus the extraction scratch, growing with the key population.
// The shared persistence bookkeeping is excluded, as above.
func (hh *HeavyHitters) MemoryBytes() int {
	return 16*(hh.cur.Cap()+hh.sec.Cap()) + 16*cap(hh.scratch)
}
