package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

func tinyTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustBuild(topology.Preset(topology.ScaleTiny))
}

// mk builds an outbound header from host src to dst at time t.
func mk(topo *topology.Topology, src, dst topology.HostID, t netsim.Time, size uint32, sport, dport uint16, flags packet.Flags) packet.Header {
	return packet.Header{
		Time: t,
		Key: packet.FlowKey{
			Src: topo.Addr(src), Dst: topo.Addr(dst),
			SrcPort: sport, DstPort: dport, Proto: packet.TCP,
		},
		Size:  size,
		Flags: flags,
	}
}

func TestFlowsAssembly(t *testing.T) {
	topo := tinyTopo(t)
	fl := NewFlows(topo, 0)
	// Outbound flow with a reply: both directions merge into one flow.
	out := mk(topo, 0, 5, 0, 100, 1000, 80, packet.FlagSYN)
	fl.Packet(out)
	reply := mk(topo, 5, 0, netsim.Millisecond, 200, 80, 1000, 0)
	fl.Packet(reply)
	fl.Packet(mk(topo, 0, 5, 2*netsim.Millisecond, 300, 1000, 80, 0))

	if fl.Count() != 1 {
		t.Fatalf("flows = %d, want 1 (directions must merge)", fl.Count())
	}
	f := fl.All()[0]
	if f.Bytes != 600 || f.Packets != 3 {
		t.Fatalf("flow totals: %d bytes %d pkts", f.Bytes, f.Packets)
	}
	if !f.SawSYN || !f.Outbound {
		t.Fatal("SYN/outbound flags wrong")
	}
	if f.Duration() != 2*netsim.Millisecond {
		t.Fatalf("duration %d", f.Duration())
	}
}

func TestFlowsLocalityTagging(t *testing.T) {
	topo := tinyTopo(t)
	fl := NewFlows(topo, 0)
	far := topology.HostID(topo.NumHosts() - 1)
	fl.Packet(mk(topo, 0, far, 0, 100, 1, 2, 0))
	f := fl.All()[0]
	if f.Locality != topology.InterDatacenter {
		t.Fatalf("locality %v", f.Locality)
	}
}

func TestFlowsSizeAndDurationCDF(t *testing.T) {
	topo := tinyTopo(t)
	fl := NewFlows(topo, 0)
	// Two flows of different sizes: one intra-rack, one intra-cluster.
	fl.Packet(mk(topo, 0, 1, 0, 1024, 10, 80, 0))
	fl.Packet(mk(topo, 0, 7, 0, 2048, 11, 80, 0))
	fl.Packet(mk(topo, 0, 7, netsim.Second, 2048, 11, 80, 0))
	perLoc, all := fl.SizeCDF()
	if all.N() != 2 {
		t.Fatalf("size CDF flows = %d", all.N())
	}
	if s := perLoc[topology.IntraRack]; s == nil || s.N() != 1 || s.Quantile(0.5) != 1 {
		t.Fatal("intra-rack size CDF wrong")
	}
	_, dAll := fl.DurationCDF()
	if dAll.Quantile(1) != 1000 { // 1 s in ms
		t.Fatalf("max duration %v ms", dAll.Quantile(1))
	}
}

func TestPerHostSizeCDFAggregates(t *testing.T) {
	topo := tinyTopo(t)
	fl := NewFlows(topo, 0)
	// Two 5-tuple flows to the same host collapse in the per-host CDF.
	fl.Packet(mk(topo, 0, 5, 0, 1024, 10, 80, 0))
	fl.Packet(mk(topo, 0, 5, 0, 1024, 11, 80, 0))
	fl.Packet(mk(topo, 0, 6, 0, 512, 12, 80, 0))
	perLoc, s := fl.PerHostSizeCDF()
	if s.N() != 2 {
		t.Fatalf("per-host entries = %d", s.N())
	}
	if s.Quantile(1) != 2 { // 2 KB to host 5
		t.Fatalf("max per-host KB = %v", s.Quantile(1))
	}
	total := 0
	for _, ls := range perLoc {
		total += ls.N()
	}
	if total != 2 {
		t.Fatalf("per-locality split covers %d hosts, want 2", total)
	}
	if fl.PerHostSizeCDFForLocality(topology.InterDatacenter).N() != 0 {
		t.Fatal("absent locality should return empty sample")
	}
}

func TestLocalitySeriesShares(t *testing.T) {
	topo := tinyTopo(t)
	ls := NewLocalitySeries(topo, 0)
	rackPeer := topo.Racks[topo.HostRack(0)].Host(1)
	far := topology.HostID(topo.NumHosts() - 1)
	ls.Packet(mk(topo, 0, rackPeer, 0, 300, 1, 2, 0))
	ls.Packet(mk(topo, 0, far, netsim.Second, 700, 1, 2, 0))
	// Inbound packets must not count.
	ls.Packet(mk(topo, far, 0, 0, 999, 1, 2, 0))

	share := ls.Share()
	if math.Abs(share[topology.IntraRack]-0.3) > 1e-9 {
		t.Fatalf("rack share %v", share[topology.IntraRack])
	}
	if math.Abs(share[topology.InterDatacenter]-0.7) > 1e-9 {
		t.Fatalf("interDC share %v", share[topology.InterDatacenter])
	}
	if got := ls.Series(topology.IntraRack); got[0] != 300 {
		t.Fatalf("series %v", got)
	}
}

func TestServiceMix(t *testing.T) {
	topo := tinyTopo(t)
	web := topo.HostsByRole(topology.RoleWeb)[0]
	cache := topo.HostsByRole(topology.RoleCacheFollower)[0]
	mf := topo.HostsByRole(topology.RoleMultifeed)[0]
	sm := NewServiceMix(topo, web)
	sm.Packet(mk(topo, web, cache, 0, 600, 1, 2, 0))
	sm.Packet(mk(topo, web, mf, 0, 400, 1, 2, 0))
	share := sm.Share()
	if math.Abs(share[topology.RoleCacheFollower]-0.6) > 1e-9 {
		t.Fatalf("cache share %v", share)
	}
	if math.Abs(share[topology.RoleMultifeed]-0.4) > 1e-9 {
		t.Fatalf("mf share %v", share)
	}
}

func TestHeavyHittersTable4Stats(t *testing.T) {
	topo := tinyTopo(t)
	hh := NewHeavyHitters(topo, 0, LevelFlow, netsim.Millisecond)
	// Bin 0: one dominant flow (600 of 1000 bytes) → HH set of size 1.
	hh.Packet(mk(topo, 0, 1, 0, 600, 10, 80, 0))
	hh.Packet(mk(topo, 0, 2, 100, 250, 11, 80, 0))
	hh.Packet(mk(topo, 0, 3, 200, 150, 12, 80, 0))
	hh.Finish()
	if n := hh.Counts().N(); n != 1 {
		t.Fatalf("bins = %d", n)
	}
	if c := hh.Counts().Quantile(0.5); c != 1 {
		t.Fatalf("HH count %v, want 1", c)
	}
	// 600 bytes in 1 ms = 4.8 Mbps
	if r := hh.Rates().Quantile(0.5); math.Abs(r-4.8) > 1e-9 {
		t.Fatalf("HH rate %v Mbps", r)
	}
}

func TestHeavyHittersPersistence(t *testing.T) {
	topo := tinyTopo(t)
	hh := NewHeavyHitters(topo, 0, LevelFlow, netsim.Millisecond)
	// Flow A heavy in bins 0 and 1 → persistence 100%.
	hh.Packet(mk(topo, 0, 1, 0, 900, 10, 80, 0))
	hh.Packet(mk(topo, 0, 2, 100, 100, 11, 80, 0))
	hh.Packet(mk(topo, 0, 1, int64(netsim.Millisecond), 900, 10, 80, 0))
	hh.Packet(mk(topo, 0, 2, int64(netsim.Millisecond)+100, 100, 11, 80, 0))
	hh.Finish()
	if p := hh.Persistence(); p.N() != 1 || p.Quantile(0.5) != 100 {
		t.Fatalf("persistence %v (n=%d)", p.Quantile(0.5), p.N())
	}

	// Disjoint heavy hitters across bins → persistence 0%.
	hh2 := NewHeavyHitters(topo, 0, LevelFlow, netsim.Millisecond)
	hh2.Packet(mk(topo, 0, 1, 0, 900, 10, 80, 0))
	hh2.Packet(mk(topo, 0, 2, int64(netsim.Millisecond), 900, 11, 80, 0))
	hh2.Finish()
	if p := hh2.Persistence(); p.N() != 1 || p.Quantile(0.5) != 0 {
		t.Fatalf("disjoint persistence %v", p.Quantile(0.5))
	}
}

func TestHeavyHittersRackAggregation(t *testing.T) {
	topo := tinyTopo(t)
	// Two hosts in the same destination rack: at rack level one key.
	rack := topo.Racks[topo.HostRack(0)]
	_ = rack
	h5, h6 := topology.HostID(5), topology.HostID(6)
	if topo.HostRack(h5) != topo.HostRack(h6) {
		// find two same-rack hosts distinct from 0
		found := false
		for _, r := range topo.Racks {
			if int(r.NumHosts) >= 2 && r.Host(0) != 0 {
				h5, h6 = r.Host(0), r.Host(1)
				found = true
				break
			}
		}
		if !found {
			t.Skip("no suitable rack")
		}
	}
	hh := NewHeavyHitters(topo, 0, LevelRack, netsim.Millisecond)
	hh.Packet(mk(topo, 0, h5, 0, 500, 10, 80, 0))
	hh.Packet(mk(topo, 0, h6, 100, 500, 11, 80, 0))
	hh.Finish()
	if c := hh.Counts().Quantile(0.5); c != 1 {
		t.Fatalf("rack-level HH count %v, want 1", c)
	}
}

func TestHeavyHittersIntersection(t *testing.T) {
	topo := tinyTopo(t)
	hh := NewHeavyHitters(topo, 0, LevelFlow, 100*netsim.Millisecond)
	// Flow A dominates the whole second; flow B is instantaneously heavy
	// in one subinterval only.
	for i := int64(0); i < 9; i++ {
		hh.Packet(mk(topo, 0, 1, i*int64(100*netsim.Millisecond), 1000, 10, 80, 0))
	}
	hh.Packet(mk(topo, 0, 2, 9*int64(100*netsim.Millisecond), 1000, 11, 80, 0))
	hh.Finish()
	in := hh.Intersection()
	if in.N() != 10 {
		t.Fatalf("intersection samples %d", in.N())
	}
	// Nine subintervals match (A is second-level heavy), one does not.
	if got := in.Mean(); math.Abs(got-90) > 1e-9 {
		t.Fatalf("mean intersection %v%%, want 90%%", got)
	}
}

func TestPacketSizes(t *testing.T) {
	topo := tinyTopo(t)
	ps := NewPacketSizes()
	ps.Packet(mk(topo, 0, 1, 0, 66, 1, 2, 0))
	ps.Packet(mk(topo, 0, 1, 0, 1514, 1, 2, 0))
	if ps.Sample().N() != 2 || ps.Sample().Quantile(1) != 1514 {
		t.Fatal("packet size sample wrong")
	}
}

func TestArrivalsSYNAndBins(t *testing.T) {
	topo := tinyTopo(t)
	a := NewArrivals(topo.Addr(0), 15*netsim.Millisecond, 100*netsim.Millisecond)
	// SYNs 2 ms apart.
	for i := int64(0); i < 5; i++ {
		a.Packet(mk(topo, 0, 1, i*2*int64(netsim.Millisecond), 74, uint16(i), 80, packet.FlagSYN))
	}
	// SYN-ACKs (inbound direction simulated as outbound here) must not
	// count as new flows.
	a.Packet(mk(topo, 0, 1, 1, 74, 99, 80, packet.FlagSYN|packet.FlagACK))
	if a.SYNCount() != 5 {
		t.Fatalf("SYN count %d", a.SYNCount())
	}
	gaps := a.SYNInterarrivalsMicros()
	if gaps.N() != 4 || math.Abs(gaps.Median()-2000) > 1e-9 {
		t.Fatalf("gap median %v µs", gaps.Median())
	}
	if got := a.Bins(15 * netsim.Millisecond); len(got) == 0 {
		t.Fatal("no bins")
	}
}

func TestOnOffScore(t *testing.T) {
	topo := tinyTopo(t)
	a := NewArrivals(topo.Addr(0), 10*netsim.Millisecond)
	// Continuous arrivals: every 10-ms bin occupied (offset from the
	// exact boundary to avoid float rounding at bin edges).
	for i := int64(0); i < 100; i++ {
		at := i*int64(10*netsim.Millisecond) + int64(netsim.Millisecond)
		a.Packet(mk(topo, 0, 1, at, 100, 1, 2, 0))
	}
	if s := a.OnOffScore(10 * netsim.Millisecond); s != 0 {
		t.Fatalf("continuous traffic on/off score %v", s)
	}

	b := NewArrivals(topo.Addr(0), 10*netsim.Millisecond)
	// Bursty: packets only in every 10th bin.
	for i := int64(0); i < 10; i++ {
		b.Packet(mk(topo, 0, 1, i*int64(100*netsim.Millisecond), 100, 1, 2, 0))
	}
	if s := b.OnOffScore(10 * netsim.Millisecond); s < 0.8 {
		t.Fatalf("on/off traffic score %v, want ≥0.8", s)
	}
}

func TestConcurrencyWindows(t *testing.T) {
	topo := tinyTopo(t)
	c := NewConcurrency(topo, 0, ConcurrencyWindow)
	// Window 0: three racks, one dominant.
	clusterHosts := topo.Clusters[topo.HostCluster(0)].Racks
	h1 := topo.Racks[clusterHosts[1]].Host(0)
	h2 := topo.Racks[clusterHosts[2]].Host(0)
	h3 := topo.Racks[clusterHosts[3]].Host(0)
	c.Packet(mk(topo, 0, h1, 0, 800, 1, 2, 0))
	c.Packet(mk(topo, 0, h2, 100, 100, 1, 2, 0))
	c.Packet(mk(topo, 0, h3, 200, 100, 1, 2, 0))
	c.Finish()
	if n := c.RacksAll().Quantile(0.5); n != 3 {
		t.Fatalf("racks per window %v", n)
	}
	if n := c.Racks(topology.IntraCluster).Quantile(0.5); n != 3 {
		t.Fatalf("intra-cluster racks %v", n)
	}
	if n := c.HHRacksAll().Quantile(0.5); n != 1 {
		t.Fatalf("hh racks %v, want 1", n)
	}
	if f := c.Flows().Quantile(0.5); f != 3 {
		t.Fatalf("concurrent flows %v", f)
	}
	if h := c.Hosts().Quantile(0.5); h != 3 {
		t.Fatalf("concurrent hosts %v", h)
	}
}

func TestRateSeriesStability(t *testing.T) {
	topo := tinyTopo(t)
	rs := NewRateSeries(topo, 0)
	// Steady rack: 1000 B/s for 10 s to one rack; bursty to another.
	cluster := topo.Clusters[topo.HostCluster(0)]
	steady := topo.Racks[cluster.Racks[1]].Host(0)
	bursty := topo.Racks[cluster.Racks[2]].Host(0)
	for s := int64(0); s < 10; s++ {
		rs.Packet(mk(topo, 0, steady, s*int64(netsim.Second), 1000, 1, 2, 0))
	}
	rs.Packet(mk(topo, 0, bursty, 0, 100, 1, 2, 0))
	rs.Packet(mk(topo, 0, bursty, int64(netsim.Second), 10000, 1, 2, 0))

	if rs.Racks() != 2 {
		t.Fatalf("racks %d", rs.Racks())
	}
	if f := rs.FracWithinFactor(2); f < 0.8 {
		t.Fatalf("frac within 2x = %v", f)
	}
	cdf := rs.StabilityCDF()
	if cdf.N() == 0 {
		t.Fatal("empty stability CDF")
	}
	// The steady rack contributes values exactly 1.0.
	if cdf.Quantile(0.5) != 1 {
		t.Fatalf("median stability %v", cdf.Quantile(0.5))
	}
	if rs.SignificantChangeFrac() <= 0 {
		t.Fatal("bursty rack should register significant change")
	}
}

func TestBufferStatsPerSecond(t *testing.T) {
	b := NewBufferStats(1000)
	// Second 0: samples 100..500; second 1: constant 900.
	for i := int64(0); i < 5; i++ {
		b.Sample(i*200*int64(netsim.Millisecond), (i+1)*100)
	}
	b.Sample(int64(netsim.Second)+1, 900)
	b.Finish()
	if len(b.Median()) != 2 || len(b.Max()) != 2 {
		t.Fatalf("seconds: %d/%d", len(b.Median()), len(b.Max()))
	}
	if math.Abs(b.Median()[0]-0.3) > 1e-9 || math.Abs(b.Max()[0]-0.5) > 1e-9 {
		t.Fatalf("second 0: med %v max %v", b.Median()[0], b.Max()[0])
	}
	if math.Abs(b.Max()[1]-0.9) > 1e-9 {
		t.Fatalf("second 1 max %v", b.Max()[1])
	}
}

func TestLevelString(t *testing.T) {
	if LevelFlow.String() != "Flows" || LevelHost.String() != "Hosts" || LevelRack.String() != "Racks" {
		t.Fatal("level strings wrong")
	}
}

func TestTrainsDetection(t *testing.T) {
	topo := tinyTopo(t)
	tr := NewTrains(topo.Addr(0), netsim.Millisecond)
	// Train of 3 to host 1, then a destination switch, then a gap break.
	tr.Packet(mk(topo, 0, 1, 0, 100, 1, 2, 0))
	tr.Packet(mk(topo, 0, 1, 100, 100, 1, 2, 0))
	tr.Packet(mk(topo, 0, 1, 200, 100, 1, 2, 0))
	tr.Packet(mk(topo, 0, 2, 300, 100, 1, 2, 0))                              // dst switch: run of 3 closed
	tr.Packet(mk(topo, 0, 2, 300+int64(10*netsim.Millisecond), 100, 1, 2, 0)) // gap: run of 1 closed
	tr.Finish()

	lengths := tr.Lengths()
	if lengths.N() != 3 {
		t.Fatalf("trains %d, want 3", lengths.N())
	}
	if lengths.Quantile(1) != 3 {
		t.Fatalf("longest train %v, want 3", lengths.Quantile(1))
	}
	if lengths.Quantile(0) != 1 {
		t.Fatalf("shortest train %v, want 1", lengths.Quantile(0))
	}
}

func TestTrainsIgnoresInbound(t *testing.T) {
	topo := tinyTopo(t)
	tr := NewTrains(topo.Addr(0), netsim.Millisecond)
	tr.Packet(mk(topo, 1, 0, 0, 100, 1, 2, 0)) // inbound
	tr.Finish()
	if tr.Lengths().N() != 0 {
		t.Fatal("inbound packet formed a train")
	}
}

func TestTrainsPanicsOnZeroGap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero gap accepted")
		}
	}()
	NewTrains(0, 0)
}

func TestHeavyHitterInvariantsProperty(t *testing.T) {
	// Property: for random traffic, every persistence and intersection
	// value lies in [0,100], HH counts are at least 1 per non-empty bin,
	// and rates are positive.
	topo := tinyTopo(t)
	r := rng.New(99)
	err := quick.Check(func(seed uint64) bool {
		hh := NewHeavyHitters(topo, 0, LevelFlow, netsim.Millisecond)
		n := int(seed%200) + 20
		for i := 0; i < n; i++ {
			dst := topology.HostID(1 + r.Intn(topo.NumHosts()-1))
			at := int64(r.Intn(20)) * int64(netsim.Millisecond) / 4
			hh.Packet(mk(topo, 0, dst, at, uint32(64+r.Intn(1400)), uint16(r.Intn(100)), 80, 0))
		}
		hh.Finish()
		for _, v := range hh.Persistence().Values() {
			if v < 0 || v > 100 {
				return false
			}
		}
		for _, v := range hh.Intersection().Values() {
			if v < 0 || v > 100 {
				return false
			}
		}
		for _, v := range hh.Counts().Values() {
			if v < 1 {
				return false
			}
		}
		for _, v := range hh.Rates().Values() {
			if v <= 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlowAssemblyConservesBytesProperty(t *testing.T) {
	// Property: total bytes across assembled flows equals total bytes fed.
	topo := tinyTopo(t)
	r := rng.New(123)
	err := quick.Check(func(seed uint64) bool {
		fl := NewFlows(topo, 0)
		var total int64
		n := int(seed%300) + 1
		for i := 0; i < n; i++ {
			size := uint32(64 + r.Intn(1450))
			dst := topology.HostID(1 + r.Intn(topo.NumHosts()-1))
			fl.Packet(mk(topo, 0, dst, int64(i)*1000, size, uint16(r.Intn(50)), 80, 0))
			total += int64(size)
		}
		var got int64
		for _, f := range fl.All() {
			got += f.Bytes
		}
		return got == total
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrencyBoundsProperty(t *testing.T) {
	// Property: heavy-hitter racks never exceed total racks per window,
	// and hosts never exceed flows.
	topo := tinyTopo(t)
	r := rng.New(321)
	err := quick.Check(func(seed uint64) bool {
		c := NewConcurrency(topo, 0, ConcurrencyWindow)
		n := int(seed%500) + 10
		for i := 0; i < n; i++ {
			dst := topology.HostID(1 + r.Intn(topo.NumHosts()-1))
			at := int64(r.Intn(50)) * int64(netsim.Millisecond)
			c.Packet(mk(topo, 0, dst, at, 200, uint16(r.Intn(30)), 80, 0))
		}
		c.Finish()
		hh, all := c.HHRacksAll().Values(), c.RacksAll().Values()
		if len(hh) != len(all) {
			return false
		}
		for i := range hh {
			if hh[i] > all[i] {
				return false
			}
		}
		hosts, flows := c.Hosts().Values(), c.Flows().Values()
		for i := range hosts {
			if hosts[i] > flows[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
