package analysis

import (
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// RateSeries tracks a monitored host's outbound bytes per destination
// rack per second — the substrate of Figure 8: per-second rate CDFs
// (8a/8b) and per-rack stability relative to the rack's median (8c), plus
// the Benson-style "significant change" test of §5.2.
type RateSeries struct {
	topo    *topology.Topology
	addr    packet.Addr
	perRack openhash.Table[*stats.TimeSeries] // keyed by destination rack

	// Filter, when set, restricts tracking to matching destinations.
	// Figure 8b/8c consider only the cache follower's response traffic
	// toward Web-server racks; set Filter before feeding packets.
	Filter func(dst topology.HostID) bool
}

// NewRateSeries creates a per-destination-rack rate tracker for host.
func NewRateSeries(topo *topology.Topology, host topology.HostID) *RateSeries {
	return &RateSeries{
		topo: topo,
		addr: topo.Addr(host),
	}
}

// Packet implements the collector interface.
func (rs *RateSeries) Packet(h packet.Header) {
	if h.Key.Src != rs.addr {
		return
	}
	dst, ok := rs.topo.HostByAddr(h.Key.Dst)
	if !ok {
		return
	}
	if rs.Filter != nil && !rs.Filter(dst) {
		return
	}
	slot := rs.perRack.Slot(uint64(rs.topo.HostRack(dst)))
	if *slot == nil {
		*slot = stats.NewTimeSeries(0, 1.0)
	}
	(*slot).Add(float64(h.Time)/float64(netsim.Second), float64(h.Size))
}

// Packets implements the batch collector interface.
func (rs *RateSeries) Packets(hs []packet.Header) {
	for _, h := range hs {
		rs.Packet(h)
	}
}

// Racks returns the number of destination racks observed.
func (rs *RateSeries) Racks() int { return rs.perRack.Len() }

// seconds returns the number of whole seconds covered.
func (rs *RateSeries) seconds() int {
	n := 0
	rs.perRack.Range(func(_ uint64, ts **stats.TimeSeries) {
		if len((*ts).Bins()) > n {
			n = len((*ts).Bins())
		}
	})
	return n
}

// SecondCDF returns the distribution of per-rack rates (KB/s) within
// second s — one curve of Fig. 8a/8b. Racks silent in that second are
// excluded, as a flow-rate CDF only covers active flows.
func (rs *RateSeries) SecondCDF(s int) *stats.Sample {
	out := stats.NewSample(rs.perRack.Len())
	rs.perRack.Range(func(_ uint64, ts **stats.TimeSeries) {
		bins := (*ts).Bins()
		if s < len(bins) && bins[s] > 0 {
			out.Add(bins[s] / 1024)
		}
	})
	return out
}

// Seconds returns the number of seconds available to SecondCDF.
func (rs *RateSeries) Seconds() int { return rs.seconds() }

// SpreadAcrossSeconds summarizes how similar one second's CDF is to the
// next: for each second, the p90/p10 ratio of per-rack rates; stable
// load-balanced traffic (cache) gives small, consistent ratios while
// Hadoop spans orders of magnitude (§5.2).
func (rs *RateSeries) SpreadAcrossSeconds() *stats.Sample {
	n := rs.seconds()
	out := stats.NewSample(n)
	for s := 0; s < n; s++ {
		cdf := rs.SecondCDF(s)
		if cdf.N() < 2 {
			continue
		}
		p10, p90 := cdf.Quantile(0.1), cdf.Quantile(0.9)
		if p10 > 0 {
			out.Add(p90 / p10)
		}
	}
	return out
}

// StabilityCDF returns, across all (rack, second) pairs, the rate
// normalized to that rack's median rate — Fig. 8c. A near-vertical CDF
// about 1.0 is the load-balanced cache pattern.
func (rs *RateSeries) StabilityCDF() *stats.Sample {
	out := stats.NewSample(0)
	rs.perRack.Range(func(_ uint64, ts **stats.TimeSeries) {
		bins := (*ts).Bins()
		med := stats.NewSample(len(bins))
		for _, v := range bins {
			if v > 0 {
				med.Add(v)
			}
		}
		if med.N() < 2 {
			return
		}
		m := med.Median()
		if m <= 0 {
			return
		}
		for _, v := range bins {
			if v > 0 {
				out.Add(v / m)
			}
		}
	})
	return out
}

// FracWithinFactor returns the fraction of active (rack, second) samples
// whose rate is within a multiplicative factor of the rack median — §5.2
// reports ≈90% within 2× for cache.
func (rs *RateSeries) FracWithinFactor(factor float64) float64 {
	cdf := rs.StabilityCDF()
	if cdf.N() == 0 {
		return 0
	}
	within := 0
	for _, v := range cdf.Values() {
		if v >= 1/factor && v <= factor {
			within++
		}
	}
	return float64(within) / float64(cdf.N())
}

// SignificantChangeFrac applies Benson et al.'s 20% deviation cutoff:
// the fraction of consecutive-second pairs where a rack's rate changes by
// more than 20% (§5.2 reports the median cache flow changes significantly
// in only 45% of 1-second intervals).
func (rs *RateSeries) SignificantChangeFrac() float64 {
	changed, total := 0, 0
	rs.perRack.Range(func(_ uint64, ts **stats.TimeSeries) {
		bins := (*ts).Bins()
		for i := 1; i < len(bins); i++ {
			if bins[i-1] == 0 {
				continue
			}
			total++
			dev := bins[i]/bins[i-1] - 1
			if dev > 0.2 || dev < -0.2 {
				changed++
			}
		}
	})
	if total == 0 {
		return 0
	}
	return float64(changed) / float64(total)
}
