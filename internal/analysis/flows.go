// Package analysis implements the paper's measurement analyses as
// streaming consumers of packet-header traces and Fbflow datasets: flow
// assembly and size/duration distributions (§5.1, Figs. 6–9), locality
// breakdowns (§4.2, Fig. 4, Table 3), heavy-hitter dynamics (§5.3,
// Table 4, Figs. 10–11), packet sizes and arrival processes (§6.1–6.2,
// Figs. 12–14), switch buffer statistics (§6.3, Fig. 15), concurrent-flow
// windows (§6.4, Figs. 16–17), and tiered utilization (§4.1).
//
// Consumers implement the same Packet(packet.Header) method as the
// collection layer, so a generator can feed any number of analyses,
// a mirror trace file, and an Fbflow agent in one pass.
package analysis

import (
	"sort"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/openhash"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// Level selects the aggregation granularity of flow-oriented analyses:
// the paper evaluates 5-tuple flows, destination hosts, and destination
// racks (§5.3).
type Level int

// Aggregation levels.
const (
	LevelFlow Level = iota
	LevelHost
	LevelRack
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelFlow:
		return "Flows"
	case LevelHost:
		return "Hosts"
	case LevelRack:
		return "Racks"
	default:
		return "Level?"
	}
}

// Flow is one assembled 5-tuple flow observed at the monitored host.
type Flow struct {
	Key      packet.FlowKey
	Start    netsim.Time
	End      netsim.Time
	Bytes    int64
	Packets  int64
	SawSYN   bool
	Locality topology.Locality
	Outbound bool // first packet left the monitored host
}

// Duration returns the observed flow duration (capped by the capture).
func (f *Flow) Duration() netsim.Time { return f.End - f.Start }

// Flows assembles 5-tuple flows from a monitored host's bidirectional
// trace. Both directions of a connection are merged under the
// host-outbound orientation of the key, matching how the paper reports
// per-flow sizes at a monitored server.
//
// Flow state lives in a dense slab indexed through an open-addressing
// table on packed uint64 keys, so the per-packet hot path does one
// integer-keyed probe and no allocation. Packets whose oriented key
// cannot be packed (a foreign trace where neither address is the
// monitored host, or an address above 2^31) take a spill map, keeping
// the assembler correct on arbitrary input.
type Flows struct {
	topo  *topology.Topology
	host  topology.HostID
	addr  packet.Addr
	idx   openhash.Table[int32] // packed key -> slab index + 1
	slab  []Flow
	spill map[packet.FlowKey]*Flow // unpackable keys; nil until needed
}

// NewFlows creates a flow assembler for the monitored host.
func NewFlows(topo *topology.Topology, host topology.HostID) *Flows {
	return &Flows{
		topo: topo,
		host: host,
		addr: topo.Addr(host),
	}
}

// Packet implements the collector interface.
func (fl *Flows) Packet(h packet.Header) { fl.packet(h) }

// Packets implements the batch collector interface.
func (fl *Flows) Packets(hs []packet.Header) {
	for _, h := range hs {
		fl.packet(h)
	}
}

func (fl *Flows) packet(h packet.Header) {
	key := h.Key
	outbound := key.Src == fl.addr
	if !outbound {
		key = key.Reverse()
	}
	var f *Flow
	if key.Src == fl.addr && canPackAddr(key.Dst) {
		p := fl.idx.Slot(packHostFlowKey(key))
		if *p == 0 {
			fl.slab = append(fl.slab, fl.newFlow(key, h.Time, outbound))
			*p = int32(len(fl.slab))
		}
		f = &fl.slab[*p-1]
	} else {
		f = fl.spill[key]
		if f == nil {
			if fl.spill == nil {
				fl.spill = make(map[packet.FlowKey]*Flow)
			}
			nf := fl.newFlow(key, h.Time, outbound)
			f = &nf
			fl.spill[key] = f
		}
	}
	f.End = h.Time
	f.Bytes += int64(h.Size)
	f.Packets++
	if h.SYN() {
		f.SawSYN = true
	}
}

// newFlow initializes the record for a newly observed oriented key.
func (fl *Flows) newFlow(key packet.FlowKey, t netsim.Time, outbound bool) Flow {
	peer, ok := fl.topo.HostByAddr(key.Dst)
	loc := topology.InterDatacenter
	if ok {
		loc = fl.topo.Locality(fl.host, peer)
	}
	return Flow{Key: key, Start: t, Locality: loc, Outbound: outbound}
}

// each visits every assembled flow: slab flows in first-seen order, then
// any spilled flows.
func (fl *Flows) each(f func(*Flow)) {
	for i := range fl.slab {
		f(&fl.slab[i])
	}
	for _, sp := range fl.spill {
		f(sp)
	}
}

// All returns the assembled flows sorted by start time.
func (fl *Flows) All() []*Flow {
	out := make([]*Flow, 0, fl.Count())
	fl.each(func(f *Flow) { out = append(out, f) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

// Count returns the number of distinct flows.
func (fl *Flows) Count() int { return len(fl.slab) + len(fl.spill) }

// SizeCDF returns the flow size distribution in kilobytes, per locality
// tier and overall — Figure 6. Tiers with no flows are omitted.
func (fl *Flows) SizeCDF() (perLocality map[topology.Locality]*stats.Sample, all *stats.Sample) {
	perLocality = make(map[topology.Locality]*stats.Sample)
	all = stats.NewSample(fl.Count())
	fl.each(func(f *Flow) {
		kb := float64(f.Bytes) / 1024
		all.Add(kb)
		s, ok := perLocality[f.Locality]
		if !ok {
			s = stats.NewSample(0)
			perLocality[f.Locality] = s
		}
		s.Add(kb)
	})
	return perLocality, all
}

// DurationCDF returns the flow duration distribution in milliseconds,
// per locality tier and overall — Figure 7.
func (fl *Flows) DurationCDF() (perLocality map[topology.Locality]*stats.Sample, all *stats.Sample) {
	perLocality = make(map[topology.Locality]*stats.Sample)
	all = stats.NewSample(fl.Count())
	fl.each(func(f *Flow) {
		ms := float64(f.Duration()) / float64(netsim.Millisecond)
		all.Add(ms)
		s, ok := perLocality[f.Locality]
		if !ok {
			s = stats.NewSample(0)
			perLocality[f.Locality] = s
		}
		s.Add(ms)
	})
	return perLocality, all
}

// PerHostSizeCDF aggregates flow bytes by destination host and returns
// the per-host total size distribution in kilobytes — Figure 9, where
// load balancing collapses the wide 5-tuple distribution into a tight
// per-host one. The overall distribution and a per-locality split are
// both returned: the tight mode lives in the dominant locality tier
// (intra-cluster for a cache follower).
func (fl *Flows) PerHostSizeCDF() (perLocality map[topology.Locality]*stats.Sample, all *stats.Sample) {
	type hostAgg struct {
		bytes float64
		loc   topology.Locality
	}
	byHost := make(map[packet.Addr]*hostAgg)
	fl.each(func(f *Flow) {
		a, ok := byHost[f.Key.Dst]
		if !ok {
			a = &hostAgg{loc: f.Locality}
			byHost[f.Key.Dst] = a
		}
		a.bytes += float64(f.Bytes)
	})
	perLocality = make(map[topology.Locality]*stats.Sample)
	all = stats.NewSample(len(byHost))
	for _, a := range byHost {
		kb := a.bytes / 1024
		all.Add(kb)
		s, ok := perLocality[a.loc]
		if !ok {
			s = stats.NewSample(0)
			perLocality[a.loc] = s
		}
		s.Add(kb)
	}
	return perLocality, all
}

// PerHostSizeCDFForLocality is a convenience accessor for one tier of
// PerHostSizeCDF; it returns an empty sample when the tier is absent.
func (fl *Flows) PerHostSizeCDFForLocality(l topology.Locality) *stats.Sample {
	perLoc, _ := fl.PerHostSizeCDF()
	if s, ok := perLoc[l]; ok {
		return s
	}
	return stats.NewSample(0)
}
