package analysis

import (
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
)

// PacketSizes accumulates the on-wire packet size distribution of a
// monitored host's trace (both directions) — Figure 12.
type PacketSizes struct {
	sample *stats.Sample
}

// NewPacketSizes returns an empty accumulator.
func NewPacketSizes() *PacketSizes {
	return &PacketSizes{sample: stats.NewSample(0)}
}

// Packet implements the collector interface.
func (ps *PacketSizes) Packet(h packet.Header) { ps.sample.Add(float64(h.Size)) }

// Packets implements the batch collector interface.
func (ps *PacketSizes) Packets(hs []packet.Header) {
	for _, h := range hs {
		ps.sample.Add(float64(h.Size))
	}
}

// Sample returns the size distribution in bytes.
func (ps *PacketSizes) Sample() *stats.Sample { return ps.sample }

// Arrivals studies the packet arrival process of a monitored host's
// outbound traffic: binned counts at several widths (the Fig. 13 on/off
// test) and SYN interarrival times (Fig. 14).
type Arrivals struct {
	addr     packet.Addr
	binned   []arrivalBins // a handful of widths: a slice beats a map
	synTimes []netsim.Time
	lastSYN  netsim.Time
	synGaps  *stats.Sample
}

// arrivalBins is the count series at one bin width.
type arrivalBins struct {
	w  netsim.Time
	ts *stats.TimeSeries
}

// NewArrivals creates an arrival tracker binning outbound packets at each
// of the given widths.
func NewArrivals(addr packet.Addr, binWidths ...netsim.Time) *Arrivals {
	a := &Arrivals{
		addr:    addr,
		lastSYN: -1,
		synGaps: stats.NewSample(0),
	}
	for _, w := range binWidths {
		a.binned = append(a.binned, arrivalBins{w, stats.NewTimeSeries(0, float64(w)/float64(netsim.Second))})
	}
	return a
}

// Packet implements the collector interface.
func (a *Arrivals) Packet(h packet.Header) {
	if h.Key.Src != a.addr {
		return
	}
	sec := float64(h.Time) / float64(netsim.Second)
	for _, b := range a.binned {
		b.ts.Add(sec, 1)
	}
	if h.SYN() && h.Flags&packet.FlagACK == 0 {
		if a.lastSYN >= 0 {
			gap := h.Time - a.lastSYN
			a.synGaps.Add(float64(gap) / float64(netsim.Microsecond))
		}
		a.lastSYN = h.Time
		a.synTimes = append(a.synTimes, h.Time)
	}
}

// Packets implements the batch collector interface.
func (a *Arrivals) Packets(hs []packet.Header) {
	for _, h := range hs {
		a.Packet(h)
	}
}

// series returns the count series at the given width, or an empty series
// when the width was not configured.
func (a *Arrivals) series(w netsim.Time) *stats.TimeSeries {
	for _, b := range a.binned {
		if b.w == w {
			return b.ts
		}
	}
	return stats.NewTimeSeries(0, 1.0)
}

// Bins returns the packet-count series at the given width.
func (a *Arrivals) Bins(w netsim.Time) []float64 { return a.series(w).Bins() }

// SYNInterarrivalsMicros returns the SYN interarrival distribution in
// microseconds — Figure 14.
func (a *Arrivals) SYNInterarrivalsMicros() *stats.Sample { return a.synGaps }

// SYNCount returns the number of connection-opening SYNs observed.
func (a *Arrivals) SYNCount() int { return len(a.synTimes) }

// OnOffScore quantifies on/off behaviour at a bin width: the fraction of
// empty bins among bins between the first and last non-empty bin. Benson
// et al.'s on/off traffic leaves a large fraction of silent gaps; the
// paper finds Facebook hosts show continuous arrivals (Fig. 13), i.e. a
// score near zero.
func (a *Arrivals) OnOffScore(w netsim.Time) float64 {
	bins := a.series(w).Bins()
	first, last := -1, -1
	for i, v := range bins {
		if v > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || last <= first {
		return 0
	}
	empty := 0
	for i := first; i <= last; i++ {
		if bins[i] == 0 {
			empty++
		}
	}
	return float64(empty) / float64(last-first+1)
}

// OnOffScoreActive is OnOffScore restricted to active seconds — seconds
// whose packet count is at least half the median active second. For a
// Hadoop node this excludes whole quiet computation phases and asks the
// Fig. 13 question: during periods with traffic, do arrivals pause at the
// bin scale?
func (a *Arrivals) OnOffScoreActive(w netsim.Time) float64 {
	bins := a.series(w).Bins()
	perSec := int(netsim.Second / w)
	if perSec < 1 {
		perSec = 1
	}
	nSec := (len(bins) + perSec - 1) / perSec
	secCount := make([]float64, nSec)
	for i, v := range bins {
		secCount[i/perSec] += v
	}
	med := stats.NewSample(nSec)
	for _, c := range secCount {
		if c > 0 {
			med.Add(c)
		}
	}
	if med.N() == 0 {
		return 0
	}
	cut := med.Median() / 2
	var empty, total int
	for i, v := range bins {
		if secCount[i/perSec] < cut {
			continue
		}
		total++
		if v == 0 {
			empty++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(empty) / float64(total)
}
