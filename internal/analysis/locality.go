package analysis

import (
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// LocalitySeries bins a monitored host's outbound bytes per second by
// destination locality — the stacked per-second series of Figure 4.
type LocalitySeries struct {
	topo *topology.Topology
	host topology.HostID
	addr packet.Addr
	// bins is indexed directly by locality; SameHost stays nil (the
	// paper's Figure 4 has no same-host tier).
	bins [topology.InterDatacenter + 1]*stats.TimeSeries
}

// NewLocalitySeries creates the per-second locality series for host.
func NewLocalitySeries(topo *topology.Topology, host topology.HostID) *LocalitySeries {
	ls := &LocalitySeries{
		topo: topo,
		host: host,
		addr: topo.Addr(host),
	}
	for _, l := range topology.Localities {
		ls.bins[l] = stats.NewTimeSeries(0, 1.0)
	}
	return ls
}

// Packet implements the collector interface; only outbound packets count.
func (ls *LocalitySeries) Packet(h packet.Header) {
	if h.Key.Src != ls.addr {
		return
	}
	dst, ok := ls.topo.HostByAddr(h.Key.Dst)
	if !ok {
		return
	}
	loc := ls.topo.Locality(ls.host, dst)
	if loc == topology.SameHost {
		return
	}
	ls.bins[loc].Add(float64(h.Time)/float64(netsim.Second), float64(h.Size))
}

// Packets implements the batch collector interface.
func (ls *LocalitySeries) Packets(hs []packet.Header) {
	for _, h := range hs {
		ls.Packet(h)
	}
}

// Series returns the per-second byte series for one locality tier.
func (ls *LocalitySeries) Series(l topology.Locality) []float64 {
	return ls.bins[l].Bins()
}

// Share returns the overall byte fraction per locality tier.
func (ls *LocalitySeries) Share() map[topology.Locality]float64 {
	totals := make(map[topology.Locality]float64)
	grand := 0.0
	for _, l := range topology.Localities {
		for _, v := range ls.bins[l].Bins() {
			totals[l] += v
			grand += v
		}
	}
	if grand == 0 {
		return map[topology.Locality]float64{}
	}
	for l := range totals {
		totals[l] /= grand
	}
	return totals
}

// Stability returns the per-second coefficient of variation of each
// tier's share — low values are the "essentially flat and unchanging"
// pattern of §4.2. Seconds with no traffic are skipped; tiers carrying
// under 1% of bytes are omitted.
func (ls *LocalitySeries) Stability() map[topology.Locality]float64 {
	share := ls.Share()
	out := make(map[topology.Locality]float64)
	n := 0
	for _, l := range topology.Localities {
		if len(ls.bins[l].Bins()) > n {
			n = len(ls.bins[l].Bins())
		}
	}
	for l, frac := range share {
		if frac < 0.01 {
			continue
		}
		var m stats.Moments
		series := ls.bins[l].Bins()
		for i := 0; i < n; i++ {
			total := 0.0
			for _, lb := range topology.Localities {
				if bins := ls.bins[lb].Bins(); i < len(bins) {
					total += bins[i]
				}
			}
			if total == 0 {
				continue
			}
			v := 0.0
			if i < len(series) {
				v = series[i]
			}
			m.Add(v / total)
		}
		if m.Mean() > 0 {
			out[l] = m.Std() / m.Mean()
		}
	}
	return out
}

// ServiceMix accumulates a monitored host's outbound bytes by destination
// role — one row of Table 2.
type ServiceMix struct {
	topo  *topology.Topology
	addr  packet.Addr
	bytes [topology.RoleMisc + 1]float64 // indexed by destination role
	total float64
}

// NewServiceMix creates the Table 2 accumulator for host.
func NewServiceMix(topo *topology.Topology, host topology.HostID) *ServiceMix {
	return &ServiceMix{
		topo: topo,
		addr: topo.Addr(host),
	}
}

// Packet implements the collector interface.
func (sm *ServiceMix) Packet(h packet.Header) {
	if h.Key.Src != sm.addr {
		return
	}
	dst, ok := sm.topo.HostByAddr(h.Key.Dst)
	if !ok {
		return
	}
	sm.bytes[sm.topo.HostRole(dst)] += float64(h.Size)
	sm.total += float64(h.Size)
}

// Packets implements the batch collector interface.
func (sm *ServiceMix) Packets(hs []packet.Header) {
	for _, h := range hs {
		sm.Packet(h)
	}
}

// Share returns the outbound byte fraction per destination role; roles
// that received no bytes are absent, as in the Table 2 rendering.
func (sm *ServiceMix) Share() map[topology.Role]float64 {
	out := make(map[topology.Role]float64)
	if sm.total == 0 {
		return out
	}
	for r, b := range sm.bytes {
		if b != 0 {
			out[topology.Role(r)] = b / sm.total
		}
	}
	return out
}
