package core

import (
	"fmt"
	"sort"
	"strings"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// Degraded-mode experiments: re-run the paper's locality and heavy-hitter
// analyses over traffic that actually crossed a fabric with injected
// faults, instead of over the idealized mirror stream. The comparison is
// always against a baseline arm of the identical workload on a healthy
// fabric, so every difference is attributable to the fault scenario.
//
// The workload is the packet-level one Figure 15 uses — the mirror
// streams of every host in the monitored Web rack and the monitored cache
// rack — synthesized once per System and shared by all arms, which keeps
// the arms' offered load bit-identical and the experiment affordable.

// faultDrainGrace is how long the engine keeps running past the trace
// horizon so in-flight retransmissions can complete: the RTO backoff
// chain spans at most ~30 ms, so 200 ms drains every packet that can
// still be delivered.
const faultDrainGrace = 200 * netsim.Millisecond

// DegradedMetrics are the analyses of one arm, computed over delivered
// packets only.
type DegradedMetrics struct {
	DeliveredPkts  int64   `json:"delivered_pkts"`
	DeliveredBytes int64   `json:"delivered_bytes"`
	DeliveredFrac  float64 `json:"delivered_frac"` // of offered bytes
	// LocalityBytes is the delivered byte share per locality tier
	// (Table 3's cut, restricted to delivered traffic).
	LocalityBytes map[string]float64 `json:"locality_bytes"`
	// Heavy-hitter medians at the monitored Web host over delivered
	// traffic: rack- and flow-level counts per 1 ms bin (Table 4's cut).
	HHRackP50 float64 `json:"hh_rack_p50"`
	HHFlowP50 float64 `json:"hh_flow_p50"`
}

// DegradedResult is one fault scenario's degraded arm next to the shared
// healthy baseline, plus the fault layer's own accounting.
type DegradedResult struct {
	Scenario     string            `json:"scenario"`
	Seconds      int               `json:"seconds"`
	OfferedPkts  int64             `json:"offered_pkts"`
	OfferedBytes int64             `json:"offered_bytes"`
	Baseline     DegradedMetrics   `json:"baseline"`
	Degraded     DegradedMetrics   `json:"degraded"`
	Faults       netsim.FaultStats `json:"faults"`
}

// degradedSeconds sizes the packet-level fault runs: an eighth of the
// short trace, clamped to [2,4] seconds — long enough for every scenario's
// onset and recovery to land inside the run, short enough to keep seven
// packet-level arms cheap.
func (s *System) degradedSeconds() int {
	sec := s.Cfg.ShortTraceSec / 8
	if sec < 2 {
		sec = 2
	}
	if sec > 4 {
		sec = 4
	}
	return sec
}

// degradedHeaders synthesizes (once per System) the shared workload of
// every fault arm: the mirror streams of all hosts in the monitored Web
// and cache racks, merged in time order. Offered totals exclude loopback
// headers, which the fabric ignores.
func (s *System) degradedHeaders() []packet.Header {
	s.degradedOnce.Do(func() {
		sec := s.degradedSeconds()
		horizon := netsim.Time(sec) * netsim.Second
		webRack := s.Topo.HostRack(s.Monitored(topology.RoleWeb))
		cacheRack := s.Topo.HostRack(s.Monitored(topology.RoleCacheFollower))

		var hdrs []packet.Header
		collect := workload.CollectorFunc(func(h packet.Header) { hdrs = append(hdrs, h) })
		racks := []int{webRack, cacheRack}
		if webRack == cacheRack {
			racks = racks[:1]
		}
		for _, rack := range racks {
			for i := 0; i < int(s.Topo.Racks[rack].NumHosts); i++ {
				h := s.Topo.Racks[rack].Host(i)
				seed := s.Cfg.Seed ^ 0xfa17<<24 ^ uint64(h)<<8
				tr := services.NewTrace(s.Pick, h, seed, s.Cfg.Params, collect)
				tr.Run(horizon)
			}
		}
		sort.SliceStable(hdrs, func(i, j int) bool { return hdrs[i].Time < hdrs[j].Time })
		s.degradedHdrs = hdrs
		for _, h := range hdrs {
			if h.Key.Src == h.Key.Dst {
				continue
			}
			s.degradedOffPkts++
			s.degradedOffBytes += int64(h.Size)
		}
	})
	return s.degradedHdrs
}

// runDegradedArm injects the shared workload into a fresh fabric under
// one scenario (empty = healthy baseline) and computes the delivered-side
// analyses. disableReroute is the ablation arm: ECMP keeps its
// hash-preferred post even when that path is dead.
func (s *System) runDegradedArm(scenario string, disableReroute bool) (DegradedMetrics, netsim.FaultStats) {
	armName := scenario
	if armName == "" {
		armName = "baseline"
	}
	if disableReroute {
		armName += ":noreroute"
	}
	sp := s.Cfg.Obs.StartSpan("degraded:" + armName)
	defer sp.End()

	hdrs := s.degradedHeaders()
	horizon := netsim.Time(s.degradedSeconds()) * netsim.Second
	focus := s.Monitored(topology.RoleWeb)

	eng := &netsim.Engine{}
	fab := netsim.NewFabric(eng, s.Topo, netsim.DefaultFabricConfig())
	fab.DisableReroute = disableReroute
	if scenario != "" {
		sched, err := netsim.NewFaultSchedule(scenario, s.Topo, focus, s.Cfg.Seed, horizon)
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		fab.ApplyFaults(sched)
	}

	var delivered []packet.Header
	keep := func(hs []packet.Header) { delivered = append(delivered, hs...) }
	for id := 0; id < s.Topo.NumHosts(); id++ {
		fab.Sink(topology.HostID(id)).OnBatch = keep
	}
	for _, h := range hdrs {
		h := h
		eng.At(h.Time, func() { fab.Inject(h) })
	}
	runSpan := s.Cfg.Obs.StartSpan("netsim-run")
	eng.Run(horizon + faultDrainGrace)
	runSpan.End()
	for id := 0; id < s.Topo.NumHosts(); id++ {
		fab.Sink(topology.HostID(id)).Flush()
	}
	s.foldFabricStats(fab)

	// The delivered stream is ordered by delivery time; the analyses bin
	// by the header timestamp, so restore that order first.
	sort.SliceStable(delivered, func(i, j int) bool { return delivered[i].Time < delivered[j].Time })

	m := DegradedMetrics{LocalityBytes: map[string]float64{}}
	hhRack := analysis.NewHeavyHitters(s.Topo, focus, analysis.LevelRack, netsim.Millisecond)
	hhFlow := analysis.NewHeavyHitters(s.Topo, focus, analysis.LevelFlow, netsim.Millisecond)
	locBytes := make(map[topology.Locality]float64)
	for _, h := range delivered {
		m.DeliveredPkts++
		m.DeliveredBytes += int64(h.Size)
		src, srcOK := s.Topo.HostByAddr(h.Key.Src)
		dst, dstOK := s.Topo.HostByAddr(h.Key.Dst)
		if srcOK && dstOK {
			locBytes[s.Topo.Locality(src, dst)] += float64(h.Size)
		}
		hhRack.Packet(h)
		hhFlow.Packet(h)
	}
	hhRack.Finish()
	hhFlow.Finish()
	if s.degradedOffBytes > 0 {
		m.DeliveredFrac = float64(m.DeliveredBytes) / float64(s.degradedOffBytes)
	}
	for _, l := range topology.Localities {
		if m.DeliveredBytes > 0 {
			m.LocalityBytes[l.String()] = locBytes[l] / float64(m.DeliveredBytes)
		}
	}
	m.HHRackP50 = hhRack.Counts().Quantile(0.5)
	m.HHFlowP50 = hhFlow.Counts().Quantile(0.5)
	return m, fab.Faults()
}

// degradedBaseline runs (once per System) the healthy arm every scenario
// compares against.
func (s *System) degradedBaseline() DegradedMetrics {
	s.baselineOnce.Do(func() {
		s.baselineMetrics, _ = s.runDegradedArm("", false)
	})
	return s.baselineMetrics
}

// DegradedFor runs the degraded experiment for one named scenario.
func (s *System) DegradedFor(scenario string) *DegradedResult {
	base := s.degradedBaseline()
	deg, faults := s.runDegradedArm(scenario, false)
	s.degradedHeaders() // ensure offered totals are populated
	return &DegradedResult{
		Scenario:     scenario,
		Seconds:      s.degradedSeconds(),
		OfferedPkts:  s.degradedOffPkts,
		OfferedBytes: s.degradedOffBytes,
		Baseline:     base,
		Degraded:     deg,
		Faults:       faults,
	}
}

// Degraded runs (and memoizes) the degraded experiment for
// Config.FaultScenario; nil when no scenario is configured.
func (s *System) Degraded() *DegradedResult {
	if s.Cfg.FaultScenario == "" {
		return nil
	}
	s.faultOnce.Do(func() { s.faultRes = s.DegradedFor(s.Cfg.FaultScenario) })
	return s.faultRes
}

// DegradedScenarios runs the degraded experiment for every built-in
// scenario against the shared baseline.
func (s *System) DegradedScenarios() []*DegradedResult {
	var out []*DegradedResult
	for _, sc := range netsim.FaultScenarios() {
		out = append(out, s.DegradedFor(sc))
	}
	return out
}

// AblationFaultResilience is the 4-post Clos survivability ablation: the
// delivered byte fraction under csw-down with ECMP rerouting on
// (production: the hash re-applies over surviving posts) versus off
// (flows pinned to the dead post retransmit into it until lost).
func (s *System) AblationFaultResilience() *AblationResult {
	on, _ := s.runDegradedArm(netsim.ScenarioCSWDown, false)
	off, _ := s.runDegradedArm(netsim.ScenarioCSWDown, true)
	return &AblationResult{
		Name:           "ecmp-reroute",
		Metric:         "delivered byte frac under csw-down",
		On:             on.DeliveredFrac,
		Off:            off.DeliveredFrac,
		HigherIsBetter: true,
	}
}

// Render prints one scenario's comparison.
func (d *DegradedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %-10s (%ds, offered %d pkts): delivered %.4f of bytes (baseline %.4f)\n",
		d.Scenario, d.Seconds, d.OfferedPkts, d.Degraded.DeliveredFrac, d.Baseline.DeliveredFrac)
	fmt.Fprintf(&b, "  faults: events=%d recoveries=%d rerouted=%d pkts/%d B drops=%d retx=%d lost=%d (intra-rack %d)\n",
		d.Faults.FaultEvents, d.Faults.Recoveries, d.Faults.ReroutedPkts, d.Faults.ReroutedBytes,
		d.Faults.FaultDrops, d.Faults.Retransmits, d.Faults.LostPkts,
		d.Faults.LostByLocality[topology.IntraRack])
	fmt.Fprintf(&b, "  locality of delivered bytes:")
	for _, l := range topology.Localities {
		fmt.Fprintf(&b, " %s=%.3f", l, d.Degraded.LocalityBytes[l.String()])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  web HH per 1ms bin p50: racks %.1f (baseline %.1f), flows %.1f (baseline %.1f)\n",
		d.Degraded.HHRackP50, d.Baseline.HHRackP50, d.Degraded.HHFlowP50, d.Baseline.HHFlowP50)
	return b.String()
}

// RenderDegraded prints the scenario sweep.
func RenderDegraded(rs []*DegradedResult) string {
	var b strings.Builder
	b.WriteString("Degraded-mode sweep: paper analyses over delivered traffic under injected faults\n")
	for _, r := range rs {
		b.WriteString(r.Render())
	}
	return b.String()
}
