package core

import (
	"encoding/json"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
)

// Summary is the machine-readable digest of the full reproduction: the
// headline scalar of every table and figure, keyed the way EXPERIMENTS.md
// reports them. Marshal it to JSON for regression tracking across
// versions and seeds.
type Summary struct {
	Hosts int    `json:"hosts"`
	Seed  uint64 `json:"seed"`

	// Table 2: outbound share by destination, per monitored role.
	ServiceMix map[string]map[string]float64 `json:"service_mix"`

	// Table 3: locality shares and traffic shares by cluster type.
	LocalityAll  map[string]float64            `json:"locality_all"`
	LocalityByCT map[string]map[string]float64 `json:"locality_by_cluster_type"`
	TrafficShare map[string]float64            `json:"traffic_share"`

	// Table 4 and Figures 10–11 medians at flow/rack level.
	HHCountP50       map[string]float64 `json:"hh_count_p50"`
	HHPersistRack100 map[string]float64 `json:"hh_persist_rack_100ms"`
	HHPersistFlow1   map[string]float64 `json:"hh_persist_flow_1ms"`
	HHIntersectRack  map[string]float64 `json:"hh_intersect_rack_100ms"`

	// Figure 12/14 medians.
	PacketSizeP50 map[string]float64 `json:"packet_size_p50"`
	SYNGapP50Us   map[string]float64 `json:"syn_gap_p50_us"`

	// Figure 6/7 medians.
	FlowSizeP50KB map[string]float64 `json:"flow_size_p50_kb"`
	FlowDurP50Ms  map[string]float64 `json:"flow_dur_p50_ms"`

	// Figure 8/9 stability.
	CacheWithin2x   float64 `json:"cache_within_2x"`
	PerHostTightP90 float64 `json:"per_host_p90_over_p10"`

	// Figure 13 on/off contrast.
	OnOffFacebook float64 `json:"onoff_facebook"`
	OnOffBaseline float64 `json:"onoff_baseline"`

	// Figure 16/17 concurrency medians.
	ConcurrentRacksP50 map[string]float64 `json:"concurrent_racks_p50"`

	// §4.1.
	EdgeUtilMean float64 `json:"edge_util_mean"`
	DiurnalSwing float64 `json:"diurnal_swing"`

	// Figure 5 structure.
	HadoopDiag   float64 `json:"hadoop_matrix_diag"`
	FrontendDiag float64 `json:"frontend_matrix_diag"`

	// Fault injection digest, present only when Config.FaultScenario is
	// set.
	FaultInjection *FaultSummary `json:"fault_injection,omitempty"`

	// In-fabric telemetry digest, present only when Config.TraceSample is
	// positive.
	Telemetry *TelemetrySummary `json:"telemetry,omitempty"`
}

// TelemetrySummary digests the in-fabric telemetry experiment: path-
// record accounting, ToR queuing latency, and the Web/Hadoop occupancy
// contrast (peaks of the per-window quantile timelines).
type TelemetrySummary struct {
	SampledAttempts  int64   `json:"sampled_attempts"`
	SampledHops      int64   `json:"sampled_hops"`
	DeliveredFrac    float64 `json:"delivered_frac"`
	BufferDropFrac   float64 `json:"buffer_drop_frac"`
	RSWQDelayMeanUs  float64 `json:"rsw_qdelay_mean_us"`
	RSWQDelayP99Us   float64 `json:"rsw_qdelay_p99_us"`
	DeliverMeanUs    float64 `json:"deliver_mean_us"`
	WebOccP99Peak    float64 `json:"web_occ_p99_peak"`
	WebOccMaxPeak    float64 `json:"web_occ_max_peak"`
	HadoopOccP99Peak float64 `json:"hadoop_occ_p99_peak"`
	HadoopOccMaxPeak float64 `json:"hadoop_occ_max_peak"`
	HotspotPeakBytes int64   `json:"hotspot_peak_bytes"`
}

// FaultSummary digests the degraded-mode run of the configured fault
// scenario: delivery fractions against the healthy baseline plus the
// fault layer's packet accounting.
type FaultSummary struct {
	Scenario          string             `json:"scenario"`
	DeliveredFrac     float64            `json:"delivered_frac"`
	BaselineFrac      float64            `json:"baseline_delivered_frac"`
	ReroutedPkts      int64              `json:"rerouted_pkts"`
	ReroutedBytes     int64              `json:"rerouted_bytes"`
	Retransmits       int64              `json:"retransmits"`
	FaultDrops        int64              `json:"fault_drops"`
	LostPkts          int64              `json:"lost_pkts"`
	LostIntraRack     int64              `json:"lost_intra_rack"`
	LocalityDelivered map[string]float64 `json:"locality_delivered"`
}

// Summarize runs every experiment (reusing memoized bundles) and returns
// the digest. It prewarms the shared datasets through the parallel engine
// first; the per-experiment extraction below then reads memoized state.
// Output is bit-identical for any Config.Parallelism / Config.Taggers.
func (s *System) Summarize() *Summary {
	s.Prewarm()
	sum := &Summary{
		Hosts:              s.Topo.NumHosts(),
		Seed:               s.Cfg.Seed,
		ServiceMix:         map[string]map[string]float64{},
		LocalityAll:        map[string]float64{},
		LocalityByCT:       map[string]map[string]float64{},
		TrafficShare:       map[string]float64{},
		HHCountP50:         map[string]float64{},
		HHPersistRack100:   map[string]float64{},
		HHPersistFlow1:     map[string]float64{},
		HHIntersectRack:    map[string]float64{},
		PacketSizeP50:      map[string]float64{},
		SYNGapP50Us:        map[string]float64{},
		FlowSizeP50KB:      map[string]float64{},
		FlowDurP50Ms:       map[string]float64{},
		ConcurrentRacksP50: map[string]float64{},
	}

	t2 := s.Table2()
	for src, mix := range t2.Share {
		m := map[string]float64{}
		for dst, v := range mix {
			m[dst.String()] = v
		}
		sum.ServiceMix[src.String()] = m
	}

	t3 := s.Table3()
	for l, v := range t3.All {
		sum.LocalityAll[l.String()] = v
	}
	for ct, locs := range t3.Locality {
		m := map[string]float64{}
		for l, v := range locs {
			m[l.String()] = v
		}
		sum.LocalityByCT[ct.String()] = m
	}
	for ct, v := range t3.Share {
		sum.TrafficShare[ct.String()] = v
	}

	t4 := s.Table4()
	for _, r := range t4.Rows {
		if r.Level == analysis.LevelFlow {
			sum.HHCountP50[r.Role.String()] = r.NumP50
		}
	}

	hh := s.Figure10And11()
	for role, byLvl := range hh.Persistence {
		sum.HHPersistRack100[role.String()] = byLvl[analysis.LevelRack][100*netsim.Millisecond]
		sum.HHPersistFlow1[role.String()] = byLvl[analysis.LevelFlow][netsim.Millisecond]
	}
	for role, byLvl := range hh.Intersection {
		sum.HHIntersectRack[role.String()] = byLvl[analysis.LevelRack][100*netsim.Millisecond]
	}

	f12 := s.Figure12()
	for role, sample := range f12.Sizes {
		sum.PacketSizeP50[role.String()] = sample.Quantile(0.5)
	}
	f14 := s.Figure14()
	for role, sample := range f14.Gaps {
		sum.SYNGapP50Us[role.String()] = sample.Quantile(0.5)
	}
	f6 := s.Figure6()
	for role, sample := range f6.All {
		sum.FlowSizeP50KB[role.String()] = sample.Quantile(0.5)
	}
	f7 := s.Figure7()
	for role, sample := range f7.All {
		sum.FlowDurP50Ms[role.String()] = sample.Quantile(0.5)
	}

	f8 := s.Figure8()
	sum.CacheWithin2x = f8.CacheWithin2x
	f9 := s.Figure9()
	sum.PerHostTightP90 = f9.TightnessRatio

	f13 := s.Figure13()
	sum.OnOffFacebook = f13.FacebookScore15
	sum.OnOffBaseline = f13.BaselineScore15

	conc := s.Figure16And17()
	for role, sample := range conc.RacksAll {
		sum.ConcurrentRacksP50[role.String()] = sample.Quantile(0.5)
	}

	s41 := s.Section41()
	sum.EdgeUtilMean = s41.Tiers[netsim.TierHostRSW].Mean()
	sum.DiurnalSwing = s41.DiurnalSwing

	f5 := s.Figure5()
	sum.HadoopDiag = f5.HadoopDiag
	sum.FrontendDiag = f5.FrontendDiag

	if d := s.Degraded(); d != nil {
		sum.FaultInjection = &FaultSummary{
			Scenario:          d.Scenario,
			DeliveredFrac:     d.Degraded.DeliveredFrac,
			BaselineFrac:      d.Baseline.DeliveredFrac,
			ReroutedPkts:      d.Faults.ReroutedPkts,
			ReroutedBytes:     d.Faults.ReroutedBytes,
			Retransmits:       d.Faults.Retransmits,
			FaultDrops:        d.Faults.FaultDrops,
			LostPkts:          d.Faults.LostPkts,
			LostIntraRack:     d.Faults.LostByLocality[topology.IntraRack],
			LocalityDelivered: d.Degraded.LocalityBytes,
		}
	}

	if tel := s.Telemetry(); tel != nil {
		a := &tel.Agg
		rsw := &a.Tiers[telemetry.TierRSW]
		tsum := &TelemetrySummary{
			SampledAttempts: a.Sampled,
			SampledHops:     a.HopsTotal,
			DeliveredFrac:   a.DeliveredFrac(),
			RSWQDelayMeanUs: rsw.MeanQDelay() / 1e3,
			RSWQDelayP99Us:  rsw.QDelayQuantile(0.99) / 1e3,
			DeliverMeanUs:   a.MeanDeliverNs() / 1e3,
		}
		if a.Sampled > 0 {
			tsum.BufferDropFrac = float64(a.DropsByReason[telemetry.ReasonBufferDrop]) / float64(a.Sampled)
		}
		for i := range tel.Arms {
			arm := &tel.Arms[i]
			switch arm.Role {
			case topology.RoleWeb:
				tsum.WebOccP99Peak, tsum.WebOccMaxPeak = MaxOf(arm.OccP99), MaxOf(arm.OccMax)
			case topology.RoleHadoop:
				tsum.HadoopOccP99Peak, tsum.HadoopOccMaxPeak = MaxOf(arm.OccP99), MaxOf(arm.OccMax)
			}
		}
		if len(tel.Hotspots) > 0 {
			tsum.HotspotPeakBytes = tel.Hotspots[0].PeakBytes
		}
		sum.Telemetry = tsum
	}

	return sum
}

// JSON renders the summary as indented JSON.
func (sum *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(sum, "", "  ")
}
