package core

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fbdcnet/internal/obs/audit"
)

// auditLedger collects the fleet dataset under a fresh recorder and
// returns the canonical ledger.
func auditLedger(t *testing.T, cfg Config) []audit.Checkpoint {
	t.Helper()
	cfg.Audit = audit.New()
	sys := MustNewSystem(cfg)
	sys.FleetDataset()
	return cfg.Audit.Checkpoints()
}

// requireIdentical fails with the first divergence when two ledgers
// disagree.
func requireIdentical(t *testing.T, label string, a, b []audit.Checkpoint) {
	t.Helper()
	if d, diverged := audit.Diff(a, b); diverged {
		t.Fatalf("%s: ledgers diverge: %s", label, d)
	}
	if len(a) == 0 {
		t.Fatalf("%s: empty ledger", label)
	}
}

// TestAuditLedgerWorkerInvariance is the in-process half of the ledger
// contract: byte-identical checkpoints at 1, 2, and 8 tagger workers,
// in both sampling and matrix modes.
func TestAuditLedgerWorkerInvariance(t *testing.T) {
	for _, matrix := range []bool{false, true} {
		cfg := QuickConfig()
		cfg.FleetMatrix = matrix
		cfg.Taggers = 1
		want := auditLedger(t, cfg)
		for _, taggers := range []int{2, 8} {
			cfg.Taggers = taggers
			got := auditLedger(t, cfg)
			requireIdentical(t, fmt.Sprintf("matrix=%v taggers=%d", matrix, taggers), want, got)
		}
		if matrix {
			// Matrix mode checkpoints both stages per cell.
			var synth, collect int
			for _, cp := range want {
				switch cp.Stage {
				case audit.StageMatrixSynth:
					synth++
				case audit.StageFleetCollect:
					collect++
				}
			}
			if synth == 0 || synth != collect {
				t.Fatalf("matrix ledger has %d matrix-synth vs %d fleet-collect checkpoints", synth, collect)
			}
		}
	}
}

// TestAuditOnOffDigestParity is the observer-effect contract: enabling
// the flight recorder leaves the canonical fleet digest byte-identical.
func TestAuditOnOffDigestParity(t *testing.T) {
	cfg := QuickConfig()
	off := digestJSON(t, MustNewSystem(cfg))
	cfg.Audit = audit.New()
	on := digestJSON(t, MustNewSystem(cfg))
	if !bytes.Equal(off, on) {
		t.Fatalf("digest changed when auditing was enabled\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
	if cfg.Audit.Len() == 0 {
		t.Fatal("audit-on run recorded no checkpoints")
	}
}

// runDistributedAudit is runDistributed with the real process model for
// recorders: the aggregator owns the authoritative ledger, and every
// agent incarnation gets its own private recorder (as a separate
// process would), so nothing double-appends. Returns the aggregator's
// ledger and the coverage gaps.
func runDistributedAudit(t *testing.T, cfg Config, agents int, plan *AgentCrashPlan) ([]audit.Checkpoint, []CoverageGap) {
	t.Helper()
	cfg.Audit = audit.New()
	sys := MustNewSystem(cfg)
	addr := filepath.Join(t.TempDir(), "agg.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}

	agentErrs := make(chan error, agents)
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for inc := uint32(0); ; inc++ {
				acfg := cfg
				acfg.Audit = audit.New()
				asys := MustNewSystem(acfg)
				conn, err := DialFleetAgent("unix", addr, 5*time.Second)
				if err != nil {
					agentErrs <- err
					return
				}
				crashAfter := int64(-1)
				if plan != nil && plan.Agent == a && inc == 0 {
					crashAfter = plan.AfterTask
				}
				err = asys.RunFleetAgent(a, agents, inc, conn, crashAfter)
				conn.Close()
				if errors.Is(err, ErrPlannedCrash) {
					continue
				}
				if err != nil {
					agentErrs <- fmt.Errorf("agent %d: %w", a, err)
				}
				return
			}
		}(a)
	}

	ds, gaps, err := sys.ServeFleetAggregator(ln, agents, 10*time.Second)
	ln.Close()
	wg.Wait()
	close(agentErrs)
	for e := range agentErrs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !sys.InjectFleetDataset(ds, gaps) {
		t.Fatal("fleet dataset already memoized before injection")
	}
	return cfg.Audit.Checkpoints(), gaps
}

// TestAuditLedgerAgentInvariance is the distributed half of the ledger
// contract: the aggregator's ledger is identical to the in-process one
// at 1, 4, and 8 agents (8 agents on the tiny preset exercises empty
// shard ranges).
func TestAuditLedgerAgentInvariance(t *testing.T) {
	cfg := QuickConfig()
	want := auditLedger(t, cfg)
	for _, agents := range []int{1, 4, 8} {
		got, gaps := runDistributedAudit(t, cfg, agents, nil)
		if len(gaps) != 0 {
			t.Fatalf("%d agents: clean run reported %d gaps", agents, len(gaps))
		}
		requireIdentical(t, fmt.Sprintf("agents=%d", agents), want, got)
	}
}

// TestAuditDistributedCrashRecordsHoles kills one agent at its planned
// crash point (without restart coverage for the gapped cells) and
// checks the ledger records exactly the gapped cells as holes — and
// never hashes them.
func TestAuditDistributedCrashRecordsHoles(t *testing.T) {
	cfg := QuickConfig()
	agents := 2
	plan := MustNewSystem(cfg).PlanAgentCrash(agents)
	ledger, gaps := runDistributedAudit(t, cfg, agents, &plan)
	if len(gaps) == 0 {
		t.Skip("planned crash produced no coverage gap (restart caught up)")
	}
	gapped := map[[2]int]bool{}
	cells := 0
	for _, g := range gaps {
		for s := g.ShardLo; s < g.ShardHi; s++ {
			gapped[[2]int{g.Window, s}] = true
			cells++
		}
	}
	holes := 0
	for _, cp := range ledger {
		if cp.Hole {
			holes++
			if !gapped[[2]int{cp.Window, cp.Shard}] {
				t.Fatalf("hole at (%d,%d) is not a reported coverage gap", cp.Window, cp.Shard)
			}
			if cp.Sum != 0 || cp.Count != 0 {
				t.Fatalf("hole at (%d,%d) carries hash %016x count %d", cp.Window, cp.Shard, cp.Sum, cp.Count)
			}
			continue
		}
		if cp.Stage == audit.StageFleetCollect && gapped[[2]int{cp.Window, cp.Shard}] {
			t.Fatalf("gapped cell (%d,%d) was hashed instead of recorded as a hole", cp.Window, cp.Shard)
		}
	}
	if holes != cells {
		t.Fatalf("ledger has %d holes, coverage gaps span %d cells", holes, cells)
	}
	// The surviving cells must still match the clean run's hashes.
	clean := auditLedger(t, cfg)
	byKey := map[string]audit.Checkpoint{}
	for _, cp := range clean {
		byKey[fmt.Sprintf("%s/%d/%d", cp.Stage, cp.Window, cp.Shard)] = cp
	}
	for _, cp := range ledger {
		if cp.Hole {
			continue
		}
		want, ok := byKey[fmt.Sprintf("%s/%d/%d", cp.Stage, cp.Window, cp.Shard)]
		if !ok {
			t.Fatalf("crash-run checkpoint (%s %d,%d) absent from clean run", cp.Stage, cp.Window, cp.Shard)
		}
		if cp.Sum != want.Sum || cp.Count != want.Count {
			t.Fatalf("surviving cell (%s %d,%d) diverged from clean run: %016x/%d vs %016x/%d",
				cp.Stage, cp.Window, cp.Shard, cp.Sum, cp.Count, want.Sum, want.Count)
		}
	}
}

// TestAuditPerturbationNamesExactCell plants a ledger divergence at one
// fleet-collect cell and checks Diff names exactly that cell first —
// the contract cmd/digestdiff builds on.
func TestAuditPerturbationNamesExactCell(t *testing.T) {
	cfg := QuickConfig()
	clean := auditLedger(t, cfg)

	cfg.Audit = audit.New()
	cfg.Audit.Perturb(1, 2)
	sys := MustNewSystem(cfg)
	sys.FleetDataset()
	perturbed := cfg.Audit.Checkpoints()

	d, diverged := audit.Diff(clean, perturbed)
	if !diverged {
		t.Fatal("planted perturbation produced no divergence")
	}
	if d.Kind != "hash" || d.A.Stage != audit.StageFleetCollect || d.A.Window != 1 || d.A.Shard != 2 {
		t.Fatalf("first divergence = %s, want hash at fleet-collect (1,2)", d)
	}
	if d.Tainted != 1 {
		t.Fatalf("perturbation tainted %d checkpoints, want exactly 1", d.Tainted)
	}
	if !strings.Contains(d.String(), "window 1, shard 2") {
		t.Fatalf("divergence rendering %q does not name the cell", d.String())
	}
	// The perturbation is ledger-only: the experiment digest is untouched.
	if !bytes.Equal(digestJSON(t, sys), digestJSON(t, MustNewSystem(QuickConfig()))) {
		t.Fatal("planted perturbation leaked into the fleet digest")
	}
}

// TestAuditBisectCellScheduleStable runs the digestdiff -bisect probe on
// a healthy build: both arms must agree at any worker count.
func TestAuditBisectCellScheduleStable(t *testing.T) {
	cfg := QuickConfig()
	res, err := AuditBisectCell(cfg, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("cell (1,2) disagrees between 1 and %d workers: %016x/%d vs %016x/%d",
			res.Workers, res.One.Sum, res.One.Count, res.Many.Sum, res.Many.Count)
	}
	if res.One.Count == 0 {
		t.Fatal("bisect probe folded no records")
	}
	if _, err := AuditBisectCell(cfg, 0, 99999, 2); err == nil {
		t.Fatal("out-of-grid shard accepted")
	}
}

// TestConfigFromManifestMetaRoundTrip reconstructs a config from its
// own manifest metadata and checks the fields that shape datasets.
func TestConfigFromManifestMetaRoundTrip(t *testing.T) {
	cfg := QuickConfig()
	cfg.Seed = 77
	cfg.FleetMatrix = true
	cfg.SketchMode = true
	meta := cfg.ManifestMeta("test")
	got, err := ConfigFromManifestMeta(meta.Config)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != cfg.Scale || got.Seed != cfg.Seed ||
		got.FleetWindows != cfg.FleetWindows || got.FleetWindowSec != cfg.FleetWindowSec ||
		got.FleetSamples != cfg.FleetSamples || got.FleetMatrix != cfg.FleetMatrix ||
		got.SketchMode != cfg.SketchMode ||
		got.ShortTraceSec != cfg.ShortTraceSec || got.LongTraceSec != cfg.LongTraceSec {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, cfg)
	}
	if _, err := ConfigFromManifestMeta(map[string]any{"scale": "no-such-scale"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
	// Older manifests without the newer keys still resolve to defaults.
	if _, err := ConfigFromManifestMeta(map[string]any{}); err != nil {
		t.Fatal(err)
	}
}

// TestAgentMetricsAddrs covers the spawn-mode address table: derivation,
// collision detection, and port overflow.
func TestAgentMetricsAddrs(t *testing.T) {
	addrs, err := AgentMetricsAddrs("127.0.0.1:9090", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:9091", "127.0.0.1:9092", "127.0.0.1:9093"}
	for i, w := range want {
		if addrs[i] != w {
			t.Fatalf("agent %d addr = %q, want %q", i, addrs[i], w)
		}
	}
	// Each derived address must also match the per-agent derivation the
	// re-exec argument builders use.
	for a := range addrs {
		if one := AgentMetricsAddr("127.0.0.1:9090", a); one != addrs[a] {
			t.Fatalf("agent %d: table %q != single derivation %q", a, addrs[a], one)
		}
	}

	// Empty base: metrics disabled for every agent, no error.
	addrs, err = AgentMetricsAddrs("", 2)
	if err != nil || addrs[0] != "" || addrs[1] != "" {
		t.Fatalf("empty base: addrs=%v err=%v", addrs, err)
	}
	// Port 0: every agent gets a kernel-assigned port, no collision check.
	addrs, err = AgentMetricsAddrs("127.0.0.1:0", 2)
	if err != nil || addrs[0] != "127.0.0.1:0" || addrs[1] != "127.0.0.1:0" {
		t.Fatalf("port-0 base: addrs=%v err=%v", addrs, err)
	}

	// A derived address colliding with a reserved one fails the launch.
	if _, err := AgentMetricsAddrs("127.0.0.1:9090", 3, "127.0.0.1:9092"); err == nil {
		t.Fatal("collision with reserved address accepted")
	} else if !strings.Contains(err.Error(), "9092") {
		t.Fatalf("collision error %q does not name the address", err)
	}
	// Port overflow past 65535 fails with the overflowing agent named.
	if _, err := AgentMetricsAddrs("127.0.0.1:65534", 3); err == nil {
		t.Fatal("port overflow accepted")
	} else if !strings.Contains(err.Error(), "65535") {
		t.Fatalf("overflow error %q does not explain the limit", err)
	}
	// Unparsable bases are errors here (unlike AgentMetricsAddr, which
	// degrades to "": spawn mode wants the loud failure).
	if _, err := AgentMetricsAddrs("not-an-addr", 2); err == nil {
		t.Fatal("unparsable base accepted")
	}
}

// TestSuiteSectionCheckpoints runs one suite section under the recorder
// and checks its rendered output lands as a suite checkpoint.
func TestSuiteSectionCheckpoints(t *testing.T) {
	cfg := QuickConfig()
	cfg.Audit = audit.New()
	sys := MustNewSystem(cfg)
	var buf bytes.Buffer
	if n := WriteSuite(&buf, sys, "table3"); n != 1 {
		t.Fatalf("filter ran %d sections, want 1", n)
	}
	found := false
	for _, cp := range cfg.Audit.Checkpoints() {
		if cp.Stage == "suite:table3" {
			found = true
			if cp.Count != 1 || cp.Sum == 0 {
				t.Fatalf("suite checkpoint = %+v, want one folded output item", cp)
			}
		}
	}
	if !found {
		t.Fatal("suite:table3 checkpoint missing from ledger")
	}
}
