//go:build !race

package core

// raceEnabled reports whether the binary was built with -race. The heavy
// obs-perturbation check skips itself under the race detector — two
// suite runs per worker count would multiply past CI's timeout — and
// runs in the non-race coverage job instead.
const raceEnabled = false
