package core

import (
	"strings"
	"testing"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/topology"
)

// sys memoizes one quick system across the package's tests: experiments
// share trace bundles and the fleet dataset exactly as the real harness
// does.
var testSys *System

func quickSys(t *testing.T) *System {
	t.Helper()
	if testSys == nil {
		testSys = MustNewSystem(QuickConfig())
	}
	return testSys
}

func TestNewSystemZeroConfig(t *testing.T) {
	// The zero config resolves to the tiny preset, which must be a valid
	// topology for every service model.
	s, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo.NumHosts() == 0 {
		t.Fatal("empty fleet")
	}
}

func TestTable2Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Table2()
	web := res.Share[topology.RoleWeb]
	if web[topology.RoleCacheFollower] < 0.4 {
		t.Errorf("web→cache share %.2f", web[topology.RoleCacheFollower])
	}
	hadoop := res.Share[topology.RoleHadoop]
	if hadoop[topology.RoleHadoop] < 0.99 {
		t.Errorf("hadoop→hadoop share %.3f", hadoop[topology.RoleHadoop])
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Error("render missing title")
	}
}

func TestTable3Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Table3()
	// Headline finding: traffic is neither rack-local nor all-to-all;
	// fleet-wide, intra-cluster dominates and intra-rack is small.
	if res.All[topology.IntraCluster] < 0.35 {
		t.Errorf("fleet intra-cluster %.2f, want dominant", res.All[topology.IntraCluster])
	}
	if res.All[topology.IntraRack] > 0.30 {
		t.Errorf("fleet intra-rack %.2f, want small", res.All[topology.IntraRack])
	}
	// Hadoop clusters are the most rack-local; cache clusters the least.
	h := res.Locality[topology.ClusterHadoop][topology.IntraRack]
	c := res.Locality[topology.ClusterCache][topology.IntraRack]
	if h <= c {
		t.Errorf("hadoop rack share (%.3f) should exceed cache's (%.3f)", h, c)
	}
	// DB clusters are the most evenly spread across cluster/DC/inter-DC.
	db := res.Locality[topology.ClusterDB]
	if db[topology.InterDatacenter] < 0.15 {
		t.Errorf("DB inter-DC %.2f, want substantial", db[topology.InterDatacenter])
	}
	sum := 0.0
	for _, ct := range topology.ClusterTypes {
		sum += res.Share[ct]
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("shares sum to %.3f", sum)
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Error("render missing title")
	}
}

func TestTable4Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Table4()
	if len(res.Rows) != len(MonitoredRoles)*3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	byKey := make(map[string]Table4Row)
	for _, r := range res.Rows {
		byKey[r.Role.String()+"/"+r.Level.String()] = r
		if r.NumP50 < 1 {
			t.Errorf("%v/%v median HH count %.1f < 1", r.Role, r.Level, r.NumP50)
		}
		if r.NumP10 > r.NumP50 || r.NumP50 > r.NumP90 {
			t.Errorf("%v/%v percentiles not ordered", r.Role, r.Level)
		}
	}
	// Hadoop has very few heavy hitters (1–3 in the paper).
	if h := byKey["Hadoop/Flows"]; h.NumP50 > 6 {
		t.Errorf("hadoop flow HH median %.0f, want small", h.NumP50)
	}
	// Cache follower has the most (8–35 in the paper).
	if byKey["Cache-f/Flows"].NumP50 <= byKey["Hadoop/Flows"].NumP50 {
		t.Error("cache follower should have more heavy hitters than hadoop")
	}
	if !strings.Contains(res.Render(), "Table 4") {
		t.Error("render missing title")
	}
}

func TestFigure4Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure4()
	// Web: cluster-dominant, almost no rack-local.
	web := res.Share[topology.RoleWeb]
	if web[topology.IntraCluster] < 0.5 || web[topology.IntraRack] > 0.1 {
		t.Errorf("web locality %v", web)
	}
	// Hadoop: rack+cluster ≈ all.
	h := res.Share[topology.RoleHadoop]
	if h[topology.IntraRack]+h[topology.IntraCluster] < 0.9 {
		t.Errorf("hadoop locality %v", h)
	}
	// Stability: web's dominant tier should be fairly flat per second.
	if cv := res.Stability[topology.RoleWeb][topology.IntraCluster]; cv > 0.5 {
		t.Errorf("web intra-cluster share CV %.2f, want stable", cv)
	}
	if !strings.Contains(res.Render(), "Figure 4") {
		t.Error("render missing title")
	}
}

func TestFigure5Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure5()
	// Hadoop matrix must have a strong diagonal relative to Frontend's.
	if res.HadoopDiag <= res.FrontendDiag {
		t.Errorf("hadoop diag %.3f should exceed frontend diag %.3f",
			res.HadoopDiag, res.FrontendDiag)
	}
	if res.FrontendDiag > 0.1 {
		t.Errorf("frontend diagonal %.3f, want near zero (bipartite)", res.FrontendDiag)
	}
	n := len(res.Clusters)
	if n != len(s.Topo.Clusters) {
		t.Fatalf("cluster matrix dimension %d", n)
	}
	if !strings.Contains(res.Render(), "Figure 5a") {
		t.Error("render missing title")
	}
}

func TestFigure6And7Shapes(t *testing.T) {
	s := quickSys(t)
	sizes := s.Figure6()
	durs := s.Figure7()
	// Hadoop flows are short and small; cache flows long-lived.
	hMed := sizes.All[topology.RoleHadoop].Quantile(0.5)
	if hMed > 2 { // KB
		t.Errorf("hadoop median flow size %.1f KB, want < 1-2 KB", hMed)
	}
	hDur := durs.All[topology.RoleHadoop].Quantile(0.5)
	cDur := durs.All[topology.RoleCacheFollower].Quantile(0.5)
	if cDur <= hDur {
		t.Errorf("cache median duration (%.0f ms) should exceed hadoop's (%.0f ms)", cDur, hDur)
	}
	if !strings.Contains(sizes.Render(), "Figure 6") || !strings.Contains(durs.Render(), "Figure 7") {
		t.Error("render missing titles")
	}
}

func TestFigure8Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure8()
	// Cache per-rack rates tight around median; Hadoop spread much wider.
	if res.CacheWithin2x < 0.7 {
		t.Errorf("cache within-2x %.2f, want ≥0.7", res.CacheWithin2x)
	}
	if res.SpreadHadoop.N() > 0 && res.SpreadCache.N() > 0 {
		if res.SpreadHadoop.Quantile(0.5) <= res.SpreadCache.Quantile(0.5) {
			t.Errorf("hadoop rate spread (%.1f) should exceed cache's (%.1f)",
				res.SpreadHadoop.Quantile(0.5), res.SpreadCache.Quantile(0.5))
		}
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Error("render missing title")
	}
}

func TestFigure9Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure9()
	if res.PerHost.N() == 0 {
		t.Fatal("no per-host sizes")
	}
	// Per-host distribution must be tighter than per-flow.
	if res.TightnessRatio >= res.FlowP90P10 {
		t.Errorf("per-host p90/p10 (%.1f) should be tighter than per-flow (%.1f)",
			res.TightnessRatio, res.FlowP90P10)
	}
	if !strings.Contains(res.Render(), "Figure 9") {
		t.Error("render missing title")
	}
}

func TestFigure10And11Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure10And11()
	cf := res.Persistence[topology.RoleCacheFollower]
	// Rack-level heavy hitters persist more than flow-level ones at
	// 100 ms (the paper's only ≥35%-predictable aggregation).
	flow := cf[analysis.LevelFlow][100*netsim.Millisecond]
	rack := cf[analysis.LevelRack][100*netsim.Millisecond]
	if rack < flow {
		t.Errorf("rack persistence (%.0f%%) should be ≥ flow persistence (%.0f%%)", rack, flow)
	}
	if !strings.Contains(res.Render(), "Figures 10-11") {
		t.Error("render missing title")
	}
}

func TestFigure12Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure12()
	for _, role := range []topology.Role{topology.RoleWeb, topology.RoleCacheFollower, topology.RoleCacheLeader} {
		if med := res.Sizes[role].Quantile(0.5); med > 400 {
			t.Errorf("%v median packet %.0f, want small", role, med)
		}
	}
	if res.BimodalFrac[topology.RoleHadoop] < 0.75 {
		t.Errorf("hadoop bimodal fraction %.2f", res.BimodalFrac[topology.RoleHadoop])
	}
	if res.BimodalFrac[topology.RoleHadoop] <= res.BimodalFrac[topology.RoleWeb] {
		t.Error("hadoop should be more bimodal than web")
	}
	if !strings.Contains(res.Render(), "Figure 12") {
		t.Error("render missing title")
	}
}

func TestFigure13Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure13()
	// Facebook-style arrivals are continuous; the literature baseline is
	// on/off. Hadoop quiet phases can blank whole stretches, so compare
	// against the baseline rather than an absolute.
	if res.FacebookScore15 >= res.BaselineScore15 {
		t.Errorf("facebook on/off score %.2f should be below baseline %.2f",
			res.FacebookScore15, res.BaselineScore15)
	}
	if !strings.Contains(res.Render(), "Figure 13") {
		t.Error("render missing title")
	}
}

func TestFigure14Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure14()
	for _, role := range MonitoredRoles {
		if res.Gaps[role].N() == 0 {
			t.Errorf("%v: no SYN gaps", role)
		}
	}
	// Cache follower opens flows least often (8 ms median in the paper
	// vs 2 ms for Web).
	web := res.Gaps[topology.RoleWeb].Quantile(0.5)
	cf := res.Gaps[topology.RoleCacheFollower].Quantile(0.5)
	if cf <= web {
		t.Errorf("cache-f SYN gap (%.0fµs) should exceed web's (%.0fµs)", cf, web)
	}
	if !strings.Contains(res.Render(), "Figure 14") {
		t.Error("render missing title")
	}
}

func TestFigure16And17Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Figure16And17()
	// Cache follower talks to the most racks; Hadoop to few.
	cf := res.RacksAll[topology.RoleCacheFollower].Quantile(0.5)
	h := res.RacksAll[topology.RoleHadoop].Quantile(0.5)
	if cf <= h {
		t.Errorf("cache-f concurrent racks (%.0f) should exceed hadoop's (%.0f)", cf, h)
	}
	// Heavy-hitter racks are far fewer than total racks for cache.
	hhCf := res.HHAll[topology.RoleCacheFollower].Quantile(0.5)
	if hhCf >= cf {
		t.Errorf("HH racks (%.0f) should be fewer than total (%.0f)", hhCf, cf)
	}
	// Web and cache keep 100s-1000s of concurrent flows vs ~25 for
	// Hadoop (§6.4): verify the ordering.
	if res.Flows[topology.RoleCacheFollower].Quantile(0.5) <= res.Flows[topology.RoleHadoop].Quantile(0.5) {
		t.Error("cache concurrent flows should exceed hadoop's")
	}
	if !strings.Contains(res.Render(), "Figures 16-17") {
		t.Error("render missing title")
	}
}

func TestSection41Shapes(t *testing.T) {
	s := quickSys(t)
	res := s.Section41()
	edge := res.Tiers[netsim.TierHostRSW]
	up := res.Tiers[netsim.TierRSWCSW]
	// Edge links are lightly loaded; aggregation utilization is higher.
	if edge.Mean() > 0.2 {
		t.Errorf("edge mean utilization %.3f, want low", edge.Mean())
	}
	if up.Mean() <= edge.Mean() {
		t.Errorf("uplink util (%.4f) should exceed edge util (%.4f)", up.Mean(), edge.Mean())
	}
	// Hadoop clusters run hotter than Frontend.
	if res.EdgeLoadByClusterType[topology.ClusterHadoop] <= res.EdgeLoadByClusterType[topology.ClusterFrontend] {
		t.Error("hadoop edge load should exceed frontend's")
	}
	if res.DiurnalSwing < 1.3 {
		t.Errorf("diurnal swing %.2f, want ≈2", res.DiurnalSwing)
	}
	if !strings.Contains(res.Render(), "Section 4.1") {
		t.Error("render missing title")
	}
}

func TestFigure15Shapes(t *testing.T) {
	s := quickSys(t)
	cfg := DefaultFigure15Config()
	cfg.Windows = 2
	cfg.LoadBoost = 6
	res := s.Figure15(cfg)
	if len(res.WebMax) == 0 || len(res.CacheMax) == 0 {
		t.Fatal("no occupancy samples")
	}
	if MaxOf(res.WebMax) <= 0 {
		t.Error("web rack buffer never occupied")
	}
	if MaxOf(res.WebUtil) <= 0 || MaxOf(res.WebUtil) > 0.5 {
		t.Errorf("web edge utilization %.4f, want positive and low", MaxOf(res.WebUtil))
	}
	if !strings.Contains(res.Render(), "Figure 15") {
		t.Error("render missing title")
	}
}

func TestAblations(t *testing.T) {
	s := quickSys(t)
	for _, a := range s.Ablations() {
		txt := a.Render()
		if strings.Contains(txt, "UNEXPECTED") {
			t.Errorf("%s", txt)
		}
	}
}

func TestTraceMemoization(t *testing.T) {
	s := quickSys(t)
	a := s.Trace(topology.RoleWeb, s.Cfg.ShortTraceSec)
	b := s.Trace(topology.RoleWeb, s.Cfg.ShortTraceSec)
	if a != b {
		t.Fatal("trace bundles not memoized")
	}
	if a.Packets == 0 {
		t.Fatal("bundle has no packets")
	}
}

func TestDiurnalFactor(t *testing.T) {
	maxV, minV := 0.0, 10.0
	for i := 0; i < 100; i++ {
		v := DiurnalFactor(float64(i) / 100)
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	ratio := maxV / minV
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("diurnal swing %.2f, want ≈2", ratio)
	}
}

func TestSummaryJSON(t *testing.T) {
	s := quickSys(t)
	sum := s.Summarize()
	if sum.Hosts != s.Topo.NumHosts() {
		t.Fatal("host count wrong")
	}
	if len(sum.ServiceMix) != len(MonitoredRoles) {
		t.Fatalf("service mix roles %d", len(sum.ServiceMix))
	}
	data, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"locality_all\"") {
		t.Fatal("JSON missing expected keys")
	}
	if sum.DiurnalSwing <= 1 {
		t.Fatalf("diurnal swing %v", sum.DiurnalSwing)
	}
}
