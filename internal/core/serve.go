package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/services"
	"fbdcnet/internal/sketch"
	"fbdcnet/internal/topology"
)

// Serve mode: an endless rolling-window fleet collection. Each window
// runs the same sharded, task-order-merged collection as FleetDataset,
// but into a window-local dataset that is dropped once its statistics
// are extracted — live memory is bounded by one window plus the fixed
// sketch state, no matter how long the loop runs. Window w's rng streams
// are keyed exactly like batch mode's window w, so a serve run over the
// first FleetWindows windows reproduces the batch collection
// window-for-window, bit-identically.

// ServeWindowStats summarizes one completed window of the rolling loop.
type ServeWindowStats struct {
	Window     int     // rolling window index (monotonic, unbounded)
	TotalBytes float64 // fleet bytes collected this window
	// Distinct-population estimates (sketch mode only; zero otherwise).
	DistinctFlows float64
	DistinctHosts float64
	DistinctRacks float64
	// Per-host outbound rate quantiles over the window, Mbps, from a
	// t-digest rebuilt each window (deterministic: hosts feed in ID order).
	HostRateP50 float64
	HostRateP99 float64
	HeapBytes   uint64  // live heap after the window's dataset was dropped
	WallSec     float64 // wall-clock spent collecting the window
}

// ServeOptions configures System.Serve.
type ServeOptions struct {
	// Windows stops the loop after this many windows; <= 0 runs until the
	// context is cancelled.
	Windows int
	// Reload delivers replacement configs (SIGHUP in cmd/dcsim). Only the
	// window-shape fields are applied — FleetWindowSec, FleetSamples,
	// FleetMatrix, Taggers, MemCeilingBytes, SketchMode — at the next
	// window boundary; topology-shaping fields (Scale, Seed) are ignored,
	// since they would require rebuilding the System.
	Reload <-chan Config
	// OnWindow, when non-nil, observes each completed window; returning an
	// error stops the loop with that error.
	OnWindow func(ServeWindowStats) error
}

// applyReload merges the reloadable fields of next into the system
// config and reports whether the partial pool must be rebuilt.
func (s *System) applyReload(next Config) (repool bool) {
	c := &s.Cfg
	repool = c.SketchMode != next.SketchMode
	c.FleetWindowSec = next.FleetWindowSec
	c.FleetSamples = next.FleetSamples
	c.FleetMatrix = next.FleetMatrix
	c.Taggers = next.Taggers
	c.MemCeilingBytes = next.MemCeilingBytes
	c.SketchMode = next.SketchMode
	return repool
}

// Serve runs the rolling-window collection loop until the context is
// cancelled, opts.Windows windows have completed, the memory ceiling is
// breached, or OnWindow returns an error.
func (s *System) Serve(ctx context.Context, opts ServeOptions) error {
	reg := s.Cfg.Obs
	tagger := fbflow.NewTagger(s.Topo)
	newPool := func() *sync.Pool {
		return &sync.Pool{New: func() any {
			p := fbflow.NewPartial()
			if s.Cfg.SketchMode {
				p.EnableCardinality()
			}
			return p
		}}
	}
	pool := newPool()
	rates := sketch.NewTDigest(100)
	windows := reg.Counter("fbdcnet_serve_windows_total",
		"rolling windows completed by the serve loop")

	for w := 0; opts.Windows <= 0 || w < opts.Windows; w++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		// Drain pending reconfigs; the last one wins.
		for {
			var applied bool
			select {
			case next, ok := <-opts.Reload:
				if ok {
					if s.applyReload(next) {
						pool = newPool()
					}
					applied = true
				}
			default:
			}
			if !applied {
				break
			}
		}

		start := time.Now()
		ds := s.collectOneWindow(w, tagger, pool)
		st := ServeWindowStats{
			Window:     w,
			TotalBytes: ds.TotalBytes(),
			WallSec:    time.Since(start).Seconds(),
		}
		if card := ds.Cardinality(); card != nil {
			st.DistinctFlows = card.Flows()
			st.DistinctHosts = card.Hosts()
			st.DistinctRacks = card.Racks()
		}
		// Per-host outbound Mbps over the window, digested. Feeding in
		// host-ID order keeps the digest a pure function of the dataset.
		rates.Reset()
		hostOut := ds.HostOutBytes()
		winSec := s.Cfg.FleetWindowSec
		if winSec > 0 {
			for h := 0; h < s.Topo.NumHosts(); h++ {
				if b, ok := hostOut[topology.HostID(h)]; ok {
					rates.Add(b*8/winSec/1e6, 1)
				}
			}
		}
		st.HostRateP50 = rates.Quantile(0.5)
		st.HostRateP99 = rates.Quantile(0.99)

		// The window's dataset dies here; measure what the loop retains.
		ds = nil //nolint:ineffassign,wasted // release before the heap read
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		st.HeapBytes = ms.HeapAlloc

		if reg.Enabled() {
			reg.AddCounter(windows, 1)
			reg.SetGauge("fbdcnet_serve_window", float64(st.Window))
			reg.SetGauge("fbdcnet_serve_window_bytes", st.TotalBytes)
			reg.SetGauge("fbdcnet_serve_window_wall_seconds", st.WallSec)
			reg.SetGauge("fbdcnet_serve_heap_bytes", float64(st.HeapBytes))
			reg.SetGauge("fbdcnet_serve_host_rate_p50_mbps", st.HostRateP50)
			reg.SetGauge("fbdcnet_serve_host_rate_p99_mbps", st.HostRateP99)
			if st.DistinctFlows > 0 {
				reg.SetGauge("fbdcnet_fleet_distinct_flows", st.DistinctFlows)
				reg.SetGauge("fbdcnet_fleet_distinct_hosts", st.DistinctHosts)
				reg.SetGauge("fbdcnet_fleet_distinct_racks", st.DistinctRacks)
			}
		}
		if c := s.Cfg.MemCeilingBytes; c > 0 && int64(st.HeapBytes) > c {
			return fmt.Errorf("core: serve window %d: heap %d bytes exceeds ceiling %d",
				w, st.HeapBytes, c)
		}
		if opts.OnWindow != nil {
			if err := opts.OnWindow(st); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectOneWindow runs window w's shard tasks with the same frontier
// merge as collectFleet and returns the window-local dataset. The
// diurnal load factor cycles over FleetWindows, so an endless run keeps
// tracing the synthetic day; the rng streams stay keyed by the absolute
// window index, so no two windows replay the same flows.
func (s *System) collectOneWindow(w int, tagger *fbflow.Tagger, pool *sync.Pool) *fbflow.Dataset {
	n, width := s.Topo.NumHosts(), fleetShardHosts
	if s.Cfg.FleetMatrix {
		n, width = len(s.Topo.Racks), fleetMatrixShardRacks
	}
	shards := (n + width - 1) / width
	tasks := make([]fleetTask, 0, shards)
	for sh := 0; sh < shards; sh++ {
		lo := sh * width
		tasks = append(tasks, fleetTask{window: w, shard: sh, lo: lo, hi: min(lo+width, n)})
	}

	ds := fbflow.NewDataset()
	reg := s.Cfg.Obs
	workers := s.Cfg.TaggerWorkers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var prog *services.FleetProgram
	var mprog *services.MatrixProgram
	var mats []*services.DemandMatrix
	if s.Cfg.FleetMatrix {
		mprog = services.NewMatrixProgram(s.Pick, s.Cfg.Params)
		mats = make([]*services.DemandMatrix, workers)
		for i := range mats {
			mats[i] = services.NewDemandMatrix()
		}
	} else {
		prog = services.NewFleetProgram(s.Pick, s.Cfg.Params)
	}

	aud := s.Cfg.Audit
	var parkedAudF, parkedAudM []audit.Checkpoint
	if aud.Enabled() {
		parkedAudF = make([]audit.Checkpoint, len(tasks))
		if s.Cfg.FleetMatrix {
			parkedAudM = make([]audit.Checkpoint, len(tasks))
		}
	}
	var (
		mu        sync.Mutex
		parked    = make([]*fbflow.Partial, len(tasks))
		parkedObs = make([]*obs.Shard, len(tasks))
		done      = make([]bool, len(tasks))
		next      int
	)
	runParallelWorkers(workers, len(tasks), func(wk, i int) {
		p := pool.Get().(*fbflow.Partial)
		sh := reg.NewShard()
		var fh, mh *audit.Hash
		var fhv, mhv audit.Hash
		if aud.Enabled() {
			fh = &fhv
			if s.Cfg.FleetMatrix {
				mh = &mhv
			}
		}
		if s.Cfg.FleetMatrix {
			s.collectMatrixShard(tagger, mprog, tasks[i], mats[wk], p, sh, fh, mh)
		} else {
			s.collectShard(tagger, prog, tasks[i], p, sh, fh)
		}
		if aud.Enabled() {
			t := tasks[i]
			parkedAudF[i] = audit.Checkpoint{Stage: audit.StageFleetCollect, Window: t.window, Shard: t.shard, Sum: fhv.Sum(), Count: fhv.Count()}
			if parkedAudM != nil {
				parkedAudM[i] = audit.Checkpoint{Stage: audit.StageMatrixSynth, Window: t.window, Shard: t.shard, Sum: mhv.Sum(), Count: mhv.Count()}
			}
		}
		mu.Lock()
		parked[i], parkedObs[i], done[i] = p, sh, true
		for next < len(tasks) && done[next] {
			q, qs := parked[next], parkedObs[next]
			parked[next], parkedObs[next] = nil, nil
			ds.MergePartial(q)
			q.Reset()
			pool.Put(q)
			qs.Fold()
			if aud.Enabled() {
				if parkedAudM != nil {
					aud.Append(parkedAudM[next])
				}
				aud.Append(parkedAudF[next])
			}
			next++
		}
		mu.Unlock()
	})
	return ds
}
