package core

import (
	"encoding/json"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/topology"
)

// FleetDigest is the canonical JSON summary of one fleet collection:
// the fleet-level findings of Table 3, §4.1, and Figure 5 in one
// byte-comparable document. It exists for the distributed determinism
// contract — a distributed run's digest must equal the single-process
// run's byte for byte (modulo the coverage block, which only a gapped
// run carries) — and for the fbflowd summary output.
//
// Every field is a scalar or a string-keyed map: encoding/json sorts
// map keys and renders float64s in their shortest exact form, so equal
// datasets produce equal bytes with no further canonicalization.
type FleetDigest struct {
	Scale      string  `json:"scale"`
	Seed       uint64  `json:"seed"`
	Windows    int     `json:"windows"`
	Matrix     bool    `json:"matrix,omitempty"`
	TotalBytes float64 `json:"total_bytes"`

	// Table 3: locality mix fleet-wide and per cluster type, plus each
	// type's share of total traffic.
	Locality       map[string]float64            `json:"locality"`
	LocalityByType map[string]map[string]float64 `json:"locality_by_type"`
	TrafficShare   map[string]float64            `json:"traffic_share"`

	// §4.1: mean utilization per fabric tier, mean access-link load per
	// cluster type, and the diurnal swing of fleet bytes.
	TierUtilMean map[string]float64 `json:"tier_util_mean"`
	EdgeLoad     map[string]float64 `json:"edge_load"`
	DiurnalSwing float64            `json:"diurnal_swing"`

	// Figure 5: diagonality of the rack-to-rack matrices.
	HadoopDiag   float64 `json:"hadoop_diag"`
	FrontendDiag float64 `json:"frontend_diag"`

	// Sketch mode only: HLL distinct-population estimates.
	DistinctFlows float64 `json:"distinct_flows,omitempty"`
	DistinctHosts float64 `json:"distinct_hosts,omitempty"`
	DistinctRacks float64 `json:"distinct_racks,omitempty"`

	// Coverage is present only when the collection lost cells — the
	// distributed analogue of lost-forever bytes.
	Coverage *CoverageDigest `json:"coverage,omitempty"`
}

// CoverageDigest accounts the task cells a distributed run never
// received.
type CoverageDigest struct {
	TotalCells  int           `json:"total_cells"`
	GapCells    int           `json:"gap_cells"`
	GapFraction float64       `json:"gap_fraction"`
	Gaps        []CoverageGap `json:"gaps"`
}

// InjectFleetDataset installs an externally aggregated dataset (and its
// coverage gaps) as this System's fleet collection, so every downstream
// consumer — Table 3, §4.1, Figure 5, the digest — reads the
// distributed result through the unchanged single-process API. It must
// run before anything triggers FleetDataset; a later call loses to the
// memo and reports false.
func (s *System) InjectFleetDataset(ds *fbflow.Dataset, gaps []CoverageGap) bool {
	injected := false
	s.fleetOnce.Do(func() {
		s.fleet = ds
		s.fleetGaps = gaps
		injected = true
	})
	return injected
}

// FleetCoverageGaps returns the coverage gaps of an injected
// distributed collection (nil for a single-process or clean run).
func (s *System) FleetCoverageGaps() []CoverageGap { return s.fleetGaps }

// FleetDigest aggregates the fleet dataset into the digest.
func (s *System) FleetDigest() *FleetDigest {
	ds := s.FleetDataset()
	dur := s.FleetDurationSec()
	fcfg := netsim.DefaultFabricConfig()

	d := &FleetDigest{
		Scale:          s.Cfg.Scale.String(),
		Seed:           s.Cfg.Seed,
		Windows:        s.Cfg.FleetWindows,
		Matrix:         s.Cfg.FleetMatrix,
		TotalBytes:     ds.TotalBytes(),
		Locality:       map[string]float64{},
		LocalityByType: map[string]map[string]float64{},
		TrafficShare:   map[string]float64{},
		TierUtilMean:   map[string]float64{},
		EdgeLoad:       map[string]float64{},
	}
	for loc, v := range ds.LocalityShareAll() {
		d.Locality[loc.String()] = v
	}
	for _, ct := range topology.ClusterTypes {
		byLoc := map[string]float64{}
		for loc, v := range ds.LocalityShare(ct) {
			byLoc[loc.String()] = v
		}
		d.LocalityByType[ct.String()] = byLoc
	}
	for ct, v := range ds.TrafficShare() {
		d.TrafficShare[ct.String()] = v
	}
	for tier, sample := range analysis.Utilization(ds, s.Topo, dur, fcfg) {
		d.TierUtilMean[tier.String()] = sample.Mean()
	}
	for ct, v := range analysis.ClusterEdgeLoad(ds, s.Topo, dur, fcfg) {
		d.EdgeLoad[ct.String()] = v
	}
	minV, maxV, first := 0.0, 0.0, true
	for _, v := range ds.PerMinute() {
		if first {
			minV, maxV, first = v, v, false
			continue
		}
		minV, maxV = min(minV, v), max(maxV, v)
	}
	if minV > 0 {
		d.DiurnalSwing = maxV / minV
	}

	if hs := s.Topo.ClustersOfType(topology.ClusterHadoop); len(hs) > 0 {
		d.HadoopDiag = matrixDiag(ds.RackMatrix(s.Topo, hs[0]))
	}
	if fs := s.Topo.ClustersOfType(topology.ClusterFrontend); len(fs) > 0 {
		d.FrontendDiag = matrixDiag(ds.RackMatrix(s.Topo, fs[0]))
	}
	if card := ds.Cardinality(); card != nil {
		d.DistinctFlows = card.Flows()
		d.DistinctHosts = card.Hosts()
		d.DistinctRacks = card.Racks()
	}
	if len(s.fleetGaps) > 0 {
		cov := &CoverageDigest{
			TotalCells: s.fleetShardsPerWindow() * s.Cfg.FleetWindows,
			Gaps:       s.fleetGaps,
		}
		for _, g := range cov.Gaps {
			cov.GapCells += g.Cells
		}
		if cov.TotalCells > 0 {
			cov.GapFraction = float64(cov.GapCells) / float64(cov.TotalCells)
		}
		d.Coverage = cov
	}
	return d
}

// JSON renders the digest in its canonical byte-comparable form.
func (d *FleetDigest) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
