package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/topology"
)

// SuiteSection is one named experiment of the full harness.
type SuiteSection struct {
	Name string
	Run  func(s *System) string
}

// SuiteSections lists every experiment of the harness in render order —
// the single source of truth cmd/experiments and the golden regression
// test share. Sections gated on configuration (the "degraded" section of
// a configured fault scenario) appear only when enabled.
func SuiteSections(s *System) []SuiteSection {
	secs := []SuiteSection{
		{"table2", func(s *System) string { return s.Table2().Render() }},
		{"table3", func(s *System) string { return s.Table3().Render() }},
		{"table4", func(s *System) string { return s.Table4().Render() }},
		{"section41", func(s *System) string { return s.Section41().Render() }},
		{"figure4", func(s *System) string { return s.Figure4().Render() }},
		{"figure5", func(s *System) string { return s.Figure5().Render() }},
		{"figure6", func(s *System) string { return s.Figure6().Render() }},
		{"figure7", func(s *System) string { return s.Figure7().Render() }},
		{"figure8", func(s *System) string { return s.Figure8().Render() }},
		{"figure9", func(s *System) string { return s.Figure9().Render() }},
		{"figure10-11", func(s *System) string { return s.Figure10And11().Render() }},
		{"figure12", func(s *System) string { return s.Figure12().Render() }},
		{"figure13", func(s *System) string { return s.Figure13().Render() }},
		{"figure14", func(s *System) string { return s.Figure14().Render() }},
		{"figure15", func(s *System) string { return s.Figure15(DefaultFigure15Config()).Render() }},
		{"figure16-17", func(s *System) string { return s.Figure16And17().Render() }},
		{"ablations", func(s *System) string { return RenderAblations(s.Ablations()) }},
		{"faults", func(s *System) string { return RenderDegraded(s.DegradedScenarios()) }},
		{"ext-incast", func(s *System) string {
			return s.ExtensionIncast([]int{1, 2, 4, 8, 12}, 64<<10, 256<<10).Render()
		}},
		{"ext-oversub", func(s *System) string {
			factors := []float64{1, 2, 4, 10, 20, 40}
			return s.ExtensionOversubscription(topology.RoleHadoop, factors, 3).Render() +
				s.ExtensionOversubscription(topology.RoleWeb, factors, 3).Render() +
				s.ExtensionOversubAllToAll(factors, 3).Render()
		}},
		{"ext-fabric", func(s *System) string { return s.ExtensionFabric().Render() }},
		{"section52", func(s *System) string { return s.Section52().Render() }},
		{"ext-dayoverday", func(s *System) string { return s.DayOverDay().Render() }},
	}
	if s.Cfg.TraceSample > 0 {
		secs = append(secs, SuiteSection{"telemetry", func(s *System) string {
			return s.Telemetry().Render()
		}})
	}
	if s.Cfg.FaultScenario != "" {
		secs = append(secs, SuiteSection{"degraded", func(s *System) string {
			return s.Degraded().Render()
		}})
	}
	return secs
}

// WriteSuite runs the experiment harness and writes its rendered output —
// header, prewarm note, and one section per experiment — to w. A
// non-empty only substring-filters section names (and skips the
// whole-suite prewarm, so a single experiment pays only for its own
// datasets). It returns how many sections ran; callers should treat 0 as
// a bad filter.
func WriteSuite(w io.Writer, sys *System, only string) int {
	fmt.Fprintf(w, "fbdcnet experiment harness: %d hosts, %d racks, %d clusters, %d datacenters (seed %d)\n\n",
		sys.Topo.NumHosts(), len(sys.Topo.Racks), len(sys.Topo.Clusters), len(sys.Topo.Datacenters), sys.Cfg.Seed)

	if only == "" {
		warmStart := time.Now()
		sys.Prewarm()
		fmt.Fprintf(w, "prewarmed datasets on %d workers in %.1fs\n\n",
			sys.Cfg.Workers(), time.Since(warmStart).Seconds())
	}

	var secs []SuiteSection
	for _, e := range SuiteSections(sys) {
		if only != "" && !strings.Contains(e.Name, only) {
			continue
		}
		secs = append(secs, e)
	}
	prog := sys.Cfg.Obs.NewProgress("suite-sections", int64(len(secs)))
	ran := 0
	for _, e := range secs {
		sp := sys.Cfg.Obs.StartSpan("suite:" + e.Name)
		bb := sys.Cfg.Audit.BB()
		bb.Record(audit.EvStageEnter, "suite:"+e.Name, 0, 0)
		start := time.Now()
		out := e.Run(sys)
		sp.End()
		bb.Record(audit.EvStageExit, "suite:"+e.Name, 0, 0)
		// The rendered section text IS the canonical output the run digest
		// hashes, so one string checkpoint per section localizes a suite
		// divergence without re-deriving any experiment.
		sys.Cfg.Audit.RecordOutput("suite:"+e.Name, out)
		fmt.Fprintf(w, "=== %s (%.1fs) ===\n%s\n", e.Name, time.Since(start).Seconds(), out)
		ran++
		prog.Set(int64(ran))
	}
	return ran
}
