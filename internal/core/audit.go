package core

import (
	"fmt"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
)

// This file is the only bridge between the experiment engine and the
// determinism flight recorder — the audit twin of obsfold.go. Stages
// record checkpoints at the same frontiers their obs shards fold at,
// and every call is nil-gated, so an audit-off run pays one predicted
// branch per stage.

// auditTrace checkpoints one finished trace bundle: the capture itself
// (host + packet count) under "trace:<role>:<sec>s", then every
// attached analysis under "analysis:<role>:<sec>s:<name>". Each
// analysis folds its own canonical summary (see analysis FoldAudit
// methods), so a divergence names the exact analysis that drifted, not
// just the bundle.
func (s *System) auditTrace(b *TraceBundle) {
	rec := s.Cfg.Audit
	if !rec.Enabled() {
		return
	}
	var h audit.Hash
	h.I64(int64(b.Host))
	h.I64(b.Packets)
	rec.Record(fmt.Sprintf("trace:%s:%ds", b.Role, b.Seconds), audit.NonCell, audit.NonCell, &h)

	fold := func(name string, a interface{ FoldAudit(*audit.Hash) }) {
		var ah audit.Hash
		a.FoldAudit(&ah)
		rec.Record(fmt.Sprintf("analysis:%s:%ds:%s", b.Role, b.Seconds, name), audit.NonCell, audit.NonCell, &ah)
	}
	fold("mix", b.Mix)
	fold("locality", b.Loc)
	fold("flows", b.Flows)
	fold("rates", b.Rates)
	fold("sizes", b.Sizes)
	fold("arrivals", b.Arr)
	fold("concurrency", b.Conc)
}

// auditTelemetry checkpoints the merged telemetry aggregate: the path-
// record totals and per-tier hop counts, folded in fixed enum order.
func (s *System) auditTelemetry(res *TelemetryResult) {
	rec := s.Cfg.Audit
	if !rec.Enabled() {
		return
	}
	var h audit.Hash
	a := &res.Agg
	h.I64(a.Sampled)
	h.I64(a.HopsTotal)
	h.I64(a.Delivered)
	h.I64(a.Dropped)
	h.I64(a.Rerouted)
	h.I64(a.Retransmit)
	for rc := telemetry.ReasonBufferDrop; rc < telemetry.NumReasons; rc++ {
		h.I64(a.DropsByReason[rc])
	}
	for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
		h.I64(a.Tiers[t].Hops)
	}
	rec.Record(audit.StageTelemetry, audit.NonCell, audit.NonCell, &h)
}

// ConfigFromManifestMeta reconstructs the Config a manifest's config
// section describes — the inverse of Config.ManifestMeta, used by
// cmd/digestdiff -bisect to re-run a divergent cell from nothing but
// the manifest. Numbers arrive as float64 from JSON but keep their
// native types when the meta map is used in-process; absent keys keep
// the default-config value, so manifests from older runs still resolve.
func ConfigFromManifestMeta(m map[string]any) (Config, error) {
	c := DefaultConfig()
	num := func(key string, set func(float64)) {
		switch v := m[key].(type) {
		case float64:
			set(v)
		case int:
			set(float64(v))
		case int64:
			set(float64(v))
		case uint64:
			set(float64(v))
		}
	}
	if v, ok := m["scale"].(string); ok {
		sc, ok := topology.ParseScale(v)
		if !ok {
			return Config{}, fmt.Errorf("core: manifest config names unknown scale %q", v)
		}
		c.Scale = sc
	}
	num("seed", func(v float64) { c.Seed = uint64(v) })
	num("short_trace_sec", func(v float64) { c.ShortTraceSec = int(v) })
	num("long_trace_sec", func(v float64) { c.LongTraceSec = int(v) })
	num("fleet_windows", func(v float64) { c.FleetWindows = int(v) })
	num("fleet_window_sec", func(v float64) { c.FleetWindowSec = v })
	num("fleet_samples", func(v float64) { c.FleetSamples = int(v) })
	num("mem_ceiling_bytes", func(v float64) { c.MemCeilingBytes = int64(v) })
	num("trace_sample", func(v float64) { c.TraceSample = v })
	num("queue_interval_us", func(v float64) { c.QueueInterval = netsim.Time(v) * netsim.Microsecond })
	if v, ok := m["fleet_matrix"].(bool); ok {
		c.FleetMatrix = v
	}
	if v, ok := m["sketch_mode"].(bool); ok {
		c.SketchMode = v
	}
	if v, ok := m["fault_scenario"].(string); ok {
		c.FaultScenario = v
	}
	return c, nil
}

// AuditBisectResult is one cell's scheduling-sensitivity probe: the
// checkpoint the cell produces at one worker versus many.
type AuditBisectResult struct {
	Window, Shard int
	Workers       int              // the "many" arm's tagger count
	One, Many     audit.Checkpoint // fleet-collect checkpoints of the two arms
	Match         bool
}

// AuditBisectCell re-runs fleet collection up to the named cell's
// window at 1 tagger worker and at `workers` taggers, and compares the
// cell's fleet-collect checkpoints. A mismatch means the divergence is
// scheduling-sensitive (a real determinism bug in this build); a match
// means both schedules agree and the original divergence came from
// elsewhere — different binaries, corrupted input, or a planted
// perturbation. The probe trims the run to FleetWindows = window+1, so
// its absolute sums are not comparable to the original manifest's; only
// the two arms compare to each other.
func AuditBisectCell(cfg Config, window, shard, workers int) (AuditBisectResult, error) {
	if workers <= 1 {
		workers = 0 // resolve to GOMAXPROCS via TaggerWorkers
	}
	run := func(taggers int) (audit.Checkpoint, int, error) {
		c := cfg
		c.Obs = nil
		c.Audit = audit.New()
		c.Taggers = taggers
		c.FleetWindows = window + 1
		sys, err := NewSystem(c)
		if err != nil {
			return audit.Checkpoint{}, 0, err
		}
		if shard < 0 || shard >= sys.fleetShardsPerWindow() {
			return audit.Checkpoint{}, 0, fmt.Errorf("core: shard %d outside grid of %d shards/window", shard, sys.fleetShardsPerWindow())
		}
		sys.FleetDataset()
		for _, cp := range c.Audit.Checkpoints() {
			if cp.Stage == audit.StageFleetCollect && cp.Window == window && cp.Shard == shard {
				return cp, c.TaggerWorkers(), nil
			}
		}
		return audit.Checkpoint{}, 0, fmt.Errorf("core: cell (%d,%d) produced no checkpoint", window, shard)
	}
	one, _, err := run(1)
	if err != nil {
		return AuditBisectResult{}, err
	}
	many, n, err := run(workers)
	if err != nil {
		return AuditBisectResult{}, err
	}
	return AuditBisectResult{
		Window: window, Shard: shard, Workers: n,
		One: one, Many: many,
		Match: one.Sum == many.Sum && one.Count == many.Count,
	}, nil
}
