package core

import (
	"fmt"
	"strings"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// AblationResult compares one design mechanism ON (production behaviour)
// versus OFF along the metric that mechanism is responsible for.
type AblationResult struct {
	Name    string
	Metric  string
	On, Off float64
	// HigherIsBetter documents the expected direction: the paper's
	// mechanism should win.
	HigherIsBetter bool
}

// Render prints the comparison.
func (a *AblationResult) Render() string {
	verdict := "mechanism effective"
	if (a.HigherIsBetter && a.On < a.Off) || (!a.HigherIsBetter && a.On > a.Off) {
		verdict = "UNEXPECTED: mechanism ineffective at this scale/seed"
	}
	return fmt.Sprintf("Ablation %-22s %s: on=%.3f off=%.3f (%s)",
		a.Name, a.Metric, a.On, a.Off, verdict)
}

// ablationTrace runs a single-consumer trace with modified params.
func (s *System) ablationTrace(role topology.Role, p services.Params, seconds int, sinks ...workload.Collector) {
	host := s.Monitored(role)
	tr := services.NewTrace(s.Pick, host, s.Cfg.Seed^0xab1a, p, workload.Fanout(sinks))
	tr.Run(netsim.Time(seconds) * netsim.Second)
}

// AblationLoadBalancing measures Fig. 8c tightness (fraction of per-rack
// per-second rates within 2× of the rack median at a cache follower) with
// request load balancing on vs off.
func (s *System) AblationLoadBalancing() *AblationResult {
	run := func(disable bool) float64 {
		p := s.Cfg.Params
		p.DisableLoadBalancing = disable
		host := s.Monitored(topology.RoleCacheFollower)
		rs := analysis.NewRateSeries(s.Topo, host)
		rs.Filter = func(d topology.HostID) bool { return s.Topo.HostRole(d) == topology.RoleWeb }
		s.ablationTrace(topology.RoleCacheFollower, p, s.Cfg.ShortTraceSec/2, workload.CollectorFunc(rs.Packet))
		return rs.FracWithinFactor(2)
	}
	return &AblationResult{
		Name:           "load-balancing",
		Metric:         "frac per-rack rates within 2x of median",
		On:             run(false),
		Off:            run(true),
		HigherIsBetter: true,
	}
}

// AblationConnectionPooling measures the SYN arrival rate at a cache
// follower with pooling on vs off: pooling keeps flow churn low, the
// precondition for the long-lived flows of Fig. 7.
func (s *System) AblationConnectionPooling() *AblationResult {
	run := func(disable bool) float64 {
		p := s.Cfg.Params
		p.DisableConnectionPooling = disable
		host := s.Monitored(topology.RoleCacheFollower)
		arr := analysis.NewArrivals(s.Topo.Addr(host))
		sec := s.Cfg.ShortTraceSec / 4
		if sec < 2 {
			sec = 2
		}
		s.ablationTrace(topology.RoleCacheFollower, p, sec, workload.CollectorFunc(arr.Packet))
		return float64(arr.SYNCount()) / float64(sec)
	}
	return &AblationResult{
		Name:           "connection-pooling",
		Metric:         "SYNs per second (lower = pooled)",
		On:             run(false),
		Off:            run(true),
		HigherIsBetter: false,
	}
}

// AblationHotObjectMitigation measures the fraction of elevated seconds
// (rate >1.5× median) at a cache follower with mitigation on vs off —
// the §5.2 mechanism that keeps offered load per second roughly constant.
func (s *System) AblationHotObjectMitigation() *AblationResult {
	run := func(disable bool) float64 {
		p := s.Cfg.Params
		p.DisableHotObjectMitigation = disable
		p.HotObjectPerSec = 0.15
		host := s.Monitored(topology.RoleCacheFollower)
		addr := s.Topo.Addr(host)
		sec := s.Cfg.ShortTraceSec
		perSec := make([]float64, sec)
		s.ablationTrace(topology.RoleCacheFollower, p, sec, workload.CollectorFunc(func(h packet.Header) {
			if h.Key.Src != addr {
				return
			}
			i := int(h.Time / int64(netsim.Second))
			if i < len(perSec) {
				perSec[i] += float64(h.Size)
			}
		}))
		// Baseline is the 10th-percentile second: with mitigation off, hot
		// periods can cover most of the trace, so the median would hide
		// them.
		base := percentileOf(perSec, 0.1)
		if base == 0 {
			return 0
		}
		n := 0
		for _, v := range perSec {
			if v > 1.5*base {
				n++
			}
		}
		return float64(n) / float64(len(perSec))
	}
	return &AblationResult{
		Name:           "hot-object-mitigation",
		Metric:         "frac elevated seconds (lower = mitigated)",
		On:             run(false),
		Off:            run(true),
		HigherIsBetter: false,
	}
}

// AblationRackPlacement measures destination concentration at a Web
// server with uniform placement vs partitioned users (§4.3's
// counterfactual): the Gini-like top-10% share of per-host bytes.
func (s *System) AblationRackPlacement() *AblationResult {
	run := func(partition bool) float64 {
		p := s.Cfg.Params
		p.PartitionUsers = partition
		host := s.Monitored(topology.RoleWeb)
		fl := analysis.NewFlows(s.Topo, host)
		s.ablationTrace(topology.RoleWeb, p, s.Cfg.ShortTraceSec/2, workload.CollectorFunc(fl.Packet))
		_, perHost := fl.PerHostSizeCDF()
		if perHost.N() == 0 {
			return 0
		}
		// Share of bytes owned by the top decile of destinations.
		vals := perHost.Values()
		total, top := 0.0, 0.0
		cut := len(vals) - len(vals)/10
		for i, v := range vals {
			total += v
			if i >= cut {
				top += v
			}
		}
		if total == 0 {
			return 0
		}
		return top / total
	}
	return &AblationResult{
		Name:           "uniform-placement",
		Metric:         "top-decile destination byte share (lower = spread)",
		On:             run(false),
		Off:            run(true),
		HigherIsBetter: false,
	}
}

// Ablations runs the full ablation suite.
func (s *System) Ablations() []*AblationResult {
	return []*AblationResult{
		s.AblationLoadBalancing(),
		s.AblationConnectionPooling(),
		s.AblationHotObjectMitigation(),
		s.AblationRackPlacement(),
		s.AblationFaultResilience(),
	}
}

// RenderAblations prints the suite.
func RenderAblations(rs []*AblationResult) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// percentileOf returns the p-quantile of vs (0 for empty).
func percentileOf(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := append([]float64(nil), vs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	i := int(p * float64(len(c)-1))
	return c[i]
}
