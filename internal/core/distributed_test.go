package core

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fbdcnet/internal/topology"
)

// runDistributed runs an aggregator plus in-process agents (one
// goroutine per agent incarnation, each with its own System, exactly
// like separate processes would) over a unix socket, and returns the
// injected-digest bytes and the coverage gaps.
func runDistributed(t *testing.T, cfg Config, agents int, plan *AgentCrashPlan) ([]byte, []CoverageGap) {
	t.Helper()
	sys := MustNewSystem(cfg)
	addr := filepath.Join(t.TempDir(), "agg.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}

	agentErrs := make(chan error, agents)
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for inc := uint32(0); ; inc++ {
				asys := MustNewSystem(cfg) // a fresh System per incarnation, as a real process restart would build
				conn, err := DialFleetAgent("unix", addr, 5*time.Second)
				if err != nil {
					agentErrs <- err
					return
				}
				crashAfter := int64(-1)
				if plan != nil && plan.Agent == a && inc == 0 {
					crashAfter = plan.AfterTask
				}
				err = asys.RunFleetAgent(a, agents, inc, conn, crashAfter)
				conn.Close()
				if errors.Is(err, ErrPlannedCrash) {
					continue // restart as the next incarnation
				}
				if err != nil {
					agentErrs <- fmt.Errorf("agent %d: %w", a, err)
				}
				return
			}
		}(a)
	}

	ds, gaps, err := sys.ServeFleetAggregator(ln, agents, 10*time.Second)
	ln.Close()
	wg.Wait()
	close(agentErrs)
	for e := range agentErrs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !sys.InjectFleetDataset(ds, gaps) {
		t.Fatal("fleet dataset already memoized before injection")
	}
	return digestJSON(t, sys), gaps
}

func digestJSON(t *testing.T, sys *System) []byte {
	t.Helper()
	b, err := sys.FleetDigest().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedMatchesSingleProcess is the determinism contract: the
// aggregated digest is byte-identical to the single-process run at 1,
// 2, 4, and 8 agents (8 agents on the tiny preset exercises empty
// shard ranges: only 4 shards exist per window).
func TestDistributedMatchesSingleProcess(t *testing.T) {
	cfg := QuickConfig()
	want := digestJSON(t, MustNewSystem(cfg))
	for _, agents := range []int{1, 2, 4, 8} {
		got, gaps := runDistributed(t, cfg, agents, nil)
		if len(gaps) != 0 {
			t.Fatalf("%d agents: clean run reported %d gaps", agents, len(gaps))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d agents: digest differs from single-process run\n--- distributed ---\n%s\n--- single ---\n%s", agents, got, want)
		}
	}
}

// TestDistributedSketchMode runs the same contract with cardinality
// sketches riding the wire.
func TestDistributedSketchMode(t *testing.T) {
	cfg := QuickConfig()
	cfg.SketchMode = true
	want := digestJSON(t, MustNewSystem(cfg))
	got, _ := runDistributed(t, cfg, 2, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("sketch-mode digest differs from single-process run\n--- distributed ---\n%s\n--- single ---\n%s", got, want)
	}
}

// TestDistributedMatrixMode runs the contract over matrix-mode
// collection, whose shards partition racks instead of hosts.
func TestDistributedMatrixMode(t *testing.T) {
	cfg := QuickConfig()
	cfg.FleetMatrix = true
	want := digestJSON(t, MustNewSystem(cfg))
	got, _ := runDistributed(t, cfg, 2, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("matrix-mode digest differs from single-process run\n--- distributed ---\n%s\n--- single ---\n%s", got, want)
	}
}

// crashConfig is sized so agents own multi-shard ranges: the tiny
// preset has only 4 shards per window, so a mid-window crash needs the
// small preset's 14.
func crashConfig() Config {
	cfg := QuickConfig()
	cfg.Scale = topology.ScaleSmall
	cfg.FleetWindows = 4
	cfg.FleetWindowSec = 5
	return cfg
}

// TestDistributedAgentCrashRestart kills one agent mid-window at its
// seed-derived crash point, restarts it, and checks the three promised
// properties: the digest records the gap, the aggregate equals the
// sequential oracle that skips exactly the gapped cells, and the whole
// thing — gap block included — is deterministic across runs.
func TestDistributedAgentCrashRestart(t *testing.T) {
	cfg := crashConfig()
	sys := MustNewSystem(cfg)
	agents := 4
	plan := sys.PlanAgentCrash(agents)
	span := sys.FleetShardMap(agents)[plan.Agent].Span()
	if span < 2 {
		t.Fatalf("crash plan victim owns %d shards; config cannot force a mid-window gap", span)
	}
	if (plan.AfterTask+1)%int64(span) == 0 {
		t.Fatalf("crash plan dies at a window boundary (task %d, span %d)", plan.AfterTask, span)
	}

	got, gaps := runDistributed(t, cfg, agents, &plan)
	if len(gaps) == 0 {
		t.Fatal("mid-window crash produced no coverage gap")
	}
	for _, g := range gaps {
		if g.Agent != plan.Agent {
			t.Fatalf("gap attributed to agent %d, crash was agent %d", g.Agent, plan.Agent)
		}
	}

	// The aggregate must equal the sequential oracle that skips exactly
	// the gapped cells — proving the restart resumed the right stream
	// and nothing was double-counted.
	spw := sys.fleetShardsPerWindow()
	skip := map[int]bool{}
	for _, g := range gaps {
		for sh := g.ShardLo; sh < g.ShardHi; sh++ {
			skip[g.Window*spw+sh] = true
		}
	}
	ref := MustNewSystem(cfg)
	if !ref.InjectFleetDataset(ref.fleetReferenceSkipping(skip), gaps) {
		t.Fatal("reference system already memoized")
	}
	if want := digestJSON(t, ref); !bytes.Equal(got, want) {
		t.Fatalf("crashed-run digest differs from skip-oracle\n--- distributed ---\n%s\n--- oracle ---\n%s", got, want)
	}

	// Gap accounting itself is deterministic: a second full run crashes
	// and gaps identically.
	again, _ := runDistributed(t, cfg, agents, &plan)
	if !bytes.Equal(got, again) {
		t.Fatal("two crashed runs produced different digests")
	}
}

// TestFleetShardMapCoversGrid pins the shard map invariants the two
// sides both derive independently: contiguous, complete, ordered.
func TestFleetShardMapCoversGrid(t *testing.T) {
	sys := MustNewSystem(QuickConfig())
	spw := sys.fleetShardsPerWindow()
	for agents := 1; agents <= 2*spw; agents++ {
		m := sys.FleetShardMap(agents)
		prev := 0
		for a, rg := range m {
			if rg.Lo != prev || rg.Hi < rg.Lo {
				t.Fatalf("agents=%d: range %d is [%d,%d) after %d", agents, a, rg.Lo, rg.Hi, prev)
			}
			prev = rg.Hi
		}
		if prev != spw {
			t.Fatalf("agents=%d: map covers %d of %d shards", agents, prev, spw)
		}
	}
}

// TestAggregatorRejectsConfigMismatch: an agent built from a different
// seed must fail the handshake, not silently merge a foreign stream.
func TestAggregatorRejectsConfigMismatch(t *testing.T) {
	cfg := QuickConfig()
	sys := MustNewSystem(cfg)
	addr := filepath.Join(t.TempDir(), "agg.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = cfg.Seed + 1
	go func() {
		conn, err := DialFleetAgent("unix", addr, 5*time.Second)
		if err != nil {
			return
		}
		defer conn.Close()
		asys := MustNewSystem(bad)
		_ = asys.RunFleetAgent(0, 1, 0, conn, -1)
	}()
	_, _, err = sys.ServeFleetAggregator(ln, 1, 10*time.Second)
	ln.Close()
	if err == nil {
		t.Fatal("aggregator accepted a mismatched configuration")
	}
}
