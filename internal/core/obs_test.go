package core

import (
	"bytes"
	"fmt"
	"testing"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/obs"
)

// TestObsNoPerturbation is the tentpole guarantee of the observability
// layer: running the experiment suite with metrics enabled must produce
// the same output, byte for byte, as running with instrumentation
// disabled — sequentially and on the parallel engine. Instrumentation
// observes; it never participates.
//
// The transcript covers every suite section except figure15 and
// ext-oversub, whose packet-level sweeps dominate wall clock without
// touching any instrumentation path the remaining sections (and the
// degraded-mode arms) don't already exercise.
func TestObsNoPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("suite perturbation check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("suite perturbation check skipped under the race detector")
	}
	skip := map[string]bool{"figure15": true, "ext-oversub": true}
	for _, workers := range []int{1, 8} {
		run := func(reg *obs.Registry) (string, []byte) {
			cfg := QuickConfig()
			cfg.Seed = 42
			cfg.Parallelism = workers
			cfg.Taggers = workers
			cfg.FaultScenario = netsim.ScenarioCSWDown
			cfg.Obs = reg
			sys := MustNewSystem(cfg)
			var buf bytes.Buffer
			for _, sec := range SuiteSections(sys) {
				if skip[sec.Name] {
					continue
				}
				fmt.Fprintf(&buf, "=== %s ===\n%s\n", sec.Name, sec.Run(sys))
			}
			sum, err := sys.Summarize().JSON()
			if err != nil {
				t.Fatal(err)
			}
			return buf.String(), sum
		}

		offSuite, offSum := run(nil)
		reg := obs.NewRegistry()
		onSuite, onSum := run(reg)

		if offSuite != onSuite {
			t.Fatalf("workers=%d: suite output differs with metrics enabled\n--- disabled ---\n%.2000s\n--- enabled ---\n%.2000s",
				workers, offSuite, onSuite)
		}
		if !bytes.Equal(offSum, onSum) {
			t.Fatalf("workers=%d: Summarize JSON differs with metrics enabled:\n%s\nvs\n%s",
				workers, offSum, onSum)
		}

		// The enabled arm must actually have collected: a silently empty
		// registry would make this test vacuous.
		for _, counter := range []string{
			"fbdcnet_fleet_flow_attempts_total",
			"fbdcnet_netsim_injected_total",
			"fbdcnet_workload_packets_total",
			"fbdcnet_analysis_rows_total",
		} {
			if reg.CounterValue(counter) == 0 {
				t.Errorf("workers=%d: counter %s is zero after the suite", workers, counter)
			}
		}
		m := reg.Manifest(obs.RunMeta{Tool: "test"})
		if err := m.Validate(); err != nil {
			t.Errorf("workers=%d: suite manifest fails schema: %v", workers, err)
		}
		if len(m.Stages) == 0 || len(m.Progress) == 0 {
			t.Errorf("workers=%d: manifest missing stages/progress: %d stages, %d progress",
				workers, len(m.Stages), len(m.Progress))
		}
	}
}
