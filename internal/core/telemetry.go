package core

import (
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/render"
	"fbdcnet/internal/services"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// In-fabric telemetry experiment: deterministically sampled flows carry
// INT-style per-hop path records through a packet-level fabric while
// every switch port emits a fixed-interval queue-occupancy time series.
// The experiment contrasts a Web rack against a Hadoop rack across a
// diurnal sequence of one-second windows — the Figure 16/17 contrast at
// queue granularity. Each (arm, window) task owns its engine, fabric,
// and telemetry sink; sinks park at completion and fold strictly in task
// order, so results are bit-identical at any Config.Parallelism.

// TelemetryConfig sizes the telemetry experiment.
type TelemetryConfig struct {
	Windows   int         // diurnal points simulated
	Window    netsim.Time // packet-level traffic per window
	LoadBoost float64     // rate multiplier putting the racks at stressed load
	BufBytes  int64       // RSW shared buffer for the experiment
	Rate      float64     // flow sampling fraction (Config.TraceSample)
	Interval  netsim.Time
}

// telemetryOccBudget caps the total occupancy samples one window may
// emit across every switch series, so large topologies stretch the
// sampling interval instead of exploding memory.
const telemetryOccBudget = 1 << 21

// telemetryMaxRecords caps how many verbatim path records the merged
// result retains (in task order) for rendering and -paths-out export.
const telemetryMaxRecords = 128

// telemetryArmRoles are the contrasted racks: the paper's stable
// frontend traffic versus Hadoop's bursty all-to-all shuffle.
var telemetryArmRoles = []topology.Role{topology.RoleWeb, topology.RoleHadoop}

// telemetryConfig derives the experiment shape from the system config,
// clamping the occupancy interval to the per-window sample budget.
func (s *System) telemetryConfig() TelemetryConfig {
	tc := TelemetryConfig{
		Windows:   6,
		Window:    500 * netsim.Millisecond,
		LoadBoost: 6,
		BufBytes:  32 << 10,
		Rate:      s.Cfg.TraceSample,
		Interval:  s.Cfg.QueueInterval,
	}
	// One series per switch: racks + 4 CSWs per cluster + (4 FCs + 1 DCR)
	// per datacenter + 1 AGG per site + the backbone.
	nSwitches := len(s.Topo.Racks) + 4*len(s.Topo.Clusters) +
		5*len(s.Topo.Datacenters) + len(s.Topo.Sites) + 1
	if minIv := netsim.Time(int64(tc.Window) * int64(nSwitches) / telemetryOccBudget); tc.Interval < minIv {
		// Round up to a whole microsecond so timestamps stay on a clean grid.
		tc.Interval = (minIv + netsim.Microsecond - 1) / netsim.Microsecond * netsim.Microsecond
	}
	return tc
}

// TelemetryArm is one monitored rack's side of the contrast: per-window
// diurnal load and focus-RSW occupancy quantiles, plus the arm's share
// of the path-record aggregate.
type TelemetryArm struct {
	Role topology.Role
	Rack int

	// Per-window series, in window order.
	Load   []float64
	OccP50 []float64
	OccP99 []float64
	OccMax []float64

	Agg telemetry.Agg
}

// TelemetryResult is the merged output of the telemetry experiment.
type TelemetryResult struct {
	Rate     float64
	Interval netsim.Time
	BufBytes int64

	Arms     []TelemetryArm
	Agg      telemetry.Agg // both arms merged
	Hotspots []telemetry.PortHotspot
	Switches []telemetry.SwitchInfo
	Records  []*telemetry.PathRecord
}

// Telemetry runs (and memoizes) the in-fabric telemetry experiment; nil
// when Config.TraceSample is zero — the disabled path costs nothing and
// renders nothing.
func (s *System) Telemetry() *TelemetryResult {
	if s.Cfg.TraceSample <= 0 {
		return nil
	}
	s.telemOnce.Do(func() { s.telemRes = s.runTelemetry() })
	return s.telemRes
}

// runTelemetry fans the (arm, window) grid across the parallel engine.
// Completed sinks park under the mutex and fold strictly in task index
// order — the same frontier discipline as fleet partials and obs shards
// — so the merged aggregate, occupancy quantiles, hotspot ranking, and
// retained records are independent of completion order.
func (s *System) runTelemetry() *TelemetryResult {
	sp := s.Cfg.Obs.StartSpan("telemetry")
	defer sp.End()
	tcfg := s.telemetryConfig()
	res := &TelemetryResult{Rate: tcfg.Rate, Interval: tcfg.Interval, BufBytes: tcfg.BufBytes}
	for _, role := range telemetryArmRoles {
		res.Arms = append(res.Arms, TelemetryArm{
			Role: role,
			Rack: s.Topo.HostRack(s.Monitored(role)),
		})
	}

	n := len(res.Arms) * tcfg.Windows
	pool := telemetry.NewBufferPool()
	var (
		mu      sync.Mutex
		parked  = make([]*telemetry.Sink, n)
		done    = make([]bool, n)
		next    int
		byPort  = map[uint64]int64{}
		scratch []int64
	)
	prog := s.Cfg.Obs.NewProgress("telemetry-windows", int64(n))
	runParallel(s.Cfg.Workers(), n, func(i int) {
		sink := s.runTelemetryWindow(tcfg, res.Arms[i/tcfg.Windows].Role, i%tcfg.Windows, pool)
		mu.Lock()
		defer mu.Unlock()
		parked[i], done[i] = sink, true
		for next < n && done[next] {
			snk := parked[next]
			parked[next] = nil
			arm := &res.Arms[next/tcfg.Windows]
			w := next % tcfg.Windows
			arm.Load = append(arm.Load, DiurnalFactor(float64(w)/float64(tcfg.Windows)))
			var p50, p99, max float64
			if id, ok := snk.SwitchByName(fmt.Sprintf("rsw%d", arm.Rack)); ok {
				for _, os := range snk.Occ {
					if os.Switch == id {
						p50, p99, max, scratch = telemetry.OccQuantiles(os, tcfg.BufBytes, scratch)
						break
					}
				}
			}
			arm.OccP50 = append(arm.OccP50, p50)
			arm.OccP99 = append(arm.OccP99, p99)
			arm.OccMax = append(arm.OccMax, max)
			arm.Agg.Merge(&snk.Agg)
			telemetry.Hotspots(snk, byPort)
			for _, r := range snk.Records {
				if len(res.Records) < telemetryMaxRecords {
					res.Records = append(res.Records, r)
				}
			}
			if res.Switches == nil {
				res.Switches = snk.Switches()
			}
			snk.Release()
			next++
			prog.Set(int64(next))
		}
	})
	for i := range res.Arms {
		res.Agg.Merge(&res.Arms[i].Agg)
	}
	res.Hotspots = telemetry.RankHotspots(byPort, 5)
	s.foldTelemetry(res)
	s.auditTelemetry(res)
	if res.Agg.Sampled == 0 {
		slog.Warn("telemetry: sampling selected zero flows; the telemetry section will be empty",
			"trace_sample", tcfg.Rate)
	}
	return res
}

// runTelemetryWindow simulates one (arm, window) task: the mirror
// streams of every host in the monitored rack, diurnally scaled, through
// a fresh fabric with a telemetry sink attached and every port's queue
// sampled on the fixed interval. When a fault scenario is configured the
// same schedule runs inside each window, so path records exercise the
// fault reason codes.
func (s *System) runTelemetryWindow(tcfg TelemetryConfig, role topology.Role, w int, pool *telemetry.BufferPool) *telemetry.Sink {
	eng := &netsim.Engine{}
	fcfg := netsim.DefaultFabricConfig()
	fcfg.RSWBufBytes = tcfg.BufBytes
	fab := netsim.NewFabric(eng, s.Topo, fcfg)
	sink := telemetry.NewSink(s.Cfg.Seed, tcfg.Rate)
	sink.Buffers = pool
	fab.AttachTelemetry(sink)

	winDur := tcfg.Window
	focus := s.Monitored(role)
	if s.Cfg.FaultScenario != "" {
		sched, err := netsim.NewFaultSchedule(s.Cfg.FaultScenario, s.Topo, focus, s.Cfg.Seed, winDur)
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		fab.ApplyFaults(sched)
	}

	load := DiurnalFactor(float64(w) / float64(tcfg.Windows))
	params := s.Cfg.Params.Scaled(load * tcfg.LoadBoost)
	rack := s.Topo.HostRack(focus)
	var hdrs []packet.Header
	collect := workload.CollectorFunc(func(h packet.Header) { hdrs = append(hdrs, h) })
	for i := 0; i < int(s.Topo.Racks[rack].NumHosts); i++ {
		h := s.Topo.Racks[rack].Host(i)
		seed := s.Cfg.Seed ^ 0x7e1e<<24 ^ uint64(h)<<8 ^ uint64(w)
		tr := services.NewTrace(s.Pick, h, seed, params, collect)
		tr.Run(winDur)
	}
	sort.SliceStable(hdrs, func(i, j int) bool { return hdrs[i].Time < hdrs[j].Time })
	for _, h := range hdrs {
		h := h
		eng.At(h.Time, func() { fab.Inject(h) })
	}
	fab.StartQueueSampling(tcfg.Interval, winDur)
	eng.Run(winDur + faultDrainGrace)
	s.foldFabricStats(fab)
	return sink
}

// Render prints the telemetry section: the path-record digest (per-hop
// latency by tier, drop attribution by cause and tier, hotspot ports)
// and the per-arm occupancy timelines.
func (r *TelemetryResult) Render() string {
	var b strings.Builder
	b.WriteString("In-fabric telemetry: INT-style path records + per-port queue occupancy\n")
	fmt.Fprintf(&b, "  sampling: rate %.3f of flows, occupancy every %dµs, ToR buffer %s\n",
		r.Rate, int64(r.Interval/netsim.Microsecond), render.SI(float64(r.BufBytes)))
	a := &r.Agg
	if a.Sampled == 0 {
		b.WriteString("  no flows sampled at this rate; raise -trace-sample\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  sampled attempts %d: delivered %s%%, rerouted %d, retransmits %d, hops %d, e2e mean %.1fµs\n",
		a.Sampled, render.Pct(a.DeliveredFrac()), a.Rerouted, a.Retransmit,
		a.HopsTotal, a.MeanDeliverNs()/1e3)
	var rows [][]string
	for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
		ts := &a.Tiers[t]
		if ts.Hops == 0 {
			continue
		}
		rows = append(rows, []string{
			t.String(),
			fmt.Sprintf("%d", ts.Hops),
			fmt.Sprintf("%.1f", ts.MeanQDelay()/1e3),
			fmt.Sprintf("%.1f", ts.QDelayQuantile(0.99)/1e3),
			fmt.Sprintf("%.1f", float64(ts.QDelayMax)/1e3),
			render.SI(ts.MeanQDepth()),
			render.SI(float64(ts.QDepthMax)),
		})
	}
	b.WriteString(render.Table(
		[]string{"tier", "hops", "qdelay mean µs", "p99 µs", "max µs", "qdepth mean B", "max B"}, rows))
	if a.Dropped > 0 {
		fmt.Fprintf(&b, "  drops %d of %d:", a.Dropped, a.Sampled)
		for rc := telemetry.ReasonBufferDrop; rc < telemetry.NumReasons; rc++ {
			n := a.DropsByReason[rc]
			if n == 0 {
				continue
			}
			fmt.Fprintf(&b, " %s=%d", rc, n)
			var tiers []string
			for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
				if c := a.DropMatrix[rc][t]; c > 0 {
					tiers = append(tiers, fmt.Sprintf("%s %d", t, c))
				}
			}
			if len(tiers) > 0 {
				fmt.Fprintf(&b, " (%s)", strings.Join(tiers, ", "))
			}
		}
		b.WriteByte('\n')
	} else {
		b.WriteString("  drops: none among sampled attempts\n")
	}
	if len(r.Hotspots) > 0 {
		b.WriteString("  hotspot ports (peak queued bytes):")
		for _, h := range r.Hotspots {
			name := fmt.Sprintf("sw%d", h.Switch)
			if int(h.Switch) < len(r.Switches) {
				name = r.Switches[h.Switch].Name
			}
			fmt.Fprintf(&b, " %s:%d=%s", name, h.Port, render.SI(float64(h.PeakBytes)))
		}
		b.WriteByte('\n')
	}
	for i := range r.Arms {
		arm := &r.Arms[i]
		fmt.Fprintf(&b, "  %-6s rack %-3d load %s  occ p99 %s (peak %.3f)  occ max %s (peak %.3f)\n",
			strings.ToLower(arm.Role.String()), arm.Rack, render.Sparkline(arm.Load),
			render.Sparkline(arm.OccP99), MaxOf(arm.OccP99),
			render.Sparkline(arm.OccMax), MaxOf(arm.OccMax))
	}
	return b.String()
}
