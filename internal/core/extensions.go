package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fbdcnet/internal/baseline"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/render"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// The experiments in this file go beyond the paper's evaluation into the
// questions it explicitly could not answer (§7: per-host capture "prevents
// us from evaluating effects like incast or microbursts") and the
// implications it raises but does not quantify (§4.4: variable
// oversubscription; §4.3: Fabric pods behave like 4-post clusters).

// IncastPoint is one fan-in degree of the incast experiment.
type IncastPoint struct {
	Senders   int
	Delivered int64
	Dropped   int64
	// QueuePeak is the peak RSW shared-buffer occupancy fraction.
	QueuePeak float64
	// LastArrivalMs is when the final response byte arrived (flow
	// completion time of the scatter-gather).
	LastArrivalMs float64
	// MeanDelayUs and MaxDelayUs are per-packet network delays at the
	// receiving host.
	MeanDelayUs float64
	MaxDelayUs  float64
}

// IncastResult sweeps synchronized cache responses into one Web server —
// the microburst the paper's methodology could not observe.
type IncastResult struct {
	ResponseBytes int
	BufBytes      int64
	Points        []IncastPoint
}

// ExtensionIncast sends one synchronized response of respBytes from n
// cache followers to a single Web server for each n in senders, through a
// fabric whose RSWs have bufBytes of shared buffer, and reports drops and
// queue peaks. This is the §7 future-work experiment the simulator
// unlocks.
func (s *System) ExtensionIncast(senders []int, respBytes int, bufBytes int64) *IncastResult {
	res := &IncastResult{ResponseBytes: respBytes, BufBytes: bufBytes}
	web := s.Monitored(topology.RoleWeb)
	caches := s.Pick.InCluster(topology.RoleCacheFollower, s.Topo.HostCluster(web))

	for _, n := range senders {
		if n > caches.Len() {
			n = caches.Len()
		}
		eng := &netsim.Engine{}
		fcfg := netsim.DefaultFabricConfig()
		fcfg.RSWBufBytes = bufBytes
		fabric := netsim.NewFabric(eng, s.Topo, fcfg)
		rsw := fabric.RSWOfHost(web)

		var peak int64
		netsim.SampleOccupancy(eng, rsw, netsim.Microsecond, 50*netsim.Millisecond,
			func(_ netsim.Time, occ int64) {
				if occ > peak {
					peak = occ
				}
			})

		var lastArrival netsim.Time
		fabric.Sink(web).OnPacket = func(*netsim.Packet) { lastArrival = eng.Now() }

		// Every sender's full response enters the fabric at t=0, segmented
		// into MTU packets — the synchronized scatter-gather reply.
		for i := 0; i < n; i++ {
			src := caches.At(i)
			remaining := respBytes
			t := netsim.Time(0)
			for seq := 0; remaining > 0; seq++ {
				pl := remaining
				if pl > 1448 {
					pl = 1448
				}
				remaining -= pl
				hdr := packet.Header{
					Key: packet.FlowKey{
						Src: s.Topo.Addr(src), Dst: s.Topo.Addr(web),
						SrcPort: uint16(40000 + uint32(src)%20000), DstPort: 11211, Proto: packet.TCP,
					},
					Size: uint32(pl + 66),
				}
				at := t
				eng.At(at, func() { fabric.Inject(hdr) })
				t += 1200 // line-rate-ish pacing within a sender
			}
		}
		eng.Run(100 * netsim.Millisecond)

		sink := fabric.Sink(web)
		res.Points = append(res.Points, IncastPoint{
			Senders:       n,
			Delivered:     sink.Packets,
			Dropped:       rsw.Drops(),
			QueuePeak:     float64(peak) / float64(bufBytes),
			LastArrivalMs: float64(lastArrival) / float64(netsim.Millisecond),
			MeanDelayUs:   sink.Delay.Mean() / float64(netsim.Microsecond),
			MaxDelayUs:    sink.Delay.Max / float64(netsim.Microsecond),
		})
	}
	return res
}

// Render prints the incast sweep.
func (r *IncastResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: incast fan-in (one %d-byte response per sender, %s ToR buffer)\n",
		r.ResponseBytes, render.SI(float64(r.BufBytes)))
	headers := []string{"senders", "delivered", "dropped", "queue peak", "completion ms", "delay p-mean µs", "delay max µs"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Senders),
			fmt.Sprintf("%d", p.Delivered),
			fmt.Sprintf("%d", p.Dropped),
			fmt.Sprintf("%.2f", p.QueuePeak),
			fmt.Sprintf("%.2f", p.LastArrivalMs),
			fmt.Sprintf("%.1f", p.MeanDelayUs),
			fmt.Sprintf("%.1f", p.MaxDelayUs),
		})
	}
	b.WriteString(render.Table(headers, rows))
	return b.String()
}

// OversubPoint is one oversubscription factor of the sweep.
type OversubPoint struct {
	Factor     float64 // rack uplink capacity divisor (1 = non-blocking)
	DropFrac   float64 // fraction of injected packets dropped at the RSW
	UplinkUtil float64
}

// OversubResult is the §4.4 experiment: how much rack uplink capacity can
// be removed before each workload starts dropping.
type OversubResult struct {
	Role     topology.Role
	Workload string // empty for the measured workload
	Points   []OversubPoint
}

// ExtensionOversubscription injects a rack's worth of mirror traffic
// through fabrics with progressively weaker rack uplinks and measures
// RSW egress drops. Run it for a Hadoop rack (cluster-bound shuffle) and
// a Web rack (cluster-bound fan-out) to see which tolerates
// oversubscription.
func (s *System) ExtensionOversubscription(role topology.Role, factors []float64, seconds int) *OversubResult {
	host := s.Monitored(role)
	rack := s.Topo.HostRack(host)

	// One shared synthesized window of the rack's traffic, at elevated
	// load so the sweep reaches drop onset within laptop-scale rates.
	hdrs := s.rackWindow(rack, seconds, 0xc0de, 6)
	return s.oversubSweep(role, rack, hdrs, factors, seconds)
}

// ExtensionOversubAllToAll runs the same uplink sweep with the
// literature's uniform all-to-all assumption generated from the same
// rack: the workload full-bisection fabrics are built for. Its bytes
// almost all cross the rack boundary, so drops start at far lower
// oversubscription than the measured workloads tolerate.
func (s *System) ExtensionOversubAllToAll(factors []float64, seconds int) *OversubResult {
	host := s.Monitored(topology.RoleHadoop)
	rack := s.Topo.HostRack(host)
	var hdrs []packet.Header
	collect := workload.CollectorFunc(func(p packet.Header) { hdrs = append(hdrs, p) })
	for i := 0; i < int(s.Topo.Racks[rack].NumHosts); i++ {
		h := s.Topo.Racks[rack].Host(i)
		baseline.GenerateAllToAll(s.Topo, h, s.Cfg.Seed^0xa2a^uint64(h),
			baseline.DefaultAllToAllParams(), netsim.Time(seconds)*netsim.Second, collect)
	}
	sort.SliceStable(hdrs, func(i, j int) bool { return hdrs[i].Time < hdrs[j].Time })
	res := s.oversubSweep(topology.RoleHadoop, rack, hdrs, factors, seconds)
	res.Workload = "all-to-all baseline"
	return res
}

// oversubSweep replays one traffic window through fabrics with weakening
// rack uplinks.
func (s *System) oversubSweep(role topology.Role, rack int, hdrs []packet.Header, factors []float64, seconds int) *OversubResult {
	res := &OversubResult{Role: role}

	for _, f := range factors {
		eng := &netsim.Engine{}
		fcfg := netsim.DefaultFabricConfig()
		fcfg.RSWUpBps = int64(float64(fcfg.RSWUpBps) / f)
		fabric := netsim.NewFabric(eng, s.Topo, fcfg)
		rsw := fabric.RSW(rack)
		for _, h := range hdrs {
			h := h
			eng.At(h.Time, func() { fabric.Inject(h) })
		}
		dur := netsim.Time(seconds) * netsim.Second
		eng.Run(dur + netsim.Second)

		var forwarded, drops int64
		drops = rsw.Drops()
		for i := 0; i < rsw.NumPorts(); i++ {
			forwarded += rsw.Port(i).Forwarded()
		}
		point := OversubPoint{Factor: f}
		if forwarded+drops > 0 {
			point.DropFrac = float64(drops) / float64(forwarded+drops)
		}
		// Average utilization of this rack's four uplinks.
		rackUp := 0.0
		links := fabric.LinksByTier(netsim.TierRSWCSW)
		for i := 0; i < 4; i++ {
			rackUp += links[rack*4+i].Utilization(dur)
		}
		point.UplinkUtil = rackUp / 4
		res.Points = append(res.Points, point)
	}
	return res
}

// rackWindow synthesizes and time-sorts one window of mirror traffic for
// every host in a rack.
func (s *System) rackWindow(rack, seconds int, salt uint64, boost float64) []packet.Header {
	var hdrs []packet.Header
	collect := workload.CollectorFunc(func(p packet.Header) { hdrs = append(hdrs, p) })
	params := s.Cfg.Params.Scaled(boost)
	for i := 0; i < int(s.Topo.Racks[rack].NumHosts); i++ {
		h := s.Topo.Racks[rack].Host(i)
		tr := services.NewTrace(s.Pick, h, s.Cfg.Seed^salt^uint64(h)<<8, params, collect)
		tr.Run(netsim.Time(seconds) * netsim.Second)
	}
	sort.SliceStable(hdrs, func(i, j int) bool { return hdrs[i].Time < hdrs[j].Time })
	return hdrs
}

// Render prints the oversubscription sweep.
func (r *OversubResult) Render() string {
	var b strings.Builder
	label := r.Role.String()
	if r.Workload != "" {
		label = r.Workload
	}
	fmt.Fprintf(&b, "Extension: rack uplink oversubscription sweep (%s rack)\n", label)
	headers := []string{"oversub", "uplink util", "drop frac"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f:1", p.Factor),
			fmt.Sprintf("%.4f", p.UplinkUtil),
			fmt.Sprintf("%.5f", p.DropFrac),
		})
	}
	b.WriteString(render.Table(headers, rows))
	return b.String()
}

// FabricResult compares the Frontend traffic matrix of a classic 4-post
// cluster with a next-generation Fabric pod (§4.3: "the rack-to-rack
// traffic matrix of a Frontend 'cluster' inside one of the new Fabric
// datacenters … looks similar").
type FabricResult struct {
	FourPostDiag float64
	FabricDiag   float64
	// Similarity is the cosine similarity of the two matrices' normalized
	// off-diagonal structure.
	Similarity float64
}

// ExtensionFabric extracts both matrices from the fleet dataset and
// compares their structure.
func (s *System) ExtensionFabric() *FabricResult {
	ds := s.FleetDataset()
	var classic, fabric int = -1, -1
	for _, c := range s.Topo.Clusters {
		if c.Type != topology.ClusterFrontend {
			continue
		}
		if c.Fabric && fabric < 0 {
			fabric = c.ID
		}
		if !c.Fabric && classic < 0 {
			classic = c.ID
		}
	}
	if classic < 0 || fabric < 0 {
		return &FabricResult{}
	}
	a := ds.RackMatrix(s.Topo, classic)
	b := ds.RackMatrix(s.Topo, fabric)
	return &FabricResult{
		FourPostDiag: matrixDiag(a),
		FabricDiag:   matrixDiag(b),
		Similarity:   matrixCosine(a, b),
	}
}

// matrixCosine returns the cosine similarity of two equally sized
// matrices flattened to vectors (0 when either is empty or sizes differ).
func matrixCosine(a, b [][]float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return 0
		}
		for j := range a[i] {
			dot += a[i][j] * b[i][j]
			na += a[i][j] * a[i][j]
			nb += b[i][j] * b[i][j]
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Render prints the Fabric comparison.
func (r *FabricResult) Render() string {
	return fmt.Sprintf(
		"Extension: Fabric pod vs 4-post Frontend cluster\n"+
			"  diagonal byte fraction: 4-post %.3f, Fabric %.3f\n"+
			"  matrix cosine similarity: %.3f (the §4.3 'looks similar' claim)\n",
		r.FourPostDiag, r.FabricDiag, r.Similarity)
}

// Section52Result reproduces §5.2's object-popularity observations:
// top-50 request-rate distributions are close across cache servers, and
// top-50 membership churns at minute scale.
type Section52Result struct {
	services.ObjectChurnResult
}

// Section52 runs the cache object popularity model.
func (s *System) Section52() *Section52Result {
	cfg := services.DefaultObjectChurnConfig(s.Cfg.Params)
	r := rng.New(s.Cfg.Seed ^ 0x0b7ec7)
	return &Section52Result{services.SimulateObjectPopularity(cfg, r)}
}

// Render prints the §5.2 reproduction.
func (r *Section52Result) Render() string {
	return fmt.Sprintf(
		"Section 5.2: cache object popularity\n"+
			"  median top-50 membership lifespan: %.0f s (paper: 'a few minutes')\n"+
			"  cross-server top-50 rate similarity: %.3f (paper: 'close across all cache servers')\n"+
			"  request share absorbed by top-50: %.1f%%\n",
		r.MedianLifespanSec, r.CrossServerSimilarity, 100*r.TopKShare)
}

// DayOverDayResult checks §4.3's "Facebook's traffic patterns remain
// stable day-over-day" (contrasting Delimitrou et al.'s day-to-day
// variation): two independently seeded synthetic days must produce nearly
// identical locality structure.
type DayOverDayResult struct {
	// MaxLocalityDelta is the largest absolute difference in any
	// fleet-wide locality share between the two days.
	MaxLocalityDelta float64
	// MatrixSimilarity is the cosine similarity of the two days'
	// cluster-to-cluster matrices.
	MatrixSimilarity float64
}

// DayOverDay runs a second synthetic day with a different seed and
// compares it to the System's own day.
func (s *System) DayOverDay() *DayOverDayResult {
	day1 := s.FleetDataset()

	// A fresh System (sharing the immutable Topo and Picker) rather than a
	// struct copy: System now carries a mutex and sync.Once for the
	// parallel engine, and copying those is a vet violation.
	cfg2 := s.Cfg
	cfg2.Seed = s.Cfg.Seed + 0x9e3779b9
	other := &System{Cfg: cfg2, Topo: s.Topo, Pick: s.Pick, bundles: make(map[bundleKey]*bundleSlot)}
	day2 := other.FleetDataset()

	res := &DayOverDayResult{}
	a, b := day1.LocalityShareAll(), day2.LocalityShareAll()
	for _, l := range topology.Localities {
		d := math.Abs(a[l] - b[l])
		if d > res.MaxLocalityDelta {
			res.MaxLocalityDelta = d
		}
	}
	var clusters []int
	for _, c := range s.Topo.Clusters {
		clusters = append(clusters, c.ID)
	}
	res.MatrixSimilarity = matrixCosine(
		day1.ClusterMatrix(clusters), day2.ClusterMatrix(clusters))
	return res
}

// Render prints the day-over-day comparison.
func (r *DayOverDayResult) Render() string {
	return fmt.Sprintf(
		"Extension: day-over-day stability (independent seeds)\n"+
			"  max locality share delta: %.2f%% (paper: 'stable day-over-day')\n"+
			"  cluster matrix cosine similarity: %.4f\n",
		100*r.MaxLocalityDelta, r.MatrixSimilarity)
}
