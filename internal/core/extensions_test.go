package core

import (
	"strings"
	"testing"

	"fbdcnet/internal/topology"
)

func TestExtensionIncast(t *testing.T) {
	s := quickSys(t)
	res := s.ExtensionIncast([]int{1, 4}, 64<<10, 64<<10)
	if len(res.Points) != 2 {
		t.Fatalf("points %d", len(res.Points))
	}
	a, b := res.Points[0], res.Points[1]
	if a.Senders >= b.Senders {
		t.Fatalf("sender counts not increasing: %d %d", a.Senders, b.Senders)
	}
	if b.QueuePeak <= a.QueuePeak {
		t.Errorf("queue peak should grow with fan-in: %.3f vs %.3f", a.QueuePeak, b.QueuePeak)
	}
	if a.Delivered == 0 {
		t.Error("single sender delivered nothing")
	}
	if b.LastArrivalMs <= a.LastArrivalMs {
		t.Errorf("completion time should grow with fan-in: %.2f vs %.2f", a.LastArrivalMs, b.LastArrivalMs)
	}
	if !strings.Contains(res.Render(), "incast") {
		t.Error("render missing title")
	}
}

func TestExtensionOversubscription(t *testing.T) {
	s := quickSys(t)
	res := s.ExtensionOversubscription(topology.RoleHadoop, []float64{1, 40}, 3)
	if len(res.Points) != 2 {
		t.Fatalf("points %d", len(res.Points))
	}
	// Heavier oversubscription must not reduce drops.
	if res.Points[1].DropFrac < res.Points[0].DropFrac {
		t.Errorf("drops decreased under oversubscription: %v", res.Points)
	}
	if res.Points[1].UplinkUtil <= res.Points[0].UplinkUtil {
		t.Errorf("uplink utilization should rise when capacity shrinks: %v", res.Points)
	}
	if !strings.Contains(res.Render(), "oversubscription") {
		t.Error("render missing title")
	}
}

func TestExtensionFabric(t *testing.T) {
	s := quickSys(t)
	res := s.ExtensionFabric()
	if res.Similarity < 0.5 {
		t.Errorf("fabric/4-post similarity %.3f, want high (same logical behaviour)", res.Similarity)
	}
	if res.FourPostDiag > 0.2 || res.FabricDiag > 0.2 {
		t.Errorf("frontend matrices should be off-diagonal: %.3f %.3f", res.FourPostDiag, res.FabricDiag)
	}
	if !strings.Contains(res.Render(), "Fabric") {
		t.Error("render missing title")
	}
}

func TestSection52ObjectChurn(t *testing.T) {
	s := quickSys(t)
	res := s.Section52()
	// "A few minutes": between one and ten minutes at the default epoch.
	if res.MedianLifespanSec < 60 || res.MedianLifespanSec > 600 {
		t.Errorf("top-50 lifespan %.0fs, want minutes-scale", res.MedianLifespanSec)
	}
	if res.CrossServerSimilarity < 0.9 {
		t.Errorf("cross-server similarity %.3f, want ≈1", res.CrossServerSimilarity)
	}
	if res.TopKShare <= 0 || res.TopKShare >= 1 {
		t.Errorf("top-K share %.3f out of range", res.TopKShare)
	}
	if !strings.Contains(res.Render(), "Section 5.2") {
		t.Error("render missing title")
	}
}

func TestExtensionOversubAllToAll(t *testing.T) {
	s := quickSys(t)
	factors := []float64{1, 20}
	a2a := s.ExtensionOversubAllToAll(factors, 2)
	measured := s.ExtensionOversubscription(topology.RoleHadoop, factors, 2)
	if a2a.Workload == "" || !strings.Contains(a2a.Render(), "all-to-all") {
		t.Error("workload label missing")
	}
	// Uniform traffic sends essentially everything off-rack, so its
	// uplink utilization at the same factor must exceed the rack-local
	// Hadoop workload's.
	if a2a.Points[1].UplinkUtil <= measured.Points[1].UplinkUtil {
		t.Errorf("all-to-all uplink util (%.4f) should exceed hadoop's (%.4f)",
			a2a.Points[1].UplinkUtil, measured.Points[1].UplinkUtil)
	}
}

func TestDayOverDayStable(t *testing.T) {
	s := quickSys(t)
	res := s.DayOverDay()
	if res.MaxLocalityDelta > 0.05 {
		t.Errorf("locality delta %.3f, want small (stable day-over-day)", res.MaxLocalityDelta)
	}
	if res.MatrixSimilarity < 0.95 {
		t.Errorf("matrix similarity %.3f, want ≈1", res.MatrixSimilarity)
	}
	if !strings.Contains(res.Render(), "day-over-day") {
		t.Error("render missing title")
	}
}

func TestIncastDelayGrowsWithFanIn(t *testing.T) {
	s := quickSys(t)
	res := s.ExtensionIncast([]int{1, 8}, 64<<10, 128<<10)
	if res.Points[1].MaxDelayUs <= res.Points[0].MaxDelayUs {
		t.Errorf("max delay should grow with fan-in: %.1f vs %.1f µs",
			res.Points[0].MaxDelayUs, res.Points[1].MaxDelayUs)
	}
	if res.Points[0].MeanDelayUs <= 0 {
		t.Error("no delay recorded")
	}
}
