package core

import (
	"testing"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/topology"
)

// TestDegradedCSWDownAcceptance pins the headline survivability claim:
// with one of the four CSW posts down for most of the run, ECMP
// re-hashing delivers everything — zero lost-forever packets, zero
// intra-rack losses in particular — while the rerouted-byte counters show
// real traffic moved off the dead post.
func TestDegradedCSWDownAcceptance(t *testing.T) {
	cfg := QuickConfig()
	cfg.FaultScenario = netsim.ScenarioCSWDown
	s := MustNewSystem(cfg)
	d := s.Degraded()
	if d == nil {
		t.Fatal("Degraded() returned nil with a scenario configured")
	}
	if d.Faults.LostByLocality[topology.IntraRack] != 0 {
		t.Fatalf("csw-down lost %d intra-rack packets, want 0", d.Faults.LostByLocality[topology.IntraRack])
	}
	if d.Faults.LostPkts != 0 {
		t.Fatalf("csw-down lost %d packets forever, want 0", d.Faults.LostPkts)
	}
	if d.Faults.ReroutedBytes == 0 || d.Faults.ReroutedPkts == 0 {
		t.Fatalf("csw-down rerouted nothing: %+v", d.Faults)
	}
	if d.Faults.FaultEvents != 1 || d.Faults.Recoveries != 1 {
		t.Fatalf("csw-down transitions %d/%d, want 1/1", d.Faults.FaultEvents, d.Faults.Recoveries)
	}
	if d.Degraded.DeliveredPkts != d.Baseline.DeliveredPkts {
		t.Fatalf("csw-down delivered %d packets, baseline %d — 4-post redundancy should hide the fault",
			d.Degraded.DeliveredPkts, d.Baseline.DeliveredPkts)
	}
	// Degraded() is memoized: a second call must return the same result.
	if s.Degraded() != d {
		t.Fatal("Degraded() is not memoized")
	}
}

// TestDegradedScenarioSweep runs every built-in scenario and checks the
// sweep's basic shape: all scenarios execute their fault transitions, the
// baseline delivers (nearly) everything, and the rack-drain scenario —
// which kills the only path out of the focus rack for longer than the
// retransmission budget — actually loses traffic.
func TestDegradedScenarioSweep(t *testing.T) {
	s := MustNewSystem(QuickConfig())
	rs := s.DegradedScenarios()
	if len(rs) != len(netsim.FaultScenarios()) {
		t.Fatalf("sweep covered %d scenarios, want %d", len(rs), len(netsim.FaultScenarios()))
	}
	for _, d := range rs {
		if d.Faults.FaultEvents == 0 {
			t.Errorf("%s: no fault transitions executed", d.Scenario)
		}
		if d.Baseline.DeliveredFrac < 0.99 {
			t.Errorf("%s: baseline delivered only %.4f of offered bytes", d.Scenario, d.Baseline.DeliveredFrac)
		}
		if d.OfferedPkts == 0 || d.Degraded.DeliveredPkts == 0 {
			t.Errorf("%s: degenerate run: offered %d delivered %d", d.Scenario, d.OfferedPkts, d.Degraded.DeliveredPkts)
		}
		if d.Degraded.DeliveredFrac > 1.0000001 {
			t.Errorf("%s: delivered more than offered (%.6f)", d.Scenario, d.Degraded.DeliveredFrac)
		}
		if len(d.Degraded.LocalityBytes) != len(topology.Localities) {
			t.Errorf("%s: locality split incomplete: %v", d.Scenario, d.Degraded.LocalityBytes)
		}
		if d.Render() == "" {
			t.Errorf("%s: empty render", d.Scenario)
		}
	}
	var drain *DegradedResult
	for _, d := range rs {
		if d.Scenario == netsim.ScenarioRackDrain {
			drain = d
		}
	}
	if drain == nil {
		t.Fatal("sweep is missing rack-drain")
	}
	if drain.Faults.LostPkts == 0 || drain.Faults.Retransmits == 0 {
		t.Errorf("rack-drain lost %d / retransmitted %d — draining the only RSW should exceed the retry budget",
			drain.Faults.LostPkts, drain.Faults.Retransmits)
	}
	if drain.Degraded.DeliveredFrac >= drain.Baseline.DeliveredFrac {
		t.Errorf("rack-drain delivered %.4f, not below baseline %.4f",
			drain.Degraded.DeliveredFrac, drain.Baseline.DeliveredFrac)
	}
}

// TestAblationFaultResilience pins the reroute ablation's direction:
// ECMP re-hashing must beat pinning flows to the dead post.
func TestAblationFaultResilience(t *testing.T) {
	s := MustNewSystem(QuickConfig())
	a := s.AblationFaultResilience()
	if a.On <= a.Off {
		t.Fatalf("reroute on=%.4f not better than off=%.4f", a.On, a.Off)
	}
	if !a.HigherIsBetter {
		t.Fatal("delivered fraction should be marked higher-is-better")
	}
}
