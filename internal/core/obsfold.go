package core

import (
	"strings"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
)

// This file is the only bridge between the experiment engine and the
// observability layer. Subsystems (netsim, workload, analysis, openhash)
// stay obs-free — they expose plain single-goroutine counters, and core
// folds those into the registry at stage boundaries. Hot parallel paths
// (fleet collection) increment worker-local obs.Shards that park and fold
// at the same task-order frontier as their fbflow.Partials.

// coreObsIDs caches every counter and histogram ID the engine folds into.
// All registration happens in initObs, before any shard exists.
type coreObsIDs struct {
	// Fleet collection (fbflow tagging stage).
	fleetAttempts    obs.CounterID // flows offered to the tagger
	fleetRecords     obs.CounterID // sampled records merged into the dataset
	fleetMatrixCells obs.CounterID // demand cells packed in matrix mode
	fleetShardUs     obs.HistID    // per-shard wall time, µs

	// Simulated fabric (degraded-mode packet runs).
	netsimInjected    obs.CounterID
	netsimEnqueues    obs.CounterID
	netsimForwarded   obs.CounterID
	netsimDrops       obs.CounterID
	netsimFaultDrops  obs.CounterID
	netsimRerouted    obs.CounterID
	netsimRetransmits obs.CounterID
	netsimFaultEvents obs.CounterID

	// Mirror-trace generation (workload layer).
	tracePackets obs.CounterID
	traceBatches obs.CounterID

	// Analysis open-addressing tables.
	analysisRows    obs.CounterID
	analysisGrows   obs.CounterID
	analysisLoadPct obs.HistID

	// In-fabric telemetry (sampled path records).
	telemSampled     obs.CounterID
	telemHops        obs.CounterID
	telemDelivered   obs.CounterID
	telemDropped     obs.CounterID
	telemRerouted    obs.CounterID
	telemRetransmits obs.CounterID
}

// initObs registers the engine's metrics against Cfg.Obs. A nil registry
// makes every Counter call return the zero ID; the zero IDs are never
// dereferenced because shards and registry writes are nil-gated.
func (s *System) initObs() {
	r := s.Cfg.Obs
	if r == nil {
		return
	}
	ids := &s.obsIDs
	ids.fleetAttempts = r.Counter("fbdcnet_fleet_flow_attempts_total",
		"flows offered to the fbflow tagger during fleet collection")
	ids.fleetRecords = r.Counter("fbdcnet_fleet_records_total",
		"sampled fbflow records merged into the fleet dataset")
	ids.fleetMatrixCells = r.Counter("fbdcnet_fleet_matrix_cells_total",
		"rack-pair demand cells packed during matrix-mode fleet collection")
	ids.fleetShardUs = r.Histogram("fbdcnet_fleet_shard_us",
		"wall time of one fleet collection shard, microseconds")

	ids.netsimInjected = r.Counter("fbdcnet_netsim_injected_total",
		"packets injected into simulated fabrics")
	ids.netsimEnqueues = r.Counter("fbdcnet_netsim_enqueues_total",
		"packets accepted into switch buffers across all hops")
	ids.netsimForwarded = r.Counter("fbdcnet_netsim_forwarded_total",
		"packets transmitted from switch egress ports")
	ids.netsimDrops = r.Counter("fbdcnet_netsim_drops_total",
		"packets lost to shared-buffer exhaustion")
	ids.netsimFaultDrops = r.Counter("fbdcnet_netsim_fault_drops_total",
		"packets lost to down switches or links")
	ids.netsimRerouted = r.Counter("fbdcnet_netsim_rerouted_total",
		"packets ECMP re-hashed around dead paths")
	ids.netsimRetransmits = r.Counter("fbdcnet_netsim_retransmits_total",
		"retransmission attempts scheduled by the fault layer")
	ids.netsimFaultEvents = r.Counter("fbdcnet_netsim_fault_events_total",
		"fault onset transitions applied to fabric elements")

	ids.tracePackets = r.Counter("fbdcnet_workload_packets_total",
		"packet headers emitted by mirror-trace generators")
	ids.traceBatches = r.Counter("fbdcnet_workload_batches_total",
		"header slabs handed from generators to collectors")

	ids.analysisRows = r.Counter("fbdcnet_analysis_rows_total",
		"entries held in analysis open-addressing tables at trace end")
	ids.analysisGrows = r.Counter("fbdcnet_analysis_table_grows_total",
		"rehashes performed by analysis open-addressing tables")
	ids.analysisLoadPct = r.Histogram("fbdcnet_analysis_table_load_pct",
		"load factor (percent) of analysis tables at trace end")

	ids.telemSampled = r.Counter("fbdcnet_telemetry_sampled_total",
		"delivery attempts of telemetry-sampled flows (path records opened)")
	ids.telemHops = r.Counter("fbdcnet_telemetry_hops_total",
		"switch traversals recorded on sampled path records")
	ids.telemDelivered = r.Counter("fbdcnet_telemetry_delivered_total",
		"sampled attempts that reached their destination host")
	ids.telemDropped = r.Counter("fbdcnet_telemetry_dropped_total",
		"sampled attempts lost in the fabric, any cause")
	ids.telemRerouted = r.Counter("fbdcnet_telemetry_rerouted_total",
		"sampled attempts ECMP re-hashed off their hash post")
	ids.telemRetransmits = r.Counter("fbdcnet_telemetry_retransmits_total",
		"sampled attempts that were fault-layer retries")
}

// foldTrace folds one finished trace bundle's counters: headers and
// batches (total and per role) plus the table statistics of every
// analysis attached to the capture.
func (s *System) foldTrace(b *TraceBundle, batches int64) {
	r := s.Cfg.Obs
	if r == nil {
		return
	}
	r.AddCounter(s.obsIDs.tracePackets, b.Packets)
	r.AddCounter(s.obsIDs.traceBatches, batches)
	role := b.Role.String()
	r.Count(obs.Series("fbdcnet_workload_headers_total", "role", role), float64(b.Packets))
	r.Count(obs.Series("fbdcnet_workload_role_batches_total", "role", role), float64(batches))
	s.foldTableStats(b.Flows.TableStats())
	s.foldTableStats(b.Conc.TableStats())
	for _, m := range b.HH {
		for _, hh := range m {
			s.foldTableStats(hh.TableStats())
		}
	}
}

// foldTableStats folds open-addressing table statistics into the
// aggregate counters, the per-table labeled series, and the load-factor
// histogram.
func (s *System) foldTableStats(stats []analysis.TableStats) {
	r := s.Cfg.Obs
	if r == nil {
		return
	}
	for _, ts := range stats {
		r.AddCounter(s.obsIDs.analysisRows, int64(ts.Rows))
		r.AddCounter(s.obsIDs.analysisGrows, int64(ts.Grows))
		if ts.Cap > 0 {
			r.Observe(s.obsIDs.analysisLoadPct, int64(ts.LoadPct()))
		}
		r.Count(obs.Series("fbdcnet_analysis_table_rows_total", "table", ts.Name), float64(ts.Rows))
	}
}

// foldFabricStats folds one simulated-fabric run: the switch-level packet
// accounting plus the fault layer's reroute/retransmission counters.
func (s *System) foldFabricStats(fab *netsim.Fabric) {
	s.Cfg.Audit.BB().Record(audit.EvFault, "fabric-faults", fab.Faults().FaultEvents, 0)
	r := s.Cfg.Obs
	if r == nil {
		return
	}
	st := fab.Stats()
	r.AddCounter(s.obsIDs.netsimInjected, st.Injected)
	r.AddCounter(s.obsIDs.netsimEnqueues, st.Enqueues)
	r.AddCounter(s.obsIDs.netsimForwarded, st.Forwarded)
	r.AddCounter(s.obsIDs.netsimDrops, st.Drops)
	r.AddCounter(s.obsIDs.netsimFaultDrops, st.FaultDrops)
	fs := fab.Faults()
	r.AddCounter(s.obsIDs.netsimRerouted, fs.ReroutedPkts)
	r.AddCounter(s.obsIDs.netsimRetransmits, fs.Retransmits)
	r.AddCounter(s.obsIDs.netsimFaultEvents, fs.FaultEvents)
}

// foldTelemetry folds the merged telemetry experiment result: path-
// record totals, per-reason drop series, per-tier hop series and
// queuing-delay gauges, and the per-arm occupancy peaks.
func (s *System) foldTelemetry(res *TelemetryResult) {
	r := s.Cfg.Obs
	if r == nil {
		return
	}
	a := &res.Agg
	r.AddCounter(s.obsIDs.telemSampled, a.Sampled)
	r.AddCounter(s.obsIDs.telemHops, a.HopsTotal)
	r.AddCounter(s.obsIDs.telemDelivered, a.Delivered)
	r.AddCounter(s.obsIDs.telemDropped, a.Dropped)
	r.AddCounter(s.obsIDs.telemRerouted, a.Rerouted)
	r.AddCounter(s.obsIDs.telemRetransmits, a.Retransmit)
	for rc := telemetry.ReasonBufferDrop; rc < telemetry.NumReasons; rc++ {
		if v := a.DropsByReason[rc]; v > 0 {
			r.Count(obs.Series("fbdcnet_telemetry_drops_total", "reason", rc.String()), float64(v))
		}
	}
	for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
		ts := &a.Tiers[t]
		if ts.Hops == 0 {
			continue
		}
		r.Count(obs.Series("fbdcnet_telemetry_tier_hops_total", "tier", t.String()), float64(ts.Hops))
		r.SetGauge(obs.Series("fbdcnet_telemetry_tier_qdelay_mean_us", "tier", t.String()),
			ts.MeanQDelay()/1e3)
	}
	for i := range res.Arms {
		arm := &res.Arms[i]
		name := strings.ToLower(arm.Role.String())
		r.SetGauge(obs.Series("fbdcnet_telemetry_occ_p99_peak", "arm", name), MaxOf(arm.OccP99))
		r.SetGauge(obs.Series("fbdcnet_telemetry_occ_max_peak", "arm", name), MaxOf(arm.OccMax))
	}
}

// scaleName names a topology scale for the run manifest.
func scaleName(sc topology.Scale) string { return sc.String() }

// ManifestMeta describes this configuration for the run manifest.
func (c Config) ManifestMeta(tool string) obs.RunMeta {
	return obs.RunMeta{
		Tool: tool,
		Config: map[string]any{
			"scale":             scaleName(c.Scale),
			"seed":              c.Seed,
			"short_trace_sec":   c.ShortTraceSec,
			"long_trace_sec":    c.LongTraceSec,
			"fleet_windows":     c.FleetWindows,
			"fleet_window_sec":  c.FleetWindowSec,
			"fleet_samples":     c.FleetSamples,
			"fleet_matrix":      c.FleetMatrix,
			"mem_ceiling_bytes": c.MemCeilingBytes,
			"parallelism":       c.Workers(),
			"taggers":           c.TaggerWorkers(),
			"fault_scenario":    c.FaultScenario,
			"trace_sample":      c.TraceSample,
			"queue_interval_us": int64(c.QueueInterval / netsim.Microsecond),
			"sketch_mode":       c.SketchMode,
			"audit":             c.Audit.Enabled(),
		},
	}
}
