package core

import (
	"fmt"
	"strings"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/baseline"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/render"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// Figure4Result reproduces Figure 4: per-second outbound traffic locality
// for each monitored role over a short capture.
type Figure4Result struct {
	// Series[role][locality] is the per-second byte series.
	Series map[topology.Role]map[topology.Locality][]float64
	// Share and Stability summarize each role's locality mix and its
	// per-second coefficient of variation.
	Share     map[topology.Role]map[topology.Locality]float64
	Stability map[topology.Role]map[topology.Locality]float64
}

// Figure4 runs the per-second locality series for the monitored roles.
func (s *System) Figure4() *Figure4Result {
	out := &Figure4Result{
		Series:    make(map[topology.Role]map[topology.Locality][]float64),
		Share:     make(map[topology.Role]map[topology.Locality]float64),
		Stability: make(map[topology.Role]map[topology.Locality]float64),
	}
	for _, role := range MonitoredRoles {
		b := s.Trace(role, s.Cfg.ShortTraceSec)
		out.Series[role] = make(map[topology.Locality][]float64)
		for _, l := range topology.Localities {
			out.Series[role][l] = b.Loc.Series(l)
		}
		out.Share[role] = b.Loc.Share()
		out.Stability[role] = b.Loc.Stability()
	}
	return out
}

// Render prints per-role locality sparklines and shares.
func (f *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: per-second traffic locality by system type\n")
	for _, role := range MonitoredRoles {
		fmt.Fprintf(&b, "%s:\n", role)
		for _, l := range topology.Localities {
			share := f.Share[role][l]
			fmt.Fprintf(&b, "  %-16s %5s%%  %s\n", l, render.Pct(share), render.Sparkline(f.Series[role][l]))
		}
	}
	return b.String()
}

// Figure5Result reproduces the traffic-demand matrices of Figure 5.
type Figure5Result struct {
	HadoopRacks   [][]float64 // 5a: rack-to-rack within a Hadoop cluster
	FrontendRacks [][]float64 // 5b: rack-to-rack within a Frontend cluster
	Clusters      [][]float64 // 5c: cluster-to-cluster
	// Diagonality is the byte fraction on the matrix diagonal, the
	// quantitative version of "strong diagonal" vs "bipartite".
	HadoopDiag, FrontendDiag float64
}

// matrixDiag returns the diagonal byte fraction of a square matrix.
func matrixDiag(m [][]float64) float64 {
	var diag, total float64
	for i, row := range m {
		for j, v := range row {
			total += v
			if i == j {
				diag += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return diag / total
}

// Figure5 extracts the demand matrices from the fleet dataset.
func (s *System) Figure5() *Figure5Result {
	ds := s.FleetDataset()
	hadoop := s.Topo.ClustersOfType(topology.ClusterHadoop)[0]
	fe := s.Topo.ClustersOfType(topology.ClusterFrontend)[0]
	var clusters []int
	for _, c := range s.Topo.Clusters {
		clusters = append(clusters, c.ID)
	}
	res := &Figure5Result{
		HadoopRacks:   ds.RackMatrix(s.Topo, hadoop),
		FrontendRacks: ds.RackMatrix(s.Topo, fe),
		Clusters:      ds.ClusterMatrix(clusters),
	}
	res.HadoopDiag = matrixDiag(res.HadoopRacks)
	res.FrontendDiag = matrixDiag(res.FrontendRacks)
	return res
}

// Render prints the three heatmaps.
func (f *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString(render.Heatmap(
		fmt.Sprintf("Figure 5a: Hadoop cluster rack-to-rack (diagonal %.1f%%)", 100*f.HadoopDiag),
		f.HadoopRacks))
	b.WriteString(render.Heatmap(
		fmt.Sprintf("Figure 5b: Frontend cluster rack-to-rack (diagonal %.1f%%)", 100*f.FrontendDiag),
		f.FrontendRacks))
	b.WriteString(render.Heatmap("Figure 5c: cluster-to-cluster", f.Clusters))
	return b.String()
}

// FlowDistResult carries the per-locality and overall CDFs of one flow
// metric for the monitored roles of Figures 6 and 7.
type FlowDistResult struct {
	Figure string // "6" (sizes, KB) or "7" (durations, ms)
	Unit   string
	PerLoc map[topology.Role]map[topology.Locality]*stats.Sample
	All    map[topology.Role]*stats.Sample
}

// figRoles are the roles shown in Figures 6 and 7.
var figRoles = []topology.Role{topology.RoleWeb, topology.RoleCacheFollower, topology.RoleHadoop}

// Figure6 computes flow size CDFs from long traces.
func (s *System) Figure6() *FlowDistResult {
	out := &FlowDistResult{
		Figure: "6", Unit: "KB",
		PerLoc: make(map[topology.Role]map[topology.Locality]*stats.Sample),
		All:    make(map[topology.Role]*stats.Sample),
	}
	for _, role := range figRoles {
		b := s.Trace(role, s.Cfg.LongTraceSec)
		perLoc, all := b.Flows.SizeCDF()
		out.PerLoc[role] = perLoc
		out.All[role] = all
	}
	return out
}

// Figure7 computes flow duration CDFs from long traces.
func (s *System) Figure7() *FlowDistResult {
	out := &FlowDistResult{
		Figure: "7", Unit: "ms",
		PerLoc: make(map[topology.Role]map[topology.Locality]*stats.Sample),
		All:    make(map[topology.Role]*stats.Sample),
	}
	for _, role := range figRoles {
		b := s.Trace(role, s.Cfg.LongTraceSec)
		perLoc, all := b.Flows.DurationCDF()
		out.PerLoc[role] = perLoc
		out.All[role] = all
	}
	return out
}

// Render prints an ASCII CDF per role with per-locality quantile rows.
func (f *FlowDistResult) Render() string {
	var b strings.Builder
	name := "flow size"
	if f.Figure == "7" {
		name = "flow duration"
	}
	fmt.Fprintf(&b, "Figure %s: %s distribution (%s)\n", f.Figure, name, f.Unit)
	for _, role := range figRoles {
		b.WriteString(render.CDF(fmt.Sprintf("%s (all)", role), f.All[role], 60, 8, true))
		for _, l := range topology.Localities {
			if s, ok := f.PerLoc[role][l]; ok && s.N() > 0 {
				fmt.Fprintf(&b, "  %-16s %s\n", l, render.Quantiles(s))
			}
		}
	}
	return b.String()
}

// Figure8Result reproduces the per-destination-rack rate analyses.
type Figure8Result struct {
	// SpreadHadoop and SpreadCache are the per-second p90/p10 rate
	// ratios: orders of magnitude for Hadoop (8a) vs tight for cache (8b).
	SpreadHadoop *stats.Sample
	SpreadCache  *stats.Sample
	// CacheStability is the Fig. 8c CDF of rate/median per (rack, sec).
	CacheStability *stats.Sample
	// CacheWithin2x is §5.2's ≈90% within a factor of two.
	CacheWithin2x float64
	// CacheSignificantChange is the Benson 20% cutoff fraction (≈45%).
	CacheSignificantChange float64
	HadoopWithin2x         float64
}

// Figure8 compares Hadoop and cache per-rack rate stability.
func (s *System) Figure8() *Figure8Result {
	hb := s.Trace(topology.RoleHadoop, s.Cfg.ShortTraceSec)
	cb := s.Trace(topology.RoleCacheFollower, s.Cfg.ShortTraceSec)
	return &Figure8Result{
		SpreadHadoop:           hb.Rates.SpreadAcrossSeconds(),
		SpreadCache:            cb.Rates.SpreadAcrossSeconds(),
		CacheStability:         cb.Rates.StabilityCDF(),
		CacheWithin2x:          cb.Rates.FracWithinFactor(2),
		CacheSignificantChange: cb.Rates.SignificantChangeFrac(),
		HadoopWithin2x:         hb.Rates.FracWithinFactor(2),
	}
}

// Render prints the stability comparison.
func (f *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: per-destination-rack flow rates\n")
	fmt.Fprintf(&b, "  8a Hadoop per-second p90/p10 rate ratio: %s\n", render.Quantiles(f.SpreadHadoop))
	fmt.Fprintf(&b, "  8b Cache  per-second p90/p10 rate ratio: %s\n", render.Quantiles(f.SpreadCache))
	b.WriteString(render.CDF("  8c Cache rate/median", f.CacheStability, 60, 8, true))
	fmt.Fprintf(&b, "  cache within 2x of median: %.1f%% (paper ≈90%%)\n", 100*f.CacheWithin2x)
	fmt.Fprintf(&b, "  hadoop within 2x of median: %.1f%%\n", 100*f.HadoopWithin2x)
	fmt.Fprintf(&b, "  cache significant change (Benson 20%% cutoff): %.1f%% (paper ≈45%%)\n",
		100*f.CacheSignificantChange)
	return b.String()
}

// Figure9Result reproduces the cache follower per-host flow size CDF.
type Figure9Result struct {
	PerHost *stats.Sample // KB per destination host over the trace (all)
	// IntraCluster is the dominant tier (responses to Web servers),
	// where load balancing produces the paper's tight ~1 MB mode.
	IntraCluster *stats.Sample
	// TightnessRatio is the intra-cluster per-host p90/p10: small when
	// load balancing equalizes per-host bytes.
	TightnessRatio float64
	// FlowP90P10 is the same ratio at 5-tuple granularity (intra-cluster
	// flows) for contrast.
	FlowP90P10 float64
}

// Figure9 aggregates the cache follower's flows by destination host.
func (s *System) Figure9() *Figure9Result {
	b := s.Trace(topology.RoleCacheFollower, s.Cfg.LongTraceSec)
	perLocHost, all := b.Flows.PerHostSizeCDF()
	perLocFlow, _ := b.Flows.SizeCDF()
	res := &Figure9Result{
		PerHost:      all,
		IntraCluster: perLocHost[topology.IntraCluster],
	}
	if res.IntraCluster == nil {
		res.IntraCluster = all
	}
	if p10 := res.IntraCluster.Quantile(0.1); p10 > 0 {
		res.TightnessRatio = res.IntraCluster.Quantile(0.9) / p10
	}
	if fs := perLocFlow[topology.IntraCluster]; fs != nil {
		if p10 := fs.Quantile(0.1); p10 > 0 {
			res.FlowP90P10 = fs.Quantile(0.9) / p10
		}
	}
	return res
}

// Render prints the per-host size CDF.
func (f *Figure9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: cache follower per-host flow size (KB)\n")
	b.WriteString(render.CDF("  per-host bytes (all)", f.PerHost, 60, 8, true))
	b.WriteString(render.CDF("  per-host bytes (intra-cluster)", f.IntraCluster, 60, 8, true))
	fmt.Fprintf(&b, "  intra-cluster per-host p90/p10 = %.2f (tight), per-flow p90/p10 = %.2f (wide)\n",
		f.TightnessRatio, f.FlowP90P10)
	return b.String()
}

// HHDynamicsResult reproduces Figures 10 and 11: heavy-hitter persistence
// across intervals and subinterval/second intersection.
type HHDynamicsResult struct {
	// Median[role][level][bin] of the metric, in percent.
	Persistence  map[topology.Role]map[analysis.Level]map[netsim.Time]float64
	Intersection map[topology.Role]map[analysis.Level]map[netsim.Time]float64
}

// hhRoles are the roles of Figures 10/11.
var hhRoles = []topology.Role{topology.RoleCacheFollower, topology.RoleCacheLeader, topology.RoleWeb}

// Figure10And11 extracts heavy-hitter dynamics from the short traces.
func (s *System) Figure10And11() *HHDynamicsResult {
	out := &HHDynamicsResult{
		Persistence:  make(map[topology.Role]map[analysis.Level]map[netsim.Time]float64),
		Intersection: make(map[topology.Role]map[analysis.Level]map[netsim.Time]float64),
	}
	for _, role := range hhRoles {
		b := s.Trace(role, s.Cfg.ShortTraceSec)
		out.Persistence[role] = make(map[analysis.Level]map[netsim.Time]float64)
		out.Intersection[role] = make(map[analysis.Level]map[netsim.Time]float64)
		for lvl, byBin := range b.HH {
			out.Persistence[role][lvl] = make(map[netsim.Time]float64)
			out.Intersection[role][lvl] = make(map[netsim.Time]float64)
			for bin, hh := range byBin {
				out.Persistence[role][lvl][bin] = hh.Persistence().Quantile(0.5)
				out.Intersection[role][lvl][bin] = hh.Intersection().Quantile(0.5)
			}
		}
	}
	return out
}

// Render prints the persistence/intersection medians.
func (f *HHDynamicsResult) Render() string {
	var b strings.Builder
	b.WriteString("Figures 10-11: heavy-hitter stability (median %, by aggregation and bin)\n")
	headers := []string{"Type", "Agg", "persist 1ms", "persist 10ms", "persist 100ms",
		"intersect 1ms", "intersect 10ms", "intersect 100ms"}
	var rows [][]string
	for _, role := range hhRoles {
		for _, lvl := range []analysis.Level{analysis.LevelFlow, analysis.LevelHost, analysis.LevelRack} {
			row := []string{role.String(), lvl.String()}
			for _, bin := range HHBins {
				row = append(row, fmt.Sprintf("%.0f", f.Persistence[role][lvl][bin]))
			}
			for _, bin := range HHBins {
				row = append(row, fmt.Sprintf("%.0f", f.Intersection[role][lvl][bin]))
			}
			rows = append(rows, row)
		}
	}
	b.WriteString(render.Table(headers, rows))
	return b.String()
}

// Figure12Result reproduces the packet size CDFs.
type Figure12Result struct {
	Sizes map[topology.Role]*stats.Sample
	// BimodalFrac[role] is the fraction of packets that are ACK- or
	// MTU-sized; high only for Hadoop.
	BimodalFrac map[topology.Role]float64
}

// Figure12 extracts packet size distributions from short traces.
func (s *System) Figure12() *Figure12Result {
	out := &Figure12Result{
		Sizes:       make(map[topology.Role]*stats.Sample),
		BimodalFrac: make(map[topology.Role]float64),
	}
	for _, role := range MonitoredRoles {
		b := s.Trace(role, s.Cfg.ShortTraceSec)
		sample := b.Sizes.Sample()
		out.Sizes[role] = sample
		lo := sample.FracBelow(100)
		hi := 1 - sample.FracBelow(1400)
		out.BimodalFrac[role] = lo + hi
	}
	return out
}

// Render prints per-role size quantiles and CDFs.
func (f *Figure12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: packet size distribution (bytes)\n")
	for _, role := range MonitoredRoles {
		s := f.Sizes[role]
		fmt.Fprintf(&b, "  %-8s median=%4.0f  bimodal(≤100B or ≥1400B)=%4.1f%%  %s\n",
			role, s.Quantile(0.5), 100*f.BimodalFrac[role], render.Quantiles(s))
	}
	return b.String()
}

// Figure13Result reproduces the on/off arrival test, with the literature
// baseline run through the identical analysis for contrast.
type Figure13Result struct {
	// Bins15 and Bins100 are the Hadoop host's binned packet counts.
	Bins15, Bins100 []float64
	// Scores are the empty-bin fractions at 15 ms; near 0 means
	// continuous arrivals.
	FacebookScore15  float64
	FacebookScore100 float64
	BaselineScore15  float64
}

// Figure13 compares Facebook-style Hadoop arrivals with the Benson
// baseline.
func (s *System) Figure13() *Figure13Result {
	b := s.Trace(topology.RoleHadoop, s.Cfg.ShortTraceSec)
	res := &Figure13Result{
		Bins15:           b.Arr.Bins(15 * netsim.Millisecond),
		Bins100:          b.Arr.Bins(100 * netsim.Millisecond),
		FacebookScore15:  b.Arr.OnOffScoreActive(15 * netsim.Millisecond),
		FacebookScore100: b.Arr.OnOffScoreActive(100 * netsim.Millisecond),
	}
	// Literature baseline through the same analysis.
	host := s.Monitored(topology.RoleHadoop)
	arr := analysis.NewArrivals(s.Topo.Addr(host), 15*netsim.Millisecond)
	baseline.Generate(s.Topo, host, s.Cfg.Seed^0xb45e, baseline.DefaultOnOffParams(),
		netsim.Time(s.Cfg.ShortTraceSec/4+1)*netsim.Second, workload.CollectorFunc(arr.Packet))
	res.BaselineScore15 = arr.OnOffScore(15 * netsim.Millisecond)
	return res
}

// Render prints the arrival time series and scores.
func (f *Figure13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13: Hadoop arrival process (packets per bin)\n")
	limit := func(vs []float64, n int) []float64 {
		if len(vs) > n {
			return vs[:n]
		}
		return vs
	}
	fmt.Fprintf(&b, "  15ms bins:  %s\n", render.Sparkline(limit(f.Bins15, 100)))
	fmt.Fprintf(&b, "  100ms bins: %s\n", render.Sparkline(limit(f.Bins100, 100)))
	fmt.Fprintf(&b, "  empty-bin fraction @15ms: Facebook-style %.2f vs literature baseline %.2f\n",
		f.FacebookScore15, f.BaselineScore15)
	return b.String()
}

// Figure14Result reproduces the SYN interarrival CDFs.
type Figure14Result struct {
	Gaps map[topology.Role]*stats.Sample // microseconds
}

// Figure14 extracts flow interarrival distributions.
func (s *System) Figure14() *Figure14Result {
	out := &Figure14Result{Gaps: make(map[topology.Role]*stats.Sample)}
	for _, role := range MonitoredRoles {
		b := s.Trace(role, s.Cfg.ShortTraceSec)
		out.Gaps[role] = b.Arr.SYNInterarrivalsMicros()
	}
	return out
}

// Render prints per-role SYN interarrival quantiles.
func (f *Figure14Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 14: flow (SYN) interarrival (µs)\n")
	for _, role := range MonitoredRoles {
		fmt.Fprintf(&b, "  %-8s %s\n", role, render.Quantiles(f.Gaps[role]))
	}
	return b.String()
}

// ConcurrencyResult reproduces Figures 16 and 17.
type ConcurrencyResult struct {
	// Racks[role][loc] is the per-5ms distinct destination rack count
	// distribution; RacksAll the total. HH* are the heavy-hitter-rack
	// analogues.
	Racks    map[topology.Role]map[topology.Locality]*stats.Sample
	RacksAll map[topology.Role]*stats.Sample
	HH       map[topology.Role]map[topology.Locality]*stats.Sample
	HHAll    map[topology.Role]*stats.Sample
	Flows    map[topology.Role]*stats.Sample
	Hosts    map[topology.Role]*stats.Sample
}

// concRoles are the roles of Figures 16/17.
var concRoles = []topology.Role{topology.RoleWeb, topology.RoleCacheFollower, topology.RoleCacheLeader}

// Figure16And17 extracts 5-ms concurrency distributions.
func (s *System) Figure16And17() *ConcurrencyResult {
	out := &ConcurrencyResult{
		Racks:    make(map[topology.Role]map[topology.Locality]*stats.Sample),
		RacksAll: make(map[topology.Role]*stats.Sample),
		HH:       make(map[topology.Role]map[topology.Locality]*stats.Sample),
		HHAll:    make(map[topology.Role]*stats.Sample),
		Flows:    make(map[topology.Role]*stats.Sample),
		Hosts:    make(map[topology.Role]*stats.Sample),
	}
	for _, role := range append(append([]topology.Role{}, concRoles...), topology.RoleHadoop) {
		b := s.Trace(role, s.Cfg.ShortTraceSec)
		out.Racks[role] = make(map[topology.Locality]*stats.Sample)
		out.HH[role] = make(map[topology.Locality]*stats.Sample)
		for _, l := range topology.Localities {
			out.Racks[role][l] = b.Conc.Racks(l)
			out.HH[role][l] = b.Conc.HHRacks(l)
		}
		out.RacksAll[role] = b.Conc.RacksAll()
		out.HHAll[role] = b.Conc.HHRacksAll()
		out.Flows[role] = b.Conc.Flows()
		out.Hosts[role] = b.Conc.Hosts()
	}
	return out
}

// Render prints the concurrency medians.
func (f *ConcurrencyResult) Render() string {
	var b strings.Builder
	b.WriteString("Figures 16-17: concurrent (5-ms) destinations\n")
	headers := []string{"Type", "flows p50", "hosts p50", "racks p50", "racks p90", "HH racks p50", "HH racks p90"}
	var rows [][]string
	for _, role := range append(append([]topology.Role{}, concRoles...), topology.RoleHadoop) {
		rows = append(rows, []string{
			role.String(),
			fmt.Sprintf("%.0f", f.Flows[role].Quantile(0.5)),
			fmt.Sprintf("%.0f", f.Hosts[role].Quantile(0.5)),
			fmt.Sprintf("%.0f", f.RacksAll[role].Quantile(0.5)),
			fmt.Sprintf("%.0f", f.RacksAll[role].Quantile(0.9)),
			fmt.Sprintf("%.0f", f.HHAll[role].Quantile(0.5)),
			fmt.Sprintf("%.0f", f.HHAll[role].Quantile(0.9)),
		})
	}
	b.WriteString(render.Table(headers, rows))
	return b.String()
}
