package core

import (
	"sync"
	"sync/atomic"
)

// This file is the scheduling half of the parallel experiment engine.
// The principle throughout: parallelism never decides *what* is computed,
// only *when*. Every task owns its rng stream (derived from the seed and
// the task's identity, never from scheduling order), every task writes
// only task-local state, and anything merged across tasks merges in a
// fixed order. Workers are therefore interchangeable and results are
// bit-identical from -parallel 1 to -parallel N.

// runParallel executes n index-addressed tasks on up to workers
// goroutines. With one worker (or one task) it degrades to a plain loop —
// the sequential path is literally the parallel path at width 1, not a
// separate code path that could drift.
func runParallel(workers, n int, task func(i int)) {
	runParallelWorkers(workers, n, func(_, i int) { task(i) })
}

// runParallelWorkers is runParallel with the worker index exposed, for
// callers that keep worker-local state (obs shards, busy-time slots).
// Worker indices are dense in [0, min(workers, n)); the sequential path
// runs everything as worker 0.
func runParallelWorkers(workers, n int, task func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Prewarm generates every dataset the full experiment suite consumes —
// the short trace bundles of the four monitored roles, the long bundles
// of the Figure 6/7/9 roles, and the fleet dataset — fanning the
// independent generations across Config.Workers() goroutines. Each bundle
// owns its generator, sinks, and rng stream, so the results are identical
// to generating them lazily one at a time; only wall-clock changes.
// Experiments that run afterwards hit the memo and stay read-only.
func (s *System) Prewarm() {
	sp := s.Cfg.Obs.StartSpan("prewarm")
	defer sp.End()
	var tasks []func()
	for _, role := range MonitoredRoles {
		role := role
		tasks = append(tasks, func() { s.Trace(role, s.Cfg.ShortTraceSec) })
	}
	for _, role := range figRoles {
		role := role
		tasks = append(tasks, func() { s.Trace(role, s.Cfg.LongTraceSec) })
	}
	tasks = append(tasks, func() { s.FleetDataset() })
	if s.Cfg.FaultScenario != "" {
		tasks = append(tasks, func() { s.Degraded() })
	}
	if s.Cfg.TraceSample > 0 {
		tasks = append(tasks, func() { s.Telemetry() })
	}
	// Progress uses monotone Set with a completion counter, so re-warming
	// (Summarize after WriteSuite hits only memos) never over-counts.
	prog := s.Cfg.Obs.NewProgress("prewarm-bundles", int64(len(tasks)))
	var completed atomic.Int64
	runParallel(s.Cfg.Workers(), len(tasks), func(i int) {
		tasks[i]()
		prog.Set(completed.Add(1))
	})
}
