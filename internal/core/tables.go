package core

import (
	"fmt"
	"strings"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/render"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/topology"
)

// Table2Result is the reproduction of Table 2: outbound traffic share by
// destination service for each monitored host type.
type Table2Result struct {
	// Share[srcRole][dstRole] is the outbound byte fraction.
	Share map[topology.Role]map[topology.Role]float64
}

// Table2 runs short traces for the four monitored roles and classifies
// their outbound bytes by destination role.
func (s *System) Table2() *Table2Result {
	out := &Table2Result{Share: make(map[topology.Role]map[topology.Role]float64)}
	for _, role := range MonitoredRoles {
		b := s.Trace(role, s.Cfg.ShortTraceSec)
		out.Share[role] = b.Mix.Share()
	}
	return out
}

// Render prints the Table 2 reproduction in the paper's layout.
func (t *Table2Result) Render() string {
	cols := []topology.Role{
		topology.RoleWeb, topology.RoleCacheFollower, topology.RoleCacheLeader,
		topology.RoleMultifeed, topology.RoleSLB, topology.RoleHadoop,
	}
	headers := []string{"Type", "Web", "Cache-f", "Cache-l", "MF", "SLB", "Hadoop", "Rest"}
	var rows [][]string
	for _, src := range MonitoredRoles {
		share := t.Share[src]
		row := []string{src.String()}
		covered := 0.0
		for _, dst := range cols {
			row = append(row, render.Pct(share[dst]))
			covered += share[dst]
		}
		row = append(row, render.Pct(1-covered))
		rows = append(rows, row)
	}
	return "Table 2: outbound traffic share by destination type (%)\n" +
		render.Table(headers, rows)
}

// Table3Result is the reproduction of Table 3: traffic locality per
// cluster type plus each type's share of total traffic.
type Table3Result struct {
	// Locality[ct][loc] is the byte fraction of cluster type ct's
	// traffic at locality loc; the All field is the fleet-wide column.
	Locality map[topology.ClusterType]map[topology.Locality]float64
	All      map[topology.Locality]float64
	// Share[ct] is cluster type ct's share of total traffic.
	Share map[topology.ClusterType]float64
}

// Table3 aggregates the synthetic day's Fbflow dataset into the locality
// table.
func (s *System) Table3() *Table3Result {
	ds := s.FleetDataset()
	out := &Table3Result{
		Locality: make(map[topology.ClusterType]map[topology.Locality]float64),
		All:      ds.LocalityShareAll(),
		Share:    ds.TrafficShare(),
	}
	for _, ct := range topology.ClusterTypes {
		out.Locality[ct] = ds.LocalityShare(ct)
	}
	return out
}

// Render prints the Table 3 reproduction in the paper's layout.
func (t *Table3Result) Render() string {
	headers := []string{"Locality", "All"}
	for _, ct := range topology.ClusterTypes {
		headers = append(headers, ct.String())
	}
	var rows [][]string
	for _, loc := range topology.Localities {
		row := []string{strings.TrimPrefix(loc.String(), "Intra-")}
		row = append(row, render.Pct(t.All[loc]))
		for _, ct := range topology.ClusterTypes {
			row = append(row, render.Pct(t.Locality[ct][loc]))
		}
		rows = append(rows, row)
	}
	shareRow := []string{"Share of total", "100.0"}
	for _, ct := range topology.ClusterTypes {
		shareRow = append(shareRow, render.Pct(t.Share[ct]))
	}
	rows = append(rows, shareRow)
	return "Table 3: traffic locality by cluster type (%)\n" +
		render.Table(headers, rows)
}

// Table4Row holds the heavy-hitter statistics of one (role, level) pair
// in 1-ms bins.
type Table4Row struct {
	Role  topology.Role
	Level analysis.Level
	// Percentiles of the per-bin heavy-hitter set size.
	NumP10, NumP50, NumP90 float64
	// Percentiles of per-member rates in Mbps.
	SizeP10, SizeP50, SizeP90 float64
}

// Table4Result is the reproduction of Table 4.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 computes heavy-hitter counts and sizes in 1-ms intervals at
// flow, host, and rack aggregation for each monitored role.
func (s *System) Table4() *Table4Result {
	out := &Table4Result{}
	for _, role := range MonitoredRoles {
		b := s.Trace(role, s.Cfg.ShortTraceSec)
		for _, lvl := range []analysis.Level{analysis.LevelFlow, analysis.LevelHost, analysis.LevelRack} {
			hh := b.HH[lvl][netsim.Millisecond]
			counts, rates := hh.Counts(), hh.Rates()
			out.Rows = append(out.Rows, Table4Row{
				Role:   role,
				Level:  lvl,
				NumP10: counts.Quantile(0.1), NumP50: counts.Quantile(0.5), NumP90: counts.Quantile(0.9),
				SizeP10: rates.Quantile(0.1), SizeP50: rates.Quantile(0.5), SizeP90: rates.Quantile(0.9),
			})
		}
	}
	return out
}

// Render prints the Table 4 reproduction.
func (t *Table4Result) Render() string {
	headers := []string{"Type", "Agg", "n p10", "n p50", "n p90", "Mbps p10", "Mbps p50", "Mbps p90"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Role.String(), strings.ToLower(r.Level.String()[:1]),
			fmt.Sprintf("%.0f", r.NumP10), fmt.Sprintf("%.0f", r.NumP50), fmt.Sprintf("%.0f", r.NumP90),
			fmt.Sprintf("%.1f", r.SizeP10), fmt.Sprintf("%.1f", r.SizeP50), fmt.Sprintf("%.1f", r.SizeP90),
		})
	}
	return "Table 4: heavy hitters in 1-ms intervals (flow/host/rack aggregation)\n" +
		render.Table(headers, rows)
}

// Section41Result reproduces the §4.1 utilization findings.
type Section41Result struct {
	// Tier utilization distributions across links.
	Tiers map[netsim.Tier]*stats.Sample
	// EdgeLoadByClusterType is the mean access-link utilization per
	// cluster type (Hadoop ≈ 5× Frontend in the paper).
	EdgeLoadByClusterType map[topology.ClusterType]float64
	// DiurnalSwing is the max/min ratio of fleet per-window bytes (≈2×).
	DiurnalSwing float64
}

// Section41 derives tiered utilization from the fleet dataset.
func (s *System) Section41() *Section41Result {
	ds := s.FleetDataset()
	dur := s.FleetDurationSec()
	cfg := netsim.DefaultFabricConfig()
	res := &Section41Result{
		Tiers:                 analysis.Utilization(ds, s.Topo, dur, cfg),
		EdgeLoadByClusterType: analysis.ClusterEdgeLoad(ds, s.Topo, dur, cfg),
	}
	series := ds.PerMinute()
	minV, maxV := 0.0, 0.0
	first := true
	for _, v := range series {
		if first {
			minV, maxV = v, v
			first = false
			continue
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV > 0 {
		res.DiurnalSwing = maxV / minV
	}
	return res
}

// Render prints the §4.1 reproduction.
func (r *Section41Result) Render() string {
	var b strings.Builder
	b.WriteString("Section 4.1: link utilization by tier\n")
	headers := []string{"Tier", "mean%", "p50%", "p99%", "max%"}
	var rows [][]string
	for _, tier := range []netsim.Tier{netsim.TierHostRSW, netsim.TierRSWCSW, netsim.TierCSWFC} {
		s := r.Tiers[tier]
		rows = append(rows, []string{
			tier.String(),
			render.Pct(s.Mean()), render.Pct(s.Quantile(0.5)),
			render.Pct(s.Quantile(0.99)), render.Pct(s.Quantile(1)),
		})
	}
	b.WriteString(render.Table(headers, rows))
	b.WriteString("Edge load by cluster type (mean access-link utilization %):\n")
	for _, ct := range topology.ClusterTypes {
		fmt.Fprintf(&b, "  %-7s %s\n", ct.String(), render.Pct(r.EdgeLoadByClusterType[ct]))
	}
	fmt.Fprintf(&b, "Diurnal swing (max/min fleet bytes per window): %.2fx\n", r.DiurnalSwing)
	return b.String()
}
