package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/fbwire"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/services"
)

// Distributed fleet collection: the production shape of the paper's
// Fbflow pipeline. N agent processes each own a contiguous range of the
// (window × shard) task grid's shard axis, run sampling and partial
// accumulation locally, and stream binary partial frames to one
// aggregator that merges them at the global task-order frontier.
//
// The determinism contract is the same as the in-process engine's:
// every (window, shard) cell draws from an rng stream keyed by its own
// coordinates, and partials merge in global task order — window-major,
// shard within window — so the aggregated dataset is bit-identical to
// the single-process run at any agent count. Agents overlap comms with
// compute by double-buffering partials (window W+1 accumulates while W
// encodes and sends), and the aggregator merges frames as they arrive
// rather than barriering per window, parking out-of-order cells exactly
// like collectFleet parks out-of-order workers.

// AgentCrashExitCode is the exit status of an agent that dies at its
// planned crash point. The spawner restarts exactly this status with an
// incremented incarnation; anything else is a real failure.
const AgentCrashExitCode = 3

// ErrPlannedCrash is returned by RunFleetAgent when the agent reaches
// its planned crash task. The hosting process should exit with
// AgentCrashExitCode.
var ErrPlannedCrash = errors.New("core: fleet agent reached its planned crash point")

// ShardRange is one agent's contiguous range [Lo, Hi) of per-window
// shard indices.
type ShardRange struct {
	Lo, Hi int
}

// Span returns the number of shards the range owns.
func (r ShardRange) Span() int { return r.Hi - r.Lo }

// fleetShardsPerWindow returns the shard-axis width of the task grid —
// a pure function of topology size and collection mode, never of the
// agent or worker count.
func (s *System) fleetShardsPerWindow() int {
	n, width := s.Topo.NumHosts(), fleetShardHosts
	if s.Cfg.FleetMatrix {
		n, width = len(s.Topo.Racks), fleetMatrixShardRacks
	}
	return (n + width - 1) / width
}

// FleetShardMap splits the shard axis into one contiguous range per
// agent. Trailing agents may own empty ranges when there are more
// agents than shards; they still handshake and FIN so the aggregator's
// accounting stays uniform.
func (s *System) FleetShardMap(agents int) []ShardRange {
	spw := s.fleetShardsPerWindow()
	m := make([]ShardRange, agents)
	for a := 0; a < agents; a++ {
		m[a] = ShardRange{Lo: a * spw / agents, Hi: (a + 1) * spw / agents}
	}
	return m
}

// fleetConfigCheck fingerprints every configuration field that shapes
// the task grid or its rng streams. Agent and aggregator exchange it in
// HELLO: a mismatch means the processes would silently compute
// different datasets, so the handshake fails instead.
func (s *System) fleetConfigCheck() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	mix(s.Cfg.Seed)
	mix(uint64(s.Cfg.Scale))
	mix(uint64(s.Cfg.FleetWindows))
	mix(math.Float64bits(s.Cfg.FleetWindowSec))
	mix(uint64(s.Cfg.FleetSamples))
	mix(b2u(s.Cfg.FleetMatrix))
	mix(b2u(s.Cfg.SketchMode))
	mix(uint64(s.fleetShardsPerWindow()))
	return h
}

// agentTask maps an agent-local task index to its grid cell. Agent
// streams are window-major within the agent's shard range, so resuming
// at a window boundary is resuming at a multiple of the span.
func agentTask(rg ShardRange, t uint64) (window, shard int) {
	span := uint64(rg.Span())
	return int(t / span), rg.Lo + int(t%span)
}

// RunFleetAgent runs one agent over an established aggregator
// connection: handshake, then compute-and-stream every cell of this
// agent's shard range from the aggregator's resume point. crashAfter,
// when >= 0, is the agent-local task index after whose frame the agent
// abandons the run with ErrPlannedCrash — the deterministic stand-in
// for an agent host dying mid-window.
//
// Compute and comms overlap: a sender goroutine owns the socket while
// the main loop accumulates the next cell into a second (and third)
// pooled partial, so the steady state keeps both the CPU and the wire
// busy without any per-window barrier.
func (s *System) RunFleetAgent(agentID, agents int, incarnation uint32, conn io.ReadWriter, crashAfter int64) error {
	if agentID < 0 || agentID >= agents {
		return fmt.Errorf("core: agent id %d outside [0, %d)", agentID, agents)
	}
	rg := s.FleetShardMap(agents)[agentID]
	span := rg.Span()
	expected := uint64(span * s.Cfg.FleetWindows)

	w := fbwire.NewWriter(conn)
	r := fbwire.NewReader(conn)
	if err := w.WriteHello(fbwire.Hello{
		Version:     fbwire.Version,
		AgentID:     uint32(agentID),
		Incarnation: incarnation,
		ShardLo:     uint32(rg.Lo),
		ShardHi:     uint32(rg.Hi),
		Windows:     uint32(s.Cfg.FleetWindows),
		Check:       s.fleetConfigCheck(),
	}); err != nil {
		return fmt.Errorf("core: agent %d hello: %w", agentID, err)
	}
	f, err := r.Next()
	if err != nil {
		return fmt.Errorf("core: agent %d awaiting welcome: %w", agentID, err)
	}
	if f.Type != fbwire.TypeWelcome {
		return fmt.Errorf("core: agent %d expected welcome, got frame type %#x", agentID, f.Type)
	}
	resume, err := fbwire.ParseWelcome(f.Payload)
	if err != nil {
		return err
	}
	if resume > expected {
		return fmt.Errorf("core: agent %d told to resume at task %d of %d", agentID, resume, expected)
	}

	reg := s.Cfg.Obs
	sp := reg.StartSpan(fmt.Sprintf("fleet-agent-%d", agentID))
	// The span must end before the agent report is encoded so its event
	// reaches the federated timeline; the flag keeps the deferred End (the
	// error paths) from double-counting.
	spanEnded := false
	endSpan := func() {
		if !spanEnded {
			spanEnded = true
			sp.End()
		}
	}
	defer endSpan()

	tagger := fbflow.NewTagger(s.Topo)
	var prog *services.FleetProgram
	var mprog *services.MatrixProgram
	var mat *services.DemandMatrix
	if s.Cfg.FleetMatrix {
		mprog = services.NewMatrixProgram(s.Pick, s.Cfg.Params)
		mat = services.NewDemandMatrix()
	} else {
		prog = services.NewFleetProgram(s.Pick, s.Cfg.Params)
	}

	// Double buffer: the main loop computes into one partial while the
	// sender encodes and flushes the previous one. A third partial in the
	// free pool absorbs the jitter between the two.
	newPartial := func() *fbflow.Partial {
		p := fbflow.NewPartial()
		if s.Cfg.SketchMode {
			p.EnableCardinality()
		}
		return p
	}
	// Each pooled buffer pairs a partial with the cell's encoded obs
	// delta. The delta frame travels ahead of its partial on the same
	// connection, so by the time the aggregator's frontier consumes the
	// cell its metrics are already parked beside it.
	type cellBuf struct {
		p   *fbflow.Partial
		obs []byte
		// Parked audit checkpoints for this cell, already appended to the
		// agent's local ledger; they precede the PARTIAL on the wire so
		// the aggregator has parked them by the time its frontier merges
		// the cell. Best-effort like the obs delta.
		audF, audM       fbwire.AuditCell
		hasAudF, hasAudM bool
	}
	type job struct {
		seq uint64
		b   *cellBuf
	}
	aud := s.Cfg.Audit
	bb := aud.BB()
	free := make(chan *cellBuf, 3)
	free <- &cellBuf{p: newPartial()}
	free <- &cellBuf{p: newPartial()}
	free <- &cellBuf{p: newPartial()}
	jobs := make(chan job, 1)
	sendRes := make(chan error, 1)
	go func() {
		for j := range jobs {
			window, shard := agentTask(rg, j.seq)
			var err error
			if j.b.hasAudM {
				err = w.WriteAudit(j.b.audM)
				bb.Record(audit.EvFrameTx, "audit-matrix", fbwire.TypeAudit, int64(j.seq))
			}
			if err == nil && j.b.hasAudF {
				err = w.WriteAudit(j.b.audF)
				bb.Record(audit.EvFrameTx, "audit-fleet", fbwire.TypeAudit, int64(j.seq))
			}
			if err == nil && len(j.b.obs) > 0 {
				err = w.WriteObs(fbwire.ObsCell, j.seq, j.b.obs)
			}
			if err == nil {
				err = w.WritePartial(fbwire.PartialHeader{Seq: j.seq, Window: uint32(window), Shard: uint32(shard)}, j.b.p)
				bb.Record(audit.EvFrameTx, "partial", fbwire.TypePartial, int64(j.seq))
			}
			j.b.p.Reset()
			free <- j.b
			if err != nil {
				sendRes <- err
				return
			}
			if crashAfter >= 0 && j.seq == uint64(crashAfter) {
				sendRes <- ErrPlannedCrash
				return
			}
		}
		sendRes <- nil
	}()

	drain := func(err error) error {
		close(jobs)
		if serr := <-sendRes; err == nil {
			err = serr
		}
		return err
	}
	sh := reg.NewShard()
	for t := resume; t < expected; t++ {
		var b *cellBuf
		select {
		case b = <-free:
		case serr := <-sendRes:
			// The sender died (socket error or planned crash): stop
			// computing and surface its verdict.
			close(jobs)
			return serr
		}
		var t0 time.Time
		if reg.Enabled() {
			t0 = time.Now()
		}
		window, shard := agentTask(rg, t)
		task := fleetTask{window: window, shard: shard, lo: shard * fleetShardHosts, hi: min((shard+1)*fleetShardHosts, s.Topo.NumHosts())}
		var fh, mh *audit.Hash
		var fhv, mhv audit.Hash
		if aud.Enabled() {
			fh = &fhv
			if s.Cfg.FleetMatrix {
				mh = &mhv
			}
		}
		if s.Cfg.FleetMatrix {
			task.lo = shard * fleetMatrixShardRacks
			task.hi = min(task.lo+fleetMatrixShardRacks, len(s.Topo.Racks))
			s.collectMatrixShard(tagger, mprog, task, mat, b.p, sh, fh, mh)
		} else {
			s.collectShard(tagger, prog, task, b.p, sh, fh)
		}
		b.hasAudF, b.hasAudM = false, false
		if aud.Enabled() {
			// Append to the agent's local ledger and forward exactly what
			// was logged (any planted perturbation belongs to the
			// aggregator, which owns the authoritative ledger).
			if mh != nil {
				cp, _ := aud.Cell(audit.StageMatrixSynth, window, shard, mh)
				b.audM = fbwire.AuditCell{Stage: fbwire.AuditMatrixSynth, Seq: t, Window: uint32(window), Shard: uint32(shard), Sum: cp.Sum, Count: cp.Count}
				b.hasAudM = true
			}
			cp, _ := aud.Cell(audit.StageFleetCollect, window, shard, fh)
			b.audF = fbwire.AuditCell{Stage: fbwire.AuditFleetCell, Seq: t, Window: uint32(window), Shard: uint32(shard), Sum: cp.Sum, Count: cp.Count}
			b.hasAudF = true
		}
		if reg.Enabled() {
			sh.Observe(s.obsIDs.fleetShardUs, time.Since(t0).Microseconds())
		}
		// Encode the cell's delta before Fold resets the shard; the fold
		// keeps the agent's own registry live for its -metrics-addr
		// endpoint (a separate process, so nothing double-counts).
		b.obs = sh.AppendDelta(b.obs[:0])
		sh.Fold()
		select {
		case jobs <- job{seq: t, b: b}:
		case serr := <-sendRes:
			return serr
		}
	}
	if err := drain(nil); err != nil {
		return err
	}
	endSpan()
	if reg.Enabled() {
		reg.SetGauge(fmt.Sprintf("fbdcnet_agent_%d_tx_bytes", agentID), float64(w.BytesWritten()))
		if aud.Enabled() {
			// Stamp the black-box depth into the federated report so the
			// per-agent manifest section shows each process's ring.
			reg.SetGauge("fbdcnet_blackbox_events", float64(bb.Total()))
		}
		if err := w.WriteObs(fbwire.ObsFinal, 0, reg.AppendReport(nil, uint32(agentID), incarnation)); err != nil {
			return fmt.Errorf("core: agent %d obs report: %w", agentID, err)
		}
	}
	if err := w.WriteFin(expected - resume); err != nil {
		return fmt.Errorf("core: agent %d fin: %w", agentID, err)
	}
	return nil
}

// CoverageGap is one contiguous run of task cells the aggregator never
// received — an agent died mid-window and the restart resumed at the
// next window boundary, or an agent never came back at all. Gaps are
// the distributed analogue of lost-forever bytes: accounted, not
// silently absorbed.
type CoverageGap struct {
	Agent   int `json:"agent"`
	Window  int `json:"window"`
	ShardLo int `json:"shard_lo"` // global shard ids [ShardLo, ShardHi)
	ShardHi int `json:"shard_hi"`
	Cells   int `json:"cells"`
}

// fleetAggregator is the shared state of one aggregation run.
type fleetAggregator struct {
	s      *System
	agents int
	shards []ShardRange
	spw    int
	cells  int

	mu        sync.Mutex
	cond      *sync.Cond
	parked    []*fbflow.Partial
	gapped    []bool
	merged    []bool
	next      int
	ds        *fbflow.Dataset
	pool      sync.Pool
	received  []uint64 // agent-task credit, gapped cells included
	expected  []uint64
	fin       []bool
	connected []bool
	lastInc   []int64
	lastSeen  []time.Time
	gaps      []CoverageGap
	err       error

	// Federated observability. Cell deltas park beside their partials and
	// fold only when the frontier consumes the cell; reports are
	// per-process ephemera kept for the manifest and the exported
	// timeline. All of it is best-effort: an undecodable obs payload is
	// dropped and counted, never allowed to fail the dataset protocol.
	parkedObs  [][]byte           // per-cell encoded delta awaiting its merge
	obsFree    [][]byte           // recycled delta buffers
	scratch    obs.Delta          // decode scratch, reused at the frontier
	reports    []*obs.AgentReport // latest incarnation's report per agent
	obsDrops   int64
	agentLabel []string // preformatted agent-id labels for series names
	stallCell  int      // frontier cell an open stall span is blaming, -1 if none
	stallStart time.Time

	// Checkpoint side-channel (nil when auditing is off): agent AUDIT
	// frames park per cell like obs deltas and append to the
	// authoritative ledger exactly when the frontier consumes the cell.
	// A merged cell whose audit frame never arrived becomes a ledger
	// hole — a hole means "no trusted hash", never "hash of nothing".
	parkedAud []auditSlot
	audDrops  int64
}

// auditSlot parks up to two checkpoints for one cell: the fleet-collect
// record hash and, in matrix mode, the matrix-synth hash.
type auditSlot struct {
	f, m       fbwire.AuditCell
	hasF, hasM bool
}

// ServeFleetAggregator accepts agent connections on ln and merges their
// partial streams into one dataset at the global task-order frontier.
// It returns when every agent has delivered its full shard range or has
// been gapped out after reconnectWait without a live connection. The
// returned gaps are sorted in task order, so gap accounting is as
// deterministic as the dataset itself.
func (s *System) ServeFleetAggregator(ln net.Listener, agents int, reconnectWait time.Duration) (*fbflow.Dataset, []CoverageGap, error) {
	if agents < 1 {
		return nil, nil, fmt.Errorf("core: aggregator needs at least one agent")
	}
	if reconnectWait <= 0 {
		reconnectWait = 10 * time.Second
	}
	spw := s.fleetShardsPerWindow()
	ag := &fleetAggregator{
		s:         s,
		agents:    agents,
		shards:    s.FleetShardMap(agents),
		spw:       spw,
		cells:     spw * s.Cfg.FleetWindows,
		ds:        fbflow.NewDataset(),
		received:  make([]uint64, agents),
		expected:  make([]uint64, agents),
		fin:       make([]bool, agents),
		connected: make([]bool, agents),
		lastInc:   make([]int64, agents),
		lastSeen:  make([]time.Time, agents),
	}
	ag.cond = sync.NewCond(&ag.mu)
	ag.parked = make([]*fbflow.Partial, ag.cells)
	ag.gapped = make([]bool, ag.cells)
	ag.merged = make([]bool, ag.cells)
	ag.parkedObs = make([][]byte, ag.cells)
	if s.Cfg.Audit.Enabled() {
		ag.parkedAud = make([]auditSlot, ag.cells)
	}
	ag.reports = make([]*obs.AgentReport, agents)
	ag.agentLabel = make([]string, agents)
	ag.stallCell = -1
	ag.pool.New = func() any { return fbflow.NewPartial() }
	now := time.Now()
	for a := 0; a < agents; a++ {
		ag.expected[a] = uint64(ag.shards[a].Span() * s.Cfg.FleetWindows)
		ag.lastInc[a] = -1
		ag.lastSeen[a] = now
		ag.agentLabel[a] = fmt.Sprint(a)
	}

	reg := s.Cfg.Obs
	sp := reg.StartSpan("fleet-aggregate")
	defer sp.End()
	winProg := reg.NewProgress("fleet-windows", int64(s.Cfg.FleetWindows))

	// Accept loop: runs until the listener closes. Each connection is
	// one agent incarnation.
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				ag.handleConn(conn, winProg)
			}()
		}
	}()

	err := ag.wait(reconnectWait)
	ln.Close()
	wg.Wait()
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(ag.gaps, func(i, j int) bool {
		a, b := ag.gaps[i], ag.gaps[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		return a.ShardLo < b.ShardLo
	})
	if reg.Enabled() {
		winProg.Set(int64(s.Cfg.FleetWindows))
		gapCells := 0
		for _, g := range ag.gaps {
			gapCells += g.Cells
		}
		reg.SetGauge("fbdcnet_fleet_gap_cells", float64(gapCells))
		reg.SetGauge("fbdcnet_fleet_obs_dropped_frames", float64(ag.obsDrops))
		reg.SetGauge("fbdcnet_fleet_audit_dropped_frames", float64(ag.audDrops))
		s.storeAgentObs(ag)
	}
	return ag.ds, ag.gaps, nil
}

// storeAgentObs keeps the run's federated agent reports and incarnation
// ledger on the System so manifest and timeline export can reach them
// after aggregation finishes.
func (s *System) storeAgentObs(ag *fleetAggregator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agentReports = append([]*obs.AgentReport(nil), ag.reports...)
	s.agentIncs = append([]int64(nil), ag.lastInc...)
}

// AgentReports returns the latest federated report per agent from the
// last distributed run (nil entries for agents that never delivered
// one; nil slice for single-process or metrics-off runs).
func (s *System) AgentReports() []*obs.AgentReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agentReports
}

// AgentManifestRecords builds the per-agent manifest section of a
// distributed run from the federated reports, incarnation ledger, and
// coverage gaps. It returns nil when no distributed run happened.
func (s *System) AgentManifestRecords() []obs.AgentRecord {
	s.mu.Lock()
	reports, incs := s.agentReports, s.agentIncs
	s.mu.Unlock()
	if len(incs) == 0 {
		return nil
	}
	gapCells := make([]int, len(incs))
	for _, g := range s.FleetCoverageGaps() {
		if g.Agent >= 0 && g.Agent < len(gapCells) {
			gapCells[g.Agent] += g.Cells
		}
	}
	recs := make([]obs.AgentRecord, len(incs))
	for a := range recs {
		rec := obs.AgentRecord{
			Agent:    a,
			GapCells: gapCells[a],
			Stages:   []obs.StageRecord{},
			Gauges:   map[string]float64{},
		}
		if incs[a] >= 0 {
			rec.Incarnations = incs[a] + 1
			rec.Restarts = incs[a]
		}
		if a < len(reports) && reports[a] != nil {
			rep := reports[a]
			rec.SpanEvents = len(rep.Events)
			if rep.Stages != nil {
				rec.Stages = rep.Stages
			}
			for _, g := range rep.Gauges {
				rec.Gauges[g.Name] = g.V
			}
		}
		recs[a] = rec
	}
	return recs
}

// wait blocks until every agent is finished or the run fails, tail-
// gapping agents that stay disconnected longer than reconnectWait.
func (ag *fleetAggregator) wait(reconnectWait time.Duration) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		ag.mu.Lock()
		if ag.err != nil {
			err := ag.err
			ag.mu.Unlock()
			return err
		}
		doneAll := true
		now := time.Now()
		for a := 0; a < ag.agents; a++ {
			if ag.fin[a] {
				continue
			}
			if !ag.connected[a] && now.Sub(ag.lastSeen[a]) > reconnectWait {
				// The agent is not coming back: its remaining cells are
				// lost forever. Account them and finish its ledger.
				ag.markGaps(a, ag.received[a], ag.expected[a])
				ag.received[a] = ag.expected[a]
				ag.fin[a] = true
				ag.cond.Broadcast()
				continue
			}
			doneAll = false
		}
		ag.healthLocked(now)
		ag.mu.Unlock()
		if doneAll {
			return nil
		}
	}
	return nil
}

// healthLocked refreshes the wire-path health gauges, the per-agent
// liveness series, the agent panel on the live progress page, and the
// frontier-stall spans. Runs on every waiter tick; caller holds ag.mu.
func (ag *fleetAggregator) healthLocked(now time.Time) {
	reg := ag.s.Cfg.Obs
	if !reg.Enabled() {
		return
	}
	frontierWin := 0
	if ag.spw > 0 {
		frontierWin = ag.next / ag.spw
	}
	parkedCells := 0
	for _, p := range ag.parked {
		if p != nil {
			parkedCells++
		}
	}
	reg.SetGauge("fbdcnet_fleet_frontier_window", float64(frontierWin))
	reg.SetGauge("fbdcnet_fleet_parked_cells", float64(parkedCells))
	reg.SetGauge("fbdcnet_fleet_obs_dropped_frames", float64(ag.obsDrops))
	var b strings.Builder
	b.WriteString("  agent  state  inc  tasks            lag(win)  last-seen\n")
	for a := 0; a < ag.agents; a++ {
		up := 0.0
		state := "down"
		switch {
		case ag.fin[a]:
			state = "fin"
		case ag.connected[a]:
			state, up = "up", 1
		}
		lagWin := 0
		if span := ag.shards[a].Span(); span > 0 {
			lagWin = int(ag.received[a])/span - frontierWin
		}
		age := now.Sub(ag.lastSeen[a]).Seconds()
		lbl := ag.agentLabel[a]
		reg.SetGauge(obs.Series("fbdcnet_fleet_agent_up", "agent", lbl), up)
		reg.SetGauge(obs.Series("fbdcnet_fleet_agent_last_seen_age_seconds", "agent", lbl), age)
		reg.SetGauge(obs.Series("fbdcnet_fleet_agent_tasks_received", "agent", lbl), float64(ag.received[a]))
		reg.SetGauge(obs.Series("fbdcnet_fleet_agent_frontier_lag_windows", "agent", lbl), float64(lagWin))
		reg.SetGauge(obs.Series("fbdcnet_fleet_agent_incarnation", "agent", lbl), float64(ag.lastInc[a]))
		fmt.Fprintf(&b, "  %-5d  %-5s %4d  %7d/%-7d %8d  %6.1fs ago\n",
			a, state, ag.lastInc[a], ag.received[a], ag.expected[a], lagWin, age)
	}
	reg.SetPanel("agents", b.String())
	ag.stallLocked(now, parkedCells)
}

// stallLocked tracks frontier stalls: the merge head waiting on one
// agent's cell while later cells sit parked. Each stall becomes a
// `frontier-stall:agent-N` span on the aggregator timeline (the
// frontier-lag annotation of the exported trace) and a per-agent
// stall-seconds series. Caller holds ag.mu.
func (ag *fleetAggregator) stallLocked(now time.Time, parkedCells int) {
	blocked := parkedCells > 0 &&
		ag.next < ag.cells && ag.parked[ag.next] == nil && !ag.gapped[ag.next]
	switch {
	case blocked && ag.stallCell == ag.next:
		// Still stalled on the same cell: the open span keeps growing.
	case blocked:
		ag.flushStallLocked(now)
		ag.stallCell, ag.stallStart = ag.next, now
	default:
		ag.flushStallLocked(now)
	}
}

// flushStallLocked closes the open stall span, if any. Caller holds
// ag.mu.
func (ag *fleetAggregator) flushStallLocked(now time.Time) {
	if ag.stallCell < 0 {
		return
	}
	owner := ag.ownerOfCell(ag.stallCell)
	reg := ag.s.Cfg.Obs
	reg.RecordSpanAt(fmt.Sprintf("frontier-stall:agent-%d", owner), ag.stallStart, now)
	reg.Count(obs.Series("fbdcnet_fleet_frontier_stall_seconds_total", "agent", ag.agentLabel[owner]),
		now.Sub(ag.stallStart).Seconds())
	ag.stallCell = -1
}

// ownerOfCell maps a task-grid cell to the agent owning its shard.
func (ag *fleetAggregator) ownerOfCell(cell int) int {
	shard := cell % ag.spw
	for a, rg := range ag.shards {
		if shard >= rg.Lo && shard < rg.Hi {
			return a
		}
	}
	return 0
}

// handleConn runs one agent incarnation's session.
func (ag *fleetAggregator) handleConn(conn net.Conn, winProg *obs.Progress) {
	defer conn.Close()
	reg := ag.s.Cfg.Obs
	r := fbwire.NewReader(conn)
	w := fbwire.NewWriter(conn)

	f, err := r.Next()
	if err != nil || f.Type != fbwire.TypeHello {
		return // never identified itself; nothing to account
	}
	h, err := fbwire.ParseHello(f.Payload)
	if err != nil {
		ag.fail(fmt.Errorf("core: aggregator: bad hello: %w", err))
		return
	}
	a := int(h.AgentID)

	ag.mu.Lock()
	if a >= ag.agents {
		ag.failLocked(fmt.Errorf("core: aggregator: agent id %d outside fleet of %d", a, ag.agents))
		ag.mu.Unlock()
		return
	}
	rg := ag.shards[a]
	if h.Check != ag.s.fleetConfigCheck() || int(h.ShardLo) != rg.Lo || int(h.ShardHi) != rg.Hi || int(h.Windows) != ag.s.Cfg.FleetWindows {
		ag.failLocked(fmt.Errorf("core: aggregator: agent %d handshake mismatch (shards [%d,%d) want [%d,%d), check %#x)",
			a, h.ShardLo, h.ShardHi, rg.Lo, rg.Hi, h.Check))
		ag.mu.Unlock()
		return
	}
	// A restarted agent can dial before the previous connection's EOF is
	// fully drained; wait for the old handler to retire so the resume
	// point reflects every frame the dead incarnation delivered.
	for ag.connected[a] && ag.err == nil {
		ag.cond.Wait()
	}
	if ag.err != nil || ag.fin[a] {
		ag.mu.Unlock()
		return
	}
	if int64(h.Incarnation) <= ag.lastInc[a] {
		ag.failLocked(fmt.Errorf("core: aggregator: agent %d replayed incarnation %d", a, h.Incarnation))
		ag.mu.Unlock()
		return
	}
	span := uint64(rg.Span())
	if h.Incarnation > 0 && span > 0 && ag.received[a]%span != 0 {
		// The previous incarnation died mid-window. Its window's rng
		// stream cannot be partially replayed without double-counting, so
		// the tail of that window is a coverage gap and the restart
		// resumes at the next window boundary.
		boundary := (ag.received[a]/span + 1) * span
		ag.markGaps(a, ag.received[a], boundary)
		ag.received[a] = boundary
	}
	ag.lastInc[a] = int64(h.Incarnation)
	ag.connected[a] = true
	ag.lastSeen[a] = time.Now()
	resume := ag.received[a]
	ag.mu.Unlock()

	reg.AddGauge("fbdcnet_fleet_agents_connected", 1)
	connStart := time.Now()
	var frames int64
	defer func() {
		reg.AddGauge("fbdcnet_fleet_agents_connected", -1)
		reg.RecordSpanAt(fmt.Sprintf("fleet-agent-conn-%d", a), connStart, time.Now())
		reg.Count(obs.Series("fbdcnet_fleet_agent_rx_bytes_total", "agent", ag.agentLabel[a]), float64(r.BytesRead()))
		reg.Count(obs.Series("fbdcnet_fleet_agent_rx_frames_total", "agent", ag.agentLabel[a]), float64(frames))
		if h.Incarnation > 0 {
			reg.Count(obs.Series("fbdcnet_fleet_agent_reconnects_total", "agent", ag.agentLabel[a]), 1)
		}
		ag.mu.Lock()
		ag.connected[a] = false
		ag.lastSeen[a] = time.Now()
		ag.cond.Broadcast()
		ag.mu.Unlock()
	}()

	if err := w.WriteWelcome(resume); err != nil {
		return
	}

	p := ag.pool.Get().(*fbflow.Partial)
	defer func() {
		p.Reset()
		ag.pool.Put(p)
	}()
	for {
		f, err := r.Next()
		if err != nil {
			// Death (EOF, reset) mid-stream: the ledger keeps what
			// arrived; a restart or the reconnect timeout settles the rest.
			return
		}
		frames++
		switch f.Type {
		case fbwire.TypeObs:
			// Observability is best-effort where the dataset protocol is
			// strict: an undecodable obs payload is dropped and counted,
			// never allowed to fail the run or move the merge frontier.
			oh, body, err := fbwire.ParseObs(f.Payload)
			if err != nil {
				ag.dropObs(a)
				continue
			}
			switch oh.Kind {
			case fbwire.ObsCell:
				ag.mu.Lock()
				if oh.Seq != ag.received[a] || ag.scratch.Decode(body) != nil {
					ag.dropObsLocked(a)
					ag.mu.Unlock()
					continue
				}
				window, shard := agentTask(rg, oh.Seq)
				cell := window*ag.spw + shard
				if old := ag.parkedObs[cell]; old != nil {
					ag.obsFree = append(ag.obsFree, old[:0])
				}
				ag.parkedObs[cell] = append(ag.getObsBufLocked(), body...)
				ag.mu.Unlock()
			case fbwire.ObsFinal:
				rep := new(obs.AgentReport)
				if obs.DecodeReport(body, rep) != nil || int(rep.AgentID) != a {
					ag.dropObs(a)
					continue
				}
				ag.mu.Lock()
				ag.reports[a] = rep
				ag.mu.Unlock()
			}
		case fbwire.TypeAudit:
			// Checkpoints are best-effort like obs: a frame the aggregator
			// cannot trust (undecodable, wrong seq, mislabeled cell) is
			// dropped and counted; its cell will land in the ledger as an
			// explicit hole when the frontier reaches it.
			c, err := fbwire.ParseAudit(f.Payload)
			if err != nil {
				ag.dropAudit(a)
				continue
			}
			ag.mu.Lock()
			window, shard := agentTask(rg, c.Seq)
			if ag.parkedAud == nil || c.Seq != ag.received[a] ||
				int(c.Window) != window || int(c.Shard) != shard {
				ag.dropAuditLocked(a)
				ag.mu.Unlock()
				continue
			}
			cell := window*ag.spw + shard
			slot := &ag.parkedAud[cell]
			if c.Stage == fbwire.AuditMatrixSynth {
				slot.m, slot.hasM = c, true
			} else {
				slot.f, slot.hasF = c, true
			}
			ag.s.Cfg.Audit.BB().Record(audit.EvFrameRx, "audit", fbwire.TypeAudit, int64(cell))
			ag.mu.Unlock()
		case fbwire.TypePartial:
			ph, err := fbwire.DecodePartial(f.Payload, p)
			if err != nil {
				ag.fail(fmt.Errorf("core: aggregator: agent %d frame: %w", a, err))
				return
			}
			ag.mu.Lock()
			if ph.Seq != ag.received[a] {
				ag.failLocked(fmt.Errorf("core: aggregator: agent %d sent task %d, expected %d", a, ph.Seq, ag.received[a]))
				ag.mu.Unlock()
				return
			}
			window, shard := agentTask(rg, ph.Seq)
			if int(ph.Window) != window || int(ph.Shard) != shard {
				ag.failLocked(fmt.Errorf("core: aggregator: agent %d task %d labeled (%d,%d), want (%d,%d)",
					a, ph.Seq, ph.Window, ph.Shard, window, shard))
				ag.mu.Unlock()
				return
			}
			cell := window*ag.spw + shard
			ag.parked[cell] = p
			ag.received[a]++
			ag.advanceLocked(winProg)
			// Whether the frontier consumed the cell or it stays parked,
			// the partial no longer belongs to this handler.
			p = ag.pool.Get().(*fbflow.Partial)
			ag.mu.Unlock()
		case fbwire.TypeFin:
			sent, err := fbwire.ParseFin(f.Payload)
			ag.mu.Lock()
			if err != nil || ag.received[a] != ag.expected[a] {
				ag.failLocked(fmt.Errorf("core: aggregator: agent %d fin at %d of %d tasks (sent %d, err %v)",
					a, ag.received[a], ag.expected[a], sent, err))
				ag.mu.Unlock()
				return
			}
			ag.fin[a] = true
			ag.cond.Broadcast()
			ag.mu.Unlock()
			return
		default:
			ag.fail(fmt.Errorf("core: aggregator: agent %d sent unexpected frame type %#x", a, f.Type))
			return
		}
	}
}

// dropObs counts one dropped obs frame from agent a.
func (ag *fleetAggregator) dropObs(a int) {
	ag.mu.Lock()
	ag.dropObsLocked(a)
	ag.mu.Unlock()
}

// dropObsLocked counts one dropped obs frame. Caller holds ag.mu.
func (ag *fleetAggregator) dropObsLocked(a int) {
	ag.obsDrops++
	ag.s.Cfg.Obs.Count(obs.Series("fbdcnet_fleet_obs_drops_total", "agent", ag.agentLabel[a]), 1)
}

// dropAudit counts one dropped audit frame from agent a.
func (ag *fleetAggregator) dropAudit(a int) {
	ag.mu.Lock()
	ag.dropAuditLocked(a)
	ag.mu.Unlock()
}

// dropAuditLocked counts one dropped audit frame. Caller holds ag.mu.
func (ag *fleetAggregator) dropAuditLocked(a int) {
	ag.audDrops++
	ag.s.Cfg.Obs.Count(obs.Series("fbdcnet_fleet_audit_drops_total", "agent", ag.agentLabel[a]), 1)
}

// getObsBufLocked pops a recycled delta buffer (nil when the free list
// is empty — append grows it). Caller holds ag.mu.
func (ag *fleetAggregator) getObsBufLocked() []byte {
	if n := len(ag.obsFree); n > 0 {
		b := ag.obsFree[n-1]
		ag.obsFree = ag.obsFree[:n-1]
		return b
	}
	return nil
}

// advanceLocked merges every cell the task-order frontier can reach:
// parked cells merge (and their partials return to the pool), gapped
// cells skip. A parked obs delta folds into the registry exactly when
// its cell merges; a delta at a gapped cell (the agent shipped the obs
// frame, then died before the partial) is discarded, so federated
// metrics stay a pure function of the merged cell set. Caller holds
// ag.mu.
func (ag *fleetAggregator) advanceLocked(winProg *obs.Progress) {
	moved := false
	for ag.next < ag.cells {
		q := ag.parked[ag.next]
		if q == nil && !ag.gapped[ag.next] {
			break
		}
		if ob := ag.parkedObs[ag.next]; ob != nil {
			ag.parkedObs[ag.next] = nil
			if q != nil && ag.scratch.Decode(ob) == nil {
				ag.s.Cfg.Obs.FoldDelta(&ag.scratch)
			}
			ag.obsFree = append(ag.obsFree, ob[:0])
		}
		if q != nil {
			ag.parked[ag.next] = nil
			ag.ds.MergePartial(q)
			q.Reset()
			ag.pool.Put(q)
			ag.merged[ag.next] = true
		}
		if ag.parkedAud != nil {
			ag.appendAuditLocked(ag.next, q != nil)
		}
		ag.next++
		moved = true
	}
	if moved && ag.spw > 0 {
		winProg.Set(int64(ag.next / ag.spw))
	}
}

// appendAuditLocked lands cell's parked checkpoints in the
// authoritative ledger as the frontier consumes it: matrix-synth first
// (it precedes the draw), then fleet-collect. A gapped cell — or a
// merged cell whose audit frame was lost — becomes an explicit hole;
// holes carry no hash, so a crashed arm's ledger prefix still compares
// byte-for-byte against a clean run's. Caller holds ag.mu.
func (ag *fleetAggregator) appendAuditLocked(cell int, mergedCell bool) {
	aud := ag.s.Cfg.Audit
	bb := aud.BB()
	window, shard := cell/ag.spw, cell%ag.spw
	slot := &ag.parkedAud[cell]
	if ag.s.Cfg.FleetMatrix {
		if mergedCell && slot.hasM {
			aud.Append(audit.Checkpoint{Stage: audit.StageMatrixSynth, Window: window, Shard: shard, Sum: slot.m.Sum, Count: slot.m.Count})
		} else {
			aud.Hole(audit.StageMatrixSynth, window, shard)
		}
	}
	if mergedCell && slot.hasF {
		aud.Append(audit.Checkpoint{Stage: audit.StageFleetCollect, Window: window, Shard: shard, Sum: slot.f.Sum, Count: slot.f.Count})
		bb.Record(audit.EvCellMerge, audit.StageFleetCollect, int64(window), int64(shard))
	} else {
		aud.Hole(audit.StageFleetCollect, window, shard)
		bb.Record(audit.EvCellHole, audit.StageFleetCollect, int64(window), int64(shard))
	}
	*slot = auditSlot{}
}

// markGaps accounts agent tasks [from, to) as coverage gaps, grouped
// into one contiguous run per window. Caller holds ag.mu.
func (ag *fleetAggregator) markGaps(a int, from, to uint64) {
	rg := ag.shards[a]
	for t := from; t < to; {
		window, shard := agentTask(rg, t)
		runEnd := uint64(window+1) * uint64(rg.Span())
		if runEnd > to {
			runEnd = to
		}
		n := int(runEnd - t)
		ag.gaps = append(ag.gaps, CoverageGap{
			Agent: a, Window: window, ShardLo: shard, ShardHi: shard + n, Cells: n,
		})
		for c := 0; c < n; c++ {
			ag.gapped[window*ag.spw+shard+c] = true
		}
		t = runEnd
	}
	ag.advanceLocked(nil)
}

// fail records the first fatal protocol error; the waiter surfaces it.
func (ag *fleetAggregator) fail(err error) {
	ag.mu.Lock()
	ag.failLocked(err)
	ag.mu.Unlock()
}

func (ag *fleetAggregator) failLocked(err error) {
	if ag.err == nil {
		ag.err = err
	}
	ag.cond.Broadcast()
}

// AgentCrashPlan schedules one deterministic agent death: the victim
// exits (status AgentCrashExitCode) right after streaming its
// AfterTask-th task, and the spawner restarts it with the next
// incarnation.
type AgentCrashPlan struct {
	Agent     int
	AfterTask int64
}

// PlanAgentCrash derives the crash schedule from the seed, like every
// other fault in the repo: the victim and its death point are a pure
// function of (Seed, agents), so two runs of the same configuration
// crash — and gap — identically. The death lands mid-window whenever
// the victim owns more than one shard, which is what forces a real
// coverage gap rather than a clean boundary handoff.
func (s *System) PlanAgentCrash(agents int) AgentCrashPlan {
	m := s.FleetShardMap(agents)
	var owners []int
	for a, rg := range m {
		if rg.Span() > 0 {
			owners = append(owners, a)
		}
	}
	r := rng.NewKeyed(s.Cfg.Seed^0xc4a54, uint64(agents))
	victim := owners[r.Intn(len(owners))]
	span := m[victim].Span()
	off := 0
	if span > 1 {
		off = r.Intn(span - 1) // not the last shard of the window: forces a gap
	}
	window := s.Cfg.FleetWindows / 2
	return AgentCrashPlan{Agent: victim, AfterTask: int64(window*span + off)}
}

// DialFleetAgent dials the aggregator with retry until timeout — agents
// race the aggregator's listener at process startup.
func DialFleetAgent(network, addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial(network, addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("core: dialing aggregator %s %s: %w", network, addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// AgentSpawner launches one agent process incarnation. The command must
// run an agent that dials the aggregator and exits zero on FIN,
// AgentCrashExitCode at a planned crash, and anything else on failure.
type AgentSpawner func(agentID, incarnation int) (*exec.Cmd, error)

// RunDistributedFleet is the local multi-process driver: it listens on
// (network, addr), spawns one agent process per shard-map entry through
// spawn — restarting planned-crash exits with a bumped incarnation —
// and aggregates their streams. It returns the merged dataset and the
// coverage gaps (empty for a clean run).
func (s *System) RunDistributedFleet(network, addr string, agents int, spawn AgentSpawner, reconnectWait time.Duration) (*fbflow.Dataset, []CoverageGap, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, nil, err
	}
	spawnErrs := make(chan error, agents)
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for inc := 0; ; inc++ {
				cmd, err := spawn(a, inc)
				if err != nil {
					spawnErrs <- fmt.Errorf("core: spawning agent %d: %w", a, err)
					return
				}
				err = cmd.Run()
				if err == nil {
					return
				}
				var ee *exec.ExitError
				if errors.As(err, &ee) && ee.ExitCode() == AgentCrashExitCode {
					continue // planned crash: restart as the next incarnation
				}
				spawnErrs <- fmt.Errorf("core: agent %d process: %w", a, err)
				return
			}
		}(a)
	}
	ds, gaps, aggErr := s.ServeFleetAggregator(ln, agents, reconnectWait)
	ln.Close()
	wg.Wait()
	close(spawnErrs)
	for e := range spawnErrs {
		if aggErr == nil {
			aggErr = e
		}
	}
	if aggErr != nil {
		return nil, nil, aggErr
	}
	return ds, gaps, nil
}

// AgentMetricsAddr derives agent a's live-metrics listen address from
// the aggregator's -metrics-addr: the same host with the port offset by
// 1+a, so one flag fans out to N processes without collisions. Port 0
// (kernel-assigned) passes through as 0 for every agent; an unparsable
// base yields "" (metrics endpoint disabled for the agents).
func AgentMetricsAddr(base string, a int) string {
	if base == "" {
		return ""
	}
	host, port, err := net.SplitHostPort(base)
	if err != nil {
		return ""
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 0 {
		return ""
	}
	if p == 0 {
		return net.JoinHostPort(host, "0")
	}
	return net.JoinHostPort(host, strconv.Itoa(p+1+a))
}

// AgentMetricsAddrs resolves the full per-agent metrics address table
// up front — base port + 1 + index for each of the `agents` processes —
// so spawn mode can detect port collisions and overflows before any
// child hits an opaque bind error. avoid lists addresses already taken
// in this run (the aggregator's own metrics endpoint, the dataset
// listener when it is TCP): a derived address that lands on one of them
// is reported with both claimants named. Port 0 (kernel-assigned) and
// an empty base disable the check and derive like AgentMetricsAddr.
func AgentMetricsAddrs(base string, agents int, avoid ...string) ([]string, error) {
	addrs := make([]string, agents)
	if base == "" {
		return addrs, nil
	}
	host, port, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("core: agent metrics base %q: %w", base, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 0 {
		return nil, fmt.Errorf("core: agent metrics base %q: port %q is not a port number", base, port)
	}
	if p == 0 {
		for a := range addrs {
			addrs[a] = net.JoinHostPort(host, "0")
		}
		return addrs, nil
	}
	taken := make(map[string]string, len(avoid)+agents)
	for _, av := range avoid {
		if av != "" {
			taken[av] = "reserved by the run"
		}
	}
	for a := range addrs {
		derived := p + 1 + a
		if derived > 65535 {
			return nil, fmt.Errorf("core: agent %d metrics port %d overflows 65535 (base %q + 1 + %d); pick a lower base port", a, derived, base, a)
		}
		addr := net.JoinHostPort(host, strconv.Itoa(derived))
		if who, clash := taken[addr]; clash {
			return nil, fmt.Errorf("core: agent %d metrics address %s collides with %s; move -metrics-addr so base+1..base+%d stay free", a, addr, who, agents)
		}
		taken[addr] = fmt.Sprintf("agent %d", a)
		addrs[a] = addr
	}
	return addrs, nil
}

// ParseListenSpec splits an address spec into (network, address):
// "unix:/path" and "tcp:host:port" are explicit; a bare path is a unix
// socket, anything else with a colon is TCP.
func ParseListenSpec(spec string) (network, addr string) {
	switch {
	case strings.HasPrefix(spec, "unix:"):
		return "unix", spec[len("unix:"):]
	case strings.HasPrefix(spec, "tcp:"):
		return "tcp", spec[len("tcp:"):]
	case strings.Contains(spec, ":"):
		return "tcp", spec
	default:
		return "unix", spec
	}
}

// SelfExecSpawner returns an AgentSpawner that re-runs the current
// executable with args(agentID, incarnation). Agent stderr passes
// through for diagnostics; stdout is discarded so agents cannot pollute
// the aggregator's dataset output.
func SelfExecSpawner(args func(agentID, incarnation int) []string) (AgentSpawner, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("core: resolving own executable: %w", err)
	}
	return func(a, inc int) (*exec.Cmd, error) {
		cmd := exec.Command(exe, args(a, inc)...)
		cmd.Stderr = os.Stderr
		return cmd, nil
	}, nil
}

// CollectFleetDistributed runs this System's fleet collection across
// `agents` self-exec agent processes over a unix socket in a private
// temp directory, injects the aggregate as the System's fleet dataset,
// and returns the coverage gaps (empty for a clean run). args builds
// the child process's argument list; it receives the socket path.
func (s *System) CollectFleetDistributed(agents int, args func(addr string, agentID, incarnation int) []string) ([]CoverageGap, error) {
	dir, err := os.MkdirTemp("", "fbflow-agg-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	addr := filepath.Join(dir, "agg.sock")
	spawn, err := SelfExecSpawner(func(a, inc int) []string { return args(addr, a, inc) })
	if err != nil {
		return nil, err
	}
	ds, gaps, err := s.RunDistributedFleet("unix", addr, agents, spawn, 0)
	if err != nil {
		return nil, err
	}
	if !s.InjectFleetDataset(ds, gaps) {
		return nil, fmt.Errorf("core: fleet dataset already collected before distributed run")
	}
	return gaps, nil
}

// fleetReferenceSkipping is the sequential oracle for gap runs: the
// single-process collection with the given cells skipped at the merge.
// The distributed dataset of a crashed run must equal it bit for bit.
func (s *System) fleetReferenceSkipping(skip map[int]bool) *fbflow.Dataset {
	tasks := s.fleetTasks()
	tagger := fbflow.NewTagger(s.Topo)
	ds := fbflow.NewDataset()
	var prog *services.FleetProgram
	var mprog *services.MatrixProgram
	var mat *services.DemandMatrix
	if s.Cfg.FleetMatrix {
		mprog = services.NewMatrixProgram(s.Pick, s.Cfg.Params)
		mat = services.NewDemandMatrix()
	} else {
		prog = services.NewFleetProgram(s.Pick, s.Cfg.Params)
	}
	p := fbflow.NewPartial()
	if s.Cfg.SketchMode {
		p.EnableCardinality()
	}
	// Instrumented like the distributed path: one obs shard observed and
	// folded per kept cell, so a registry-carrying oracle run is also the
	// counter reference for federation under gaps.
	reg := s.Cfg.Obs
	aud := s.Cfg.Audit
	sh := reg.NewShard()
	for i, t := range tasks {
		if skip[i] {
			// Audit parity with the distributed crash arm: a skipped cell
			// is an explicit ledger hole, never a hash.
			if s.Cfg.FleetMatrix {
				aud.Hole(audit.StageMatrixSynth, t.window, t.shard)
			}
			aud.Hole(audit.StageFleetCollect, t.window, t.shard)
			continue
		}
		p.Reset()
		var t0 time.Time
		if reg.Enabled() {
			t0 = time.Now()
		}
		var fh, mh *audit.Hash
		var fhv, mhv audit.Hash
		if aud.Enabled() {
			fh = &fhv
			if s.Cfg.FleetMatrix {
				mh = &mhv
			}
		}
		if s.Cfg.FleetMatrix {
			s.collectMatrixShard(tagger, mprog, t, mat, p, sh, fh, mh)
		} else {
			s.collectShard(tagger, prog, t, p, sh, fh)
		}
		if aud.Enabled() {
			if mh != nil {
				aud.Record(audit.StageMatrixSynth, t.window, t.shard, mh)
			}
			aud.Record(audit.StageFleetCollect, t.window, t.shard, fh)
		}
		if reg.Enabled() {
			sh.Observe(s.obsIDs.fleetShardUs, time.Since(t0).Microseconds())
		}
		sh.Fold()
		ds.MergePartial(p)
	}
	return ds
}
