package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/fbwire"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/services"
)

// Distributed fleet collection: the production shape of the paper's
// Fbflow pipeline. N agent processes each own a contiguous range of the
// (window × shard) task grid's shard axis, run sampling and partial
// accumulation locally, and stream binary partial frames to one
// aggregator that merges them at the global task-order frontier.
//
// The determinism contract is the same as the in-process engine's:
// every (window, shard) cell draws from an rng stream keyed by its own
// coordinates, and partials merge in global task order — window-major,
// shard within window — so the aggregated dataset is bit-identical to
// the single-process run at any agent count. Agents overlap comms with
// compute by double-buffering partials (window W+1 accumulates while W
// encodes and sends), and the aggregator merges frames as they arrive
// rather than barriering per window, parking out-of-order cells exactly
// like collectFleet parks out-of-order workers.

// AgentCrashExitCode is the exit status of an agent that dies at its
// planned crash point. The spawner restarts exactly this status with an
// incremented incarnation; anything else is a real failure.
const AgentCrashExitCode = 3

// ErrPlannedCrash is returned by RunFleetAgent when the agent reaches
// its planned crash task. The hosting process should exit with
// AgentCrashExitCode.
var ErrPlannedCrash = errors.New("core: fleet agent reached its planned crash point")

// ShardRange is one agent's contiguous range [Lo, Hi) of per-window
// shard indices.
type ShardRange struct {
	Lo, Hi int
}

// Span returns the number of shards the range owns.
func (r ShardRange) Span() int { return r.Hi - r.Lo }

// fleetShardsPerWindow returns the shard-axis width of the task grid —
// a pure function of topology size and collection mode, never of the
// agent or worker count.
func (s *System) fleetShardsPerWindow() int {
	n, width := s.Topo.NumHosts(), fleetShardHosts
	if s.Cfg.FleetMatrix {
		n, width = len(s.Topo.Racks), fleetMatrixShardRacks
	}
	return (n + width - 1) / width
}

// FleetShardMap splits the shard axis into one contiguous range per
// agent. Trailing agents may own empty ranges when there are more
// agents than shards; they still handshake and FIN so the aggregator's
// accounting stays uniform.
func (s *System) FleetShardMap(agents int) []ShardRange {
	spw := s.fleetShardsPerWindow()
	m := make([]ShardRange, agents)
	for a := 0; a < agents; a++ {
		m[a] = ShardRange{Lo: a * spw / agents, Hi: (a + 1) * spw / agents}
	}
	return m
}

// fleetConfigCheck fingerprints every configuration field that shapes
// the task grid or its rng streams. Agent and aggregator exchange it in
// HELLO: a mismatch means the processes would silently compute
// different datasets, so the handshake fails instead.
func (s *System) fleetConfigCheck() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	mix(s.Cfg.Seed)
	mix(uint64(s.Cfg.Scale))
	mix(uint64(s.Cfg.FleetWindows))
	mix(math.Float64bits(s.Cfg.FleetWindowSec))
	mix(uint64(s.Cfg.FleetSamples))
	mix(b2u(s.Cfg.FleetMatrix))
	mix(b2u(s.Cfg.SketchMode))
	mix(uint64(s.fleetShardsPerWindow()))
	return h
}

// agentTask maps an agent-local task index to its grid cell. Agent
// streams are window-major within the agent's shard range, so resuming
// at a window boundary is resuming at a multiple of the span.
func agentTask(rg ShardRange, t uint64) (window, shard int) {
	span := uint64(rg.Span())
	return int(t / span), rg.Lo + int(t%span)
}

// RunFleetAgent runs one agent over an established aggregator
// connection: handshake, then compute-and-stream every cell of this
// agent's shard range from the aggregator's resume point. crashAfter,
// when >= 0, is the agent-local task index after whose frame the agent
// abandons the run with ErrPlannedCrash — the deterministic stand-in
// for an agent host dying mid-window.
//
// Compute and comms overlap: a sender goroutine owns the socket while
// the main loop accumulates the next cell into a second (and third)
// pooled partial, so the steady state keeps both the CPU and the wire
// busy without any per-window barrier.
func (s *System) RunFleetAgent(agentID, agents int, incarnation uint32, conn io.ReadWriter, crashAfter int64) error {
	if agentID < 0 || agentID >= agents {
		return fmt.Errorf("core: agent id %d outside [0, %d)", agentID, agents)
	}
	rg := s.FleetShardMap(agents)[agentID]
	span := rg.Span()
	expected := uint64(span * s.Cfg.FleetWindows)

	w := fbwire.NewWriter(conn)
	r := fbwire.NewReader(conn)
	if err := w.WriteHello(fbwire.Hello{
		Version:     fbwire.Version,
		AgentID:     uint32(agentID),
		Incarnation: incarnation,
		ShardLo:     uint32(rg.Lo),
		ShardHi:     uint32(rg.Hi),
		Windows:     uint32(s.Cfg.FleetWindows),
		Check:       s.fleetConfigCheck(),
	}); err != nil {
		return fmt.Errorf("core: agent %d hello: %w", agentID, err)
	}
	f, err := r.Next()
	if err != nil {
		return fmt.Errorf("core: agent %d awaiting welcome: %w", agentID, err)
	}
	if f.Type != fbwire.TypeWelcome {
		return fmt.Errorf("core: agent %d expected welcome, got frame type %#x", agentID, f.Type)
	}
	resume, err := fbwire.ParseWelcome(f.Payload)
	if err != nil {
		return err
	}
	if resume > expected {
		return fmt.Errorf("core: agent %d told to resume at task %d of %d", agentID, resume, expected)
	}

	reg := s.Cfg.Obs
	sp := reg.StartSpan(fmt.Sprintf("fleet-agent-%d", agentID))
	defer sp.End()

	tagger := fbflow.NewTagger(s.Topo)
	var prog *services.FleetProgram
	var mprog *services.MatrixProgram
	var mat *services.DemandMatrix
	if s.Cfg.FleetMatrix {
		mprog = services.NewMatrixProgram(s.Pick, s.Cfg.Params)
		mat = services.NewDemandMatrix()
	} else {
		prog = services.NewFleetProgram(s.Pick, s.Cfg.Params)
	}

	// Double buffer: the main loop computes into one partial while the
	// sender encodes and flushes the previous one. A third partial in the
	// free pool absorbs the jitter between the two.
	newPartial := func() *fbflow.Partial {
		p := fbflow.NewPartial()
		if s.Cfg.SketchMode {
			p.EnableCardinality()
		}
		return p
	}
	type job struct {
		seq uint64
		p   *fbflow.Partial
	}
	free := make(chan *fbflow.Partial, 3)
	free <- newPartial()
	free <- newPartial()
	free <- newPartial()
	jobs := make(chan job, 1)
	sendRes := make(chan error, 1)
	go func() {
		for j := range jobs {
			window, shard := agentTask(rg, j.seq)
			err := w.WritePartial(fbwire.PartialHeader{Seq: j.seq, Window: uint32(window), Shard: uint32(shard)}, j.p)
			j.p.Reset()
			free <- j.p
			if err != nil {
				sendRes <- err
				return
			}
			if crashAfter >= 0 && j.seq == uint64(crashAfter) {
				sendRes <- ErrPlannedCrash
				return
			}
		}
		sendRes <- nil
	}()

	drain := func(err error) error {
		close(jobs)
		if serr := <-sendRes; err == nil {
			err = serr
		}
		return err
	}
	sh := reg.NewShard()
	for t := resume; t < expected; t++ {
		var p *fbflow.Partial
		select {
		case p = <-free:
		case serr := <-sendRes:
			// The sender died (socket error or planned crash): stop
			// computing and surface its verdict.
			close(jobs)
			return serr
		}
		window, shard := agentTask(rg, t)
		task := fleetTask{window: window, shard: shard, lo: shard * fleetShardHosts, hi: min((shard+1)*fleetShardHosts, s.Topo.NumHosts())}
		if s.Cfg.FleetMatrix {
			task.lo = shard * fleetMatrixShardRacks
			task.hi = min(task.lo+fleetMatrixShardRacks, len(s.Topo.Racks))
			s.collectMatrixShard(tagger, mprog, task, mat, p, sh)
		} else {
			s.collectShard(tagger, prog, task, p, sh)
		}
		sh.Fold()
		select {
		case jobs <- job{seq: t, p: p}:
		case serr := <-sendRes:
			return serr
		}
	}
	if err := drain(nil); err != nil {
		return err
	}
	if err := w.WriteFin(expected - resume); err != nil {
		return fmt.Errorf("core: agent %d fin: %w", agentID, err)
	}
	reg.SetGauge(fmt.Sprintf("fbdcnet_agent_%d_tx_bytes", agentID), float64(w.BytesWritten()))
	return nil
}

// CoverageGap is one contiguous run of task cells the aggregator never
// received — an agent died mid-window and the restart resumed at the
// next window boundary, or an agent never came back at all. Gaps are
// the distributed analogue of lost-forever bytes: accounted, not
// silently absorbed.
type CoverageGap struct {
	Agent   int `json:"agent"`
	Window  int `json:"window"`
	ShardLo int `json:"shard_lo"` // global shard ids [ShardLo, ShardHi)
	ShardHi int `json:"shard_hi"`
	Cells   int `json:"cells"`
}

// fleetAggregator is the shared state of one aggregation run.
type fleetAggregator struct {
	s      *System
	agents int
	shards []ShardRange
	spw    int
	cells  int

	mu        sync.Mutex
	cond      *sync.Cond
	parked    []*fbflow.Partial
	gapped    []bool
	merged    []bool
	next      int
	ds        *fbflow.Dataset
	pool      sync.Pool
	received  []uint64 // agent-task credit, gapped cells included
	expected  []uint64
	fin       []bool
	connected []bool
	lastInc   []int64
	lastSeen  []time.Time
	gaps      []CoverageGap
	err       error
}

// ServeFleetAggregator accepts agent connections on ln and merges their
// partial streams into one dataset at the global task-order frontier.
// It returns when every agent has delivered its full shard range or has
// been gapped out after reconnectWait without a live connection. The
// returned gaps are sorted in task order, so gap accounting is as
// deterministic as the dataset itself.
func (s *System) ServeFleetAggregator(ln net.Listener, agents int, reconnectWait time.Duration) (*fbflow.Dataset, []CoverageGap, error) {
	if agents < 1 {
		return nil, nil, fmt.Errorf("core: aggregator needs at least one agent")
	}
	if reconnectWait <= 0 {
		reconnectWait = 10 * time.Second
	}
	spw := s.fleetShardsPerWindow()
	ag := &fleetAggregator{
		s:         s,
		agents:    agents,
		shards:    s.FleetShardMap(agents),
		spw:       spw,
		cells:     spw * s.Cfg.FleetWindows,
		ds:        fbflow.NewDataset(),
		received:  make([]uint64, agents),
		expected:  make([]uint64, agents),
		fin:       make([]bool, agents),
		connected: make([]bool, agents),
		lastInc:   make([]int64, agents),
		lastSeen:  make([]time.Time, agents),
	}
	ag.cond = sync.NewCond(&ag.mu)
	ag.parked = make([]*fbflow.Partial, ag.cells)
	ag.gapped = make([]bool, ag.cells)
	ag.merged = make([]bool, ag.cells)
	ag.pool.New = func() any { return fbflow.NewPartial() }
	now := time.Now()
	for a := 0; a < agents; a++ {
		ag.expected[a] = uint64(ag.shards[a].Span() * s.Cfg.FleetWindows)
		ag.lastInc[a] = -1
		ag.lastSeen[a] = now
	}

	reg := s.Cfg.Obs
	sp := reg.StartSpan("fleet-aggregate")
	defer sp.End()
	winProg := reg.NewProgress("fleet-windows", int64(s.Cfg.FleetWindows))

	// Accept loop: runs until the listener closes. Each connection is
	// one agent incarnation.
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				ag.handleConn(conn, winProg)
			}()
		}
	}()

	err := ag.wait(reconnectWait)
	ln.Close()
	wg.Wait()
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(ag.gaps, func(i, j int) bool {
		a, b := ag.gaps[i], ag.gaps[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		return a.ShardLo < b.ShardLo
	})
	if reg.Enabled() {
		winProg.Set(int64(s.Cfg.FleetWindows))
		gapCells := 0
		for _, g := range ag.gaps {
			gapCells += g.Cells
		}
		reg.SetGauge("fbdcnet_fleet_gap_cells", float64(gapCells))
	}
	return ag.ds, ag.gaps, nil
}

// wait blocks until every agent is finished or the run fails, tail-
// gapping agents that stay disconnected longer than reconnectWait.
func (ag *fleetAggregator) wait(reconnectWait time.Duration) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		ag.mu.Lock()
		if ag.err != nil {
			err := ag.err
			ag.mu.Unlock()
			return err
		}
		doneAll := true
		now := time.Now()
		for a := 0; a < ag.agents; a++ {
			if ag.fin[a] {
				continue
			}
			if !ag.connected[a] && now.Sub(ag.lastSeen[a]) > reconnectWait {
				// The agent is not coming back: its remaining cells are
				// lost forever. Account them and finish its ledger.
				ag.markGaps(a, ag.received[a], ag.expected[a])
				ag.received[a] = ag.expected[a]
				ag.fin[a] = true
				ag.cond.Broadcast()
				continue
			}
			doneAll = false
		}
		ag.mu.Unlock()
		if doneAll {
			return nil
		}
	}
	return nil
}

// handleConn runs one agent incarnation's session.
func (ag *fleetAggregator) handleConn(conn net.Conn, winProg *obs.Progress) {
	defer conn.Close()
	reg := ag.s.Cfg.Obs
	r := fbwire.NewReader(conn)
	w := fbwire.NewWriter(conn)

	f, err := r.Next()
	if err != nil || f.Type != fbwire.TypeHello {
		return // never identified itself; nothing to account
	}
	h, err := fbwire.ParseHello(f.Payload)
	if err != nil {
		ag.fail(fmt.Errorf("core: aggregator: bad hello: %w", err))
		return
	}
	a := int(h.AgentID)

	ag.mu.Lock()
	if a >= ag.agents {
		ag.failLocked(fmt.Errorf("core: aggregator: agent id %d outside fleet of %d", a, ag.agents))
		ag.mu.Unlock()
		return
	}
	rg := ag.shards[a]
	if h.Check != ag.s.fleetConfigCheck() || int(h.ShardLo) != rg.Lo || int(h.ShardHi) != rg.Hi || int(h.Windows) != ag.s.Cfg.FleetWindows {
		ag.failLocked(fmt.Errorf("core: aggregator: agent %d handshake mismatch (shards [%d,%d) want [%d,%d), check %#x)",
			a, h.ShardLo, h.ShardHi, rg.Lo, rg.Hi, h.Check))
		ag.mu.Unlock()
		return
	}
	// A restarted agent can dial before the previous connection's EOF is
	// fully drained; wait for the old handler to retire so the resume
	// point reflects every frame the dead incarnation delivered.
	for ag.connected[a] && ag.err == nil {
		ag.cond.Wait()
	}
	if ag.err != nil || ag.fin[a] {
		ag.mu.Unlock()
		return
	}
	if int64(h.Incarnation) <= ag.lastInc[a] {
		ag.failLocked(fmt.Errorf("core: aggregator: agent %d replayed incarnation %d", a, h.Incarnation))
		ag.mu.Unlock()
		return
	}
	span := uint64(rg.Span())
	if h.Incarnation > 0 && span > 0 && ag.received[a]%span != 0 {
		// The previous incarnation died mid-window. Its window's rng
		// stream cannot be partially replayed without double-counting, so
		// the tail of that window is a coverage gap and the restart
		// resumes at the next window boundary.
		boundary := (ag.received[a]/span + 1) * span
		ag.markGaps(a, ag.received[a], boundary)
		ag.received[a] = boundary
	}
	ag.lastInc[a] = int64(h.Incarnation)
	ag.connected[a] = true
	ag.lastSeen[a] = time.Now()
	resume := ag.received[a]
	ag.mu.Unlock()

	reg.AddGauge("fbdcnet_fleet_agents_connected", 1)
	connStart := time.Now()
	defer func() {
		reg.AddGauge("fbdcnet_fleet_agents_connected", -1)
		reg.RecordSpan(fmt.Sprintf("fleet-agent-conn-%d", a), time.Since(connStart))
		reg.Count(obs.Series("fbdcnet_fleet_agent_rx_bytes_total", "agent", fmt.Sprint(a)), float64(r.BytesRead()))
		ag.mu.Lock()
		ag.connected[a] = false
		ag.lastSeen[a] = time.Now()
		ag.cond.Broadcast()
		ag.mu.Unlock()
	}()

	if err := w.WriteWelcome(resume); err != nil {
		return
	}

	p := ag.pool.Get().(*fbflow.Partial)
	defer func() {
		p.Reset()
		ag.pool.Put(p)
	}()
	for {
		f, err := r.Next()
		if err != nil {
			// Death (EOF, reset) mid-stream: the ledger keeps what
			// arrived; a restart or the reconnect timeout settles the rest.
			return
		}
		switch f.Type {
		case fbwire.TypePartial:
			ph, err := fbwire.DecodePartial(f.Payload, p)
			if err != nil {
				ag.fail(fmt.Errorf("core: aggregator: agent %d frame: %w", a, err))
				return
			}
			ag.mu.Lock()
			if ph.Seq != ag.received[a] {
				ag.failLocked(fmt.Errorf("core: aggregator: agent %d sent task %d, expected %d", a, ph.Seq, ag.received[a]))
				ag.mu.Unlock()
				return
			}
			window, shard := agentTask(rg, ph.Seq)
			if int(ph.Window) != window || int(ph.Shard) != shard {
				ag.failLocked(fmt.Errorf("core: aggregator: agent %d task %d labeled (%d,%d), want (%d,%d)",
					a, ph.Seq, ph.Window, ph.Shard, window, shard))
				ag.mu.Unlock()
				return
			}
			cell := window*ag.spw + shard
			ag.parked[cell] = p
			ag.received[a]++
			ag.advanceLocked(winProg)
			// Whether the frontier consumed the cell or it stays parked,
			// the partial no longer belongs to this handler.
			p = ag.pool.Get().(*fbflow.Partial)
			ag.mu.Unlock()
		case fbwire.TypeFin:
			sent, err := fbwire.ParseFin(f.Payload)
			ag.mu.Lock()
			if err != nil || ag.received[a] != ag.expected[a] {
				ag.failLocked(fmt.Errorf("core: aggregator: agent %d fin at %d of %d tasks (sent %d, err %v)",
					a, ag.received[a], ag.expected[a], sent, err))
				ag.mu.Unlock()
				return
			}
			ag.fin[a] = true
			ag.cond.Broadcast()
			ag.mu.Unlock()
			return
		default:
			ag.fail(fmt.Errorf("core: aggregator: agent %d sent unexpected frame type %#x", a, f.Type))
			return
		}
	}
}

// advanceLocked merges every cell the task-order frontier can reach:
// parked cells merge (and their partials return to the pool), gapped
// cells skip. Caller holds ag.mu.
func (ag *fleetAggregator) advanceLocked(winProg *obs.Progress) {
	moved := false
	for ag.next < ag.cells {
		if q := ag.parked[ag.next]; q != nil {
			ag.parked[ag.next] = nil
			ag.ds.MergePartial(q)
			q.Reset()
			ag.pool.Put(q)
			ag.merged[ag.next] = true
		} else if !ag.gapped[ag.next] {
			break
		}
		ag.next++
		moved = true
	}
	if moved && ag.spw > 0 {
		winProg.Set(int64(ag.next / ag.spw))
	}
}

// markGaps accounts agent tasks [from, to) as coverage gaps, grouped
// into one contiguous run per window. Caller holds ag.mu.
func (ag *fleetAggregator) markGaps(a int, from, to uint64) {
	rg := ag.shards[a]
	for t := from; t < to; {
		window, shard := agentTask(rg, t)
		runEnd := uint64(window+1) * uint64(rg.Span())
		if runEnd > to {
			runEnd = to
		}
		n := int(runEnd - t)
		ag.gaps = append(ag.gaps, CoverageGap{
			Agent: a, Window: window, ShardLo: shard, ShardHi: shard + n, Cells: n,
		})
		for c := 0; c < n; c++ {
			ag.gapped[window*ag.spw+shard+c] = true
		}
		t = runEnd
	}
	ag.advanceLocked(nil)
}

// fail records the first fatal protocol error; the waiter surfaces it.
func (ag *fleetAggregator) fail(err error) {
	ag.mu.Lock()
	ag.failLocked(err)
	ag.mu.Unlock()
}

func (ag *fleetAggregator) failLocked(err error) {
	if ag.err == nil {
		ag.err = err
	}
	ag.cond.Broadcast()
}

// AgentCrashPlan schedules one deterministic agent death: the victim
// exits (status AgentCrashExitCode) right after streaming its
// AfterTask-th task, and the spawner restarts it with the next
// incarnation.
type AgentCrashPlan struct {
	Agent     int
	AfterTask int64
}

// PlanAgentCrash derives the crash schedule from the seed, like every
// other fault in the repo: the victim and its death point are a pure
// function of (Seed, agents), so two runs of the same configuration
// crash — and gap — identically. The death lands mid-window whenever
// the victim owns more than one shard, which is what forces a real
// coverage gap rather than a clean boundary handoff.
func (s *System) PlanAgentCrash(agents int) AgentCrashPlan {
	m := s.FleetShardMap(agents)
	var owners []int
	for a, rg := range m {
		if rg.Span() > 0 {
			owners = append(owners, a)
		}
	}
	r := rng.NewKeyed(s.Cfg.Seed^0xc4a54, uint64(agents))
	victim := owners[r.Intn(len(owners))]
	span := m[victim].Span()
	off := 0
	if span > 1 {
		off = r.Intn(span - 1) // not the last shard of the window: forces a gap
	}
	window := s.Cfg.FleetWindows / 2
	return AgentCrashPlan{Agent: victim, AfterTask: int64(window*span + off)}
}

// DialFleetAgent dials the aggregator with retry until timeout — agents
// race the aggregator's listener at process startup.
func DialFleetAgent(network, addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial(network, addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("core: dialing aggregator %s %s: %w", network, addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// AgentSpawner launches one agent process incarnation. The command must
// run an agent that dials the aggregator and exits zero on FIN,
// AgentCrashExitCode at a planned crash, and anything else on failure.
type AgentSpawner func(agentID, incarnation int) (*exec.Cmd, error)

// RunDistributedFleet is the local multi-process driver: it listens on
// (network, addr), spawns one agent process per shard-map entry through
// spawn — restarting planned-crash exits with a bumped incarnation —
// and aggregates their streams. It returns the merged dataset and the
// coverage gaps (empty for a clean run).
func (s *System) RunDistributedFleet(network, addr string, agents int, spawn AgentSpawner, reconnectWait time.Duration) (*fbflow.Dataset, []CoverageGap, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, nil, err
	}
	spawnErrs := make(chan error, agents)
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for inc := 0; ; inc++ {
				cmd, err := spawn(a, inc)
				if err != nil {
					spawnErrs <- fmt.Errorf("core: spawning agent %d: %w", a, err)
					return
				}
				err = cmd.Run()
				if err == nil {
					return
				}
				var ee *exec.ExitError
				if errors.As(err, &ee) && ee.ExitCode() == AgentCrashExitCode {
					continue // planned crash: restart as the next incarnation
				}
				spawnErrs <- fmt.Errorf("core: agent %d process: %w", a, err)
				return
			}
		}(a)
	}
	ds, gaps, aggErr := s.ServeFleetAggregator(ln, agents, reconnectWait)
	ln.Close()
	wg.Wait()
	close(spawnErrs)
	for e := range spawnErrs {
		if aggErr == nil {
			aggErr = e
		}
	}
	if aggErr != nil {
		return nil, nil, aggErr
	}
	return ds, gaps, nil
}

// ParseListenSpec splits an address spec into (network, address):
// "unix:/path" and "tcp:host:port" are explicit; a bare path is a unix
// socket, anything else with a colon is TCP.
func ParseListenSpec(spec string) (network, addr string) {
	switch {
	case strings.HasPrefix(spec, "unix:"):
		return "unix", spec[len("unix:"):]
	case strings.HasPrefix(spec, "tcp:"):
		return "tcp", spec[len("tcp:"):]
	case strings.Contains(spec, ":"):
		return "tcp", spec
	default:
		return "unix", spec
	}
}

// SelfExecSpawner returns an AgentSpawner that re-runs the current
// executable with args(agentID, incarnation). Agent stderr passes
// through for diagnostics; stdout is discarded so agents cannot pollute
// the aggregator's dataset output.
func SelfExecSpawner(args func(agentID, incarnation int) []string) (AgentSpawner, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("core: resolving own executable: %w", err)
	}
	return func(a, inc int) (*exec.Cmd, error) {
		cmd := exec.Command(exe, args(a, inc)...)
		cmd.Stderr = os.Stderr
		return cmd, nil
	}, nil
}

// CollectFleetDistributed runs this System's fleet collection across
// `agents` self-exec agent processes over a unix socket in a private
// temp directory, injects the aggregate as the System's fleet dataset,
// and returns the coverage gaps (empty for a clean run). args builds
// the child process's argument list; it receives the socket path.
func (s *System) CollectFleetDistributed(agents int, args func(addr string, agentID, incarnation int) []string) ([]CoverageGap, error) {
	dir, err := os.MkdirTemp("", "fbflow-agg-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	addr := filepath.Join(dir, "agg.sock")
	spawn, err := SelfExecSpawner(func(a, inc int) []string { return args(addr, a, inc) })
	if err != nil {
		return nil, err
	}
	ds, gaps, err := s.RunDistributedFleet("unix", addr, agents, spawn, 0)
	if err != nil {
		return nil, err
	}
	if !s.InjectFleetDataset(ds, gaps) {
		return nil, fmt.Errorf("core: fleet dataset already collected before distributed run")
	}
	return gaps, nil
}

// fleetReferenceSkipping is the sequential oracle for gap runs: the
// single-process collection with the given cells skipped at the merge.
// The distributed dataset of a crashed run must equal it bit for bit.
func (s *System) fleetReferenceSkipping(skip map[int]bool) *fbflow.Dataset {
	tasks := s.fleetTasks()
	tagger := fbflow.NewTagger(s.Topo)
	ds := fbflow.NewDataset()
	var prog *services.FleetProgram
	var mprog *services.MatrixProgram
	var mat *services.DemandMatrix
	if s.Cfg.FleetMatrix {
		mprog = services.NewMatrixProgram(s.Pick, s.Cfg.Params)
		mat = services.NewDemandMatrix()
	} else {
		prog = services.NewFleetProgram(s.Pick, s.Cfg.Params)
	}
	p := fbflow.NewPartial()
	if s.Cfg.SketchMode {
		p.EnableCardinality()
	}
	for i, t := range tasks {
		if skip[i] {
			continue
		}
		p.Reset()
		if s.Cfg.FleetMatrix {
			s.collectMatrixShard(tagger, mprog, t, mat, p, nil)
		} else {
			s.collectShard(tagger, prog, t, p, nil)
		}
		ds.MergePartial(p)
	}
	return ds
}
