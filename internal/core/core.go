// Package core orchestrates the full reproduction: it builds a datacenter
// (topology + services), runs the two collection systems over it, and
// executes one experiment per table and figure of the paper's evaluation,
// returning structured results the bench harness and cmd/experiments
// render.
//
// The package is the reproduction's public surface: construct a System,
// then call the Table*/Figure* methods. Every experiment is deterministic
// in (Config.Seed, Config.Scale).
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// Config selects the scale, seed, service parameters, and experiment
// durations.
type Config struct {
	Scale  topology.Scale
	Seed   uint64
	Params services.Params

	// ShortTraceSec is used by sub-second analyses (heavy hitters,
	// concurrency, rates): the paper's two-minute captures, scaled.
	ShortTraceSec int
	// LongTraceSec is used by flow size/duration analyses: the paper's
	// ten-minute captures, scaled.
	LongTraceSec int
	// FleetWindows and FleetWindowSec define the Fbflow observation: the
	// paper's 24-hour day is FleetWindows windows of FleetWindowSec
	// seconds each, diurnally modulated.
	FleetWindows   int
	FleetWindowSec float64
	// FleetSamples is the per-component flow sampling resolution.
	FleetSamples int
	// FleetMatrix switches fleet collection from per-host flow sampling
	// to vectorised traffic-matrix synthesis: each window packs
	// per-(src rack, dst rack) demand cells in bulk and draws one
	// representative flow per cell. At million-host scales this replaces
	// tens of millions of per-host emissions per window with a few
	// million rack-pair cells. Matrix-mode rng streams are keyed by
	// (seed, window, rack shard), so results stay bit-identical at any
	// Taggers value; the dataset differs from sampling mode by design.
	FleetMatrix bool
	// MemCeilingBytes, when positive, is stamped into the run manifest
	// together with the measured fleet heap peak; cmd/manifestcheck
	// asserts the peak stayed under the ceiling. Zero means no ceiling.
	// The serve loop (cmd/dcsim -serve) additionally enforces it live:
	// a window whose post-collection heap exceeds the ceiling fails the
	// run.
	MemCeilingBytes int64

	// SketchMode replaces the exact open-addressing heavy-hitter tables
	// with fixed-memory sketches (space-saving candidates refined by
	// count-min estimates; see internal/sketch) and adds HLL distinct
	// flow/host/rack cardinalities to fleet collection. Results become
	// approximate within the bounds the sketcherr harness enforces, but
	// analysis memory stops growing with the key population — the mode
	// endless serve runs use. Default off: the exact path stays
	// bit-identical to previous releases.
	SketchMode bool

	// Parallelism is the worker count of the parallel experiment engine:
	// independent (role, seconds) trace bundles fan out across this many
	// goroutines when the suite is prewarmed. 0 means GOMAXPROCS. Results
	// are bit-identical for every value — each bundle owns its generator,
	// rng stream, and sinks, so worker count only changes wall-clock.
	Parallelism int
	// Taggers sizes the fbflow tagging stage: the number of concurrent
	// shard workers of the fleet collection engine, each tagging its
	// records inline (and the tagger goroutine count for streaming
	// Pipeline users). 0 means GOMAXPROCS. Like Parallelism, it does not
	// affect results: shard rng streams are keyed by (seed, window,
	// shard) and partials merge in a fixed order.
	Taggers int

	// FaultScenario, when non-empty, runs the packet-level degraded-mode
	// experiment under the named fault scenario (see
	// netsim.FaultScenarios) and folds its counters into Summarize. The
	// schedule is a pure function of (Seed, Scenario, topology), so the
	// bit-identical-at-any-parallelism contract is preserved.
	FaultScenario string

	// TraceSample is the in-band telemetry flow sampling fraction: each
	// flow is selected by rng.NewKeyed(Seed, "telemetry", flowHash), so
	// the traced set is a pure function of (Seed, flow key) and identical
	// at any Parallelism. 0 disables the telemetry experiment entirely —
	// untraced fabrics pay only nil checks and the suite omits the
	// telemetry section.
	TraceSample float64
	// QueueInterval is the fixed interval at which every switch port's
	// queued bytes are sampled into occupancy timelines during the
	// telemetry experiment. Large topologies stretch it to stay within a
	// per-window sample budget.
	QueueInterval netsim.Time

	// Obs, when non-nil, receives counters, stage spans, and progress from
	// every pipeline stage. Instrumentation observes the computation but
	// never participates in it: hot paths increment worker-local shards
	// that fold at the same task-order frontier as result partials, so
	// enabling metrics cannot perturb any experiment output. Nil disables
	// collection entirely (every obs method on nil is a no-op).
	Obs *obs.Registry

	// Audit, when non-nil, is the determinism flight recorder: every
	// pipeline stage folds a streaming content hash of its canonical
	// output into a per-cell checkpoint ledger (see internal/obs/audit).
	// Auditing holds the same contract as Obs: it observes but never
	// participates — the canonical digest is byte-identical with audit
	// on or off, and the ledger itself is identical at any worker or
	// agent count. Nil disables recording entirely (every audit method
	// on nil is a no-op).
	Audit *audit.Recorder
}

// Workers resolves Parallelism to a concrete worker count.
func (c Config) Workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// TaggerWorkers resolves Taggers to a concrete worker count.
func (c Config) TaggerWorkers() int {
	if c.Taggers > 0 {
		return c.Taggers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig returns the standard experiment configuration: small
// scale, two-minute short traces, ten-minute long traces, and a 24-window
// synthetic day.
func DefaultConfig() Config {
	return Config{
		Scale:          topology.ScaleSmall,
		Seed:           42,
		Params:         services.DefaultParams(),
		ShortTraceSec:  120,
		LongTraceSec:   600,
		FleetWindows:   24,
		FleetWindowSec: 60,
		FleetSamples:   8,
		TraceSample:    0.1,
		QueueInterval:  200 * netsim.Microsecond,
	}
}

// QuickConfig returns a configuration sized for unit tests and smoke
// runs: tiny fleet, seconds-long traces.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Scale = topology.ScaleTiny
	c.ShortTraceSec = 10
	c.LongTraceSec = 20
	c.FleetWindows = 6
	c.FleetWindowSec = 10
	return c
}

// MonitoredRoles are the four server classes the paper's port-mirror
// study covers (§3.3.2).
var MonitoredRoles = []topology.Role{
	topology.RoleWeb,
	topology.RoleCacheFollower,
	topology.RoleCacheLeader,
	topology.RoleHadoop,
}

// System is a built datacenter ready to run experiments. Its experiment
// methods are safe for concurrent use: memoized datasets are guarded by a
// mutex plus per-entry singleflight, so the parallel engine can fan
// experiments out without generating any bundle twice.
type System struct {
	Cfg  Config
	Topo *topology.Topology
	Pick *services.Picker

	mu        sync.Mutex
	bundles   map[bundleKey]*bundleSlot
	fleetOnce sync.Once
	fleet     *fbflow.Dataset
	fleetGaps []CoverageGap

	// Federated observability of the last distributed run: the latest
	// report per agent and each agent's final incarnation (-1 = never
	// connected). Set by the aggregator, read by manifest and timeline
	// export.
	agentReports []*obs.AgentReport
	agentIncs    []int64

	// Degraded-mode (fault injection) memos: the shared workload headers,
	// their offered totals, the healthy baseline arm, and the configured
	// scenario's result.
	degradedOnce     sync.Once
	degradedHdrs     []packet.Header
	degradedOffPkts  int64
	degradedOffBytes int64
	baselineOnce     sync.Once
	baselineMetrics  DegradedMetrics
	faultOnce        sync.Once
	faultRes         *DegradedResult

	// In-fabric telemetry memo (nil result when TraceSample is 0).
	telemOnce sync.Once
	telemRes  *TelemetryResult

	// obsIDs caches the metric IDs registered against Cfg.Obs (zero value
	// when observability is disabled — harmless, since every shard and
	// registry write is nil-gated before the IDs are used).
	obsIDs coreObsIDs
}

type bundleKey struct {
	role topology.Role
	sec  int
}

// bundleSlot is the singleflight cell of one memoized trace bundle:
// concurrent callers agree on the slot under System.mu, then exactly one
// runs the generation inside the slot's once while the rest block on it.
type bundleSlot struct {
	once sync.Once
	b    *TraceBundle
}

// NewSystem builds the topology and validates that the service models can
// run on it.
func NewSystem(cfg Config) (*System, error) {
	topo, err := topology.Build(topology.Preset(cfg.Scale))
	if err != nil {
		return nil, err
	}
	pick := services.NewPicker(topo)
	if err := pick.Validate(); err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Topo: topo, Pick: pick, bundles: make(map[bundleKey]*bundleSlot)}
	s.initObs()
	return s, nil
}

// MustNewSystem is NewSystem that panics on error.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Monitored returns the representative monitored host for a role: the
// first host of that role (within the first cluster hosting it), matching
// the paper's single-host mirror methodology.
func (s *System) Monitored(role topology.Role) topology.HostID {
	hs := s.Topo.HostsByRole(role)
	if len(hs) == 0 {
		panic(fmt.Sprintf("core: no hosts of role %v", role))
	}
	return hs[0]
}

// TraceBundle holds every streaming analysis attached to one monitored
// host's mirror capture, so each (role, duration) trace is generated
// exactly once per System.
type TraceBundle struct {
	Role    topology.Role
	Host    topology.HostID
	Seconds int

	Mix     *analysis.ServiceMix
	Loc     *analysis.LocalitySeries
	Flows   *analysis.Flows
	Rates   *analysis.RateSeries
	Sizes   *analysis.PacketSizes
	Arr     *analysis.Arrivals
	Conc    *analysis.Concurrency
	HH      map[analysis.Level]map[netsim.Time]analysis.HeavyTracker
	Packets int64
}

// HHBins are the sub-second windows the heavy-hitter analyses use
// (Table 4, Figs. 10–11).
var HHBins = []netsim.Time{
	netsim.Millisecond,
	10 * netsim.Millisecond,
	100 * netsim.Millisecond,
}

// Trace returns the analysis bundle for role over seconds of capture,
// generating it on first use and memoizing per System. Concurrent calls
// for the same key block until the single generation completes; calls for
// different keys proceed in parallel.
func (s *System) Trace(role topology.Role, seconds int) *TraceBundle {
	key := bundleKey{role, seconds}
	s.mu.Lock()
	slot := s.bundles[key]
	if slot == nil {
		slot = new(bundleSlot)
		s.bundles[key] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() { slot.b = s.generateTrace(role, seconds) })
	return slot.b
}

// generateTrace runs one (role, seconds) capture and every streaming
// analysis attached to it. It touches no shared mutable state: the
// generator, rng stream, and sinks are bundle-local, which is what lets
// Prewarm run bundles on parallel workers with bit-identical results.
func (s *System) generateTrace(role topology.Role, seconds int) *TraceBundle {
	sp := s.Cfg.Obs.StartSpan(fmt.Sprintf("trace:%s:%ds", role, seconds))
	defer sp.End()
	host := s.Monitored(role)
	b := &TraceBundle{
		Role:    role,
		Host:    host,
		Seconds: seconds,
		Mix:     analysis.NewServiceMix(s.Topo, host),
		Loc:     analysis.NewLocalitySeries(s.Topo, host),
		Flows:   analysis.NewFlows(s.Topo, host),
		Rates:   analysis.NewRateSeries(s.Topo, host),
		Sizes:   analysis.NewPacketSizes(),
		Arr: analysis.NewArrivals(s.Topo.Addr(host),
			15*netsim.Millisecond, 100*netsim.Millisecond),
		Conc: analysis.NewConcurrency(s.Topo, host, analysis.ConcurrencyWindow),
		HH:   make(map[analysis.Level]map[netsim.Time]analysis.HeavyTracker),
	}
	// Figure 8 considers the primary peer group's racks: the paper plots
	// cache responses toward Web-server racks (8b/8c); Hadoop traffic is
	// effectively all-Hadoop already.
	switch role {
	case topology.RoleCacheFollower:
		b.Rates.Filter = func(d topology.HostID) bool { return s.Topo.HostRole(d) == topology.RoleWeb }
	case topology.RoleCacheLeader:
		b.Rates.Filter = func(d topology.HostID) bool {
			r := s.Topo.HostRole(d)
			return r == topology.RoleCacheFollower || r == topology.RoleCacheLeader
		}
	case topology.RoleWeb:
		b.Rates.Filter = func(d topology.HostID) bool { return s.Topo.HostRole(d) == topology.RoleCacheFollower }
	}
	sinks := workload.Fanout{b.Mix, b.Loc, b.Flows, b.Rates, b.Sizes, b.Arr, b.Conc}
	for _, lvl := range []analysis.Level{analysis.LevelFlow, analysis.LevelHost, analysis.LevelRack} {
		b.HH[lvl] = make(map[netsim.Time]analysis.HeavyTracker)
		for _, bin := range HHBins {
			hh := analysis.NewHeavyTracker(s.Topo, host, lvl, bin, s.Cfg.SketchMode)
			b.HH[lvl][bin] = hh
			sinks = append(sinks, hh)
		}
	}

	tr := services.NewTrace(s.Pick, host, s.Cfg.Seed^uint64(role)<<8^uint64(seconds), s.Cfg.Params, sinks)
	tr.Run(netsim.Time(seconds) * netsim.Second)
	b.Packets = tr.Emitted()

	b.Conc.Finish()
	for _, m := range b.HH {
		for _, hh := range m {
			hh.Finish()
		}
	}
	s.foldTrace(b, tr.G.Batches())
	s.auditTrace(b)
	return b
}

// DiurnalFactor returns the load multiplier at a fraction t∈[0,1) through
// the synthetic day: a sinusoid with a 2× peak-to-trough swing (§4.1).
func DiurnalFactor(t float64) float64 {
	// 1 + A·sin: A = 1/3 gives max/min = (4/3)/(2/3) = 2.
	return 1 + (1.0/3.0)*math.Sin(2*math.Pi*t)
}
