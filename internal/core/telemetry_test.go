package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fbdcnet/internal/netsim"
)

// stripSuiteSection removes one "=== name ===" section (header and body)
// from a rendered suite transcript.
func stripSuiteSection(s, name string) string {
	marker := "=== " + name + " ===\n"
	i := strings.Index(s, marker)
	if i < 0 {
		return s
	}
	rest := s[i+len(marker):]
	j := strings.Index(rest, "=== ")
	if j < 0 {
		return s[:i]
	}
	return s[:i] + rest[j:]
}

// TestTelemetryNoPerturbation is the tentpole guarantee of the telemetry
// layer, the sibling of TestObsNoPerturbation: running the suite with
// path-record sampling and queue-occupancy timelines enabled must leave
// every other section byte-identical — telemetry observes its own
// experiment's fabrics and never touches a shared one. Checked
// sequentially and on the parallel engine.
func TestTelemetryNoPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("suite perturbation check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("suite perturbation check skipped under the race detector")
	}
	skip := map[string]bool{"figure15": true, "ext-oversub": true}
	for _, workers := range []int{1, 8} {
		run := func(rate float64) (string, []byte) {
			cfg := QuickConfig()
			cfg.Seed = 42
			cfg.Parallelism = workers
			cfg.Taggers = workers
			cfg.FaultScenario = netsim.ScenarioCSWDown
			cfg.TraceSample = rate
			sys := MustNewSystem(cfg)
			var buf bytes.Buffer
			for _, sec := range SuiteSections(sys) {
				if skip[sec.Name] {
					continue
				}
				fmt.Fprintf(&buf, "=== %s ===\n%s\n", sec.Name, sec.Run(sys))
			}
			sum, err := sys.Summarize().JSON()
			if err != nil {
				t.Fatal(err)
			}
			return buf.String(), sum
		}

		offSuite, offSum := run(0)
		onSuite, onSum := run(0.25)

		if strings.Contains(offSuite, "=== telemetry ===") {
			t.Fatalf("workers=%d: telemetry section present with sampling off", workers)
		}
		if !strings.Contains(onSuite, "=== telemetry ===") {
			t.Fatalf("workers=%d: telemetry section missing with sampling on", workers)
		}
		if got := stripSuiteSection(onSuite, "telemetry"); got != offSuite {
			t.Fatalf("workers=%d: suite output differs beyond the telemetry section\n--- off ---\n%.2000s\n--- on (stripped) ---\n%.2000s",
				workers, offSuite, got)
		}

		// Summaries must agree modulo the telemetry block, and the enabled
		// arm must actually have sampled flows (a zero-sample run would make
		// this test vacuous).
		var offTree, onTree map[string]any
		if err := json.Unmarshal(offSum, &offTree); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(onSum, &onTree); err != nil {
			t.Fatal(err)
		}
		tel, ok := onTree["telemetry"].(map[string]any)
		if !ok {
			t.Fatalf("workers=%d: summary missing telemetry block", workers)
		}
		if sampled, _ := tel["sampled_attempts"].(float64); sampled == 0 {
			t.Fatalf("workers=%d: telemetry sampled zero flows at rate 0.25", workers)
		}
		if hops, _ := tel["sampled_hops"].(float64); hops == 0 {
			t.Fatalf("workers=%d: telemetry recorded zero hops", workers)
		}
		delete(onTree, "telemetry")
		if _, dup := offTree["telemetry"]; dup {
			t.Fatalf("workers=%d: summary has telemetry block with sampling off", workers)
		}
		if !reflect.DeepEqual(offTree, onTree) {
			t.Fatalf("workers=%d: Summarize differs beyond telemetry:\n%s\nvs\n%s",
				workers, offSum, onSum)
		}
	}
}
