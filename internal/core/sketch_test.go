package core

import (
	"bytes"
	"testing"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/obs"
)

// TestSketchParallelDeterminism extends the engine's headline regression
// to sketch mode: with Config.SketchMode set, the full QuickConfig
// summary must still be byte-identical at 1, 2, and 8 workers. The
// sketches merge at the task-order frontier exactly like the exact
// tables, so worker count may only change wall-clock, never a float.
func TestSketchParallelDeterminism(t *testing.T) {
	if raceEnabled {
		// Three extra suite runs multiply past the race job's budget; the
		// coverage job runs this without the detector.
		t.Skip("skipping sketch-mode determinism matrix under -race")
	}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := QuickConfig()
		cfg.Seed = 42
		cfg.Parallelism = workers
		cfg.Taggers = workers
		cfg.SketchMode = true
		sum := MustNewSystem(cfg).Summarize()
		data, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if len(sum.HHCountP50) == 0 {
			t.Fatal("sketch-mode summary has no heavy-hitter counts")
		}
		for role, p50 := range sum.HHCountP50 {
			if p50 <= 0 {
				t.Errorf("sketch-mode HH count p50 for %s is %v, want > 0", role, p50)
			}
		}
		if want == nil {
			want = data
			continue
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("sketch-mode summary at %d workers differs from 1-worker output:\n%s\nvs\n%s",
				workers, data, want)
		}
	}
}

// TestSketchModeTable4 sanity-checks the sketch-backed Table 4: every
// (role, level) row must be populated and carry positive heavy-hitter
// counts, and the trace bundles must expose sketch table stats to the
// obs folding.
func TestSketchModeTable4(t *testing.T) {
	cfg := QuickConfig()
	cfg.SketchMode = true
	cfg.Obs = obs.NewRegistry()
	s := MustNewSystem(cfg)
	t4 := s.Table4()
	if len(t4.Rows) == 0 {
		t.Fatal("sketch-mode Table 4 is empty")
	}
	for _, r := range t4.Rows {
		if r.NumP50 <= 0 {
			t.Errorf("row %s/%d: NumP50 = %v, want > 0", r.Role, r.Level, r.NumP50)
		}
	}
}

// TestSketchModeDistinctCounts pins the fleet cardinality path: sketch
// mode must publish distinct-population gauges from the merged HLLs, and
// the exact path must not allocate them at all.
func TestSketchModeDistinctCounts(t *testing.T) {
	cfg := QuickConfig()
	cfg.SketchMode = true
	cfg.Obs = obs.NewRegistry()
	s := MustNewSystem(cfg)
	ds := s.FleetDataset()
	card := ds.Cardinality()
	if card == nil {
		t.Fatal("sketch mode: FleetDataset has no cardinality sketches")
	}
	if card.Flows() <= 0 || card.Hosts() <= 0 || card.Racks() <= 0 {
		t.Fatalf("distinct estimates not positive: flows=%v hosts=%v racks=%v",
			card.Flows(), card.Hosts(), card.Racks())
	}
	// Hosts within tiny topology bounds: the estimate cannot exceed the
	// host population by more than HLL error.
	if max := float64(s.Topo.NumHosts()) * 1.10; card.Hosts() > max {
		t.Errorf("distinct hosts %v exceeds topology bound %v", card.Hosts(), max)
	}
	text := cfg.Obs.PrometheusText()
	for _, metric := range []string{
		"fbdcnet_fleet_distinct_flows",
		"fbdcnet_fleet_distinct_hosts",
		"fbdcnet_fleet_distinct_racks",
	} {
		if !bytes.Contains([]byte(text), []byte(metric)) {
			t.Errorf("gauge %s missing from exposition", metric)
		}
	}

	exact := QuickConfig()
	if ds := MustNewSystem(exact).FleetDataset(); ds.Cardinality() != nil {
		t.Error("exact mode: FleetDataset unexpectedly carries cardinality sketches")
	}
}

// TestNewHeavyTrackerSelection pins the constructor dispatch both ways.
func TestNewHeavyTrackerSelection(t *testing.T) {
	cfg := QuickConfig()
	s := MustNewSystem(cfg)
	host := s.Monitored(MonitoredRoles[0])
	e := analysis.NewHeavyTracker(s.Topo, host, analysis.LevelFlow, 1_000_000, false)
	if _, ok := e.(*analysis.HeavyHitters); !ok {
		t.Errorf("exact selection returned %T", e)
	}
	sk := analysis.NewHeavyTracker(s.Topo, host, analysis.LevelFlow, 1_000_000, true)
	if _, ok := sk.(*analysis.SketchHeavyHitters); !ok {
		t.Errorf("sketch selection returned %T", sk)
	}
}
