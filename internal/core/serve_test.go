package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"fbdcnet/internal/obs"
)

// serveConfig returns a tiny config for fast serve windows.
func serveConfig() Config {
	cfg := QuickConfig()
	cfg.Taggers = 2
	return cfg
}

// TestServeWindowsRoll runs a short bounded serve loop and checks every
// window arrives in order with live statistics.
func TestServeWindowsRoll(t *testing.T) {
	cfg := serveConfig()
	cfg.Obs = obs.NewRegistry()
	s := MustNewSystem(cfg)
	var seen []ServeWindowStats
	err := s.Serve(context.Background(), ServeOptions{
		Windows: 3,
		OnWindow: func(st ServeWindowStats) error {
			seen = append(seen, st)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("observed %d windows, want 3", len(seen))
	}
	for i, st := range seen {
		if st.Window != i {
			t.Errorf("window %d reported index %d", i, st.Window)
		}
		if st.TotalBytes <= 0 {
			t.Errorf("window %d: TotalBytes = %v, want > 0", i, st.TotalBytes)
		}
		if st.HostRateP99 < st.HostRateP50 {
			t.Errorf("window %d: p99 %v below p50 %v", i, st.HostRateP99, st.HostRateP50)
		}
		if st.HeapBytes == 0 {
			t.Errorf("window %d: HeapBytes not measured", i)
		}
	}
	text := cfg.Obs.PrometheusText()
	for _, metric := range []string{
		"fbdcnet_serve_windows_total 3",
		"fbdcnet_serve_window_bytes",
		"fbdcnet_serve_heap_bytes",
		"fbdcnet_serve_host_rate_p99_mbps",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("serve exposition missing %q", metric)
		}
	}
}

// TestServeReproducesBatch pins serve-mode determinism: the rolling loop
// over the first FleetWindows windows must collect exactly the traffic
// the batch FleetDataset sees — the rng streams are keyed by absolute
// window index in both modes. Per-window byte totals are summed in a
// different float order than the batch merge, hence the tiny tolerance.
func TestServeReproducesBatch(t *testing.T) {
	cfg := serveConfig()
	batch := MustNewSystem(cfg).FleetDataset().TotalBytes()

	var served float64
	s := MustNewSystem(cfg)
	err := s.Serve(context.Background(), ServeOptions{
		Windows: cfg.FleetWindows,
		OnWindow: func(st ServeWindowStats) error {
			served += st.TotalBytes
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch <= 0 {
		t.Fatal("batch collection saw no traffic")
	}
	if rel := math.Abs(served-batch) / batch; rel > 1e-9 {
		t.Fatalf("serve total %v vs batch total %v (rel err %g)", served, batch, rel)
	}
}

// TestServeReload applies a reconfig mid-loop: sketch mode switches on at
// the next window boundary and distinct-population estimates appear.
func TestServeReload(t *testing.T) {
	cfg := serveConfig()
	s := MustNewSystem(cfg)
	reload := make(chan Config, 1)
	var seen []ServeWindowStats
	err := s.Serve(context.Background(), ServeOptions{
		Windows: 2,
		Reload:  reload,
		OnWindow: func(st ServeWindowStats) error {
			seen = append(seen, st)
			if st.Window == 0 {
				next := s.Cfg
				next.SketchMode = true
				reload <- next
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("observed %d windows, want 2", len(seen))
	}
	if seen[0].DistinctFlows != 0 {
		t.Errorf("window 0 ran exact but reported distinct flows %v", seen[0].DistinctFlows)
	}
	if seen[1].DistinctFlows <= 0 {
		t.Errorf("window 1 ran after the sketch reload but reported no distinct flows")
	}
	if !s.Cfg.SketchMode {
		t.Error("reload did not apply SketchMode to the system config")
	}
}

// TestServeCancel stops the loop at the next window boundary without an
// error, the clean-shutdown path SIGINT takes in cmd/dcsim.
func TestServeCancel(t *testing.T) {
	cfg := serveConfig()
	s := MustNewSystem(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	windows := 0
	err := s.Serve(ctx, ServeOptions{
		Windows: 100,
		OnWindow: func(ServeWindowStats) error {
			windows++
			cancel()
			return nil
		},
	})
	if err != nil {
		t.Fatalf("cancelled serve returned %v, want nil", err)
	}
	if windows != 1 {
		t.Fatalf("loop ran %d windows after cancel, want 1", windows)
	}
}

// TestServeMemCeiling pins the bounded-memory contract: a ceiling below
// any real heap stops the loop with a descriptive error.
func TestServeMemCeiling(t *testing.T) {
	cfg := serveConfig()
	cfg.MemCeilingBytes = 1
	s := MustNewSystem(cfg)
	err := s.Serve(context.Background(), ServeOptions{Windows: 2})
	if err == nil {
		t.Fatal("serve ignored an unsatisfiable memory ceiling")
	}
	if !strings.Contains(err.Error(), "exceeds ceiling") {
		t.Fatalf("ceiling error %q missing diagnosis", err)
	}
}

// TestServeOnWindowError propagates a callback failure.
func TestServeOnWindowError(t *testing.T) {
	cfg := serveConfig()
	s := MustNewSystem(cfg)
	boom := errors.New("sink full")
	err := s.Serve(context.Background(), ServeOptions{
		Windows:  5,
		OnWindow: func(ServeWindowStats) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the callback error", err)
	}
}

// TestLoadServeConfigOverlay exercises the SIGHUP file overlay: absent
// keys keep launch-time values, present keys replace them.
func TestLoadServeConfigOverlay(t *testing.T) {
	// Exercised from the cmd/dcsim side; here we pin applyReload, the
	// core half of the contract.
	cfg := serveConfig()
	s := MustNewSystem(cfg)
	next := cfg
	next.FleetSamples = cfg.FleetSamples * 2
	next.SketchMode = true
	next.MemCeilingBytes = 1 << 30
	if repool := s.applyReload(next); !repool {
		t.Error("SketchMode toggle must request a partial-pool rebuild")
	}
	if s.Cfg.FleetSamples != next.FleetSamples || !s.Cfg.SketchMode || s.Cfg.MemCeilingBytes != 1<<30 {
		t.Errorf("reload not applied: %+v", s.Cfg)
	}
	if repool := s.applyReload(next); repool {
		t.Error("no-op reload must not request a pool rebuild")
	}
}
